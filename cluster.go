package desis

import (
	"desis/internal/core"
	"desis/internal/message"
	"desis/internal/node"
	"desis/internal/query"
)

// ClusterOptions shapes an in-process decentralized deployment.
type ClusterOptions struct {
	// Locals is the number of stream-ingesting local nodes (default 1).
	Locals int
	// Intermediates is the number of intermediate nodes between the locals
	// and the root (default 0: locals connect to the root directly).
	Intermediates int
	// OnResult streams final window results from the root; when nil they
	// accumulate for Results.
	OnResult func(Result)
	// TextWire switches the wire codec from binary to strings, for
	// protocol experiments.
	TextWire bool
	// CompactWire switches to the varint/delta codec, roughly halving
	// event traffic on constrained links. Ignored when TextWire is set.
	CompactWire bool
	// BandwidthBytesPerSec throttles every link, modelling constrained
	// networks; zero is unlimited.
	BandwidthBytesPerSec float64
	// Batch coalesces each upward link's partials and watermarks into
	// columnar batch frames sized by the link's observed drain rate — the
	// knob that lets a throttled uplink ship events instead of frame
	// headers (DESIGN.md §8). Fast links keep a cut-through path whose
	// wire is byte-identical to the unbatched protocol.
	Batch bool
	// Optimize controls the factor-window plan optimizer, exactly as
	// Options.Optimize does for a single engine: the zero value runs with
	// it on, OptimizeOff disables it on every tier. The setting is baked
	// into the topology's shared plan lineage so delta replays place
	// identically everywhere.
	Optimize OptimizeMode
}

// Cluster is an in-process decentralized Desis topology: local nodes slice
// their streams and ship per-slice partial results through intermediates to
// the root, which assembles final windows. For a real multi-machine
// deployment use cmd/desis-node, which runs the same node types over TCP.
type Cluster struct {
	c *node.Cluster
}

// NewCluster analyzes the queries with decentralized placement (count-based
// windows evaluate on the root) and builds the topology.
func NewCluster(queries []Query, opts ClusterOptions) (*Cluster, error) {
	queries = assignIDs(queries)
	optimize := opts.Optimize != OptimizeOff
	groups, err := query.Analyze(queries, query.Options{Decentralized: true, Optimize: optimize})
	if err != nil {
		return nil, err
	}
	var codec message.Codec
	switch {
	case opts.TextWire:
		codec = message.Text{}
	case opts.CompactWire:
		codec = message.Compact{}
	}
	var onResult func(core.Result)
	if opts.OnResult != nil {
		onResult = func(r core.Result) { opts.OnResult(r) }
	}
	return &Cluster{c: node.NewCluster(groups, node.ClusterConfig{
		Locals:        opts.Locals,
		Intermediates: opts.Intermediates,
		Codec:         codec,
		Bandwidth:     opts.BandwidthBytesPerSec,
		Batch:         opts.Batch,
		NoOptimize:    !optimize,
		OnResult:      onResult,
	})}, nil
}

// NumLocals reports the local-node count.
func (c *Cluster) NumLocals() int { return c.c.NumLocals() }

// Push feeds in-order events to local node i. Distinct locals may be fed
// from distinct goroutines.
func (c *Cluster) Push(i int, evs []Event) error { return c.c.Push(i, evs) }

// Advance moves local node i's event time to t, emitting a watermark.
func (c *Cluster) Advance(i int, t int64) error { return c.c.Advance(i, t) }

// AdvanceAll advances every local node to t.
func (c *Cluster) AdvanceAll(t int64) error { return c.c.AdvanceAll(t) }

// WaitRoot blocks until the root has merged and assembled everything up to
// event time t.
func (c *Cluster) WaitRoot(t int64) { c.c.WaitRoot(t) }

// AddQuery registers a query on every node at runtime.
func (c *Cluster) AddQuery(q Query) error { return c.c.AddQuery(q) }

// RemoveQuery removes a running query everywhere.
func (c *Cluster) RemoveQuery(id uint64) error { return c.c.RemoveQuery(id) }

// Results returns and clears final window results (only without OnResult).
func (c *Cluster) Results() []Result { return c.c.Results() }

// NetworkBytes reports the bytes sent by the local and intermediate layers.
func (c *Cluster) NetworkBytes() (localBytes, intermediateBytes uint64) {
	return c.c.NetworkBytes()
}

// Close drains in-flight messages and shuts the topology down.
func (c *Cluster) Close() error { return c.c.Close() }
