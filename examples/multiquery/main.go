// Multiquery: one thousand concurrent queries with different window types,
// measures, and aggregation functions over one stream — the workload class
// of §6.3 of the paper. Desis processes every event once per query-group,
// not once per query.
//
//	go run ./examples/multiquery
package main

import (
	"fmt"
	"log"
	"time"

	"desis"
)

func main() {
	const nQueries = 1000
	queries := make([]desis.Query, 0, nQueries)
	for i := 0; i < nQueries; i++ {
		q := desis.Query{
			ID:   uint64(i + 1),
			Pred: desis.All(),
		}
		// Rotate through window shapes and functions.
		switch i % 4 {
		case 0:
			q.Type = desis.Tumbling
			q.Length = int64(1000 + (i%10)*1000) // 1..10 s
			q.Funcs = []desis.FuncSpec{{Func: desis.Average}}
		case 1:
			q.Type = desis.Sliding
			q.Length = 10_000
			q.Slide = int64(500 + (i%8)*500)
			q.Funcs = []desis.FuncSpec{{Func: desis.Sum}}
		case 2:
			q.Type = desis.Tumbling
			q.Length = 5000
			q.Funcs = []desis.FuncSpec{{Func: desis.Quantile, Arg: float64(1+i%99) / 100}}
		case 3:
			q.Type = desis.Session
			q.Gap = int64(200 + (i%5)*100)
			q.Funcs = []desis.FuncSpec{{Func: desis.Max}}
		}
		queries = append(queries, q)
	}

	windows := 0
	eng, err := desis.NewEngine(queries, desis.Options{
		OnResult: func(desis.Result) { windows++ },
	})
	if err != nil {
		log.Fatal(err)
	}

	const events = 2_000_000
	s := desis.NewStream(desis.StreamConfig{Seed: 7, Keys: 1, IntervalMS: 1, GapEvery: 50_000, GapMS: 2000})
	start := time.Now()
	batch := make([]desis.Event, 0, 1024)
	for sent := 0; sent < events; sent += len(batch) {
		batch = batch[:0]
		for len(batch) < 1024 && sent+len(batch) < events {
			batch = append(batch, s.Next())
		}
		eng.ProcessBatch(batch)
	}
	eng.AdvanceTo(s.Now() + 60_000)
	elapsed := time.Since(start)

	st := eng.Stats()
	fmt.Printf("queries:            %d\n", nQueries)
	fmt.Printf("events:             %d\n", st.Events)
	fmt.Printf("throughput:         %.2f M events/s\n", float64(events)/elapsed.Seconds()/1e6)
	fmt.Printf("operator execs:     %.2f per event (1000 queries share a handful of operators)\n",
		float64(st.Calculations)/float64(st.Events))
	fmt.Printf("slices produced:    %d\n", st.Slices)
	fmt.Printf("windows answered:   %d\n", windows)
}
