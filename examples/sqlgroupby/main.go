// Sqlgroupby: the SQL-style query syntax, group-by templates (key=*), and
// the sharded ParallelEngine — the extension features layered on top of the
// paper's core system.
//
//	go run ./examples/sqlgroupby
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"desis"
)

func main() {
	// One template answers per sensor: "for EVERY sensor, the per-second
	// average and the 99th percentile over 10 seconds".
	perSensor := desis.MustParseQuery(
		"SELECT avg(value), count(value) FROM sensors WHERE key = * WINDOW TUMBLING 1s")
	perSensor.ID = 1
	tail := desis.MustParseQuery(
		"SELECT quantile(value, 0.99) FROM sensors WHERE key = * WINDOW SLIDING 10s SLIDE 5s")
	tail.ID = 2

	var mu sync.Mutex
	perKeyWindows := map[uint32]int{}
	eng, err := desis.NewParallelEngine([]desis.Query{perSensor, tail}, 4, desis.Options{
		OnResult: func(r desis.Result) {
			mu.Lock()
			perKeyWindows[r.Key]++
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	const events = 3_000_000
	s := desis.NewStream(desis.StreamConfig{Seed: 11, Keys: 64, IntervalMS: 1})
	start := time.Now()
	batch := make([]desis.Event, 0, 1024)
	for sent := 0; sent < events; sent += len(batch) {
		batch = batch[:0]
		for len(batch) < 1024 && sent+len(batch) < events {
			batch = append(batch, s.Next())
		}
		eng.ProcessBatch(batch)
	}
	eng.AdvanceTo(s.Now() + 60_000)
	eng.Barrier()
	elapsed := time.Since(start)
	st := eng.Stats()
	eng.Close()

	var keys []int
	mu.Lock()
	for k := range perKeyWindows {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	fmt.Printf("2 group-by templates instantiated for %d sensors (%d shards)\n",
		len(keys), eng.NumShards())
	for _, k := range keys[:3] {
		fmt.Printf("  sensor %2d: %d windows answered\n", k, perKeyWindows[uint32(k)])
	}
	fmt.Printf("  ...\n")
	mu.Unlock()
	fmt.Printf("throughput: %.2f M events/s across shards\n", float64(events)/elapsed.Seconds()/1e6)
	fmt.Printf("%.2f operator executions per event\n", float64(st.Calculations)/float64(st.Events))
}
