// Trafficmonitor: the paper's motivating domain — road-traffic telemetry
// with selection predicates, session windows, and user-defined (per-trip)
// windows, all sharing one stream.
//
//   - "how many speeders per minute"    (tumbling, WHERE speed >= 80)
//   - "average crawl speed per minute"  (tumbling, WHERE speed < 25)
//   - "max speed per trip"              (user-defined windows, §5.1.2)
//   - "p90 speed per activity burst"    (session windows)
//
// go run ./examples/trafficmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"desis"
)

func main() {
	speeders := desis.MustParseQuery("tumbling(60s) count key=0 value>=80")
	speeders.ID = 1
	crawl := desis.MustParseQuery("tumbling(60s) average,count key=0 value<25")
	crawl.ID = 2
	trip := desis.MustParseQuery("userdefined max,count key=0")
	trip.ID = 3
	burst := desis.MustParseQuery("session(5s) quantile(0.9) key=0")
	burst.ID = 4

	names := map[uint64]string{1: "speeders/min", 2: "crawl avg", 3: "trip max", 4: "burst p90"}
	eng, err := desis.NewEngine([]desis.Query{speeders, crawl, trip, burst}, desis.Options{
		OnResult: func(r desis.Result) {
			fmt.Printf("%-12s [%7.1fs, %7.1fs)", names[r.QueryID], float64(r.Start)/1000, float64(r.End)/1000)
			for _, v := range r.Values {
				if v.OK {
					fmt.Printf("  %s=%.1f", v.Spec, v.Value)
				} else {
					fmt.Printf("  %s=-", v.Spec)
				}
			}
			fmt.Println()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a car: trips separated by marker events (ignition off) and
	// idle periods that end session windows.
	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	speed := 50.0
	for trip := 0; trip < 3; trip++ {
		tripLen := 60_000 + rng.Int63n(120_000)
		for t := int64(0); t < tripLen; t += 200 {
			speed += rng.NormFloat64() * 4
			if speed < 0 {
				speed = 0
			}
			if speed > 130 {
				speed = 130
			}
			eng.Process(desis.Event{Time: now, Key: 0, Value: speed})
			now += 200
			// Occasional stop at a light: a gap long enough to end the
			// 5-second session window.
			if rng.Intn(200) == 0 {
				now += 8000
			}
		}
		// Ignition off: a user-defined window boundary ends the trip.
		eng.Process(desis.Event{Time: now, Key: 0, Marker: desis.MarkerBoundary})
		now += 30_000 // parked for 30s
	}
	eng.AdvanceTo(now + 60_000)

	st := eng.Stats()
	fmt.Printf("\n%d events, %.2f operator executions per event, %d slices shared by 4 queries\n",
		st.Events, float64(st.Calculations)/float64(st.Events), st.Slices)
}
