// Quickstart: two windowed queries over one synthetic stream, sharing one
// slice stream and one set of operators.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"desis"
)

func main() {
	// Two queries over the same key: a 1-second tumbling average and a
	// 10-second sliding max/p99. They land in one query-group: every event
	// is aggregated once, and avg's sum operator is shared.
	queries := []desis.Query{
		desis.MustParseQuery("tumbling(1s) average key=0"),
		desis.MustParseQuery("sliding(10s,2s) max,quantile(0.99) key=0"),
	}
	eng, err := desis.NewEngine(queries, desis.Options{
		OnResult: func(r desis.Result) {
			if r.Count == 0 {
				return // empty windows fired while draining the stream tail
			}
			fmt.Printf("query %d window [%6d, %6d) n=%5d:", r.QueryID, r.Start, r.End, r.Count)
			for _, v := range r.Values {
				if v.OK {
					fmt.Printf("  %s=%.2f", v.Spec, v.Value)
				}
			}
			fmt.Println()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Replay 30 seconds of a synthetic sensor stream (1 event/ms).
	s := desis.NewStream(desis.StreamConfig{Seed: 42, Keys: 1, IntervalMS: 1})
	for i := 0; i < 30_000; i++ {
		eng.Process(s.Next())
	}
	// Close the final windows.
	eng.AdvanceTo(s.Now() + 10_000)

	st := eng.Stats()
	fmt.Printf("\nprocessed %d events with %d operator executions (%.2f per event) across %d slices\n",
		st.Events, st.Calculations, float64(st.Calculations)/float64(st.Events), st.Slices)
}
