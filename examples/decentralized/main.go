// Decentralized: a 4-local / 2-intermediate / 1-root in-process topology.
// Local nodes slice their own streams and ship per-slice partial results;
// the root assembles final windows. The example prints how many bytes
// travelled compared to shipping the raw events.
//
//	go run ./examples/decentralized
package main

import (
	"fmt"
	"log"
	"sync"

	"desis"
)

func main() {
	queries := []desis.Query{
		desis.MustParseQuery("tumbling(1s) average key=0"),
		desis.MustParseQuery("tumbling(1s) average key=1"),
		desis.MustParseQuery("sliding(5s,1s) min,max key=0"),
		desis.MustParseQuery("tumbling(2s) quantile(0.95) key=1"),
	}
	results := 0
	var mu sync.Mutex
	cl, err := desis.NewCluster(queries, desis.ClusterOptions{
		Locals:        4,
		Intermediates: 2,
		OnResult: func(r desis.Result) {
			mu.Lock()
			results++
			if results <= 8 {
				fmt.Printf("root: query %d window [%d, %d) n=%d\n", r.QueryID, r.Start, r.End, r.Count)
			}
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each local node ingests its own stream — four decentralized sources.
	const perLocal = 250_000
	var wg sync.WaitGroup
	var lastMu sync.Mutex
	var last int64
	for i := 0; i < cl.NumLocals(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := desis.NewStream(desis.StreamConfig{Seed: int64(100 + i), Keys: 2, IntervalMS: 1})
			batch := make([]desis.Event, 0, 512)
			for sent := 0; sent < perLocal; sent += len(batch) {
				batch = batch[:0]
				for len(batch) < 512 && sent+len(batch) < perLocal {
					batch = append(batch, s.Next())
				}
				if err := cl.Push(i, batch); err != nil {
					log.Fatal(err)
				}
				if err := cl.Advance(i, s.Now()); err != nil {
					log.Fatal(err)
				}
			}
			lastMu.Lock()
			if s.Now() > last {
				last = s.Now()
			}
			lastMu.Unlock()
		}(i)
	}
	wg.Wait()
	if err := cl.AdvanceAll(last + 60_000); err != nil {
		log.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		log.Fatal(err)
	}

	localBytes, interBytes := cl.NetworkBytes()
	raw := uint64(perLocal * cl.NumLocals() * 21) // 21 bytes per encoded event
	fmt.Printf("\nwindows answered:     %d\n", results)
	fmt.Printf("raw stream volume:    %d bytes\n", raw)
	fmt.Printf("local layer sent:     %d bytes (%.2f%% of raw)\n", localBytes, 100*float64(localBytes)/float64(raw))
	fmt.Printf("intermediate sent:    %d bytes\n", interBytes)
}
