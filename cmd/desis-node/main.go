// Command desis-node runs one node of a decentralized Desis topology over
// TCP. Start the root first, then intermediates, then locals:
//
//	desis-node -role root -listen :7070 -children 1 \
//	    -query "tumbling(1s) average key=0" -query "sliding(10s,2s) max key=0"
//	desis-node -role intermediate -listen :7071 -parent host:7070 -id 1001 -children 2
//	desis-node -role local -parent host:7071 -id 1 -events 1000000 -seed 1
//
// Local nodes replay the deterministic synthetic sensor stream (§6.1.2);
// different -seed values simulate different decentralized data sources.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/gen"
	"desis/internal/message"
	"desis/internal/node"
	"desis/internal/query"
	"desis/internal/telemetry"
)

type queryList []query.Query

func (q *queryList) String() string { return fmt.Sprintf("%d queries", len(*q)) }

func (q *queryList) Set(s string) error {
	parsed, err := query.ParseAny(s)
	if err != nil {
		return err
	}
	parsed.ID = uint64(len(*q) + 1)
	*q = append(*q, parsed)
	return nil
}

func main() {
	role := flag.String("role", "", "root | intermediate | local")
	listen := flag.String("listen", ":7070", "listen address (root, intermediate)")
	parent := flag.String("parent", "", "parent address (intermediate, local)")
	id := flag.Uint("id", 1, "node id (intermediate, local)")
	children := flag.Int("children", 1, "number of expected children (root, intermediate)")
	timeout := flag.Duration("timeout", 30*time.Second, "child liveness timeout (§3.2); 0 disables")
	text := flag.Bool("text", false, "use the string wire codec instead of binary")
	events := flag.Int("events", 1_000_000, "events to replay (local)")
	seed := flag.Int64("seed", 1, "stream seed (local)")
	keys := flag.Int("keys", 10, "distinct keys in the stream (local)")
	interval := flag.Int64("interval", 1, "mean event spacing in ms (local)")
	quiet := flag.Bool("quiet", false, "suppress per-window output (root)")
	heartbeat := flag.Duration("heartbeat", node.HeartbeatInterval, "idle-uplink heartbeat period (intermediate, local); negative disables")
	retries := flag.Int("reconnect-retries", 8, "uplink reconnect attempts before giving up (intermediate, local)")
	replay := flag.Int("replay-depth", 0, "partial/watermark frames replayed after a reconnect; 0 selects the default, negative disables (intermediate, local)")
	batch := flag.Bool("batch", false, "coalesce uplink partials/watermarks into adaptive columnar batch frames (intermediate, local)")
	batchBytes := flag.Int("batch-bytes", 0, "approximate cap on one batch frame's body in bytes; 0 selects the default (with -batch)")
	batchFrames := flag.Int("batch-frames", 0, "cap on frames coalesced into one batch; 0 selects the default (with -batch)")
	batchCompress := flag.String("batch-compress", "off", "batch body compression: off | on | auto (auto probes the link and backs off when incompressible)")
	instanceTTL := flag.Duration("instance-ttl", 0, "park group instances of keys idle this long in event time; 0 keeps every instance resident (intermediate, local)")
	instanceShards := flag.Int("instance-shards", 0, "key→instance map shard count; 0 selects the engine default (intermediate, local)")
	assembly := flag.String("assembly", "two-stacks", "window-assembly index: two-stacks | daba | naive (intermediate, local)")
	optimize := flag.Bool("optimize", true, "factor-window plan optimizer (root); -optimize=false ablates it for the whole tree")
	debugAddr := flag.String("debug-addr", "", "serve /debug/stats and /debug/pprof/ over HTTP at this address (any role); empty disables")
	var queries queryList
	flag.Var(&queries, "query", "query in the textual language (repeatable, root only)")
	flag.Parse()

	var codec message.Codec = message.Binary{}
	if *text {
		codec = message.Text{}
	}

	// Intermediates and locals share one registry between the node (via
	// DialOptions) and the debug server; the root's registry lives in its
	// server, so runRoot wires its own debug endpoint.
	opts := dialOpts(codec, *heartbeat, *retries, *replay)
	asm, asmErr := core.ParseAssemblyKind(*assembly)
	if asmErr != nil {
		fmt.Fprintln(os.Stderr, "desis-node:", asmErr)
		os.Exit(1)
	}
	opts.Tuning = node.EngineTuning{
		InstanceTTL:    instanceTTL.Milliseconds(),
		InstanceShards: *instanceShards,
		Assembly:       asm,
	}
	if *batch {
		mode, err := parseCompressMode(*batchCompress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "desis-node:", err)
			os.Exit(1)
		}
		opts.Batch = true
		opts.BatchOptions = message.BatcherOptions{
			MaxBytes:  *batchBytes,
			MaxFrames: *batchFrames,
			Compress:  mode,
		}
	}
	if *debugAddr != "" && *role != "root" {
		opts.Telemetry = telemetry.NewRegistry()
		serveDebug(*debugAddr, opts.Telemetry)
	}

	var err error
	switch *role {
	case "root":
		err = runRoot(*listen, queries, *children, *timeout, codec, *quiet, *debugAddr, *optimize)
	case "intermediate":
		err = runIntermediate(*listen, *parent, uint32(*id), *children, *timeout, opts)
	case "local":
		err = runLocal(*parent, uint32(*id), *events, *seed, *keys, *interval, opts)
	default:
		err = fmt.Errorf("unknown -role %q (want root, intermediate, or local)", *role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "desis-node:", err)
		os.Exit(1)
	}
}

// serveDebug exposes the registry (and pprof) over HTTP in the background.
// Debug serving is best-effort: a bind failure is reported but never takes
// the node down.
func serveDebug(addr string, reg *telemetry.Registry) {
	//lint:ignore goroutinelife the debug server deliberately lives for the process; the node has no reconfiguration that would need it stopped
	go func() {
		if err := http.ListenAndServe(addr, telemetry.DebugMux(reg)); err != nil {
			fmt.Fprintln(os.Stderr, "desis-node: debug server:", err)
		}
	}()
}

func runRoot(listen string, queries []query.Query, children int, timeout time.Duration, codec message.Codec, quiet bool, debugAddr string, optimize bool) error {
	if len(queries) == 0 {
		return fmt.Errorf("root needs at least one -query")
	}
	windows := 0
	srv, err := node.ServeRootOptions(listen, queries, children, timeout, node.RootServeOptions{
		Codec:      codec,
		NoOptimize: !optimize,
		OnResult: func(r core.Result) {
			windows++
			if quiet {
				return
			}
			fmt.Printf("query %d window [%d, %d) n=%d:", r.QueryID, r.Start, r.End, r.Count)
			for _, v := range r.Values {
				if v.OK {
					fmt.Printf(" %s=%.4g", v.Spec, v.Value)
				}
			}
			fmt.Println()
		},
	})
	if err != nil {
		return err
	}
	if debugAddr != "" {
		serveDebug(debugAddr, srv.Telemetry())
	}
	fmt.Fprintf(os.Stderr, "root listening on %s, %d queries, expecting %d children\n",
		srv.Addr(), len(queries), children)
	if err := srv.Wait(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "root done: %d windows answered\n", windows)
	return nil
}

// parseCompressMode maps the -batch-compress flag to a message.CompressMode.
func parseCompressMode(s string) (message.CompressMode, error) {
	switch s {
	case "off":
		return message.CompressOff, nil
	case "on":
		return message.CompressOn, nil
	case "auto":
		return message.CompressAuto, nil
	}
	return 0, fmt.Errorf("unknown -batch-compress %q (want off, on, or auto)", s)
}

// dialOpts assembles the supervised-uplink configuration shared by
// intermediate and local roles.
func dialOpts(codec message.Codec, heartbeat time.Duration, retries, replay int) node.DialOptions {
	return node.DialOptions{
		Codec:       codec,
		Heartbeat:   heartbeat,
		Retry:       node.RetryPolicy{MaxRetries: retries},
		ReplayDepth: replay,
	}
}

func runIntermediate(listen, parent string, id uint32, children int, timeout time.Duration, opts node.DialOptions) error {
	if parent == "" {
		return fmt.Errorf("intermediate needs -parent")
	}
	srv, err := node.ServeIntermediateOptions(listen, parent, id, children, timeout, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "intermediate %d on %s -> %s, expecting %d children\n",
		id, srv.Addr(), parent, children)
	return srv.Wait()
}

func runLocal(parent string, id uint32, events int, seed int64, keys int, interval int64, opts node.DialOptions) error {
	if parent == "" {
		return fmt.Errorf("local needs -parent")
	}
	return node.RunLocalTCPOptions(parent, id, 256, opts, func(l *node.LocalSession) error {
		s := gen.NewStream(gen.StreamConfig{Seed: seed, Keys: keys, IntervalMS: interval})
		start := time.Now()
		var batch []event.Event
		for sent := 0; sent < events; sent += len(batch) {
			n := 512
			if left := events - sent; left < n {
				n = left
			}
			batch = s.NextBatch(batch[:0], n)
			if err := l.Process(batch); err != nil {
				return err
			}
			if sent%(512*16) == 0 {
				if err := l.AdvanceTo(s.Now()); err != nil {
					return err
				}
			}
		}
		if err := l.AdvanceTo(s.Now() + 120_000); err != nil {
			return err
		}
		el := time.Since(start)
		fmt.Fprintf(os.Stderr, "local %d done: %d events in %v (%.2f M events/s)\n",
			id, events, el.Round(time.Millisecond), float64(events)/el.Seconds()/1e6)
		return nil
	})
}
