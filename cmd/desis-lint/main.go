// Command desis-lint checks the Desis tree against the engine's ownership,
// locking, slicing, concurrency, wire-protocol, and hot-path contracts with
// seven project-specific analyzers:
//
//	noretain         pooled values must not be used after release, and
//	                 Conn.Send implementations must not retain the message
//	lockorder        lock-order cycles, re-entrant locking, and blocking
//	                 operations under a mutex
//	sliceinvariant   slice/window state is written only at its documented
//	                 mutation points; slice ids stay monotone
//	atomiccoherence  atomic struct fields are accessed atomically at every
//	                 site; lock/atomic-bearing values are never copied
//	wirekind         every message.Kind constant is handled in every codec,
//	                 replay, and batching classifier
//	hotalloc         //desis:hotpath functions must not allocate, directly
//	                 or through any statically-resolved callee
//	goroutinelife    every go statement has a provable join/stop edge
//
// Standalone use (patterns default to ./...):
//
//	go run ./cmd/desis-lint ./...
//	go run ./cmd/desis-lint -json ./...   # one JSON object per diagnostic
//
// As a vet tool (runs per package under cmd/go, results cached like vet's):
//
//	go build -o desis-lint ./cmd/desis-lint
//	go vet -vettool=./desis-lint ./...
//
// Deliberate violations are excused inline with
// `//lint:ignore <analyzer> <reason>`; the reason is mandatory.
//
// Exit status 2 when any diagnostic is reported, 1 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"desis/internal/lint"
	"desis/internal/lint/atomiccoherence"
	"desis/internal/lint/goroutinelife"
	"desis/internal/lint/hotalloc"
	"desis/internal/lint/lockorder"
	"desis/internal/lint/noretain"
	"desis/internal/lint/sliceinvariant"
	"desis/internal/lint/wirekind"
)

func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		noretain.Analyzer,
		lockorder.Analyzer,
		sliceinvariant.Analyzer,
		atomiccoherence.Analyzer,
		wirekind.Analyzer,
		hotalloc.Analyzer,
		goroutinelife.Analyzer,
	}
}

func main() {
	// cmd/go's vet-tool protocol: -V=full, -flags, or a single .cfg file.
	if len(os.Args) == 2 {
		if a := os.Args[1]; a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			lint.UnitcheckerMain(a, analyzers())
		}
	}
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON lines (file/line/col/analyzer/message)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: desis-lint [-json] [packages]\n\n")
		for _, a := range analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns, *jsonOut))
}

// jsonDiagnostic is the -json line format, one object per finding, stable
// for CI annotation tooling.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(patterns []string, jsonOut bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "desis-lint: %v\n", err)
		return 1
	}
	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "desis-lint: %v\n", err)
		return 1
	}
	diags, err := lint.RunAnalyzers(fset, pkgs, analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "desis-lint: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if jsonOut {
			_ = enc.Encode(jsonDiagnostic{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
			continue
		}
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
