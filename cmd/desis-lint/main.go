// Command desis-lint checks the Desis tree against the engine's ownership,
// locking, and slicing contracts with three project-specific analyzers:
//
//	noretain        pooled values must not be used after release, and
//	                Conn.Send implementations must not retain the message
//	lockorder       lock-order cycles, re-entrant locking, and blocking
//	                operations under a mutex
//	sliceinvariant  slice/window state is written only at its documented
//	                mutation points; slice ids stay monotone
//
// Standalone use (patterns default to ./...):
//
//	go run ./cmd/desis-lint ./...
//
// As a vet tool (runs per package under cmd/go, results cached like vet's):
//
//	go build -o desis-lint ./cmd/desis-lint
//	go vet -vettool=./desis-lint ./...
//
// Exit status 2 when any diagnostic is reported, 1 on operational errors.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"desis/internal/lint"
	"desis/internal/lint/lockorder"
	"desis/internal/lint/noretain"
	"desis/internal/lint/sliceinvariant"
)

func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		noretain.Analyzer,
		lockorder.Analyzer,
		sliceinvariant.Analyzer,
	}
}

func main() {
	// cmd/go's vet-tool protocol: -V=full, -flags, or a single .cfg file.
	if len(os.Args) == 2 {
		if a := os.Args[1]; a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			lint.UnitcheckerMain(a, analyzers())
		}
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: desis-lint [packages]\n\n")
		for _, a := range analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns))
}

func run(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "desis-lint: %v\n", err)
		return 1
	}
	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "desis-lint: %v\n", err)
		return 1
	}
	diags, err := lint.RunAnalyzers(fset, pkgs, analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "desis-lint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
