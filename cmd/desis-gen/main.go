// Command desis-gen emits the deterministic synthetic sensor stream of
// §6.1.2, for inspection or piping into other tools.
//
//	desis-gen -n 20 -keys 4                 # human-readable text
//	desis-gen -n 1000000 -format binary > events.bin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"desis/internal/event"
	"desis/internal/gen"
)

func main() {
	n := flag.Int("n", 100, "number of events")
	seed := flag.Int64("seed", 1, "stream seed")
	keys := flag.Int("keys", 1, "distinct keys")
	interval := flag.Int64("interval", 1, "mean event spacing in ms")
	markers := flag.Int("markers", 0, "insert a user-defined boundary every N events (0 = none)")
	gaps := flag.Int("gaps", 0, "insert a session gap every N events (0 = none)")
	gapMS := flag.Int64("gapms", 5000, "session gap length in ms")
	format := flag.String("format", "text", "text | binary")
	flag.Parse()

	s := gen.NewStream(gen.StreamConfig{
		Seed: *seed, Keys: *keys, IntervalMS: *interval,
		MarkerEvery: *markers, GapEvery: *gaps, GapMS: *gapMS,
	})
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *format {
	case "text":
		for i := 0; i < *n; i++ {
			ev := s.Next()
			fmt.Fprintf(w, "%d\t%d\t%d\t%g\n", ev.Time, ev.Key, ev.Marker, ev.Value)
		}
	case "binary":
		var buf []byte
		batch := make([]event.Event, 0, 1024)
		for left := *n; left > 0; {
			c := 1024
			if left < c {
				c = left
			}
			batch = s.NextBatch(batch[:0], c)
			buf = event.AppendBatch(buf[:0], batch)
			if _, err := w.Write(buf); err != nil {
				fmt.Fprintln(os.Stderr, "desis-gen:", err)
				os.Exit(1)
			}
			left -= c
		}
	default:
		fmt.Fprintf(os.Stderr, "desis-gen: unknown -format %q\n", *format)
		os.Exit(2)
	}
}
