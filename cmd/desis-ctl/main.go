// Command desis-ctl manages queries on a running Desis root node (§3.2):
//
//	desis-ctl -root localhost:7070 -add "tumbling(5s) median key=2" -addid 42
//	desis-ctl -root localhost:7070 -remove 42
//	desis-ctl -root localhost:7070 -plan
//
// Adds and removes become plan deltas: the root applies the change to its
// epoch-versioned execution plan and broadcasts the delta down the topology;
// local nodes start (or stop) answering the query from their next
// punctuation. -plan dumps the root's live catalog (groups, placements,
// epoch) for inspection.
package main

import (
	"flag"
	"fmt"
	"os"

	"desis/internal/message"
	"desis/internal/node"
	"desis/internal/plan"
	"desis/internal/query"
)

func main() {
	root := flag.String("root", "localhost:7070", "root node address")
	add := flag.String("add", "", "query to add, in the textual query language")
	addID := flag.Uint64("addid", 0, "explicit id for the added query (required with -add)")
	remove := flag.Uint64("remove", 0, "id of a running query to remove")
	dumpPlan := flag.Bool("plan", false, "dump the root's live execution plan")
	text := flag.Bool("text", false, "use the string wire codec")
	flag.Parse()

	var codec message.Codec = message.Binary{}
	if *text {
		codec = message.Text{}
	}

	var err error
	switch {
	case *add != "" && *remove != 0:
		err = fmt.Errorf("use either -add or -remove, not both")
	case *dumpPlan:
		var p *plan.Plan
		if p, err = node.FetchPlan(*root, codec); err == nil {
			fmt.Print(p.Describe())
		}
	case *add != "":
		if *addID == 0 {
			err = fmt.Errorf("-add needs -addid (a unique non-zero query id)")
			break
		}
		var q query.Query
		if q, err = query.ParseAny(*add); err != nil {
			break
		}
		q.ID = *addID
		err = node.Control(*root, codec, &q, 0)
		if err == nil {
			fmt.Printf("added query %d: %s\n", q.ID, q)
		}
	case *remove != 0:
		err = node.Control(*root, codec, nil, *remove)
		if err == nil {
			fmt.Printf("removed query %d\n", *remove)
		}
	default:
		err = fmt.Errorf("nothing to do: pass -add, -remove, or -plan")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "desis-ctl:", err)
		os.Exit(1)
	}
}
