// Command desis-ctl manages queries on a running Desis root node (§3.2):
//
//	desis-ctl -root localhost:7070 -add "tumbling(5s) median key=2" -addid 42
//	desis-ctl -root localhost:7070 -remove 42
//	desis-ctl -root localhost:7070 -plan
//	desis-ctl -root localhost:7070 -stats
//
// Adds and removes become plan deltas: the root applies the change to its
// epoch-versioned execution plan and broadcasts the delta down the topology;
// local nodes start (or stop) answering the query from their next
// punctuation. -plan dumps the root's live catalog (groups, placements,
// epoch) for inspection. -stats asks the root for a cluster-wide telemetry
// snapshot: the root merges its own counters and histograms with those of
// every reachable node in the tree, so the printed per-group event and
// window totals are deployment-wide.
package main

import (
	"flag"
	"fmt"
	"os"

	"desis/internal/message"
	"desis/internal/node"
	"desis/internal/plan"
	"desis/internal/query"
	"desis/internal/telemetry"
)

func main() {
	root := flag.String("root", "localhost:7070", "root node address")
	add := flag.String("add", "", "query to add, in the textual query language")
	addID := flag.Uint64("addid", 0, "explicit id for the added query (required with -add)")
	remove := flag.Uint64("remove", 0, "id of a running query to remove")
	dumpPlan := flag.Bool("plan", false, "dump the root's live execution plan")
	stats := flag.Bool("stats", false, "dump a merged cluster-wide telemetry snapshot")
	text := flag.Bool("text", false, "use the string wire codec")
	flag.Parse()

	var codec message.Codec = message.Binary{}
	if *text {
		codec = message.Text{}
	}

	var err error
	switch {
	case *add != "" && *remove != 0:
		err = fmt.Errorf("use either -add or -remove, not both")
	case *dumpPlan:
		var p *plan.Plan
		if p, err = node.FetchPlan(*root, codec); err == nil {
			fmt.Print(p.Describe())
		}
	case *stats:
		var s *telemetry.Snapshot
		if s, err = node.FetchStats(*root, codec); err == nil {
			s.Format(os.Stdout)
		}
	case *add != "":
		if *addID == 0 {
			err = fmt.Errorf("-add needs -addid (a unique non-zero query id)")
			break
		}
		var q query.Query
		if q, err = query.ParseAny(*add); err != nil {
			break
		}
		q.ID = *addID
		err = node.Control(*root, codec, &q, 0)
		if err == nil {
			fmt.Printf("added query %d: %s\n", q.ID, q)
		}
	case *remove != 0:
		err = node.Control(*root, codec, nil, *remove)
		if err == nil {
			fmt.Printf("removed query %d\n", *remove)
		}
	default:
		err = fmt.Errorf("nothing to do: pass -add, -remove, -plan, or -stats")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "desis-ctl:", err)
		os.Exit(1)
	}
}
