// Command desis-bench reproduces the paper's evaluation figures.
//
//	desis-bench -exp all                    # everything, test scale
//	desis-bench -exp fig6b -events 2000000  # one figure, paper-ish scale
//	desis-bench -exp ablation-assembly -out BENCH_assembly.json
//	desis-bench -exp plan-churn -out BENCH_plan.json
//	desis-bench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"desis/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	events := flag.Int("events", 500_000, "events per measurement")
	windows := flag.String("windows", "1,10,100,1000", "comma-separated concurrent-window sweep")
	locals := flag.Int("locals", 4, "maximum local nodes in scalability sweeps")
	keys := flag.Int("keys", 64, "maximum distinct keys in key sweeps")
	out := flag.String("out", "", "with -exp ablation-assembly: also write the JSON report to this file")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-24s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := bench.Config{Events: *events, Locals: *locals, Keys: *keys}
	for _, part := range strings.Split(*windows, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "desis-bench: bad -windows entry %q: %v\n", part, err)
			os.Exit(2)
		}
		cfg.WindowCounts = append(cfg.WindowCounts, n)
	}

	if *out != "" {
		var rep any
		var err error
		switch *exp {
		case "ablation-assembly":
			var r *bench.AssemblyReport
			if r, err = bench.RunAssemblyReport(cfg); err == nil {
				rep = r
				for _, p := range r.Points {
					fmt.Printf("windows=%-3d indexed=%.0f win/s naive=%.0f win/s speedup=%.2fx allocs/ev %.2f -> %.2f\n",
						p.Windows, p.IndexedWindowsPerSec, p.NaiveWindowsPerSec, p.WindowsSpeedup,
						p.NaiveAllocsPerEvent, p.IndexedAllocsPerEvent)
				}
			}
		case "plan-churn":
			var r *bench.PlanChurnReport
			if r, err = bench.RunPlanChurnReport(cfg); err == nil {
				rep = r
				for _, p := range r.Points {
					fmt.Printf("catalog=%-5d adds=%.0f/s removes=%.0f/s resync diff=%dB full=%dB ratio=%.1fx\n",
						p.CatalogQueries, p.AddsPerSec, p.RemovesPerSec,
						p.DeltaResyncBytes, p.FullPlanBytes, p.ResendRatio)
				}
			}
		case "wire":
			var r *bench.WireReport
			if r, err = bench.RunWireReport(cfg); err == nil {
				rep = r
				for _, p := range r.Points {
					fmt.Printf("bw=%.3gMbps unbatched=%.0f ev/s batched=%.0f ev/s gain=%.2fx bytes %d -> %d\n",
						p.BandwidthMbps, p.UnbatchedEventsPerSec, p.BatchedEventsPerSec,
						p.Gain, p.UnbatchedLocalBytes, p.BatchedLocalBytes)
				}
				fmt.Printf("latency p99 unbatched=%.1fus batched=%.1fus overhead=%.1f%%\n",
					r.Latency.UnbatchedP99Usec, r.Latency.BatchedP99Usec, 100*r.Latency.P99Overhead)
			}
		case "latency":
			var r *bench.LatencyReport
			if r, err = bench.RunLatencyReport(cfg); err == nil {
				rep = r
				for _, p := range r.Points {
					for _, s := range p.Strategies {
						fmt.Printf("windows=%-3d %-10s %.0f ev/s p50=%.1fus p99=%.1fus p999=%.1fus max=%.1fus\n",
							p.Windows, s.Assembly, s.EventsPerSec, s.P50Usec, s.P99Usec, s.P999Usec, s.MaxUsec)
					}
					fmt.Printf("windows=%-3d p999 improvement (two-stacks/daba) %.2fx match=%v\n",
						p.Windows, p.P999Improvement, p.ResultsMatch)
				}
			}
		case "cardinality":
			var r *bench.CardinalityReport
			if r, err = bench.RunCardinalityReport(cfg); err == nil {
				rep = r
				for _, p := range r.Points {
					fmt.Printf("keys=%-8d B/idle-key %.0f -> %.0f (%.1fx) parked=%d revived=%d p99 %.1fus vs %.1fus match=%v\n",
						p.Keys, p.RetainedBytesPerIdleKey, p.EvictedBytesPerIdleKey, p.Reduction,
						p.ParkedInstances, p.RevivedInstances,
						p.P99IngestUsecEvicting, p.P99IngestUsecResident, p.ResultsMatch)
				}
			}
		case "factor":
			var r *bench.FactorReport
			if r, err = bench.RunFactorReport(cfg); err == nil {
				rep = r
				for _, p := range r.Points {
					fmt.Printf("%-10s win/s %.0f -> %.0f (%.2fx) merges %d -> %d (%.1fx) match=%v\n",
						p.Assembly, p.OffWindowsPerSec, p.OnWindowsPerSec, p.WindowsSpeedup,
						p.OffMerges, p.OnMerges, p.MergeReduction, p.ResultsMatch)
				}
				fmt.Printf("all hashes equal: %v\n", r.AllHashesEqual)
			}
		default:
			fmt.Fprintln(os.Stderr, "desis-bench: -out only applies to -exp ablation-assembly, plan-churn, wire, latency, cardinality, or factor")
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "desis-bench:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "desis-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "desis-bench:", err)
			os.Exit(1)
		}
		return
	}

	var err error
	if *exp == "all" {
		err = bench.RunAll(cfg, os.Stdout)
	} else {
		err = bench.Run(*exp, cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "desis-bench:", err)
		os.Exit(1)
	}
}
