// Command desis-bench reproduces the paper's evaluation figures.
//
//	desis-bench -exp all                    # everything, test scale
//	desis-bench -exp fig6b -events 2000000  # one figure, paper-ish scale
//	desis-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"desis/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	events := flag.Int("events", 500_000, "events per measurement")
	windows := flag.String("windows", "1,10,100,1000", "comma-separated concurrent-window sweep")
	locals := flag.Int("locals", 4, "maximum local nodes in scalability sweeps")
	keys := flag.Int("keys", 64, "maximum distinct keys in key sweeps")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-24s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := bench.Config{Events: *events, Locals: *locals, Keys: *keys}
	for _, part := range strings.Split(*windows, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "desis-bench: bad -windows entry %q: %v\n", part, err)
			os.Exit(2)
		}
		cfg.WindowCounts = append(cfg.WindowCounts, n)
	}

	var err error
	if *exp == "all" {
		err = bench.RunAll(cfg, os.Stdout)
	} else {
		err = bench.Run(*exp, cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "desis-bench:", err)
		os.Exit(1)
	}
}
