// Command desis-bench reproduces the paper's evaluation figures.
//
//	desis-bench -exp all                    # everything, test scale
//	desis-bench -exp fig6b -events 2000000  # one figure, paper-ish scale
//	desis-bench -exp ablation-assembly -out BENCH_assembly.json
//	desis-bench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"desis/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	events := flag.Int("events", 500_000, "events per measurement")
	windows := flag.String("windows", "1,10,100,1000", "comma-separated concurrent-window sweep")
	locals := flag.Int("locals", 4, "maximum local nodes in scalability sweeps")
	keys := flag.Int("keys", 64, "maximum distinct keys in key sweeps")
	out := flag.String("out", "", "with -exp ablation-assembly: also write the JSON report to this file")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-24s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := bench.Config{Events: *events, Locals: *locals, Keys: *keys}
	for _, part := range strings.Split(*windows, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "desis-bench: bad -windows entry %q: %v\n", part, err)
			os.Exit(2)
		}
		cfg.WindowCounts = append(cfg.WindowCounts, n)
	}

	if *out != "" {
		if *exp != "ablation-assembly" {
			fmt.Fprintln(os.Stderr, "desis-bench: -out only applies to -exp ablation-assembly")
			os.Exit(2)
		}
		rep, err := bench.RunAssemblyReport(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "desis-bench:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "desis-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "desis-bench:", err)
			os.Exit(1)
		}
		for _, p := range rep.Points {
			fmt.Printf("windows=%-3d indexed=%.0f win/s naive=%.0f win/s speedup=%.2fx allocs/ev %.2f -> %.2f\n",
				p.Windows, p.IndexedWindowsPerSec, p.NaiveWindowsPerSec, p.WindowsSpeedup,
				p.NaiveAllocsPerEvent, p.IndexedAllocsPerEvent)
		}
		return
	}

	var err error
	if *exp == "all" {
		err = bench.RunAll(cfg, os.Stdout)
	} else {
		err = bench.Run(*exp, cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "desis-bench:", err)
		os.Exit(1)
	}
}
