// Package desis is a stream processing engine for efficient window
// aggregation over many concurrent queries, in one process or across a
// decentralized topology of local, intermediate, and root nodes.
//
// It reproduces the system of "Desis: Efficient Window Aggregation in
// Decentralized Networks" (EDBT 2023): queries with the same key and
// compatible selection predicates form query-groups whose windows — of any
// type (tumbling, sliding, session, user-defined), measure (time, count),
// and aggregation function (sum, count, average, product, geometric mean,
// min, max, median, quantile) — share one stream of slices, and whose
// functions share the primitive operators they decompose into. In
// decentralized deployments, slicing is pushed down to the data sources and
// only per-slice partial results travel upward.
//
// # Quickstart
//
//	q1, _ := desis.ParseQuery("tumbling(1s) average key=0")
//	q2, _ := desis.ParseQuery("sliding(10s,2s) max,quantile(0.99) key=0")
//	eng, _ := desis.NewEngine([]desis.Query{q1, q2}, desis.Options{})
//	eng.Process(desis.Event{Time: 1200, Key: 0, Value: 98.5})
//	...
//	for _, r := range eng.Results() { fmt.Println(r.QueryID, r.Start, r.End) }
//
// See the examples directory for runnable programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduced evaluation.
package desis

import (
	"fmt"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/gen"
	"desis/internal/operator"
	"desis/internal/plan"
	"desis/internal/query"
)

// Event is one stream record: event-time milliseconds, a key selecting the
// sub-stream, an optional user-defined-window marker, and the value.
type Event = event.Event

// MarkerBoundary tags an event as a user-defined window boundary.
const MarkerBoundary = event.MarkerBoundary

// Query is one continuous windowed aggregation; build it literally or with
// ParseQuery.
type Query = query.Query

// Predicate selects events by value; see All, Above, Below, Range.
type Predicate = query.Predicate

// Predicate constructors.
var (
	// All matches every value.
	All = query.All
	// Above matches values >= min.
	Above = query.Above
	// Below matches values < max.
	Below = query.Below
	// Range matches min <= value < max.
	Range = query.Range
)

// Window types.
const (
	Tumbling    = query.Tumbling
	Sliding     = query.Sliding
	Session     = query.Session
	UserDefined = query.UserDefined
)

// Window measures.
const (
	Time  = query.Time
	Count = query.Count
)

// FuncSpec names an aggregation function (with the quantile argument when
// applicable).
type FuncSpec = operator.FuncSpec

// Aggregation functions.
const (
	Sum      = operator.Sum
	CountFn  = operator.Count
	Average  = operator.Average
	Product  = operator.Product
	GeoMean  = operator.GeoMean
	Min      = operator.Min
	Max      = operator.Max
	Median   = operator.Median
	Quantile = operator.Quantile
)

// Result is one window's output for one query.
type Result = core.Result

// FuncValue is one evaluated aggregation function inside a Result.
type FuncValue = core.FuncValue

// AssemblyKind selects the window-assembly strategy (see Options.Assembly).
type AssemblyKind = core.AssemblyKind

// The assembly strategies.
const (
	AssemblyTwoStacks = core.AssemblyTwoStacks
	AssemblyDABA      = core.AssemblyDABA
	AssemblyNaive     = core.AssemblyNaive
)

// ParseAssemblyKind maps the flag spellings ("two-stacks", "daba",
// "naive") onto the enum.
func ParseAssemblyKind(s string) (AssemblyKind, error) { return core.ParseAssemblyKind(s) }

// ParseQuery reads either query syntax: the compact mini-language
// ("sliding(10s,2s) sum,quantile(0.9) key=1 value>=80") or, when the input
// starts with SELECT, the SQL-style form
// ("SELECT sum(value), quantile(value, 0.9) FROM stream WHERE key = 1 AND
// value >= 80 WINDOW SLIDING 10s SLIDE 2s").
func ParseQuery(s string) (Query, error) { return query.ParseAny(s) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(s string) Query {
	q, err := ParseQuery(s)
	if err != nil {
		panic(err)
	}
	return q
}

// OptimizeMode controls the factor-window plan optimizer (see
// Options.Optimize). The zero value enables it.
type OptimizeMode uint8

const (
	// OptimizeOn (the default) lets the planner place eligible correlated
	// windows into factor-fed groups: when one query's length and slide are
	// integer multiples of another query's slide (same key and predicate),
	// the long windows assemble from the short group's merged per-period
	// partials instead of from raw slices. Results are identical either way.
	OptimizeOn OptimizeMode = iota
	// OptimizeOff disables the rewrite — the ablation setting the factor
	// benchmark compares against.
	OptimizeOff
)

// Options configures an Engine.
type Options struct {
	// OnResult streams window results as they complete; when nil, results
	// accumulate and are fetched with Results.
	OnResult func(Result)
	// Dedup enables the deduplication non-aggregate operator (§4.2.3 of
	// the paper): events identical in (time, value) within one slice are
	// processed once.
	Dedup bool
	// Assembly selects the window-assembly strategy: AssemblyTwoStacks
	// (default, O(1) amortized merges with periodic rebuild bursts),
	// AssemblyDABA (DABA-Lite, worst-case O(1) merges, flat latency
	// tails), or AssemblyNaive (re-fold every covering slice, the
	// ablation baseline). See desis-bench -exp latency for the tradeoff.
	Assembly AssemblyKind
	// NaiveAssembly is the deprecated spelling of Assembly =
	// AssemblyNaive, kept so existing ablation callers compile; it is
	// consulted only when Assembly is left at its default. Setting it
	// together with a conflicting explicit Assembly is a config error.
	NaiveAssembly bool
	// Optimize controls the factor-window plan optimizer. The zero value
	// (OptimizeOn) enables it; set OptimizeOff to force every query onto
	// raw slices (ablation, and the off leg of desis-bench -exp factor).
	Optimize OptimizeMode
	// ReorderHorizon, when positive, lets engines commit events up to
	// this much event time behind the slicing frontier into their
	// already-closed slices, repairing the affected window aggregates
	// in place; window emission defers by the same horizon so repaired
	// windows emit once, complete. Pair with NewReordererWithHorizon to
	// shrink the reorder buffer: slice-stale-but-window-fresh events
	// forward immediately instead of buffering. Zero keeps strict
	// in-order semantics.
	ReorderHorizon time.Duration
	// PruneThreshold is how many closed slices a query-group retains
	// before pruning ones no open window can need; 0 selects the default
	// (64). Stats.Pruned counts what retention dropped.
	PruneThreshold int
	// InstanceTTL, when positive, evicts group instances of keys idle for
	// this long (event time): their state is parked as a compact snapshot
	// and revived on the key's next event, with window results identical
	// to a never-evicted run. Zero keeps every instance resident. At
	// group-by (key=*) cardinality this bounds memory by the active key
	// set instead of every key ever seen.
	InstanceTTL time.Duration
	// InstanceShards is the shard count of the engine's key→instance
	// maps; 0 selects the default (16).
	InstanceShards int
	// Telemetry, when non-nil, instruments the engine with per-group
	// counters and latency histograms readable while it runs (see
	// NewTelemetry). Shards of a ParallelEngine share the registry.
	Telemetry *Telemetry
}

func (o Options) optimizeOn() bool { return o.Optimize != OptimizeOff }

// validate rejects contradictory option combinations up-front, against the
// query set the engine is being built for.
func (o Options) validate(queries []Query) error {
	if o.NaiveAssembly && o.Assembly != AssemblyTwoStacks && o.Assembly != AssemblyNaive {
		// The deprecated flag used to be silently ignored here, leaving the
		// caller benchmarking a different strategy than requested.
		return fmt.Errorf("desis: Options.NaiveAssembly conflicts with Options.Assembly=%v; set only Assembly", o.Assembly)
	}
	if o.ReorderHorizon > 0 && len(queries) > 0 {
		// The horizon only repairs fixed time windows without deduplication
		// (see Config.ReorderHorizon): if no configured query has such a
		// shape the engine would silently run strict-order everywhere. A
		// partial mismatch is legal and surfaces as the one-shot
		// engine.horizon_disabled telemetry gauge instead.
		usable := false
		for _, q := range queries {
			if q.Measure == Time && (q.Type == Tumbling || q.Type == Sliding) {
				usable = true
				break
			}
		}
		if o.Dedup || !usable {
			return fmt.Errorf("desis: Options.ReorderHorizon is ignored by every configured query shape (late repair needs time-measure tumbling/sliding windows without Dedup)")
		}
	}
	return nil
}

func (o Options) coreConfig() core.Config {
	assembly := o.Assembly
	if assembly == AssemblyTwoStacks && o.NaiveAssembly {
		assembly = AssemblyNaive
	}
	return core.Config{
		OnResult:       o.OnResult,
		Assembly:       assembly,
		ReorderHorizon: o.ReorderHorizon.Milliseconds(),
		PruneThreshold: o.PruneThreshold,
		InstanceTTL:    o.InstanceTTL.Milliseconds(),
		InstanceShards: o.InstanceShards,
		Optimize:       o.optimizeOn(),
		Telemetry:      o.Telemetry.registry(),
	}
}

// Engine is the single-node aggregation engine: all queries share slices and
// operators according to their query-groups. Events must arrive in
// non-decreasing event-time order. An Engine is not safe for concurrent use;
// run one per goroutine or serialise access.
type Engine struct {
	e *core.Engine
}

// NewEngine analyzes the queries into an execution plan (the epoch-versioned
// catalog every tier shares, see internal/plan) and builds the engine from
// it. Query IDs must be unique; zero IDs are assigned sequentially. Queries
// with key=* (AnyKey) register as group-by templates, instantiated per
// observed key with the concrete key reported in Result.Key.
func NewEngine(queries []Query, opts Options) (*Engine, error) {
	queries = assignIDs(queries)
	if err := opts.validate(queries); err != nil {
		return nil, err
	}
	p, err := plan.New(queries, plan.Options{Dedup: opts.Dedup, Optimize: opts.optimizeOn()})
	if err != nil {
		return nil, err
	}
	return &Engine{e: core.NewFromPlan(p, opts.coreConfig())}, nil
}

func assignIDs(queries []Query) []Query {
	out := append([]Query(nil), queries...)
	next := uint64(1)
	seen := map[uint64]bool{}
	for _, q := range out {
		if q.ID != 0 {
			seen[q.ID] = true
		}
	}
	for i := range out {
		if out[i].ID == 0 {
			for seen[next] {
				next++
			}
			out[i].ID = next
			seen[next] = true
		}
	}
	return out
}

// Process ingests one event.
func (e *Engine) Process(ev Event) { e.e.Process(ev) }

// ProcessBatch ingests a batch of in-order events.
func (e *Engine) ProcessBatch(evs []Event) { e.e.ProcessBatch(evs) }

// AdvanceTo moves event time to t without data, closing windows that end at
// or before t (e.g. session gaps at the end of a stream).
func (e *Engine) AdvanceTo(t int64) { e.e.AdvanceTo(t) }

// Results returns and clears accumulated window results (only without an
// OnResult callback).
func (e *Engine) Results() []Result { return e.e.Results() }

// AddQuery registers a query at runtime and returns its id.
func (e *Engine) AddQuery(q Query) (uint64, error) {
	if q.ID == 0 {
		return 0, fmt.Errorf("desis: AddQuery needs an explicit non-zero query ID")
	}
	if _, err := e.e.AddQuery(q); err != nil {
		return 0, err
	}
	return q.ID, nil
}

// RemoveQuery unregisters a running query.
func (e *Engine) RemoveQuery(id uint64) error { return e.e.RemoveQuery(id) }

// PlanEpoch returns the epoch of the engine's execution plan: 0 after
// construction, incremented by every runtime catalog change (AddQuery,
// RemoveQuery, template instantiation).
func (e *Engine) PlanEpoch() uint64 { return e.e.PlanEpoch() }

// DescribePlan renders the engine's live query catalog (groups, members,
// placement, templates and instances) for humans.
func (e *Engine) DescribePlan() string { return e.e.Plan().Describe() }

// Stats reports the engine's work counters.
type Stats = core.Stats

// Stats returns the engine's counters (events, operator calculations,
// slices, windows).
func (e *Engine) Stats() Stats { return e.e.Stats() }

// InstanceStats reports the key-space tier's lifecycle counters: live
// (materialised) group instances, instances parked by the idle-TTL
// eviction, and cumulative revivals. Without InstanceTTL only Live moves.
type InstanceStats = core.InstanceStats

// InstanceStats returns the engine's instance lifecycle counters.
func (e *Engine) InstanceStats() InstanceStats { return e.e.InstanceStats() }

// Snapshot serialises the engine's complete state for checkpointing. The
// engine must be quiescent. Persist the query set alongside; RestoreEngine
// needs both.
func (e *Engine) Snapshot() []byte { return e.e.Snapshot(nil) }

// RestoreEngine rebuilds an engine from the exact query set (same queries,
// ids, and order) and a snapshot taken by Snapshot, resuming precisely
// where the checkpoint was cut.
func RestoreEngine(queries []Query, opts Options, snapshot []byte) (*Engine, error) {
	queries = assignIDs(queries)
	if err := opts.validate(queries); err != nil {
		return nil, err
	}
	groups, err := query.Analyze(queries, query.Options{Dedup: opts.Dedup, Optimize: opts.optimizeOn()})
	if err != nil {
		return nil, err
	}
	e, err := core.Restore(groups, opts.coreConfig(), snapshot)
	if err != nil {
		return nil, err
	}
	return &Engine{e: e}, nil
}

// StreamConfig configures the synthetic sensor-stream generator used by the
// examples and benchmarks.
type StreamConfig = gen.StreamConfig

// Stream generates deterministic synthetic events.
type Stream = gen.Stream

// NewStream builds a synthetic stream generator.
func NewStream(cfg StreamConfig) *Stream { return gen.NewStream(cfg) }
