// One testing.B benchmark per reproduced table/figure of the paper's
// evaluation (§6), plus microbenchmarks of the hot paths. Each figure
// benchmark executes the corresponding experiment driver end to end at a
// reduced scale and logs the regenerated table; run cmd/desis-bench for
// paper-scale sweeps.
//
//	go test -bench=Fig6b -benchmem
//	go test -bench=. -benchmem
package desis_test

import (
	"strings"
	"testing"

	"desis"
	"desis/internal/bench"
	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/gen"
	"desis/internal/message"
	"desis/internal/node"
	"desis/internal/operator"
	"desis/internal/query"
)

// benchCfg keeps per-iteration work small enough for testing.B's calibration.
var benchCfg = bench.Config{Events: 20_000, WindowCounts: []int{1, 10, 100}, Locals: 2, Keys: 16}

func runFigure(b *testing.B, id string) {
	b.Helper()
	var exp *bench.Experiment
	for i := range bench.Experiments {
		if bench.Experiments[i].ID == id {
			exp = &bench.Experiments[i]
			break
		}
	}
	if exp == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var last []*bench.Table
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = tables
	}
	var sb strings.Builder
	for _, t := range last {
		t.Fprint(&sb)
	}
	b.Log("\n" + sb.String())
}

// --- Figure benchmarks (§6) ---

func BenchmarkFig6aLatencySingleWindow(b *testing.B)          { runFigure(b, "fig6a") }
func BenchmarkFig6bThroughputConcurrent(b *testing.B)         { runFigure(b, "fig6b") }
func BenchmarkFig7aScaleAvg(b *testing.B)                     { runFigure(b, "fig7a") }
func BenchmarkFig7bScaleMedian(b *testing.B)                  { runFigure(b, "fig7b") }
func BenchmarkFig7cNodeThroughputAvg(b *testing.B)            { runFigure(b, "fig7c") }
func BenchmarkFig7dNodeThroughputMedian(b *testing.B)         { runFigure(b, "fig7d") }
func BenchmarkFig7eKeys(b *testing.B)                         { runFigure(b, "fig7e") }
func BenchmarkFig7fWindowsSameKey(b *testing.B)               { runFigure(b, "fig7f") }
func BenchmarkFig8abTumblingThroughputSlices(b *testing.B)    { runFigure(b, "fig8ab") }
func BenchmarkFig8cdUserDefinedThroughputSlices(b *testing.B) { runFigure(b, "fig8cd") }
func BenchmarkFig9abAvgSum(b *testing.B)                      { runFigure(b, "fig9ab") }
func BenchmarkFig9cdQuantiles(b *testing.B)                   { runFigure(b, "fig9cd") }
func BenchmarkFig9efTwoFuncs(b *testing.B)                    { runFigure(b, "fig9ef") }
func BenchmarkFig9gQuantileMax(b *testing.B)                  { runFigure(b, "fig9g") }
func BenchmarkFig9hMeasures(b *testing.B)                     { runFigure(b, "fig9h") }
func BenchmarkFig10abSliceCount(b *testing.B)                 { runFigure(b, "fig10ab") }
func BenchmarkFig10cdSliceSize(b *testing.B)                  { runFigure(b, "fig10cd") }
func BenchmarkFig11aNetworkAvg(b *testing.B)                  { runFigure(b, "fig11a") }
func BenchmarkFig11bNetworkMedian(b *testing.B)               { runFigure(b, "fig11b") }
func BenchmarkFig11cNetworkKeys(b *testing.B)                 { runFigure(b, "fig11c") }
func BenchmarkFig11dNetworkWindows(b *testing.B)              { runFigure(b, "fig11d") }
func BenchmarkFig12aNodeLatencyAvg(b *testing.B)              { runFigure(b, "fig12a") }
func BenchmarkFig12bNodeLatencyMedian(b *testing.B)           { runFigure(b, "fig12b") }
func BenchmarkFig13aRealWorld(b *testing.B)                   { runFigure(b, "fig13a") }
func BenchmarkFig13bcPiCluster(b *testing.B)                  { runFigure(b, "fig13bc") }
func BenchmarkFig13dPiLatency(b *testing.B)                   { runFigure(b, "fig13d") }

// --- Ablation benchmarks (DESIGN.md §5) ---

func BenchmarkAblationPunctuationCalendar(b *testing.B) { runFigure(b, "ablation-calendar") }
func BenchmarkAblationOperatorSharing(b *testing.B)     { runFigure(b, "ablation-opsharing") }
func BenchmarkAblationPartialGranularity(b *testing.B)  { runFigure(b, "ablation-granularity") }
func BenchmarkAblationSortedBatches(b *testing.B)       { runFigure(b, "ablation-sortedbatches") }
func BenchmarkAblationCodecs(b *testing.B)              { runFigure(b, "ablation-codecs") }
func BenchmarkAblationShardedRoot(b *testing.B)         { runFigure(b, "ablation-shardedroot") }

// BenchmarkAssemblySliding measures window-emission throughput with 32
// overlapping sliding windows in one query-group, with the amortized
// assembly index (swag) against the per-window slice re-fold (naive). One
// b.N iteration is one ingested event; every 100ms of event time each mode
// assembles all 32 windows.
func BenchmarkAssemblySliding(b *testing.B) {
	for _, mode := range []struct {
		name string
		asm  core.AssemblyKind
	}{{"swag", core.AssemblyTwoStacks}, {"daba", core.AssemblyDABA}, {"naive", core.AssemblyNaive}} {
		b.Run(mode.name, func(b *testing.B) {
			var qs []query.Query
			for i := 0; i < 32; i++ {
				qs = append(qs, query.Query{
					ID: uint64(i + 1), Pred: query.All(), Type: query.Sliding,
					Length: 2000 + int64(i)*500, Slide: 100,
					Funcs: []operator.FuncSpec{{Func: operator.Average}},
				})
			}
			groups, err := query.Analyze(qs, query.Options{})
			if err != nil {
				b.Fatal(err)
			}
			e := core.New(groups, core.Config{OnResult: func(core.Result) {}, Assembly: mode.asm})
			s := gen.NewStream(gen.StreamConfig{Seed: 21, Keys: 1, IntervalMS: 1})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Process(s.Next())
			}
			b.ReportMetric(float64(e.Stats().Windows)/b.Elapsed().Seconds(), "windows/s")
		})
	}
}

// BenchmarkAssemblyManyQueries stresses assembly with a heterogeneous
// 64-query group: sliding windows of many lengths plus a shared
// non-decomposable quantile, so both the O(1) index path and the k-way run
// merge execute per punctuation.
func BenchmarkAssemblyManyQueries(b *testing.B) {
	for _, mode := range []struct {
		name string
		asm  core.AssemblyKind
	}{{"swag", core.AssemblyTwoStacks}, {"daba", core.AssemblyDABA}, {"naive", core.AssemblyNaive}} {
		b.Run(mode.name, func(b *testing.B) {
			var qs []query.Query
			for i := 0; i < 64; i++ {
				f := operator.FuncSpec{Func: operator.Sum}
				if i%8 == 0 {
					f = operator.FuncSpec{Func: operator.Quantile, Arg: 0.95}
				}
				qs = append(qs, query.Query{
					ID: uint64(i + 1), Pred: query.All(), Type: query.Sliding,
					Length: 500 + int64(i)*125, Slide: 250,
					Funcs: []operator.FuncSpec{f},
				})
			}
			groups, err := query.Analyze(qs, query.Options{})
			if err != nil {
				b.Fatal(err)
			}
			e := core.New(groups, core.Config{OnResult: func(core.Result) {}, Assembly: mode.asm})
			s := gen.NewStream(gen.StreamConfig{Seed: 21, Keys: 1, IntervalMS: 1})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Process(s.Next())
			}
			b.ReportMetric(float64(e.Stats().Windows)/b.Elapsed().Seconds(), "windows/s")
		})
	}
}

// --- Hot-path microbenchmarks ---

// BenchmarkEngineProcess measures the engine's per-event cost with 100
// concurrent tumbling windows sharing one query-group.
func BenchmarkEngineProcess(b *testing.B) {
	qs := gen.TumblingSweep(100, 1000, 10000, operator.Average)
	groups, err := query.Analyze(qs, query.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := core.New(groups, core.Config{OnResult: func(core.Result) {}})
	s := gen.NewStream(gen.StreamConfig{Seed: 1, IntervalMS: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(s.Next())
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkEngineProcessQuantiles measures the shared non-decomposable sort
// with 100 distinct quantile queries.
func BenchmarkEngineProcessQuantiles(b *testing.B) {
	var qs []query.Query
	for i := 0; i < 100; i++ {
		qs = append(qs, query.Query{
			ID: uint64(i + 1), Pred: query.All(), Type: query.Tumbling, Length: 1000,
			Funcs: []operator.FuncSpec{{Func: operator.Quantile, Arg: float64(i+1) / 101}},
		})
	}
	groups, err := query.Analyze(qs, query.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := core.New(groups, core.Config{OnResult: func(core.Result) {}})
	s := gen.NewStream(gen.StreamConfig{Seed: 1, IntervalMS: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(s.Next())
	}
}

// BenchmarkAggAdd measures the innermost operator loop.
func BenchmarkAggAdd(b *testing.B) {
	a := operator.NewAgg(operator.OpSum | operator.OpCount | operator.OpDSort)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Add(float64(i & 1023))
	}
}

// BenchmarkPartialCodec measures encoding+decoding one slice partial.
func BenchmarkPartialCodec(b *testing.B) {
	agg := operator.NewAgg(operator.OpSum | operator.OpCount)
	for i := 0; i < 100; i++ {
		agg.Add(float64(i))
	}
	agg.Finish()
	m := &message.Message{Kind: message.KindPartial, From: 1, Partial: &core.SlicePartial{
		Group: 0, ID: 9, Start: 0, End: 1000, LastEvent: 990, Ingested: 100,
		Aggs: []operator.Agg{agg},
	}}
	codec := message.Binary{}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = codec.Append(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergerHandlePartial measures the intermediate merge step.
func BenchmarkMergerHandlePartial(b *testing.B) {
	m := node.NewMerger([]uint32{1, 2})
	m.Out = func(*core.SlicePartial) {}
	mk := func(id uint64) *core.SlicePartial {
		agg := operator.NewAgg(operator.OpSum | operator.OpCount)
		agg.Add(1)
		agg.Finish()
		return &core.SlicePartial{
			ID: id, Start: int64(id) * 100, End: int64(id+1) * 100,
			Ingested: 1, Aggs: []operator.Agg{agg},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := mk(uint64(i))
		q := mk(uint64(i))
		m.HandlePartial(1, p)
		m.HandlePartial(2, q)
	}
}

// BenchmarkEventBatchCodec measures raw event batch framing, the dominant
// traffic of centralized deployments.
func BenchmarkEventBatchCodec(b *testing.B) {
	s := gen.NewStream(gen.StreamConfig{Seed: 1, Keys: 8, IntervalMS: 1})
	evs := s.Events(512)
	var buf []byte
	b.SetBytes(int64(len(evs) * event.EncodedSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = event.AppendBatch(buf[:0], evs)
		if _, _, err := event.DecodeBatch(buf, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicEngine measures the facade's end-to-end path.
func BenchmarkPublicEngine(b *testing.B) {
	eng, err := desis.NewEngine([]desis.Query{
		desis.MustParseQuery("tumbling(1s) average key=0"),
		desis.MustParseQuery("sliding(10s,2s) max key=0"),
	}, desis.Options{OnResult: func(desis.Result) {}})
	if err != nil {
		b.Fatal(err)
	}
	s := desis.NewStream(desis.StreamConfig{Seed: 1, IntervalMS: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Process(s.Next())
	}
}
