package desis

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Tests for the hybrid reorderer/engine composition: NewReordererWithHorizon
// buffers only part of the allowed lateness and forwards the rest out of
// order into an engine whose Options.ReorderHorizon commits those events
// into already-closed slices.

func TestReordererHybridForwardsWithinHorizon(t *testing.T) {
	var out []Event
	r := NewReordererWithHorizon(100, 40, func(ev Event) { out = append(out, ev) })
	r.Process(Event{Time: 100})
	r.Process(Event{Time: 200}) // release threshold 200-(100-40)=140: releases t=100
	if len(out) != 1 || out[0].Time != 100 {
		t.Fatalf("expected t=100 released, got %v", out)
	}
	// Behind the released frontier but within the horizon: forwarded
	// immediately, out of order, not buffered and not dropped.
	r.Process(Event{Time: 90})
	if len(out) != 2 || out[1].Time != 90 {
		t.Fatalf("t=90 not forwarded immediately: %v", out)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d after in-horizon event", r.Dropped())
	}
	// More than horizon behind the frontier: dropped.
	r.Process(Event{Time: 50})
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", r.Dropped())
	}
	if got := r.LatenessSeen(); got != 150 {
		t.Fatalf("LatenessSeen = %d, want 150 (event 50 against maxSeen 200)", got)
	}
	// The horizon is clamped into [0, maxLateness].
	if r2 := NewReordererWithHorizon(10, 50, func(Event) {}); r2.horizon != 10 {
		t.Fatalf("horizon not clamped to maxLateness: %d", r2.horizon)
	}
	if r3 := NewReordererWithHorizon(10, -5, func(Event) {}); r3.horizon != 0 {
		t.Fatalf("negative horizon not clamped to 0: %d", r3.horizon)
	}
}

// TestReordererHybridFeedsEngine runs the documented hybrid composition end
// to end: a jittered stream through NewReordererWithHorizon into an engine
// with the matching ReorderHorizon matches the same stream fully sorted and
// fed to a strict in-order engine, for every split of the lateness budget.
func TestReordererHybridFeedsEngine(t *testing.T) {
	const maxLateness = 80
	queries := []Query{
		MustParseQuery("tumbling(1s) sum,count key=0"),
		MustParseQuery("sliding(3s,500ms) max key=0"),
		MustParseQuery("sliding(2s,500ms) quantile(0.9) key=0"),
	}
	rng := rand.New(rand.NewSource(17))
	var evs []Event
	base := int64(1000)
	first := base
	for i := 0; i < 3000; i++ {
		tm := base
		if i > 0 {
			tm -= int64(rng.Intn(maxLateness + 1))
			if tm < first {
				tm = first
			}
		}
		evs = append(evs, Event{Time: tm, Key: 0, Value: rng.Float64() * 100})
		base += int64(rng.Intn(5))
	}
	advTo := base + 10_000

	sorted := append([]Event(nil), evs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	oracle, err := NewEngine(queries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle.ProcessBatch(sorted)
	oracle.AdvanceTo(advTo)
	want := oracle.Results()

	for _, horizon := range []int64{0, 40, maxLateness} {
		eng, err := NewEngine(queries, Options{ReorderHorizon: time.Duration(horizon) * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		r := NewReordererWithHorizon(maxLateness, horizon, eng.Process)
		for _, ev := range evs {
			r.Process(ev)
		}
		r.Flush()
		eng.AdvanceTo(advTo)
		if r.Dropped() != 0 {
			t.Fatalf("horizon=%d: reorderer dropped %d in-bounds events", horizon, r.Dropped())
		}
		st := eng.Stats()
		if st.LateDropped != 0 {
			t.Fatalf("horizon=%d: engine dropped %d forwarded events", horizon, st.LateDropped)
		}
		if horizon > 0 && st.LateCommits == 0 {
			t.Errorf("horizon=%d: no event took the out-of-order commit path", horizon)
		}
		if horizon == 0 && st.LateCommits != 0 {
			t.Errorf("horizon=0: %d late commits on a fully buffered stream", st.LateCommits)
		}
		got := eng.Results()
		sortResultsByWindow(got)
		sortResultsByWindow(want)
		if len(got) != len(want) {
			t.Fatalf("horizon=%d: got %d results, want %d", horizon, len(got), len(want))
		}
		for i := range want {
			if !closeResult(got[i], want[i]) {
				t.Fatalf("horizon=%d: result %d: got %+v, want %+v", horizon, i, got[i], want[i])
			}
		}
		if ls := r.LatenessSeen(); ls <= 0 || ls > maxLateness {
			t.Errorf("horizon=%d: LatenessSeen = %d, want in (0, %d]", horizon, ls, maxLateness)
		}
	}
}

func sortResultsByWindow(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].QueryID != rs[j].QueryID {
			return rs[i].QueryID < rs[j].QueryID
		}
		if rs[i].Start != rs[j].Start {
			return rs[i].Start < rs[j].Start
		}
		return rs[i].End < rs[j].End
	})
}

// closeResult is equalResult with float tolerance: out-of-order repair folds
// a window's slices in a different association order than the oracle, so
// sum-derived values may differ in the last bits.
func closeResult(a, b Result) bool {
	if a.QueryID != b.QueryID || a.Start != b.Start || a.End != b.End || a.Count != b.Count || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i].OK != b.Values[i].OK || a.Values[i].Spec != b.Values[i].Spec {
			return false
		}
		av, bv := a.Values[i].Value, b.Values[i].Value
		if math.Abs(av-bv) > 1e-9*(1+math.Abs(bv)) {
			return false
		}
	}
	return true
}
