GO ?= go

.PHONY: all build test race lint fmt invariants

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full suite with the dynamic invariant checks live (see DESIGN.md §5b).
invariants:
	$(GO) test -race -tags desis_invariants ./...

# The seven-analyzer suite: analyzer unit tests, then the tree itself,
# through both drivers (standalone and go vet -vettool).
lint:
	$(GO) test ./internal/lint/...
	$(GO) run ./cmd/desis-lint ./...
	$(GO) build -o /tmp/desis-lint ./cmd/desis-lint
	$(GO) vet -vettool=/tmp/desis-lint ./...

fmt:
	gofmt -l -w .
