package desis

import (
	"fmt"
	"sync"

	"desis/internal/core"
	"desis/internal/plan"
)

// ParallelEngine shards queries and events across several independent
// engine instances by key, each running on its own goroutine. It implements
// the mitigation the paper proposes for the result-materialisation
// bottleneck beyond ~10k queries (§6.5.1: "this can be mitigated by
// separating queries to multiple root nodes") inside a single process.
//
// Sharding is by key, so every query-group lives entirely in one shard and
// all sharing within a group is preserved; queries with different keys that
// could never share anyway are what gets parallelised. The key→shard map is
// the execution plan's (plan.ShardOf): the master plan routes events and
// runtime catalog changes, and each shard engine runs the plan's view for
// its shard (plan.Restrict), which also gates group-by template
// instantiation so exactly one shard owns each instantiated key.
type ParallelEngine struct {
	master *plan.Plan // routing + catalog validation; mutated only by caller goroutine
	shards []*engineShard

	resMu   sync.Mutex
	results []Result
}

type engineShard struct {
	eng  *core.Engine
	ch   chan shardMsg
	wg   *sync.WaitGroup
	bufs []Event
}

type shardMsg struct {
	evs   []Event
	adv   int64         // advance watermark when evs is nil and done is nil
	done  chan struct{} // barrier acknowledgement when non-nil
	add   *Query        // runtime admission, ordered with the event stream
	rm    uint64        // runtime removal when rmSet
	rmSet bool
}

// shardBatch is the per-shard buffer size before a batch is handed to the
// shard goroutine.
const shardBatch = 512

// NewParallelEngine builds n single-threaded engines and routes queries to
// them via the plan's shard map. OnResult, when set, may be called
// concurrently from shard goroutines and must be safe for that.
func NewParallelEngine(queries []Query, n int, opts Options) (*ParallelEngine, error) {
	if n <= 0 {
		n = 1
	}
	queries = assignIDs(queries)
	if err := opts.validate(queries); err != nil {
		return nil, err
	}
	master, err := plan.New(queries, plan.Options{Dedup: opts.Dedup, Shards: n, Optimize: opts.optimizeOn()})
	if err != nil {
		return nil, err
	}
	p := &ParallelEngine{master: master}
	onResult := opts.OnResult
	if onResult == nil {
		onResult = func(r Result) {
			p.resMu.Lock()
			p.results = append(p.results, r)
			p.resMu.Unlock()
		}
	}
	// One sweep clock across all shards: total ingest volume paces every
	// shard's TTL sweeps, so a cold shard behind a skewed key distribution
	// still parks its idle keys on schedule.
	clock := &core.SweepClock{}
	for i := 0; i < n; i++ {
		shardCfg := opts.coreConfig()
		shardCfg.OnResult = onResult
		shardCfg.SweepClock = clock
		sh := &engineShard{
			eng: core.NewFromPlan(master.Restrict(i), shardCfg),
			ch:  make(chan shardMsg, 64),
			wg:  &sync.WaitGroup{},
		}
		sh.wg.Add(1)
		go sh.run()
		p.shards = append(p.shards, sh)
	}
	return p, nil
}

func (s *engineShard) run() {
	defer s.wg.Done()
	for m := range s.ch {
		switch {
		case m.done != nil:
			close(m.done)
		case m.evs != nil:
			s.eng.ProcessBatch(m.evs)
		case m.add != nil:
			// Validated against the master plan before dispatch; a shard
			// rejection here would mean the catalogs diverged.
			_, _ = s.eng.AddQuery(*m.add)
		case m.rmSet:
			_ = s.eng.RemoveQuery(m.rm)
		default:
			s.eng.AdvanceTo(m.adv)
		}
	}
}

// shardFor routes a key through the plan's shard map.
func (p *ParallelEngine) shardFor(key uint32) *engineShard {
	return p.shards[p.master.ShardOf(key)]
}

// Process ingests one event; it is buffered and handed to its key's shard.
// Like Engine, ParallelEngine is fed from one goroutine.
func (p *ParallelEngine) Process(ev Event) {
	sh := p.shardFor(ev.Key)
	sh.bufs = append(sh.bufs, ev)
	if len(sh.bufs) >= shardBatch {
		p.flushShard(sh)
	}
}

// ProcessBatch ingests a batch of in-order events.
func (p *ParallelEngine) ProcessBatch(evs []Event) {
	for _, ev := range evs {
		p.Process(ev)
	}
}

// AddQuery admits a query at runtime: the master plan validates and records
// the change, and the delta is handed to the owning shard (every shard for
// AnyKey templates) ordered with the event stream. It returns the query id.
func (p *ParallelEngine) AddQuery(q Query) (uint64, error) {
	if q.ID == 0 {
		return 0, fmt.Errorf("desis: AddQuery needs an explicit non-zero query ID")
	}
	if err := p.master.Apply(p.master.AddDelta(q)); err != nil {
		return 0, err
	}
	if q.AnyKey {
		for _, sh := range p.shards {
			p.flushShard(sh)
			sh.ch <- shardMsg{add: &q}
		}
		return q.ID, nil
	}
	sh := p.shardFor(q.Key)
	p.flushShard(sh)
	sh.ch <- shardMsg{add: &q}
	return q.ID, nil
}

// RemoveQuery retires a running query (or template and its instances) on
// every shard that hosts it.
func (p *ParallelEngine) RemoveQuery(id uint64) error {
	g, _, concrete := p.master.Lookup(id)
	if err := p.master.Apply(p.master.RemoveDelta(id)); err != nil {
		return err
	}
	if concrete {
		sh := p.shardFor(g.Key)
		p.flushShard(sh)
		sh.ch <- shardMsg{rm: id, rmSet: true}
		return nil
	}
	// Template (or already shard-spread instances): broadcast.
	for _, sh := range p.shards {
		p.flushShard(sh)
		sh.ch <- shardMsg{rm: id, rmSet: true}
	}
	return nil
}

func (p *ParallelEngine) flushShard(sh *engineShard) {
	if len(sh.bufs) == 0 {
		return
	}
	sh.ch <- shardMsg{evs: sh.bufs}
	sh.bufs = nil
}

// Flush pushes all buffered events into the shards without blocking on
// their completion.
func (p *ParallelEngine) Flush() {
	for _, sh := range p.shards {
		p.flushShard(sh)
	}
}

// AdvanceTo flushes and advances every shard's event time to t.
func (p *ParallelEngine) AdvanceTo(t int64) {
	for _, sh := range p.shards {
		p.flushShard(sh)
		sh.ch <- shardMsg{adv: t}
	}
}

// Barrier flushes and blocks until every shard has processed everything
// submitted so far; afterwards Results and Stats reflect all prior input.
func (p *ParallelEngine) Barrier() {
	dones := make([]chan struct{}, len(p.shards))
	for i, sh := range p.shards {
		p.flushShard(sh)
		dones[i] = make(chan struct{})
		sh.ch <- shardMsg{done: dones[i]}
	}
	for _, d := range dones {
		<-d
	}
}

// Close flushes, stops the shard goroutines, and waits for them to drain.
// The engine must not be used afterwards.
func (p *ParallelEngine) Close() {
	for _, sh := range p.shards {
		p.flushShard(sh)
		close(sh.ch)
	}
	for _, sh := range p.shards {
		sh.wg.Wait()
	}
}

// Results returns and clears accumulated results (only without OnResult).
// Call after Close, or accept that in-flight batches may still add results.
func (p *ParallelEngine) Results() []Result {
	p.resMu.Lock()
	defer p.resMu.Unlock()
	r := p.results
	p.results = nil
	return r
}

// Stats sums the shard engines' counters. Safe to call concurrently with
// ingestion — the counters are atomic, so a mid-stream read observes a
// valid (if slightly stale) value per counter; call after Barrier or
// Close for a view consistent across counters and shards.
func (p *ParallelEngine) Stats() Stats {
	var total Stats
	for _, sh := range p.shards {
		s := sh.eng.Stats()
		total.Events += s.Events
		total.Calculations += s.Calculations
		total.Slices += s.Slices
		total.Windows += s.Windows
		total.Pruned += s.Pruned
	}
	return total
}

// InstanceStats sums the shard engines' instance lifecycle counters. Like
// Stats, a mid-stream read is per-counter consistent; call after Barrier or
// Close for a cross-shard cut.
func (p *ParallelEngine) InstanceStats() InstanceStats {
	var total InstanceStats
	for _, sh := range p.shards {
		s := sh.eng.InstanceStats()
		total.Live += s.Live
		total.Evicted += s.Evicted
		total.Revived += s.Revived
	}
	return total
}

// NumShards reports the shard count.
func (p *ParallelEngine) NumShards() int { return len(p.shards) }
