package telemetry

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"desis/internal/metrics"
)

// Snapshot is a point-in-time copy of a registry (or a merge of many —
// the cluster stats pull folds every node's snapshot into one). Counters
// and histograms merge additively; gauges merge by sum, which is correct
// because every gauge name is node-qualified (node.<id>.…) or describes
// an additive quantity (replay-ring occupancy).
type Snapshot struct {
	Counters map[string]uint64                `json:"counters,omitempty"`
	Gauges   map[string]int64                 `json:"gauges,omitempty"`
	Hists    map[string]metrics.HistogramData `json:"histograms,omitempty"`
}

// NewSnapshot returns an empty snapshot with all maps allocated.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]metrics.HistogramData{},
	}
}

// Merge folds o into s. Histogram merging reuses metrics.Histogram.Merge
// via the portable form, so wire-merged quantiles equal in-process ones.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	for k, v := range o.Gauges {
		s.Gauges[k] += v
	}
	for k, v := range o.Hists {
		if have, ok := s.Hists[k]; ok {
			s.Hists[k] = have.Merge(v)
		} else {
			s.Hists[k] = v
		}
	}
}

// Counter reads a counter by name; absent names read 0.
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Format writes the snapshot sorted and aligned, for desis-ctl -stats.
func (s *Snapshot) Format(w io.Writer) {
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%-40s %d\n", k, s.Counters[k])
	}
	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%-40s %d\n", k, s.Gauges[k])
	}
	keys = keys[:0]
	for k := range s.Hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%-40s %s\n", k, s.Hists[k].Summary())
	}
}

// LoadDigest is the compact per-node load summary piggybacked on idle
// heartbeats, letting a parent report child lag without a stats pull.
type LoadDigest struct {
	Epoch      uint64 // plan epoch the node has applied
	Watermark  int64  // highest event time fully processed
	Events     uint64 // events ingested since start
	Slices     uint64 // slices closed since start
	Windows    uint64 // windows emitted since start
	Reconnects uint64 // uplink reconnects performed
	ReplayLen  uint32 // frames currently held in the replay ring
}

// Wire encoding. Snapshots and digests ride inside message frames; the
// format is varint-based (names length-prefixed, maps sorted by name so
// encoding is deterministic) and decodes defensively: a truncated or
// corrupt buffer yields an error, never a panic or an over-allocation.

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

type wireReader struct {
	buf []byte
	err error
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("telemetry: short or corrupt uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("telemetry: short or corrupt varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *wireReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.err = fmt.Errorf("telemetry: string length %d exceeds remaining %d bytes", n, len(r.buf))
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// AppendSnapshot appends the wire form of s to buf.
func AppendSnapshot(buf []byte, s *Snapshot) []byte {
	if s == nil {
		s = NewSnapshot()
	}
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, k := range names {
		buf = appendString(buf, k)
		buf = binary.AppendUvarint(buf, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, k := range names {
		buf = appendString(buf, k)
		buf = binary.AppendVarint(buf, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, k := range names {
		h := s.Hists[k]
		buf = appendString(buf, k)
		buf = binary.AppendUvarint(buf, h.Count)
		buf = binary.AppendVarint(buf, int64(h.Sum))
		buf = binary.AppendVarint(buf, int64(h.Max))
		buf = binary.AppendUvarint(buf, uint64(len(h.Buckets)))
		for _, b := range h.Buckets {
			buf = binary.AppendUvarint(buf, uint64(b.Index))
			buf = binary.AppendUvarint(buf, b.N)
		}
	}
	return buf
}

// DecodeSnapshot decodes a snapshot from the front of buf, returning the
// remaining bytes.
func DecodeSnapshot(buf []byte) (*Snapshot, []byte, error) {
	r := &wireReader{buf: buf}
	s := NewSnapshot()
	n := r.uvarint()
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.string()
		s.Counters[k] = r.uvarint()
	}
	n = r.uvarint()
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.string()
		s.Gauges[k] = r.varint()
	}
	n = r.uvarint()
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.string()
		var h metrics.HistogramData
		h.Count = r.uvarint()
		h.Sum = time.Duration(r.varint())
		h.Max = time.Duration(r.varint())
		nb := r.uvarint()
		// Bound the bucket count before allocating: a histogram cannot
		// have more distinct buckets than the geometry allows.
		if r.err == nil && nb > metrics.NumBuckets {
			r.err = fmt.Errorf("telemetry: %d histogram buckets exceeds %d", nb, metrics.NumBuckets)
		}
		for j := uint64(0); j < nb && r.err == nil; j++ {
			idx := r.uvarint()
			cnt := r.uvarint()
			h.Buckets = append(h.Buckets, metrics.BucketCount{Index: int(idx), N: cnt})
		}
		if r.err == nil {
			s.Hists[k] = h
		}
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return s, r.buf, nil
}

// AppendLoadDigest appends the wire form of d to buf.
func AppendLoadDigest(buf []byte, d *LoadDigest) []byte {
	buf = binary.AppendUvarint(buf, d.Epoch)
	buf = binary.AppendVarint(buf, d.Watermark)
	buf = binary.AppendUvarint(buf, d.Events)
	buf = binary.AppendUvarint(buf, d.Slices)
	buf = binary.AppendUvarint(buf, d.Windows)
	buf = binary.AppendUvarint(buf, d.Reconnects)
	buf = binary.AppendUvarint(buf, uint64(d.ReplayLen))
	return buf
}

// DecodeLoadDigest decodes a digest from the front of buf, returning the
// remaining bytes.
func DecodeLoadDigest(buf []byte) (*LoadDigest, []byte, error) {
	r := &wireReader{buf: buf}
	d := &LoadDigest{}
	d.Epoch = r.uvarint()
	d.Watermark = r.varint()
	d.Events = r.uvarint()
	d.Slices = r.uvarint()
	d.Windows = r.uvarint()
	d.Reconnects = r.uvarint()
	d.ReplayLen = uint32(r.uvarint())
	if r.err != nil {
		return nil, nil, r.err
	}
	return d, r.buf, nil
}
