// Package telemetry is the runtime observability layer of the system: a
// registry of named, atomic instruments cheap enough to live on the hot
// path, with a lock-free snapshot API feeding the cluster stats wire
// (message.KindStatsDump), the -debug-addr HTTP surface, and desis-ctl
// -stats.
//
// Design rules:
//
//   - Recording never allocates and never takes a lock — instruments are
//     plain atomics; the Histogram shadows metrics.Histogram with an
//     atomic bucket array sharing the same bucket geometry.
//   - Every method tolerates a nil receiver (no-op / zero), so code can
//     hold optional instrument pointers and call them unconditionally:
//     an unattached registry costs one predictable branch per call site.
//   - Snapshot reads the registry without blocking writers: the
//     instrument tables are copy-on-write behind an atomic pointer, so
//     registration (rare, control path) pays the copy and readers never
//     wait.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"desis/internal/metrics"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1. No-op on nil.
//
//desis:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on nil.
//
//desis:hotpath
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load reads the current value; 0 on nil.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (occupancy, lag, epoch).
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on nil.
//
//desis:hotpath
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. No-op on nil.
//
//desis:hotpath
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load reads the current value; 0 on nil.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is the concurrent twin of metrics.Histogram: same logarithmic
// bucket geometry (metrics.BucketIndex / metrics.BucketValue), but every
// cell is atomic so shards and goroutines record without coordination.
// Export converts to metrics.HistogramData, whose merging delegates to
// metrics.Histogram.Merge.
type Histogram struct {
	buckets [metrics.NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// Record adds one duration sample. No-op on nil.
//
//desis:hotpath
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[metrics.BucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count reports the number of samples; 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Export snapshots the histogram into its portable form. The buckets are
// read one by one while writers may be recording, so the export is a
// consistent-enough view (each cell individually exact); count/sum/max
// may trail the bucket totals by in-flight samples, never the reverse,
// because Record bumps buckets first.
func (h *Histogram) Export() metrics.HistogramData {
	if h == nil {
		return metrics.HistogramData{}
	}
	var d metrics.HistogramData
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			d.Buckets = append(d.Buckets, metrics.BucketCount{Index: i, N: n})
		}
	}
	d.Count = h.count.Load()
	d.Sum = time.Duration(h.sum.Load())
	d.Max = time.Duration(h.max.Load())
	return d
}

// instrumentSet is an immutable view of the registry's instruments. A new
// registration replaces the whole set; snapshots read whichever set was
// current when they started.
type instrumentSet struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

var emptySet = &instrumentSet{
	counters: map[string]*Counter{},
	gauges:   map[string]*Gauge{},
	hists:    map[string]*Histogram{},
}

// Registry is a named instrument table. Get-or-create methods are
// mutex-serialized (control path); Snapshot is lock-free (copy-on-write).
// All methods tolerate a nil *Registry, returning nil instruments whose
// methods are no-ops — "telemetry disabled" needs no branches elsewhere.
type Registry struct {
	mu  sync.Mutex
	set atomic.Pointer[instrumentSet]
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.set.Store(emptySet)
	return r
}

func (r *Registry) load() *instrumentSet {
	if s := r.set.Load(); s != nil {
		return s
	}
	return emptySet
}

// Counter returns the counter named name, creating it on first use.
// Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.load().counters[name]; ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.load()
	if c, ok := old.counters[name]; ok {
		return c
	}
	c := &Counter{}
	next := old.withCounter(name, c)
	r.set.Store(next)
	return c
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.load().gauges[name]; ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.load()
	if g, ok := old.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	next := old.withGauge(name, g)
	r.set.Store(next)
	return g
}

// Histogram returns the histogram named name, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.load().hists[name]; ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.load()
	if h, ok := old.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	next := old.withHist(name, h)
	r.set.Store(next)
	return h
}

func (s *instrumentSet) withCounter(name string, c *Counter) *instrumentSet {
	n := s.clone()
	n.counters[name] = c
	return n
}

func (s *instrumentSet) withGauge(name string, g *Gauge) *instrumentSet {
	n := s.clone()
	n.gauges[name] = g
	return n
}

func (s *instrumentSet) withHist(name string, h *Histogram) *instrumentSet {
	n := s.clone()
	n.hists[name] = h
	return n
}

func (s *instrumentSet) clone() *instrumentSet {
	n := &instrumentSet{
		counters: make(map[string]*Counter, len(s.counters)+1),
		gauges:   make(map[string]*Gauge, len(s.gauges)+1),
		hists:    make(map[string]*Histogram, len(s.hists)+1),
	}
	for k, v := range s.counters {
		n.counters[k] = v
	}
	for k, v := range s.gauges {
		n.gauges[k] = v
	}
	for k, v := range s.hists {
		n.hists[k] = v
	}
	return n
}

// Names reports all registered instrument names, sorted, for tests and
// debugging.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	s := r.load()
	names := make([]string, 0, len(s.counters)+len(s.gauges)+len(s.hists))
	for k := range s.counters {
		names = append(names, k)
	}
	for k := range s.gauges {
		names = append(names, k)
	}
	for k := range s.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures every instrument's current value without blocking
// recorders or registrations. A nil registry snapshots as empty (never
// nil), so callers can merge/encode it unconditionally.
func (r *Registry) Snapshot() *Snapshot {
	s := NewSnapshot()
	if r == nil {
		return s
	}
	set := r.load()
	for name, c := range set.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range set.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range set.hists {
		s.Hists[name] = h.Export()
	}
	return s
}
