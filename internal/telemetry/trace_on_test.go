//go:build desis_trace

package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestTraceEmitsLogfmtLines(t *testing.T) {
	if !TraceEnabled {
		t.Fatal("TraceEnabled must be true under the desis_trace tag")
	}
	var buf bytes.Buffer
	SetTraceWriter(&buf)
	defer SetTraceWriter(nil)

	TraceSlice(TraceOpen, "local-1", 3, 41, 5000, 6000)
	TraceSlice(TraceAssemble, "root", 3, 41, 5000, 6000)

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for _, want := range []string{"ev=open", "node=local-1", "group=3", "slice=41", "start=5000", "end=6000"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line %q missing %q", lines[0], want)
		}
	}
	if !strings.Contains(lines[1], "ev=assemble") || !strings.Contains(lines[1], "node=root") {
		t.Errorf("line %q", lines[1])
	}
	if !strings.HasPrefix(lines[0], "desis_trace t=") {
		t.Errorf("line %q lacks the desis_trace prefix", lines[0])
	}
}

func TestTraceConcurrentWholeLines(t *testing.T) {
	var buf bytes.Buffer
	SetTraceWriter(&buf)
	defer SetTraceWriter(nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				TraceSlice(TraceClose, "local", uint64(i), uint64(j), 0, 1)
			}
		}(i)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.HasPrefix(line, "desis_trace ") || !strings.Contains(line, "ev=close") {
			t.Fatalf("torn or malformed line: %q", line)
		}
	}
}

func TestTraceEventNames(t *testing.T) {
	names := map[TraceEvent]string{
		TraceOpen: "open", TraceClose: "close", TraceShip: "ship",
		TraceMerge: "merge", TraceAssemble: "assemble", TraceEvent(99): "unknown",
	}
	for ev, want := range names {
		if ev.String() != want {
			t.Errorf("%d.String() = %q, want %q", ev, ev.String(), want)
		}
	}
}
