//go:build !desis_trace

package telemetry

import "io"

// TraceEnabled reports whether slice-lifecycle tracing is compiled in.
// It is a constant so the compiler deletes guarded call sites entirely —
// tracing costs nothing, not even a branch, in release builds.
const TraceEnabled = false

// SetTraceWriter is a no-op in release builds.
func SetTraceWriter(io.Writer) {}

// TraceSlice is a no-op in release builds; guard argument evaluation
// with `if telemetry.TraceEnabled` at the call site.
func TraceSlice(ev TraceEvent, node string, group uint64, slice uint64, start, end int64) {}
