package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
)

// statsPage is the JSON document served at /debug/stats: the raw
// snapshot (expvar-style, machine-readable) plus human-readable
// histogram summaries so `curl | jq` answers "what's the p99" directly.
type statsPage struct {
	*Snapshot
	Summaries map[string]string `json:"histogram_summaries,omitempty"`
}

// Handler serves the registry as an expvar-style JSON snapshot. Each
// request takes a fresh snapshot, so polling it observes progress.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := r.Snapshot()
		page := statsPage{Snapshot: s}
		if len(s.Hists) > 0 {
			page.Summaries = make(map[string]string, len(s.Hists))
			for name, h := range s.Hists {
				page.Summaries[name] = h.Summary()
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(page)
	})
}

// textHandler serves the registry in the Format text form, for humans
// without jq.
func textHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Snapshot().Format(w)
	})
}

// DebugMux builds the -debug-addr mux: /debug/stats (JSON),
// /debug/stats.txt (text), and the standard net/http/pprof handlers
// under /debug/pprof/. The pprof handlers are mounted explicitly rather
// than via the package's DefaultServeMux side effect, so importing this
// package never pollutes a caller's default mux.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/stats", Handler(r))
	mux.Handle("/debug/stats.txt", textHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		paths := []string{"/debug/stats", "/debug/stats.txt", "/debug/pprof/"}
		sort.Strings(paths)
		for _, p := range paths {
			w.Write([]byte(p + "\n"))
		}
	})
	return mux
}
