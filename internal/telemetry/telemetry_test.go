package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"desis/internal/metrics"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	if r.Gauge("g") != r.Gauge("g") || r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name must return the same instrument")
	}
	// Same name, different kind: distinct instruments, both listed.
	_ = r.Gauge("a")
	names := r.Names()
	want := []string{"a", "a", "g", "h"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
}

func TestInstrumentsNilSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Record(time.Second)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if d := h.Export(); d.Count != 0 || len(d.Buckets) != 0 {
		t.Fatal("nil histogram must export empty")
	}
	s := r.Snapshot()
	if s == nil || len(s.Counters) != 0 {
		t.Fatal("nil registry must snapshot empty, not nil")
	}
	if r.Names() != nil {
		t.Fatal("nil registry has no names")
	}
}

func TestSnapshotValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("events").Add(42)
	r.Counter("events").Inc()
	r.Gauge("lag").Set(-7)
	h := r.Histogram("lat")
	h.Record(time.Millisecond)
	h.Record(2 * time.Millisecond)

	s := r.Snapshot()
	if s.Counter("events") != 43 {
		t.Errorf("events = %d", s.Counter("events"))
	}
	if s.Gauges["lag"] != -7 {
		t.Errorf("lag = %d", s.Gauges["lag"])
	}
	d := s.Hists["lat"]
	if d.Count != 2 || d.Max != 2*time.Millisecond || d.Sum != 3*time.Millisecond {
		t.Errorf("lat = %+v", d)
	}
	// The snapshot is a copy: later recording must not mutate it.
	r.Counter("events").Inc()
	if s.Counter("events") != 43 {
		t.Error("snapshot must be immutable after capture")
	}
}

func TestHistogramMatchesMetricsGeometry(t *testing.T) {
	var ours Histogram
	var theirs metrics.Histogram
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i*i) * time.Microsecond
		ours.Record(d)
		theirs.Record(d)
	}
	back := metrics.Import(ours.Export())
	if back.String() != theirs.String() {
		t.Errorf("atomic histogram %q diverged from metrics histogram %q", back.String(), theirs.String())
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewSnapshot()
	a.Counters["x"] = 1
	a.Gauges["g"] = 5
	var h1 metrics.Histogram
	h1.Record(time.Millisecond)
	a.Hists["lat"] = h1.Export()

	b := NewSnapshot()
	b.Counters["x"] = 2
	b.Counters["y"] = 7
	b.Gauges["g"] = 3
	var h2 metrics.Histogram
	h2.Record(4 * time.Millisecond)
	b.Hists["lat"] = h2.Export()
	b.Hists["other"] = h2.Export()

	a.Merge(b)
	if a.Counters["x"] != 3 || a.Counters["y"] != 7 || a.Gauges["g"] != 8 {
		t.Errorf("merge: %+v", a)
	}
	if a.Hists["lat"].Count != 2 || a.Hists["lat"].Max != 4*time.Millisecond {
		t.Errorf("hist merge: %+v", a.Hists["lat"])
	}
	if a.Hists["other"].Count != 1 {
		t.Error("unmatched histogram must copy over")
	}
	a.Merge(nil) // must not panic
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	s := NewSnapshot()
	s.Counters["group.1.events"] = 12345
	s.Counters["uplink.reconnects"] = 2
	s.Gauges["node.3.epoch_lag"] = -1
	var h Histogram
	h.Record(time.Microsecond)
	h.Record(time.Second)
	s.Hists["assembly"] = h.Export()

	buf := AppendSnapshot(nil, s)
	got, rest, err := DecodeSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if got.Counters["group.1.events"] != 12345 || got.Gauges["node.3.epoch_lag"] != -1 {
		t.Errorf("round trip: %+v", got)
	}
	if got.Hists["assembly"].Summary() != s.Hists["assembly"].Summary() {
		t.Error("histogram changed across the wire")
	}
	// Deterministic encoding: re-encoding the decoded snapshot is
	// byte-identical (maps are sorted on the way out).
	if !bytes.Equal(AppendSnapshot(nil, got), buf) {
		t.Error("encoding is not deterministic")
	}

	// Truncations must error, never panic or over-allocate.
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeSnapshot(buf[:i]); err == nil && i < len(buf) {
			// Some prefixes decode cleanly (e.g. empty tail) — only the
			// ones that claim more data than present must fail. The real
			// assertion is "no panic", enforced by reaching this line.
			_ = err
		}
	}
	// A hostile bucket count larger than the geometry is rejected.
	hostile := NewSnapshot()
	hostile.Hists["x"] = metrics.HistogramData{Count: 1}
	hb := AppendSnapshot(nil, hostile)
	// Patch the bucket count (last uvarint) to a huge value.
	hb[len(hb)-1] = 0xff
	hb = append(hb, 0xff, 0xff, 0x7f)
	if _, _, err := DecodeSnapshot(hb); err == nil {
		t.Error("oversized bucket count must be rejected")
	}
}

func TestLoadDigestWireRoundTrip(t *testing.T) {
	d := &LoadDigest{
		Epoch: 9, Watermark: -5, Events: 1 << 40, Slices: 77,
		Windows: 3, Reconnects: 2, ReplayLen: 128,
	}
	buf := AppendLoadDigest(nil, d)
	got, rest, err := DecodeLoadDigest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || *got != *d {
		t.Fatalf("round trip: %+v rest=%d", got, len(rest))
	}
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeLoadDigest(buf[:i]); err == nil {
			t.Fatalf("truncation at %d decoded", i)
		}
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const per = 2000
	var workers sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			c := r.Counter("events")
			h := r.Histogram("lat")
			for j := 0; j < per; j++ {
				c.Inc()
				h.Record(time.Duration(j) * time.Microsecond)
			}
		}()
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			for j := 0; j < per; j++ {
				r.Counter("events").Add(1)
			}
		}(i)
	}
	// Snapshot and register concurrently with the recording workers until
	// they finish — under -race this exercises the copy-on-write path.
	done := make(chan struct{})
	go func() { workers.Wait(); close(done) }()
	for stopped := false; !stopped; {
		select {
		case <-done:
			stopped = true
		default:
			_ = r.Snapshot()
			r.Gauge("churn").Set(1)
		}
	}
	if got := r.Counter("events").Load(); got != 2*goroutines*per {
		t.Fatalf("events = %d, want %d", got, 2*goroutines*per)
	}
	if got := r.Histogram("lat").Count(); got != goroutines*per {
		t.Fatalf("hist count = %d", got)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("group.1.events").Add(10)
	r.Histogram("lat").Record(time.Millisecond)

	mux := DebugMux(r)
	req := httptest.NewRequest("GET", "/debug/stats", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var page struct {
		Counters  map[string]uint64 `json:"counters"`
		Summaries map[string]string `json:"histogram_summaries"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Counters["group.1.events"] != 10 {
		t.Errorf("body: %s", w.Body.String())
	}
	if !strings.Contains(page.Summaries["lat"], "n=1") {
		t.Errorf("summaries: %v", page.Summaries)
	}

	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/stats.txt", nil))
	if !strings.Contains(w.Body.String(), "group.1.events") {
		t.Errorf("text body: %s", w.Body.String())
	}

	// pprof index answers.
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if w.Code != 200 {
		t.Fatalf("pprof status %d", w.Code)
	}
}

func TestFormatSorted(t *testing.T) {
	s := NewSnapshot()
	s.Counters["b"] = 2
	s.Counters["a"] = 1
	s.Gauges["z"] = 3
	var buf bytes.Buffer
	s.Format(&buf)
	out := buf.String()
	ia, ib, iz := strings.Index(out, "a"), strings.Index(out, "b"), strings.Index(out, "z")
	if !(ia < ib && ib < iz) {
		t.Errorf("not sorted:\n%s", out)
	}
}
