package telemetry

// TraceEvent names one step of a slice's lifecycle, from the moment a
// group opens it to the window assembly that consumes it. The stages
// mirror the paper's §4 data flow: local nodes open/close/ship slices,
// intermediates and the root merge partials, the root assembles windows.
type TraceEvent uint8

const (
	// TraceOpen — a group started a new slice.
	TraceOpen TraceEvent = iota
	// TraceClose — a slice reached its end and was sealed into the ring.
	TraceClose
	// TraceShip — a sealed slice left the node as a SlicePartial.
	TraceShip
	// TraceMerge — a merger folded an inbound partial into its state.
	TraceMerge
	// TraceAssemble — the slice range was folded into a window result.
	TraceAssemble
)

// String names the event for the trace log.
func (e TraceEvent) String() string {
	switch e {
	case TraceOpen:
		return "open"
	case TraceClose:
		return "close"
	case TraceShip:
		return "ship"
	case TraceMerge:
		return "merge"
	case TraceAssemble:
		return "assemble"
	}
	return "unknown"
}
