//go:build desis_trace

package telemetry

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// TraceEnabled reports whether slice-lifecycle tracing is compiled in.
const TraceEnabled = true

var traceMu sync.Mutex
var traceW io.Writer = os.Stderr

// SetTraceWriter redirects trace output (default os.Stderr). Pass nil to
// restore the default. The writer does not need to be concurrency-safe:
// TraceSlice serializes all writes.
func SetTraceWriter(w io.Writer) {
	traceMu.Lock()
	defer traceMu.Unlock()
	if w == nil {
		w = os.Stderr
	}
	traceW = w
}

// TraceSlice emits one structured lifecycle event as a logfmt line:
//
//	desis_trace t=1718040201123456789 node=local-2 ev=close group=3 slice=41 start=5000 end=6000
//
// t is wall-clock nanoseconds; start/end are the slice's event-time
// bounds; node identifies the tier ("root", "inter-…", "local-…", or ""
// for a standalone engine). The write is mutex-serialized so concurrent
// shards interleave whole lines, never bytes.
func TraceSlice(ev TraceEvent, node string, group uint64, slice uint64, start, end int64) {
	traceMu.Lock()
	defer traceMu.Unlock()
	fmt.Fprintf(traceW, "desis_trace t=%d node=%s ev=%s group=%d slice=%d start=%d end=%d\n",
		time.Now().UnixNano(), node, ev, group, slice, start, end)
}
