//go:build !desis_trace

package telemetry

import "testing"

func TestTraceDisabledByDefault(t *testing.T) {
	if TraceEnabled {
		t.Fatal("TraceEnabled must be false without the desis_trace tag")
	}
	// The no-op stubs must be callable.
	SetTraceWriter(nil)
	TraceSlice(TraceClose, "local-1", 1, 2, 0, 100)
}
