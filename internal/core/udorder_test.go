package core

import (
	"testing"

	"desis/internal/event"
	"desis/internal/query"
)

// TestUserDefinedStreamOrderAtEqualTimestamps pins the stream-order
// membership rule: a data event followed by a marker AT THE SAME TIMESTAMP
// belongs to the closing window, and the zero-span slice holding it must not
// leak into the window that opens at that timestamp. (Regression: found by
// randomized testing.)
func TestUserDefinedStreamOrderAtEqualTimestamps(t *testing.T) {
	ud := query.MustParse("userdefined sum,count key=0")
	ud.ID = 1
	// A sliding window shares the group, forcing extra slice cuts.
	sl := query.MustParse("sliding(33ms,21ms) sum key=0")
	sl.ID = 2
	groups, err := query.Analyze([]query.Query{ud, sl}, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(groups, Config{})
	evs := []event.Event{
		{Time: 38, Value: 1},                      // opens trip 1
		{Time: 38, Marker: event.MarkerBoundary},  // closes trip 1 = [38,38) holding the event
		{Time: 57, Value: 10},                     // trip 2
		{Time: 93, Value: 20},                     //
		{Time: 100, Value: 30},                    //
		{Time: 100, Marker: event.MarkerBoundary}, // closes trip 2 = [38,100) incl. event at 100
		{Time: 130, Value: 100},                   // trip 3
		{Time: 150, Marker: event.MarkerBoundary}, // closes trip 3 = [100,150)
	}
	e.ProcessBatch(evs)
	e.AdvanceTo(1000)
	var trips []Result
	for _, r := range e.Results() {
		if r.QueryID == 1 {
			trips = append(trips, r)
		}
	}
	if len(trips) != 3 {
		t.Fatalf("got %d trips: %v", len(trips), keys(trips))
	}
	sortResults(trips)
	check := func(i int, start, end, count int64, sum float64) {
		r := trips[i]
		if r.Start != start || r.End != end || r.Count != count || r.Values[0].Value != sum {
			t.Errorf("trip %d = %s count=%d sum=%g, want [%d,%d) count=%d sum=%g",
				i, resultKey(r), r.Count, r.Values[0].Value, start, end, count, sum)
		}
	}
	check(0, 38, 38, 1, 1)   // the same-timestamp event stays in trip 1
	check(1, 38, 100, 3, 60) // trip 2 excludes it, includes the event at 100
	check(2, 100, 150, 1, 100)
}
