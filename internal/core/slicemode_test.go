package core

import (
	"testing"

	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/query"
)

// TestSliceEmitMode exercises the local-node configuration directly: slices
// ship via OnSlice, dynamic window ends travel as EPs, and no windows are
// assembled locally.
func TestSliceEmitMode(t *testing.T) {
	queries := []query.Query{
		query.MustParse("tumbling(100ms) average key=0"),
		query.MustParse("session(50ms) count key=0"),
		query.MustParse("userdefined max key=0"),
	}
	for i := range queries {
		queries[i].ID = uint64(i + 1)
	}
	groups, err := query.Analyze(queries, query.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	var partials []*SlicePartial
	e := New(groups, Config{OnSlice: func(p *SlicePartial) {
		cp := *p
		cp.Aggs = append([]operator.Agg(nil), p.Aggs...)
		cp.EPs = append([]EP(nil), p.EPs...)
		partials = append(partials, &cp)
	}})

	evs := []event.Event{
		{Time: 0, Value: 1}, {Time: 30, Value: 2},
		// gap > 50: session [0, 80) ends at next punctuation
		{Time: 150, Value: 3},
		{Time: 180, Marker: event.MarkerBoundary}, // trip [0, 180) ends
		{Time: 190, Value: 4},
	}
	e.ProcessBatch(evs)
	e.AdvanceTo(400)

	if got := e.Results(); len(got) != 0 {
		t.Fatalf("slice mode assembled %d windows locally", len(got))
	}
	if len(partials) == 0 {
		t.Fatal("no partials emitted")
	}
	var ids []uint64
	type epRec struct{ start, end, gap int64 }
	var sessEPs, udEPs []epRec
	var total int64
	prevEnd := int64(-1)
	for _, p := range partials {
		ids = append(ids, p.ID)
		total += p.Ingested
		if p.Start < prevEnd {
			t.Errorf("slice [%d,%d) overlaps previous end %d", p.Start, p.End, prevEnd)
		}
		prevEnd = p.End
		if p.Events() != p.Ingested {
			t.Errorf("partial [%d,%d): Events()=%d, Ingested=%d (all-match predicate)",
				p.Start, p.End, p.Events(), p.Ingested)
		}
		for _, ep := range p.EPs {
			gq := groups[0].Queries[ep.QueryIdx]
			switch gq.Type {
			case query.Session:
				sessEPs = append(sessEPs, epRec{ep.Start, ep.End, ep.GapStart})
			case query.UserDefined:
				udEPs = append(udEPs, epRec{ep.Start, ep.End, ep.GapStart})
			}
		}
	}
	// Two sessions: [0,80) ended by the gap, [150,240) by the watermark.
	wantSess := []epRec{{0, 80, 30}, {150, 240, 190}}
	if len(sessEPs) != 2 || sessEPs[0] != wantSess[0] || sessEPs[1] != wantSess[1] {
		t.Errorf("session EPs = %v, want %v", sessEPs, wantSess)
	}
	// One trip closed by the marker at 180.
	if len(udEPs) != 1 || udEPs[0].start != 0 || udEPs[0].end != 180 {
		t.Errorf("user-defined EPs = %v, want [{0 180 _}]", udEPs)
	}
	sawSessionEP, sawUDEP := len(sessEPs) > 0, len(udEPs) > 0
	if total != 4 {
		t.Errorf("partials cover %d events, want 4", total)
	}
	if !sawSessionEP || !sawUDEP {
		t.Errorf("EPs: session=%v ud=%v", sawSessionEP, sawUDEP)
	}
	// Slice ids auto-increment (§5.1.1).
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Errorf("slice ids not consecutive: %v", ids)
		}
	}
}

// TestSliceEmitSkipsEmpty: punctuations without events ship nothing (the
// watermark carries progress).
func TestSliceEmitSkipsEmpty(t *testing.T) {
	q := query.MustParse("tumbling(10ms) sum key=0")
	q.ID = 1
	groups, _ := query.Analyze([]query.Query{q}, query.Options{Decentralized: true})
	n := 0
	e := New(groups, Config{OnSlice: func(p *SlicePartial) {
		if p.Ingested == 0 && len(p.EPs) == 0 {
			t.Errorf("empty partial [%d,%d) emitted", p.Start, p.End)
		}
		n++
	}})
	e.Process(event.Event{Time: 0, Value: 1})
	e.AdvanceTo(1000) // 100 empty punctuations after the single event
	if n != 1 {
		t.Errorf("emitted %d partials, want 1", n)
	}
}
