package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/query"
)

// The out-of-order commit path (Config.ReorderHorizon) must be invisible in
// the results: a disordered stream whose lateness stays within the horizon
// produces exactly the windows of the same stream sorted by timestamp and
// fed to a strict in-order engine. These tests check that differentially
// under every assembly strategy, so each index's commitLate repair runs.

// randomTimeQuery draws a time-measured tumbling or sliding query — the
// window types the out-of-order commit supports (count, session, and
// user-defined calendars disable the horizon; see groupState.refreshOOO).
// All queries share key 0 so the engine's slicing origin is the first
// arrival, as in the sorted oracle.
func randomTimeQuery(rng *rand.Rand, id uint64) query.Query {
	q := query.Query{
		ID:      id,
		Pred:    randomPred(rng),
		Funcs:   randomFuncs(rng),
		Measure: query.Time,
	}
	if rng.Intn(2) == 0 {
		q.Type = query.Tumbling
		q.Length = int64(200 + rng.Intn(2000))
	} else {
		q.Type = query.Sliding
		q.Length = int64(400 + rng.Intn(3000))
		q.Slide = 50 + rng.Int63n(q.Length-50+1)
	}
	return q
}

// disorderedStream emits events in arrival order with backward timestamp
// jitter of at most horizon. The first event is jitter-free and no later
// event precedes it, so both the disordered and the sorted replay of the
// stream start slicing at the same origin boundary.
func disorderedStream(rng *rand.Rand, n int, horizon int64) ([]event.Event, int64) {
	evs := make([]event.Event, 0, n)
	t := int64(1000)
	first := t
	for i := 0; i < n; i++ {
		tm := t
		if i > 0 && horizon > 0 && rng.Intn(3) > 0 {
			tm -= rng.Int63n(horizon + 1)
			if tm < first {
				tm = first
			}
		}
		evs = append(evs, event.Event{Time: tm, Value: 0.8 + 0.4*rng.Float64()})
		t += int64(rng.Intn(6))
	}
	return evs, t + 10_000
}

func TestOOOCommitDifferential(t *testing.T) {
	var totalLate uint64
	for seed := int64(0); seed < 8; seed++ {
		for _, horizon := range []int64{60, 250} {
			seed, horizon := seed, horizon
			t.Run(fmt.Sprintf("seed=%d/h=%d", seed, horizon), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*31 + horizon))
				nq := 4 + rng.Intn(8)
				var queries []query.Query
				for i := 0; i < nq; i++ {
					q := randomTimeQuery(rng, uint64(i+1))
					if err := q.Validate(); err != nil {
						t.Fatalf("generated invalid query: %v", err)
					}
					queries = append(queries, q)
				}
				evs, advTo := disorderedStream(rng, 3000, horizon)

				sorted := append([]event.Event(nil), evs...)
				sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
				want := runEngine(t, queries, sorted, advTo, Config{})

				for _, asm := range []AssemblyKind{AssemblyTwoStacks, AssemblyDABA, AssemblyNaive} {
					groups, err := query.Analyze(queries, query.Options{})
					if err != nil {
						t.Fatalf("Analyze: %v", err)
					}
					e := New(groups, Config{Assembly: asm, ReorderHorizon: horizon})
					e.ProcessBatch(evs)
					e.AdvanceTo(advTo)
					st := e.Stats()
					if st.LateDropped != 0 {
						t.Fatalf("assembly %v: %d late events dropped; all disorder was within the horizon", asm, st.LateDropped)
					}
					totalLate += st.LateCommits
					compareResults(t, e.Results(), want)
				}
			})
		}
	}
	if !t.Failed() && totalLate == 0 {
		t.Fatal("no run exercised a late commit; the generator's jitter never crossed a slice boundary")
	}
}

// TestOOOCommitInsertsSlice drives the slice-insertion repair directly: late
// events that fall before every retained slice force insertLateSlice to
// materialise closed slices behind the ring, and the windows that cover them
// must still match the sorted oracle. Windows that ended at or before the
// engine's origin boundary are outside the contract — the disordered engine
// began slicing at its first arrival and never emits them — so the oracle's
// results are filtered to the boundaries both engines fire.
func TestOOOCommitInsertsSlice(t *testing.T) {
	qs := []query.Query{{
		ID: 1, Pred: query.All(), Type: query.Sliding, Measure: query.Time,
		Length: 1000, Slide: 100,
		Funcs: []operator.FuncSpec{{Func: operator.Sum}, {Func: operator.Count}, {Func: operator.Median}},
	}}
	evs := []event.Event{
		{Time: 1050, Value: 1},
		{Time: 950, Value: 2},  // behind the open slice, empty ring: inserted at the front
		{Time: 1120, Value: 3}, // closes slice [1000,1100)
		{Time: 930, Value: 4},  // lands in the inserted slice [900,1000): in-place repair
		{Time: 850, Value: 5},  // before the ring again: second insertion, [800,900)
	}
	const advTo = 20_000

	for _, asm := range []AssemblyKind{AssemblyTwoStacks, AssemblyDABA, AssemblyNaive} {
		groups, err := query.Analyze(qs, query.Options{})
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		e := New(groups, Config{Assembly: asm, ReorderHorizon: 300})
		for _, ev := range evs {
			e.Process(ev)
		}
		e.AdvanceTo(advTo)
		st := e.Stats()
		if st.LateCommits != 3 {
			t.Errorf("assembly %v: LateCommits = %d, want 3", asm, st.LateCommits)
		}
		if st.LateDropped != 0 {
			t.Errorf("assembly %v: LateDropped = %d, want 0", asm, st.LateDropped)
		}

		sorted := append([]event.Event(nil), evs...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
		oracle := runEngine(t, qs, sorted, advTo, Config{})
		want := oracle[:0:0]
		for _, r := range oracle {
			if r.End > 1000 { // the disordered engine's origin boundary
				want = append(want, r)
			}
		}
		compareResults(t, e.Results(), want)
	}
}
