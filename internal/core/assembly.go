package core

import (
	"fmt"

	"desis/internal/operator"
)

// AssemblyKind selects the strategy a group uses to fold closed slices
// into window results. All strategies are result-identical (the swag
// differential tests prove it three ways); they differ in the cost model
// of the merges:
//
//   - AssemblyTwoStacks (default): O(1) amortized merges per emission via
//     the two-stacks prefix/suffix index (swag.go). Suffix rebuilds batch
//     many merges into one emission — fastest on average, with periodic
//     latency spikes.
//   - AssemblyDABA: worst-case O(1) merges per slice close and per
//     emission via DABA-Lite (daba.go). The rebuild is spread over the
//     appends between flips, so no emission pays a burst.
//   - AssemblyNaive: fold every covering slice per window. O(slices) per
//     emission; the ablation baseline.
type AssemblyKind uint8

const (
	AssemblyTwoStacks AssemblyKind = iota
	AssemblyDABA
	AssemblyNaive
)

func (k AssemblyKind) String() string {
	switch k {
	case AssemblyTwoStacks:
		return "two-stacks"
	case AssemblyDABA:
		return "daba"
	case AssemblyNaive:
		return "naive"
	}
	return fmt.Sprintf("AssemblyKind(%d)", uint8(k))
}

// ParseAssemblyKind maps the flag/config spellings onto the enum.
func ParseAssemblyKind(s string) (AssemblyKind, error) {
	switch s {
	case "two-stacks", "twostacks", "swag", "":
		return AssemblyTwoStacks, nil
	case "daba", "daba-lite":
		return AssemblyDABA, nil
	case "naive":
		return AssemblyNaive, nil
	}
	return 0, fmt.Errorf("unknown assembly strategy %q (want two-stacks, daba, or naive)", s)
}

// assemblyIndex is the strategy seam between a group's closed-slice ring
// and window assembly. An index maintains derived pre-aggregates over the
// decomposable operators (the mask strips OpNDSort) in per-context lanes
// and answers range folds [lo, hi) over the ring.
//
// Contract:
//   - configure re-targets lanes/mask, invalidating derived state when
//     either changed; it is called before every appendSlice and query, so
//     an index never sees a stale shape.
//   - appendSlice observes the newest closed slice (closed[len-1]); an
//     index that is out of step with the ring restarts its coverage.
//   - dropFront observes k slices pruned off the ring's front.
//   - query folds closed[lo:hi], lane ctx, into dst. dst's mask selects
//     the fields the member needs; merging a superset row is harmless.
//   - commitLate observes a late event applied at ring position pos:
//     inserted=false means closed[pos]'s aggregates absorbed delta
//     in place; inserted=true means a new slice was inserted at pos
//     (positions >= pos shifted right by one) carrying delta. delta has
//     one lane per context, folded under the index mask. The index
//     repairs only the rows covering pos — or restarts coverage if it
//     cannot.
//
// Implementations are single-writer, owned by one groupState; the
// sliceinvariant analyzer pins their writer sets.
type assemblyIndex interface {
	configure(nctx int, ops operator.Op, n int)
	appendSlice(closed []sliceRec)
	dropFront(k int)
	query(closed []sliceRec, ctx, lo, hi int, dst *operator.Agg)
	commitLate(closed []sliceRec, pos int, inserted bool, delta []operator.Agg)
}

// newAssemblyIndex constructs the index for a strategy. Unknown kinds fall
// back to two-stacks (the zero value of Config.Assembly).
func newAssemblyIndex(kind AssemblyKind) assemblyIndex {
	switch kind {
	case AssemblyDABA:
		return &dabaIndex{}
	case AssemblyNaive:
		return naiveIndex{}
	}
	return &sliceIndex{}
}

// naiveIndex is the ablation strategy: no derived state, every query folds
// its covering slices directly. All maintenance calls are no-ops, so the
// ring lifecycle (closeSlice, prune, commitLate) runs unconditionally
// regardless of strategy.
type naiveIndex struct{}

func (naiveIndex) configure(int, operator.Op, int) {}
func (naiveIndex) appendSlice([]sliceRec)          {}
func (naiveIndex) dropFront(int)                   {}
func (naiveIndex) commitLate([]sliceRec, int, bool, []operator.Agg) {
}

func (naiveIndex) query(closed []sliceRec, ctx, lo, hi int, dst *operator.Agg) {
	for i := lo; i < hi; i++ {
		if ctx < len(closed[i].aggs) {
			dst.Merge(&closed[i].aggs[ctx])
		}
	}
}

// identityRow appends one row of nctx identity aggregates under mask ops.
func identityRow(buf []operator.Agg, nctx int, ops operator.Op) []operator.Agg {
	for c := 0; c < nctx; c++ {
		buf = append(buf, operator.Agg{})
		buf[len(buf)-1].Reset(ops)
	}
	return buf
}

// appendPrefixRow extends a prefix sweep by one row: row j+1 = row j ⊕ rec.
// Prefix rows are running folds from a fixed base, row 0 the identity.
func appendPrefixRow(prefix []operator.Agg, nctx int, ops operator.Op, rec *sliceRec) []operator.Agg {
	base := len(prefix) - nctx
	prefix = identityRow(prefix, nctx, ops)
	for c := 0; c < nctx; c++ {
		p := &prefix[base+nctx+c]
		p.Merge(&prefix[base+c])
		if c < len(rec.aggs) {
			p.Merge(&rec.aggs[c])
		}
	}
	return prefix
}

// insertPrefixRow repairs a prefix sweep (rows are folds of
// closed[base .. base+j)) after a slice carrying delta was inserted at
// ring position pos >= base: one identity row is appended and every row
// that now covers pos is rebuilt as its predecessor ⊕ delta, descending so
// each rebuild reads the pre-insert value of the row below it.
func insertPrefixRow(prefix []operator.Agg, base, nctx int, ops operator.Op, pos int, delta []operator.Agg) []operator.Agg {
	oldRows := len(prefix)/nctx - 1
	prefix = identityRow(prefix, nctx, ops)
	// New row j+1 = old row j ⊕ delta for j in [pos-base, oldRows];
	// descending, so each old row is read before iteration j-1 overwrites
	// it. Rows [0, pos-base] do not cover the inserted slice and keep
	// their values.
	for j := oldRows; j >= pos-base; j-- {
		for c := 0; c < nctx; c++ {
			p := &prefix[(j+1)*nctx+c]
			p.Reset(ops)
			p.Merge(&prefix[j*nctx+c])
			if c < len(delta) {
				p.Merge(&delta[c])
			}
		}
	}
	return prefix
}

// insertSuffixRow repairs a suffix sweep (row i-s0 is the fold of
// closed[i .. f1)) after a slice carrying delta was inserted at ring
// position pos < f1. Positions >= pos shifted right by one, so the sweep's
// extent becomes [s0', f1+1). Returns the updated storage and bounds.
//
// Index rows carry only decomposable state (the mask strips OpNDSort), so
// whole-struct row assignment is safe: Values and scratch are nil.
func insertSuffixRow(suffix []operator.Agg, s0, f1, nctx int, ops operator.Op, pos int, delta []operator.Agg) ([]operator.Agg, int, int) {
	if pos < s0 {
		// Inserted before the sweep: every covered position shifts right,
		// no row's fold changes.
		return suffix, s0 + 1, f1 + 1
	}
	rp := pos - s0 // row index the inserted slice takes
	suffix = identityRow(suffix, nctx, ops)
	rows := len(suffix) / nctx
	// Shift rows above the insertion point up by one (descending so each
	// source is read before it is overwritten).
	for r := rows - 1; r > rp; r-- {
		copy(suffix[r*nctx:(r+1)*nctx], suffix[(r-1)*nctx:r*nctx])
	}
	// The inserted row folds delta with everything to its right.
	for c := 0; c < nctx; c++ {
		s := &suffix[rp*nctx+c]
		s.Reset(ops)
		if c < len(delta) {
			s.Merge(&delta[c])
		}
		if rp+1 < rows {
			s.Merge(&suffix[(rp+1)*nctx+c])
		}
	}
	// Rows left of the insertion now additionally cover the new slice.
	for r := 0; r < rp; r++ {
		for c := 0; c < nctx; c++ {
			if c < len(delta) {
				suffix[r*nctx+c].Merge(&delta[c])
			}
		}
	}
	return suffix, s0, f1 + 1
}
