package core

import (
	"fmt"
	"sort"

	"desis/internal/invariant"
	"desis/internal/operator"
)

// The key-space tier: at group-by scale (one instance per user key, §6.5)
// the engine cannot afford either a flat instance list scanned on reconcile
// or resident state for every key that ever appeared. Instances therefore
// live in hash-sharded maps — the same key→shard routing the execution plan
// uses across engines (plan.ShardOf), extended one level down — and idle
// keys are parked: a TTL sweep serialises a cold key's groups through the
// snapshot machinery into one compact blob, returns their aggregate rows and
// partials to the engine-level free lists, and drops the live state. The
// key's next event (or a plan delta touching it, or an AdvanceTo) restores
// the blob, producing windows identical to a never-evicted run.

// DefaultInstanceShards is the instance-map shard count selected by
// Config.InstanceShards = 0.
const DefaultInstanceShards = 16

// DefaultInstanceSweepEvery is how many ingested events pass between two
// TTL sweep steps when Config.InstanceSweepEvery = 0.
const DefaultInstanceSweepEvery = 1024

// sweepBatch bounds how many keys one sweep step examines, so eviction work
// amortises into the ingest path instead of pausing it: a step costs at most
// one bounded map scan. Go map iteration starts at a random bucket, so
// repeated partial scans cover the shard probabilistically; the TTL is a
// floor, not an exact horizon.
const sweepBatch = 512

// engineFreeCap bounds the engine-level aggregate-row and partial free
// lists that recycle evicted keys' pool contents into future installs.
const engineFreeCap = 256

// keyEntry is one key's resident state: its materialised group instances
// (ascending group id, the order installs happen in) and the event-time
// clock of its last touch, read by the TTL sweep.
type keyEntry struct {
	groups    []*groupState
	lastTouch int64
}

// instShard is one shard of the key-space tier: the resident entries and
// the parked keys' snapshot blobs (each blob starts with its group count).
// Only the lifecycle code (install, evict, revive, shrink — see the
// sliceinvariant writer set) mutates the maps; everything else reads.
// byKeyPeak is the occupancy the map's buckets were grown for, read by the
// shrink pass.
type instShard struct {
	byKey     map[uint32]*keyEntry
	evicted   map[uint32][]byte
	byKeyPeak int
}

// instShardOf routes a key to its instance-map shard, mirroring the plan's
// key→shard map one level down.
func (e *Engine) instShardOf(key uint32) uint32 {
	return key % uint32(len(e.shards))
}

// keyParked reports whether key currently lives as an eviction snapshot.
func (e *Engine) keyParked(key uint32) bool {
	sh := &e.shards[e.instShardOf(key)]
	_, ok := sh.evicted[key]
	return ok
}

// orderedGroups returns the materialised groups in ascending id order — the
// install order of a never-evicting engine, so iteration-order-dependent
// paths (AdvanceTo, Snapshot) behave identically across evict/revive
// cycles. The slice is cached and rebuilt only after a lifecycle change.
func (e *Engine) orderedGroups() []*groupState {
	if !e.orderedStale {
		return e.ordered
	}
	e.ordered = e.ordered[:0]
	for _, gs := range e.byID {
		e.ordered = append(e.ordered, gs)
	}
	sort.Slice(e.ordered, func(i, j int) bool { return e.ordered[i].id < e.ordered[j].id })
	if n := len(e.ordered); cap(e.ordered) >= instShrinkFloor && n*instShrinkRatio < cap(e.ordered) {
		// Drop the peak-sized backing array once eviction has emptied it.
		e.ordered = append(make([]*groupState, 0, n), e.ordered...)
	}
	e.orderedStale = false
	return e.ordered
}

// maybeSweep advances the sweep clock by one ingested event and, every
// InstanceSweepEvery events, scans a bounded batch of one shard for keys
// idle past the TTL.
//
//desis:hotpath
func (e *Engine) maybeSweep() {
	if c := e.sweepClock; c != nil {
		// Shared clock: sweep when the global tick count — total events
		// across every engine on the clock — advanced a full period since
		// this engine's last sweep, so sweep cadence stays uniform under
		// skewed shard load.
		tick := c.Tick()
		if tick-e.lastSweepTick < uint64(e.sweepEvery) {
			return
		}
		e.lastSweepTick = tick
		//lint:ignore hotalloc amortised cold path: one bounded shard scan every InstanceSweepEvery shared ticks; eviction snapshots reuse the engine's scratch buffer
		e.sweepStep()
		return
	}
	e.sweepTick++
	if e.sweepTick < e.sweepEvery {
		return
	}
	e.sweepTick = 0
	//lint:ignore hotalloc amortised cold path: one bounded shard scan every InstanceSweepEvery events; eviction snapshots reuse the engine's scratch buffer
	e.sweepStep()
}

// sweepStep examines up to sweepBatch keys of the cursor shard and evicts
// the ones idle past the TTL.
func (e *Engine) sweepStep() {
	sh := &e.shards[e.sweepCursor]
	e.sweepCursor++
	if e.sweepCursor == len(e.shards) {
		e.sweepCursor = 0
	}
	cutoff := e.now - e.ttl
	scanned := 0
	for key, ent := range sh.byKey {
		if ent.lastTouch <= cutoff {
			e.evictKey(sh, key, ent)
		}
		scanned++
		if scanned >= sweepBatch {
			break
		}
	}
	e.shrinkIndexes(sh)
}

// Map buckets never shrink on delete, so after a mass eviction the
// key→instance indexes would pin bucket arrays sized for their peak forever
// — the same unbounded-growth shape as the slice-scoped dedup map
// (group.go). The sweep's cold path therefore reallocates any index whose
// occupancy collapsed far below the peak it was grown for.
const (
	instShrinkRatio = 4   // occupancy must be this far below the peak
	instShrinkFloor = 512 // peaks below this are not worth reclaiming
)

// shrinkIndexes reallocates the shard's key map and the engine's group
// index at their working size once eviction has emptied them far enough.
func (e *Engine) shrinkIndexes(sh *instShard) {
	if n := len(sh.byKey); sh.byKeyPeak >= instShrinkFloor && n*instShrinkRatio < sh.byKeyPeak {
		m := make(map[uint32]*keyEntry, n)
		for k, v := range sh.byKey {
			m[k] = v
		}
		sh.byKey = m
		sh.byKeyPeak = n
	}
	if n := len(e.byID); e.byIDPeak >= instShrinkFloor && n*instShrinkRatio < e.byIDPeak {
		m := make(map[uint32]*groupState, n)
		for id, gs := range e.byID {
			m[id] = gs
		}
		e.byID = m
		e.byIDPeak = n
	}
}

// evictKey parks one idle key: every group is serialised into a single blob
// via the snapshot machinery, the aggregate rows and partials return to the
// engine free lists, and the live state is dropped. The plan keeps the
// groups and instantiation records, so eviction is invisible to the catalog
// and a parked key cannot be re-instantiated.
func (e *Engine) evictKey(sh *instShard, key uint32, ent *keyEntry) {
	buf := e.snapScratch[:0]
	buf = appendU32s(buf, uint32(len(ent.groups)))
	for _, gs := range ent.groups {
		invariant.Assertf(gs.pending == nil, "evicting group %d with a staged partial", gs.id)
		buf = gs.snapshot(buf)
	}
	e.snapScratch = buf
	blob := make([]byte, len(buf))
	copy(blob, buf)
	sh.evicted[key] = blob
	for _, gs := range ent.groups {
		delete(e.byID, gs.id)
		e.reclaim(gs)
	}
	delete(sh.byKey, key)
	e.orderedStale = true
	n := int64(len(ent.groups))
	e.stats.instLive.Add(-n)
	e.stats.instEvicted.Add(n)
	e.telLive.Add(-n)
	e.telEvicted.Add(n)
}

// reclaim feeds an evicted group's pooled memory into the engine-level free
// lists so future installs (revivals included) start with warm pools.
func (e *Engine) reclaim(gs *groupState) {
	e.freeAggs(gs.cur.aggs)
	gs.cur.aggs = nil
	for i := range gs.closed {
		e.freeAggs(gs.closed[i].aggs)
		gs.closed[i].aggs = nil
	}
	gs.closed = nil
	for _, row := range gs.aggPool {
		e.freeAggs(row)
	}
	gs.aggPool = nil
	for _, p := range gs.partialPool {
		if len(e.partialFree) < engineFreeCap {
			e.partialFree = append(e.partialFree, p)
		}
	}
	gs.partialPool = nil
}

// freeAggs parks one aggregate row on the engine free list (bounded).
func (e *Engine) freeAggs(aggs []operator.Agg) {
	if aggs == nil || len(e.aggFree) >= engineFreeCap {
		return
	}
	e.aggFree = append(e.aggFree, aggs)
}

// takeAggRow pops an engine-pooled aggregate row, nil when empty. The
// caller re-checks capacity and resets the aggregates, exactly like a
// group-pool hit.
func (e *Engine) takeAggRow() []operator.Agg {
	n := len(e.aggFree)
	if n == 0 {
		return nil
	}
	row := e.aggFree[n-1]
	e.aggFree[n-1] = nil
	e.aggFree = e.aggFree[:n-1]
	return row
}

// takePartial pops an engine-pooled partial for group gid, nil when the
// free list is empty.
func (e *Engine) takePartial(gid uint32) *SlicePartial {
	n := len(e.partialFree)
	if n == 0 {
		return nil
	}
	p := e.partialFree[n-1]
	e.partialFree[n-1] = nil
	e.partialFree = e.partialFree[:n-1]
	if invariant.Enabled {
		invariant.UnpoisonPartial(p)
	}
	p.Group = gid
	p.Ingested = 0
	p.EPs = p.EPs[:0]
	p.Aggs = nil
	return p
}

// reviveKey restores a parked key: each group in the blob is rebuilt from
// its catalog entry, its snapshot record replayed, and the result installed
// and reconciled against the current plan (deltas may have arrived while
// the key was parked — the tolerant restore reads the members the snapshot
// knew and syncGroup registers the rest, exactly as a never-evicted group
// would have at delta time, because no events intervened). Returns the
// revived entry, or the resident one when the key was not parked.
func (e *Engine) reviveKey(key uint32) *keyEntry {
	sh := &e.shards[e.instShardOf(key)]
	blob, ok := sh.evicted[key]
	if !ok {
		return sh.byKey[key]
	}
	delete(sh.evicted, key)
	r := &snapReader{buf: blob}
	n := int(r.u32())
	for i := 0; i < n; i++ {
		id := r.u32()
		g := e.plan.GroupByID(id)
		if g == nil {
			// Groups never leave the catalog (removal tombstones members);
			// a missing id means the blob is corrupt.
			panic(fmt.Sprintf("core: eviction snapshot of key %d names unknown group %d", key, id))
		}
		gs := newGroupShell(e, g)
		if err := gs.restoreBody(r, g.Queries); err != nil {
			panic(fmt.Sprintf("core: eviction snapshot of key %d: %v", key, err))
		}
		e.install(gs)
	}
	if r.err != nil {
		panic(fmt.Sprintf("core: eviction snapshot of key %d: %v", key, r.err))
	}
	ent := sh.byKey[key]
	invariant.Assertf(ent != nil && len(ent.groups) == n,
		"revive of key %d installed %d groups, blob held %d", key, len(ent.groups), n)
	// install already counted the groups live again; only the parked and
	// revived counters move here.
	e.stats.instEvicted.Add(int64(-n))
	e.stats.instRevived.Add(int64(n))
	e.telEvicted.Add(int64(-n))
	e.telRevived.Add(int64(n))
	// Reconcile against the current catalog: members added while parked
	// register now, tombstones drop now — the same syncGroup a live group
	// would have seen when the delta applied.
	for _, gs := range ent.groups {
		e.syncGroup(e.plan.GroupByID(gs.id))
	}
	return ent
}

// reviveAll restores every parked key. AdvanceTo and Snapshot run it first:
// punctuations owe results for idle keys too (empty windows included), and
// a full checkpoint must cover the whole key space.
func (e *Engine) reviveAll() {
	for i := range e.shards {
		sh := &e.shards[i]
		for key := range sh.evicted {
			e.reviveKey(key)
		}
	}
}

// InstanceStats is the key-space tier's lifecycle accounting, also surfaced
// as the engine.instances_live/evicted/revived telemetry gauges.
type InstanceStats struct {
	// Live counts materialised group instances.
	Live int
	// Evicted counts group instances currently parked as snapshots.
	Evicted int
	// Revived counts revivals since construction (cumulative).
	Revived uint64
}

// InstanceStats reports the key-space tier's counters. Safe to call
// concurrently with ingestion; each counter is read atomically.
func (e *Engine) InstanceStats() InstanceStats {
	return InstanceStats{
		Live:    int(e.stats.instLive.Load()),
		Evicted: int(e.stats.instEvicted.Load()),
		Revived: uint64(e.stats.instRevived.Load()),
	}
}
