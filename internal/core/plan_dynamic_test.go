package core

import (
	"math/rand"
	"testing"

	"desis/internal/plan"
	"desis/internal/query"
)

func mustPlan(t *testing.T, queries []query.Query, opts plan.Options) *plan.Plan {
	t.Helper()
	p, err := plan.New(queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEngineUpfrontEqualsOneByOne is the single-install-path acceptance
// check: an engine constructed from N queries is indistinguishable — same
// catalog, same results — from an engine that started empty and admitted the
// same N queries as individual plan deltas.
func TestEngineUpfrontEqualsOneByOne(t *testing.T) {
	queries := []query.Query{
		query.MustParse("tumbling(100ms) average key=0"),
		query.MustParse("sliding(150ms,50ms) median key=0"),
		query.MustParse("tumbling(100ms) sum key=0 value>=40"),
		query.MustParse("session(60ms) count key=1"),
		query.MustParse("tumbling(16ev) sum key=1"),
	}
	for i := range queries {
		queries[i].ID = uint64(i + 1)
	}
	rng := rand.New(rand.NewSource(5))
	evs := randomStream(rng, 600, 2)
	adv := evs[len(evs)-1].Time + 2000

	upfront := NewFromPlan(mustPlan(t, queries, plan.Options{}), Config{})
	oneByOne := NewFromPlan(mustPlan(t, nil, plan.Options{}), Config{})
	for _, q := range queries {
		if err := oneByOne.Apply(oneByOne.Plan().AddDelta(q)); err != nil {
			t.Fatalf("add q%d: %v", q.ID, err)
		}
	}
	if got, want := oneByOne.PlanEpoch(), uint64(len(queries)); got != want {
		t.Fatalf("one-by-one epoch %d, want %d", got, want)
	}

	// Identical catalogs (epoch aside — analysis counts no deltas).
	inc := oneByOne.Plan().Clone()
	inc.Epoch = upfront.Plan().Epoch
	if inc.Describe() != upfront.Plan().Describe() {
		t.Fatalf("catalogs diverged:\n one-by-one:\n%s\n upfront:\n%s",
			inc.Describe(), upfront.Plan().Describe())
	}

	upfront.ProcessBatch(evs)
	upfront.AdvanceTo(adv)
	oneByOne.ProcessBatch(evs)
	oneByOne.AdvanceTo(adv)
	if !resultsEqual(oneByOne.Results(), upfront.Results()) {
		t.Error("one-by-one engine produced different results than the up-front engine")
	}
}

// TestSnapshotRestoreWithDynamicPlan interleaves snapshot/restore with
// runtime plan changes: a twin engine that never snapshots sees the same
// event stream and the same deltas; the engine that is cut mid-stream,
// restored via RestoreFromPlan at the cut's epoch, and then driven on must
// emit identical windows.
func TestSnapshotRestoreWithDynamicPlan(t *testing.T) {
	base := []query.Query{
		query.MustParse("tumbling(100ms) average key=0"),
		query.MustParse("sliding(150ms,50ms) sum key=1"),
	}
	for i := range base {
		base[i].ID = uint64(i + 1)
	}
	rng := rand.New(rand.NewSource(11))
	evs := randomStream(rng, 600, 2)
	adv := evs[len(evs)-1].Time + 2000
	a, b := 150, 400

	eng := NewFromPlan(mustPlan(t, base, plan.Options{}), Config{})
	twin := NewFromPlan(mustPlan(t, base, plan.Options{}), Config{})

	// applyBoth keeps the two engines in delta lockstep, the way a topology
	// applies one broadcast delta everywhere.
	applyBoth := func(d plan.Delta) {
		t.Helper()
		if err := eng.Apply(d); err != nil {
			t.Fatal(err)
		}
		if err := twin.Apply(d); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: stream, then a runtime add.
	eng.ProcessBatch(evs[:a])
	twin.ProcessBatch(evs[:a])
	added := query.MustParse("session(80ms) count key=0")
	added.ID = 3
	applyBoth(eng.Plan().AddDelta(added))

	// Phase 2: more stream, then cut.
	eng.ProcessBatch(evs[a:b])
	twin.ProcessBatch(evs[a:b])
	first := eng.Results()
	snap := eng.Snapshot(nil)
	cutPlan := eng.Plan().Clone()

	// A plan one delta ahead of the cut must be refused.
	ahead := cutPlan.Clone()
	extra := query.MustParse("tumbling(200ms) max key=1")
	extra.ID = 9
	if err := ahead.Apply(ahead.AddDelta(extra)); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreFromPlan(ahead, Config{}, snap); err == nil {
		t.Error("RestoreFromPlan accepted a snapshot cut at an older epoch")
	}

	restored, err := RestoreFromPlan(cutPlan, Config{}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.PlanEpoch() != twin.PlanEpoch() {
		t.Fatalf("restored epoch %d, twin %d", restored.PlanEpoch(), twin.PlanEpoch())
	}

	// Phase 3: post-restore plan churn — remove one of the originals — then
	// the rest of the stream. The twin gets the identical delta.
	applyTwinAndRestored := func(d plan.Delta) {
		t.Helper()
		if err := restored.Apply(d); err != nil {
			t.Fatal(err)
		}
		if err := twin.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	applyTwinAndRestored(restored.Plan().RemoveDelta(1))
	restored.ProcessBatch(evs[b:])
	restored.AdvanceTo(adv)
	twin.ProcessBatch(evs[b:])
	twin.AdvanceTo(adv)

	got := append(first, restored.Results()...)
	if !resultsEqual(got, twin.Results()) {
		t.Error("snapshot/restore interleaved with plan changes diverged from the unsnapshotted twin")
	}
}
