package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"desis/internal/operator"
	"desis/internal/plan"
	"desis/internal/query"
	"desis/internal/window"
)

// windowDynamicState aliases the trackers' serialisable state.
type windowDynamicState = window.DynamicState

// Engine snapshots extend the paper's basic fault tolerance (§3.2, which
// covers node/query membership) with state checkpointing: a node can
// serialise every group's slicing position, open and closed slices, and
// dynamic-window trackers, and a restarted node resumes exactly where the
// snapshot was taken. Snapshots pair with the same query set: callers
// persist the queries (they are small) alongside the snapshot.

// snapshotMagic guards against feeding arbitrary bytes to Restore.
const snapshotMagic = 0x44455349 // "DESI"

// snapshotVersion bumps when the layout changes (v2: Stats.Pruned; v3: plan
// epoch; v4: per-group dedup state, which evict/revive must carry or a
// revived key would re-admit duplicates its slice already saw; v5: per-group
// out-of-order commit state — the emission frontier and deferred window
// boundaries, see Config.ReorderHorizon; v6: per-group factor-feed state —
// the super production bound and count-axis accumulator, see factor.go).
const snapshotVersion = 6

// Snapshot appends a serialised checkpoint of the engine's complete mutable
// state to buf. The engine must be quiescent (no concurrent Process). The
// checkpoint records the plan epoch it was cut at: restoring requires an
// engine built from the same catalog at the same epoch. Parked keys are
// revived first so the checkpoint covers the whole key space in one format;
// group records appear in ascending id order, which is the install order of
// a never-evicting engine.
func (e *Engine) Snapshot(buf []byte) []byte {
	e.reviveAll()
	buf = appendU32s(buf, snapshotMagic)
	buf = appendU32s(buf, snapshotVersion)
	buf = appendU64s(buf, e.plan.Epoch)
	buf = appendU64s(buf, e.stats.events.Load())
	buf = appendU64s(buf, e.stats.calculations.Load())
	buf = appendU64s(buf, e.stats.slices.Load())
	buf = appendU64s(buf, e.stats.windows.Load())
	buf = appendU64s(buf, e.stats.pruned.Load())
	ordered := e.orderedGroups()
	buf = appendU32s(buf, uint32(len(ordered)))
	for _, gs := range ordered {
		buf = gs.snapshot(buf)
	}
	return buf
}

func (g *groupState) snapshot(buf []byte) []byte {
	buf = appendU32s(buf, g.id)
	buf = appendBool(buf, g.started)
	buf = appendU64s(buf, uint64(g.lastPunct))
	buf = appendU64s(buf, uint64(g.count))
	buf = appendU64s(buf, uint64(g.lastEventTime))
	buf = appendU64s(buf, g.nextSliceID)
	buf = appendU64s(buf, uint64(len(g.members)))
	for _, m := range g.members {
		buf = appendBool(buf, m.removed)
		buf = appendU64s(buf, uint64(m.regTime))
		buf = appendU64s(buf, uint64(m.regCount))
	}
	// Open slice.
	buf = appendSlice(buf, &g.cur)
	// Closed slices.
	buf = appendU32s(buf, uint32(len(g.closed)))
	for i := range g.closed {
		buf = appendSlice(buf, &g.closed[i])
	}
	// Dynamic trackers.
	sess, lastEv, have := g.sessions.State()
	buf = appendU64s(buf, uint64(lastEv))
	buf = appendBool(buf, have)
	buf = appendDynamic(buf, sess)
	buf = appendDynamic(buf, g.ud.State())
	// Dedup state (v4): the open slice's seen set, sorted so identical
	// engine states serialise to identical bytes.
	buf = appendU32s(buf, uint32(len(g.dedup)))
	if len(g.dedup) > 0 {
		keys := make([]dedupKey, 0, len(g.dedup))
		for k := range g.dedup {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].t != keys[j].t {
				return keys[i].t < keys[j].t
			}
			return math.Float64bits(keys[i].v) < math.Float64bits(keys[j].v)
		})
		for _, k := range keys {
			buf = appendU64s(buf, uint64(k.t))
			buf = appendU64s(buf, math.Float64bits(k.v))
		}
	}
	// Out-of-order commit state (v5). The assembly index itself is derived
	// state and rebuilds lazily; only the emission frontier and the not-yet
	// emitted boundaries must survive.
	buf = appendU64s(buf, uint64(g.emittedBound))
	buf = appendU32s(buf, uint32(len(g.deferred)))
	for _, b := range g.deferred {
		buf = appendU64s(buf, uint64(b))
	}
	// Factor-feed state (v6): zero for groups that are not fed. The feed
	// topology itself is plan state and relinks on restore/revival.
	buf = appendU64s(buf, uint64(g.fedBound))
	buf = appendU64s(buf, uint64(g.fedCount))
	return buf
}

func appendSlice(buf []byte, s *sliceRec) []byte {
	buf = appendU64s(buf, uint64(s.start))
	buf = appendU64s(buf, uint64(s.end))
	buf = appendU64s(buf, uint64(s.startCount))
	buf = appendU64s(buf, uint64(s.endCount))
	buf = appendU64s(buf, uint64(s.lastEvent))
	buf = appendU32s(buf, uint32(len(s.aggs)))
	for i := range s.aggs {
		buf = operator.AppendAgg(buf, &s.aggs[i])
	}
	return buf
}

func appendDynamic(buf []byte, entries []windowDynamicState) []byte {
	buf = appendU32s(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = appendU32s(buf, uint32(e.ID))
		buf = appendBool(buf, e.Active)
		buf = appendU64s(buf, uint64(e.Start))
	}
	return buf
}

// Restore rebuilds an engine from groups (the same set, in the same order,
// as when the snapshot was taken — persist the queries with the snapshot)
// and a checkpoint produced by Snapshot. The snapshot's plan epoch is not
// checked here: callers re-analyzing a persisted query set start at epoch 0
// regardless of how many deltas produced the catalog. RestoreFromPlan is the
// strict variant.
func Restore(groups []*groupOf, cfg Config, snap []byte) (*Engine, error) {
	return restore(New(groups, cfg), snap, false)
}

// RestoreFromPlan rebuilds an engine from an execution plan and a checkpoint
// produced by Snapshot on an engine at the same plan epoch. It takes
// ownership of the plan and fails when the epochs diverge — the guarantee a
// decentralized restore needs before resuming a delta stream.
func RestoreFromPlan(p *plan.Plan, cfg Config, snap []byte) (*Engine, error) {
	return restore(NewFromPlan(p, cfg), snap, true)
}

func restore(e *Engine, snap []byte, checkEpoch bool) (*Engine, error) {
	r := &snapReader{buf: snap}
	if r.u32() != snapshotMagic {
		return nil, fmt.Errorf("core: not a snapshot")
	}
	if v := r.u32(); v != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", v, snapshotVersion)
	}
	epoch := r.u64()
	if checkEpoch && r.err == nil && epoch != e.plan.Epoch {
		return nil, fmt.Errorf("core: snapshot cut at plan epoch %d, engine plan at %d", epoch, e.plan.Epoch)
	}
	e.stats.events.Store(r.u64())
	e.stats.calculations.Store(r.u64())
	e.stats.slices.Store(r.u64())
	e.stats.windows.Store(r.u64())
	e.stats.pruned.Store(r.u64())
	n := int(r.u32())
	ordered := e.orderedGroups()
	if r.err == nil && n != len(ordered) {
		return nil, fmt.Errorf("core: snapshot has %d groups, engine has %d", n, len(ordered))
	}
	for i := 0; i < n && r.err == nil; i++ {
		if err := ordered[i].restore(r); err != nil {
			return nil, err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return e, nil
}

func (g *groupState) restore(r *snapReader) error {
	if id := r.u32(); r.err == nil && id != g.id {
		return fmt.Errorf("core: snapshot group id %d, engine group %d", id, g.id)
	}
	return g.restoreBody(r, nil)
}

// restoreBody replays one group record (everything after the id). With grow
// nil (full-engine restore) the member count must match exactly; with grow
// set to the group's catalog queries (revival of an eviction snapshot) the
// snapshot may know fewer members than the catalog — members admitted while
// the key was parked — and the missing ones are registered by the caller's
// subsequent syncGroup, exactly as a live group would have registered them
// when the delta applied (no events intervened while parked, so the
// registration positions agree).
func (g *groupState) restoreBody(r *snapReader, grow []query.GroupQuery) error {
	g.started = r.bool()
	g.lastPunct = int64(r.u64())
	g.count = int64(r.u64())
	g.lastEventTime = int64(r.u64())
	g.nextSliceID = r.u64()
	nm := int(r.u64())
	if r.err == nil {
		if grow == nil && nm != len(g.members) {
			return fmt.Errorf("core: snapshot has %d members, group %d has %d", nm, g.id, len(g.members))
		}
		if grow != nil && nm > len(grow) {
			return fmt.Errorf("core: snapshot of group %d has %d members, catalog has %d", g.id, nm, len(grow))
		}
	}
	for i := 0; i < nm && r.err == nil; i++ {
		if i >= len(g.members) {
			g.addMember(grow[i])
		}
		removed := r.bool()
		g.members[i].regTime = int64(r.u64())
		g.members[i].regCount = int64(r.u64())
		if removed && !g.members[i].removed {
			g.removeMember(i)
		}
	}
	if err := readSlice(r, &g.cur); err != nil {
		return err
	}
	nc := int(r.u32())
	g.closed = g.closed[:0]
	for i := 0; i < nc && r.err == nil; i++ {
		var s sliceRec
		if err := readSlice(r, &s); err != nil {
			return err
		}
		g.closed = append(g.closed, s)
	}
	lastEv := int64(r.u64())
	have := r.bool()
	g.sessions.SetState(readDynamic(r), lastEv, have)
	g.ud.SetState(readDynamic(r))
	nd := int(r.u32())
	if nd > 0 && g.dedup == nil {
		g.dedup = make(map[dedupKey]struct{}, nd)
	}
	for i := 0; i < nd && r.err == nil; i++ {
		k := dedupKey{t: int64(r.u64()), v: math.Float64frombits(r.u64())}
		g.dedup[k] = struct{}{}
	}
	g.emittedBound = int64(r.u64())
	g.deferred = g.deferred[:0]
	for i, n := 0, int(r.u32()); i < n && r.err == nil; i++ {
		g.deferred = append(g.deferred, int64(r.u64()))
	}
	g.fedBound = int64(r.u64())
	g.fedCount = int64(r.u64())
	g.refreshOOO()
	if g.started {
		g.nextTimeBound = g.cal.NextBoundary(g.lastPunct)
		g.nextCountID = g.countCal.NextBoundary(g.count)
	}
	return r.err
}

func readSlice(r *snapReader, s *sliceRec) error {
	s.start = int64(r.u64())
	s.end = int64(r.u64())
	s.startCount = int64(r.u64())
	s.endCount = int64(r.u64())
	s.lastEvent = int64(r.u64())
	n := int(r.u32())
	s.aggs = make([]operator.Agg, n)
	for i := 0; i < n && r.err == nil; i++ {
		rest, err := operator.DecodeAgg(r.buf, &s.aggs[i])
		if err != nil {
			r.err = err
			return err
		}
		r.buf = rest
		// Open-slice aggregates are mid-accumulation: not sorted yet.
		s.aggs[i].Sorted = false
	}
	return r.err
}

func readDynamic(r *snapReader) []windowDynamicState {
	n := int(r.u32())
	out := make([]windowDynamicState, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, windowDynamicState{
			ID:     int(r.u32()),
			Active: r.bool(),
			Start:  int64(r.u64()),
		})
	}
	return out
}

// --- little-endian helpers ---

func appendU32s(buf []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(buf, t[:]...)
}

func appendU64s(buf []byte, v uint64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	return append(buf, t[:]...)
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

type snapReader struct {
	buf []byte
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("core: truncated snapshot")
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *snapReader) bool() bool {
	b := r.take(1)
	return b != nil && b[0] == 1
}
