package core

import (
	"fmt"
	"sort"
	"time"

	"desis/internal/event"
	"desis/internal/invariant"
	"desis/internal/operator"
	"desis/internal/query"
	"desis/internal/telemetry"
	"desis/internal/window"
)

// sliceRec is one closed slice: its extent on the time and count axes plus
// one partial aggregate per selection context of the group.
type sliceRec struct {
	seq                  uint64 // creation order, monotone with position
	start, end           int64  // event-time extent [start, end)
	startCount, endCount int64  // count-axis extent (events ingested)
	lastEvent            int64  // newest event time at close
	aggs                 []operator.Agg
}

// member is a query inside a group, with registration bookkeeping so queries
// added at runtime only answer windows that started after they arrived.
type member struct {
	query.GroupQuery
	// ops is the member's own operator need (plus count): window assembly
	// merges only these fields, so e.g. an average window in a group that
	// also serves quantiles does not merge the retained value arrays.
	ops      operator.Op
	removed  bool
	regTime  int64
	regCount int64
	// udOpenSeq is, for user-defined members, the sequence number of the
	// first slice belonging to the currently open window. Membership of
	// user-defined windows follows stream order, so a zero-span slice cut
	// by the closing marker (same timestamp as the window start) must not
	// leak into the next window; the sequence filter excludes it.
	udOpenSeq uint64
}

// groupState is the runtime of one query-group: the shared slice stream and
// all window trackers (§4.1, Figure 4).
type groupState struct {
	e          *Engine
	id         uint32
	key        uint32
	placement  query.Placement
	contexts   []query.Predicate
	members    []member
	ops        operator.Op
	logicalOps uint64 // Table-1 union size, for calculation accounting

	cal      window.Calendar    // fixed time-based windows
	countCal window.Calendar    // fixed count-based windows
	sessions window.Sessions    // session windows
	ud       window.UserDefined // user-defined (marker) windows

	started       bool
	cur           sliceRec // open slice
	lastPunct     int64    // end of the last closed slice on the time axis
	nextTimeBound int64
	count         int64 // events ingested (count-axis position)
	nextCountID   int64
	lastEventTime int64
	nextSliceID   uint64

	closed  []sliceRec    // closed slices, monotone in start and startCount
	idx     assemblyIndex // pre-aggregates over closed (assembly.go strategy seam)
	pending *SlicePartial
	scratch operator.Agg
	runs    [][]float64        // scratch run list for value merging
	rm      operator.RunMerger // k-way merger for non-decomposable values

	// aggPool and partialPool recycle the per-slice aggregate rows (their
	// Values buffers keep their capacity) and staged partials, so the
	// steady-state ingest path allocates nothing: pruned slices and
	// recycled partials feed the next closeSlice.
	aggPool     [][]operator.Agg
	partialPool []*SlicePartial

	// Out-of-order commit state (Config.ReorderHorizon). oooHorizon is the
	// group's effective horizon: the configured one when every tracker
	// supports late repair, else 0 (see refreshOOO). emittedBound is the
	// emission frontier — the highest window end already emitted; late
	// events older than it are dropped. deferred holds window boundaries
	// whose emission waits for the horizon to pass (ascending FIFO), and
	// lateDelta is the per-context scratch delta handed to the index.
	oooHorizon   int64
	emittedBound int64
	deferred     []int64
	lateDelta    []operator.Agg

	// Factor-feed runtime (factor.go; annotations from query/factor.go).
	// feedFrom is resolved at install time and nil when the group is not fed
	// or the engine runs in slice-emitting mode (where fed groups degrade to
	// ordinary raw ingestion). fedBound is the next super boundary owed to
	// this group (a multiple of feedPeriod), fedCount its count-axis
	// accumulator; both persist in snapshots. taps lists the fed groups this
	// group feeds, maintained by Engine.install.
	feedFrom   *groupState
	feedCtx    int
	feedPeriod int64
	fedBound   int64
	fedCount   int64
	taps       []*groupState

	// dedup implements the deduplication non-aggregate operator (§4.2.3):
	// events identical in (time, value) within the current slice are
	// dropped. nil when the group does not request deduplication.
	// dedupPeak tracks the occupancy the map's buckets were grown for and
	// dedupLow counts consecutive collapsed slices; see resetDedup.
	dedup     map[dedupKey]struct{}
	dedupPeak int
	dedupLow  int

	// Bound punctuation callbacks: constructed once so the ingest path hands
	// the trackers preallocated closures instead of allocating one per event
	// or punctuation (the hotalloc contract on process/advanceTime).
	onTimeEnd   func(idx int, start int64)
	onCountEnd  func(idx int, start int64)
	onSessEnd   func(idx int, start, end int64)
	onMarkerEnd func(idx int, start, end int64)
	onUDOpen    func(idx int)
	curBound    int64 // time boundary being punctuated, read by onTimeEnd

	// Per-group instruments, nil until Engine.AttachTelemetry: their
	// methods no-op on nil, so the hot path calls them unconditionally and
	// an unattached engine pays one branch, zero allocations.
	telEvents  *telemetry.Counter
	telSlices  *telemetry.Counter
	telWindows *telemetry.Counter
}

type dedupKey struct {
	t int64
	v float64
}

func newGroupState(e *Engine, g *query.Group) *groupState {
	gs := newGroupShell(e, g)
	for _, gq := range g.Queries {
		gs.addMember(gq)
	}
	return gs
}

// newGroupShell builds a group's runtime without registering any members:
// the form revival needs, where the member set (and its registration
// bookkeeping) comes from the eviction snapshot rather than the catalog.
func newGroupShell(e *Engine, g *query.Group) *groupState {
	gs := &groupState{
		e:          e,
		id:         g.ID,
		key:        g.Key,
		placement:  g.Placement,
		contexts:   append([]query.Predicate(nil), g.Contexts...),
		ops:        g.Ops,
		logicalOps: uint64(g.LogicalOps.NumOps()),
	}
	if g.Dedup {
		gs.dedup = make(map[dedupKey]struct{})
	}
	if e.fedActive() && g.FeedPeriod > 0 {
		// The feeder precedes this group in every install order (plan
		// construction, delta Touched order, revival blobs are all ascending
		// id); a missing feeder (defensive: placement filters never split a
		// feed edge) leaves feedFrom nil and the group ingests raw events.
		if f := e.byID[g.FeedFrom]; f != nil {
			gs.feedFrom = f
			gs.feedCtx = g.FeedCtx
			gs.feedPeriod = g.FeedPeriod
		}
	}
	gs.idx = newAssemblyIndex(e.cfg.Assembly)
	gs.refreshOOO()
	// The callbacks close over gs once; per-punctuation state (the current
	// boundary) travels through gs fields rather than fresh captures.
	gs.onTimeEnd = func(idx int, start int64) { gs.assembleTime(idx, start, gs.curBound) }
	gs.onCountEnd = func(idx int, start int64) { gs.assembleCount(idx, start, gs.count) }
	gs.onSessEnd = func(idx int, start, end int64) { gs.endDynamic(idx, start, end, gs.sessions.LastEvent()) }
	gs.onMarkerEnd = func(idx int, start, end int64) { gs.endDynamic(idx, start, end, 0) }
	gs.onUDOpen = func(idx int) { gs.members[idx].udOpenSeq = gs.nextSliceID }
	return gs
}

// attachTelemetry registers the group's counters. The names are stable
// across the topology (group ids come from the shared plan), so merging
// node snapshots sums each group's counters cluster-wide.
func (g *groupState) attachTelemetry(reg *telemetry.Registry) {
	g.telEvents = reg.Counter(fmt.Sprintf("group.%d.events", g.id))
	g.telSlices = reg.Counter(fmt.Sprintf("group.%d.slices", g.id))
	g.telWindows = reg.Counter(fmt.Sprintf("group.%d.windows", g.id))
}

// addMember registers a query in the group's trackers and returns its index.
func (g *groupState) addMember(gq query.GroupQuery) int {
	idx := len(g.members)
	g.members = append(g.members, member{
		GroupQuery: gq,
		ops:        operator.Union(gq.Funcs) | operator.OpCount,
		regTime:    g.lastPunct,
		regCount:   g.count,
	})
	switch gq.Type {
	case query.Tumbling:
		if gq.Measure == query.Time {
			g.cal.Add(idx, gq.Length, gq.Length)
		} else {
			g.countCal.Add(idx, gq.Length, gq.Length)
		}
	case query.Sliding:
		if gq.Measure == query.Time {
			g.cal.Add(idx, gq.Length, gq.Slide)
		} else {
			g.countCal.Add(idx, gq.Length, gq.Slide)
		}
	case query.Session:
		g.sessions.Add(idx, gq.Gap)
	case query.UserDefined:
		g.ud.Add(idx)
	}
	g.refreshOOO()
	return idx
}

// removeMember drops a query from all trackers.
func (g *groupState) removeMember(idx int) {
	g.members[idx].removed = true
	g.cal.Remove(idx)
	g.countCal.Remove(idx)
	g.sessions.Remove(idx)
	g.ud.Remove(idx)
	g.refreshOOO()
}

// refreshOOO recomputes the group's effective reorder horizon. Late
// commits repair time-window state only: slice-emitting mode (partials
// already shipped), dedup (slice-scoped contexts are gone), count windows
// (count-axis positions of later events shift), and session/user-defined
// windows (boundaries themselves depend on event order) all disable it.
// When the capability is lost at runtime, deferred emissions flush first
// so no boundary is stranded.
func (g *groupState) refreshOOO() {
	h := g.e.cfg.ReorderHorizon
	if h > 0 {
		if g.e.cfg.OnSlice != nil || g.dedup != nil ||
			!g.countCal.Empty() || !g.sessions.Empty() || !g.ud.Empty() {
			h = 0
			g.e.noteHorizonDisabled()
		}
	} else {
		h = 0
	}
	if h == 0 && g.oooHorizon > 0 {
		g.drainDeferred(window.NoBoundary)
	}
	g.oooHorizon = h
}

// start opens the first slice at the time of the first event.
func (g *groupState) start(t int64) {
	g.started = true
	g.lastPunct = t
	g.lastEventTime = t
	g.cur = sliceRec{start: t, startCount: g.count, lastEvent: t, aggs: g.newAggs()}
	g.nextTimeBound = g.cal.NextBoundary(t)
	g.nextCountID = g.countCal.NextBoundary(g.count)
	if telemetry.TraceEnabled {
		telemetry.TraceSlice(telemetry.TraceOpen, g.e.cfg.TraceName, uint64(g.id), g.nextSliceID, t, t)
	}
}

func (g *groupState) newAggs() []operator.Agg {
	if n := len(g.aggPool); n > 0 {
		aggs := g.aggPool[n-1]
		g.aggPool[n-1] = nil
		g.aggPool = g.aggPool[:n-1]
		if cap(aggs) >= len(g.contexts) {
			aggs = aggs[:len(g.contexts)]
			for i := range aggs {
				aggs[i].Reset(g.ops)
			}
			return aggs
		}
	}
	// Group-pool miss: an evicted key may have parked a row on the engine
	// free list.
	if row := g.e.takeAggRow(); cap(row) >= len(g.contexts) {
		row = row[:len(g.contexts)]
		for i := range row {
			row[i].Reset(g.ops)
		}
		return row
	}
	//lint:ignore hotalloc pool-miss growth path: steady state recycles rows via recycleAggs, so this runs only while the pool warms up
	aggs := make([]operator.Agg, len(g.contexts))
	for i := range aggs {
		aggs[i].Reset(g.ops)
	}
	return aggs
}

// recycleAggs returns an aggregate row to the pool for the next slice. The
// caller must hold the only reference (pruned slices, recycled partials).
func (g *groupState) recycleAggs(aggs []operator.Agg) {
	if aggs == nil || len(g.aggPool) >= 256 {
		return
	}
	g.aggPool = append(g.aggPool, aggs)
}

// process routes one event through the group: punctuations first (window
// ends exclude the boundary event), then incremental aggregation, then
// count-axis punctuations.
//
//desis:hotpath
func (g *groupState) process(ev event.Event) {
	if g.feedFrom != nil {
		// Fed groups ingest no raw events — their data arrives as supers
		// from the feeder (which, at a lower group id, already processed
		// this event) — so an event only drives this group's clock: no
		// aggregation, no dedup context, no count axis, no late commits.
		if !g.started {
			g.start(ev.Time)
		}
		if ev.Time >= g.cur.start {
			g.advanceTime(ev.Time)
		}
		return
	}
	if !g.started {
		g.start(ev.Time)
	}
	if ev.Marker == event.MarkerNone && ev.Time < g.cur.start && g.e.cfg.ReorderHorizon > 0 {
		// Behind the open slice: an out-of-order event. Groups that can
		// repair commit it into the closed slice covering it; the rest
		// drop it (counted) rather than silently fold it into the wrong
		// slice.
		if g.oooHorizon > 0 {
			//lint:ignore hotalloc late-commit path: runs once per out-of-order event, bounded by the reorder horizon
			g.lateCommit(ev)
		} else {
			g.e.stats.lateDropped.Add(1)
		}
		return
	}
	g.advanceTime(ev.Time)
	if ev.Marker != event.MarkerNone {
		g.handleMarker(ev.Time)
		return
	}
	if g.dedup != nil {
		k := dedupKey{ev.Time, ev.Value}
		if _, dup := g.dedup[k]; dup {
			return // duplicate within the slice: drop before any effect
		}
		g.dedup[k] = struct{}{}
	}
	// A data event that opens a session or the first user-defined window is
	// a start punctuation: the slice must cut here so the new window's
	// start aligns with a slice boundary (§4.1).
	if (!g.sessions.Empty() && g.sessions.NeedsStart()) ||
		(!g.ud.Empty() && g.ud.NeedsStart()) {
		g.closeSlice(ev.Time)
		g.flushPending()
	}
	for i := range g.contexts {
		if g.contexts[i].Matches(ev.Value) {
			g.cur.aggs[i].Add(ev.Value)
			g.e.stats.calculations.Add(g.logicalOps)
		}
	}
	if !g.sessions.Empty() {
		g.sessions.Observe(ev.Time)
	}
	if !g.ud.Empty() {
		// Windows opened by this event start with the slice that will
		// contain it.
		g.ud.ObserveOpened(ev.Time, g.onUDOpen)
	}
	if ev.Time > g.lastEventTime {
		g.lastEventTime = ev.Time
	}
	if ev.Time > g.cur.lastEvent {
		g.cur.lastEvent = ev.Time
	}
	g.count++
	g.e.stats.events.Add(1)
	g.telEvents.Inc()
	for g.count == g.nextCountID {
		g.punctuateCount(ev.Time)
		g.nextCountID = g.countCal.NextBoundary(g.count)
	}
}

// advanceTime fires every time-axis punctuation (fixed boundaries and
// session gap expiries) at or before t, in order.
//
//desis:hotpath
func (g *groupState) advanceTime(t int64) {
	if !g.started {
		return
	}
	for {
		if g.e.cfg.PerEventBoundaryCheck {
			// Ablation: re-derive the boundary on every event instead of
			// caching the advance calendar (§6.2.1's "in advance" claim).
			g.nextTimeBound = g.cal.NextBoundary(g.lastPunct)
		}
		b := g.nextTimeBound
		if s := g.sessions.NextEnd(); s < b {
			b = s
		}
		if len(g.taps) > 0 {
			// Taps are owed a cut at every feed-period multiple; the member
			// calendar usually covers the grid (placement requires a member
			// slide dividing the period), but member removal can strip it.
			if tb := g.nextTapBound(); tb < b {
				b = tb
			}
		}
		if b > t || b == window.NoBoundary {
			break
		}
		g.closeSlice(b)
		if g.e.cfg.OnSlice == nil {
			if g.oooHorizon > 0 {
				// Defer emission until the horizon passes: a late event
				// inside it may still repair the windows ending here.
				g.deferred = append(g.deferred, b)
			} else {
				t0 := g.beginAssembly()
				g.curBound = b
				g.cal.EndsAt(b, g.onTimeEnd)
				g.e.recordAssembly(t0)
				if len(g.taps) > 0 {
					g.produceTaps(b)
				}
			}
		}
		g.sessions.ExpireBefore(b, g.onSessEnd)
		g.flushPending()
		if b >= g.nextTimeBound {
			g.nextTimeBound = g.cal.NextBoundary(b)
		}
		g.prune()
	}
	if len(g.deferred) > 0 {
		g.drainDeferred(g.e.now - g.oooHorizon)
	}
}

// drainDeferred emits the deferred window boundaries at or before wm, in
// order, then prunes the slices they retained. Deferral exists only under
// a reorder horizon; the boundaries replay through the same calendar
// dispatch an immediate emission uses.
func (g *groupState) drainDeferred(wm int64) {
	if g.feedFrom != nil && wm > g.fedBound {
		// A fed group can only assemble windows from supers its feeder has
		// produced. The feeder drains first in group id order, so this cap
		// only bites when a late event advanced this group while the feeder
		// took the late-commit path (which skips its drain): the deferred
		// boundary waits for the feeder's next in-order drain — exactly when
		// the unrewritten plan's group would emit these windows.
		wm = g.fedBound
	}
	k := 0
	for k < len(g.deferred) && g.deferred[k] <= wm {
		b := g.deferred[k]
		t0 := g.beginAssembly()
		g.curBound = b
		g.cal.EndsAt(b, g.onTimeEnd)
		g.e.recordAssembly(t0)
		if b > g.emittedBound {
			g.emittedBound = b
		}
		if len(g.taps) > 0 {
			// Supers become final together with the emissions at b: commit-
			// eligible late events (ev.Time >= emittedBound) can never land
			// inside a produced super.
			g.produceTaps(b)
		}
		k++
	}
	if k == 0 {
		return
	}
	g.deferred = g.deferred[:copy(g.deferred, g.deferred[k:])]
	g.prune()
}

// lateCommit routes an out-of-order event into the already-closed slice
// covering its timestamp, inserting a slice when the timestamp falls in a
// gap (pruned history never qualifies: everything older than the emission
// frontier is dropped first). The assembly index repairs only the rows
// covering the commit position.
func (g *groupState) lateCommit(ev event.Event) {
	if ev.Time < g.emittedBound {
		// Windows covering this event already emitted: too late to repair.
		g.e.stats.lateDropped.Add(1)
		return
	}
	pos := sort.Search(len(g.closed), func(i int) bool { return g.closed[i].start > ev.Time }) - 1
	inserted := false
	if pos < 0 || ev.Time >= g.closed[pos].end {
		pos = g.insertLateSlice(ev.Time, pos)
		inserted = true
	}
	g.applyLate(pos, inserted, ev)
}

// insertLateSlice inserts a zero-count-width slice covering time t between
// closed[pos] and closed[pos+1] (pos may be -1) and returns its position.
// The extent is the calendar cell around t clamped to the neighbors, so no
// window boundary falls strictly inside it and the ring stays disjoint and
// monotone on both axes.
func (g *groupState) insertLateSlice(t int64, pos int) int {
	at := pos + 1
	start := g.cal.PrevBoundary(t)
	if pos >= 0 && g.closed[pos].end > start {
		start = g.closed[pos].end
	}
	end := g.cal.NextBoundary(t)
	if at < len(g.closed) {
		if s := g.closed[at].start; s < end {
			end = s
		}
	} else if g.cur.start < end {
		end = g.cur.start
	}
	var cnt int64
	switch {
	case at > 0:
		cnt = g.closed[at-1].endCount
	case at < len(g.closed):
		cnt = g.closed[at].startCount
	default:
		cnt = g.cur.startCount
	}
	seq := g.nextSliceID
	g.nextSliceID++
	aggs := g.newAggs()
	for i := range aggs {
		aggs[i].Finish()
	}
	g.closed = append(g.closed, sliceRec{})
	copy(g.closed[at+1:], g.closed[at:])
	g.closed[at] = sliceRec{
		seq: seq, start: start, end: end,
		startCount: cnt, endCount: cnt,
		lastEvent: t, aggs: aggs,
	}
	g.e.stats.slices.Add(1)
	g.telSlices.Inc()
	return at
}

// applyLate folds the late event into closed[pos]'s aggregates and hands
// the per-context delta to the assembly index for row repair. The group's
// event count (count-axis position) is not advanced: the count axis is
// stream-order by definition, and count windows are disabled under a
// reorder horizon.
func (g *groupState) applyLate(pos int, inserted bool, ev event.Event) {
	idxOps := g.ops &^ operator.OpNDSort
	for len(g.lateDelta) < len(g.contexts) {
		g.lateDelta = append(g.lateDelta, operator.Agg{})
	}
	g.lateDelta = g.lateDelta[:len(g.contexts)]
	rec := &g.closed[pos]
	for c := range g.contexts {
		d := &g.lateDelta[c]
		d.Reset(idxOps)
		// Lanes beyond the slice's row belong to contexts added after the
		// slice closed; members using them answer no window reaching this
		// far back, so the delta stays empty to keep index rows and ring
		// lanes consistent.
		if c < len(rec.aggs) && g.contexts[c].Matches(ev.Value) {
			d.Add(ev.Value)
			rec.aggs[c].AddLate(ev.Value)
			if !rec.aggs[c].Sorted {
				// A restored row re-enters unsorted (readSlice clears the
				// flag); re-finish so the run merge stays valid.
				rec.aggs[c].Finish()
			}
			g.e.stats.calculations.Add(g.logicalOps)
		}
	}
	g.idx.configure(len(g.contexts), idxOps, len(g.closed))
	g.idx.commitLate(g.closed, pos, inserted, g.lateDelta)
	g.e.stats.events.Add(1)
	g.e.stats.lateCommits.Add(1)
	g.telEvents.Inc()
}

// handleMarker processes a user-defined window boundary event at t.
func (g *groupState) handleMarker(t int64) {
	if g.ud.Empty() {
		return
	}
	g.closeSlice(t)
	g.ud.Marker(t, g.onMarkerEnd)
	// The next window of every user-defined member starts with the next
	// slice; the one just cut holds pre-marker events.
	for i := range g.members {
		if g.members[i].Type == query.UserDefined && !g.members[i].removed {
			g.members[i].udOpenSeq = g.nextSliceID
		}
	}
	g.flushPending()
	g.prune()
}

// punctuateCount closes the slice at a count-axis boundary reached at event
// time t and assembles the count windows that end there.
func (g *groupState) punctuateCount(t int64) {
	g.closeSlice(t)
	if g.e.cfg.OnSlice == nil {
		t0 := g.beginAssembly()
		g.countCal.EndsAt(g.count, g.onCountEnd)
		g.e.recordAssembly(t0)
	}
	g.flushPending()
	g.prune()
}

// endDynamic handles the end of a session or user-defined window: assembled
// locally in store mode, or recorded as an EP on the outgoing slice partial
// in slice-emitting mode (§5.1.2).
func (g *groupState) endDynamic(idx int, start, end, gapStart int64) {
	if g.e.cfg.OnSlice == nil {
		t0 := g.beginAssembly()
		g.assembleTime(idx, start, end)
		g.e.recordAssembly(t0)
		return
	}
	if g.pending == nil {
		g.pending = g.emptyPartial(end)
	}
	g.pending.EPs = append(g.pending.EPs, EP{
		QueryIdx: int32(idx), Start: start, End: end, GapStart: gapStart,
	})
}

// closeSlice terminates the open slice at time-axis position b (no-op when
// the slice is empty on both axes), stores or stages it, and opens the next
// one.
//
//desis:hotpath
func (g *groupState) closeSlice(b int64) {
	if g.count == g.cur.startCount {
		// No events since the last punctuation: slide the open slice
		// forward instead of recording an empty one.
		g.cur.start = b
		g.lastPunct = b
		return
	}
	g.cur.end = b
	g.cur.endCount = g.count
	g.cur.seq = g.nextSliceID
	g.nextSliceID++
	for i := range g.cur.aggs {
		g.cur.aggs[i].Finish()
	}
	g.e.stats.slices.Add(1)
	g.telSlices.Inc()
	if telemetry.TraceEnabled {
		telemetry.TraceSlice(telemetry.TraceClose, g.e.cfg.TraceName, uint64(g.id), g.cur.seq, g.cur.start, b)
	}
	if g.e.cfg.OnSlice != nil {
		g.stagePartial()
	} else {
		g.closed = append(g.closed, g.cur)
		if invariant.Enabled {
			//lint:ignore hotalloc debug-build verification: the ring invariants box their Assertf args, and invariant.Enabled compiles this call out of release builds
			g.checkRing()
		}
		g.idx.configure(len(g.contexts), g.ops&^operator.OpNDSort, len(g.closed)-1)
		g.idx.appendSlice(g.closed)
	}
	g.cur = sliceRec{start: b, startCount: g.count, lastEvent: g.lastEventTime, aggs: g.newAggs()}
	g.lastPunct = b
	if telemetry.TraceEnabled {
		telemetry.TraceSlice(telemetry.TraceOpen, g.e.cfg.TraceName, uint64(g.id), g.nextSliceID, b, b)
	}
	if g.dedup != nil {
		g.resetDedup()
	}
}

// Dedup maps are slice-scoped and reset with clear(), which keeps the
// buckets so steady-state slices reuse them. Kept unconditionally, a key
// that once saw a dedup burst would hold peak-sized buckets forever — at
// group-by cardinality the dominant idle cost — so when occupancy stays
// collapsed (dedupShrinkRatio× below the peak the buckets were grown for,
// dedupShrinkAfter slices in a row, and only once the peak passed
// dedupShrinkMin where bucket memory matters) the map is reallocated at the
// recent working size.
const (
	dedupShrinkMin   = 1024
	dedupShrinkRatio = 8
	dedupShrinkAfter = 16
)

// resetDedup clears the slice-scoped dedup context, shrinking the map when
// occupancy has collapsed below its bucket sizing for long enough.
//
//desis:hotpath
func (g *groupState) resetDedup() {
	n := len(g.dedup)
	if n > g.dedupPeak {
		g.dedupPeak = n
	}
	if g.dedupPeak >= dedupShrinkMin && n*dedupShrinkRatio < g.dedupPeak {
		if g.dedupLow++; g.dedupLow >= dedupShrinkAfter {
			//lint:ignore hotalloc shrink path: runs once per sustained occupancy collapse, trading one allocation for peak-sized buckets held forever
			g.dedup = make(map[dedupKey]struct{}, 2*n)
			g.dedupPeak = 2 * n
			g.dedupLow = 0
			return
		}
	} else {
		g.dedupLow = 0
	}
	if n > 0 {
		clear(g.dedup)
	}
}

// checkRing asserts the closed-slice ring stays disjoint and monotone on
// both axes after an append. Debug builds only (desis_invariants).
func (g *groupState) checkRing() {
	n := len(g.closed)
	if n < 2 {
		return
	}
	a, rec := &g.closed[n-2], &g.closed[n-1]
	invariant.Assertf(a.end <= rec.start,
		"slice ring overlap: seq %d ends at %d, seq %d starts at %d", a.seq, a.end, rec.seq, rec.start)
	invariant.Assertf(a.seq < rec.seq,
		"slice ring seq not monotone: %d then %d", a.seq, rec.seq)
	invariant.Assertf(a.endCount <= rec.startCount,
		"slice ring count overlap: seq %d ends at count %d, seq %d starts at count %d", a.seq, a.endCount, rec.seq, rec.startCount)
}

// stagePartial converts the closed slice into an outgoing SlicePartial; EPs
// discovered while handling this punctuation attach to it before it ships.
func (g *groupState) stagePartial() {
	p := g.getPartial()
	p.ID = g.cur.seq
	p.Start = g.cur.start
	p.End = g.cur.end
	p.LastEvent = g.cur.lastEvent
	p.Ingested = g.cur.endCount - g.cur.startCount
	p.Aggs = g.cur.aggs
	g.pending = p
}

// emptyPartial builds a zero-extent partial at time b, used when an EP must
// ship but the punctuation closed no slice.
func (g *groupState) emptyPartial(b int64) *SlicePartial {
	id := g.nextSliceID
	g.nextSliceID++
	p := g.getPartial()
	p.ID = id
	p.Start = b
	p.End = b
	p.LastEvent = g.lastEventTime
	p.Aggs = g.newAggs()
	return p
}

// getPartial pops a recycled partial (see Engine.RecyclePartial) or
// allocates a fresh one. All fields the staging sites do not overwrite are
// zeroed here.
func (g *groupState) getPartial() *SlicePartial {
	if n := len(g.partialPool); n > 0 {
		p := g.partialPool[n-1]
		g.partialPool[n-1] = nil
		g.partialPool = g.partialPool[:n-1]
		if invariant.Enabled {
			invariant.UnpoisonPartial(p)
		}
		p.Ingested = 0
		p.EPs = p.EPs[:0]
		return p
	}
	if p := g.e.takePartial(g.id); p != nil {
		return p
	}
	//lint:ignore hotalloc pool-miss growth path: shipped partials come back through Engine.RecyclePartial, so this runs only while the pool warms up
	return &SlicePartial{Group: g.id}
}

// recyclePartial returns a shipped partial's aggregate row and struct to
// the pools.
func (g *groupState) recyclePartial(p *SlicePartial) {
	if invariant.Enabled {
		// Poison before the pools touch it: a second recycle or any read
		// through a stale reference must panic with this partial's identity.
		invariant.PoisonPartial(p, p.ID)
	}
	g.recycleAggs(p.Aggs)
	p.Aggs = nil
	if len(g.partialPool) < 256 {
		g.partialPool = append(g.partialPool, p)
	}
}

// flushPending ships the staged partial, if any.
func (g *groupState) flushPending() {
	if g.pending == nil {
		return
	}
	p := g.pending
	g.pending = nil
	if telemetry.TraceEnabled {
		telemetry.TraceSlice(telemetry.TraceShip, g.e.cfg.TraceName, uint64(g.id), p.ID, p.Start, p.End)
	}
	g.e.cfg.OnSlice(p)
}

// assembleTime merges the slices covering the time window [ws, we) of member
// idx and emits its result (window merging, §4.2 / Figure 4).
func (g *groupState) assembleTime(idx int, ws, we int64) {
	m := &g.members[idx]
	if m.removed || ws < m.regTime {
		return
	}
	mops := g.memberOpsFor(m)
	lo := sort.Search(len(g.closed), func(i int) bool { return g.closed[i].start >= ws })
	g.scratch.Reset(mops &^ operator.OpNDSort)
	g.scratch.Sorted = true
	g.runs = g.runs[:0]
	udSeq := uint64(0)
	if m.Type == query.UserDefined {
		udSeq = m.udOpenSeq
	}
	// Slice ends are monotone, so the covered slices form the contiguous
	// range [lo, hi); the sequence filter of user-defined members only
	// raises lo (seq is monotone with position: slices cut before this
	// user-defined window opened belong to its predecessor, even at equal
	// timestamps).
	hi := lo + sort.Search(len(g.closed)-lo, func(i int) bool { return g.closed[lo+i].end > we })
	if udSeq > 0 {
		lo += sort.Search(hi-lo, func(i int) bool { return g.closed[lo+i].seq >= udSeq })
	}
	g.assembleRange(m, mops, lo, hi)
	g.emitResult(m, ws, we)
}

// beginAssembly opens a per-boundary latency measurement when the assembly
// histogram is attached; the zero time means "not measuring" so the
// unattached path never calls time.Now.
func (g *groupState) beginAssembly() time.Time {
	if g.e.telAsm == nil {
		return time.Time{}
	}
	return time.Now()
}

// assembleRange folds closed[lo:hi] into the scratch aggregate through the
// pre-aggregation index (O(1) amortized merges for the decomposable
// operators) and gathers the non-decomposable value runs from the same
// range for the k-way merge.
func (g *groupState) assembleRange(m *member, mops operator.Op, lo, hi int) {
	g.idx.configure(len(g.contexts), g.ops&^operator.OpNDSort, len(g.closed))
	g.idx.query(g.closed, m.Ctx, lo, hi, &g.scratch)
	if mops&operator.OpNDSort != 0 {
		for i := lo; i < hi; i++ {
			g.runs = append(g.runs, g.closed[i].aggs[m.Ctx].Values)
		}
	}
	g.finishValues(m, mops)
}

// finishValues attaches the non-decomposable results when the member reads
// the group's sorted runs. Members that only need min/max (their own
// operator is the decomposable sort, §4.2.2) take the run endpoints in
// O(slices); everyone else gets the k-way merged values, which is
// O(n log k) versus the O(n·k) of folding slices into the scratch one at a
// time.
func (g *groupState) finishValues(m *member, mops operator.Op) {
	if mops&operator.OpNDSort == 0 {
		return
	}
	if m.ops&operator.OpNDSort == 0 && m.ops&operator.OpDSort != 0 {
		g.scratch.Ops |= operator.OpDSort
		for _, r := range g.runs {
			if len(r) == 0 {
				continue
			}
			if r[0] < g.scratch.MinV {
				g.scratch.MinV = r[0]
			}
			if last := r[len(r)-1]; last > g.scratch.MaxV {
				g.scratch.MaxV = last
			}
		}
		return
	}
	g.scratch.Values = g.rm.Merge(g.runs)
	g.scratch.Ops |= operator.OpNDSort
}

// assembleCount merges the slices covering the count window (cs, ce] of
// member idx.
func (g *groupState) assembleCount(idx int, cs, ce int64) {
	m := &g.members[idx]
	if m.removed || cs < m.regCount {
		return
	}
	mops := g.memberOpsFor(m)
	lo := sort.Search(len(g.closed), func(i int) bool { return g.closed[i].startCount >= cs })
	g.scratch.Reset(mops &^ operator.OpNDSort)
	g.scratch.Sorted = true
	g.runs = g.runs[:0]
	// endCount is strictly increasing across closed slices, so the covered
	// slices form the contiguous range [lo, hi).
	hi := lo + sort.Search(len(g.closed)-lo, func(i int) bool { return g.closed[lo+i].endCount > ce })
	g.assembleRange(m, mops, lo, hi)
	g.emitResult(m, cs, ce)
}

// memberOpsFor maps a member's operator needs onto the group's slice
// representation: when the group executes the non-decomposable sort instead
// of the decomposable one (§4.2.2's sharing rule), min/max read the sorted
// values rather than the never-maintained min/max fields.
func (g *groupState) memberOpsFor(m *member) operator.Op {
	ops := m.ops
	if ops&operator.OpDSort != 0 && g.ops&operator.OpDSort == 0 {
		ops = (ops &^ operator.OpDSort) | operator.OpNDSort
	}
	return ops
}

// emitResult evaluates the member's functions over the merged scratch
// aggregate and hands the result to the engine.
func (g *groupState) emitResult(m *member, start, end int64) {
	g.scratch.Finish()
	g.telWindows.Inc()
	if telemetry.TraceEnabled {
		telemetry.TraceSlice(telemetry.TraceAssemble, g.e.cfg.TraceName, uint64(g.id), g.cur.seq, start, end)
	}
	if g.e.cfg.OnWindowAgg != nil {
		g.e.cfg.OnWindowAgg(m.ID, start, end, &g.scratch)
		return
	}
	values := make([]FuncValue, len(m.Funcs))
	for i, spec := range m.Funcs {
		v, ok := g.scratch.Eval(spec)
		values[i] = FuncValue{Spec: spec, Value: v, OK: ok}
	}
	g.e.emit(Result{
		QueryID: m.ID,
		Key:     m.Key,
		Start:   start,
		End:     end,
		Count:   g.scratch.CountV,
		Values:  values,
	})
}

// prune drops closed slices no longer covered by any open window on either
// axis, keeping memory proportional to the longest open window (§2.3). The
// retention threshold is Config.PruneThreshold (default 64); dropped slices
// are counted in Stats.Pruned and their aggregate rows recycled.
func (g *groupState) prune() {
	if len(g.closed) < g.e.pruneThreshold {
		return
	}
	anchor := g.lastPunct
	if g.oooHorizon > 0 {
		// Deferred emissions still read slices their boundaries cover:
		// retain relative to the emission frontier, not the punctuation
		// frontier that ran ahead of it.
		anchor = g.emittedBound
	}
	tNeed := g.cal.EarliestOpenStart(anchor)
	if s := g.sessions.EarliestOpenStart(); s < tNeed {
		tNeed = s
	}
	for _, d := range g.taps {
		// Slices not yet folded into a super must survive: the next super
		// starts at the tap's production bound.
		if d.fedBound < tNeed {
			tNeed = d.fedBound
		}
	}
	if s := g.ud.EarliestOpenStart(); s < tNeed {
		tNeed = s
	}
	cNeed := g.countCal.EarliestOpenStart(g.count)
	// A slice is only ever assembled into windows with ws <= slice.start
	// (gathering requires start >= ws), so once every open or future window
	// starts at or after tNeed/cNeed, slices that started strictly earlier
	// on both axes can never be needed again. Note start < tNeed, not
	// end <= tNeed: a zero-span slice sitting exactly at an open session's
	// start must survive.
	n := 0
	for n < len(g.closed) && g.closed[n].start < tNeed && g.closed[n].startCount < cNeed {
		n++
	}
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		g.recycleAggs(g.closed[i].aggs)
		g.closed[i].aggs = nil
	}
	g.closed = append(g.closed[:0], g.closed[n:]...)
	g.e.stats.pruned.Add(uint64(n))
	g.idx.dropFront(n)
}
