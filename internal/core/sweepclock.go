package core

import "sync/atomic"

// SweepClock is a shared tick source pacing idle-key TTL sweeps across
// engines. Each engine ticks the clock once per ingested event and runs a
// sweep step when the global tick count has advanced by its
// InstanceSweepEvery since the engine's own last sweep. With one clock
// shared across ParallelEngine shards, total ingest volume — not any
// single shard's — paces every shard's sweeps, so a cold shard behind a
// skewed key distribution still parks its idle keys on schedule.
type SweepClock struct {
	ticks atomic.Uint64
}

// Tick advances the clock by one event and returns the new tick count.
func (c *SweepClock) Tick() uint64 { return c.ticks.Add(1) }

// Now returns the current tick count without advancing it.
func (c *SweepClock) Now() uint64 { return c.ticks.Load() }
