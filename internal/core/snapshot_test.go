package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"desis/internal/query"
)

// TestSnapshotRestoreContinuation is the central checkpoint property: run a
// stream halfway, snapshot, restore into a fresh engine, continue — the
// combined results must equal an uninterrupted run.
func TestSnapshotRestoreContinuation(t *testing.T) {
	queries := []query.Query{
		query.MustParse("tumbling(100ms) average key=0"),
		query.MustParse("sliding(150ms,50ms) median key=0"),
		query.MustParse("session(60ms) count key=0"),
		query.MustParse("userdefined max key=0"),
		query.MustParse("tumbling(16ev) sum key=0"),
	}
	for i := range queries {
		queries[i].ID = uint64(i + 1)
	}
	rng := rand.New(rand.NewSource(21))
	evs := randomStream(rng, 500, 1)
	adv := evs[len(evs)-1].Time + 2000

	// Uninterrupted run.
	groups, err := query.Analyze(queries, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := New(groups, Config{})
	ref.ProcessBatch(evs)
	ref.AdvanceTo(adv)
	want := ref.Results()

	// Interrupted run: snapshot at several cut points.
	for _, cut := range []int{0, 1, 137, 250, 499} {
		groups2, err := query.Analyze(queries, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		e1 := New(groups2, Config{})
		e1.ProcessBatch(evs[:cut])
		first := e1.Results()
		snap := e1.Snapshot(nil)

		groups3, err := query.Analyze(queries, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Restore(groups3, Config{}, snap)
		if err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		e2.ProcessBatch(evs[cut:])
		e2.AdvanceTo(adv)
		got := append(first, e2.Results()...)
		if !resultsEqual(got, want) {
			t.Errorf("cut %d: resumed run diverged (%d vs %d results)", cut, len(got), len(want))
		}
	}
}

// TestSnapshotRestoreQuick fuzzes the continuation property over random
// workloads and cut points.
func TestSnapshotRestoreQuick(t *testing.T) {
	f := func(seed int64, cutRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		queries := randomQueries(rng, 1+rng.Intn(5))
		evs := randomStream(rng, 200, 2)
		cut := int(cutRaw) % (len(evs) + 1)
		adv := evs[len(evs)-1].Time + 3000

		want := runEngineQuiet(queries, evs, adv)

		groups, err := query.Analyze(queries, query.Options{})
		if err != nil {
			return false
		}
		e1 := New(groups, Config{})
		e1.ProcessBatch(evs[:cut])
		first := e1.Results()
		snap := e1.Snapshot(nil)
		groups2, _ := query.Analyze(queries, query.Options{})
		e2, err := Restore(groups2, Config{}, snap)
		if err != nil {
			return false
		}
		e2.ProcessBatch(evs[cut:])
		e2.AdvanceTo(adv)
		return resultsEqual(append(first, e2.Results()...), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotPreservesStats(t *testing.T) {
	q := query.MustParse("tumbling(50ms) average key=0")
	q.ID = 1
	groups, _ := query.Analyze([]query.Query{q}, query.Options{})
	e := New(groups, Config{})
	e.ProcessBatch(evenStream(100, 5))
	st := e.Stats()
	groups2, _ := query.Analyze([]query.Query{q}, query.Options{})
	e2, err := Restore(groups2, Config{}, e.Snapshot(nil))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Stats() != st {
		t.Errorf("restored stats %+v, want %+v", e2.Stats(), st)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	q := query.MustParse("tumbling(50ms) sum key=0")
	q.ID = 1
	groups, _ := query.Analyze([]query.Query{q}, query.Options{})
	if _, err := Restore(groups, Config{}, []byte("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Restore(groups, Config{}, nil); err == nil {
		t.Error("empty snapshot accepted")
	}
	// Truncations must error, not panic.
	e := New(groups, Config{})
	e.ProcessBatch(evenStream(50, 7))
	snap := e.Snapshot(nil)
	for i := 0; i < len(snap); i += 13 {
		groups2, _ := query.Analyze([]query.Query{q}, query.Options{})
		if _, err := Restore(groups2, Config{}, snap[:i]); err == nil {
			t.Fatalf("truncated snapshot of %d/%d bytes accepted", i, len(snap))
		}
	}
	// Mismatched group set.
	other := query.MustParse("tumbling(50ms) sum key=5")
	other.ID = 9
	groups3, _ := query.Analyze([]query.Query{q, other}, query.Options{})
	if _, err := Restore(groups3, Config{}, snap); err == nil {
		t.Error("snapshot restored onto a different group set")
	}
}

func TestSnapshotWithRemovedQuery(t *testing.T) {
	a := query.MustParse("tumbling(50ms) sum key=0")
	a.ID = 1
	b := query.MustParse("tumbling(100ms) count key=0")
	b.ID = 2
	groups, _ := query.Analyze([]query.Query{a, b}, query.Options{})
	e := New(groups, Config{})
	e.ProcessBatch(evenStream(30, 5))
	if err := e.RemoveQuery(2); err != nil {
		t.Fatal(err)
	}
	groups2, _ := query.Analyze([]query.Query{a, b}, query.Options{})
	e2, err := Restore(groups2, Config{}, e.Snapshot(nil))
	if err != nil {
		t.Fatal(err)
	}
	e2.ProcessBatch(evenStream(60, 5)[30:])
	e2.AdvanceTo(1000)
	for _, r := range e2.Results() {
		if r.QueryID == 2 && r.End > 150 {
			t.Errorf("removed query revived after restore: %v", r)
		}
	}
}
