package core

import (
	"desis/internal/invariant"
	"desis/internal/operator"
)

// dabaBuildRate is how many suffix rows the under-construction sweep
// builds per slice close. The ring retains at most the longest window's
// slice count L, so a build finishes within ~L/dabaBuildRate appends and
// the direct-fold lag of the freshest windows stays a small constant
// fraction of L — versus the full-ring burst a two-stacks flip pays.
const dabaBuildRate = 8

// dabaIndex is the DABA-Lite assembly strategy (Tangwongsan, Hirzel,
// Schneider: "In-Order Sliding-Window Aggregation in Worst-Case Constant
// Time"), adapted to the many-windows-one-ring factor-window shape that
// sliceIndex serves. Where two-stacks rebuilds its frozen suffix in one
// amortized burst at flip time, DABA-Lite keeps *two* sweeps and builds
// the replacement incrementally:
//
//	A (active):   suffix over [s0, f1) + prefix over [f1, n) — answers
//	              queries exactly like sliceIndex's hit path;
//	B (building): a fresh suffix over [0, bHi) filled right-to-left at
//	              dabaBuildRate rows per append, plus its own prefix
//	              over [bHi, n).
//
// When B's last row lands, B atomically becomes A (a few slice-header
// swaps) and a new B starts over the now-longer ring. Every append costs
// O(1) merges (two prefix rows + dabaBuildRate build rows); every
// emission costs at most two merges on a hit, and a miss — only possible
// for a window whose start lies in B's unbuilt gap — folds at most the
// build lag directly. No operation ever walks the whole ring, which is
// what flattens the p999 assembly-latency tail.
//
// Like sliceIndex, the index is derived state: rebuilt lazily whenever it
// falls out of step with the ring, never serialized.
type dabaIndex struct {
	ops  operator.Op // decomposable mask the partials are folded under
	nctx int         // lanes: one per selection context
	n    int         // ring length the index currently mirrors

	// Active sweep A. suffix is a view into curStore whose end coincides
	// with the store's end; dropFront advances the view in O(1).
	s0, f1   int
	suffix   []operator.Agg
	prefix   []operator.Agg
	curStore []operator.Agg

	// Under-construction sweep B. Built rows are ring positions
	// (bNext, bHi); the row for position i lives at (i+bOff)*nctx (bOff
	// compensates pruned fronts so the build never re-indexes). bPrefix
	// row j is the fold of closed[bHi .. bHi+j).
	building bool
	bHi      int
	bNext    int
	bOff     int
	bStore   []operator.Agg
	bPrefix  []operator.Agg
}

// configure re-targets the index at the given lane count and operator
// mask, invalidating it when either changed.
func (x *dabaIndex) configure(nctx int, ops operator.Op, n int) {
	if x.nctx == nctx && x.ops == ops {
		return
	}
	x.nctx = nctx
	x.ops = ops
	x.resetTo(n)
}

// resetTo empties both sweeps at ring length n: everything before n is
// uncovered until the next build completes.
func (x *dabaIndex) resetTo(n int) {
	x.n = n
	x.s0, x.f1 = n, n
	x.suffix = x.curStore[:0]
	x.prefix = identityRow(x.prefix[:0], x.nctx, x.ops)
	x.building = false
	x.check(nil)
}

// appendSlice extends both prefixes with the ring's newest slice, advances
// the build by dabaBuildRate rows, and swaps B in when it completes.
// Worst-case O(1) merges; no rebuild bursts.
func (x *dabaIndex) appendSlice(closed []sliceRec) {
	n := len(closed)
	if x.n != n-1 {
		// Out of step (restore, or maintenance was off): restart coverage.
		x.resetTo(n - 1)
	}
	x.prefix = appendPrefixRow(x.prefix, x.nctx, x.ops, &closed[n-1])
	if x.building {
		x.bPrefix = appendPrefixRow(x.bPrefix, x.nctx, x.ops, &closed[n-1])
	}
	x.n = n
	if !x.building {
		x.startBuild(n)
	}
	x.buildStep(closed, dabaBuildRate)
	if x.building && x.bNext < 0 {
		x.swap()
		x.startBuild(x.n)
	}
	x.check(closed)
}

// startBuild begins a fresh suffix sweep over the current ring [0, n).
func (x *dabaIndex) startBuild(n int) {
	if n == 0 {
		x.building = false
		return
	}
	x.building = true
	x.bHi = n
	x.bNext = n - 1
	x.bOff = 0
	need := n * x.nctx
	if cap(x.bStore) < need {
		x.bStore = make([]operator.Agg, need)
	} else {
		x.bStore = x.bStore[:need]
	}
	x.bPrefix = identityRow(x.bPrefix[:0], x.nctx, x.ops)
}

// buildStep fills up to k rows of B, right to left: row i is
// closed[i] ⊕ row i+1, so each row lands in one merge per lane.
func (x *dabaIndex) buildStep(closed []sliceRec, k int) {
	for ; x.building && k > 0 && x.bNext >= 0; k-- {
		i := x.bNext
		rec := &closed[i]
		for c := 0; c < x.nctx; c++ {
			s := &x.bStore[(i+x.bOff)*x.nctx+c]
			s.Reset(x.ops)
			if c < len(rec.aggs) {
				s.Merge(&rec.aggs[c])
			}
			if i+1 < x.bHi {
				s.Merge(&x.bStore[(i+1+x.bOff)*x.nctx+c])
			}
		}
		x.bNext--
	}
}

// swap promotes the completed B to be the active sweep and recycles A's
// storage for the next build. O(1): slice-header moves only.
func (x *dabaIndex) swap() {
	oldStore, oldPrefix := x.curStore, x.prefix
	x.curStore = x.bStore
	x.suffix = x.bStore[x.bOff*x.nctx:]
	x.s0, x.f1 = 0, x.bHi
	x.prefix = x.bPrefix
	x.bStore = oldStore[:0]
	x.bPrefix = oldPrefix[:0]
	x.building = false
}

// dropFront tells the index that k slices were pruned off the ring's
// front. The suffix is a view, so A's drop is pointer arithmetic; B keeps
// its storage offsets via bOff.
func (x *dabaIndex) dropFront(k int) {
	if k <= 0 {
		return
	}
	if k > x.f1 {
		// The prune cut into A's prefix region; its base is gone. (B's
		// bHi >= f1, so this also means B lost its base.)
		x.resetTo(x.n - k)
		return
	}
	if k > x.s0 {
		x.suffix = x.suffix[(k-x.s0)*x.nctx:]
		x.s0 = k
	}
	x.s0 -= k
	x.f1 -= k
	x.n -= k
	if x.building {
		x.bOff += k
		x.bHi -= k
		if x.bNext -= k; x.bNext < -1 {
			x.bNext = -1 // the unbuilt gap was pruned away: B is complete
		}
	}
	x.check(nil)
}

// query folds the decomposable aggregate of closed[lo:hi], lane ctx, into
// dst. A-hits and B-hits cost at most two merges; the residual miss — a
// window starting inside B's unbuilt gap — folds directly, bounded by the
// build lag rather than the ring length.
func (x *dabaIndex) query(closed []sliceRec, ctx, lo, hi int, dst *operator.Agg) {
	if lo >= hi {
		return
	}
	if x.n != len(closed) {
		x.resetTo(len(closed))
	}
	if lo >= x.s0 && lo <= x.f1 && hi >= x.f1 && hi <= x.n {
		if lo < x.f1 {
			dst.Merge(&x.suffix[(lo-x.s0)*x.nctx+ctx])
		}
		if j := hi - x.f1; j > 0 {
			dst.Merge(&x.prefix[j*x.nctx+ctx])
		}
		return
	}
	if x.building && lo > x.bNext && lo <= x.bHi && hi >= x.bHi && hi <= x.n {
		if lo < x.bHi {
			dst.Merge(&x.bStore[(lo+x.bOff)*x.nctx+ctx])
		}
		if j := hi - x.bHi; j > 0 {
			dst.Merge(&x.bPrefix[j*x.nctx+ctx])
		}
		return
	}
	for i := lo; i < hi; i++ {
		if ctx < len(closed[i].aggs) {
			dst.Merge(&closed[i].aggs[ctx])
		}
	}
}

// commitLate repairs both sweeps after a late event landed at ring
// position pos. In-place commits merge delta into every row covering pos;
// an inserted slice additionally shifts the rows right of pos. B's
// unbuilt rows need no repair — the build reads the ring after the
// commit — and only a gap-insert below bHi (which would re-index B's
// built rows) restarts the build.
func (x *dabaIndex) commitLate(closed []sliceRec, pos int, inserted bool, delta []operator.Agg) {
	if !inserted {
		if x.n != len(closed) {
			x.resetTo(len(closed))
			return
		}
		x.repairAt(pos, delta)
		if x.building {
			if pos >= x.bHi {
				for j := pos - x.bHi + 1; j <= x.n-x.bHi; j++ {
					for c := 0; c < x.nctx && c < len(delta); c++ {
						x.bPrefix[j*x.nctx+c].Merge(&delta[c])
					}
				}
			} else {
				for i := x.bNext + 1; i <= pos; i++ {
					for c := 0; c < x.nctx && c < len(delta); c++ {
						x.bStore[(i+x.bOff)*x.nctx+c].Merge(&delta[c])
					}
				}
			}
		}
		x.check(closed)
		return
	}
	if x.n != len(closed)-1 {
		x.resetTo(len(closed))
		return
	}
	if pos >= x.f1 {
		x.prefix = insertPrefixRow(x.prefix, x.f1, x.nctx, x.ops, pos, delta)
	} else {
		// The suffix view's end coincides with its store's end, so the
		// append inside insertSuffixRow lands in the store's spare
		// capacity (or reallocates, orphaning curStore — harmless, the
		// next swap re-anchors it).
		x.suffix, x.s0, x.f1 = insertSuffixRow(x.suffix, x.s0, x.f1, x.nctx, x.ops, pos, delta)
	}
	if x.building {
		if pos >= x.bHi {
			x.bPrefix = insertPrefixRow(x.bPrefix, x.bHi, x.nctx, x.ops, pos, delta)
		} else {
			x.building = false
		}
	}
	x.n++
	x.check(closed)
}

// repairAt merges delta into every active-sweep row covering position pos.
func (x *dabaIndex) repairAt(pos int, delta []operator.Agg) {
	if pos < x.f1 {
		for i := x.s0; i <= pos && i < x.f1; i++ {
			for c := 0; c < x.nctx && c < len(delta); c++ {
				x.suffix[(i-x.s0)*x.nctx+c].Merge(&delta[c])
			}
		}
		return
	}
	for j := pos - x.f1 + 1; j <= x.n-x.f1; j++ {
		for c := 0; c < x.nctx && c < len(delta); c++ {
			x.prefix[j*x.nctx+c].Merge(&delta[c])
		}
	}
}

// check validates both sweeps' structural invariants and — for small
// rings with the ring at hand — their deep consistency via the CountV
// fingerprint, exactly like sliceIndex.check. Debug builds only.
func (x *dabaIndex) check(closed []sliceRec) {
	if !invariant.Enabled {
		return
	}
	//lint:ignore hotalloc debug-build verification: invariant.Enabled is a build constant, so release builds compile this call away
	x.checkSlow(closed)
}

func (x *dabaIndex) checkSlow(closed []sliceRec) {
	invariant.Assertf(0 <= x.s0 && x.s0 <= x.f1 && x.f1 <= x.n,
		"daba index flip points out of order: s0=%d f1=%d n=%d", x.s0, x.f1, x.n)
	invariant.Assertf(len(x.suffix) == (x.f1-x.s0)*x.nctx,
		"daba index suffix holds %d aggregates, want %d rows of %d lanes", len(x.suffix), x.f1-x.s0, x.nctx)
	invariant.Assertf(len(x.prefix) == (x.n-x.f1+1)*x.nctx,
		"daba index prefix holds %d aggregates, want %d rows of %d lanes", len(x.prefix), x.n-x.f1+1, x.nctx)
	if x.building {
		invariant.Assertf(x.f1 <= x.bHi && x.bHi <= x.n,
			"daba build boundary out of range: f1=%d bHi=%d n=%d", x.f1, x.bHi, x.n)
		invariant.Assertf(-1 <= x.bNext && x.bNext < x.bHi,
			"daba build cursor out of range: bNext=%d bHi=%d", x.bNext, x.bHi)
		invariant.Assertf(len(x.bPrefix) == (x.n-x.bHi+1)*x.nctx,
			"daba build prefix holds %d aggregates, want %d rows of %d lanes", len(x.bPrefix), x.n-x.bHi+1, x.nctx)
	}
	if closed == nil || x.n != len(closed) || x.n > 64 || x.ops&operator.OpCount == 0 {
		return
	}
	lane := func(rec *sliceRec, c int) int64 {
		if c < len(rec.aggs) {
			return rec.aggs[c].CountV
		}
		return 0
	}
	for c := 0; c < x.nctx; c++ {
		sum := int64(0)
		for j := 0; j <= x.n-x.f1; j++ {
			invariant.Assertf(x.prefix[j*x.nctx+c].CountV == sum,
				"daba index prefix row %d lane %d counts %d events, ring says %d",
				j, c, x.prefix[j*x.nctx+c].CountV, sum)
			if x.f1+j < x.n {
				sum += lane(&closed[x.f1+j], c)
			}
		}
		sum = 0
		for i := x.f1 - 1; i >= x.s0; i-- {
			sum += lane(&closed[i], c)
			invariant.Assertf(x.suffix[(i-x.s0)*x.nctx+c].CountV == sum,
				"daba index suffix row %d lane %d counts %d events, ring says %d",
				i-x.s0, c, x.suffix[(i-x.s0)*x.nctx+c].CountV, sum)
		}
		if !x.building {
			continue
		}
		sum = 0
		for j := 0; j <= x.n-x.bHi; j++ {
			invariant.Assertf(x.bPrefix[j*x.nctx+c].CountV == sum,
				"daba build prefix row %d lane %d counts %d events, ring says %d",
				j, c, x.bPrefix[j*x.nctx+c].CountV, sum)
			if x.bHi+j < x.n {
				sum += lane(&closed[x.bHi+j], c)
			}
		}
		sum = 0
		for i := x.bHi - 1; i > x.bNext; i-- {
			sum += lane(&closed[i], c)
			invariant.Assertf(x.bStore[(i+x.bOff)*x.nctx+c].CountV == sum,
				"daba build row %d lane %d counts %d events, ring says %d",
				i, c, x.bStore[(i+x.bOff)*x.nctx+c].CountV, sum)
		}
	}
}
