package core

import (
	"testing"

	"desis/internal/event"
	"desis/internal/query"
)

// TestDeduplicationOperator exercises the §4.2.3 deduplication operator:
// events identical in (time, value) within one slice are processed once.
func TestDeduplicationOperator(t *testing.T) {
	q := query.MustParse("tumbling(100ms) sum,count key=0")
	q.ID = 1
	groups, err := query.Analyze([]query.Query{q}, query.Options{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if !groups[0].Dedup {
		t.Fatal("analyzer dropped the dedup flag")
	}
	e := New(groups, Config{})
	// Each logical event arrives three times (e.g. at-least-once delivery).
	for i := 0; i < 50; i++ {
		ev := event.Event{Time: int64(i * 2), Value: float64(i)}
		e.Process(ev)
		e.Process(ev)
		e.Process(ev)
	}
	e.AdvanceTo(100)
	rs := e.Results()
	if len(rs) != 1 {
		t.Fatalf("got %d results: %v", len(rs), rs)
	}
	if rs[0].Count != 50 {
		t.Errorf("count = %d, want 50 (duplicates dropped)", rs[0].Count)
	}
	if got := rs[0].Values[0].Value; got != 1225 { // sum 0..49
		t.Errorf("sum = %g, want 1225", got)
	}
}

// TestDeduplicationScopeIsSlice verifies that deduplication state resets at
// slice boundaries: the same (time, value) pair in a later slice is new.
func TestDeduplicationScopeIsSlice(t *testing.T) {
	q := query.MustParse("tumbling(10ms) count key=0")
	q.ID = 1
	groups, err := query.Analyze([]query.Query{q}, query.Options{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(groups, Config{})
	e.Process(event.Event{Time: 1, Value: 5})
	e.Process(event.Event{Time: 1, Value: 5}) // dup in slice 1: dropped
	e.Process(event.Event{Time: 11, Value: 5})
	e.Process(event.Event{Time: 11, Value: 5}) // dup in slice 2: dropped
	e.AdvanceTo(20)
	rs := e.Results()
	if len(rs) != 2 {
		t.Fatalf("got %d results", len(rs))
	}
	for _, r := range rs {
		if r.Count != 1 {
			t.Errorf("window [%d,%d) count = %d, want 1", r.Start, r.End, r.Count)
		}
	}
}

// TestNoDedupByDefault makes sure duplicates pass through without the flag.
func TestNoDedupByDefault(t *testing.T) {
	q := query.MustParse("tumbling(100ms) count key=0")
	q.ID = 1
	groups, err := query.Analyze([]query.Query{q}, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(groups, Config{})
	ev := event.Event{Time: 1, Value: 5}
	e.Process(ev)
	e.Process(ev)
	e.AdvanceTo(200)
	rs := e.Results()
	if len(rs) == 0 || rs[0].Count != 2 {
		t.Fatalf("results %v, want count 2", rs)
	}
}
