package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/query"
)

// runEngine processes evs through a fresh engine for the queries and
// advances to advTo, returning the emitted results.
func runEngine(t *testing.T, queries []query.Query, evs []event.Event, advTo int64, cfg Config) []Result {
	t.Helper()
	groups, err := query.Analyze(queries, query.Options{Decentralized: cfg.Decentralized})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	e := New(groups, cfg)
	e.ProcessBatch(evs)
	if advTo > 0 {
		e.AdvanceTo(advTo)
	}
	return e.Results()
}

// checkAgainstNaive asserts that the engine's results equal the brute-force
// oracle's, as multisets keyed by (query, window), with float tolerance.
func checkAgainstNaive(t *testing.T, queries []query.Query, evs []event.Event, advTo int64) {
	t.Helper()
	got := runEngine(t, queries, evs, advTo, Config{})
	want := naiveResults(queries, evs, advTo)
	compareResults(t, got, want)
}

func resultKey(r Result) string {
	return fmt.Sprintf("q%d[%d,%d)", r.QueryID, r.Start, r.End)
}

func compareResults(t *testing.T, got, want []Result) {
	t.Helper()
	sortResults(got)
	sortResults(want)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d\n got: %v\nwant: %v", len(got), len(want), keys(got), keys(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if resultKey(g) != resultKey(w) {
			t.Fatalf("result %d: got %s, want %s", i, resultKey(g), resultKey(w))
		}
		if g.Count != w.Count {
			t.Errorf("%s: count = %d, want %d", resultKey(w), g.Count, w.Count)
		}
		if len(g.Values) != len(w.Values) {
			t.Fatalf("%s: %d values, want %d", resultKey(w), len(g.Values), len(w.Values))
		}
		for j := range w.Values {
			gv, wv := g.Values[j], w.Values[j]
			if gv.OK != wv.OK {
				t.Errorf("%s %v: ok = %v, want %v", resultKey(w), wv.Spec, gv.OK, wv.OK)
				continue
			}
			if wv.OK && !closeEnough(gv.Value, wv.Value) {
				t.Errorf("%s %v: value = %g, want %g", resultKey(w), wv.Spec, gv.Value, wv.Value)
			}
		}
	}
}

func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].QueryID != rs[j].QueryID {
			return rs[i].QueryID < rs[j].QueryID
		}
		if rs[i].Start != rs[j].Start {
			return rs[i].Start < rs[j].Start
		}
		return rs[i].End < rs[j].End
	})
}

func keys(rs []Result) []string {
	var out []string
	for _, r := range rs {
		out = append(out, resultKey(r))
	}
	return out
}

// evenStream returns n data events with key 0, one every stepMS, values
// 1..n.
func evenStream(n int, stepMS int64) []event.Event {
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{Time: int64(i) * stepMS, Key: 0, Value: float64(i + 1)}
	}
	return evs
}

func TestTumblingSum(t *testing.T) {
	q := query.MustParse("tumbling(100ms) sum key=0")
	q.ID = 1
	evs := evenStream(10, 25) // events at 0,25,...,225
	checkAgainstNaive(t, []query.Query{q}, evs, 300)
}

func TestTumblingAverageExactValues(t *testing.T) {
	q := query.MustParse("tumbling(100ms) average key=0")
	q.ID = 1
	evs := evenStream(8, 25) // two full windows of 4 events each
	got := runEngine(t, []query.Query{q}, evs, 200, Config{})
	if len(got) != 2 {
		t.Fatalf("got %d results: %v", len(got), keys(got))
	}
	sortResults(got)
	if got[0].Values[0].Value != 2.5 { // avg(1,2,3,4)
		t.Errorf("window 1 avg = %g, want 2.5", got[0].Values[0].Value)
	}
	if got[1].Values[0].Value != 6.5 { // avg(5,6,7,8)
		t.Errorf("window 2 avg = %g, want 6.5", got[1].Values[0].Value)
	}
}

func TestSlidingWindows(t *testing.T) {
	q := query.MustParse("sliding(100ms,40ms) sum,count key=0")
	q.ID = 1
	evs := evenStream(25, 17)
	checkAgainstNaive(t, []query.Query{q}, evs, 500)
}

func TestSessionWindows(t *testing.T) {
	q := query.MustParse("session(50ms) average,count key=0")
	q.ID = 1
	evs := []event.Event{
		{Time: 0, Value: 1}, {Time: 20, Value: 2}, {Time: 40, Value: 3},
		// gap > 50 -> session [0, 90)
		{Time: 200, Value: 4}, {Time: 210, Value: 5},
		// gap -> session [200, 260)
		{Time: 400, Value: 6},
	}
	checkAgainstNaive(t, []query.Query{q}, evs, 500)
}

func TestUserDefinedWindows(t *testing.T) {
	q := query.MustParse("userdefined max,count key=0")
	q.ID = 1
	evs := []event.Event{
		{Time: 0, Value: 3}, {Time: 10, Value: 9},
		{Time: 20, Marker: event.MarkerBoundary}, // trip 1 ends: [0,20)
		{Time: 30, Value: 4}, {Time: 35, Value: 1},
		{Time: 50, Marker: event.MarkerBoundary}, // trip 2: [20,50)
		{Time: 60, Value: 7},
	}
	checkAgainstNaive(t, []query.Query{q}, evs, 100)
}

func TestCountTumbling(t *testing.T) {
	q := query.MustParse("tumbling(4ev) sum,median key=0")
	q.ID = 1
	evs := evenStream(11, 10)
	checkAgainstNaive(t, []query.Query{q}, evs, 0)
}

func TestCountSliding(t *testing.T) {
	q := query.MustParse("sliding(6ev,2ev) sum key=0")
	q.ID = 1
	evs := evenStream(17, 5)
	checkAgainstNaive(t, []query.Query{q}, evs, 0)
}

func TestMedianQuantile(t *testing.T) {
	q := query.MustParse("tumbling(100ms) median,quantile(0.9),quantile(0.1) key=0")
	q.ID = 1
	rng := rand.New(rand.NewSource(7))
	evs := make([]event.Event, 60)
	for i := range evs {
		evs[i] = event.Event{Time: int64(i * 9), Value: rng.NormFloat64() * 50}
	}
	checkAgainstNaive(t, []query.Query{q}, evs, 600)
}

func TestFiveWindowTypesShareOneGroup(t *testing.T) {
	// The Figure 3 scenario: five queries, five window shapes, one group.
	queries := []query.Query{
		query.MustParse("tumbling(100ms) max key=0"),
		query.MustParse("sliding(150ms,50ms) median key=0"),
		query.MustParse("session(60ms) sum key=0"),
		query.MustParse("userdefined count key=0"),
		query.MustParse("tumbling(7ev) average key=0"),
	}
	for i := range queries {
		queries[i].ID = uint64(i + 1)
	}
	groups, err := query.Analyze(queries, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("expected one query-group, got %d", len(groups))
	}
	rng := rand.New(rand.NewSource(11))
	var evs []event.Event
	tm := int64(0)
	for i := 0; i < 200; i++ {
		tm += int64(rng.Intn(20))
		ev := event.Event{Time: tm, Value: rng.Float64() * 100}
		if rng.Intn(23) == 0 {
			ev.Marker = event.MarkerBoundary
			ev.Value = 0
		}
		evs = append(evs, ev)
	}
	checkAgainstNaive(t, queries, evs, tm+1000)
}

func TestPredicateContexts(t *testing.T) {
	fast := query.MustParse("tumbling(100ms) average key=0 value>=80")
	fast.ID = 1
	slow := query.MustParse("tumbling(100ms) average key=0 value<25")
	slow.ID = 2
	queries := []query.Query{fast, slow}
	groups, err := query.Analyze(queries, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0].Contexts) != 2 {
		t.Fatalf("grouping: %v", groups)
	}
	rng := rand.New(rand.NewSource(3))
	evs := make([]event.Event, 120)
	for i := range evs {
		evs[i] = event.Event{Time: int64(i * 7), Value: rng.Float64() * 120}
	}
	checkAgainstNaive(t, queries, evs, 1000)
}

func TestMultipleKeysRouting(t *testing.T) {
	q0 := query.MustParse("tumbling(50ms) sum key=0")
	q0.ID = 1
	q1 := query.MustParse("tumbling(50ms) sum key=1")
	q1.ID = 2
	var evs []event.Event
	for i := 0; i < 40; i++ {
		evs = append(evs, event.Event{Time: int64(i * 10), Key: uint32(i % 3), Value: 1})
	}
	checkAgainstNaive(t, []query.Query{q0, q1}, evs, 500)
}

func TestEmptyWindowsEmitted(t *testing.T) {
	q := query.MustParse("tumbling(10ms) count,sum key=0")
	q.ID = 1
	evs := []event.Event{{Time: 0, Value: 1}, {Time: 95, Value: 2}}
	got := runEngine(t, []query.Query{q}, evs, 100, Config{})
	// Windows [0,10) .. [90,100): ten windows, eight of them empty.
	if len(got) != 10 {
		t.Fatalf("got %d results: %v", len(got), keys(got))
	}
	sortResults(got)
	for i, r := range got {
		wantCount := int64(0)
		if i == 0 || i == 9 {
			wantCount = 1
		}
		if r.Count != wantCount {
			t.Errorf("window %d count = %d, want %d", i, r.Count, wantCount)
		}
		if r.Values[0].Value != float64(wantCount) { // count function
			t.Errorf("window %d count value = %g", i, r.Values[0].Value)
		}
		if wantCount == 0 && r.Values[1].OK { // sum of empty window
			t.Errorf("window %d: sum of empty window reported ok", i)
		}
	}
	checkAgainstNaive(t, []query.Query{q}, evs, 100)
}

func TestCalculationSharing(t *testing.T) {
	// avg + sum share the sum operator: 2 logical calculations per event,
	// not 3 (Figure 9b). The forced count bookkeeping is not reported.
	avg := query.MustParse("tumbling(100ms) average key=0")
	avg.ID = 1
	sum := query.MustParse("tumbling(100ms) sum key=0")
	sum.ID = 2
	groups, err := query.Analyze([]query.Query{avg, sum}, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(groups, Config{})
	e.ProcessBatch(evenStream(100, 1))
	if got := e.Stats().Calculations; got != 200 {
		t.Errorf("calculations = %d, want 200 (2 per event)", got)
	}
	// 1000 quantile queries share one ndsort operator: 1 per event.
	var qs []query.Query
	for i := 0; i < 50; i++ {
		q := query.MustParse(fmt.Sprintf("tumbling(100ms) quantile(0.%02d) key=0", i+1))
		q.ID = uint64(i + 1)
		qs = append(qs, q)
	}
	groups, err = query.Analyze(qs, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e = New(groups, Config{})
	e.ProcessBatch(evenStream(100, 1))
	if got := e.Stats().Calculations; got != 100 {
		t.Errorf("quantile calculations = %d, want 100 (1 per event)", got)
	}
}

func TestSliceCountStat(t *testing.T) {
	// Tumbling windows of 1..5 ticks: slices per 60 ticks should match the
	// number of distinct boundaries, independent of window count (Fig 8b).
	var qs []query.Query
	for i := 1; i <= 5; i++ {
		q := query.MustParse(fmt.Sprintf("tumbling(%dms) sum key=0", i*10))
		q.ID = uint64(i)
		qs = append(qs, q)
	}
	groups, err := query.Analyze(qs, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(groups, Config{})
	for i := 0; i <= 600; i++ {
		e.Process(event.Event{Time: int64(i), Value: 1})
	}
	// Boundaries are multiples of 10 within (0, 600]: 60 slices.
	if got := e.Stats().Slices; got != 60 {
		t.Errorf("slices = %d, want 60", got)
	}
}

func TestAddQueryAtRuntime(t *testing.T) {
	base := query.MustParse("tumbling(100ms) sum key=0")
	base.ID = 1
	groups, err := query.Analyze([]query.Query{base}, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(groups, Config{})
	evs := evenStream(30, 10) // t = 0..290
	e.ProcessBatch(evs[:15])  // up to t=140
	added := query.MustParse("tumbling(100ms) median key=0")
	added.ID = 2
	if _, err := e.AddQuery(added); err != nil {
		t.Fatal(err)
	}
	if e.NumGroups() != 1 {
		t.Fatalf("added query founded a new group; want join")
	}
	e.ProcessBatch(evs[15:])
	e.AdvanceTo(300)
	results := e.Results()
	var q1, q2 []Result
	for _, r := range results {
		if r.QueryID == 1 {
			q1 = append(q1, r)
		} else {
			q2 = append(q2, r)
		}
	}
	// Query 1 sees all four windows; query 2 only windows starting at or
	// after its registration (t=140) -> [200,300).
	if len(q1) != 3 {
		t.Errorf("query 1 emitted %d windows, want 3: %v", len(q1), keys(q1))
	}
	if len(q2) != 1 || q2[0].Start != 200 {
		t.Fatalf("query 2 windows: %v, want [200,300)", keys(q2))
	}
	// Its median over values 21..30 (events at 200..290) must be exact.
	if got := q2[0].Values[0].Value; got != 25 {
		t.Errorf("median = %g, want 25", got)
	}
}

func TestAddQueryNewGroupAndKey(t *testing.T) {
	base := query.MustParse("tumbling(100ms) sum key=0")
	base.ID = 1
	groups, _ := query.Analyze([]query.Query{base}, query.Options{})
	e := New(groups, Config{})
	other := query.MustParse("tumbling(100ms) sum key=9")
	other.ID = 2
	if _, err := e.AddQuery(other); err != nil {
		t.Fatal(err)
	}
	if e.NumGroups() != 2 {
		t.Fatalf("want a second group for the new key")
	}
	for i := 0; i < 30; i++ {
		e.Process(event.Event{Time: int64(i * 10), Key: 9, Value: 2})
	}
	e.AdvanceTo(300)
	rs := e.Results()
	if len(rs) != 3 {
		t.Fatalf("results for key 9: %v", keys(rs))
	}
	for _, r := range rs {
		if r.QueryID != 2 || r.Values[0].Value != 20 {
			t.Errorf("unexpected result %v value %g", resultKey(r), r.Values[0].Value)
		}
	}
}

func TestAddQueryInvalid(t *testing.T) {
	e := New(nil, Config{})
	if _, err := e.AddQuery(query.Query{}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestRemoveQuery(t *testing.T) {
	a := query.MustParse("tumbling(100ms) sum key=0")
	a.ID = 1
	b := query.MustParse("tumbling(50ms) count key=0")
	b.ID = 2
	groups, _ := query.Analyze([]query.Query{a, b}, query.Options{})
	e := New(groups, Config{})
	e.ProcessBatch(evenStream(12, 10)) // t=0..110
	if err := e.RemoveQuery(2); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveQuery(2); err == nil {
		t.Error("second RemoveQuery succeeded")
	}
	e.ProcessBatch(evenStream(12, 10)[6:]) // replay tail is fine: in-order times
	e.AdvanceTo(400)
	for _, r := range e.Results() {
		if r.QueryID == 2 && r.End > 110 {
			t.Errorf("removed query still produced %s", resultKey(r))
		}
	}
}

func TestPerEventBoundaryCheckMatches(t *testing.T) {
	q := query.MustParse("sliding(100ms,30ms) sum,max key=0")
	q.ID = 1
	evs := evenStream(50, 13)
	fast := runEngine(t, []query.Query{q}, evs, 1000, Config{})
	slow := runEngine(t, []query.Query{q}, evs, 1000, Config{PerEventBoundaryCheck: true})
	compareResults(t, slow, fast)
}

func TestEngineRandomWorkloadQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		queries := randomQueries(rng, 1+rng.Intn(6))
		evs := randomStream(rng, 150, 2)
		got := runEngineQuiet(queries, evs, 5000)
		want := naiveResults(queries, evs, 5000)
		return resultsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func runEngineQuiet(queries []query.Query, evs []event.Event, advTo int64) []Result {
	groups, err := query.Analyze(queries, query.Options{})
	if err != nil {
		panic(err)
	}
	e := New(groups, Config{})
	e.ProcessBatch(evs)
	e.AdvanceTo(advTo)
	return e.Results()
}

func resultsEqual(got, want []Result) bool {
	sortResults(got)
	sortResults(want)
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		g, w := got[i], want[i]
		if resultKey(g) != resultKey(w) || g.Count != w.Count || len(g.Values) != len(w.Values) {
			return false
		}
		for j := range w.Values {
			if g.Values[j].OK != w.Values[j].OK {
				return false
			}
			if w.Values[j].OK && !closeEnough(g.Values[j].Value, w.Values[j].Value) {
				return false
			}
		}
	}
	return true
}

// randomQueries builds n valid random queries over keys 0..1.
func randomQueries(rng *rand.Rand, n int) []query.Query {
	funcs := []operator.Func{
		operator.Sum, operator.Count, operator.Average, operator.Min,
		operator.Max, operator.Median, operator.Quantile,
	}
	var out []query.Query
	for i := 0; i < n; i++ {
		q := query.Query{ID: uint64(i + 1), Key: uint32(rng.Intn(2)), Pred: query.All()}
		f := funcs[rng.Intn(len(funcs))]
		spec := operator.FuncSpec{Func: f}
		if f == operator.Quantile {
			spec.Arg = 0.1 + 0.8*rng.Float64()
		}
		q.Funcs = []operator.FuncSpec{spec}
		switch rng.Intn(5) {
		case 0:
			q.Type, q.Length = query.Tumbling, int64(10+rng.Intn(200))
		case 1:
			q.Type = query.Sliding
			q.Length = int64(20 + rng.Intn(200))
			q.Slide = 1 + rng.Int63n(q.Length)
		case 2:
			q.Type, q.Gap = query.Session, int64(5+rng.Intn(100))
		case 3:
			q.Type = query.UserDefined
		case 4:
			q.Type, q.Measure = query.Tumbling, query.Count
			q.Length = int64(1 + rng.Intn(20))
		}
		if rng.Intn(3) == 0 {
			q.Pred = query.Above(rng.Float64() * 50)
		}
		out = append(out, q)
	}
	return out
}

// randomStream builds n time-ordered events over nKeys keys with occasional
// markers.
func randomStream(rng *rand.Rand, n, nKeys int) []event.Event {
	var evs []event.Event
	tm := int64(rng.Intn(50))
	for i := 0; i < n; i++ {
		tm += int64(rng.Intn(25))
		ev := event.Event{Time: tm, Key: uint32(rng.Intn(nKeys)), Value: rng.Float64() * 100}
		if rng.Intn(29) == 0 {
			ev.Marker = event.MarkerBoundary
			ev.Value = 0
		}
		evs = append(evs, ev)
	}
	return evs
}
