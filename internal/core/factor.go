package core

import (
	"desis/internal/invariant"
	"desis/internal/operator"
	"desis/internal/window"
)

// Runtime half of the factor-window optimizer (query/factor.go holds the
// placement decision, plan/optimize.go the wire validation). A fed group
// ingests no raw events: its feeder merges the closed slices of one full
// feed period into a single "super-slice" at every period boundary and
// appends it to the fed group's ring, where the ordinary assembly machinery
// (two-stacks, DABA-Lite, or naive) folds supers instead of raw slices. The
// fed group's windows are slide-aligned multiples of the period, so every
// window boundary falls on a super edge and the assembled results are
// identical to the unrewritten plan's — with length/period merges per
// emission instead of length/slice.
//
// The machinery is active only in store mode (Config.OnSlice == nil). On a
// slice-emitting local node feedFrom stays nil and a fed group degrades to
// an ordinary raw-ingesting group: it slices and ships partials like any
// other, which is end-to-end correct and keeps the node tier unchanged.

// fedActive reports whether this engine turns feed annotations into tap
// machinery. Slice-emitting mode ships raw slices instead.
func (e *Engine) fedActive() bool { return e.cfg.OnSlice == nil }

// ceilMult returns the smallest multiple of step at or above v (v >= 0).
func ceilMult(v, step int64) int64 {
	if r := v % step; r != 0 {
		return v - r + step
	}
	return v
}

// floorMult returns the largest multiple of step at or below v (v >= 0).
func floorMult(v, step int64) int64 { return v - v%step }

// nextTapBound returns the earliest super boundary owed to any tap strictly
// after the feeder's last punctuation. Injected into advanceTime's boundary
// candidates so the period grid stays cut even when the feeder members whose
// slides spanned it are removed at runtime.
func (g *groupState) nextTapBound() int64 {
	nb := int64(window.NoBoundary)
	for _, d := range g.taps {
		if b := floorMult(g.lastPunct, d.feedPeriod) + d.feedPeriod; b < nb {
			nb = b
		}
	}
	return nb
}

// produceTaps hands every tap its supers up to emitted boundary b. Called
// at the same point window results for b become final — immediately at the
// boundary in strict-order mode, from drainDeferred under a reorder horizon
// — so a late event can never land inside an already-produced super (commit
// eligibility requires ev.Time >= emittedBound >= every produced super end).
func (g *groupState) produceTaps(b int64) {
	for _, d := range g.taps {
		p := d.feedPeriod
		bound := d.fedBound
		// Skip runs of empty periods in bulk: before the first closed slice
		// (or when nothing is closed at all) every period is empty, and a
		// per-period walk from a stale bound would be O(b/p).
		if len(g.closed) == 0 {
			if fb := floorMult(b, p); fb > bound {
				bound = fb
			}
		} else if first := g.closed[0].start; bound+p <= first {
			if fb := floorMult(first, p); fb > bound {
				bound = fb
			}
		}
		for bound+p <= b {
			g.produceSuper(d, bound, bound+p)
			bound += p
		}
		d.fedBound = bound
	}
}

// produceSuper merges the feeder's closed slices covering [lo, hi) into one
// super-slice for tap d. An empty period appends nothing — the fed ring
// tolerates gaps exactly like closeSlice's empty-slice skip. The fold runs
// through the feeder's assembly index, so a super costs the same amortized
// merges as one window emission, not one merge per covered slice.
func (g *groupState) produceSuper(d *groupState, lo, hi int64) {
	// Manual binary searches: sort.Search's closure would allocate per call
	// on the ingest hot path.
	loIdx, j := 0, len(g.closed)
	for loIdx < j {
		h := int(uint(loIdx+j) >> 1)
		if g.closed[h].start < lo {
			loIdx = h + 1
		} else {
			j = h
		}
	}
	hiIdx, j := loIdx, len(g.closed)
	for hiIdx < j {
		h := int(uint(hiIdx+j) >> 1)
		if g.closed[h].end <= hi {
			hiIdx = h + 1
		} else {
			j = h
		}
	}
	if loIdx == hiIdx {
		return
	}
	row := d.newAggs()
	g.idx.configure(len(g.contexts), g.ops&^operator.OpNDSort, len(g.closed))
	g.idx.query(g.closed, d.feedCtx, loIdx, hiIdx, &row[0])
	row[0].Finish()
	ingested := g.closed[hiIdx-1].endCount - g.closed[loIdx].startCount
	d.acceptSuper(lo, hi, ingested, g.closed[hiIdx-1].lastEvent, row)
}

// acceptSuper appends one super-slice to the fed group's ring. Supers enter
// through the same append discipline closeSlice uses — ring invariants,
// index maintenance, slice accounting — so everything downstream (assembly,
// pruning, late-window deferral, snapshots) treats them as ordinary slices
// with coarse extents.
func (g *groupState) acceptSuper(lo, hi, ingested, lastEvent int64, row []operator.Agg) {
	if !g.started {
		g.start(lo)
	}
	seq := g.nextSliceID
	g.nextSliceID++
	g.fedCount += ingested
	g.closed = append(g.closed, sliceRec{
		seq: seq, start: lo, end: hi,
		startCount: g.fedCount - ingested, endCount: g.fedCount,
		lastEvent: lastEvent, aggs: row,
	})
	if invariant.Enabled {
		//lint:ignore hotalloc debug-build verification: compiled out of release builds
		g.checkRing()
	}
	g.idx.configure(len(g.contexts), g.ops&^operator.OpNDSort, len(g.closed)-1)
	g.idx.appendSlice(g.closed)
	g.e.stats.slices.Add(1)
	g.telSlices.Inc()
}

// alignFed aligns fed members registered from index `from` on with the
// feeder's stream position: like a query joining a raw group at an
// administrative cut, a fed member answers no window starting before
// max(feeder.lastPunct, feeder.lastEventTime) — which also excludes every
// super that could straddle the feeder's mask-widening cut. On group
// creation (from == 0) the production bound starts at the first period
// boundary at or after that position, and a group fed by an already-running
// feeder starts immediately so idle-key punctuations owe it empty windows,
// exactly as the raw group the query would otherwise have joined.
func (g *groupState) alignFed(from int) {
	f := g.feedFrom
	if f == nil {
		return
	}
	reg := f.lastPunct
	if f.lastEventTime > reg {
		reg = f.lastEventTime
	}
	for i := from; i < len(g.members); i++ {
		if g.members[i].regTime < reg {
			g.members[i].regTime = reg
		}
	}
	if from > 0 {
		return
	}
	if b := ceilMult(reg, g.feedPeriod); b > g.fedBound {
		g.fedBound = b
	}
	if !g.started && f.started {
		g.start(reg)
	}
}
