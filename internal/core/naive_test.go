package core

import (
	"math"
	"sort"

	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/query"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }
func ceil(x float64) float64   { return math.Ceil(x) }

// naiveResults is the reference oracle: it computes, for each query, every
// window the engine is expected to emit after processing evs (in order) and
// advancing event time to advTo, evaluating the aggregation functions by
// brute force over the window's events. Events must be time-ordered.
func naiveResults(queries []query.Query, evs []event.Event, advTo int64) []Result {
	var out []Result
	for _, q := range queries {
		out = append(out, naiveQuery(q, evs, advTo)...)
	}
	return out
}

func naiveQuery(q query.Query, evs []event.Event, advTo int64) []Result {
	// Events visible to the query's group: same key, in order. Markers are
	// punctuation, not data.
	var keyEvents []event.Event
	var data []event.Event
	firstEvent := int64(-1)
	lastEvent := int64(-1)
	for _, ev := range evs {
		if ev.Key != q.Key {
			continue
		}
		if firstEvent < 0 {
			firstEvent = ev.Time
		}
		lastEvent = ev.Time
		keyEvents = append(keyEvents, ev)
		if ev.Marker == event.MarkerNone {
			data = append(data, ev)
		}
	}
	if firstEvent < 0 {
		return nil
	}
	if q.Type == query.UserDefined {
		// Membership follows stream order: an event that precedes the
		// marker belongs to the closing window even at equal timestamps.
		var out []Result
		active := false
		var start int64
		var cur []float64
		for _, ev := range keyEvents {
			if ev.Marker != event.MarkerNone {
				if active {
					out = append(out, naiveEval(q, start, ev.Time, cur))
				}
				active, start, cur = true, ev.Time, nil
				continue
			}
			if !active {
				active, start = true, ev.Time
			}
			if q.Pred.Matches(ev.Value) {
				cur = append(cur, ev.Value)
			}
		}
		return out
	}
	adv := advTo
	if lastEvent > adv {
		adv = lastEvent
	}

	type win struct{ start, end int64 } // count windows use ordinals
	var wins []win
	switch {
	case q.Type == query.Tumbling && q.Measure == query.Time:
		for we := (firstEvent/q.Length + 1) * q.Length; we <= adv; we += q.Length {
			if we > firstEvent {
				wins = append(wins, win{we - q.Length, we})
			}
		}
	case q.Type == query.Sliding && q.Measure == query.Time:
		for k := int64(0); ; k++ {
			we := k*q.Slide + q.Length
			if we > adv {
				break
			}
			if we > firstEvent {
				wins = append(wins, win{we - q.Length, we})
			}
		}
	case q.Measure == query.Count:
		// Ordinals are 1-based positions in the group's data events.
		n := int64(len(data))
		step := q.Length
		if q.Type == query.Sliding {
			step = q.Slide
		}
		for k := int64(0); ; k++ {
			end := k*step + q.Length
			if end > n {
				break
			}
			wins = append(wins, win{end - q.Length, end})
		}
	case q.Type == query.Session:
		var start, last int64
		active := false
		for _, ev := range data {
			if active && ev.Time >= last+q.Gap {
				wins = append(wins, win{start, last + q.Gap})
				active = false
			}
			if !active {
				start = ev.Time
				active = true
			}
			last = ev.Time
		}
		if active && last+q.Gap <= adv {
			wins = append(wins, win{start, last + q.Gap})
		}
	}

	var out []Result
	for _, w := range wins {
		var vals []float64
		if q.Measure == query.Count {
			for i := w.start; i < w.end; i++ {
				if q.Pred.Matches(data[i].Value) {
					vals = append(vals, data[i].Value)
				}
			}
		} else {
			for _, ev := range data {
				if ev.Time >= w.start && ev.Time < w.end && q.Pred.Matches(ev.Value) {
					vals = append(vals, ev.Value)
				}
			}
		}
		out = append(out, naiveEval(q, w.start, w.end, vals))
	}
	return out
}

func naiveEval(q query.Query, start, end int64, vals []float64) Result {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	r := Result{QueryID: q.ID, Start: start, End: end, Count: int64(len(vals))}
	for _, spec := range q.Funcs {
		v, ok := naiveFunc(spec, vals, sorted)
		r.Values = append(r.Values, FuncValue{Spec: spec, Value: v, OK: ok})
	}
	return r
}

func naiveFunc(spec operator.FuncSpec, vals, sorted []float64) (float64, bool) {
	n := len(vals)
	sum := 0.0
	prod := 1.0
	for _, v := range vals {
		sum += v
		prod *= v
	}
	switch spec.Func {
	case operator.Count:
		return float64(n), true
	case operator.Sum:
		if n == 0 {
			return 0, false
		}
		return sum, true
	case operator.Average:
		if n == 0 {
			return 0, false
		}
		return sum / float64(n), true
	case operator.Product:
		if n == 0 {
			return 0, false
		}
		return prod, true
	case operator.GeoMean:
		if n == 0 {
			return 0, false
		}
		return pow(prod, 1/float64(n)), true
	case operator.Min:
		if n == 0 {
			return 0, false
		}
		return sorted[0], true
	case operator.Max:
		if n == 0 {
			return 0, false
		}
		return sorted[n-1], true
	case operator.Median:
		return naiveQuantile(sorted, 0.5)
	case operator.Quantile:
		return naiveQuantile(sorted, spec.Arg)
	}
	return 0, false
}

func naiveQuantile(sorted []float64, q float64) (float64, bool) {
	n := len(sorted)
	if n == 0 {
		return 0, false
	}
	rank := int(ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1], true
}
