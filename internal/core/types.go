// Package core implements the Desis aggregation engine (§4): it slices the
// concurrent windows of each query-group at every start/end punctuation,
// executes the group's operator union once per event, and assembles window
// results (or emits per-slice partial results, when deployed on a local node
// of a decentralized topology) from the shared slices.
package core

import (
	"desis/internal/operator"
	"desis/internal/query"
	"desis/internal/telemetry"
)

// FuncValue is the evaluated value of one aggregation function of a query.
type FuncValue struct {
	// Spec is the function that was evaluated.
	Spec operator.FuncSpec
	// Value is the result; meaningless when OK is false.
	Value float64
	// OK is false when the window was empty and the function is undefined
	// on empty input (everything except count).
	OK bool
}

// Result is the output of one window of one query.
type Result struct {
	// QueryID identifies the query (the template id for group-by queries).
	QueryID uint64
	// Key is the event key the window aggregated — meaningful for group-by
	// template instances, fixed to the query's key otherwise.
	Key uint32
	// Start and End bound the window: event-time milliseconds for
	// time-based windows, event ordinals for count-based ones.
	Start, End int64
	// Count is the number of events aggregated into the window.
	Count int64
	// Values holds one entry per aggregation function of the query.
	Values []FuncValue
}

// EP is an end punctuation that travelled with a slice partial: it tells
// upstream nodes that a dynamic (session or user-defined) window of the
// group ended (§5.1.2). Fixed windows need no EPs — their boundaries are
// recomputed from the window attributes on every node.
type EP struct {
	// QueryIdx indexes the group's Queries slice. Groups are formed
	// deterministically, so the index means the same on every node.
	QueryIdx int32
	// Start and End are the window bounds in event time.
	Start, End int64
	// GapStart is the time of the last event before the inactivity gap for
	// session windows (the root checks that gaps cover each other); zero
	// for user-defined windows.
	GapStart int64
}

// SlicePartial is the per-slice partial result a local or intermediate node
// ships to its parent (§5.1). It carries one aggregate per selection context
// of the group.
type SlicePartial struct {
	// Group identifies the query-group.
	Group uint32
	// ID is the auto-incrementing slice id within (node, group).
	ID uint64
	// Start and End bound the slice in event time.
	Start, End int64
	// LastEvent is the time of the newest event the producing node had
	// seen when the slice closed; it doubles as the node's watermark.
	LastEvent int64
	// Ingested is the number of events the slice ingested before selection
	// predicates, i.e. the activity signal session reconstruction needs —
	// an event can extend a session even when every predicate rejects it.
	Ingested int64
	// Aggs holds the partial aggregate per selection context.
	Aggs []operator.Agg
	// EPs lists dynamic window ends that coincide with this slice close.
	EPs []EP
}

// Clone returns a deep copy sharing no memory with p, safe to retain after p
// is recycled. Used by the supervised uplink's replay buffer, which must not
// hold references into the engine's partial pool.
func (p *SlicePartial) Clone() *SlicePartial {
	c := *p
	c.Aggs = make([]operator.Agg, len(p.Aggs))
	for i := range p.Aggs {
		c.Aggs[i] = p.Aggs[i].CloneState()
	}
	c.EPs = append([]EP(nil), p.EPs...)
	return &c
}

// Events reports the total number of events across all contexts of the
// partial.
func (p *SlicePartial) Events() int64 {
	var n int64
	for i := range p.Aggs {
		n += p.Aggs[i].CountV
	}
	return n
}

// Stats counts the engine's work, matching the accounting of the paper's
// evaluation.
type Stats struct {
	// Events is the number of events ingested (after key routing).
	Events uint64
	// Calculations is the number of logical operator executions: per event
	// and matching selection context, the Table-1 operator union size of
	// the group (Figures 9b, 9d, 9f).
	Calculations uint64
	// Slices is the number of slices produced (Figures 8b, 8d).
	Slices uint64
	// Windows is the number of window results emitted.
	Windows uint64
	// Pruned is the number of closed slices dropped by retention pruning
	// (see Config.PruneThreshold).
	Pruned uint64
	// LateCommits is the number of out-of-order events committed into
	// already-closed slices (see Config.ReorderHorizon).
	LateCommits uint64
	// LateDropped is the number of out-of-order events dropped because
	// they fell behind the emission frontier (or the group cannot repair
	// late commits: slice-emitting mode, dedup, count/session/user-defined
	// windows).
	LateDropped uint64
}

// DefaultPruneThreshold is the closed-slice count below which a group skips
// retention pruning (Config.PruneThreshold = 0 selects it).
const DefaultPruneThreshold = 64

// PlacementFilter selects which groups of the execution plan an engine
// materialises. The plan itself is always held complete, so runtime deltas
// reconcile identically on every tier; the filter only gates local state.
type PlacementFilter uint8

// The placement filters.
const (
	// AllGroups materialises every group (central deployments).
	AllGroups PlacementFilter = iota
	// DistributedOnly materialises the distributed groups — what a local
	// node slices; root-only groups' raw events are forwarded instead.
	DistributedOnly
	// RootOnlyGroups materialises the root-only groups — what the root's
	// own engine evaluates over forwarded raw events.
	RootOnlyGroups
)

// accepts reports whether the filter admits a group of the given placement.
func (f PlacementFilter) accepts(p query.Placement) bool {
	switch f {
	case DistributedOnly:
		return p == query.Distributed
	case RootOnlyGroups:
		return p == query.RootOnly
	}
	return true
}

// Config configures an Engine.
type Config struct {
	// OnResult receives window results as they are produced. When nil,
	// results accumulate and are retrieved with Results.
	OnResult func(Result)
	// OnSlice, when non-nil, puts the engine into slice-emitting mode: the
	// mode local nodes run in. Slices are shipped instead of stored and no
	// windows are assembled locally.
	OnSlice func(*SlicePartial)
	// OnWindowAgg, when non-nil, intercepts window completion with the
	// merged (finished) aggregate instead of evaluating the functions and
	// emitting a Result. Disco-style systems use it to ship per-window
	// partial results (§5: "Disco has to send partial results per window").
	// The aggregate is only valid for the duration of the call.
	OnWindowAgg func(queryID uint64, start, end int64, agg *operator.Agg)
	// PerEventBoundaryCheck disables the advance punctuation calendar and
	// re-derives the next boundary on every event — the strategy of the
	// baseline systems, kept for the ablation benchmark.
	PerEventBoundaryCheck bool
	// Assembly selects the window-assembly strategy (see AssemblyKind):
	// two-stacks (default, O(1) amortized), DABA-Lite (worst-case O(1),
	// no rebuild bursts), or naive per-window re-folding (the ablation
	// baseline, the seed behavior).
	Assembly AssemblyKind
	// ReorderHorizon, when positive, admits events up to this many
	// event-time milliseconds behind a group's last punctuation: the late
	// event commits into the already-closed slice covering it (or a slice
	// inserted for it) and the assembly index repairs the affected rows,
	// while window emission at boundaries younger than the horizon defers
	// until the horizon passes. Pairs with NewReordererWithHorizon, which
	// forwards slice-stale-but-window-fresh events instead of buffering
	// them. 0 (the default) keeps strict in-order semantics.
	ReorderHorizon int64
	// SweepClock, when non-nil, replaces the per-engine event counter
	// that paces TTL sweep steps with a shared clock: every engine ticks
	// it per event and sweeps when the global tick count advanced by
	// InstanceSweepEvery since its own last sweep. ParallelEngine shares
	// one clock across shards so sweep cadence stays uniform under skewed
	// shard load. Only meaningful with InstanceTTL set.
	SweepClock *SweepClock
	// PruneThreshold is the closed-slice count a group retains before
	// pruning slices no open window can need; 0 selects
	// DefaultPruneThreshold. Larger values trade memory for fewer
	// compactions.
	PruneThreshold int
	// InstanceTTL, when positive, evicts keys idle for this many
	// event-time milliseconds: their group instances are serialised into a
	// compact snapshot and dropped, to be revived on the key's next event
	// (or plan delta, or AdvanceTo) with windows identical to a
	// never-evicted run. 0 disables eviction. See keyspace.go.
	InstanceTTL int64
	// InstanceShards is the shard count of the engine's key→instance maps;
	// 0 selects DefaultInstanceShards. More shards shorten TTL sweep steps
	// at the cost of more (small) maps.
	InstanceShards int
	// InstanceSweepEvery is how many ingested events pass between two TTL
	// sweep steps; 0 selects DefaultInstanceSweepEvery. Only meaningful
	// with InstanceTTL set.
	InstanceSweepEvery int
	// Decentralized applies the decentralized placement rules when queries
	// are added at runtime (count-based windows are RootOnly, §5.2). Only
	// consulted by the legacy New constructor when it wraps groups into a
	// plan; NewFromPlan callers encode placement in the plan itself.
	Decentralized bool
	// Optimize enables the factor-window optimizer for queries added at
	// runtime: eligible correlated windows place into fed groups assembled
	// from another group's super-slices (see internal/query/factor.go). Like
	// Decentralized, it is only consulted by the groups-based constructors
	// (New, Restore) when they wrap the groups into a plan; NewFromPlan
	// callers carry the flag in the plan itself, where it rides the wire so
	// every tier of a topology replays deltas identically.
	Optimize bool
	// Placement gates which groups of the plan this engine materialises.
	Placement PlacementFilter
	// Telemetry, when non-nil, attaches the engine to a telemetry registry
	// at construction (equivalent to calling AttachTelemetry afterwards):
	// per-group event/slice/window counters plus the assembly-latency
	// histogram. Nil costs one predictable branch per instrumented site.
	Telemetry *telemetry.Registry
	// TraceName labels this engine's slice-lifecycle trace events (the
	// node= field) under the desis_trace build tag; unused otherwise.
	TraceName string
}

// groupOf re-exports the analyzer's group type for readability.
type groupOf = query.Group
