//go:build desis_invariants

package core

import (
	"fmt"
	"strings"
	"testing"

	"desis/internal/event"
	"desis/internal/query"
)

// emitPartials runs a slice-emitting engine over a small stream and returns
// the engine plus the pooled partials it shipped (the real pooled pointers,
// not copies — these tests exercise pool-identity tracking).
func emitPartials(t *testing.T) (*Engine, []*SlicePartial) {
	t.Helper()
	q := query.MustParse("tumbling(100ms) sum key=0")
	q.ID = 1
	groups, err := query.Analyze([]query.Query{q}, query.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	var ps []*SlicePartial
	e := New(groups, Config{OnSlice: func(p *SlicePartial) { ps = append(ps, p) }})
	e.ProcessBatch([]event.Event{{Time: 0, Value: 1}, {Time: 150, Value: 2}})
	e.AdvanceTo(400)
	if len(ps) == 0 {
		t.Fatal("no partials emitted")
	}
	return e, ps
}

// TestDoubleRecyclePanics: recycling the same SlicePartial twice must panic,
// naming the offending slice id.
func TestDoubleRecyclePanics(t *testing.T) {
	e, ps := emitPartials(t)
	p := ps[0]
	id := p.ID
	e.RecyclePartial(p)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second RecyclePartial did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "double recycle of SlicePartial") ||
			!strings.Contains(msg, fmt.Sprintf("slice id %d", id)) {
			t.Fatalf("panic %q does not name double recycle of slice id %d", msg, id)
		}
	}()
	e.RecyclePartial(p)
}

// TestRecycleReissueOK: the pool re-issuing a recycled partial clears the
// poison — the normal recycle → reuse → recycle cycle must not trip the
// checker.
func TestRecycleReissueOK(t *testing.T) {
	e, ps := emitPartials(t)
	e.RecyclePartial(ps[0])
	// Drive more slices through the same group: the pool re-issues the
	// recycled struct, which must arrive unpoisoned and recycle cleanly.
	e.ProcessBatch([]event.Event{{Time: 500, Value: 3}, {Time: 650, Value: 4}})
	e.AdvanceTo(900)
	if len(ps) < 2 {
		t.Fatal("no further partials emitted")
	}
	for _, p := range ps[1:] {
		e.RecyclePartial(p)
	}
}
