package core

import (
	"fmt"
	"math/rand"
	"testing"

	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/query"
)

// The assembly indexes (swag.go, daba.go) must be pure optimizations: for
// any query mix over any stream, the engine answers identically under every
// Config.Assembly strategy. These tests run randomized workloads through
// three engines — two-stacks (default), DABA-Lite, and the naive one
// re-folding every covering slice — and require matching results. Sum- and
// product-derived functions compare with the usual float tolerance (the
// indexes fold slices in different association orders); order statistics
// are exact.

// randomFuncs draws 1–3 aggregation functions covering every operator class.
func randomFuncs(rng *rand.Rand) []operator.FuncSpec {
	all := []operator.FuncSpec{
		{Func: operator.Sum},
		{Func: operator.Count},
		{Func: operator.Average},
		{Func: operator.Product},
		{Func: operator.GeoMean},
		{Func: operator.Min},
		{Func: operator.Max},
		{Func: operator.Median},
		{Func: operator.Quantile, Arg: 0.9},
	}
	n := 1 + rng.Intn(3)
	var out []operator.FuncSpec
	for i := 0; i < n; i++ {
		out = append(out, all[rng.Intn(len(all))])
	}
	return out
}

// randomPred draws from a small palette so equal predicates recur across
// queries and selection contexts actually get shared.
func randomPred(rng *rand.Rand) query.Predicate {
	switch rng.Intn(4) {
	case 0:
		return query.Above(1.0)
	case 1:
		return query.Below(1.0)
	case 2:
		return query.Range(0.9, 1.1)
	default:
		return query.All()
	}
}

func randomQuery(rng *rand.Rand, id uint64) query.Query {
	q := query.Query{
		ID:    id,
		Key:   uint32(rng.Intn(3)),
		Pred:  randomPred(rng),
		Funcs: randomFuncs(rng),
	}
	switch rng.Intn(4) {
	case 0:
		q.Type = query.Tumbling
		if rng.Intn(2) == 0 {
			q.Measure = query.Count
			q.Length = int64(5 + rng.Intn(40))
		} else {
			q.Measure = query.Time
			q.Length = int64(200 + rng.Intn(2000))
		}
	case 1:
		q.Type = query.Sliding
		if rng.Intn(2) == 0 {
			q.Measure = query.Count
			q.Length = int64(10 + rng.Intn(60))
			q.Slide = 1 + rng.Int63n(q.Length)
		} else {
			q.Measure = query.Time
			q.Length = int64(400 + rng.Intn(3000))
			q.Slide = 50 + rng.Int63n(q.Length-50+1)
		}
	case 2:
		q.Type = query.Session
		q.Measure = query.Time
		q.Gap = int64(100 + rng.Intn(600))
	default:
		q.Type = query.UserDefined
		q.Measure = query.Time
	}
	return q
}

// randomStream emits in-order events over the query keys with jittered
// inter-arrival times, idle gaps (for sessions), and occasional user-defined
// window markers. Values stay near 1.0 so products neither overflow nor
// vanish.
func randomAssemblyStream(rng *rand.Rand, n int) ([]event.Event, int64) {
	evs := make([]event.Event, 0, n)
	t := int64(1000)
	for i := 0; i < n; i++ {
		switch {
		case rng.Intn(200) == 0:
			t += int64(300 + rng.Intn(900)) // idle gap: closes sessions
		default:
			t += int64(rng.Intn(20))
		}
		ev := event.Event{
			Time:  t,
			Key:   uint32(rng.Intn(3)),
			Value: 0.8 + 0.4*rng.Float64(),
		}
		if rng.Intn(50) == 0 {
			ev.Marker = event.MarkerBoundary
		}
		evs = append(evs, ev)
	}
	return evs, t + 10_000
}

func differentialConfigs(seed int64) (indexed, daba, naive Config) {
	// Odd seeds prune aggressively so the indexes' dropFront/reset paths run;
	// even seeds keep the default retention. All engines must prune alike —
	// pruning itself is correctness-neutral, but identical retention keeps
	// the engines' emission order trivially comparable.
	if seed%2 == 1 {
		indexed.PruneThreshold = 8
		daba.PruneThreshold = 8
		naive.PruneThreshold = 8
	}
	daba.Assembly = AssemblyDABA
	naive.Assembly = AssemblyNaive
	return indexed, daba, naive
}

func TestAssemblyDifferential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nq := 6 + rng.Intn(12)
			var queries []query.Query
			for i := 0; i < nq; i++ {
				q := randomQuery(rng, uint64(i+1))
				if err := q.Validate(); err != nil {
					t.Fatalf("generated invalid query: %v", err)
				}
				queries = append(queries, q)
			}
			evs, advTo := randomAssemblyStream(rng, 2000)
			idxCfg, dabaCfg, naiveCfg := differentialConfigs(seed)
			want := runEngine(t, queries, evs, advTo, naiveCfg)
			compareResults(t, runEngine(t, queries, evs, advTo, idxCfg), want)
			compareResults(t, runEngine(t, queries, evs, advTo, dabaCfg), want)
		})
	}
}

// TestAssemblyDifferentialRuntimeAdd adds queries mid-stream: the group's
// operator mask and context set widen at an administrative punctuation, and
// the index has to reconfigure without corrupting earlier state.
func TestAssemblyDifferentialRuntimeAdd(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var initial []query.Query
			for i := 0; i < 5; i++ {
				initial = append(initial, randomQuery(rng, uint64(i+1)))
			}
			var added []query.Query
			for i := 0; i < 4; i++ {
				added = append(added, randomQuery(rng, uint64(100+i)))
			}
			evs, advTo := randomAssemblyStream(rng, 2000)
			idxCfg, dabaCfg, naiveCfg := differentialConfigs(seed)

			run := func(cfg Config) []Result {
				groups, err := query.Analyze(initial, query.Options{})
				if err != nil {
					t.Fatalf("Analyze: %v", err)
				}
				e := New(groups, cfg)
				e.ProcessBatch(evs[:len(evs)/2])
				for _, q := range added {
					if _, err := e.AddQuery(q); err != nil {
						t.Fatalf("AddQuery: %v", err)
					}
				}
				e.ProcessBatch(evs[len(evs)/2:])
				e.AdvanceTo(advTo)
				return e.Results()
			}
			want := run(naiveCfg)
			compareResults(t, run(idxCfg), want)
			compareResults(t, run(dabaCfg), want)
		})
	}
}

// TestAssemblySnapshotRoundTrip checkpoints an indexed engine mid-stream and
// restores it: the index is derived state, rebuilt lazily after restore, so
// the resumed engine must continue identically to an uninterrupted one.
func TestAssemblySnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var queries []query.Query
	for i := 0; i < 8; i++ {
		queries = append(queries, randomQuery(rng, uint64(i+1)))
	}
	evs, advTo := randomAssemblyStream(rng, 2000)
	groups, err := query.Analyze(queries, query.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	full := New(groups, Config{})
	full.ProcessBatch(evs)
	full.AdvanceTo(advTo)
	want := full.Results()

	e := New(groups, Config{})
	e.ProcessBatch(evs[:len(evs)/2])
	partial := e.Results()
	snap := e.Snapshot(nil)
	groups2, err := query.Analyze(queries, query.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	e2, err := Restore(groups2, Config{}, snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	e2.ProcessBatch(evs[len(evs)/2:])
	e2.AdvanceTo(advTo)
	got := append(partial, e2.Results()...)
	compareResults(t, got, want)
	if s := e2.Stats(); s.Pruned == 0 {
		t.Logf("no pruning occurred in round-trip run (threshold %d)", DefaultPruneThreshold)
	}
}
