package core

import (
	"desis/internal/invariant"
	"desis/internal/operator"
)

// sliceIndex maintains shared prefix/suffix partial aggregates over a
// group's closed slice ring, so window assembly answers any slice range
// [lo, hi) of the decomposable operators with O(1) amortized Agg.Merge
// calls instead of folding every covering slice per window.
//
// The scheme is the two-stacks sliding-window aggregation of Tangwongsan et
// al. ("In-Order Sliding-Window Aggregation in Worst-Case Constant Time"),
// adapted to the many-windows-one-ring setting of Wu et al.'s factor
// windows: because every concurrent window of a query-group ends at the
// ring's current tail, one *suffix* sweep frozen at a flip point plus an
// incrementally grown *prefix* over the slices appended since serves every
// window of every member:
//
//		closed:  [ s0 ........ f1 ........ n )
//		          |-- suffix --|-- prefix --|
//
//	  - suffix[i] = fold(closed[i .. f1)), built right-to-left at flip time —
//	    one merge per slice, frozen until the next flip;
//	  - prefix[j] = fold(closed[f1 .. f1+j)), extended by one merge per
//	    context whenever a slice closes;
//	  - a window covering [lo, n) with lo <= f1 is suffix[lo] ⊕ prefix[n-f1]:
//	    two merges, however many slices it spans.
//
// Windows that start after the flip point (lo > f1) fold their slices
// directly — identical to the naive path — and charge the fold length to
// missCost; once the accumulated misses would pay for rebuilding the
// suffix over the whole retained ring, the index flips. The rebuild is
// thereby amortized against the folds it replaces, giving O(1) amortized
// merges per emitted window and O(1) merges per closed slice.
//
// Only decomposable operators live in the index (the mask strips OpNDSort);
// non-decomposable value runs are gathered per window from the same [lo,
// hi) range and merged k-way by operator.RunMerger, exactly as before.
//
// The index is derived state: it is rebuilt lazily whenever it falls out of
// step with the ring (snapshot restore, operator-mask widening, context
// growth), so it needs no serialization and cannot desynchronize.
type sliceIndex struct {
	ops  operator.Op // decomposable mask the partials are folded under
	nctx int         // lanes: one per selection context
	n    int         // ring length the index currently mirrors

	s0, f1 int // suffix covers [s0, f1), prefix covers [f1, n)

	// suffix holds (f1-s0) rows of nctx aggregates; the row for ring
	// position i starts at (i-s0)*nctx.
	suffix []operator.Agg
	// prefix holds (n-f1+1) rows of nctx aggregates; row j is the fold of
	// closed[f1 .. f1+j), row 0 the identity.
	prefix []operator.Agg

	// missCost accumulates direct-fold lengths since the last flip; the
	// flip policy compares it against the rebuild cost.
	missCost int
}

// configure re-targets the index at the given lane count and operator mask,
// invalidating it when either changed (a runtime plan delta widening the
// mask, context growth). The decomposable mask is derived by the caller.
func (x *sliceIndex) configure(nctx int, ops operator.Op, n int) {
	if x.nctx == nctx && x.ops == ops {
		return
	}
	x.nctx = nctx
	x.ops = ops
	x.resetTo(n)
}

// resetTo empties the index's coverage at ring length n: everything before
// n is uncovered (queries fold directly until the miss budget triggers a
// flip), appends from n on grow the prefix.
func (x *sliceIndex) resetTo(n int) {
	x.n = n
	x.s0, x.f1 = n, n
	x.suffix = x.suffix[:0]
	x.prefix = identityRow(x.prefix[:0], x.nctx, x.ops)
	x.missCost = 0
	x.check(nil)
}

// appendSlice extends the prefix with the ring's newest slice (one merge
// per context). closed must already contain the slice.
func (x *sliceIndex) appendSlice(closed []sliceRec) {
	n := len(closed)
	if x.n != n-1 {
		// Out of step (restore, or maintenance was off): restart coverage.
		x.resetTo(n - 1)
	}
	x.prefix = appendPrefixRow(x.prefix, x.nctx, x.ops, &closed[n-1])
	x.n = n
	x.check(closed)
}

// dropFront tells the index that k slices were pruned off the ring's front.
func (x *sliceIndex) dropFront(k int) {
	if k <= 0 {
		return
	}
	if k > x.f1 {
		// The prune cut into the prefix region; its base is gone.
		x.resetTo(x.n - k)
		return
	}
	trim := k - x.s0
	if trim > 0 {
		// Discard suffix rows for the pruned positions, keeping capacity.
		x.suffix = x.suffix[:copy(x.suffix, x.suffix[trim*x.nctx:])]
		x.s0 = k
	}
	x.s0 -= k
	x.f1 -= k
	x.n -= k
	x.check(nil)
}

// flip freezes a fresh suffix sweep over the whole retained ring and resets
// the prefix: after a flip every window ending at the ring's tail is a hit.
func (x *sliceIndex) flip(closed []sliceRec) {
	n := len(closed)
	x.n = n
	x.s0, x.f1 = 0, n
	x.missCost = 0
	x.prefix = identityRow(x.prefix[:0], x.nctx, x.ops)
	need := n * x.nctx
	if cap(x.suffix) < need {
		x.suffix = make([]operator.Agg, need)
	} else {
		x.suffix = x.suffix[:need]
	}
	for i := n - 1; i >= 0; i-- {
		rec := &closed[i]
		for c := 0; c < x.nctx; c++ {
			s := &x.suffix[i*x.nctx+c]
			s.Reset(x.ops)
			if c < len(rec.aggs) {
				s.Merge(&rec.aggs[c])
			}
			if i+1 < n {
				s.Merge(&x.suffix[(i+1)*x.nctx+c])
			}
		}
	}
	x.check(closed)
}

// check validates the index's structural invariants after a mutation and —
// for small rings, when the caller has the ring at hand — the deep
// consistency of the frozen suffix and grown prefix against the slices they
// claim to cover. Event counts are part of every index mask (groups always
// carry OpCount), so row CountV totals fingerprint the coverage without
// re-running operator semantics. Debug builds only (desis_invariants);
// release builds compile the whole body away.
func (x *sliceIndex) check(closed []sliceRec) {
	if !invariant.Enabled {
		return
	}
	//lint:ignore hotalloc debug-build verification: invariant.Enabled is a build constant, so release builds compile this call away
	x.checkSlow(closed)
}

func (x *sliceIndex) checkSlow(closed []sliceRec) {
	invariant.Assertf(0 <= x.s0 && x.s0 <= x.f1 && x.f1 <= x.n,
		"slice index flip points out of order: s0=%d f1=%d n=%d", x.s0, x.f1, x.n)
	invariant.Assertf(len(x.suffix) == (x.f1-x.s0)*x.nctx,
		"slice index suffix holds %d aggregates, want %d rows of %d lanes", len(x.suffix), x.f1-x.s0, x.nctx)
	invariant.Assertf(len(x.prefix) == (x.n-x.f1+1)*x.nctx,
		"slice index prefix holds %d aggregates, want %d rows of %d lanes", len(x.prefix), x.n-x.f1+1, x.nctx)
	invariant.Assertf(x.missCost >= 0, "slice index missCost negative: %d", x.missCost)
	if closed == nil || x.n != len(closed) || x.n > 64 || x.ops&operator.OpCount == 0 {
		return
	}
	lane := func(rec *sliceRec, c int) int64 {
		if c < len(rec.aggs) {
			return rec.aggs[c].CountV
		}
		return 0
	}
	for c := 0; c < x.nctx; c++ {
		// prefix[j] covers closed[f1 .. f1+j): row counts are running sums.
		sum := int64(0)
		for j := 0; j <= x.n-x.f1; j++ {
			invariant.Assertf(x.prefix[j*x.nctx+c].CountV == sum,
				"slice index prefix row %d lane %d counts %d events, ring says %d",
				j, c, x.prefix[j*x.nctx+c].CountV, sum)
			if x.f1+j < x.n {
				sum += lane(&closed[x.f1+j], c)
			}
		}
		// suffix[i] covers closed[i .. f1): counts accumulate right-to-left.
		sum = 0
		for i := x.f1 - 1; i >= x.s0; i-- {
			sum += lane(&closed[i], c)
			invariant.Assertf(x.suffix[(i-x.s0)*x.nctx+c].CountV == sum,
				"slice index suffix row %d lane %d counts %d events, ring says %d",
				i-x.s0, c, x.suffix[(i-x.s0)*x.nctx+c].CountV, sum)
		}
	}
}

// query folds the decomposable aggregate of closed[lo:hi], lane ctx, into
// dst (whose mask selects the fields the member needs). Hits cost at most
// two merges; misses fold directly and are charged to the flip budget.
func (x *sliceIndex) query(closed []sliceRec, ctx, lo, hi int, dst *operator.Agg) {
	if lo >= hi {
		return
	}
	if x.n != len(closed) {
		x.resetTo(len(closed))
	}
	if lo >= x.s0 && lo <= x.f1 && hi >= x.f1 && hi <= x.n {
		if lo < x.f1 {
			dst.Merge(&x.suffix[(lo-x.s0)*x.nctx+ctx])
		}
		if j := hi - x.f1; j > 0 {
			dst.Merge(&x.prefix[j*x.nctx+ctx])
		}
		return
	}
	span := hi - lo
	if hi == len(closed) && x.missCost+span >= len(closed) {
		// The misses since the last flip now pay for a rebuild.
		x.flip(closed)
		if lo < x.f1 {
			dst.Merge(&x.suffix[(lo-x.s0)*x.nctx+ctx])
		}
		return
	}
	x.missCost += span
	for i := lo; i < hi; i++ {
		if ctx < len(closed[i].aggs) {
			dst.Merge(&closed[i].aggs[ctx])
		}
	}
}

// commitLate repairs the index after a late event landed at ring position
// pos: either folded into an existing slice in place, or carried by a
// slice inserted at pos. Only the rows whose covering range includes pos
// change; the repair is O(rows right of pos) merges, bounded by the
// reorder horizon's depth into the ring.
func (x *sliceIndex) commitLate(closed []sliceRec, pos int, inserted bool, delta []operator.Agg) {
	if !inserted {
		if x.n != len(closed) {
			x.resetTo(len(closed))
			return
		}
		x.repairAt(pos, delta)
		x.check(closed)
		return
	}
	if x.n != len(closed)-1 {
		x.resetTo(len(closed))
		return
	}
	if pos >= x.f1 {
		x.prefix = insertPrefixRow(x.prefix, x.f1, x.nctx, x.ops, pos, delta)
	} else {
		x.suffix, x.s0, x.f1 = insertSuffixRow(x.suffix, x.s0, x.f1, x.nctx, x.ops, pos, delta)
	}
	x.n++
	x.check(closed)
}

// repairAt merges delta into every row covering ring position pos.
func (x *sliceIndex) repairAt(pos int, delta []operator.Agg) {
	if pos < x.f1 {
		// Suffix rows i ∈ [s0, pos] cover [i, f1) ∋ pos; rows below s0 are
		// uncovered (queries there fold directly off the ring).
		for i := x.s0; i <= pos && i < x.f1; i++ {
			for c := 0; c < x.nctx && c < len(delta); c++ {
				x.suffix[(i-x.s0)*x.nctx+c].Merge(&delta[c])
			}
		}
		return
	}
	// Prefix rows j ∈ [pos-f1+1, n-f1] cover [f1, f1+j) ∋ pos.
	for j := pos - x.f1 + 1; j <= x.n-x.f1; j++ {
		for c := 0; c < x.nctx && c < len(delta); c++ {
			x.prefix[j*x.nctx+c].Merge(&delta[c])
		}
	}
}
