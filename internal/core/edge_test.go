package core

import (
	"math/rand"
	"testing"

	"desis/internal/event"
	"desis/internal/query"
)

// TestSliceStoreBounded verifies pruning: a long stream with short windows
// must not accumulate slices (§2.3's memory argument).
func TestSliceStoreBounded(t *testing.T) {
	queries := []query.Query{
		query.MustParse("tumbling(100ms) sum key=0"),
		query.MustParse("sliding(500ms,100ms) average key=0"),
		query.MustParse("session(50ms) count key=0"),
	}
	for i := range queries {
		queries[i].ID = uint64(i + 1)
	}
	groups, err := query.Analyze(queries, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(groups, Config{OnResult: func(Result) {}})
	rng := rand.New(rand.NewSource(1))
	tm := int64(0)
	for i := 0; i < 200_000; i++ {
		tm += int64(rng.Intn(3))
		if i%997 == 0 {
			tm += 80 // periodic silence so the session windows close
		}
		e.Process(event.Event{Time: tm, Value: rng.Float64()})
	}
	gs := e.orderedGroups()[0]
	// The widest open window is the 500ms sliding one: at most ~10 slices
	// of 100ms lie within it, plus the prune hysteresis of 64.
	if n := len(gs.closed); n > 128 {
		t.Errorf("slice store grew to %d entries over a long stream", n)
	}
}

// TestCountSliceStoreBounded does the same for count-measure windows.
func TestCountSliceStoreBounded(t *testing.T) {
	q := query.MustParse("sliding(64ev,16ev) sum key=0")
	q.ID = 1
	groups, err := query.Analyze([]query.Query{q}, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(groups, Config{OnResult: func(Result) {}})
	for i := 0; i < 100_000; i++ {
		e.Process(event.Event{Time: int64(i), Value: 1})
	}
	if n := len(e.orderedGroups()[0].closed); n > 128 {
		t.Errorf("count slice store grew to %d entries", n)
	}
}

// TestUnroutedKeysDropped: events whose key no query selects cost nothing
// and produce nothing.
func TestUnroutedKeysDropped(t *testing.T) {
	q := query.MustParse("tumbling(100ms) sum key=1")
	q.ID = 1
	groups, _ := query.Analyze([]query.Query{q}, query.Options{})
	e := New(groups, Config{})
	for i := 0; i < 100; i++ {
		e.Process(event.Event{Time: int64(i * 10), Key: 9, Value: 1})
	}
	e.AdvanceTo(5000)
	if rs := e.Results(); len(rs) != 0 {
		t.Errorf("unrouted key produced %d results", len(rs))
	}
	if st := e.Stats(); st.Events != 0 {
		t.Errorf("unrouted events counted: %d", st.Events)
	}
}

// TestEmptyEngine: no queries is a valid (if pointless) configuration.
func TestEmptyEngine(t *testing.T) {
	e := New(nil, Config{})
	e.Process(event.Event{Time: 1, Value: 2})
	e.AdvanceTo(100)
	if rs := e.Results(); len(rs) != 0 {
		t.Errorf("empty engine produced results: %v", rs)
	}
}

// TestMarkerWithoutUserDefinedQueries: boundary markers are inert when no
// user-defined windows listen.
func TestMarkerWithoutUserDefinedQueries(t *testing.T) {
	q := query.MustParse("tumbling(100ms) count key=0")
	q.ID = 1
	groups, _ := query.Analyze([]query.Query{q}, query.Options{})
	e := New(groups, Config{})
	e.Process(event.Event{Time: 10, Value: 1})
	e.Process(event.Event{Time: 20, Marker: event.MarkerBoundary})
	e.Process(event.Event{Time: 30, Value: 1})
	e.AdvanceTo(100)
	rs := e.Results()
	if len(rs) != 1 || rs[0].Count != 2 {
		t.Fatalf("results %v, want one window of 2 data events (marker inert)", rs)
	}
}

// TestDuplicateTimestamps: several events on one timestamp all land in the
// same windows.
func TestDuplicateTimestamps(t *testing.T) {
	q := query.MustParse("tumbling(10ms) count key=0")
	q.ID = 1
	groups, _ := query.Analyze([]query.Query{q}, query.Options{})
	e := New(groups, Config{})
	for i := 0; i < 5; i++ {
		e.Process(event.Event{Time: 5, Value: float64(i)})
	}
	for i := 0; i < 3; i++ {
		e.Process(event.Event{Time: 10, Value: float64(i)})
	}
	e.AdvanceTo(20)
	rs := e.Results()
	if len(rs) != 2 {
		t.Fatalf("results: %v", rs)
	}
	sortResults(rs)
	if rs[0].Count != 5 || rs[1].Count != 3 {
		t.Errorf("counts %d,%d want 5,3", rs[0].Count, rs[1].Count)
	}
}

// TestAdvanceToIdempotent: repeated or stale watermarks change nothing.
func TestAdvanceToIdempotent(t *testing.T) {
	q := query.MustParse("tumbling(100ms) count key=0")
	q.ID = 1
	groups, _ := query.Analyze([]query.Query{q}, query.Options{})
	e := New(groups, Config{})
	for i := 0; i < 30; i++ {
		e.Process(event.Event{Time: int64(i * 10), Value: 1})
	}
	e.AdvanceTo(300)
	n1 := len(e.Results())
	e.AdvanceTo(300)
	e.AdvanceTo(250) // stale: must be a no-op
	e.AdvanceTo(300)
	if extra := len(e.Results()); extra != 0 {
		t.Errorf("idempotent advance emitted %d extra results", extra)
	}
	if n1 != 3 {
		t.Errorf("first advance emitted %d windows, want 3", n1)
	}
}

// TestSessionAcrossLongSilence: a session that closes by watermark, then a
// much later burst, reopens cleanly.
func TestSessionAcrossLongSilence(t *testing.T) {
	q := query.MustParse("session(100ms) count key=0")
	q.ID = 1
	groups, _ := query.Analyze([]query.Query{q}, query.Options{})
	e := New(groups, Config{})
	e.Process(event.Event{Time: 0, Value: 1})
	e.Process(event.Event{Time: 50, Value: 1})
	e.AdvanceTo(1_000_000) // closes [0, 150)
	e.Process(event.Event{Time: 2_000_000, Value: 1})
	e.AdvanceTo(3_000_000)
	rs := e.Results()
	if len(rs) != 2 {
		t.Fatalf("results: %v", keys(rs))
	}
	sortResults(rs)
	if rs[0].Start != 0 || rs[0].End != 150 || rs[0].Count != 2 {
		t.Errorf("first session %s count %d", resultKey(rs[0]), rs[0].Count)
	}
	if rs[1].Start != 2_000_000 || rs[1].End != 2_000_100 || rs[1].Count != 1 {
		t.Errorf("second session %s count %d", resultKey(rs[1]), rs[1].Count)
	}
}
