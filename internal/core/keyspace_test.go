package core

import (
	"bytes"
	"reflect"
	"testing"

	"desis/internal/event"
	"desis/internal/invariant"
	"desis/internal/operator"
	"desis/internal/plan"
	"desis/internal/query"
)

// keyspaceQueries is the mixed workload the evict/revive differential runs:
// concrete per-key queries across window types plus a group-by template so
// every key owns at least one instance.
func keyspaceQueries(t *testing.T) []query.Query {
	t.Helper()
	qs := []query.Query{
		query.MustParse("sliding(2s,500ms) max,median key=0"),
		query.MustParse("tumbling(1s) sum,count key=2"),
		query.MustParse("session(800ms) average key=3"),
		query.MustParse("tumbling(700ms) count,sum key=0"),
	}
	qs[3].AnyKey = true
	for i := range qs {
		qs[i].ID = uint64(i + 1)
	}
	return qs
}

// keyspaceStream builds a stream with hot keys (0, 1) and keys that go idle
// long enough for an aggressive TTL to park them:
//
//   - key 2 is bursty (active one second in four), so it parks and revives
//     repeatedly — including in the middle of its 1s tumbling windows.
//   - key 3 is active early and late, parking once for a long stretch.
//   - key 4 is active only early; only watermarks revive it.
//
// At t≈3990 the last first-burst event of key 2 (990, v) is re-sent: by then
// the key is parked mid-slice, so the duplicate exercises the dedup state
// carried through the eviction snapshot — losing it would double-count and
// fail the differential.
func keyspaceStream() []event.Event {
	var evs []event.Event
	add := func(t int64, key uint32, v float64) {
		evs = append(evs, event.Event{Time: t, Key: key, Value: v})
	}
	for t := int64(0); t < 40_000; t += 5 {
		add(t, 0, float64(t%977))
		if t%10 == 0 {
			add(t, 1, float64(t%313))
		}
		if t == 3990 {
			add(990, 2, float64(990%77))
		}
		if (t/1000)%4 == 0 && t%15 == 0 {
			add(t, 2, float64(t%77))
		}
		if (t < 2000 || t >= 30_000) && t%20 == 0 {
			add(t, 3, float64(t%53))
		}
		if t < 1500 && t%25 == 0 {
			add(t, 4, float64(t%31))
		}
	}
	return evs
}

// TestEvictReviveDifferential feeds one stream through an engine that parks
// idle keys aggressively and through one that never evicts, and requires the
// runs to be indistinguishable: identical result sequences, identical work
// counters, and byte-identical final snapshots.
func TestEvictReviveDifferential(t *testing.T) {
	queries := keyspaceQueries(t)
	ctl := NewFromPlan(mustPlan(t, queries, plan.Options{Dedup: true}), Config{})
	ttl := NewFromPlan(mustPlan(t, queries, plan.Options{Dedup: true}), Config{
		InstanceTTL:        500,
		InstanceShards:     4,
		InstanceSweepEvery: 64,
	})

	evs := keyspaceStream()
	cut := 0
	for cut < len(evs) && evs[cut].Time < 20_000 {
		cut++
	}
	for _, e := range []*Engine{ctl, ttl} {
		e.ProcessBatch(evs[:cut])
	}
	if got := ttl.InstanceStats().Evicted; got == 0 {
		t.Fatal("no instances parked before the mid-stream watermark; the differential is vacuous")
	}
	for _, e := range []*Engine{ctl, ttl} {
		e.AdvanceTo(20_000)
		e.ProcessBatch(evs[cut:])
		e.AdvanceTo(45_000)
	}

	st := ttl.InstanceStats()
	if st.Revived == 0 {
		t.Fatal("no instances revived; the differential is vacuous")
	}
	if st.Evicted != 0 {
		t.Fatalf("%d instances still parked after a full watermark, want 0", st.Evicted)
	}
	if want := ctl.InstanceStats().Live; st.Live != want {
		t.Fatalf("live instances = %d, want %d", st.Live, want)
	}
	if got, want := ttl.Stats(), ctl.Stats(); got != want {
		t.Fatalf("work counters diverged:\n evicting: %+v\n resident: %+v", got, want)
	}

	got, want := ttl.Results(), ctl.Results()
	if !reflect.DeepEqual(got, want) {
		if len(got) != len(want) {
			t.Fatalf("result count diverged: evicting %d, resident %d", len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("result %d diverged:\n evicting: %+v\n resident: %+v", i, got[i], want[i])
			}
		}
	}
	if !bytes.Equal(ttl.Snapshot(nil), ctl.Snapshot(nil)) {
		t.Fatal("final snapshots diverged between the evicting and resident engines")
	}
}

// TestReviveRacesTemplateRemoval parks template instances and then removes
// the template: the removal delta must revive the parked keys so their
// members tombstone exactly as on a never-evicting engine, and a template
// registered afterwards must behave identically on both.
func TestReviveRacesTemplateRemoval(t *testing.T) {
	tmpl := query.MustParse("tumbling(500ms) count,sum key=0")
	tmpl.AnyKey = true
	tmpl.ID = 7

	ctl := NewFromPlan(mustPlan(t, []query.Query{tmpl}, plan.Options{}), Config{})
	ttl := NewFromPlan(mustPlan(t, []query.Query{tmpl}, plan.Options{}), Config{
		InstanceTTL:        300,
		InstanceShards:     2,
		InstanceSweepEvery: 4,
	})
	engines := []*Engine{ctl, ttl}
	feed := func(evs ...event.Event) {
		for _, e := range engines {
			e.ProcessBatch(evs)
		}
	}

	// Instantiate keys 1..3, then leave them idle while key 0 stays hot
	// long enough for the sweep to park them.
	for tm := int64(0); tm < 200; tm += 20 {
		feed(
			event.Event{Time: tm, Key: 1, Value: 1},
			event.Event{Time: tm, Key: 2, Value: 2},
			event.Event{Time: tm, Key: 3, Value: 3},
		)
	}
	for tm := int64(200); tm < 2000; tm += 5 {
		feed(event.Event{Time: tm, Key: 0, Value: float64(tm)})
	}
	if ttl.InstanceStats().Evicted == 0 {
		t.Fatal("idle template instances were not parked; the race is vacuous")
	}

	for _, e := range engines {
		if err := e.RemoveQuery(tmpl.ID); err != nil {
			t.Fatalf("RemoveQuery: %v", err)
		}
	}
	// The removal delta touches the parked keys' groups, which must revive
	// them to tombstone the members.
	if got := ttl.InstanceStats().Evicted; got != 0 {
		t.Fatalf("%d instances still parked after their template was removed, want 0", got)
	}

	tmpl2 := tmpl
	tmpl2.ID = 8
	for _, e := range engines {
		if err := e.AddTemplate(tmpl2); err != nil {
			t.Fatalf("AddTemplate: %v", err)
		}
	}
	for tm := int64(2000); tm < 3500; tm += 10 {
		feed(
			event.Event{Time: tm, Key: 0, Value: float64(tm)},
			event.Event{Time: tm, Key: 2, Value: float64(tm)},
		)
	}
	for _, e := range engines {
		e.AdvanceTo(4000)
	}

	if got, want := ttl.Results(), ctl.Results(); !reflect.DeepEqual(got, want) {
		t.Fatalf("results diverged after the removal race:\n evicting: %d results\n resident: %d results", len(got), len(want))
	}
	if !bytes.Equal(ttl.Snapshot(nil), ctl.Snapshot(nil)) {
		t.Fatal("final snapshots diverged after the removal race")
	}
}

// TestTemplateRemovalPrunesSeenKeys pins the seen-key leak: removing the
// last template must forget which keys ran instantiation, both to bound the
// map and so a later template starts from a clean slate.
func TestTemplateRemovalPrunesSeenKeys(t *testing.T) {
	tmpl := query.MustParse("tumbling(100ms) count key=0")
	tmpl.AnyKey = true
	tmpl.ID = 1
	e := NewFromPlan(mustPlan(t, []query.Query{tmpl}, plan.Options{}), Config{})

	const n = 50
	for k := 0; k < n; k++ {
		e.Process(event.Event{Time: int64(k), Key: uint32(k), Value: 1})
	}
	if len(e.tmplKeys) != n {
		t.Fatalf("seen-key set holds %d keys, want %d", len(e.tmplKeys), n)
	}
	if e.NumGroups() != n {
		t.Fatalf("template materialised %d instances, want %d", e.NumGroups(), n)
	}

	if err := e.RemoveQuery(tmpl.ID); err != nil {
		t.Fatalf("RemoveQuery: %v", err)
	}
	if e.tmplKeys != nil {
		t.Fatalf("seen-key set survived removing the last template: %d entries", len(e.tmplKeys))
	}

	// A template registered later must not instantiate from the stale set.
	tmpl2 := tmpl
	tmpl2.ID = 2
	if err := e.AddTemplate(tmpl2); err != nil {
		t.Fatalf("AddTemplate: %v", err)
	}
	if got := len(e.Plan().Instances); got != 0 {
		t.Fatalf("re-added template instantiated %d stale keys, want 0", got)
	}
	e.Process(event.Event{Time: 1000, Key: 7, Value: 1})
	if got := len(e.Plan().Instances); got != 1 {
		t.Fatalf("first event after re-add instantiated %d keys, want 1", got)
	}
	if len(e.tmplKeys) != 1 {
		t.Fatalf("seen-key set holds %d keys after re-add, want 1", len(e.tmplKeys))
	}
}

// TestDedupShrink pins the dedup-map shrink: after a burst grows the
// slice-scoped map, sustained low occupancy must reallocate it at the
// working size instead of holding peak-sized buckets forever.
func TestDedupShrink(t *testing.T) {
	q := query.MustParse("tumbling(100ms) count key=0")
	q.ID = 1
	e := NewFromPlan(mustPlan(t, []query.Query{q}, plan.Options{Dedup: true}), Config{})
	gs := e.orderedGroups()[0]

	// Burst: one slice with 2× the shrink floor of distinct (t, v) pairs.
	for i := 0; i < 2*dedupShrinkMin; i++ {
		e.Process(event.Event{Time: 1, Key: 0, Value: float64(i)})
	}
	if got := len(gs.dedup); got != 2*dedupShrinkMin {
		t.Fatalf("burst slice holds %d dedup entries, want %d", got, 2*dedupShrinkMin)
	}
	burstMap := reflect.ValueOf(gs.dedup).Pointer()

	// Collapsed occupancy for more than dedupShrinkAfter consecutive slices.
	tm := int64(100)
	for s := 0; s < dedupShrinkAfter+4; s++ {
		for j := int64(0); j < 4; j++ {
			e.Process(event.Event{Time: tm + j, Key: 0, Value: float64(j)})
		}
		tm += 100
	}
	if reflect.ValueOf(gs.dedup).Pointer() == burstMap {
		t.Fatalf("dedup map still holds burst-sized buckets after %d collapsed slices", dedupShrinkAfter+4)
	}

	// The reallocated map still deduplicates.
	before := gs.count
	e.Process(event.Event{Time: tm, Key: 0, Value: 42})
	e.Process(event.Event{Time: tm, Key: 0, Value: 42})
	if got := gs.count - before; got != 1 {
		t.Fatalf("duplicate pair ingested %d events after shrink, want 1", got)
	}
}

// TestDedupSteadyStateNoAllocs guards the hot path around the shrink logic:
// steady-state ingestion with deduplication enabled must not allocate.
// OnWindowAgg intercepts window completion so result materialisation (which
// allocates per window by design) stays out of the measurement.
func TestDedupSteadyStateNoAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("debug builds box assertion arguments on the ingest path; the guard holds for release builds")
	}
	q := query.MustParse("tumbling(100ms) sum,count key=0")
	q.ID = 1
	e := NewFromPlan(mustPlan(t, []query.Query{q}, plan.Options{Dedup: true}), Config{
		OnWindowAgg: func(uint64, int64, int64, *operator.Agg) {},
	})
	tm := int64(0)
	step := func() {
		for i := 0; i < 50; i++ {
			tm += 2
			e.Process(event.Event{Time: tm, Key: 0, Value: float64(i)})
		}
	}
	for i := 0; i < 40; i++ {
		step() // warm the pools and cross the prune threshold
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("steady-state ingest with dedup allocates %.1f times per batch, want 0", avg)
	}
}
