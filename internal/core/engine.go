package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/plan"
	"desis/internal/query"
	"desis/internal/telemetry"
)

// Engine is the Desis aggregation engine: it executes every query-group over
// the incoming stream, sharing slices and operators between all windows of a
// group. One Engine instance runs per node; on local nodes it is configured
// with OnSlice and emits per-slice partial results instead of assembling
// windows.
//
// The engine owns a copy of the deployment's execution plan and materialises
// group state exclusively from it: the initial build and every runtime
// catalog change (Apply) flow through the same reconciliation (syncPlan), so
// an engine built from a plan at epoch N is identical to one that started
// earlier and applied the deltas leading to epoch N.
type Engine struct {
	cfg            Config
	pruneThreshold int
	plan           *plan.Plan
	byID           map[uint32]*groupState
	results        []Result
	stats          engineStats
	tmplKeys       map[uint32]bool // keys whose template instantiation ran

	// horizonDisabled latches when any group's shape forced its effective
	// reorder horizon to 0 while Config.ReorderHorizon was positive — the
	// partial-degradation signal the engine.horizon_disabled gauge surfaces
	// (a full degradation is a config error the facade rejects up-front).
	horizonDisabled bool

	// The key-space tier (keyspace.go): instances live in hash-sharded
	// per-key maps, idle keys park as snapshot blobs, and ordered caches
	// the ascending-id iteration order AdvanceTo and Snapshot need.
	shards       []instShard
	byIDPeak     int // occupancy byID's buckets were grown for (shrinkIndexes)
	ordered      []*groupState
	orderedStale bool
	now          int64 // engine event clock: max event time / AdvanceTo seen
	ttl          int64 // idle horizon in event-time ms; 0 disables eviction
	sweepEvery   uint32
	sweepTick    uint32
	sweepCursor  int
	// sweepClock, when set, paces sweeps from the shared tick count
	// instead of the per-engine sweepTick counter (see SweepClock).
	sweepClock    *SweepClock
	lastSweepTick uint64

	// Engine-level free lists recycling evicted keys' pooled memory into
	// future installs, and the scratch buffer eviction snapshots reuse.
	aggFree     [][]operator.Agg
	partialFree []*SlicePartial
	snapScratch []byte

	// tel, when attached, receives per-group counters and the assembly
	// latency histogram. telAsm is cached so the assembly path pays one
	// nil check, not a registry lookup; the lifecycle gauges are cached
	// likewise (nil-safe, so an unattached engine pays nothing).
	tel        *telemetry.Registry
	telAsm     *telemetry.Histogram
	telLive    *telemetry.Gauge
	telEvicted *telemetry.Gauge
	telRevived *telemetry.Gauge
}

// engineStats is the engine's work accounting. The counters are atomic
// because Stats() may be read concurrently with ingestion — most visibly
// through ParallelEngine.Stats(), which sums shard engines while their
// goroutines run Process. The single-writer ingest path still owns all
// increments; atomics only make the cross-goroutine reads defined.
type engineStats struct {
	events, calculations, slices, windows, pruned atomic.Uint64
	lateCommits, lateDropped                      atomic.Uint64

	// Key-space tier lifecycle accounting (see InstanceStats).
	instLive, instEvicted, instRevived atomic.Int64
}

// New builds an engine for an analyzed group set, wrapping it into a plan at
// epoch 0 (legacy construction path; the engine takes ownership of the
// groups).
func New(groups []*groupOf, cfg Config) *Engine {
	return NewFromPlan(plan.FromGroups(groups, plan.Options{
		Decentralized: cfg.Decentralized,
		Optimize:      cfg.Optimize,
	}), cfg)
}

// NewFromPlan builds an engine from an execution plan, taking ownership of
// it. Config.Placement selects which groups of the plan this engine
// materialises (a local node runs the distributed groups, the root engine
// the root-only ones); the plan itself always stays complete so runtime
// deltas reconcile identically on every tier.
func NewFromPlan(p *plan.Plan, cfg Config) *Engine {
	e := &Engine{
		cfg:  cfg,
		plan: p,
		byID: make(map[uint32]*groupState),
	}
	e.pruneThreshold = cfg.PruneThreshold
	if e.pruneThreshold <= 0 {
		e.pruneThreshold = DefaultPruneThreshold
	}
	nsh := cfg.InstanceShards
	if nsh <= 0 {
		nsh = DefaultInstanceShards
	}
	e.shards = make([]instShard, nsh)
	for i := range e.shards {
		e.shards[i] = instShard{
			byKey:   make(map[uint32]*keyEntry),
			evicted: make(map[uint32][]byte),
		}
	}
	e.ttl = cfg.InstanceTTL
	e.sweepClock = cfg.SweepClock
	e.sweepEvery = uint32(cfg.InstanceSweepEvery)
	if cfg.InstanceSweepEvery <= 0 {
		e.sweepEvery = DefaultInstanceSweepEvery
	}
	// Warm the catalog index now: the first runtime delta should pay its own
	// cost, not the O(catalog) lazy index build.
	p.Warm()
	e.syncPlan()
	if cfg.Telemetry != nil {
		e.AttachTelemetry(cfg.Telemetry)
	}
	return e
}

// AttachTelemetry connects the engine to a telemetry registry: per-group
// event/slice/window counters (group.<id>.…) and the window-assembly
// latency histogram. Groups installed later (runtime deltas, template
// instantiation) register on install. Attaching is idempotent; an engine
// without telemetry pays one nil-pointer branch per instrumented site
// and allocates nothing.
func (e *Engine) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	e.tel = reg
	e.telAsm = reg.Histogram("engine.assembly_latency")
	e.telLive = reg.Gauge("engine.instances_live")
	e.telEvicted = reg.Gauge("engine.instances_evicted")
	e.telRevived = reg.Gauge("engine.instances_revived")
	e.telLive.Set(e.stats.instLive.Load())
	e.telEvicted.Set(e.stats.instEvicted.Load())
	e.telRevived.Set(e.stats.instRevived.Load())
	if e.horizonDisabled {
		// Replay the one-shot signal for registries attached after the fact.
		reg.Gauge("engine.horizon_disabled").Set(1)
	}
	for _, gs := range e.orderedGroups() {
		gs.attachTelemetry(reg)
	}
}

// Plan exposes the engine's execution plan. Callers must treat it as
// read-only; mutation goes through Apply.
func (e *Engine) Plan() *plan.Plan { return e.plan }

// PlanEpoch returns the epoch of the engine's plan.
func (e *Engine) PlanEpoch() uint64 { return e.plan.Epoch }

// RecyclePartial returns a partial emitted through Config.OnSlice to the
// engine's pools once the consumer is done with it (e.g. after the wire
// codec encoded it). The partial and its aggregates must not be used
// afterwards. Passing partials the engine did not emit is a no-op.
func (e *Engine) RecyclePartial(p *SlicePartial) {
	if p == nil {
		return
	}
	if gs := e.byID[p.Group]; gs != nil {
		gs.recyclePartial(p)
	}
}

func (e *Engine) install(gs *groupState) {
	e.byID[gs.id] = gs
	if gs.feedFrom != nil {
		gs.feedFrom.taps = append(gs.feedFrom.taps, gs)
	}
	if len(e.byID) > e.byIDPeak {
		e.byIDPeak = len(e.byID)
	}
	sh := &e.shards[e.instShardOf(gs.key)]
	ent := sh.byKey[gs.key]
	if ent == nil {
		ent = &keyEntry{lastTouch: e.now}
		sh.byKey[gs.key] = ent
		if len(sh.byKey) > sh.byKeyPeak {
			sh.byKeyPeak = len(sh.byKey)
		}
	}
	// Installs happen in ascending group-id order (plan construction and
	// runtime deltas both append monotonically increasing ids; revival
	// replays blobs in eviction order, which preserved it), so ent.groups
	// stays sorted without ever sorting.
	ent.groups = append(ent.groups, gs)
	e.orderedStale = true
	e.stats.instLive.Add(1)
	e.telLive.Add(1)
	if e.tel != nil {
		gs.attachTelemetry(e.tel)
	}
}

// Process ingests one event, routing it to every group of its key through
// the sharded instance maps. The first event of an unseen key instantiates
// any registered group-by templates for it; an event for a parked key
// revives it first.
//
//desis:hotpath
func (e *Engine) Process(ev event.Event) {
	if ev.Time > e.now {
		e.now = ev.Time
	}
	if len(e.plan.Templates) > 0 && !e.tmplKeys[ev.Key] {
		//lint:ignore hotalloc cold path: template instantiation runs once per unseen key, through the full plan-delta machinery
		e.instantiateTemplates(ev.Key)
	}
	sh := &e.shards[e.instShardOf(ev.Key)]
	ent := sh.byKey[ev.Key]
	if ent == nil {
		if len(sh.evicted) == 0 {
			return
		}
		//lint:ignore hotalloc cold path: reviving a parked key replays its eviction snapshot, once per idle period
		ent = e.reviveKey(ev.Key)
		if ent == nil {
			return
		}
	}
	ent.lastTouch = e.now
	for _, gs := range ent.groups {
		gs.process(ev)
	}
	if e.ttl > 0 {
		e.maybeSweep()
	}
}

// Apply mutates the engine's plan by one delta and reconciles group state
// with the result. It is the single mutation path: AddQuery, AddTemplate,
// RemoveQuery, and template instantiation all funnel through here, as do
// deltas arriving over the wire in decentralized deployments.
func (e *Engine) Apply(d plan.Delta) error {
	if err := e.plan.Apply(d); err != nil {
		return err
	}
	if d.Kind == plan.DeltaInstantiate {
		if e.tmplKeys == nil {
			e.tmplKeys = make(map[uint32]bool)
		}
		e.tmplKeys[d.Key] = true
	}
	if d.Kind == plan.DeltaRemoveQuery && len(e.plan.Templates) == 0 {
		// Removing the last template forgets the seen-key set: the entries
		// only gate instantiation, and a template registered later must
		// re-observe its keys (instantiateForSeenKeys over a stale set
		// would materialise instances for keys the new template never saw).
		e.tmplKeys = nil
	}
	// Only the groups the delta mutated need reconciling; every other group
	// was reconciled when it last changed, so delta application stays O(1)
	// in the catalog size.
	for _, g := range e.plan.Touched() {
		e.syncGroup(g)
	}
	return nil
}

// ResyncPlan replaces the engine's plan with a newer full copy of the same
// lineage (a reconnecting node that is too stale for an epoch diff receives
// one) and reconciles group state. The new plan must extend the current one:
// every materialised group must still exist with at least its known members.
func (e *Engine) ResyncPlan(p *plan.Plan) error {
	if p.Epoch < e.plan.Epoch {
		return fmt.Errorf("core: resync plan epoch %d behind engine epoch %d", p.Epoch, e.plan.Epoch)
	}
	// Parked keys are not validated here: their snapshots replay against
	// the new plan on revival, where the same divergence panics.
	for _, gs := range e.orderedGroups() {
		g := p.GroupByID(gs.id)
		if g == nil {
			return fmt.Errorf("core: resync plan lost group %d", gs.id)
		}
		if len(g.Queries) < len(gs.members) || g.Key != gs.key || g.Placement != gs.placement {
			return fmt.Errorf("core: resync plan diverges on group %d", gs.id)
		}
	}
	e.plan = p
	p.Warm()
	e.syncPlan()
	return nil
}

// syncPlan reconciles every materialised group with the plan's catalog: the
// one install path shared by initial construction, runtime deltas, and full
// resyncs.
func (e *Engine) syncPlan() {
	for _, g := range e.plan.Groups {
		e.syncGroup(g)
	}
	for _, in := range e.plan.Instances {
		if e.tmplKeys == nil {
			e.tmplKeys = make(map[uint32]bool)
		}
		e.tmplKeys[in.Key] = true
	}
}

// syncGroup brings one group's runtime state in line with its catalog entry:
// missing state is installed (subject to the placement filter), new contexts
// and members are registered, a changed operator mask takes effect from an
// administrative punctuation at the current event time, and tombstoned
// members are dropped from the trackers. Existing members and slices are
// untouched, so the member indices EPs carry stay stable across the
// topology.
func (e *Engine) syncGroup(g *groupOf) {
	if e.keyParked(g.Key) {
		// A delta touched a parked key: revive before reconciling, so the
		// reconciliation below sees the same live state a never-evicted
		// engine would. reviveKey re-enters syncGroup for each restored
		// group (with the key no longer parked); the pass below is then
		// idempotent. A blob never covers a group the delta just created,
		// so fall through to install those.
		e.reviveKey(g.Key)
	}
	gs := e.byID[g.ID]
	if gs == nil {
		// The placement filter selects the tier's share of the plan; the
		// ownership check keeps a shard from materialising groups whose keys
		// the shard map routes elsewhere.
		if !e.cfg.Placement.accepts(g.Placement) || !e.plan.Owns(g.Key) {
			return
		}
		gs = newGroupState(e, g)
		e.install(gs)
		gs.alignFed(0)
		return
	}
	changed := false
	if len(g.Contexts) > len(gs.contexts) {
		gs.contexts = append(gs.contexts, g.Contexts[len(gs.contexts):]...)
		changed = true
	}
	if g.Ops != gs.ops {
		gs.ops = g.Ops
		gs.logicalOps = uint64(g.LogicalOps.NumOps())
		changed = true
	}
	if len(g.Queries) > len(gs.members) {
		changed = true
	}
	if changed && gs.started {
		// Close the running slice at an administrative punctuation so every
		// slice has a uniform operator mask and joining members register at
		// the current stream position (they answer no earlier windows).
		cut := gs.lastEventTime
		if cut < gs.lastPunct {
			cut = gs.lastPunct
		}
		gs.closeSlice(cut)
		gs.flushPending()
		gs.cur.aggs = gs.newAggs()
	}
	if n := len(gs.members); len(g.Queries) > n {
		for i := n; i < len(g.Queries); i++ {
			gs.addMember(g.Queries[i])
		}
		// Fed members register against the feeder's stream position, not
		// this group's (raw events never advance it); see alignFed.
		gs.alignFed(n)
	}
	for i := range gs.members {
		if g.Queries[i].Removed && !gs.members[i].removed {
			gs.removeMember(i)
			changed = true
		}
	}
	if changed && gs.started {
		gs.nextTimeBound = gs.cal.NextBoundary(gs.lastPunct)
		gs.nextCountID = gs.countCal.NextBoundary(gs.count)
	}
}

// AddQuery admits a query at runtime (§3.2) through a plan delta. The query
// joins an existing compatible query-group when one exists — the group's
// current slice is closed at an administrative punctuation so the widened
// operator set applies from here on — or founds a new group. Windows that
// started before registration are not answered. It returns the id of the
// group the query joined (0 for group-by templates, which live in the
// catalog until keys instantiate them).
func (e *Engine) AddQuery(q query.Query) (groupID uint32, err error) {
	if err := e.Apply(e.plan.AddDelta(q)); err != nil {
		return 0, err
	}
	if q.AnyKey {
		return 0, e.instantiateForSeenKeys(q)
	}
	g, _, ok := e.plan.Lookup(q.ID)
	if !ok {
		return 0, fmt.Errorf("core: query %d vanished after admission", q.ID)
	}
	return g.ID, nil
}

// AddTemplate registers a group-by query template (AnyKey): one instance
// per observed key is created lazily, all answering under the template's
// query id with the concrete key in Result.Key.
func (e *Engine) AddTemplate(q query.Query) error {
	q.AnyKey = true
	_, err := e.AddQuery(q)
	return err
}

// instantiateForSeenKeys materialises a just-registered template for every
// key whose instantiation already ran; keys not yet seen pick it up with
// their next event.
func (e *Engine) instantiateForSeenKeys(t query.Query) error {
	for k := range e.tmplKeys {
		if !e.plan.Owns(k) || e.plan.Instantiated(t.ID, k) {
			continue
		}
		if err := e.Apply(e.plan.InstantiateDelta(t.ID, k)); err != nil {
			return err
		}
	}
	return nil
}

// instantiateTemplates materialises every registered template for a freshly
// observed key — but only when this engine's plan owns the key, so in a
// sharded deployment exactly one shard instantiates each key.
func (e *Engine) instantiateTemplates(k uint32) {
	if e.tmplKeys == nil {
		e.tmplKeys = make(map[uint32]bool)
	}
	e.tmplKeys[k] = true
	if !e.plan.Owns(k) {
		return
	}
	for _, t := range e.plan.Templates {
		if e.plan.Instantiated(t.ID, k) {
			continue
		}
		// Template queries validated at admission; instantiation of a fresh
		// key cannot fail placement.
		_ = e.Apply(e.plan.InstantiateDelta(t.ID, k))
	}
}

// RemoveQuery retires a running query immediately through a plan delta; its
// open windows are abandoned (§3.2 also allows waiting for the last window,
// which callers get by delaying this call until the window result arrives).
// For group-by templates it removes the template and every per-key instance.
func (e *Engine) RemoveQuery(id uint64) error {
	return e.Apply(e.plan.RemoveDelta(id))
}

// ProcessBatch ingests a batch of events in order.
//
//desis:hotpath
func (e *Engine) ProcessBatch(evs []event.Event) {
	for _, ev := range evs {
		e.Process(ev)
	}
}

// AdvanceTo moves event time forward to t without ingesting data: every
// punctuation at or before t fires. Decentralized deployments drive this
// from watermarks (§5.1.2); tests and harnesses use it to drain the final
// windows of a replayed stream.
func (e *Engine) AdvanceTo(t int64) {
	if t > e.now {
		e.now = t
	}
	// Parked keys owe punctuation work too (idle started groups emit empty
	// windows at every boundary), so a watermark revives the whole key
	// space; the sweep re-parks what stays idle.
	e.reviveAll()
	for _, gs := range e.orderedGroups() {
		gs.advanceTime(t)
		// An explicit watermark asserts nothing older than t is coming, so
		// deferred emissions up to t fire even inside the reorder horizon.
		gs.drainDeferred(t)
	}
}

// Results returns and clears the window results accumulated so far. It is
// only useful when no OnResult callback was configured.
func (e *Engine) Results() []Result {
	r := e.results
	e.results = nil
	return r
}

// Stats returns a snapshot of the engine's work counters. It is safe to
// call concurrently with ingestion: each counter is read atomically (the
// snapshot is per-counter consistent, not a cross-counter cut).
func (e *Engine) Stats() Stats {
	return Stats{
		Events:       e.stats.events.Load(),
		Calculations: e.stats.calculations.Load(),
		Slices:       e.stats.slices.Load(),
		Windows:      e.stats.windows.Load(),
		Pruned:       e.stats.pruned.Load(),
		LateCommits:  e.stats.lateCommits.Load(),
		LateDropped:  e.stats.lateDropped.Load(),
	}
}

// recordAssembly feeds the window-assembly latency histogram with one
// sample per punctuation boundary: the time to assemble and emit every
// member window ending there, which is the delay the last result of the
// boundary observes (and where a strategy's rebuild bursts surface). t0 is
// zero when telemetry is unattached (see groupState.beginAssembly).
func (e *Engine) recordAssembly(t0 time.Time) {
	if !t0.IsZero() {
		e.telAsm.Record(time.Since(t0))
	}
}

func (e *Engine) emit(r Result) {
	e.stats.windows.Add(1)
	if e.cfg.OnResult != nil {
		e.cfg.OnResult(r)
		return
	}
	e.results = append(e.results, r)
}

// noteHorizonDisabled latches the engine.horizon_disabled gauge: some group
// cannot honor the configured reorder horizon (shape- or mode-incompatible,
// see groupState.refreshOOO) and silently runs strict-order instead. One-shot
// so the hot reconcile path pays at most one gauge write per engine lifetime.
func (e *Engine) noteHorizonDisabled() {
	if e.horizonDisabled {
		return
	}
	e.horizonDisabled = true
	if e.tel != nil {
		e.tel.Gauge("engine.horizon_disabled").Set(1)
	}
}

// NumGroups reports how many query-groups the engine materialised — the
// quantity the optimization experiments of §6.3 vary across systems.
// Parked (evicted) instances do not count; see InstanceStats.
func (e *Engine) NumGroups() int { return len(e.byID) }
