package core

import (
	"fmt"

	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/query"
)

// Engine is the Desis aggregation engine: it executes every query-group over
// the incoming stream, sharing slices and operators between all windows of a
// group. One Engine instance runs per node; on local nodes it is configured
// with OnSlice and emits per-slice partial results instead of assembling
// windows.
type Engine struct {
	cfg            Config
	pruneThreshold int
	groups         []*groupState
	byKey          map[uint32][]*groupState
	results        []Result
	stats          Stats
	templates      []query.Query   // group-by (key=*) queries
	tmplKeys       map[uint32]bool // keys already instantiated
}

// New builds an engine for the analyzed query-groups.
func New(groups []*groupOf, cfg Config) *Engine {
	e := &Engine{cfg: cfg, byKey: make(map[uint32][]*groupState)}
	e.pruneThreshold = cfg.PruneThreshold
	if e.pruneThreshold <= 0 {
		e.pruneThreshold = DefaultPruneThreshold
	}
	for _, g := range groups {
		e.install(newGroupState(e, g))
	}
	return e
}

// RecyclePartial returns a partial emitted through Config.OnSlice to the
// engine's pools once the consumer is done with it (e.g. after the wire
// codec encoded it). The partial and its aggregates must not be used
// afterwards. Passing partials the engine did not emit is a no-op.
func (e *Engine) RecyclePartial(p *SlicePartial) {
	if p == nil {
		return
	}
	for _, gs := range e.groups {
		if gs.id == p.Group {
			gs.recyclePartial(p)
			return
		}
	}
}

func (e *Engine) install(gs *groupState) {
	e.groups = append(e.groups, gs)
	e.byKey[gs.key] = append(e.byKey[gs.key], gs)
}

// Process ingests one event, routing it to every group of its key. The
// first event of an unseen key instantiates any registered group-by
// templates for it.
func (e *Engine) Process(ev event.Event) {
	if e.templates != nil && !e.tmplKeys[ev.Key] {
		e.instantiateTemplates(ev.Key)
	}
	for _, gs := range e.byKey[ev.Key] {
		gs.process(ev)
	}
}

// AddTemplate registers a group-by query template (AnyKey): one instance
// per observed key is created lazily, all answering under the template's
// query id with the concrete key in Result.Key.
func (e *Engine) AddTemplate(q query.Query) error {
	probe := q
	probe.AnyKey = false
	if err := probe.Validate(); err != nil {
		return err
	}
	if e.tmplKeys == nil {
		e.tmplKeys = make(map[uint32]bool)
	}
	e.templates = append(e.templates, q)
	// Keys whose template instantiation already ran need this template
	// added explicitly; keys not yet instantiated pick it up with their
	// next event.
	for k := range e.tmplKeys {
		inst := q
		inst.AnyKey = false
		inst.Key = k
		if _, err := e.AddQuery(inst); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) instantiateTemplates(k uint32) {
	e.tmplKeys[k] = true
	for _, t := range e.templates {
		inst := t
		inst.AnyKey = false
		inst.Key = k
		// Template queries validated at AddTemplate; AddQuery cannot fail
		// on placement for a fresh key.
		_, _ = e.AddQuery(inst)
	}
}

// ProcessBatch ingests a batch of events in order.
func (e *Engine) ProcessBatch(evs []event.Event) {
	for _, ev := range evs {
		e.Process(ev)
	}
}

// AdvanceTo moves event time forward to t without ingesting data: every
// punctuation at or before t fires. Decentralized deployments drive this
// from watermarks (§5.1.2); tests and harnesses use it to drain the final
// windows of a replayed stream.
func (e *Engine) AdvanceTo(t int64) {
	for _, gs := range e.groups {
		gs.advanceTime(t)
	}
}

// Results returns and clears the window results accumulated so far. It is
// only useful when no OnResult callback was configured.
func (e *Engine) Results() []Result {
	r := e.results
	e.results = nil
	return r
}

// Stats returns the engine's work counters.
func (e *Engine) Stats() Stats { return e.stats }

func (e *Engine) emit(r Result) {
	e.stats.Windows++
	if e.cfg.OnResult != nil {
		e.cfg.OnResult(r)
		return
	}
	e.results = append(e.results, r)
}

// NumGroups reports how many query-groups the engine maintains — the
// quantity the optimization experiments of §6.3 vary across systems.
func (e *Engine) NumGroups() int { return len(e.groups) }

// AddQuery registers a query at runtime (§3.2). The query joins an existing
// compatible query-group when one exists — the group's current slice is
// closed at an administrative punctuation so the widened operator set
// applies from here on — or founds a new group. Windows that started before
// registration are not answered. It returns the group the query joined.
func (e *Engine) AddQuery(q query.Query) (groupID uint32, err error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	placement := query.Distributed
	if e.cfg.Decentralized && q.Measure == query.Count {
		placement = query.RootOnly
	}
	gs, ctx := e.placeQuery(q, placement)
	if gs == nil {
		g := &query.Group{
			ID:        uint32(len(e.groups)),
			Key:       q.Key,
			Placement: placement,
			Contexts:  []query.Predicate{q.Pred},
		}
		g.Queries = []query.GroupQuery{{Query: q, Ctx: 0}}
		g.LogicalOps = q.Operators()
		g.Ops = g.LogicalOps | operator.OpCount
		gs = newGroupState(e, g)
		e.install(gs)
		return g.ID, nil
	}
	// Close the running slice so every slice has a uniform operator mask.
	if gs.started {
		cut := gs.lastEventTime
		if cut < gs.lastPunct {
			cut = gs.lastPunct
		}
		gs.closeSlice(cut)
		gs.flushPending()
	}
	var specs []operator.FuncSpec
	for _, m := range gs.members {
		if !m.removed {
			specs = append(specs, m.Funcs...)
		}
	}
	specs = append(specs, q.Funcs...)
	logical := operator.Union(specs)
	gs.ops = logical | operator.OpCount
	gs.logicalOps = uint64(logical.NumOps())
	if gs.started {
		// Reopen the current slice with the widened mask.
		gs.cur.aggs = gs.newAggs()
	}
	gq := query.GroupQuery{Query: q, Ctx: ctx}
	gs.addMember(gq)
	if gs.started {
		gs.nextTimeBound = gs.cal.NextBoundary(gs.lastPunct)
		gs.nextCountID = gs.countCal.NextBoundary(gs.count)
	}
	return gs.id, nil
}

// placeQuery finds a group that can host q under the analyzer's rules,
// extending its contexts if needed. A nil group means none fits.
func (e *Engine) placeQuery(q query.Query, placement query.Placement) (*groupState, int) {
	for _, gs := range e.byKey[q.Key] {
		if gs.placement != placement {
			continue
		}
		compatible := true
		ctx := -1
		for i, c := range gs.contexts {
			if c.Equal(q.Pred) {
				ctx = i
				break
			}
			if c.Overlaps(q.Pred) {
				compatible = false
				break
			}
		}
		if ctx >= 0 {
			return gs, ctx
		}
		if compatible {
			gs.contexts = append(gs.contexts, q.Pred)
			if gs.started {
				gs.cur.aggs = gs.newAggs()
			}
			return gs, len(gs.contexts) - 1
		}
	}
	return nil, 0
}

// SyncGroup reconciles the engine with a group that was mutated (or created)
// by query.Place at runtime: new contexts and members are registered, and a
// widened operator mask takes effect from an administrative punctuation at
// the current event time. Existing members and slices are untouched, so the
// member indices EPs carry stay stable across the topology.
func (e *Engine) SyncGroup(g *groupOf) {
	var gs *groupState
	for _, cand := range e.groups {
		if cand.id == g.ID {
			gs = cand
			break
		}
	}
	if gs == nil {
		e.install(newGroupState(e, g))
		return
	}
	changed := false
	if len(g.Contexts) > len(gs.contexts) {
		gs.contexts = append(gs.contexts, g.Contexts[len(gs.contexts):]...)
		changed = true
	}
	if g.Ops != gs.ops {
		gs.ops = g.Ops
		gs.logicalOps = uint64(g.LogicalOps.NumOps())
		changed = true
	}
	if changed && gs.started {
		cut := gs.lastEventTime
		if cut < gs.lastPunct {
			cut = gs.lastPunct
		}
		gs.closeSlice(cut)
		gs.flushPending()
		gs.cur.aggs = gs.newAggs()
	}
	for i := len(gs.members); i < len(g.Queries); i++ {
		gs.addMember(g.Queries[i])
	}
	if gs.started {
		gs.nextTimeBound = gs.cal.NextBoundary(gs.lastPunct)
		gs.nextCountID = gs.countCal.NextBoundary(gs.count)
	}
}

// RemoveQuery unregisters a running query immediately; its open windows are
// abandoned (§3.2 also allows waiting for the last window, which callers get
// by delaying this call until the window result arrives). For group-by
// templates it removes the template and every per-key instance.
func (e *Engine) RemoveQuery(id uint64) error {
	removed := false
	for ti := len(e.templates) - 1; ti >= 0; ti-- {
		if e.templates[ti].ID == id {
			e.templates = append(e.templates[:ti], e.templates[ti+1:]...)
			removed = true
		}
	}
	if len(e.templates) == 0 {
		e.templates = nil
	}
	for _, gs := range e.groups {
		for i := range gs.members {
			if gs.members[i].ID == id && !gs.members[i].removed {
				gs.removeMember(i)
				if gs.started {
					gs.nextTimeBound = gs.cal.NextBoundary(gs.lastPunct)
					gs.nextCountID = gs.countCal.NextBoundary(gs.count)
				}
				removed = true
			}
		}
	}
	if !removed {
		return fmt.Errorf("core: no running query with id %d", id)
	}
	return nil
}
