package node

import (
	"errors"
	"sync"
	"testing"
	"time"

	"desis/internal/core"
	"desis/internal/message"
	"desis/internal/query"
)

// faultRoot starts a root collecting results under a short liveness timeout.
func faultRoot(t *testing.T, nChildren int, timeout time.Duration) (*RootServer, func() []core.Result) {
	t.Helper()
	queries := []query.Query{query.MustParse("tumbling(100ms) sum key=0")}
	queries[0].ID = 1
	var mu sync.Mutex
	var results []core.Result
	root, err := ServeRoot("127.0.0.1:0", queries, nChildren, timeout, nil, func(r core.Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { root.Close() })
	return root, func() []core.Result {
		mu.Lock()
		defer mu.Unlock()
		return append([]core.Result(nil), results...)
	}
}

// TestFaultKillOneOfThreeLocals is the headline §3.2 scenario: three locals
// stream in parallel, one is killed mid-stream (its link stalls, reconnects
// are refused). The root must evict it after the liveness timeout, keep the
// surviving children's windows correct, and report the eviction from Wait.
func TestFaultKillOneOfThreeLocals(t *testing.T) {
	const (
		hb      = 50 * time.Millisecond
		timeout = 250 * time.Millisecond
	)
	root, results := faultRoot(t, 3, timeout)
	proxy, err := message.NewFaultProxy(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	opts := DialOptions{Heartbeat: hb}
	phase2 := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)

	// Survivors (ids 1 and 3) connect directly; the victim (id 2) connects
	// through the fault proxy so the test can cut its link.
	for _, id := range []uint32{1, 3} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[id] = RunLocalTCPOptions(root.Addr(), id, 64, opts, func(l *LocalSession) error {
				if err := l.Process(stepEvents(0, 1000, 10)); err != nil {
					return err
				}
				if err := l.AdvanceTo(1000); err != nil {
					return err
				}
				<-phase2 // continue only after the victim is evicted
				if err := l.Process(stepEvents(1000, 2000, 10)); err != nil {
					return err
				}
				return l.AdvanceTo(2000)
			})
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = RunLocalTCPOptions(proxy.Addr(), 2, 64, opts, func(l *LocalSession) error {
			if err := l.Process(stepEvents(0, 1000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(1000); err != nil {
				return err
			}
			<-release // stalled from here on; the root evicts us
			return nil
		})
	}()

	// Phase 1 complete: all three children contributed up to t=1000.
	waitUntil(t, 10*time.Second, "root watermark 1000", func() bool { return root.Watermark() >= 1000 })

	// Kill the victim: its link freezes (the socket stays open, heartbeats
	// stop arriving) and reconnection attempts are refused.
	proxy.RejectNew(true)
	proxy.StallAll()
	waitUntil(t, 10*time.Second, "victim eviction", func() bool {
		for _, id := range root.Evicted() {
			if id == 2 {
				return true
			}
		}
		return false
	})

	// Phase 2: the survivors stream on; their windows must still close.
	close(phase2)
	close(release)
	wg.Wait()
	for _, id := range []uint32{1, 3} {
		if errs[id] != nil {
			t.Fatalf("survivor %d: %v", id, errs[id])
		}
	}

	err = root.Wait()
	var ee *EvictionError
	if !errors.As(err, &ee) {
		t.Fatalf("root.Wait: %v, want EvictionError", err)
	}
	if len(ee.IDs) != 1 || ee.IDs[0] != 2 {
		t.Fatalf("evicted %v, want [2]", ee.IDs)
	}

	// Windows before the kill carry all three children (sum 30); windows
	// after it carry only the survivors (sum 20).
	sums := sumByWindow(results())
	if len(sums) != 20 {
		t.Fatalf("windows: %d, want 20 (%v)", len(sums), sums)
	}
	for start, sum := range sums {
		want := 30.0
		if start >= 1000 {
			want = 20.0
		}
		if sum != want {
			t.Errorf("window %d: sum %g, want %g", start, sum, want)
		}
	}
}

// TestFaultEvictThenReviveSameID kills a child, lets the topology degrade,
// then brings a fresh child up under the same id: the root must treat it as
// a returning child — merge expectations intact, eviction record cleared,
// and Wait reporting clean completion.
func TestFaultEvictThenReviveSameID(t *testing.T) {
	const (
		hb      = 50 * time.Millisecond
		timeout = 250 * time.Millisecond
	)
	root, results := faultRoot(t, 2, timeout)
	proxy, err := message.NewFaultProxy(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	opts := DialOptions{Heartbeat: hb}
	phase2 := make(chan struct{})
	phase3 := make(chan struct{})
	release := make(chan struct{})
	revived := make(chan struct{})
	var wg sync.WaitGroup
	var survivorErr, revivedErr error

	// Survivor (id 1): streams through all three phases.
	wg.Add(1)
	go func() {
		defer wg.Done()
		survivorErr = RunLocalTCPOptions(root.Addr(), 1, 64, opts, func(l *LocalSession) error {
			if err := l.Process(stepEvents(0, 1000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(1000); err != nil {
				return err
			}
			<-phase2
			if err := l.Process(stepEvents(1000, 2000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(2000); err != nil {
				return err
			}
			<-phase3
			if err := l.Process(stepEvents(2000, 3000, 10)); err != nil {
				return err
			}
			return l.AdvanceTo(3000)
		})
	}()
	// Victim (id 2): contributes phase 1 through the proxy, then is killed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = RunLocalTCPOptions(proxy.Addr(), 2, 64, opts, func(l *LocalSession) error {
			if err := l.Process(stepEvents(0, 1000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(1000); err != nil {
				return err
			}
			<-release
			return nil
		})
	}()

	waitUntil(t, 10*time.Second, "root watermark 1000", func() bool { return root.Watermark() >= 1000 })
	proxy.RejectNew(true)
	proxy.StallAll()
	waitUntil(t, 10*time.Second, "victim eviction", func() bool {
		for _, id := range root.Evicted() {
			if id == 2 {
				return true
			}
		}
		return false
	})

	// Phase 2: the survivor streams alone.
	close(phase2)
	waitUntil(t, 10*time.Second, "root watermark 2000", func() bool { return root.Watermark() >= 2000 })

	// Revive: a fresh process takes over id 2, connecting directly to the
	// root, and streams phase 3 alongside the survivor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		revivedErr = RunLocalTCPOptions(root.Addr(), 2, 64, opts, func(l *LocalSession) error {
			close(revived) // handshake done: id 2 is registered again
			if err := l.Process(stepEvents(2000, 3000, 10)); err != nil {
				return err
			}
			return l.AdvanceTo(3000)
		})
	}()
	<-revived
	close(phase3)
	close(release)
	wg.Wait()
	if survivorErr != nil {
		t.Fatalf("survivor: %v", survivorErr)
	}
	if revivedErr != nil {
		t.Fatalf("revived child: %v", revivedErr)
	}

	// The revived id cleared the eviction: completion is clean.
	if err := root.Wait(); err != nil {
		t.Fatalf("root.Wait: %v, want nil after the evicted id returned", err)
	}
	if ev := root.Evicted(); len(ev) != 0 {
		t.Fatalf("evicted %v, want none", ev)
	}

	// Sums: both children in [0,1000), survivor alone in [1000,2000), both
	// again (survivor + revived) in [2000,3000).
	sums := sumByWindow(results())
	if len(sums) != 30 {
		t.Fatalf("windows: %d, want 30 (%v)", len(sums), sums)
	}
	for start, sum := range sums {
		want := 20.0
		if start >= 1000 && start < 2000 {
			want = 10.0
		}
		if sum != want {
			t.Errorf("window %d: sum %g, want %g", start, sum, want)
		}
	}
}
