package node

import (
	"fmt"
	"sort"

	"desis/internal/core"
	"desis/internal/operator"
	"desis/internal/query"
	"desis/internal/telemetry"
	"desis/internal/window"
)

// Assembler is the root node's window-merging stage (§5.1.3): it gathers
// merged slice partials, re-derives fixed window boundaries from the window
// attributes, reconstructs session windows from activity extents (the gap
// covering of §5.1.2), closes user-defined windows from EP unions and
// watermarks, and emits final query results.
type Assembler struct {
	states   map[uint32]*rootGroup
	onResult func(core.Result)
	// tel registers a group.<id>.windows counter per distributed group, so
	// root-assembled windows land under the same names the single-node
	// engine uses and cluster-wide merges line up per group.
	tel       *telemetry.Registry
	traceName string
}

type rootGroup struct {
	g          *query.Group
	telWindows *telemetry.Counter
	cal        window.Calendar
	buffer     []*core.SlicePartial // arrived, waiting for the watermark
	store      []*core.SlicePartial // processed, sorted by Start
	dirty      bool
	sess       map[int32]*sessCand
	uds        map[int32]*udState
	started    bool
	lastPunct  int64
	scratch    operator.Agg
	runs       [][]float64        // scratch run list for value merging
	rm         operator.RunMerger // k-way merger for non-decomposable values
	reg        []int64            // per-member registration time (runtime AddQuery)
	removed    []bool             // per-member removal flag (indices stay stable)
}

// sessCand is the open global session of one session query, tracked from
// activity extents of merged partials: a new partial whose start lies beyond
// lastActivity+gap means the children's gaps covered each other and the
// session ended (§5.1.2).
type sessCand struct {
	gap          int64
	active       bool
	start        int64
	lastActivity int64
}

// udState tracks one user-defined-window query: open candidates are unions
// of overlapping child EP intervals, closed once the watermark passes them.
type udState struct {
	openStart int64
	cands     []udCand
	// barStart/barEnd remember the extent of the partial that carried the
	// most recent EP: it holds pre-marker events and must not leak into
	// the window opening at the same timestamp (stream-order membership —
	// only zero-span partials are ambiguous by extent).
	barStart, barEnd int64
	barSet           bool
}

type udCand struct{ start, end int64 }

// NewAssembler builds the assembly stage for the distributed groups.
func NewAssembler(groups []*query.Group, onResult func(core.Result)) *Assembler {
	a := &Assembler{states: make(map[uint32]*rootGroup), onResult: onResult}
	for _, g := range groups {
		if g.Placement != query.Distributed {
			continue
		}
		a.installGroup(g)
	}
	return a
}

// AttachTelemetry registers per-group window counters in reg and labels
// trace events with traceName; groups installed later register on install.
func (a *Assembler) AttachTelemetry(reg *telemetry.Registry, traceName string) {
	a.tel = reg
	a.traceName = traceName
	if reg == nil {
		return
	}
	for _, rg := range a.states {
		rg.telWindows = reg.Counter(fmt.Sprintf("group.%d.windows", rg.g.ID))
	}
}

func (a *Assembler) installGroup(g *query.Group) {
	rg := &rootGroup{g: g, sess: make(map[int32]*sessCand), uds: make(map[int32]*udState)}
	if a.tel != nil {
		rg.telWindows = a.tel.Counter(fmt.Sprintf("group.%d.windows", g.ID))
	}
	for idx := range g.Queries {
		rg.registerMember(idx, 0)
	}
	a.states[g.ID] = rg
	// A catalog arriving with tombstoned members (a plan resend after
	// removals) must not resurrect them.
	for idx := range g.Queries {
		if g.Queries[idx].Removed {
			a.RemoveMember(g.ID, idx)
		}
	}
}

func (rg *rootGroup) registerMember(idx int, regTime int64) {
	gq := rg.g.Queries[idx]
	switch gq.Type {
	case query.Tumbling:
		if gq.Measure == query.Time {
			rg.cal.Add(idx, gq.Length, gq.Length)
		}
	case query.Sliding:
		if gq.Measure == query.Time {
			rg.cal.Add(idx, gq.Length, gq.Slide)
		}
	case query.Session:
		rg.sess[int32(idx)] = &sessCand{gap: gq.Gap}
	case query.UserDefined:
		rg.uds[int32(idx)] = &udState{openStart: regTime}
	}
	rg.reg = append(rg.reg, regTime)
	rg.removed = append(rg.removed, false)
}

// SyncGroup reconciles the assembler with a group's catalog entry after a
// plan delta applied: new members register with the current watermark as
// their registration time (they only answer windows starting afterwards), and
// freshly tombstoned members are unregistered. Indices stay stable either
// way.
func (a *Assembler) SyncGroup(g *query.Group, regTime int64) {
	rg, ok := a.states[g.ID]
	if !ok {
		a.installGroup(g)
		return
	}
	for idx := len(rg.reg); idx < len(g.Queries); idx++ {
		rg.registerMember(idx, regTime)
	}
	for idx := range g.Queries {
		if g.Queries[idx].Removed && !rg.removed[idx] {
			a.RemoveMember(g.ID, idx)
		}
	}
}

// RemoveMember unregisters one member; indices of the others are stable.
func (a *Assembler) RemoveMember(groupID uint32, idx int) {
	rg, ok := a.states[groupID]
	if !ok || idx >= len(rg.removed) {
		return
	}
	rg.removed[idx] = true
	rg.cal.Remove(idx)
	delete(rg.sess, int32(idx))
	delete(rg.uds, int32(idx))
}

// AddPartial buffers a merged partial until the watermark matures it.
func (a *Assembler) AddPartial(p *core.SlicePartial) {
	rg, ok := a.states[p.Group]
	if !ok {
		return
	}
	rg.buffer = append(rg.buffer, p)
}

// AdvanceTo processes everything the watermark W has matured: partials with
// End <= W, fixed boundaries <= W, expired sessions, and user-defined
// candidates.
func (a *Assembler) AdvanceTo(w int64) {
	for _, rg := range a.states {
		a.advanceGroup(rg, w)
	}
}

func (a *Assembler) advanceGroup(rg *rootGroup, w int64) {
	// Mature partials, in (End, Start) order so session activity tracking
	// sees a coherent timeline.
	var take []*core.SlicePartial
	rest := rg.buffer[:0]
	for _, p := range rg.buffer {
		if p.End <= w {
			take = append(take, p)
		} else {
			rest = append(rest, p)
		}
	}
	// Zero the dead tail: the matured partials are recycled after assembly,
	// and the buffer must not keep the recycled pointers reachable past len.
	clear(rg.buffer[len(rest):])
	rg.buffer = rest
	sort.Slice(take, func(i, j int) bool {
		if take[i].End != take[j].End {
			return take[i].End < take[j].End
		}
		return take[i].Start < take[j].Start
	})
	for _, p := range take {
		if !rg.started {
			rg.started = true
			rg.lastPunct = p.Start
			for _, us := range rg.uds {
				us.openStart = p.Start
			}
		}
		if p.Ingested > 0 {
			a.trackSessions(rg, p)
		}
		for _, ep := range p.EPs {
			if us, ok := rg.uds[ep.QueryIdx]; ok {
				addUDCandidate(us, ep.Start, ep.End)
				us.barStart, us.barEnd, us.barSet = p.Start, p.End, true
			}
		}
		rg.store = append(rg.store, p)
		rg.dirty = true
	}
	if rg.dirty {
		sort.Slice(rg.store, func(i, j int) bool { return rg.store[i].Start < rg.store[j].Start })
		rg.dirty = false
	}
	if !rg.started {
		return
	}
	// Fixed windows: every boundary the watermark passed.
	for b := rg.cal.NextBoundary(rg.lastPunct); b <= w && b != window.NoBoundary; b = rg.cal.NextBoundary(b) {
		rg.cal.EndsAt(b, func(idx int, ws int64) {
			a.assemble(rg, idx, ws, b)
		})
		rg.lastPunct = b
	}
	// Sessions whose gap elapsed below the watermark.
	for idx, sc := range rg.sess {
		if sc.active && sc.lastActivity+sc.gap <= w {
			a.assemble(rg, int(idx), sc.start, sc.lastActivity+sc.gap)
			sc.active = false
		}
	}
	// User-defined candidates the watermark passed.
	for idx, us := range rg.uds {
		kept := us.cands[:0]
		for _, c := range us.cands {
			if c.end <= w {
				a.assemble(rg, int(idx), c.start, c.end)
				if c.end > us.openStart {
					us.openStart = c.end
				}
			} else {
				kept = append(kept, c)
			}
		}
		us.cands = kept
	}
	a.prune(rg, w)
}

// trackSessions extends or restarts every session candidate with the
// activity extent of one matured partial.
func (a *Assembler) trackSessions(rg *rootGroup, p *core.SlicePartial) {
	for idx, sc := range rg.sess {
		if sc.active && p.Start >= sc.lastActivity+sc.gap {
			a.assemble(rg, int(idx), sc.start, sc.lastActivity+sc.gap)
			sc.active = false
		}
		if !sc.active {
			sc.active = true
			sc.start = p.Start
			sc.lastActivity = p.LastEvent
			continue
		}
		if p.Start < sc.start {
			sc.start = p.Start
		}
		if p.LastEvent > sc.lastActivity {
			sc.lastActivity = p.LastEvent
		}
	}
}

// addUDCandidate unions the EP interval [s, e) into the query's open
// candidates; overlapping intervals from different children merge — the
// interval form of "gaps covering each other".
func addUDCandidate(us *udState, s, e int64) {
	for i := range us.cands {
		c := &us.cands[i]
		if s < c.end && c.start < e {
			if s < c.start {
				c.start = s
			}
			if e > c.end {
				c.end = e
			}
			return
		}
	}
	us.cands = append(us.cands, udCand{start: s, end: e})
}

// assemble merges the stored partials covering [ws, we) for the member at
// idx and emits the result.
func (a *Assembler) assemble(rg *rootGroup, idx int, ws, we int64) {
	if idx < len(rg.removed) && rg.removed[idx] {
		return
	}
	if idx < len(rg.reg) && ws < rg.reg[idx] {
		return
	}
	m := rg.g.Queries[idx]
	lo := sort.Search(len(rg.store), func(i int) bool { return rg.store[i].Start >= ws })
	// Merge only the fields this member's functions need (core does the
	// same); min/max fall back to the sorted values when the group shares
	// the non-decomposable sort.
	mops := operator.Union(m.Funcs) | operator.OpCount
	if mops&operator.OpDSort != 0 && rg.g.Ops&operator.OpDSort == 0 {
		mops = (mops &^ operator.OpDSort) | operator.OpNDSort
	}
	rg.scratch.Reset(mops &^ operator.OpNDSort)
	rg.scratch.Sorted = true
	rg.runs = rg.runs[:0]
	us := rg.uds[int32(idx)]
	for i := lo; i < len(rg.store); i++ {
		p := rg.store[i]
		if p.Start >= we {
			break
		}
		if us != nil && us.barSet && we > us.barEnd &&
			p.Start == p.End && p.Start == us.barStart && p.End == us.barEnd {
			// Zero-span partial cut by the marker that closed the previous
			// user-defined window: its events precede this window.
			continue
		}
		if p.End <= we && m.Ctx < len(p.Aggs) {
			rg.scratch.Merge(&p.Aggs[m.Ctx])
			if mops&operator.OpNDSort != 0 {
				rg.runs = append(rg.runs, p.Aggs[m.Ctx].Values)
			}
		}
	}
	if mops&operator.OpNDSort != 0 {
		raw := operator.Union(m.Funcs)
		if raw&operator.OpNDSort == 0 && raw&operator.OpDSort != 0 {
			// Min/max over sorted runs: the endpoints suffice (O(slices)).
			rg.scratch.Ops |= operator.OpDSort
			for _, r := range rg.runs {
				if len(r) == 0 {
					continue
				}
				if r[0] < rg.scratch.MinV {
					rg.scratch.MinV = r[0]
				}
				if last := r[len(r)-1]; last > rg.scratch.MaxV {
					rg.scratch.MaxV = last
				}
			}
		} else {
			rg.scratch.Values = rg.rm.Merge(rg.runs)
			rg.scratch.Ops |= operator.OpNDSort
		}
	}
	rg.scratch.Finish()
	values := make([]core.FuncValue, len(m.Funcs))
	for i, spec := range m.Funcs {
		v, ok := rg.scratch.Eval(spec)
		values[i] = core.FuncValue{Spec: spec, Value: v, OK: ok}
	}
	rg.telWindows.Inc()
	if telemetry.TraceEnabled {
		telemetry.TraceSlice(telemetry.TraceAssemble, a.traceName, uint64(rg.g.ID), 0, ws, we)
	}
	a.onResult(core.Result{
		QueryID: m.ID,
		Start:   ws,
		End:     we,
		Count:   rg.scratch.CountV,
		Values:  values,
	})
}

// prune drops stored partials no open or future window can need.
func (a *Assembler) prune(rg *rootGroup, w int64) {
	if len(rg.store) < 64 {
		return
	}
	tNeed := rg.cal.EarliestOpenStart(rg.lastPunct)
	for _, sc := range rg.sess {
		if sc.active && sc.start < tNeed {
			tNeed = sc.start
		}
	}
	for _, us := range rg.uds {
		if us.openStart < tNeed {
			tNeed = us.openStart
		}
		for _, c := range us.cands {
			if c.start < tNeed {
				tNeed = c.start
			}
		}
	}
	n := 0
	for n < len(rg.store) && rg.store[n].Start < tNeed {
		n++
	}
	if n > 0 {
		rg.store = append(rg.store[:0], rg.store[n:]...)
	}
}

// Group returns the state's group by id, for runtime query management.
func (a *Assembler) Group(id uint32) (*query.Group, bool) {
	rg, ok := a.states[id]
	if !ok {
		return nil, false
	}
	return rg.g, true
}
