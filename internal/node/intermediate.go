package node

import (
	"fmt"
	"sync"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/telemetry"
)

// Intermediate is an intermediate node: a Merger between its children and
// its parent. It merges aligned slice partials (the intermediate incremental
// aggregation of §5.1), relays raw event batches of RootOnly groups
// preserving their origin, and forwards the merged watermark.
type Intermediate struct {
	id     uint32
	merger *Merger
	parent message.Conn
	mu     sync.Mutex
	err    error
}

// NewIntermediate builds an intermediate node expecting the given children,
// sending to parent.
func NewIntermediate(id uint32, children []uint32, parent message.Conn) *Intermediate {
	n := &Intermediate{id: id, parent: parent}
	n.merger = NewMerger(children)
	n.merger.Out = func(p *core.SlicePartial) {
		n.send(&message.Message{Kind: message.KindPartial, From: n.id, Partial: p})
	}
	n.merger.OutEvents = func(from uint32, evs []event.Event) {
		// Preserve the origin id: the root orders RootOnly events per
		// originating stream.
		n.send(&message.Message{Kind: message.KindEventBatch, From: from, Events: evs})
	}
	n.merger.OutWatermark = func(w int64) {
		n.send(&message.Message{Kind: message.KindWatermark, From: n.id, Watermark: w})
	}
	return n
}

func (n *Intermediate) send(m *message.Message) {
	if n.err != nil {
		return
	}
	n.err = n.parent.Send(m)
}

// Handle dispatches one message from a child.
func (n *Intermediate) Handle(m *message.Message) error {
	switch m.Kind {
	case message.KindPartial:
		n.merger.HandlePartial(m.From, m.Partial)
	case message.KindWatermark:
		n.merger.HandleWatermark(m.From, m.Watermark)
	case message.KindEventBatch:
		n.merger.HandleEvents(m.From, m.Events)
	case message.KindBatch:
		// Unbatch in order under the same (caller-held) lock; the merged
		// output re-batches on this node's own uplink if it is batching too.
		for _, f := range m.Batch.Frames {
			if err := n.Handle(f); err != nil {
				return err
			}
		}
	case message.KindHello, message.KindHeartbeat, message.KindGoodbye:
	default:
		return fmt.Errorf("node: intermediate cannot handle message kind %d", m.Kind)
	}
	return n.err
}

// HandleLocked is Handle behind the node's mutex, for concurrent child
// pumps; the merger itself is single-threaded.
func (n *Intermediate) HandleLocked(m *message.Message) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.Handle(m)
}

// AddChild and RemoveChild adjust the expected child set at runtime (§3.2).
// They are unsynchronised; concurrent servers use the Locked variants.
func (n *Intermediate) AddChild(id uint32)    { n.merger.AddChild(id) }
func (n *Intermediate) RemoveChild(id uint32) { n.merger.RemoveChild(id) }

// AddChildLocked and RemoveChildLocked take the node's mutex, for use
// alongside HandleLocked from concurrent per-child goroutines.
func (n *Intermediate) AddChildLocked(id uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.merger.AddChild(id)
}

func (n *Intermediate) RemoveChildLocked(id uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.merger.RemoveChild(id)
}

// AttachTelemetry instruments the merger with reg, labelling trace events
// with traceName. Call before serving traffic.
func (n *Intermediate) AttachTelemetry(reg *telemetry.Registry, traceName string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.merger.AttachTelemetry(reg, traceName)
}

// Digest summarises this node's progress for the heartbeat piggyback: the
// merged watermark and how many merged partials went upward.
func (n *Intermediate) Digest() *telemetry.LoadDigest {
	n.mu.Lock()
	defer n.mu.Unlock()
	return &telemetry.LoadDigest{
		Watermark: n.merger.Watermark(),
		Slices:    uint64(n.merger.PartialsSent()),
	}
}

// Close announces a clean departure and closes the parent connection.
func (n *Intermediate) Close() error {
	_ = n.parent.Send(&message.Message{Kind: message.KindGoodbye, From: n.id})
	if err := n.parent.Close(); err != nil {
		return err
	}
	return n.err
}
