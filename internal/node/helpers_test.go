package node

import (
	"testing"

	"desis/internal/event"
	"desis/internal/query"
)

type queryT = query.Query

func mustQuery(t *testing.T, s string) query.Query {
	t.Helper()
	q, err := query.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	q.ID = 1
	return q
}

func analyzeT(t *testing.T, queries []query.Query) []*query.Group {
	t.Helper()
	groups, err := query.Analyze(queries, query.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

// feedCluster splits the global stream across the cluster's locals, pushes
// it in chunks with watermark advances, drains to adv, and closes.
func feedCluster(t *testing.T, c *Cluster, evs []event.Event, adv int64) {
	t.Helper()
	streams := splitStream(evs, c.NumLocals())
	const chunk = 40
	for off := 0; ; off += chunk {
		busy := false
		var maxT int64
		for i, s := range streams {
			if off >= len(s) {
				continue
			}
			hi := off + chunk
			if hi > len(s) {
				hi = len(s)
			}
			if err := c.Push(i, s[off:hi]); err != nil {
				t.Fatal(err)
			}
			if tm := s[hi-1].Time; tm > maxT {
				maxT = tm
			}
			busy = true
		}
		if !busy {
			break
		}
		if err := c.AdvanceAll(maxT); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AdvanceAll(adv); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
