package node

import (
	"math/rand"
	"testing"

	"desis/internal/message"
)

// TestClusterCompactCodec runs the standard mixed workload over the compact
// varint codec and checks the results against the central engine — codec
// choice must never change answers, only bytes.
func TestClusterCompactCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	evs := globalStream(rng, 400)
	queries := mixedQueries(t)
	adv := evs[len(evs)-1].Time + 2000
	want := centralResults(t, queries, evs, adv)

	groups := analyzeT(t, queries)
	c := NewCluster(groups, ClusterConfig{Locals: 3, Intermediates: 1, Codec: message.Compact{}})
	feedCluster(t, c, evs, adv)
	compareResultSets(t, c.Results(), want)
}

// TestCompactSavesBytesOnCluster compares binary and compact traffic for a
// RootOnly (count-window) workload, where raw events dominate the wire.
func TestCompactSavesBytesOnCluster(t *testing.T) {
	q := mustQuery(t, "tumbling(64ev) sum key=0")
	run := func(codec message.Codec) uint64 {
		groups := analyzeT(t, []queryT{q})
		c := NewCluster(groups, ClusterConfig{Locals: 2, Codec: codec})
		rng := rand.New(rand.NewSource(5))
		evs := globalStream(rng, 3000)
		feedCluster(t, c, evs, evs[len(evs)-1].Time+1000)
		local, _ := c.NetworkBytes()
		return local
	}
	bin := run(message.Binary{})
	cmp := run(message.Compact{})
	if cmp >= bin*3/4 {
		t.Errorf("compact %d bytes, binary %d — expected at least 25%% savings", cmp, bin)
	}
}
