package node

import (
	"fmt"
	"sort"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/query"
)

// Root is the root node of a Desis topology: it merges the partial-result
// streams of its children (it behaves like an intermediate node toward
// them), assembles final windows for distributed groups, and runs a full
// aggregation engine over the time-merged raw events of RootOnly
// (count-based) groups, because only the root observes the global event
// order (§5.2).
type Root struct {
	merger   *Merger
	asm      *Assembler
	eng      *core.Engine
	groups   []*query.Group
	evBuf    map[uint32][]event.Event
	onResult func(core.Result)
	wm       int64
}

// NewRoot builds a root for the analyzed groups, expecting the given child
// node ids.
func NewRoot(groups []*query.Group, children []uint32, onResult func(core.Result)) *Root {
	r := &Root{
		groups:   append([]*query.Group(nil), groups...),
		evBuf:    make(map[uint32][]event.Event),
		onResult: onResult,
	}
	var rootOnly []*query.Group
	for _, g := range groups {
		if g.Placement == query.RootOnly {
			rootOnly = append(rootOnly, g)
		}
	}
	r.eng = core.New(rootOnly, core.Config{OnResult: onResult})
	r.asm = NewAssembler(groups, onResult)
	r.merger = NewMerger(children)
	r.merger.Out = r.asm.AddPartial
	r.merger.OutEvents = func(from uint32, evs []event.Event) {
		r.evBuf[from] = append(r.evBuf[from], evs...)
	}
	r.merger.OutWatermark = r.advance
	return r
}

// Handle dispatches one message from a child.
func (r *Root) Handle(m *message.Message) error {
	switch m.Kind {
	case message.KindPartial:
		r.merger.HandlePartial(m.From, m.Partial)
	case message.KindWatermark:
		r.merger.HandleWatermark(m.From, m.Watermark)
	case message.KindEventBatch:
		r.evBuf[m.From] = append(r.evBuf[m.From], m.Events...)
	case message.KindHello, message.KindHeartbeat, message.KindGoodbye:
	case message.KindAddQuery:
		for _, q := range m.Queries {
			if err := r.AddQuery(q); err != nil {
				return err
			}
		}
	case message.KindRemoveQuery:
		return r.RemoveQuery(m.QueryID)
	default:
		return fmt.Errorf("node: root cannot handle message kind %d", m.Kind)
	}
	return nil
}

// advance moves the root watermark: raw events up to w feed the RootOnly
// engine in global time order, and the assembler closes matured windows.
func (r *Root) advance(w int64) {
	r.wm = w
	var merged []event.Event
	for from, buf := range r.evBuf {
		n := sort.Search(len(buf), func(i int) bool { return buf[i].Time > w })
		if n == 0 {
			continue
		}
		merged = append(merged, buf[:n]...)
		r.evBuf[from] = buf[n:]
	}
	if len(merged) > 0 {
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].Time < merged[j].Time })
		r.eng.ProcessBatch(merged)
	}
	r.eng.AdvanceTo(w)
	r.asm.AdvanceTo(w)
}

// Watermark reports how far the root's event time has advanced.
func (r *Root) Watermark() int64 { return r.wm }

// AddQuery registers a query at runtime. The caller must broadcast the same
// query to every node (the Cluster does this); placement is deterministic.
func (r *Root) AddQuery(q query.Query) error {
	g, _, created, err := query.Place(r.groups, q, query.Options{Decentralized: true})
	if err != nil {
		return err
	}
	if created {
		r.groups = append(r.groups, g)
	}
	if g.Placement == query.RootOnly {
		r.eng.SyncGroup(g)
		return nil
	}
	r.asm.SyncGroup(g, r.wm)
	return nil
}

// RemoveQuery unregisters a running query by id.
func (r *Root) RemoveQuery(id uint64) error {
	g, idx, ok := query.Lookup(r.groups, id)
	if !ok {
		return fmt.Errorf("node: no running query with id %d", id)
	}
	if g.Placement == query.RootOnly {
		return r.eng.RemoveQuery(id)
	}
	r.asm.RemoveMember(g.ID, idx)
	return nil
}

// AddChild and RemoveChild adjust the expected child set at runtime (§3.2).
func (r *Root) AddChild(id uint32)    { r.merger.AddChild(id) }
func (r *Root) RemoveChild(id uint32) { r.merger.RemoveChild(id) }
