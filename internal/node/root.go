package node

import (
	"fmt"
	"sort"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/plan"
	"desis/internal/query"
	"desis/internal/telemetry"
)

// Root is the root node of a Desis topology: it merges the partial-result
// streams of its children (it behaves like an intermediate node toward
// them), assembles final windows for distributed groups, and runs a full
// aggregation engine over the time-merged raw events of RootOnly
// (count-based) groups, because only the root observes the global event
// order (§5.2).
//
// The root owns the deployment's authoritative execution plan, wrapped in a
// plan.History: every runtime catalog change applies here first, the
// resulting delta is what servers broadcast down the tree, and reconnecting
// children resync by epoch diff (History.Since) instead of a full catalog
// resend.
type Root struct {
	hist     *plan.History
	merger   *Merger
	asm      *Assembler
	eng      *core.Engine
	evBuf    map[uint32][]event.Event
	onResult func(core.Result)
	wm       int64
}

// NewRoot builds a root for the analyzed groups, expecting the given child
// node ids. It takes ownership of the group pointers (they become the
// authoritative plan's catalog). The factor-window optimizer is left on; use
// NewRootFromPlan to control it.
func NewRoot(groups []*query.Group, children []uint32, onResult func(core.Result)) *Root {
	p := plan.FromGroups(groups, plan.Options{Decentralized: true, Optimize: true})
	return NewRootFromPlan(p, children, onResult)
}

// NewRootFromPlan builds a root around an already-wrapped execution plan,
// taking ownership of it. The plan's Optimize flag governs how future deltas
// place: it must match the flag the groups were analyzed under, or delta
// replay would diverge across tiers.
func NewRootFromPlan(p *plan.Plan, children []uint32, onResult func(core.Result)) *Root {
	r := &Root{
		hist:     plan.NewHistory(p),
		evBuf:    make(map[uint32][]event.Event),
		onResult: onResult,
	}
	// The engine holds its own plan copy of the same lineage: Root.Apply
	// applies each delta to both, keeping the epochs locked together. The
	// placement filter materialises only the RootOnly groups; the assembler
	// handles the distributed ones.
	r.eng = core.NewFromPlan(p.Clone(), core.Config{OnResult: onResult, Placement: core.RootOnlyGroups})
	r.asm = NewAssembler(p.Groups, onResult)
	r.merger = NewMerger(children)
	r.merger.Out = r.asm.AddPartial
	r.merger.OutEvents = func(from uint32, evs []event.Event) {
		r.evBuf[from] = append(r.evBuf[from], evs...)
	}
	r.merger.OutWatermark = r.advance
	return r
}

// AttachTelemetry instruments every stage of the root — the RootOnly
// engine, the merger, and the assembler — with reg, labelling trace events
// with traceName. Call before serving traffic.
func (r *Root) AttachTelemetry(reg *telemetry.Registry, traceName string) {
	r.eng.AttachTelemetry(reg)
	r.merger.AttachTelemetry(reg, traceName)
	r.asm.AttachTelemetry(reg, traceName)
}

// History exposes the root's authoritative plan history (for handshake epoch
// diffs and plan dumps). Callers must hold whatever lock serialises Handle.
func (r *Root) History() *plan.History { return r.hist }

// Epoch returns the current plan epoch.
func (r *Root) Epoch() uint64 { return r.hist.Epoch() }

// Handle dispatches one message from a child.
func (r *Root) Handle(m *message.Message) error {
	switch m.Kind {
	case message.KindPartial:
		r.merger.HandlePartial(m.From, m.Partial)
	case message.KindWatermark:
		r.merger.HandleWatermark(m.From, m.Watermark)
	case message.KindEventBatch:
		r.evBuf[m.From] = append(r.evBuf[m.From], m.Events...)
	case message.KindBatch:
		// Unbatch in order: the producer emits a partial strictly before any
		// watermark covering it, so in-order delivery of the frames is
		// indistinguishable from the unbatched wire.
		for _, f := range m.Batch.Frames {
			if err := r.Handle(f); err != nil {
				return err
			}
		}
	case message.KindHello, message.KindHeartbeat, message.KindGoodbye:
	case message.KindAddQuery:
		for _, q := range m.Queries {
			if err := r.AddQuery(q); err != nil {
				return err
			}
		}
	case message.KindRemoveQuery:
		return r.RemoveQuery(m.QueryID)
	case message.KindPlanDelta:
		for _, d := range m.Deltas {
			if err := r.Apply(d); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("node: root cannot handle message kind %d", m.Kind)
	}
	return nil
}

// advance moves the root watermark: raw events up to w feed the RootOnly
// engine in global time order, and the assembler closes matured windows.
func (r *Root) advance(w int64) {
	r.wm = w
	var merged []event.Event
	for from, buf := range r.evBuf {
		n := sort.Search(len(buf), func(i int) bool { return buf[i].Time > w })
		if n == 0 {
			continue
		}
		merged = append(merged, buf[:n]...)
		r.evBuf[from] = buf[n:]
	}
	if len(merged) > 0 {
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].Time < merged[j].Time })
		r.eng.ProcessBatch(merged)
	}
	r.eng.AdvanceTo(w)
	r.asm.AdvanceTo(w)
}

// Watermark reports how far the root's event time has advanced.
func (r *Root) Watermark() int64 { return r.wm }

// Apply applies one plan delta to every stage of the root: the authoritative
// history, the RootOnly engine, and the assembler's distributed groups. It is
// the single mutation path — AddQuery and RemoveQuery mint deltas and funnel
// through here, as do deltas applied by the in-process Cluster.
func (r *Root) Apply(d plan.Delta) error {
	if d.Kind == plan.DeltaAddQuery && d.Query.AnyKey {
		return fmt.Errorf("node: group-by templates (key=*) are not supported in decentralized deployments")
	}
	if err := r.hist.Apply(d); err != nil {
		return err
	}
	if err := r.eng.Apply(d); err != nil {
		// The engine's plan shares the history's lineage; a divergence here
		// is a bug, not a recoverable condition.
		return fmt.Errorf("node: root engine diverged from plan: %w", err)
	}
	for _, g := range r.hist.Plan().Groups {
		if g.Placement == query.Distributed {
			r.asm.SyncGroup(g, r.wm)
		}
	}
	return nil
}

// AddQuery registers a query at runtime through a plan delta. Servers that
// need the minted delta (to broadcast it) mint it themselves against
// History().Plan() and call Apply.
func (r *Root) AddQuery(q query.Query) error {
	return r.Apply(r.hist.Plan().AddDelta(q))
}

// RemoveQuery unregisters a running query by id.
func (r *Root) RemoveQuery(id uint64) error {
	return r.Apply(r.hist.Plan().RemoveDelta(id))
}

// AddChild and RemoveChild adjust the expected child set at runtime (§3.2).
func (r *Root) AddChild(id uint32)    { r.merger.AddChild(id) }
func (r *Root) RemoveChild(id uint32) { r.merger.RemoveChild(id) }
