package node

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/plan"
	"desis/internal/query"
	"desis/internal/telemetry"
)

// TCP deployment: the same Local/Intermediate/Root node types served over
// real sockets, used by cmd/desis-node. The protocol is:
//
//  1. a child connects to its parent and sends KindHello with its node id
//     and its current plan epoch (NoEpoch for a fresh child);
//  2. the parent replies with the plan resync the epoch calls for: the
//     missing delta suffix as KindPlanDelta when its history reaches back
//     far enough, otherwise the full catalog as KindPlanState
//     (intermediates serve this from their own cached plan history);
//  3. the child streams partials/events/watermarks upward; an idle child
//     emits KindHeartbeat every HeartbeatInterval so the §3.2 liveness
//     timeout only fires for genuinely dead peers;
//  4. when a child disconnects it is removed from the merge expectations; a
//     silent child is *evicted* after the liveness timeout (enforced with a
//     socket read deadline — no per-message goroutines or timers). Children
//     reconnect with backoff, re-handshake reporting their epoch, and
//     resume their stream: a returning id supersedes the stale connection
//     without disturbing the expectation counters (§3.2 fault tolerance);
//  5. control clients (cmd/desis-ctl) connect to the root and send
//     KindAddQuery / KindRemoveQuery / KindPlanDump as their first message;
//     the root converts add/remove into a plan delta, applies it, and
//     broadcasts the delta down the tree as KindPlanDelta (§3.2 runtime
//     query management). A child whose link fails during the broadcast is
//     dropped (it resyncs by epoch diff on reconnect) rather than failing
//     the command.
//
// The full lifecycle state machine is documented in DESIGN.md §5c.

// HeartbeatInterval is how often idle children emit heartbeats.
const HeartbeatInterval = 2 * time.Second

// EvictionError reports children that were evicted by the liveness timeout
// and had not reconnected by the time the topology finished.
type EvictionError struct{ IDs []uint32 }

func (e *EvictionError) Error() string {
	return fmt.Sprintf("node: %d child(ren) evicted by liveness timeout: %v", len(e.IDs), e.IDs)
}

// isDisconnect reports whether a recv error is an ordinary link teardown
// (clean EOF, peer death mid-frame, local close, reset) as opposed to a
// protocol error worth surfacing.
func isDisconnect(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// RootServer is a root node listening for children and control clients.
type RootServer struct {
	root     *Root
	mu       sync.Mutex
	children map[uint32]*message.TCPConn
	l        *message.Listener
	expected int
	active   int
	seenIDs  map[uint32]bool
	evicted  map[uint32]bool
	// goodbye marks children that announced a deliberate departure
	// (KindGoodbye); unclean marks seen children that left without one and
	// may therefore still reconnect. Both reset when the id returns.
	goodbye map[uint32]bool
	unclean map[uint32]bool
	timeout time.Duration
	// tel is this node's instrument registry; loads holds the most recent
	// heartbeat load digest per child (for the per-child lag gauges);
	// statsC, when non-nil, routes KindStatsDump replies arriving on child
	// connections to the in-flight collection. statsMu serialises
	// collections so two concurrent desis-ctl -stats calls cannot steal
	// each other's replies.
	tel     *telemetry.Registry
	loads   map[uint32]*telemetry.LoadDigest
	statsC  chan *telemetry.Snapshot
	statsMu sync.Mutex
	done    chan struct{}
	// doneTimer defers the done signal while an unclean departure might
	// still turn into a reconnect (one timer per server, not per message).
	doneTimer *time.Timer
	err       error
}

// ServeRoot starts a root node on addr. It expects nChildren direct
// children; Wait returns once they have all connected and disconnected. A
// zero timeout disables the liveness check.
func ServeRoot(addr string, queries []query.Query, nChildren int, timeout time.Duration, codec message.Codec, onResult func(core.Result)) (*RootServer, error) {
	return ServeRootOptions(addr, queries, nChildren, timeout, RootServeOptions{Codec: codec, OnResult: onResult})
}

// RootServeOptions carries the optional knobs of a root server; the zero
// value matches ServeRoot's defaults.
type RootServeOptions struct {
	// Codec is the wire codec; nil means message.Binary{}.
	Codec message.Codec
	// OnResult receives final window results.
	OnResult func(core.Result)
	// NoOptimize disables the factor-window plan optimizer. Children adopt
	// the root's plan at handshake, so the setting propagates to the whole
	// tree automatically.
	NoOptimize bool
}

// ServeRootOptions is ServeRoot with explicit options.
func ServeRootOptions(addr string, queries []query.Query, nChildren int, timeout time.Duration, opts RootServeOptions) (*RootServer, error) {
	codec := opts.Codec
	if codec == nil {
		codec = message.Binary{}
	}
	analyzeOpts := query.Options{Decentralized: true, Optimize: !opts.NoOptimize}
	groups, err := query.Analyze(queries, analyzeOpts)
	if err != nil {
		return nil, err
	}
	l, err := message.Listen(addr, codec)
	if err != nil {
		return nil, err
	}
	s := &RootServer{
		l:        l,
		children: make(map[uint32]*message.TCPConn),
		seenIDs:  make(map[uint32]bool),
		evicted:  make(map[uint32]bool),
		goodbye:  make(map[uint32]bool),
		unclean:  make(map[uint32]bool),
		tel:      telemetry.NewRegistry(),
		loads:    make(map[uint32]*telemetry.LoadDigest),
		expected: nChildren,
		timeout:  timeout,
		done:     make(chan struct{}),
	}
	p := plan.FromGroups(groups, plan.Options{Decentralized: true, Optimize: !opts.NoOptimize})
	s.root = NewRootFromPlan(p, nil, opts.OnResult)
	s.root.AttachTelemetry(s.tel, "root")
	go s.acceptLoop()
	return s, nil
}

// Telemetry exposes the root's instrument registry, e.g. to mount a debug
// HTTP endpoint next to the listener.
func (s *RootServer) Telemetry() *telemetry.Registry { return s.tel }

// Addr returns the bound address.
func (s *RootServer) Addr() string { return s.l.Addr() }

// Watermark reports how far the root's event time has advanced.
func (s *RootServer) Watermark() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root.Watermark()
}

// Evicted returns the ids of children currently evicted by the liveness
// timeout (a child that reconnects leaves the set).
func (s *RootServer) Evicted() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return evictedIDs(s.evicted)
}

func evictedIDs(m map[uint32]bool) []uint32 {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (s *RootServer) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

// serveConn dispatches on the first message: children say hello, control
// clients issue a command directly. The first message is subject to the
// liveness timeout, so a connected-but-mute socket cannot pin a goroutine.
func (s *RootServer) serveConn(conn *message.TCPConn) {
	first, err := conn.RecvTimeout(s.timeout)
	if err != nil {
		conn.Close()
		return
	}
	switch first.Kind {
	case message.KindHello:
		s.serveChild(conn, first)
	case message.KindAddQuery, message.KindRemoveQuery, message.KindPlanDump, message.KindStatsDump:
		s.serveControl(conn, first)
		conn.Close()
	default:
		conn.Close()
	}
}

func (s *RootServer) serveChild(conn *message.TCPConn, hello *message.Message) {
	childID := hello.From
	if s.timeout > 0 {
		conn.SetWriteTimeout(s.timeout)
	}
	s.mu.Lock()
	if prev, live := s.children[childID]; live {
		// A returning id supersedes the stale connection: swap conns
		// without touching counters or merge expectations; the old handler
		// notices it no longer owns the child and exits silently.
		prev.Close()
	} else {
		s.active++
		s.root.AddChild(childID) // (re-)join the merge expectations (§3.2)
	}
	s.seenIDs[childID] = true
	delete(s.evicted, childID)
	delete(s.unclean, childID)
	delete(s.goodbye, childID)
	s.children[childID] = conn
	err := conn.Send(planResync(s.root.History(), hello.Epoch))
	s.mu.Unlock()

	evicted := false
	var protoErr error
	if err == nil {
		for {
			m, rerr := conn.RecvTimeout(s.timeout)
			if rerr != nil {
				if errors.Is(rerr, message.ErrTimeout) {
					evicted = true
				} else if !isDisconnect(rerr) {
					protoErr = rerr
				}
				break
			}
			if m.Kind == message.KindStatsDump {
				// A child's stats reply belongs to the in-flight collection,
				// not the merge pipeline.
				s.mu.Lock()
				ch := s.statsC
				s.mu.Unlock()
				if ch != nil && m.Stats != nil {
					select {
					case ch <- m.Stats:
					default:
					}
				}
				continue
			}
			s.mu.Lock()
			if m.Kind == message.KindGoodbye {
				if s.children[childID] == conn {
					s.goodbye[childID] = true
				}
				s.mu.Unlock()
				continue
			}
			if m.Kind == message.KindHeartbeat && m.Load != nil {
				s.loads[childID] = m.Load
			}
			if herr := s.root.Handle(m); herr != nil && s.err == nil {
				s.err = herr // keep the first real error; don't clobber it
			}
			s.mu.Unlock()
		}
	}
	conn.Close()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.children[childID] != conn {
		return // superseded by a reconnect; the new handler owns the child
	}
	delete(s.children, childID)
	s.root.RemoveChild(childID)
	s.active--
	if evicted {
		s.evicted[childID] = true
	}
	if !s.goodbye[childID] {
		s.unclean[childID] = true // may yet reconnect; hold the finish line
	}
	if protoErr != nil && s.err == nil {
		s.err = fmt.Errorf("node: child %d stream: %w", childID, protoErr)
	}
	s.maybeDoneLocked()
}

// maybeDoneLocked closes done once every expected child has been seen and
// none is active. If any seen child departed without a goodbye it may still
// reconnect, so the signal is deferred by a grace period (the liveness
// timeout); a reconnect in the meantime invalidates the re-check.
func (s *RootServer) maybeDoneLocked() {
	if !(s.expected > 0 && len(s.seenIDs) >= s.expected && s.active == 0) {
		if s.doneTimer != nil {
			s.doneTimer.Stop()
			s.doneTimer = nil
		}
		return
	}
	if len(s.unclean) == 0 {
		s.closeDoneLocked()
		return
	}
	if s.doneTimer != nil {
		return // grace period already running
	}
	grace := s.timeout
	if grace <= 0 {
		grace = HeartbeatInterval
	}
	s.doneTimer = time.AfterFunc(grace, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.doneTimer = nil
		if s.expected > 0 && len(s.seenIDs) >= s.expected && s.active == 0 {
			s.closeDoneLocked()
		}
	})
}

func (s *RootServer) closeDoneLocked() {
	if s.doneTimer != nil {
		s.doneTimer.Stop()
		s.doneTimer = nil
	}
	select {
	case <-s.done:
	default:
		close(s.done)
	}
}

// planResync builds the handshake reply for a child reporting epoch: the
// missing delta suffix when the history reaches back far enough (including
// the empty suffix for an up-to-date child), otherwise the full plan. The
// caller must hold the lock serialising hist.
func planResync(hist *plan.History, epoch uint64) *message.Message {
	if deltas, ok := hist.Since(epoch); ok {
		return &message.Message{Kind: message.KindPlanDelta, Deltas: deltas}
	}
	return &message.Message{Kind: message.KindPlanState, Plan: hist.Plan()}
}

// serveControl applies one control command and broadcasts it downward; the
// ack is a KindHello (or the connection closes with an error). KindPlanDump
// instead answers with the live catalog as KindPlanState.
func (s *RootServer) serveControl(conn *message.TCPConn, m *message.Message) {
	var err error
	switch m.Kind {
	case message.KindAddQuery:
		for _, q := range m.Queries {
			if err = s.AddQuery(q); err != nil {
				break
			}
		}
	case message.KindRemoveQuery:
		err = s.RemoveQuery(m.QueryID)
	case message.KindPlanDump:
		s.mu.Lock()
		_ = conn.Send(&message.Message{Kind: message.KindPlanState, Plan: s.root.History().Plan()})
		s.mu.Unlock()
		return
	case message.KindStatsDump:
		_ = conn.Send(&message.Message{Kind: message.KindStatsDump, Stats: s.collectStats()})
		return
	}
	if err != nil {
		return // closing without ack signals failure to the client
	}
	_ = conn.Send(&message.Message{Kind: message.KindHello})
}

// statsWait bounds how long a stats collection waits for child replies, so
// a dead or wedged child cannot stall desis-ctl -stats. Intermediates use
// a shorter bound than the root so their (partial) reply still arrives
// inside the root's window.
const statsWait = 2 * time.Second

// collectStats assembles the cluster-wide snapshot: per-child lag gauges
// from the latest heartbeat digests, this node's own instruments, and the
// merged snapshots of every child that answers in time (children forward
// the request down their own subtree, so the recursion covers the tree).
func (s *RootServer) collectStats() *telemetry.Snapshot {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()

	s.mu.Lock()
	epoch := s.root.Epoch()
	wm := s.root.Watermark()
	for id, d := range s.loads {
		s.tel.Gauge(fmt.Sprintf("node.%d.epoch_lag", id)).Set(int64(epoch) - int64(d.Epoch))
		s.tel.Gauge(fmt.Sprintf("node.%d.watermark_lag", id)).Set(wm - d.Watermark)
		s.tel.Gauge(fmt.Sprintf("node.%d.replay_occupancy", id)).Set(int64(d.ReplayLen))
	}
	n := len(s.children)
	ch := make(chan *telemetry.Snapshot, n+1)
	s.statsC = ch
	_ = s.broadcastLocked(&message.Message{Kind: message.KindStatsDump})
	s.mu.Unlock()

	snap := s.tel.Snapshot()
	mergeChildStats(snap, ch, n, statsWait)

	s.mu.Lock()
	s.statsC = nil
	s.mu.Unlock()
	return snap
}

// mergeChildStats folds up to n child snapshots from ch into snap, giving
// up after wait so dead children cannot stall the collection.
func mergeChildStats(snap *telemetry.Snapshot, ch <-chan *telemetry.Snapshot, n int, wait time.Duration) {
	if n == 0 {
		return
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for got := 0; got < n; got++ {
		select {
		case child := <-ch:
			snap.Merge(child)
		case <-deadline.C:
			return
		}
	}
}

// broadcastLocked sends m to every child, visiting all of them even when
// some fail. A child whose link fails is dropped — its connection is closed
// so the handler runs the removal bookkeeping, and the child resyncs by
// epoch diff when it reconnects — instead of failing the control command
// and leaving the tree inconsistent. The aggregated send errors are
// returned for observability only.
func (s *RootServer) broadcastLocked(m *message.Message) error {
	var errs []error
	for id, c := range s.children {
		if err := c.Send(m); err != nil {
			errs = append(errs, fmt.Errorf("node: broadcast to child %d: %w", id, err))
			c.Close()
		}
	}
	return errors.Join(errs...)
}

// AddQuery registers a query at runtime on the root and every node below it:
// the change is minted as one plan delta, applied to the authoritative plan,
// and that same delta is broadcast down the tree.
func (s *RootServer) AddQuery(q query.Query) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.root.History().Plan().AddDelta(q)
	if err := s.root.Apply(d); err != nil {
		return err
	}
	// Failed children are dropped, not command failures: the delta has been
	// applied at the root and remains the source of truth.
	_ = s.broadcastLocked(&message.Message{Kind: message.KindPlanDelta, Deltas: []plan.Delta{d}})
	return nil
}

// RemoveQuery removes a running query everywhere, through the same minted
// plan delta path as AddQuery.
func (s *RootServer) RemoveQuery(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.root.History().Plan().RemoveDelta(id)
	if err := s.root.Apply(d); err != nil {
		return err
	}
	_ = s.broadcastLocked(&message.Message{Kind: message.KindPlanDelta, Deltas: []plan.Delta{d}})
	return nil
}

// Wait blocks until every expected child connected and disconnected. It
// returns the first stream-handling error, joined with an EvictionError
// when children were timed out and never returned.
func (s *RootServer) Wait() error {
	<-s.done
	s.l.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.err
	if len(s.evicted) > 0 {
		err = errors.Join(err, &EvictionError{IDs: evictedIDs(s.evicted)})
	}
	return err
}

// Close stops the listener.
func (s *RootServer) Close() error { return s.l.Close() }

// IntermediateServer is an intermediate node over TCP: it merges its
// children's partial streams, forwards to its parent over a supervised
// uplink (heartbeats, reconnect with backoff), and relays control messages
// downward.
type IntermediateServer struct {
	l        *message.Listener
	id       uint32
	inter    *Intermediate
	parent   *uplink
	qmu      sync.Mutex
	children map[uint32]*message.TCPConn
	// tel/statsC/statsMu mirror the root's stats collection: a
	// KindStatsDump arriving from the parent is answered with this node's
	// snapshot merged with its children's (gathered via statsC).
	tel     *telemetry.Registry
	statsC  chan *telemetry.Snapshot
	statsMu sync.Mutex
	// hist caches the plan received from above so this node can answer its
	// own children's handshakes by epoch diff without a round trip to the
	// root. Guarded by qmu.
	hist      *plan.History
	expected  int
	active    int
	seenIDs   map[uint32]bool
	evicted   map[uint32]bool
	goodbye   map[uint32]bool
	unclean   map[uint32]bool
	timeout   time.Duration
	done      chan struct{}
	doneTimer *time.Timer
}

// ServeIntermediate starts an intermediate node on addr, connected to
// parentAddr, expecting nChildren children, with default dial options.
func ServeIntermediate(addr, parentAddr string, id uint32, nChildren int, timeout time.Duration, codec message.Codec) (*IntermediateServer, error) {
	return ServeIntermediateOptions(addr, parentAddr, id, nChildren, timeout, DialOptions{Codec: codec})
}

// ServeIntermediateOptions is ServeIntermediate with explicit uplink
// options (heartbeat period, reconnect policy, write deadlines).
func ServeIntermediateOptions(addr, parentAddr string, id uint32, nChildren int, timeout time.Duration, opts DialOptions) (*IntermediateServer, error) {
	opts = opts.withDefaults()
	up, p, err := dialUplink(parentAddr, id, opts)
	if err != nil {
		return nil, err
	}
	l, err := message.Listen(addr, opts.Codec)
	if err != nil {
		up.Close()
		return nil, err
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	s := &IntermediateServer{
		l:        l,
		id:       id,
		parent:   up,
		children: make(map[uint32]*message.TCPConn),
		seenIDs:  make(map[uint32]bool),
		evicted:  make(map[uint32]bool),
		goodbye:  make(map[uint32]bool),
		unclean:  make(map[uint32]bool),
		tel:      tel,
		hist:     plan.NewHistory(p),
		expected: nChildren,
		timeout:  timeout,
		done:     make(chan struct{}),
	}
	s.inter = NewIntermediate(id, nil, up)
	s.inter.AttachTelemetry(tel, fmt.Sprintf("inter.%d", id))
	up.AttachTelemetry(tel)
	up.SetEpochFn(func() uint64 {
		s.qmu.Lock()
		defer s.qmu.Unlock()
		return s.hist.Epoch()
	})
	up.SetDigestFn(func() *telemetry.LoadDigest {
		d := s.inter.Digest()
		s.qmu.Lock()
		d.Epoch = s.hist.Epoch()
		s.qmu.Unlock()
		return d
	})
	up.startHeartbeats()
	go s.acceptLoop()
	go s.downstreamLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *IntermediateServer) Addr() string { return s.l.Addr() }

// Telemetry exposes the intermediate's instrument registry.
func (s *IntermediateServer) Telemetry() *telemetry.Registry { return s.tel }

// Evicted returns the ids of children currently evicted by the liveness
// timeout.
func (s *IntermediateServer) Evicted() []uint32 {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return evictedIDs(s.evicted)
}

func (s *IntermediateServer) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		go s.serveChild(conn)
	}
}

// downstreamLoop relays plan changes arriving from the parent to every child
// (the "root sends the new topology/queries to all other nodes" flow of
// §3.2), keeping the cached plan history in sync so late-connecting children
// resync from here by epoch diff. The merger never reads from the parent, so
// this goroutine owns the downward direction; the supervised uplink
// reconnects underneath it. Deltas this node has already applied (a
// rebroadcast after reconnect) are skipped but still relayed: children
// deduplicate by epoch themselves.
func (s *IntermediateServer) downstreamLoop() {
	for {
		m, err := s.parent.Recv()
		if err != nil {
			return
		}
		switch m.Kind {
		case message.KindPlanState:
			// Full plan from an uplink re-handshake: adopt it if it is not
			// older than what we have, and relay as-is (children validate the
			// epoch on their side too).
			s.qmu.Lock()
			if m.Plan != nil && m.Plan.Epoch >= s.hist.Epoch() {
				s.hist = plan.NewHistory(m.Plan)
				for _, c := range s.children {
					_ = c.Send(m)
				}
			}
			s.qmu.Unlock()
		case message.KindPlanDelta:
			s.qmu.Lock()
			for _, d := range m.Deltas {
				if d.Epoch <= s.hist.Epoch() {
					continue
				}
				if err := s.hist.Apply(d); err != nil {
					break // stale history; the next re-handshake resyncs us
				}
			}
			for _, c := range s.children {
				_ = c.Send(m)
			}
			s.qmu.Unlock()
		case message.KindStatsDump:
			// Answer off the relay goroutine: the collection waits on child
			// replies, and plan traffic must keep flowing meanwhile.
			go s.answerStats()
		}
	}
}

// answerStats collects this subtree's snapshot and sends it upward. The
// uplink's Send is safe for concurrent use, so this runs beside the merge
// pipeline without extra locking.
func (s *IntermediateServer) answerStats() {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()

	s.qmu.Lock()
	n := len(s.children)
	ch := make(chan *telemetry.Snapshot, n+1)
	s.statsC = ch
	for _, c := range s.children {
		_ = c.Send(&message.Message{Kind: message.KindStatsDump})
	}
	s.qmu.Unlock()

	snap := s.tel.Snapshot()
	// Half the root's budget, so this node's (possibly partial) reply still
	// lands inside the root's collection window when a child is dead.
	mergeChildStats(snap, ch, n, statsWait/2)

	s.qmu.Lock()
	s.statsC = nil
	s.qmu.Unlock()
	_ = s.parent.Send(&message.Message{Kind: message.KindStatsDump, From: s.id, Stats: snap})
}

func (s *IntermediateServer) serveChild(conn *message.TCPConn) {
	first, err := conn.RecvTimeout(s.timeout)
	if err != nil || first.Kind != message.KindHello {
		conn.Close()
		return
	}
	childID := first.From
	if s.timeout > 0 {
		conn.SetWriteTimeout(s.timeout)
	}
	s.qmu.Lock()
	if prev, live := s.children[childID]; live {
		prev.Close() // superseded by the returning id (reconnect)
	} else {
		s.active++
		s.inter.AddChildLocked(childID)
	}
	s.seenIDs[childID] = true
	delete(s.evicted, childID)
	delete(s.unclean, childID)
	delete(s.goodbye, childID)
	s.children[childID] = conn
	err = conn.Send(planResync(s.hist, first.Epoch))
	s.qmu.Unlock()

	evicted := false
	if err == nil {
		for {
			m, rerr := conn.RecvTimeout(s.timeout)
			if rerr != nil {
				evicted = errors.Is(rerr, message.ErrTimeout)
				break
			}
			if m.Kind == message.KindGoodbye {
				s.qmu.Lock()
				if s.children[childID] == conn {
					s.goodbye[childID] = true
				}
				s.qmu.Unlock()
				continue
			}
			if m.Kind == message.KindStatsDump {
				s.qmu.Lock()
				ch := s.statsC
				s.qmu.Unlock()
				if ch != nil && m.Stats != nil {
					select {
					case ch <- m.Stats:
					default:
					}
				}
				continue
			}
			_ = s.inter.HandleLocked(m)
		}
	}
	conn.Close()

	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.children[childID] != conn {
		return // superseded by a reconnect
	}
	delete(s.children, childID)
	s.inter.RemoveChildLocked(childID)
	s.active--
	if evicted {
		s.evicted[childID] = true
	}
	if !s.goodbye[childID] {
		s.unclean[childID] = true
	}
	s.maybeDoneLocked()
}

// maybeDoneLocked mirrors the root's deferred finish: unclean departures
// hold the done signal for a grace period in case the child reconnects.
func (s *IntermediateServer) maybeDoneLocked() {
	if !(s.expected > 0 && len(s.seenIDs) >= s.expected && s.active == 0) {
		if s.doneTimer != nil {
			s.doneTimer.Stop()
			s.doneTimer = nil
		}
		return
	}
	if len(s.unclean) == 0 {
		s.closeDoneLocked()
		return
	}
	if s.doneTimer != nil {
		return
	}
	grace := s.timeout
	if grace <= 0 {
		grace = HeartbeatInterval
	}
	s.doneTimer = time.AfterFunc(grace, func() {
		s.qmu.Lock()
		defer s.qmu.Unlock()
		s.doneTimer = nil
		if s.expected > 0 && len(s.seenIDs) >= s.expected && s.active == 0 {
			s.closeDoneLocked()
		}
	})
}

func (s *IntermediateServer) closeDoneLocked() {
	if s.doneTimer != nil {
		s.doneTimer.Stop()
		s.doneTimer = nil
	}
	select {
	case <-s.done:
	default:
		close(s.done)
	}
}

// Wait blocks until all expected children have come and gone, then closes
// the uplink and listener.
func (s *IntermediateServer) Wait() error {
	<-s.done
	s.l.Close()
	return s.inter.Close()
}

// LocalSession is the handle RunLocalTCP gives the feed callback: it
// serialises the caller's stream against plan changes (deltas, post-reconnect
// resyncs) arriving from the parent. The local's plan epoch makes every
// arriving change idempotent, so a rebroadcast after reconnect is harmless.
type LocalSession struct {
	mu sync.Mutex
	l  *Local
	// epoch mirrors l.Epoch() so the uplink's re-handshake can read it
	// without mu: the feed goroutine may hold mu while blocking on the very
	// reconnect that needs the epoch for its hello.
	epoch atomic.Uint64
}

// Process ingests a batch of in-order events.
func (s *LocalSession) Process(evs []event.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.Process(evs)
}

// AdvanceTo advances event time and emits a watermark.
func (s *LocalSession) AdvanceTo(t int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.AdvanceTo(t)
}

// Stats exposes the engine counters.
func (s *LocalSession) Stats() core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.Stats()
}

// Epoch reports the session's current plan epoch (what the uplink puts in
// its re-handshake hello). Lock-free so the uplink supervisor can call it
// while the feed goroutine holds the session lock.
func (s *LocalSession) Epoch() uint64 { return s.epoch.Load() }

// applyDeltas applies plan deltas arriving from the parent, skipping epochs
// already applied (a rebroadcast after reconnect must not double-register).
func (s *LocalSession) applyDeltas(ds []plan.Delta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The closure reads the epoch at return time — a plain deferred Store
	// would capture the pre-apply epoch as its argument.
	defer func() { s.epoch.Store(s.l.Epoch()) }()
	for _, d := range ds {
		if d.Epoch <= s.l.Epoch() {
			continue
		}
		if err := s.l.Apply(d); err != nil {
			return // epoch gap: wait for the full plan of the next resync
		}
	}
}

// applyPlanState replaces the plan after an uplink re-handshake said we were
// too stale for an epoch diff.
func (s *LocalSession) applyPlanState(p *plan.Plan) {
	if p == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.l.ResyncPlan(p)
	s.epoch.Store(s.l.Epoch())
}

// RunLocalTCP connects a local node to parentAddr with default dial
// options, performs the handshake, and invokes feed with the ready session.
// Control messages from the parent are applied concurrently. The connection
// closes when feed returns.
func RunLocalTCP(parentAddr string, id uint32, batchSize int, codec message.Codec, feed func(*LocalSession) error) error {
	return RunLocalTCPOptions(parentAddr, id, batchSize, DialOptions{Codec: codec}, feed)
}

// RunLocalTCPOptions is RunLocalTCP with explicit uplink options. The
// uplink is supervised: on link failure it reconnects with exponential
// backoff and jitter, re-handshakes reporting the session's plan epoch,
// applies the resync (epoch-diff deltas, or the full plan when too stale),
// and resumes the partial stream; once the retry budget is exhausted the
// session errors out with ErrUplinkDown. While idle it emits heartbeats so
// the parent's liveness timeout never evicts an alive child.
func RunLocalTCPOptions(parentAddr string, id uint32, batchSize int, opts DialOptions, feed func(*LocalSession) error) error {
	opts = opts.withDefaults()
	up, p, err := dialUplink(parentAddr, id, opts)
	if err != nil {
		return err
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	session := &LocalSession{l: NewLocalFromPlanTuned(id, p, up, batchSize, opts.Tuning)}
	session.epoch.Store(session.l.Epoch())
	session.l.AttachTelemetry(tel)
	up.AttachTelemetry(tel)
	up.SetEpochFn(session.Epoch)
	up.SetDigestFn(func() *telemetry.LoadDigest {
		d := session.l.Digest()
		d.Epoch = session.Epoch()
		return d
	})
	up.startHeartbeats()
	go func() {
		for {
			m, err := up.Recv()
			if err != nil {
				return
			}
			switch m.Kind {
			case message.KindPlanState:
				session.applyPlanState(m.Plan)
			case message.KindPlanDelta:
				session.applyDeltas(m.Deltas)
			case message.KindStatsDump:
				// Snapshot is lock-free and the uplink's Send is safe for
				// concurrent use, so answering from the relay goroutine
				// never stalls the feed.
				_ = up.Send(&message.Message{Kind: message.KindStatsDump, From: id, Stats: tel.Snapshot()})
			}
		}
	}()
	if err := feed(session); err != nil {
		session.mu.Lock()
		defer session.mu.Unlock()
		session.l.Close()
		return err
	}
	session.mu.Lock()
	defer session.mu.Unlock()
	return session.l.Close()
}

// Control connects to a root as a control client and applies one command:
// a non-nil addQuery adds it; otherwise removeID is removed.
func Control(rootAddr string, codec message.Codec, addQuery *query.Query, removeID uint64) error {
	if codec == nil {
		codec = message.Binary{}
	}
	conn, err := message.Dial(rootAddr, codec)
	if err != nil {
		return err
	}
	defer conn.Close()
	var m *message.Message
	if addQuery != nil {
		m = &message.Message{Kind: message.KindAddQuery, Queries: []query.Query{*addQuery}}
	} else {
		m = &message.Message{Kind: message.KindRemoveQuery, QueryID: removeID}
	}
	if err := conn.Send(m); err != nil {
		return err
	}
	ack, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("node: control command rejected: %w", err)
	}
	if ack.Kind != message.KindHello {
		return fmt.Errorf("node: unexpected control ack kind %d", ack.Kind)
	}
	return nil
}

// FetchPlan connects to a root as a control client and retrieves its live
// execution plan (catalog, epoch, placements).
func FetchPlan(rootAddr string, codec message.Codec) (*plan.Plan, error) {
	if codec == nil {
		codec = message.Binary{}
	}
	conn, err := message.Dial(rootAddr, codec)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.Send(&message.Message{Kind: message.KindPlanDump}); err != nil {
		return nil, err
	}
	reply, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("node: plan dump rejected: %w", err)
	}
	if reply.Kind != message.KindPlanState || reply.Plan == nil {
		return nil, fmt.Errorf("node: unexpected plan dump reply kind %d", reply.Kind)
	}
	return reply.Plan, nil
}

// FetchStats connects to a root as a control client and retrieves the
// cluster-wide telemetry snapshot: the root's own instruments merged with
// every reachable node's (cmd/desis-ctl -stats).
func FetchStats(rootAddr string, codec message.Codec) (*telemetry.Snapshot, error) {
	if codec == nil {
		codec = message.Binary{}
	}
	conn, err := message.Dial(rootAddr, codec)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.Send(&message.Message{Kind: message.KindStatsDump}); err != nil {
		return nil, err
	}
	reply, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("node: stats dump rejected: %w", err)
	}
	if reply.Kind != message.KindStatsDump || reply.Stats == nil {
		return nil, fmt.Errorf("node: unexpected stats dump reply kind %d", reply.Kind)
	}
	return reply.Stats, nil
}
