package node

import (
	"fmt"
	"sync"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/query"
)

// TCP deployment: the same Local/Intermediate/Root node types served over
// real sockets, used by cmd/desis-node. The protocol is:
//
//  1. a child connects to its parent and sends KindHello with its node id;
//  2. the parent replies with KindQuerySet (intermediates cache and relay
//     the set they received from above);
//  3. the child streams partials/events/watermarks upward; heartbeats keep
//     the §3.2 liveness timeout from firing;
//  4. when a child disconnects (or times out) it is removed from the merge
//     expectations, as the paper's fault tolerance prescribes;
//  5. control clients (cmd/desis-ctl) connect to the root and send
//     KindAddQuery / KindRemoveQuery as their first message; the root
//     applies the change and broadcasts it down the tree (§3.2 runtime
//     query management).

// HeartbeatInterval is how often idle children emit heartbeats.
const HeartbeatInterval = 2 * time.Second

// RootServer is a root node listening for children and control clients.
type RootServer struct {
	root     *Root
	mu       sync.Mutex
	children map[uint32]*message.TCPConn
	l        *message.Listener
	queries  []query.Query
	expected int
	active   int
	seen     int
	timeout  time.Duration
	done     chan struct{}
	err      error
}

// ServeRoot starts a root node on addr. It expects nChildren direct
// children; Wait returns once they have all connected and disconnected. A
// zero timeout disables the liveness check.
func ServeRoot(addr string, queries []query.Query, nChildren int, timeout time.Duration, codec message.Codec, onResult func(core.Result)) (*RootServer, error) {
	if codec == nil {
		codec = message.Binary{}
	}
	groups, err := query.Analyze(queries, query.Options{Decentralized: true})
	if err != nil {
		return nil, err
	}
	l, err := message.Listen(addr, codec)
	if err != nil {
		return nil, err
	}
	s := &RootServer{
		l:        l,
		children: make(map[uint32]*message.TCPConn),
		queries:  queries,
		expected: nChildren,
		timeout:  timeout,
		done:     make(chan struct{}),
	}
	s.root = NewRoot(groups, nil, onResult)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *RootServer) Addr() string { return s.l.Addr() }

func (s *RootServer) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

// serveConn dispatches on the first message: children say hello, control
// clients issue a command directly.
func (s *RootServer) serveConn(conn *message.TCPConn) {
	defer conn.Close()
	first, err := conn.Recv()
	if err != nil {
		return
	}
	switch first.Kind {
	case message.KindHello:
		s.serveChild(conn, first.From)
	case message.KindAddQuery, message.KindRemoveQuery:
		s.serveControl(conn, first)
	}
}

func (s *RootServer) serveChild(conn *message.TCPConn, childID uint32) {
	s.mu.Lock()
	s.root.AddChild(childID)
	s.children[childID] = conn
	s.seen++
	s.active++
	err := conn.Send(&message.Message{Kind: message.KindQuerySet, Queries: s.queries})
	s.mu.Unlock()
	if err == nil {
		for {
			m, err := recvWithTimeout(conn, s.timeout)
			if err != nil {
				break
			}
			s.mu.Lock()
			s.err = s.root.Handle(m)
			s.mu.Unlock()
		}
	}
	s.mu.Lock()
	s.root.RemoveChild(childID)
	delete(s.children, childID)
	s.active--
	if s.expected > 0 && s.seen >= s.expected && s.active == 0 {
		select {
		case <-s.done:
		default:
			close(s.done)
		}
	}
	s.mu.Unlock()
}

// serveControl applies one control command and broadcasts it downward; the
// ack is a KindHello (or the connection closes with an error).
func (s *RootServer) serveControl(conn *message.TCPConn, m *message.Message) {
	var err error
	switch m.Kind {
	case message.KindAddQuery:
		for _, q := range m.Queries {
			if err = s.AddQuery(q); err != nil {
				break
			}
		}
	case message.KindRemoveQuery:
		err = s.RemoveQuery(m.QueryID)
	}
	if err != nil {
		return // closing without ack signals failure to the client
	}
	_ = conn.Send(&message.Message{Kind: message.KindHello})
}

// AddQuery registers a query at runtime on the root and every node below it.
func (s *RootServer) AddQuery(q query.Query) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.root.AddQuery(q); err != nil {
		return err
	}
	s.queries = append(s.queries, q)
	down := &message.Message{Kind: message.KindAddQuery, Queries: []query.Query{q}}
	for id, c := range s.children {
		if err := c.Send(down); err != nil {
			return fmt.Errorf("node: broadcast to child %d: %w", id, err)
		}
	}
	return nil
}

// RemoveQuery removes a running query everywhere.
func (s *RootServer) RemoveQuery(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.root.RemoveQuery(id); err != nil {
		return err
	}
	down := &message.Message{Kind: message.KindRemoveQuery, QueryID: id}
	for cid, c := range s.children {
		if err := c.Send(down); err != nil {
			return fmt.Errorf("node: broadcast to child %d: %w", cid, err)
		}
	}
	return nil
}

// recvWithTimeout wraps Recv; a zero timeout blocks forever. (TCPConn has no
// deadline plumbing, so the timeout is enforced by a watchdog per call only
// when configured.)
func recvWithTimeout(conn *message.TCPConn, timeout time.Duration) (*message.Message, error) {
	if timeout <= 0 {
		return conn.Recv()
	}
	type res struct {
		m   *message.Message
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := conn.Recv()
		ch <- res{m, err}
	}()
	select {
	case r := <-ch:
		return r.m, r.err
	case <-time.After(timeout):
		conn.Close()
		return nil, fmt.Errorf("node: child timed out after %v", timeout)
	}
}

// Wait blocks until every expected child connected and disconnected.
func (s *RootServer) Wait() error {
	<-s.done
	s.l.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the listener.
func (s *RootServer) Close() error { return s.l.Close() }

// IntermediateServer is an intermediate node over TCP: it merges its
// children's partial streams, forwards to its parent, and relays control
// messages downward.
type IntermediateServer struct {
	l        *message.Listener
	inter    *Intermediate
	parent   *message.TCPConn
	qmu      sync.Mutex
	children map[uint32]*message.TCPConn
	queries  []query.Query
	expected int
	active   int
	seen     int
	timeout  time.Duration
	done     chan struct{}
}

// ServeIntermediate starts an intermediate node on addr, connected to
// parentAddr, expecting nChildren children.
func ServeIntermediate(addr, parentAddr string, id uint32, nChildren int, timeout time.Duration, codec message.Codec) (*IntermediateServer, error) {
	if codec == nil {
		codec = message.Binary{}
	}
	parent, err := message.Dial(parentAddr, codec)
	if err != nil {
		return nil, err
	}
	if err := parent.Send(&message.Message{Kind: message.KindHello, From: id}); err != nil {
		return nil, err
	}
	qs, err := parent.Recv()
	if err != nil {
		return nil, fmt.Errorf("node: intermediate handshake: %w", err)
	}
	if qs.Kind != message.KindQuerySet {
		return nil, fmt.Errorf("node: intermediate expected query set, got kind %d", qs.Kind)
	}
	l, err := message.Listen(addr, codec)
	if err != nil {
		return nil, err
	}
	s := &IntermediateServer{
		l:        l,
		parent:   parent,
		children: make(map[uint32]*message.TCPConn),
		queries:  qs.Queries,
		expected: nChildren,
		timeout:  timeout,
		done:     make(chan struct{}),
	}
	s.inter = NewIntermediate(id, nil, parent)
	go s.acceptLoop()
	go s.downstreamLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *IntermediateServer) Addr() string { return s.l.Addr() }

func (s *IntermediateServer) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		go s.serveChild(conn)
	}
}

// downstreamLoop relays control messages arriving from the parent to every
// child (the "root sends the new topology/queries to all other nodes" flow
// of §3.2). The merger never reads from the parent, so this goroutine owns
// the downward direction.
func (s *IntermediateServer) downstreamLoop() {
	for {
		m, err := s.parent.Recv()
		if err != nil {
			return
		}
		switch m.Kind {
		case message.KindAddQuery, message.KindRemoveQuery:
			s.qmu.Lock()
			if m.Kind == message.KindAddQuery {
				s.queries = append(s.queries, m.Queries...)
			}
			for _, c := range s.children {
				_ = c.Send(m)
			}
			s.qmu.Unlock()
		}
	}
}

func (s *IntermediateServer) serveChild(conn *message.TCPConn) {
	defer conn.Close()
	first, err := recvWithTimeout(conn, s.timeout)
	if err != nil || first.Kind != message.KindHello {
		return
	}
	childID := first.From
	s.inter.AddChildLocked(childID)
	s.qmu.Lock()
	s.children[childID] = conn
	s.seen++
	s.active++
	err = conn.Send(&message.Message{Kind: message.KindQuerySet, Queries: s.queries})
	s.qmu.Unlock()
	if err == nil {
		for {
			m, err := recvWithTimeout(conn, s.timeout)
			if err != nil {
				break
			}
			_ = s.inter.HandleLocked(m)
		}
	}
	s.inter.RemoveChildLocked(childID)
	s.qmu.Lock()
	delete(s.children, childID)
	s.active--
	if s.expected > 0 && s.seen >= s.expected && s.active == 0 {
		select {
		case <-s.done:
		default:
			close(s.done)
		}
	}
	s.qmu.Unlock()
}

// Wait blocks until all expected children have come and gone, then closes
// the uplink and listener.
func (s *IntermediateServer) Wait() error {
	<-s.done
	s.l.Close()
	return s.inter.Close()
}

// LocalSession is the handle RunLocalTCP gives the feed callback: it
// serialises the caller's stream against control messages (AddQuery /
// RemoveQuery) arriving from the parent.
type LocalSession struct {
	mu sync.Mutex
	l  *Local
}

// Process ingests a batch of in-order events.
func (s *LocalSession) Process(evs []event.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.Process(evs)
}

// AdvanceTo advances event time and emits a watermark.
func (s *LocalSession) AdvanceTo(t int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.AdvanceTo(t)
}

// Stats exposes the engine counters.
func (s *LocalSession) Stats() core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.Stats()
}

// RunLocalTCP connects a local node to parentAddr, performs the handshake,
// and invokes feed with the ready session. Control messages from the parent
// are applied concurrently. The connection closes when feed returns.
func RunLocalTCP(parentAddr string, id uint32, batchSize int, codec message.Codec, feed func(*LocalSession) error) error {
	if codec == nil {
		codec = message.Binary{}
	}
	conn, err := message.Dial(parentAddr, codec)
	if err != nil {
		return err
	}
	if err := conn.Send(&message.Message{Kind: message.KindHello, From: id}); err != nil {
		return err
	}
	qs, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("node: local handshake: %w", err)
	}
	if qs.Kind != message.KindQuerySet {
		return fmt.Errorf("node: local expected query set, got kind %d", qs.Kind)
	}
	groups, err := query.Analyze(qs.Queries, query.Options{Decentralized: true})
	if err != nil {
		return err
	}
	session := &LocalSession{l: NewLocal(id, groups, conn, batchSize)}
	go func() {
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			session.mu.Lock()
			switch m.Kind {
			case message.KindAddQuery:
				for _, q := range m.Queries {
					_ = session.l.AddQuery(q)
				}
			case message.KindRemoveQuery:
				_ = session.l.RemoveQuery(m.QueryID)
			}
			session.mu.Unlock()
		}
	}()
	if err := feed(session); err != nil {
		session.mu.Lock()
		defer session.mu.Unlock()
		session.l.Close()
		return err
	}
	session.mu.Lock()
	defer session.mu.Unlock()
	return session.l.Close()
}

// Control connects to a root as a control client and applies one command:
// a non-nil addQuery adds it; otherwise removeID is removed.
func Control(rootAddr string, codec message.Codec, addQuery *query.Query, removeID uint64) error {
	if codec == nil {
		codec = message.Binary{}
	}
	conn, err := message.Dial(rootAddr, codec)
	if err != nil {
		return err
	}
	defer conn.Close()
	var m *message.Message
	if addQuery != nil {
		m = &message.Message{Kind: message.KindAddQuery, Queries: []query.Query{*addQuery}}
	} else {
		m = &message.Message{Kind: message.KindRemoveQuery, QueryID: removeID}
	}
	if err := conn.Send(m); err != nil {
		return err
	}
	ack, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("node: control command rejected: %w", err)
	}
	if ack.Kind != message.KindHello {
		return fmt.Errorf("node: unexpected control ack kind %d", ack.Kind)
	}
	return nil
}
