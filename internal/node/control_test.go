package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/query"
)

// TestTCPRuntimeControl adds and removes a query through a live topology via
// the control protocol (§3.2): the root applies the change and broadcasts it
// through the intermediate to the local node.
func TestTCPRuntimeControl(t *testing.T) {
	base := query.MustParse("tumbling(100ms) sum key=0")
	base.ID = 1

	var mu sync.Mutex
	perQuery := map[uint64]int{}
	root, err := ServeRoot("127.0.0.1:0", []query.Query{base}, 1, 5*time.Second, nil, func(r core.Result) {
		mu.Lock()
		perQuery[r.QueryID]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := ServeIntermediate("127.0.0.1:0", root.Addr(), 1001, 1, 5*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The local streams in two phases; between them the control client adds
	// a second query and removes it again near the end.
	phase2 := make(chan struct{})
	removed := make(chan struct{})
	controlErr := make(chan error, 2)
	go func() {
		<-phase2
		added := query.MustParse("tumbling(200ms) count key=0")
		added.ID = 2
		controlErr <- Control(root.Addr(), nil, &added, 0)
		<-removed
		// Removal is immediate (matching the engine's semantics), and the
		// control plane is not ordered against the data plane: wait for the
		// root to assemble everything up to the phase boundary, or the
		// remove races the in-flight phase-2 windows and kills them.
		for start := time.Now(); root.Watermark() < 1500; time.Sleep(time.Millisecond) {
			if time.Since(start) > 10*time.Second {
				controlErr <- fmt.Errorf("root watermark stuck at %d", root.Watermark())
				return
			}
		}
		controlErr <- Control(root.Addr(), nil, nil, 2)
	}()

	err = RunLocalTCP(inter.Addr(), 1, 64, nil, func(l *LocalSession) error {
		feed := func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := l.Process([]event.Event{{Time: int64(i * 10), Value: 1}}); err != nil {
					return err
				}
			}
			return l.AdvanceTo(int64(hi * 10))
		}
		// Control acks when the root applied the delta; the broadcast to
		// this local is asynchronous, and a delta applies at the event time
		// it lands. Wait for the epoch bump before streaming on, or the
		// delta races the feed and the phase boundaries go nondeterministic.
		awaitEpoch := func(above uint64) error {
			for start := time.Now(); l.Epoch() <= above; time.Sleep(time.Millisecond) {
				if time.Since(start) > 5*time.Second {
					return fmt.Errorf("plan delta never reached the local (epoch %d)", l.Epoch())
				}
			}
			return nil
		}
		if err := feed(0, 50); err != nil { // t in [0, 500)
			return err
		}
		epoch := l.Epoch()
		close(phase2)
		if err := <-controlErr; err != nil {
			return err
		}
		if err := awaitEpoch(epoch); err != nil {
			return err
		}
		if err := feed(50, 150); err != nil { // t in [500, 1500)
			return err
		}
		epoch = l.Epoch()
		close(removed)
		if err := <-controlErr; err != nil {
			return err
		}
		if err := awaitEpoch(epoch); err != nil {
			return err
		}
		if err := feed(150, 200); err != nil { // t in [1500, 2000)
			return err
		}
		return l.AdvanceTo(5000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inter.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := root.Wait(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if perQuery[1] == 0 {
		t.Error("base query produced no windows")
	}
	if perQuery[2] == 0 {
		t.Error("runtime-added query produced no windows")
	}
	// The added query ran for roughly [500, 1500) of event time in 200ms
	// windows: about 5 windows; certainly far fewer than query 1's ~20.
	if perQuery[2] >= perQuery[1] {
		t.Errorf("added query answered %d windows vs base %d; removal did not take effect",
			perQuery[2], perQuery[1])
	}
}

// TestControlRejectsBadCommands checks control-plane error handling.
func TestControlRejectsBadCommands(t *testing.T) {
	base := query.MustParse("tumbling(100ms) sum key=0")
	base.ID = 1
	root, err := ServeRoot("127.0.0.1:0", []query.Query{base}, 1, time.Second, nil, func(core.Result) {})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	// Removing an unknown query fails: the root closes without ack.
	if err := Control(root.Addr(), nil, nil, 999); err == nil {
		t.Error("removing unknown query succeeded")
	}
	// Adding an invalid query fails.
	bad := query.Query{ID: 7, Pred: query.All(), Type: query.Tumbling} // no funcs
	if err := Control(root.Addr(), nil, &bad, 0); err == nil {
		t.Error("invalid query accepted")
	}
}
