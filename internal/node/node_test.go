package node

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/operator"
	"desis/internal/query"
)

// --- Merger unit tests ---

func mkPartial(group uint32, start, end, last int64, sum float64, n int64) *core.SlicePartial {
	a := operator.NewAgg(operator.OpSum | operator.OpCount)
	a.SumV = sum
	a.CountV = n
	a.Finish()
	return &core.SlicePartial{
		Group: group, Start: start, End: end, LastEvent: last, Ingested: n,
		Aggs: []operator.Agg{a},
	}
}

func TestMergerAlignedSlices(t *testing.T) {
	m := NewMerger([]uint32{1, 2})
	var out []*core.SlicePartial
	m.Out = func(p *core.SlicePartial) { out = append(out, p) }
	m.HandlePartial(1, mkPartial(0, 0, 100, 90, 10, 2))
	if len(out) != 0 {
		t.Fatal("emitted before all children reported")
	}
	m.HandlePartial(2, mkPartial(0, 0, 100, 95, 20, 3))
	if len(out) != 1 {
		t.Fatalf("emitted %d partials, want 1", len(out))
	}
	p := out[0]
	if p.Aggs[0].SumV != 30 || p.Aggs[0].CountV != 5 || p.Ingested != 5 || p.LastEvent != 95 {
		t.Errorf("merged partial = %+v", p)
	}
}

func TestMergerWatermarkFlushesMisaligned(t *testing.T) {
	m := NewMerger([]uint32{1, 2})
	var out []*core.SlicePartial
	var wms []int64
	m.Out = func(p *core.SlicePartial) { out = append(out, p) }
	m.OutWatermark = func(w int64) { wms = append(wms, w) }
	// Child 1 cut at a session start (dynamic): extents differ.
	m.HandlePartial(1, mkPartial(0, 0, 60, 50, 5, 1))
	m.HandlePartial(1, mkPartial(0, 60, 100, 90, 7, 1))
	m.HandlePartial(2, mkPartial(0, 0, 100, 80, 9, 2))
	if len(out) != 0 {
		t.Fatal("misaligned slices merged")
	}
	m.HandleWatermark(1, 100)
	if len(out) != 0 {
		t.Fatal("flushed before min watermark advanced")
	}
	m.HandleWatermark(2, 100)
	if len(out) != 3 {
		t.Fatalf("flushed %d partials, want 3", len(out))
	}
	// Flush order: by (End, Start).
	if out[0].End != 60 || out[1].End != 100 || out[2].End != 100 {
		t.Errorf("flush order: %v %v %v", out[0].End, out[1].End, out[2].End)
	}
	if out[1].Start > out[2].Start {
		t.Error("equal-End flush not ordered by Start")
	}
	if len(wms) != 1 || wms[0] != 100 {
		t.Errorf("watermarks forwarded: %v", wms)
	}
}

func TestMergerRemoveChildUnblocks(t *testing.T) {
	m := NewMerger([]uint32{1, 2, 3})
	var out []*core.SlicePartial
	m.Out = func(p *core.SlicePartial) { out = append(out, p) }
	m.HandlePartial(1, mkPartial(0, 0, 100, 90, 1, 1))
	m.HandlePartial(2, mkPartial(0, 0, 100, 90, 2, 1))
	m.HandleWatermark(1, 100)
	m.HandleWatermark(2, 100)
	if len(out) != 0 {
		t.Fatal("emitted while child 3 still expected")
	}
	// Child 3 dies (§3.2): the pending slice completes without it.
	m.RemoveChild(3)
	if len(out) != 1 || out[0].Aggs[0].SumV != 3 {
		t.Fatalf("after RemoveChild: %v", out)
	}
	if m.NumChildren() != 2 {
		t.Errorf("NumChildren = %d", m.NumChildren())
	}
}

func TestMergerAddChild(t *testing.T) {
	m := NewMerger([]uint32{1})
	var out []*core.SlicePartial
	m.Out = func(p *core.SlicePartial) { out = append(out, p) }
	m.AddChild(2)
	m.HandlePartial(1, mkPartial(0, 0, 100, 90, 1, 1))
	if len(out) != 0 {
		t.Fatal("merge completed without new child")
	}
	m.HandlePartial(2, mkPartial(0, 0, 100, 90, 2, 1))
	if len(out) != 1 {
		t.Fatal("merge did not complete with new child")
	}
}

// --- Cluster vs central-engine equivalence ---

// splitStream deals a global stream round-robin to n locals; marker events
// are replicated to every local (each generator emits the boundary), which
// is how the paper's setup distributes user-defined events.
func splitStream(evs []event.Event, n int) [][]event.Event {
	out := make([][]event.Event, n)
	i := 0
	for _, ev := range evs {
		if ev.Marker != event.MarkerNone {
			for j := range out {
				out[j] = append(out[j], ev)
			}
			continue
		}
		out[i%n] = append(out[i%n], ev)
		i++
	}
	return out
}

// centralResults runs the plain central engine over the global stream.
func centralResults(t *testing.T, queries []query.Query, evs []event.Event, advTo int64) []core.Result {
	t.Helper()
	groups, err := query.Analyze(queries, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(groups, core.Config{})
	e.ProcessBatch(evs)
	e.AdvanceTo(advTo)
	return e.Results()
}

// clusterResults runs the same queries on an in-process topology.
func clusterResults(t *testing.T, queries []query.Query, evs []event.Event, advTo int64, locals, inters int) []core.Result {
	t.Helper()
	groups, err := query.Analyze(queries, query.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(groups, ClusterConfig{Locals: locals, Intermediates: inters})
	streams := splitStream(evs, locals)
	// Push in chunks with watermark advances in between, as generators do.
	const chunk = 40
	for off := 0; ; off += chunk {
		busy := false
		var maxT int64
		for i, s := range streams {
			if off >= len(s) {
				continue
			}
			hi := off + chunk
			if hi > len(s) {
				hi = len(s)
			}
			if err := c.Push(i, s[off:hi]); err != nil {
				t.Fatal(err)
			}
			if tm := s[hi-1].Time; tm > maxT {
				maxT = tm
			}
			busy = true
		}
		if !busy {
			break
		}
		if err := c.AdvanceAll(maxT); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AdvanceAll(advTo); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return c.Results()
}

func resultKey(r core.Result) string {
	return fmt.Sprintf("q%d[%d,%d)", r.QueryID, r.Start, r.End)
}

func compareResultSets(t *testing.T, got, want []core.Result) {
	t.Helper()
	key := func(rs []core.Result) map[string]core.Result {
		m := make(map[string]core.Result, len(rs))
		for _, r := range rs {
			m[resultKey(r)] = r
		}
		return m
	}
	gm, wm := key(got), key(want)
	for k, w := range wm {
		g, ok := gm[k]
		if !ok {
			t.Errorf("missing result %s (want count %d)", k, w.Count)
			continue
		}
		if g.Count != w.Count {
			t.Errorf("%s: count = %d, want %d", k, g.Count, w.Count)
		}
		for i := range w.Values {
			if g.Values[i].OK != w.Values[i].OK {
				t.Errorf("%s %v: ok = %v, want %v", k, w.Values[i].Spec, g.Values[i].OK, w.Values[i].OK)
				continue
			}
			if w.Values[i].OK && math.Abs(g.Values[i].Value-w.Values[i].Value) > 1e-9*(1+math.Abs(w.Values[i].Value)) {
				t.Errorf("%s %v: value = %g, want %g", k, w.Values[i].Spec, g.Values[i].Value, w.Values[i].Value)
			}
		}
	}
	for k := range gm {
		if _, ok := wm[k]; !ok {
			t.Errorf("extra result %s (count %d)", k, gm[k].Count)
		}
	}
}

// globalStream builds a strictly increasing timeline with occasional
// markers (deduplicated: one per boundary time).
func globalStream(rng *rand.Rand, n int) []event.Event {
	evs := make([]event.Event, 0, n)
	tm := int64(3)
	for i := 0; i < n; i++ {
		tm += 1 + int64(rng.Intn(12))
		ev := event.Event{Time: tm, Value: rng.Float64() * 100}
		if rng.Intn(41) == 0 {
			ev.Marker = event.MarkerBoundary
			ev.Value = 0
		}
		evs = append(evs, ev)
	}
	return evs
}

func mixedQueries(t *testing.T) []query.Query {
	t.Helper()
	specs := []string{
		"tumbling(100ms) average key=0",
		"sliding(150ms,50ms) sum key=0",
		"tumbling(200ms) median key=0",
		"session(60ms) count,max key=0",
		"userdefined max,count key=0",
		"tumbling(16ev) sum key=0",
		"tumbling(500ms) quantile(0.9) key=0",
	}
	var qs []query.Query
	for i, s := range specs {
		q := query.MustParse(s)
		q.ID = uint64(i + 1)
		qs = append(qs, q)
	}
	return qs
}

func TestClusterMatchesCentralDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	evs := globalStream(rng, 600)
	queries := mixedQueries(t)
	adv := evs[len(evs)-1].Time + 2000
	want := centralResults(t, queries, evs, adv)
	got := clusterResults(t, queries, evs, adv, 3, 0)
	compareResultSets(t, got, want)
}

func TestClusterMatchesCentralWithIntermediates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	evs := globalStream(rng, 600)
	queries := mixedQueries(t)
	adv := evs[len(evs)-1].Time + 2000
	want := centralResults(t, queries, evs, adv)
	got := clusterResults(t, queries, evs, adv, 4, 2)
	compareResultSets(t, got, want)
}

func TestClusterSingleLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	evs := globalStream(rng, 300)
	queries := mixedQueries(t)
	adv := evs[len(evs)-1].Time + 2000
	want := centralResults(t, queries, evs, adv)
	got := clusterResults(t, queries, evs, adv, 1, 1)
	compareResultSets(t, got, want)
}

func TestClusterRandomizedQuick(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed*31 + 5))
		evs := globalStream(rng, 250)
		queries := mixedQueries(t)
		adv := evs[len(evs)-1].Time + 2000
		want := centralResults(t, queries, evs, adv)
		got := clusterResults(t, queries, evs, adv, 1+int(seed%4), int(seed%3))
		if t.Failed() {
			t.Fatalf("seed %d failed", seed)
		}
		compareResultSets(t, got, want)
		if t.Failed() {
			t.Fatalf("seed %d mismatched", seed)
		}
	}
}

// --- Network accounting ---

func TestClusterNetworkReduction(t *testing.T) {
	// Figure 11a: a decomposable query's partials are a tiny fraction of
	// the raw stream; a median query must ship every value (Figure 11b).
	rng := rand.New(rand.NewSource(13))
	evs := make([]event.Event, 20000)
	tm := int64(0)
	for i := range evs {
		tm += 1
		evs[i] = event.Event{Time: tm, Value: rng.Float64()}
	}
	run := func(spec string) uint64 {
		q := query.MustParse(spec)
		q.ID = 1
		groups, err := query.Analyze([]query.Query{q}, query.Options{Decentralized: true})
		if err != nil {
			t.Fatal(err)
		}
		c := NewCluster(groups, ClusterConfig{Locals: 2, Intermediates: 1})
		streams := splitStream(evs, 2)
		for i, s := range streams {
			if err := c.Push(i, s); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.AdvanceAll(tm + 10000); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		local, _ := c.NetworkBytes()
		return local
	}
	avgBytes := run("tumbling(1000ms) average key=0")
	medBytes := run("tumbling(1000ms) median key=0")
	rawBytes := uint64(len(evs) * event.EncodedSize)
	if avgBytes > rawBytes/20 {
		t.Errorf("decomposable traffic %d bytes, want < 5%% of raw %d", avgBytes, rawBytes)
	}
	// Median partials ship every value (8 bytes each); raw events carry
	// time/key/marker too, so the ratio is ~8/21 of raw plus headers.
	if medBytes < rawBytes/3 {
		t.Errorf("median traffic %d bytes, want at least a third of raw %d", medBytes, rawBytes)
	}
	if medBytes < 10*avgBytes {
		t.Errorf("median traffic %d not >> decomposable traffic %d", medBytes, avgBytes)
	}
}

// --- Runtime query management on a topology ---

func TestClusterAddRemoveQuery(t *testing.T) {
	base := query.MustParse("tumbling(100ms) sum key=0")
	base.ID = 1
	groups, err := query.Analyze([]query.Query{base}, query.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(groups, ClusterConfig{Locals: 2, Intermediates: 1})
	evs := make([]event.Event, 0, 60)
	for i := 0; i < 60; i++ {
		evs = append(evs, event.Event{Time: int64(i * 10), Value: 1})
	}
	streams := splitStream(evs, 2)
	half := len(streams[0]) / 2
	for i := range streams {
		if err := c.Push(i, streams[i][:half]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AdvanceAll(290); err != nil {
		t.Fatal(err)
	}
	added := query.MustParse("tumbling(200ms) count key=0")
	added.ID = 2
	if err := c.AddQuery(added); err != nil {
		t.Fatal(err)
	}
	for i := range streams {
		if err := c.Push(i, streams[i][half:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AdvanceAll(1200); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var q1, q2 int
	for _, r := range c.Results() {
		switch r.QueryID {
		case 1:
			q1++
		case 2:
			q2++
			if r.Start < 290 {
				t.Errorf("added query answered window starting %d before registration", r.Start)
			}
			if r.Count != 20 && r.Values[0].Value != float64(r.Count) {
				t.Errorf("added query window %s count %d", resultKey(r), r.Count)
			}
		}
	}
	if q1 == 0 || q2 == 0 {
		t.Fatalf("results: q1=%d q2=%d", q1, q2)
	}
}

func TestClusterRemoveQuery(t *testing.T) {
	a := query.MustParse("tumbling(100ms) sum key=0")
	a.ID = 1
	b := query.MustParse("tumbling(100ms) count key=0")
	b.ID = 2
	groups, err := query.Analyze([]query.Query{a, b}, query.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(groups, ClusterConfig{Locals: 2})
	push := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ev := []event.Event{{Time: int64(i * 10), Value: 2}}
			if err := c.Push(i%2, ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(0, 30)
	if err := c.AdvanceAll(290); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveQuery(2); err != nil {
		t.Fatal(err)
	}
	push(30, 60)
	if err := c.AdvanceAll(1000); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Results() {
		if r.QueryID == 2 && r.End > 300 {
			t.Errorf("removed query still answered %s", resultKey(r))
		}
	}
	if err := c.RemoveQuery(99); err == nil {
		t.Error("removing unknown query succeeded")
	}
}

// --- Codec choice on the wire ---

func TestClusterTextCodecWorks(t *testing.T) {
	// A median query ships every value, the traffic class where Disco's
	// string encoding costs the most (Figure 11b).
	q := query.MustParse("tumbling(100ms) median key=0")
	q.ID = 1
	groups, err := query.Analyze([]query.Query{q}, query.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func(codec message.Codec) (uint64, []core.Result) {
		c := NewCluster(groups, ClusterConfig{Locals: 2, Codec: codec})
		for i := 0; i < 100; i++ {
			ev := event.Event{Time: int64(i * 5), Value: float64(i) * 1.2345678901234567}
			if err := c.Push(i%2, []event.Event{ev}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.AdvanceAll(2000); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		local, _ := c.NetworkBytes()
		rs := c.Results()
		sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
		return local, rs
	}
	binBytes, binRes := run(message.Binary{})
	txtBytes, txtRes := run(message.Text{})
	if len(binRes) == 0 || len(binRes) != len(txtRes) {
		t.Fatalf("results: binary %d, text %d", len(binRes), len(txtRes))
	}
	for i := range binRes {
		if binRes[i].Values[0].Value != txtRes[i].Values[0].Value {
			t.Errorf("window %d: binary %g, text %g", i, binRes[i].Values[0].Value, txtRes[i].Values[0].Value)
		}
	}
	if txtBytes <= binBytes {
		t.Errorf("text codec %d bytes <= binary %d bytes", txtBytes, binBytes)
	}
}
