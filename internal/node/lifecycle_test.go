package node

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/query"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// stepEvents returns events covering [lo, hi) at the given step, value 1.
func stepEvents(lo, hi, step int64) []event.Event {
	var evs []event.Event
	for t := lo; t < hi; t += step {
		evs = append(evs, event.Event{Time: t, Value: 1})
	}
	return evs
}

// sumByWindow collects result sums keyed by window start.
func sumByWindow(results []core.Result) map[int64]float64 {
	out := make(map[int64]float64)
	for _, r := range results {
		for _, v := range r.Values {
			if v.OK {
				out[r.Start] = v.Value
			}
		}
	}
	return out
}

// TestHeartbeatKeepsIdleChildAlive is the §3.2 liveness acceptance check: a
// child that stays idle for well over 10 heartbeat periods, against a parent
// whose timeout is 3 periods, is never evicted because the uplink emits
// heartbeats while idle.
func TestHeartbeatKeepsIdleChildAlive(t *testing.T) {
	const hb = 50 * time.Millisecond
	queries := []query.Query{query.MustParse("tumbling(100ms) sum key=0")}
	queries[0].ID = 1
	var mu sync.Mutex
	var results []core.Result
	root, err := ServeRoot("127.0.0.1:0", queries, 1, 3*hb, nil, func(r core.Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()

	err = RunLocalTCPOptions(root.Addr(), 1, 64, DialOptions{Heartbeat: hb}, func(l *LocalSession) error {
		if err := l.Process(stepEvents(0, 100, 10)); err != nil {
			return err
		}
		if err := l.AdvanceTo(100); err != nil {
			return err
		}
		time.Sleep(12 * hb) // idle for 12 periods = 4 liveness timeouts
		if err := l.Process(stepEvents(100, 200, 10)); err != nil {
			return err
		}
		return l.AdvanceTo(200)
	})
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	if err := root.Wait(); err != nil {
		t.Fatalf("root.Wait: %v (an idle-but-alive child must not be evicted)", err)
	}
	if ev := root.Evicted(); len(ev) != 0 {
		t.Fatalf("evicted %v, want none", ev)
	}
	mu.Lock()
	defer mu.Unlock()
	sums := sumByWindow(results)
	if len(sums) != 2 || sums[0] != 10 || sums[100] != 10 {
		t.Fatalf("window sums %v, want {0:10, 100:10}", sums)
	}
}

// rawChild speaks the child protocol by hand over a plain TCPConn, so tests
// can script precise connect/disconnect sequences without a supervised
// uplink reconnecting behind their back.
type rawChild struct {
	t    *testing.T
	conn *message.TCPConn
}

func dialRawChild(t *testing.T, addr string, id uint32) *rawChild {
	t.Helper()
	conn, err := message.Dial(addr, message.Binary{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&message.Message{Kind: message.KindHello, From: id, Epoch: message.NoEpoch}); err != nil {
		t.Fatal(err)
	}
	qs, err := conn.RecvTimeout(2 * time.Second)
	if err != nil || qs.Kind != message.KindPlanState {
		t.Fatalf("handshake: %v, %v", qs, err)
	}
	return &rawChild{t: t, conn: conn}
}

func (c *rawChild) watermark(id uint32, w int64) {
	c.t.Helper()
	if err := c.conn.Send(&message.Message{Kind: message.KindWatermark, From: id, Watermark: w}); err != nil {
		c.t.Fatal(err)
	}
}

func (c *rawChild) goodbye(id uint32) {
	c.t.Helper()
	if err := c.conn.Send(&message.Message{Kind: message.KindGoodbye, From: id}); err != nil {
		c.t.Fatal(err)
	}
}

// TestChildIDLifecycle is the table-driven duplicate/reconnect/eviction
// matrix: each case scripts child id 1 against a root that also has a
// well-behaved holder child, then checks Wait's verdict and the eviction set.
func TestChildIDLifecycle(t *testing.T) {
	cases := []struct {
		name    string
		timeout time.Duration
		// script drives child id 1; the holder (id 99) is managed by the
		// test harness around it.
		script      func(t *testing.T, addr string)
		wantEvicted []uint32
	}{
		{
			name:    "disconnect then sequential reconnect",
			timeout: 400 * time.Millisecond,
			script: func(t *testing.T, addr string) {
				c := dialRawChild(t, addr, 1)
				c.watermark(1, 100)
				c.conn.Close() // vanish without a goodbye
				time.Sleep(50 * time.Millisecond)
				c = dialRawChild(t, addr, 1) // same id returns
				c.watermark(1, 200)
				c.goodbye(1)
				c.conn.Close()
			},
		},
		{
			name:    "concurrent duplicate supersedes",
			timeout: 400 * time.Millisecond,
			script: func(t *testing.T, addr string) {
				a := dialRawChild(t, addr, 1)
				a.watermark(1, 100)
				b := dialRawChild(t, addr, 1) // duplicate id while a is live
				// The stale connection is closed by the parent.
				if _, err := a.conn.RecvTimeout(2 * time.Second); err == nil {
					t.Fatal("superseded connection stayed open")
				}
				b.watermark(1, 200)
				b.goodbye(1)
				b.conn.Close()
			},
		},
		{
			name:    "silent child is evicted",
			timeout: 200 * time.Millisecond,
			script: func(t *testing.T, addr string) {
				c := dialRawChild(t, addr, 1)
				c.watermark(1, 100)
				// Stay connected but mute past the liveness timeout; the
				// parent must evict, not wait forever.
				time.Sleep(500 * time.Millisecond)
				c.conn.Close()
			},
			wantEvicted: []uint32{1},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			queries := []query.Query{query.MustParse("tumbling(100ms) sum key=0")}
			queries[0].ID = 1
			root, err := ServeRoot("127.0.0.1:0", queries, 2, tc.timeout, nil, func(core.Result) {})
			if err != nil {
				t.Fatal(err)
			}
			defer root.Close()
			holder := dialRawChild(t, root.Addr(), 99)
			hbStop := make(chan struct{})
			var hbWG sync.WaitGroup
			hbWG.Add(1)
			go func() { // keep the holder alive across slow scripts
				defer hbWG.Done()
				tick := time.NewTicker(tc.timeout / 4)
				defer tick.Stop()
				for {
					select {
					case <-hbStop:
						return
					case <-tick.C:
						_ = holder.conn.Send(&message.Message{Kind: message.KindHeartbeat, From: 99})
					}
				}
			}()

			tc.script(t, root.Addr())

			close(hbStop)
			hbWG.Wait()
			holder.goodbye(99)
			holder.conn.Close()

			err = root.Wait()
			if len(tc.wantEvicted) == 0 {
				if err != nil {
					t.Fatalf("Wait: %v, want nil", err)
				}
				if ev := root.Evicted(); len(ev) != 0 {
					t.Fatalf("evicted %v, want none", ev)
				}
				return
			}
			var ee *EvictionError
			if !errors.As(err, &ee) {
				t.Fatalf("Wait: %v, want EvictionError", err)
			}
			if fmt.Sprint(ee.IDs) != fmt.Sprint(tc.wantEvicted) {
				t.Fatalf("evicted %v, want %v", ee.IDs, tc.wantEvicted)
			}
		})
	}
}

// TestUplinkReconnectResumes severs the (proxied) link between a local and
// the root mid-stream: the supervised uplink must reconnect, re-handshake,
// and resume, and the root must treat the returning id as the same child —
// every window stays correct and nothing is reported evicted.
func TestUplinkReconnectResumes(t *testing.T) {
	queries := []query.Query{query.MustParse("tumbling(100ms) sum key=0")}
	queries[0].ID = 1
	var mu sync.Mutex
	var results []core.Result
	root, err := ServeRoot("127.0.0.1:0", queries, 1, time.Second, nil, func(r core.Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	proxy, err := message.NewFaultProxy(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	sever := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- RunLocalTCPOptions(proxy.Addr(), 1, 64, DialOptions{Heartbeat: 50 * time.Millisecond}, func(l *LocalSession) error {
			if err := l.Process(stepEvents(0, 1000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(1000); err != nil {
				return err
			}
			<-sever // the test cuts the link here
			if err := l.Process(stepEvents(1000, 2000, 10)); err != nil {
				return err
			}
			return l.AdvanceTo(2000)
		})
	}()

	waitUntil(t, 5*time.Second, "root watermark 1000", func() bool { return root.Watermark() >= 1000 })
	proxy.SeverAll() // reconnects still pass through the proxy
	close(sever)

	if err := <-errCh; err != nil {
		t.Fatalf("local: %v", err)
	}
	if err := root.Wait(); err != nil {
		t.Fatalf("root.Wait: %v, want nil after a successful reconnect", err)
	}
	if ev := root.Evicted(); len(ev) != 0 {
		t.Fatalf("evicted %v, want none", ev)
	}
	mu.Lock()
	defer mu.Unlock()
	sums := sumByWindow(results)
	if len(sums) != 20 {
		t.Fatalf("windows: %d, want 20 (results %v)", len(sums), sums)
	}
	for start, sum := range sums {
		if sum != 10 {
			t.Errorf("window %d: sum %g, want 10", start, sum)
		}
	}
}

// TestUplinkRetriesExhausted makes every reconnect attempt fail: the uplink
// must give up after its retry budget and surface ErrUplinkDown instead of
// retrying forever.
func TestUplinkRetriesExhausted(t *testing.T) {
	queries := []query.Query{query.MustParse("tumbling(100ms) sum key=0")}
	queries[0].ID = 1
	root, err := ServeRoot("127.0.0.1:0", queries, 1, time.Second, nil, func(core.Result) {})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	proxy, err := message.NewFaultProxy(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	ready := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		opts := DialOptions{
			Heartbeat: 20 * time.Millisecond,
			Retry:     RetryPolicy{MaxRetries: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		}
		errCh <- RunLocalTCPOptions(proxy.Addr(), 1, 64, opts, func(l *LocalSession) error {
			if err := l.AdvanceTo(100); err != nil {
				return err
			}
			close(ready)
			// Keep emitting watermarks until the uplink reports failure.
			for w := int64(200); w < 100_000; w += 100 {
				if err := l.AdvanceTo(w); err != nil {
					return err
				}
				time.Sleep(5 * time.Millisecond)
			}
			return nil
		})
	}()

	<-ready
	proxy.RejectNew(true)
	proxy.SeverAll()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrUplinkDown) {
			t.Fatalf("local returned %v, want ErrUplinkDown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("local never gave up after exhausting its retry budget")
	}
}
