// Package node implements Desis' decentralized aggregation (§5): local
// nodes slice raw streams and ship per-slice partial results, intermediate
// nodes merge partials from their children, and the root node assembles
// window results. Count-based (RootOnly) query-groups are forwarded as raw
// events and evaluated by an engine on the root, which is the only node that
// observes the global event order (§5.2).
package node

import (
	"fmt"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/query"
)

// Local is a local node: it ingests a data stream, runs the aggregation
// engine in slice-emitting mode for distributed groups, forwards raw events
// for RootOnly groups, and emits watermarks so parents can close windows
// timely.
type Local struct {
	id      uint32
	conn    message.Conn
	engine  *core.Engine
	groups  []*query.Group  // full shared group set, for runtime Place
	forward map[uint32]bool // keys needed by RootOnly groups
	buf     []event.Event
	batchSz int
	wm      int64
	err     error
}

// NewLocal builds a local node for the analyzed groups, sending to parent.
// batchSize controls how many RootOnly events are coalesced per message.
func NewLocal(id uint32, groups []*query.Group, parent message.Conn, batchSize int) *Local {
	if batchSize <= 0 {
		batchSize = 256
	}
	l := &Local{id: id, conn: parent, forward: make(map[uint32]bool), batchSz: batchSize}
	l.groups = append(l.groups, groups...)
	var dist []*query.Group
	for _, g := range groups {
		if g.Placement == query.RootOnly {
			l.forward[g.Key] = true
		}
		if g.Placement == query.Distributed {
			dist = append(dist, g)
		}
	}
	l.engine = core.New(dist, core.Config{
		Decentralized: true,
		OnSlice:       l.sendPartial,
	})
	return l
}

func (l *Local) sendPartial(p *core.SlicePartial) {
	if l.err != nil {
		return
	}
	if p.Ingested == 0 && len(p.EPs) == 0 {
		l.engine.RecyclePartial(p)
		return // nothing to contribute; watermarks carry progress
	}
	err := l.conn.Send(&message.Message{Kind: message.KindPartial, From: l.id, Partial: p})
	// Send encodes synchronously (the Conn contract forbids retaining the
	// message), so the partial's buffers can feed the next slice.
	l.engine.RecyclePartial(p)
	l.err = err
}

// Process ingests a batch of in-order events from this node's data stream.
func (l *Local) Process(evs []event.Event) error {
	for _, ev := range evs {
		if l.forward[ev.Key] {
			l.buf = append(l.buf, ev)
			if len(l.buf) >= l.batchSz {
				l.flushForward()
			}
		}
		l.engine.Process(ev)
		if ev.Time > l.wm {
			l.wm = ev.Time
		}
	}
	return l.err
}

func (l *Local) flushForward() {
	if len(l.buf) == 0 || l.err != nil {
		return
	}
	l.err = l.conn.Send(&message.Message{Kind: message.KindEventBatch, From: l.id, Events: l.buf})
	l.buf = nil
}

// AdvanceTo moves this node's event time to t: pending punctuations fire,
// forwarded events flush, and a watermark is emitted. Call it at least once
// per ingestion quantum; the stream's own timestamps advance it implicitly.
func (l *Local) AdvanceTo(t int64) error {
	if t > l.wm {
		l.wm = t
	}
	l.engine.AdvanceTo(l.wm)
	l.flushForward()
	if l.err != nil {
		return l.err
	}
	l.err = l.conn.Send(&message.Message{Kind: message.KindWatermark, From: l.id, Watermark: l.wm})
	return l.err
}

// AddQuery registers a query at runtime, mirroring the root's broadcast.
// Every node applies the same deterministic placement, so group ids and
// member indices stay topology-wide consistent.
func (l *Local) AddQuery(q query.Query) error {
	g, _, created, err := query.Place(l.groups, q, query.Options{Decentralized: true})
	if err != nil {
		return err
	}
	if created {
		l.groups = append(l.groups, g)
	}
	if g.Placement == query.RootOnly {
		l.forward[g.Key] = true
		return nil
	}
	l.engine.SyncGroup(g)
	return nil
}

// RemoveQuery unregisters a running distributed query.
func (l *Local) RemoveQuery(id uint64) error {
	// RootOnly queries live in the root's engine; removing one here is a
	// no-op (the forward set stays conservative).
	if err := l.engine.RemoveQuery(id); err != nil {
		return nil //nolint:nilerr // not found locally means root-only
	}
	return nil
}

// Stats exposes the underlying engine's counters.
func (l *Local) Stats() core.Stats { return l.engine.Stats() }

// Close flushes and closes the parent connection.
func (l *Local) Close() error {
	l.flushForward()
	// Announce a deliberate departure so the parent finishes immediately
	// instead of holding a reconnect grace period (best effort).
	_ = l.conn.Send(&message.Message{Kind: message.KindGoodbye, From: l.id})
	if err := l.conn.Close(); err != nil {
		return err
	}
	if l.err != nil {
		return fmt.Errorf("node: local %d: %w", l.id, l.err)
	}
	return nil
}
