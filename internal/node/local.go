// Package node implements Desis' decentralized aggregation (§5): local
// nodes slice raw streams and ship per-slice partial results, intermediate
// nodes merge partials from their children, and the root node assembles
// window results. Count-based (RootOnly) query-groups are forwarded as raw
// events and evaluated by an engine on the root, which is the only node that
// observes the global event order (§5.2).
package node

import (
	"fmt"
	"sync/atomic"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/plan"
	"desis/internal/query"
	"desis/internal/telemetry"
)

// Local is a local node: it ingests a data stream, runs the aggregation
// engine in slice-emitting mode for distributed groups, forwards raw events
// for RootOnly groups, and emits watermarks so parents can close windows
// timely.
//
// The local holds a full copy of the execution plan (inside its engine) but
// materialises only the distributed groups; runtime catalog changes arrive
// as plan deltas (Apply) or, after a too-stale reconnect, as a full plan
// (ResyncPlan), and both funnel through the engine's one reconciliation
// path.
type Local struct {
	id      uint32
	conn    message.Conn
	engine  *core.Engine
	forward map[uint32]bool // keys needed by RootOnly groups
	buf     []event.Event
	batchSz int
	// wm is atomic so Digest (called from the uplink's heartbeat
	// goroutine) can read the watermark while the feed goroutine advances
	// it; everything else about Local stays single-threaded.
	wm  atomic.Int64
	err error
}

// NewLocal builds a local node for the analyzed groups, sending to parent.
// batchSize controls how many RootOnly events are coalesced per message.
// The groups are deep-copied into the node's own plan, so several nodes of
// an in-process topology can be built from one analyzed set.
func NewLocal(id uint32, groups []*query.Group, parent message.Conn, batchSize int) *Local {
	p := plan.FromGroups(groups, plan.Options{Decentralized: true, Optimize: true}).Clone()
	return NewLocalFromPlan(id, p, parent, batchSize)
}

// NewLocalFromPlan builds a local node from an execution plan (e.g. one
// received in a handshake), taking ownership of it.
func NewLocalFromPlan(id uint32, p *plan.Plan, parent message.Conn, batchSize int) *Local {
	return NewLocalFromPlanTuned(id, p, parent, batchSize, EngineTuning{})
}

// EngineTuning carries the engine knobs a node deployment exposes; the zero
// value selects the engine defaults (no instance eviction).
type EngineTuning struct {
	// InstanceTTL parks group instances of keys idle this many event-time
	// milliseconds (core.Config.InstanceTTL); 0 disables eviction. Note
	// that every watermark revives the whole key space (idle keys owe
	// empty windows), so set the TTL well above the watermark cadence.
	InstanceTTL int64
	// InstanceShards is the key→instance map shard count; 0 selects the
	// engine default.
	InstanceShards int
	// Assembly selects the window-assembly index (core.Config.Assembly);
	// the zero value is the two-stacks default.
	Assembly core.AssemblyKind
}

// NewLocalFromPlanTuned is NewLocalFromPlan with explicit engine tuning.
func NewLocalFromPlanTuned(id uint32, p *plan.Plan, parent message.Conn, batchSize int, tune EngineTuning) *Local {
	if batchSize <= 0 {
		batchSize = 256
	}
	l := &Local{id: id, conn: parent, forward: make(map[uint32]bool), batchSz: batchSize}
	l.engine = core.NewFromPlan(p, core.Config{
		Placement:      core.DistributedOnly,
		OnSlice:        l.sendPartial,
		InstanceTTL:    tune.InstanceTTL,
		InstanceShards: tune.InstanceShards,
		Assembly:       tune.Assembly,
	})
	l.rebuildForward()
	return l
}

// rebuildForward derives the RootOnly forwarding set from the plan. It is
// conservative across removals: a group whose members were all tombstoned
// still forwards (the root simply ignores the events).
func (l *Local) rebuildForward() {
	for _, g := range l.engine.Plan().Groups {
		if g.Placement == query.RootOnly {
			l.forward[g.Key] = true
		}
	}
}

// Epoch returns the local's plan epoch, reported in its hello so the parent
// can resync it by epoch diff.
func (l *Local) Epoch() uint64 { return l.engine.PlanEpoch() }

// Apply applies one plan delta (arriving from the parent, or minted by the
// in-process Cluster) to the local's engine and forwarding set.
func (l *Local) Apply(d plan.Delta) error {
	if err := l.engine.Apply(d); err != nil {
		return err
	}
	l.rebuildForward()
	return nil
}

// ResyncPlan replaces the local's plan with a newer full copy of the same
// lineage (the handshake reply when the node is too stale for an epoch
// diff).
func (l *Local) ResyncPlan(p *plan.Plan) error {
	if err := l.engine.ResyncPlan(p); err != nil {
		return err
	}
	l.rebuildForward()
	return nil
}

func (l *Local) sendPartial(p *core.SlicePartial) {
	if l.err != nil {
		return
	}
	if p.Ingested == 0 && len(p.EPs) == 0 {
		l.engine.RecyclePartial(p)
		return // nothing to contribute; watermarks carry progress
	}
	err := l.conn.Send(&message.Message{Kind: message.KindPartial, From: l.id, Partial: p})
	// Send encodes synchronously (the Conn contract forbids retaining the
	// message), so the partial's buffers can feed the next slice.
	l.engine.RecyclePartial(p)
	l.err = err
}

// Process ingests a batch of in-order events from this node's data stream.
func (l *Local) Process(evs []event.Event) error {
	for _, ev := range evs {
		if l.forward[ev.Key] {
			l.buf = append(l.buf, ev)
			if len(l.buf) >= l.batchSz {
				l.flushForward()
			}
		}
		l.engine.Process(ev)
		if ev.Time > l.wm.Load() {
			l.wm.Store(ev.Time)
		}
	}
	return l.err
}

func (l *Local) flushForward() {
	if len(l.buf) == 0 || l.err != nil {
		return
	}
	l.err = l.conn.Send(&message.Message{Kind: message.KindEventBatch, From: l.id, Events: l.buf})
	l.buf = nil
}

// AdvanceTo moves this node's event time to t: pending punctuations fire,
// forwarded events flush, and a watermark is emitted. Call it at least once
// per ingestion quantum; the stream's own timestamps advance it implicitly.
func (l *Local) AdvanceTo(t int64) error {
	if t > l.wm.Load() {
		l.wm.Store(t)
	}
	wm := l.wm.Load()
	l.engine.AdvanceTo(wm)
	l.flushForward()
	if l.err != nil {
		return l.err
	}
	l.err = l.conn.Send(&message.Message{Kind: message.KindWatermark, From: l.id, Watermark: wm})
	return l.err
}

// AddQuery registers a query at runtime by minting and applying the add
// delta locally. In-process topologies prefer Cluster.AddQuery, which mints
// one delta at the root and applies the same delta everywhere.
func (l *Local) AddQuery(q query.Query) error {
	return l.Apply(l.engine.Plan().AddDelta(q))
}

// RemoveQuery unregisters a running query.
func (l *Local) RemoveQuery(id uint64) error {
	return l.Apply(l.engine.Plan().RemoveDelta(id))
}

// Stats exposes the underlying engine's counters.
func (l *Local) Stats() core.Stats { return l.engine.Stats() }

// AttachTelemetry instruments the local's engine with reg. Call before
// serving traffic.
func (l *Local) AttachTelemetry(reg *telemetry.Registry) { l.engine.AttachTelemetry(reg) }

// Digest summarises this node's progress for the heartbeat piggyback. Safe
// to call from a goroutine other than the feeder: the engine counters and
// the watermark are atomic (the plan epoch is filled in by the caller from
// its own lock-free mirror).
func (l *Local) Digest() *telemetry.LoadDigest {
	s := l.engine.Stats()
	return &telemetry.LoadDigest{
		Watermark: l.wm.Load(),
		Events:    s.Events,
		Slices:    s.Slices,
		Windows:   s.Windows,
	}
}

// Close flushes and closes the parent connection.
func (l *Local) Close() error {
	l.flushForward()
	// Announce a deliberate departure so the parent finishes immediately
	// instead of holding a reconnect grace period (best effort).
	_ = l.conn.Send(&message.Message{Kind: message.KindGoodbye, From: l.id})
	if err := l.conn.Close(); err != nil {
		return err
	}
	if l.err != nil {
		return fmt.Errorf("node: local %d: %w", l.id, l.err)
	}
	return nil
}
