package node

import (
	"sort"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/invariant"
	"desis/internal/operator"
	"desis/internal/telemetry"
)

// Merger is the protocol logic of an intermediate node (§5.1.1): it merges
// the per-slice partial results of its children by slice extent, performing
// the intermediate incremental aggregation, and forwards one merged partial
// per slice. Fixed slices align across children (their boundaries are
// global), so most slices merge k-to-1; dynamic punctuations (session
// starts/ends, markers) produce child-specific extents, which are flushed
// unmerged once the watermark passes them. Raw event batches (RootOnly
// groups) pass through. The merger is single-threaded: the owner pumps
// messages into Handle.
type Merger struct {
	// Out receives merged partials.
	Out func(*core.SlicePartial)
	// OutEvents receives forwarded raw-event batches.
	OutEvents func(from uint32, evs []event.Event)
	// OutWatermark receives the merged (minimum) watermark, monotone.
	OutWatermark func(int64)

	children  map[uint32]*childState
	pending   map[mergeKey]*mergeEntry
	watermark int64
	maxEnd    int64 // newest slice end seen, for final flushes
	sent      int64
	// emitted remembers extents forwarded before the watermark passed them
	// (all children contributed early), so replayed duplicates of a
	// completed slice are dropped instead of re-merged. Entries are
	// garbage-collected as the watermark advances.
	emitted map[mergeKey]bool

	// Telemetry (nil-safe no-ops when unattached): merge latency is the
	// time from a slice extent's first contribution to its emission, and
	// the dup counter makes replayed-frame drops visible — a reconnect
	// storm shows up here, not as silently diverging counts.
	telMergeLat *telemetry.Histogram
	telDups     *telemetry.Counter
	traceName   string
}

type childState struct {
	watermark int64
}

type mergeKey struct {
	group      uint32
	start, end int64
}

type mergeEntry struct {
	p *core.SlicePartial
	// from records which children contributed, so a duplicate delivery (a
	// reconnecting child replaying recent frames, §3.2) merges exactly once.
	from map[uint32]bool
	// t0 is when the first contribution arrived; zero when latency
	// telemetry is unattached (no time.Now on the unobserved path).
	t0 time.Time
}

// NewMerger builds a merger expecting the given child node ids.
func NewMerger(children []uint32) *Merger {
	m := &Merger{
		children: make(map[uint32]*childState),
		pending:  make(map[mergeKey]*mergeEntry),
		emitted:  make(map[mergeKey]bool),
	}
	for _, id := range children {
		m.children[id] = &childState{watermark: -1}
	}
	return m
}

// AttachTelemetry registers the merger's instruments (merge.latency,
// merge.dup_dropped) in reg and labels trace events with traceName.
func (m *Merger) AttachTelemetry(reg *telemetry.Registry, traceName string) {
	if reg != nil {
		m.telMergeLat = reg.Histogram("merge.latency")
		m.telDups = reg.Counter("merge.dup_dropped")
	}
	m.traceName = traceName
}

// AddChild registers a child joining at runtime (§3.2).
func (m *Merger) AddChild(id uint32) {
	m.children[id] = &childState{watermark: m.watermark}
}

// RemoveChild drops a child (node loss / removal): slices waiting for it can
// complete with the remaining children at the next watermark. When the last
// child leaves, everything pending flushes and the watermark advances to the
// newest slice end, so downstream windows close.
func (m *Merger) RemoveChild(id uint32) {
	delete(m.children, id)
	if len(m.children) == 0 {
		if m.maxEnd > m.watermark {
			m.watermark = m.maxEnd
		}
		m.gcEmitted()
		m.flushUpTo(m.watermark)
		if m.OutWatermark != nil {
			m.OutWatermark(m.watermark)
		}
		return
	}
	m.advance()
}

// NumChildren reports the current child count — the "length" of an
// intermediate slice in the paper's terms.
func (m *Merger) NumChildren() int { return len(m.children) }

// HandlePartial merges one child partial.
func (m *Merger) HandlePartial(from uint32, p *core.SlicePartial) {
	// The merger retains p (as a pending merge base); receiving a partial
	// its producer already recycled is an ownership bug (debug builds panic
	// here with the slice id).
	invariant.AssertPartialLive(p)
	k := mergeKey{p.Group, p.Start, p.End}
	// A reconnecting child replays its recent frames (at-least-once
	// delivery); anything the watermark already passed was flushed, and
	// anything in emitted was forwarded early — drop both instead of
	// double-merging. On an ordered, fault-free link neither case occurs: a
	// child's partial always precedes the child watermark that covers it.
	if p.End <= m.watermark || m.emitted[k] {
		m.telDups.Inc()
		return
	}
	if p.End > m.maxEnd {
		m.maxEnd = p.End
	}
	e, ok := m.pending[k]
	if !ok {
		e = &mergeEntry{p: p, from: map[uint32]bool{from: true}}
		if m.telMergeLat != nil {
			e.t0 = time.Now()
		}
		m.pending[k] = e
	} else {
		if e.from[from] {
			m.telDups.Inc()
			return // duplicate contribution from a replayed frame
		}
		e.from[from] = true
		mergePartial(e.p, p)
	}
	if len(e.from) >= len(m.children) {
		delete(m.pending, k)
		m.emitted[k] = true
		m.emitEntry(e)
	}
}

// HandleWatermark advances a child's watermark; when the minimum over all
// children advances, incomplete slices older than it are flushed and the new
// watermark is forwarded.
func (m *Merger) HandleWatermark(from uint32, w int64) {
	c, ok := m.children[from]
	if !ok {
		return
	}
	if w > c.watermark {
		c.watermark = w
	}
	m.advance()
}

// HandleEvents forwards a raw batch (RootOnly groups).
func (m *Merger) HandleEvents(from uint32, evs []event.Event) {
	if m.OutEvents != nil {
		m.OutEvents(from, evs)
	}
}

func (m *Merger) advance() {
	min := int64(-1)
	first := true
	for _, c := range m.children {
		if first || c.watermark < min {
			min = c.watermark
			first = false
		}
	}
	if first || min <= m.watermark {
		return
	}
	m.watermark = min
	m.gcEmitted()
	m.flushUpTo(min)
	if m.OutWatermark != nil {
		m.OutWatermark(min)
	}
}

// gcEmitted drops early-emit records the watermark has passed; duplicates of
// those extents are rejected by the watermark check alone.
func (m *Merger) gcEmitted() {
	for k := range m.emitted {
		if k.end <= m.watermark {
			delete(m.emitted, k)
		}
	}
}

// flushUpTo emits pending slices the watermark has passed: children without
// a matching extent simply had no such slice (dynamic punctuation
// misalignment, or a removed node).
func (m *Merger) flushUpTo(w int64) {
	var flush []*mergeEntry
	for k, e := range m.pending {
		if k.end <= w {
			flush = append(flush, e)
			delete(m.pending, k)
		}
	}
	sort.Slice(flush, func(i, j int) bool {
		if flush[i].p.End != flush[j].p.End {
			return flush[i].p.End < flush[j].p.End
		}
		return flush[i].p.Start < flush[j].p.Start
	})
	for _, e := range flush {
		m.emitEntry(e)
	}
}

func (m *Merger) emitEntry(e *mergeEntry) {
	if !e.t0.IsZero() {
		m.telMergeLat.Record(time.Since(e.t0))
	}
	if telemetry.TraceEnabled {
		telemetry.TraceSlice(telemetry.TraceMerge, m.traceName, uint64(e.p.Group), e.p.ID, e.p.Start, e.p.End)
	}
	m.emit(e.p)
}

func (m *Merger) emit(p *core.SlicePartial) {
	m.sent++
	if m.Out != nil {
		m.Out(p)
	}
}

// PartialsSent reports how many merged partials were forwarded.
func (m *Merger) PartialsSent() int64 { return m.sent }

// Watermark reports the merged (minimum-child) watermark.
func (m *Merger) Watermark() int64 { return m.watermark }

// mergePartial folds src into dst: aggregates merge pairwise per selection
// context, EPs concatenate, and LastEvent takes the maximum.
func mergePartial(dst, src *core.SlicePartial) {
	for len(dst.Aggs) < len(src.Aggs) {
		a := operator.NewAgg(src.Aggs[len(dst.Aggs)].Ops)
		a.Finish()
		dst.Aggs = append(dst.Aggs, a)
	}
	for i := range src.Aggs {
		dst.Aggs[i].Merge(&src.Aggs[i])
	}
	dst.EPs = append(dst.EPs, src.EPs...)
	dst.Ingested += src.Ingested
	if src.LastEvent > dst.LastEvent {
		dst.LastEvent = src.LastEvent
	}
}
