package node

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"desis/internal/message"
	"desis/internal/plan"
	"desis/internal/telemetry"
)

// ErrUplinkDown is returned (wrapped) once a supervised uplink exhausted its
// reconnect budget or was closed; every later Send/Recv fails with it.
var ErrUplinkDown = errors.New("node: uplink down")

// RetryPolicy shapes the reconnect loop of a supervised uplink: exponential
// backoff with jitter between dial attempts, capped at MaxDelay, giving up
// after MaxRetries consecutive failures.
type RetryPolicy struct {
	// MaxRetries is the number of consecutive failed dial attempts before
	// the uplink is declared down. Zero means the default (8).
	MaxRetries int
	// BaseDelay is the first backoff (default 50ms); each attempt doubles
	// it up to MaxDelay (default 2s). Every delay is jittered to [d/2, d]
	// so a fleet of children does not reconnect in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// DialOptions configures a child's connection to its parent (locals and
// intermediates).
type DialOptions struct {
	// Codec is the wire codec; nil means message.Binary{}.
	Codec message.Codec
	// Retry shapes the reconnect loop; the zero value uses defaults.
	Retry RetryPolicy
	// Heartbeat is the idle-uplink heartbeat period (§3.2 liveness). Zero
	// means HeartbeatInterval; negative disables heartbeats.
	Heartbeat time.Duration
	// WriteTimeout bounds each Send so a stalled parent cannot block the
	// child forever. Zero derives 4× the effective heartbeat period (or no
	// deadline when heartbeats are disabled); negative disables it.
	WriteTimeout time.Duration
	// ReplayDepth is how many recent partial/watermark frames the uplink
	// retains (as deep copies) and replays after a reconnect. A link that
	// dies can silently swallow frames the kernel had already accepted;
	// replaying the tail restores them, and the parent's merger dedups the
	// overlap, so partials are effectively exactly-once across reconnects.
	// Zero means the default (64); negative disables replay. Raw event
	// batches are never replayed (the parent cannot dedup them).
	ReplayDepth int
	// HandshakeTimeout bounds the hello/query-set exchange (default 5s).
	HandshakeTimeout time.Duration
	// Batch enables adaptive uplink batching: outgoing partial/watermark
	// frames coalesce into columnar KindBatch frames whose size follows the
	// link's backpressure (message.Batcher). Control traffic flushes the
	// open batch and travels unbatched, so ordering and heartbeat liveness
	// are unaffected.
	Batch bool
	// BatchOptions shapes the batcher when Batch is set; the zero value
	// uses the message package defaults.
	BatchOptions message.BatcherOptions
	// Telemetry, when non-nil, is the registry this node registers its
	// instruments in (engine counters, uplink reconnects, merge latency).
	// Nil means the node creates a private registry — stats dumps always
	// answer; supply one to also serve it locally (e.g. -debug-addr).
	Telemetry *telemetry.Registry
	// Tuning carries engine knobs (instance TTL eviction, instance-map
	// sharding) into the node's embedded engine.
	Tuning EngineTuning
}

func (o DialOptions) withDefaults() DialOptions {
	if o.Codec == nil {
		o.Codec = message.Binary{}
	}
	o.Retry = o.Retry.withDefaults()
	if o.Heartbeat == 0 {
		o.Heartbeat = HeartbeatInterval
	}
	if o.WriteTimeout == 0 && o.Heartbeat > 0 {
		o.WriteTimeout = 4 * o.Heartbeat
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.ReplayDepth == 0 {
		o.ReplayDepth = 64
	}
	return o
}

// uplink is a supervised message.Conn from a child (local or intermediate)
// to its parent. On Send/Recv failure it re-dials with backoff, re-performs
// the hello/query-set handshake, and resumes the stream; the parent treats
// the returning id as a reconnect. Heartbeats are emitted when the uplink
// has been idle for a full period, so the parent's liveness timeout only
// fires for genuinely dead children.
//
// Failure semantics across a reconnect are at-least-once per frame: the
// frame being sent when the link died is retransmitted, and the recorded
// tail of recent partial/watermark frames is replayed first (a dying socket
// can accept frames into kernel buffers and lose them without any error
// surfacing). The parent dedups the replayed overlap — merger contributor
// sets for partials, monotonicity for watermarks — so the stream is
// effectively exactly-once for the decentralized hot path. Raw event batches
// (RootOnly groups) are not replayed and stay at-most-once across a
// reconnect.
type uplink struct {
	addr string
	id   uint32
	opts DialOptions

	mu           sync.Mutex
	cond         *sync.Cond
	conn         *message.TCPConn
	gen          uint64 // bumped per successful reconnect
	reconnecting bool
	down         error  // terminal state; sticky
	prevBytes    uint64 // BytesSent of retired connections
	closed       bool
	// epochFn reports the child's current plan epoch for the hello of a
	// re-handshake; nil (or before SetEpochFn) reports NoEpoch, which makes
	// the parent send the full plan.
	epochFn func() uint64
	// pending holds the resync messages received by re-handshakes — a
	// KindPlanDelta (epoch diff) or KindPlanState (full plan) — delivered
	// in-band by Recv so the single downstream consumer applies resyncs in
	// order with ordinary control traffic.
	pending []*message.Message
	// replay is a bounded ring of deep-copied recent partial/watermark
	// frames (whole KindBatch frames when batching). A dying socket can
	// accept frames into kernel buffers and then lose them without an error
	// ever surfacing; retransmitting the tail on reconnect closes that
	// silent-loss window, and the parent's merger drops the duplicated
	// overlap — per contained partial, when a replayed frame is a batch.
	replay []*message.Message

	// batcher, when batching is enabled, sits between Send and the raw
	// connection: data frames are cloned into its queue and transmitted by
	// its pump through sendDirect, so everything reaching the wire (and the
	// replay ring) is batcher-owned memory.
	batcher *message.Batcher

	closeCh chan struct{}
	hbDone  chan struct{}

	// reconnects counts successful re-dials (atomic: heartbeat and digest
	// readers race the reconnecting goroutine); telReconnects/telReplay
	// mirror reconnects and replay-ring occupancy into a registry when
	// attached (nil-safe no-ops otherwise).
	reconnects    atomic.Uint64
	telReconnects *telemetry.Counter
	telReplay     *telemetry.Gauge
	// digestFn, when set, builds the load digest piggybacked on idle
	// heartbeats. It runs on the heartbeat goroutine with no uplink locks
	// held; the uplink fills in the transport fields (reconnects, replay
	// occupancy) itself.
	digestFn func() *telemetry.LoadDigest
}

// dialUplink establishes the initial connection and handshake, returning
// the uplink and the parent's execution plan (the child is fresh, so it
// reports NoEpoch and always receives the full plan). The caller installs an
// epoch callback with SetEpochFn and calls startHeartbeats once it is ready
// to serve traffic.
func dialUplink(addr string, id uint32, opts DialOptions) (*uplink, *plan.Plan, error) {
	u := &uplink{
		addr:    addr,
		id:      id,
		opts:    opts.withDefaults(),
		closeCh: make(chan struct{}),
	}
	u.cond = sync.NewCond(&u.mu)
	conn, resync, err := u.handshake()
	if err != nil {
		return nil, nil, err
	}
	if resync.Kind != message.KindPlanState {
		conn.Close()
		return nil, nil, fmt.Errorf("node: handshake with %s: expected full plan for a fresh child, got kind %d", addr, resync.Kind)
	}
	u.conn = conn
	if u.opts.Batch {
		u.batcher = message.NewBatcher(u.sendDirect, id, u.opts.BatchOptions)
	}
	return u, resync.Plan, nil
}

// SetEpochFn installs the callback reporting the child's plan epoch, used by
// re-handshakes so the parent can reply with an epoch diff. The callback is
// invoked from the reconnecting goroutine and must do its own locking.
func (u *uplink) SetEpochFn(fn func() uint64) {
	u.mu.Lock()
	u.epochFn = fn
	u.mu.Unlock()
}

// AttachTelemetry mirrors the uplink's reconnect count and replay-ring
// occupancy into reg (uplink.reconnects, uplink.replay_occupancy), plus the
// batcher's fill/flush/compression instruments when batching is enabled.
func (u *uplink) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	u.mu.Lock()
	u.telReconnects = reg.Counter("uplink.reconnects")
	u.telReplay = reg.Gauge("uplink.replay_occupancy")
	b := u.batcher
	u.mu.Unlock()
	if b != nil {
		b.AttachTelemetry(reg)
	}
}

// SetDigestFn installs the callback building the node-level part of the
// heartbeat load digest. The callback must be safe to run concurrently
// with the node's feed goroutine.
func (u *uplink) SetDigestFn(fn func() *telemetry.LoadDigest) {
	u.mu.Lock()
	u.digestFn = fn
	u.mu.Unlock()
}

// Reconnects reports how many times the uplink successfully re-dialed.
func (u *uplink) Reconnects() uint64 { return u.reconnects.Load() }

// startHeartbeats launches the idle-uplink heartbeat loop (when enabled).
func (u *uplink) startHeartbeats() {
	if u.opts.Heartbeat > 0 {
		u.hbDone = make(chan struct{})
		go u.heartbeatLoop()
	}
}

// handshake dials the parent once: hello (with the child's plan epoch) up,
// plan resync down — an epoch diff (KindPlanDelta) or the full plan
// (KindPlanState).
func (u *uplink) handshake() (*message.TCPConn, *message.Message, error) {
	conn, err := message.Dial(u.addr, u.opts.Codec)
	if err != nil {
		return nil, nil, err
	}
	if u.opts.WriteTimeout > 0 {
		conn.SetWriteTimeout(u.opts.WriteTimeout)
	}
	epoch := uint64(message.NoEpoch)
	u.mu.Lock()
	fn := u.epochFn
	u.mu.Unlock()
	if fn != nil {
		epoch = fn()
	}
	if err := conn.Send(&message.Message{Kind: message.KindHello, From: u.id, Epoch: epoch}); err != nil {
		conn.Close()
		return nil, nil, err
	}
	resync, err := conn.RecvTimeout(u.opts.HandshakeTimeout)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("node: handshake with %s: %w", u.addr, err)
	}
	if resync.Kind != message.KindPlanState && resync.Kind != message.KindPlanDelta {
		conn.Close()
		return nil, nil, fmt.Errorf("node: handshake with %s: expected plan state or delta, got kind %d", u.addr, resync.Kind)
	}
	return conn, resync, nil
}

// current returns the live connection, waiting out an in-flight reconnect.
func (u *uplink) current() (*message.TCPConn, uint64, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	for u.reconnecting {
		u.cond.Wait()
	}
	if u.down != nil {
		return nil, 0, u.down
	}
	return u.conn, u.gen, nil
}

// fail reports that the connection of generation gen broke with cause. It
// returns a usable connection (reconnecting if this caller wins the race to
// do so) or the uplink's terminal error. Single-flight: concurrent callers
// wait for the winner's outcome.
func (u *uplink) fail(gen uint64, cause error) (*message.TCPConn, uint64, error) {
	u.mu.Lock()
	for {
		if u.down != nil {
			err := u.down
			u.mu.Unlock()
			return nil, 0, err
		}
		if u.gen != gen {
			// Someone else already reconnected; use their connection.
			c, g := u.conn, u.gen
			u.mu.Unlock()
			return c, g, nil
		}
		if !u.reconnecting {
			break
		}
		u.cond.Wait()
	}
	u.reconnecting = true
	old := u.conn
	u.mu.Unlock()

	if old != nil {
		u.accountRetired(old)
		old.Close()
	}
	conn, resync, err := u.redial()

	u.mu.Lock()
	u.reconnecting = false
	if err != nil {
		if u.down == nil {
			u.down = fmt.Errorf("%w: %s (last cause: %v)", ErrUplinkDown, err, cause)
		}
		err := u.down
		u.cond.Broadcast()
		u.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
		return nil, 0, err
	}
	u.conn = conn
	u.gen++
	g := u.gen
	u.pending = append(u.pending, resync)
	u.cond.Broadcast()
	tel := u.telReconnects
	u.mu.Unlock()
	u.reconnects.Add(1)
	tel.Inc()
	return conn, g, nil
}

// redial attempts the handshake under the retry policy: exponential backoff
// with jitter, aborting early when the uplink is closed.
func (u *uplink) redial() (*message.TCPConn, *message.Message, error) {
	delay := u.opts.Retry.BaseDelay
	var lastErr error
	for attempt := 0; attempt < u.opts.Retry.MaxRetries; attempt++ {
		if attempt > 0 {
			d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
			select {
			case <-u.closeCh:
				return nil, nil, errors.New("closed during reconnect")
			case <-time.After(d):
			}
			if delay *= 2; delay > u.opts.Retry.MaxDelay {
				delay = u.opts.Retry.MaxDelay
			}
		}
		select {
		case <-u.closeCh:
			return nil, nil, errors.New("closed during reconnect")
		default:
		}
		conn, resync, err := u.handshake()
		if err == nil {
			if err = u.sendReplay(conn); err == nil {
				return conn, resync, nil
			}
			conn.Close() // broken before it carried anything; try again
		}
		lastErr = err
	}
	return nil, nil, fmt.Errorf("gave up after %d attempts: %w", u.opts.Retry.MaxRetries, lastErr)
}

// sendReplay retransmits the recorded frame tail on a fresh connection,
// restoring anything the dead socket silently swallowed. The parent dedups
// the overlap (merger contributor sets; watermarks are monotone).
func (u *uplink) sendReplay(conn *message.TCPConn) error {
	u.mu.Lock()
	frames := append([]*message.Message(nil), u.replay...)
	u.mu.Unlock()
	for _, f := range frames {
		if err := conn.Send(f); err != nil {
			return err
		}
	}
	return nil
}

// record retains a data frame in the replay ring. Only partials, watermarks
// and their batches are retained: they are idempotent at the parent, raw
// event batches are not. Lone partial frames are deep-cloned so the caller
// can recycle their buffers (the Conn contract — the batcher's cut-through
// path forwards the caller's frame untouched). A KindBatch frame is always
// assembled by the batcher's pump from clones it made at enqueue time and is
// never touched again, so it is retained as-is.
func (u *uplink) record(m *message.Message) {
	if u.opts.ReplayDepth <= 0 {
		return
	}
	switch m.Kind {
	case message.KindPartial, message.KindWatermark, message.KindBatch:
	case message.KindHello, message.KindPlanState, message.KindEventBatch,
		message.KindResult, message.KindAddQuery, message.KindRemoveQuery,
		message.KindHeartbeat, message.KindGoodbye, message.KindPlanDelta,
		message.KindPlanDump, message.KindStatsDump:
		// Named, not replayed (wirekind): control frames are regenerated by
		// the handshake, heartbeats are ephemeral, and raw event batches
		// are not idempotent at the parent. A new kind must choose a side
		// here explicitly.
		return
	default:
		return
	}
	c := *m
	if c.Partial != nil {
		c.Partial = c.Partial.Clone()
	}
	u.mu.Lock()
	if len(u.replay) >= u.opts.ReplayDepth {
		copy(u.replay, u.replay[1:])
		u.replay[len(u.replay)-1] = &c
	} else {
		u.replay = append(u.replay, &c)
	}
	tel, n := u.telReplay, len(u.replay)
	u.mu.Unlock()
	tel.Set(int64(n))
}

// accountRetired folds a retired connection's byte count into the running
// total so BytesSent stays monotone across reconnects.
func (u *uplink) accountRetired(c *message.TCPConn) {
	u.mu.Lock()
	u.prevBytes += c.BytesSent()
	u.mu.Unlock()
}

// Send implements message.Conn: it transmits m, transparently reconnecting
// and retransmitting on link failure until the retry budget is exhausted.
// With batching enabled, data frames detour through the batcher's queue and
// reach the wire via sendDirect on the batcher's pump; control frames flush
// the open batch first and stay synchronous.
func (u *uplink) Send(m *message.Message) error {
	if u.batcher != nil {
		return u.batcher.Send(m)
	}
	return u.sendDirect(m)
}

// sendDirect is the supervised transmission path under the batcher (or the
// whole path when batching is off).
func (u *uplink) sendDirect(m *message.Message) error {
	conn, gen, err := u.current()
	if err != nil {
		return err
	}
	for {
		if err := conn.Send(m); err == nil {
			u.record(m)
			return nil
		} else if conn, gen, err = u.fail(gen, err); err != nil {
			return err
		}
	}
}

// Recv implements message.Conn: it receives the next downstream message
// (control traffic), transparently reconnecting on link failure. After a
// reconnect, the parent's plan resync (epoch diff or full plan) is delivered
// first so the consumer catches up before reading control traffic from the
// new connection. Single consumer only.
func (u *uplink) Recv() (*message.Message, error) {
	conn, gen, err := u.current()
	if err != nil {
		return nil, err
	}
	for {
		u.mu.Lock()
		if len(u.pending) > 0 {
			m := u.pending[0]
			u.pending = u.pending[1:]
			u.mu.Unlock()
			return m, nil
		}
		u.mu.Unlock()
		m, rerr := conn.Recv()
		if rerr == nil {
			return m, nil
		}
		if conn, gen, err = u.fail(gen, rerr); err != nil {
			return nil, err
		}
	}
}

// Close implements message.Conn: it flushes and closes the live connection
// and marks the uplink down so in-flight reconnects abort.
func (u *uplink) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	close(u.closeCh)
	conn := u.conn
	if u.down == nil {
		u.down = fmt.Errorf("%w: closed", ErrUplinkDown)
	}
	u.cond.Broadcast()
	u.mu.Unlock()
	var err error
	if conn != nil {
		// Close the socket before waiting for the heartbeat loop: a
		// heartbeat Send blocked on a stalled peer is released by the close.
		err = conn.Close()
	}
	if u.batcher != nil {
		// A graceful shutdown (goodbye through Send) already flushed the
		// queue; this only stops the pump, whose in-flight transmission, if
		// any, was just released by the socket close.
		_ = u.batcher.Close()
	}
	if u.hbDone != nil {
		<-u.hbDone
	}
	return err
}

// BytesSent implements message.Conn: cumulative across reconnects.
func (u *uplink) BytesSent() uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	total := u.prevBytes
	if u.conn != nil {
		total += u.conn.BytesSent()
	}
	return total
}

// heartbeatLoop sends KindHeartbeat whenever a full period elapsed with no
// other traffic, so an idle-but-alive child is never evicted by the
// parent's liveness timeout (§3.2). One goroutine and one ticker per
// uplink, regardless of message volume.
func (u *uplink) heartbeatLoop() {
	defer close(u.hbDone)
	t := time.NewTicker(u.opts.Heartbeat)
	defer t.Stop()
	last := u.BytesSent()
	for {
		select {
		case <-u.closeCh:
			return
		case <-t.C:
		}
		if cur := u.BytesSent(); cur != last {
			last = cur
			continue // the uplink carried traffic this period; stay quiet
		}
		if err := u.Send(&message.Message{Kind: message.KindHeartbeat, From: u.id, Load: u.digest()}); err != nil {
			return // terminal: uplink down or closed
		}
		last = u.BytesSent()
	}
}

// digest builds the heartbeat load digest: the node-level callback's view
// completed with the uplink's own transport counters. Nil when no digest
// callback is installed — the heartbeat then travels bare.
func (u *uplink) digest() *telemetry.LoadDigest {
	u.mu.Lock()
	fn := u.digestFn
	replayLen := len(u.replay)
	u.mu.Unlock()
	if fn == nil {
		return nil
	}
	d := fn()
	if d == nil {
		return nil
	}
	d.Reconnects = u.reconnects.Load()
	d.ReplayLen = uint32(replayLen)
	return d
}

var _ message.Conn = (*uplink)(nil)
