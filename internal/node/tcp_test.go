package node

import (
	"math"
	"sync"
	"testing"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/query"
)

// TestTCPTopologyEndToEnd spins a real root + intermediate + two locals over
// loopback TCP and checks the results against the central engine.
func TestTCPTopologyEndToEnd(t *testing.T) {
	queries := []query.Query{
		query.MustParse("tumbling(100ms) average key=0"),
		query.MustParse("tumbling(200ms) median key=0"),
	}
	for i := range queries {
		queries[i].ID = uint64(i + 1)
	}

	var mu sync.Mutex
	var got []core.Result
	root, err := ServeRoot("127.0.0.1:0", queries, 1, 5*time.Second, nil, func(r core.Result) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := ServeIntermediate("127.0.0.1:0", root.Addr(), 1001, 2, 5*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Two locals, each streaming half the global timeline.
	evs := make([]event.Event, 2000)
	for i := range evs {
		evs[i] = event.Event{Time: int64(i), Value: float64(i % 50)}
	}
	var wg sync.WaitGroup
	for li := 0; li < 2; li++ {
		wg.Add(1)
		go func(li int) {
			defer wg.Done()
			err := RunLocalTCP(inter.Addr(), uint32(1+li), 64, nil, func(l *LocalSession) error {
				for i := li; i < len(evs); i += 2 {
					if err := l.Process(evs[i : i+1]); err != nil {
						return err
					}
					if i%200 == 0 {
						if err := l.AdvanceTo(evs[i].Time); err != nil {
							return err
						}
					}
				}
				return l.AdvanceTo(5000)
			})
			if err != nil {
				t.Errorf("local %d: %v", li, err)
			}
		}(li)
	}
	wg.Wait()
	if err := inter.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := root.Wait(); err != nil {
		t.Fatal(err)
	}

	// Central reference.
	groups, err := query.Analyze(queries, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(groups, core.Config{})
	e.ProcessBatch(evs)
	e.AdvanceTo(5000)
	want := e.Results()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("got %d results over TCP, want %d", len(got), len(want))
	}
	wm := map[string]core.Result{}
	for _, r := range want {
		wm[resultKey(r)] = r
	}
	for _, g := range got {
		w, ok := wm[resultKey(g)]
		if !ok {
			t.Errorf("unexpected result %s", resultKey(g))
			continue
		}
		if g.Count != w.Count {
			t.Errorf("%s: count %d, want %d", resultKey(g), g.Count, w.Count)
		}
		for i := range w.Values {
			if w.Values[i].OK && math.Abs(g.Values[i].Value-w.Values[i].Value) > 1e-9 {
				t.Errorf("%s %v: %g, want %g", resultKey(g), w.Values[i].Spec, g.Values[i].Value, w.Values[i].Value)
			}
		}
	}
}

// TestTCPChildTimeout exercises the §3.2 liveness timeout: a child that
// connects and goes silent is removed, letting the topology finish.
func TestTCPChildTimeout(t *testing.T) {
	queries := []query.Query{query.MustParse("tumbling(100ms) sum key=0")}
	queries[0].ID = 1
	var mu sync.Mutex
	n := 0
	root, err := ServeRoot("127.0.0.1:0", queries, 2, 300*time.Millisecond, nil, func(core.Result) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	// A healthy local.
	done := make(chan error, 1)
	go func() {
		done <- RunLocalTCP(root.Addr(), 1, 64, nil, func(l *LocalSession) error {
			for i := 0; i < 1000; i++ {
				if err := l.Process([]event.Event{{Time: int64(i), Value: 1}}); err != nil {
					return err
				}
			}
			return l.AdvanceTo(2000)
		})
	}()
	// A silent child: says hello, then nothing.
	go func() {
		_ = RunLocalTCP(root.Addr(), 2, 64, nil, func(l *LocalSession) error {
			time.Sleep(2 * time.Second)
			return nil
		})
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The root should have timed the silent child out and produced the
	// healthy child's windows.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		cur := n
		mu.Unlock()
		if cur >= 10 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("results after timeout: %d, want >= 10", cur)
		default:
			time.Sleep(20 * time.Millisecond)
		}
	}
	root.Close()
}
