package node

import (
	"fmt"
	"testing"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/query"
	"desis/internal/telemetry"
)

// TestClusterStatsMatchSingleEngine is the acceptance check for the stats
// protocol: a 3-local / 1-intermediate / 1-root TCP cluster processes a
// workload, desis-ctl's FetchStats pulls the merged cluster snapshot, and
// the per-group event and window counters must equal a single engine's on
// the same workload. Group ids come from the shared analyzed plan, so the
// counter names line up exactly.
func TestClusterStatsMatchSingleEngine(t *testing.T) {
	queries := []query.Query{
		query.MustParse("tumbling(100ms) sum key=0"),
		query.MustParse("sliding(300ms,100ms) average key=1"),
		query.MustParse("tumbling(50ev) max key=2"), // RootOnly when decentralized
	}
	for i := range queries {
		queries[i].ID = uint64(i + 1)
	}

	// The global workload, striped over three locals.
	const horizon = 10_000
	evs := make([]event.Event, 3000)
	for i := range evs {
		evs[i] = event.Event{Time: int64(i), Key: uint32(i % 3), Value: float64(i % 50)}
	}

	// Single-engine reference over the identical analyzed groups.
	groups, err := query.Analyze(queries, query.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	ref := telemetry.NewRegistry()
	eng := core.New(groups, core.Config{})
	eng.AttachTelemetry(ref)
	eng.ProcessBatch(evs)
	eng.AdvanceTo(horizon)
	want := ref.Snapshot()
	if want.Counter("group.1.windows") == 0 || want.Counter("group.1.events") == 0 {
		t.Fatalf("reference engine produced no activity: %+v", want.Counters)
	}

	root, err := ServeRoot("127.0.0.1:0", queries, 1, 10*time.Second, nil, func(core.Result) {})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	inter, err := ServeIntermediate("127.0.0.1:0", root.Addr(), 1001, 3, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Locals process their stripe, advance past the horizon, then hold the
	// connection open (blocked on release) so the stats broadcast can reach
	// them.
	release := make(chan struct{})
	errs := make(chan error, 3)
	for li := 0; li < 3; li++ {
		go func(li int) {
			errs <- RunLocalTCP(inter.Addr(), uint32(1+li), 64, nil, func(l *LocalSession) error {
				for i := li; i < len(evs); i += 3 {
					if err := l.Process(evs[i : i+1]); err != nil {
						return err
					}
					if i%300 == 0 {
						if err := l.AdvanceTo(evs[i].Time); err != nil {
							return err
						}
					}
				}
				if err := l.AdvanceTo(horizon); err != nil {
					return err
				}
				<-release
				return nil
			})
		}(li)
	}

	// The cluster converges asynchronously: poll the merged snapshot until
	// every per-group counter matches the reference (or time out).
	var got *telemetry.Snapshot
	diff := "never fetched"
	waitUntil(t, 15*time.Second, "merged stats to match the single engine ("+diff+")", func() bool {
		s, err := FetchStats(root.Addr(), nil)
		if err != nil {
			diff = err.Error()
			return false
		}
		got = s
		diff = statsDiff(want, got, groups)
		return diff == ""
	})
	if diff != "" {
		t.Fatalf("merged stats never matched: %s", diff)
	}

	// The merged snapshot also carries the root's pipeline instruments.
	if h, ok := got.Hists["merge.latency"]; !ok || h.Count == 0 {
		t.Errorf("merged snapshot misses merge.latency samples: %+v", got.Hists)
	}

	close(release)
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Errorf("local: %v", err)
		}
	}
	if err := inter.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := root.Wait(); err != nil {
		t.Fatal(err)
	}
}

// statsDiff compares the per-group event/window counters of two snapshots,
// returning a description of the first mismatch ("" when equal).
func statsDiff(want, got *telemetry.Snapshot, groups []*query.Group) string {
	for _, g := range groups {
		for _, suffix := range []string{"events", "windows"} {
			name := fmt.Sprintf("group.%d.%s", g.ID, suffix)
			if got.Counter(name) != want.Counter(name) {
				return fmt.Sprintf("%s: got %d, want %d", name, got.Counter(name), want.Counter(name))
			}
		}
	}
	return ""
}

// TestFaultStatsSurviveDeadChild checks the stats protocol degrades instead
// of hanging: with one child stalled (its link frozen mid-collection), a
// stats pull still answers within the collection deadline, carries the
// survivor's counters, reports the survivor's uplink reconnect, and keeps
// the per-child digest gauges the root recorded from heartbeats.
func TestFaultStatsSurviveDeadChild(t *testing.T) {
	queries := []query.Query{query.MustParse("tumbling(100ms) sum key=0")}
	queries[0].ID = 1
	root, err := ServeRoot("127.0.0.1:0", queries, 2, 30*time.Second, nil, func(core.Result) {})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { root.Close() })

	survivorProxy, err := message.NewFaultProxy(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer survivorProxy.Close()
	victimProxy, err := message.NewFaultProxy(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer victimProxy.Close()

	opts := DialOptions{Heartbeat: 50 * time.Millisecond}
	release := make(chan struct{})
	survivorErr := make(chan error, 1)
	go func() {
		survivorErr <- RunLocalTCPOptions(survivorProxy.Addr(), 1, 64, opts, func(l *LocalSession) error {
			if err := l.Process(stepEvents(0, 1000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(1000); err != nil {
				return err
			}
			<-release
			return nil
		})
	}()
	go func() {
		_ = RunLocalTCPOptions(victimProxy.Addr(), 2, 64, opts, func(l *LocalSession) error {
			if err := l.Process(stepEvents(0, 1000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(1000); err != nil {
				return err
			}
			<-release
			return nil
		})
	}()
	waitUntil(t, 10*time.Second, "root watermark 1000", func() bool { return root.Watermark() >= 1000 })

	// Cut the survivor's link once (reconnects pass through), then freeze
	// the victim for good: stats requests to it will never be answered.
	survivorProxy.SeverAll()
	victimProxy.RejectNew(true)
	victimProxy.StallAll()

	// The survivor's uplink reconnects in the background; the merged stats
	// must eventually report it — with the victim frozen, every pull pays
	// the child-reply deadline, and none may exceed it by much.
	var got *telemetry.Snapshot
	waitUntil(t, 20*time.Second, "stats reporting the survivor's reconnect", func() bool {
		start := time.Now()
		s, err := FetchStats(root.Addr(), nil)
		if elapsed := time.Since(start); elapsed > statsWait+3*time.Second {
			t.Fatalf("stats pull took %v, want under the %v collection deadline (plus slack)", elapsed, statsWait)
		}
		if err != nil {
			return false
		}
		got = s
		return s.Counter("uplink.reconnects") >= 1
	})

	// The survivor's pipeline counters made it into the merge (the single
	// analyzed query lands in group 0).
	if got.Counter("group.0.events") < 100 {
		t.Errorf("group.0.events = %d, want >= 100 (survivor processed 100)", got.Counter("group.0.events"))
	}
	// Heartbeat digests recorded before the freeze keep the per-child
	// gauges present for both children.
	for _, id := range []uint32{1, 2} {
		name := fmt.Sprintf("node.%d.watermark_lag", id)
		if _, ok := got.Gauges[name]; !ok {
			t.Errorf("merged snapshot misses gauge %s (gauges: %v)", name, got.Gauges)
		}
	}

	close(release)
	if err := <-survivorErr; err != nil {
		t.Fatalf("survivor: %v", err)
	}
}
