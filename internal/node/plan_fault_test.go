package node

import (
	"sync"
	"testing"
	"time"

	"desis/internal/core"
	"desis/internal/message"
	"desis/internal/plan"
	"desis/internal/query"
)

// TestPlanResyncEpochDiff pins the resync decision table: a child whose epoch
// is within the history log gets exactly the missing delta suffix; a fresh
// child (NoEpoch), a child from a different lineage (epoch ahead of the
// root), or one staler than the log's retention gets the full plan.
func TestPlanResyncEpochDiff(t *testing.T) {
	base := query.MustParse("tumbling(100ms) sum key=0")
	base.ID = 1
	p, err := plan.New([]query.Query{base}, plan.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	hist := plan.NewHistory(p)
	q2 := query.MustParse("tumbling(200ms) sum key=0")
	q2.ID = 2
	q3 := query.MustParse("sliding(300ms,100ms) max key=0")
	q3.ID = 3
	if err := hist.Apply(hist.Plan().AddDelta(q2)); err != nil {
		t.Fatal(err)
	}
	if err := hist.Apply(hist.Plan().AddDelta(q3)); err != nil {
		t.Fatal(err)
	}
	if err := hist.Apply(hist.Plan().RemoveDelta(3)); err != nil {
		t.Fatal(err)
	}
	if hist.Epoch() != 3 {
		t.Fatalf("history epoch %d, want 3", hist.Epoch())
	}

	// Up to date: an empty delta message, not a plan resend.
	if m := planResync(hist, 3); m.Kind != message.KindPlanDelta || len(m.Deltas) != 0 {
		t.Errorf("current child: kind %d with %d deltas, want empty delta message", m.Kind, len(m.Deltas))
	}
	// Stale but within the log: exactly the missing suffix, oldest first.
	if m := planResync(hist, 1); m.Kind != message.KindPlanDelta {
		t.Errorf("stale child: kind %d, want KindPlanDelta", m.Kind)
	} else if len(m.Deltas) != 2 || m.Deltas[0].Epoch != 2 || m.Deltas[1].Epoch != 3 {
		t.Errorf("stale child: got deltas %v, want epochs [2 3]", m.Deltas)
	}
	// Fresh child: full plan at the current epoch.
	if m := planResync(hist, message.NoEpoch); m.Kind != message.KindPlanState || m.Plan == nil || m.Plan.Epoch != 3 {
		t.Errorf("fresh child: kind %d, want full plan at epoch 3", m.Kind)
	}
	// A claimed epoch ahead of the root (different lineage, e.g. the root
	// restarted) fails closed to a full plan.
	if m := planResync(hist, 99); m.Kind != message.KindPlanState {
		t.Errorf("future-epoch child: kind %d, want KindPlanState", m.Kind)
	}
	// Retention bounds the diff: once the log is trimmed past the child's
	// epoch, only the full plan can resync it.
	hist.SetRetention(1)
	if m := planResync(hist, 1); m.Kind != message.KindPlanState {
		t.Errorf("too-stale child: kind %d, want KindPlanState after retention trim", m.Kind)
	}
	if m := planResync(hist, 2); m.Kind != message.KindPlanDelta || len(m.Deltas) != 1 || m.Deltas[0].Epoch != 3 {
		t.Errorf("child at the retention edge: want the single retained delta")
	}
}

// TestStaleEpochReconnectResync is the fault-suite acceptance check for the
// epoch protocol: a child's link is severed, the catalog changes while it is
// down (a query added, another added and removed), and on reconnect the
// child's re-handshake reports its stale epoch and receives the missing plan
// deltas. The topology must converge — the reconnected child answers the
// runtime-added query from the same event time as the never-disconnected
// survivor, and every window carries both children's contributions, exactly
// as a run without the fault would.
func TestStaleEpochReconnectResync(t *testing.T) {
	const hb = 50 * time.Millisecond
	base := query.MustParse("tumbling(100ms) sum key=0")
	base.ID = 1

	var mu sync.Mutex
	wins := map[uint64]map[int64]float64{} // query id → window start → value
	root, err := ServeRoot("127.0.0.1:0", []query.Query{base}, 2, 5*time.Second, nil, func(r core.Result) {
		mu.Lock()
		defer mu.Unlock()
		for _, v := range r.Values {
			if v.OK {
				m := wins[r.QueryID]
				if m == nil {
					m = map[int64]float64{}
					wins[r.QueryID] = m
				}
				m[r.Start] = v.Value
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { root.Close() })
	proxy, err := message.NewFaultProxy(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// An aggressive retry policy so the reconnect lands quickly once the
	// proxy accepts connections again.
	opts := DialOptions{
		Heartbeat: hb,
		Retry:     RetryPolicy{MaxRetries: 200, BaseDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
	}
	sessCh := make(chan *LocalSession, 2)
	phase2 := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 3)

	// The survivor (id 1) connects directly; the victim (id 2) goes through
	// the fault proxy so its link can be cut. Both stream phase 1, park until
	// the plan churn settles, then stream phase 2.
	run := func(id uint32, addr string) {
		defer wg.Done()
		errs[id] = RunLocalTCPOptions(addr, id, 64, opts, func(l *LocalSession) error {
			sessCh <- l
			if err := l.Process(stepEvents(0, 1000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(1000); err != nil {
				return err
			}
			<-phase2
			if err := l.Process(stepEvents(1000, 2000, 10)); err != nil {
				return err
			}
			return l.AdvanceTo(2000)
		})
	}
	wg.Add(2)
	//lint:ignore goroutinelife run defers wg.Done; the func-variable indirection hides the join edge from the analyzer
	go run(1, root.Addr())
	//lint:ignore goroutinelife run defers wg.Done (see above)
	go run(2, proxy.Addr())
	sessions := []*LocalSession{<-sessCh, <-sessCh}

	// Phase 1 complete: both children contributed up to t=1000.
	waitUntil(t, 10*time.Second, "root watermark 1000", func() bool { return root.Watermark() >= 1000 })

	// Cut the victim's link: the socket dies and reconnects are refused, so
	// the deltas broadcast next can only reach it through a later resync.
	proxy.RejectNew(true)
	proxy.SeverAll()

	// Catalog churn while the victim is down: add query 2, then add query 3
	// and remove it again — three deltas, leaving the root at epoch 3 with a
	// tombstone the resync must replay faithfully.
	added := query.MustParse("tumbling(200ms) sum key=0")
	added.ID = 2
	if err := Control(root.Addr(), nil, &added, 0); err != nil {
		t.Fatal(err)
	}
	ephemeral := query.MustParse("sliding(300ms,100ms) max key=0")
	ephemeral.ID = 3
	if err := Control(root.Addr(), nil, &ephemeral, 0); err != nil {
		t.Fatal(err)
	}
	if err := Control(root.Addr(), nil, nil, 3); err != nil {
		t.Fatal(err)
	}

	// Heal the link. The victim's supervised uplink re-dials, its hello
	// carries the stale epoch, and the root answers with the delta suffix.
	proxy.RejectNew(false)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if sessions[0].Epoch() == 3 && sessions[1].Epoch() == 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sessions[0].Epoch() != 3 || sessions[1].Epoch() != 3 {
		t.Fatalf("children stuck at epochs %d and %d, want 3 and 3", sessions[0].Epoch(), sessions[1].Epoch())
	}

	// Phase 2: both children stream on; the reconnected victim must answer
	// the runtime-added query too.
	close(phase2)
	wg.Wait()
	for id := uint32(1); id <= 2; id++ {
		if errs[id] != nil {
			t.Fatalf("child %d: %v", id, errs[id])
		}
	}
	if err := root.Wait(); err != nil {
		t.Fatalf("root.Wait: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	// Query 1 ran throughout: 20 windows of 100ms, 10 events × 2 children.
	if len(wins[1]) != 20 {
		t.Fatalf("query 1: %d windows, want 20 (%v)", len(wins[1]), wins[1])
	}
	for start, sum := range wins[1] {
		if sum != 20 {
			t.Errorf("query 1 window %d: sum %g, want 20", start, sum)
		}
	}
	// Query 2 was added while the victim was down, before any phase-2
	// events: both children answer all five 200ms windows of [1000, 2000) —
	// exactly what a run without the link fault produces.
	if len(wins[2]) != 5 {
		t.Fatalf("query 2: %d windows, want 5 (%v)", len(wins[2]), wins[2])
	}
	for start, sum := range wins[2] {
		if start < 1000 || sum != 40 {
			t.Errorf("query 2 window %d: sum %g, want 40 in [1000, 2000)", start, sum)
		}
	}
	// Query 3 lived only while the stream was parked: no windows.
	if n := len(wins[3]); n != 0 {
		t.Errorf("removed query 3 answered %d windows, want none", n)
	}
}
