package node

import (
	"io"
	"sync"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/plan"
	"desis/internal/query"
)

// ClusterConfig shapes an in-process topology.
type ClusterConfig struct {
	// Locals is the number of local (stream-ingesting) nodes.
	Locals int
	// Intermediates is the number of intermediate nodes; zero connects the
	// locals directly to the root. Locals spread round-robin.
	Intermediates int
	// Codec is the wire codec; nil means message.Binary{}.
	Codec message.Codec
	// Bandwidth throttles every link to this many bytes per second; zero
	// means unlimited. Used to model the 1 GbE Raspberry-Pi links (§6.5.2).
	Bandwidth float64
	// Buffer is the per-link queue depth in messages (default 256); the
	// bound provides backpressure for sustainable-throughput measurement.
	Buffer int
	// BatchSize coalesces forwarded raw events (default 256).
	BatchSize int
	// Batch wraps every upward link in a message.Batcher: partials and
	// watermarks coalesce into columnar KindBatch frames sized by the link's
	// observed drain rate (§4-style uplink amortisation). BatchOptions tunes
	// the caps; the zero value uses the batcher defaults.
	Batch        bool
	BatchOptions message.BatcherOptions
	// NoOptimize disables the factor-window plan optimizer on every tier
	// (ablation switch); the default runs with it on. The flag must be
	// uniform across the topology — it is baked into the one plan lineage
	// all nodes share, so delta replays place identically everywhere.
	NoOptimize bool
	// OnResult receives final window results; nil accumulates them for
	// Results.
	OnResult func(core.Result)
}

// Cluster is an in-process decentralized Desis deployment: all nodes of the
// topology run in one address space, connected by byte-accounted pipes, so
// experiments can measure network overhead and per-node work without a
// physical cluster. It is the substitution for the paper's 10-node testbed;
// cmd/desis-node deploys the same node types over TCP.
type Cluster struct {
	cfg    ClusterConfig
	locals []*Local
	inters []*Intermediate
	root   *Root
	rootMu sync.Mutex

	localConns []message.Conn // for byte accounting
	interConns []message.Conn

	resMu   sync.Mutex
	results []core.Result

	wg         sync.WaitGroup
	interPumps []*sync.WaitGroup // child pumps per intermediate

	// wmCond (on rootMu) is broadcast whenever the root watermark advances
	// or a root pump exits, so WaitRoot can sleep instead of busy-spinning.
	wmCond    *sync.Cond
	rootPumps int // live goroutines feeding the root, guarded by rootMu

	stateMu  sync.Mutex
	closed   bool
	advanced int64 // highest AdvanceAll target, for WaitRoot
}

// NewCluster analyzes nothing — pass groups from query.Analyze with
// Decentralized: true so count-based windows route to the root.
func NewCluster(groups []*query.Group, cfg ClusterConfig) *Cluster {
	if cfg.Locals <= 0 {
		cfg.Locals = 1
	}
	if cfg.Codec == nil {
		cfg.Codec = message.Binary{}
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	c := &Cluster{cfg: cfg}
	c.wmCond = sync.NewCond(&c.rootMu)
	collect := cfg.OnResult
	if collect == nil {
		collect = func(r core.Result) {
			c.resMu.Lock()
			c.results = append(c.results, r)
			c.resMu.Unlock()
		}
	}

	newPipe := func() (*message.Pipe, *message.Pipe) {
		if cfg.Bandwidth > 0 {
			return message.NewThrottledPipe(cfg.Codec, cfg.Buffer, cfg.Bandwidth)
		}
		return message.NewPipe(cfg.Codec, cfg.Buffer)
	}

	localID := func(i int) uint32 { return uint32(1 + i) }
	interID := func(i int) uint32 { return uint32(1001 + i) }

	// upLink optionally wraps an upward pipe end in the adaptive batcher; the
	// wrapper passes Recv/BytesSent through, so downward control traffic and
	// byte accounting are unaffected.
	upLink := func(conn message.Conn, id uint32) message.Conn {
		if !cfg.Batch {
			return conn
		}
		return message.NewBatchingConn(conn, id, cfg.BatchOptions)
	}

	// Root's children: the intermediates, or the locals when there are none.
	var rootChildren []uint32
	if cfg.Intermediates > 0 {
		for i := 0; i < cfg.Intermediates; i++ {
			rootChildren = append(rootChildren, interID(i))
		}
	} else {
		for i := 0; i < cfg.Locals; i++ {
			rootChildren = append(rootChildren, localID(i))
		}
	}
	// One plan lineage for the whole topology: the root takes the original,
	// every local a clone, so optimizer placement and epochs stay locked
	// together across tiers.
	p := plan.FromGroups(groups, plan.Options{Decentralized: true, Optimize: !cfg.NoOptimize})
	c.root = NewRootFromPlan(p, rootChildren, collect)

	// Intermediates and their upward links.
	for i := 0; i < cfg.Intermediates; i++ {
		up, rootSide := newPipe()
		upConn := upLink(up, interID(i))
		c.interConns = append(c.interConns, upConn)
		var children []uint32
		for j := 0; j < cfg.Locals; j++ {
			if j%cfg.Intermediates == i {
				children = append(children, localID(j))
			}
		}
		inter := NewIntermediate(interID(i), children, upConn)
		c.inters = append(c.inters, inter)
		c.interPumps = append(c.interPumps, &sync.WaitGroup{})
		c.pumpToRoot(rootSide)
	}

	// Locals and their upward links.
	for i := 0; i < cfg.Locals; i++ {
		up, parentSide := newPipe()
		upConn := upLink(up, localID(i))
		c.localConns = append(c.localConns, upConn)
		c.locals = append(c.locals, NewLocalFromPlan(localID(i), p.Clone(), upConn, cfg.BatchSize))
		if cfg.Intermediates > 0 {
			c.pumpToIntermediate(i%cfg.Intermediates, parentSide)
		} else {
			c.pumpToRoot(parentSide)
		}
	}
	return c
}

// pumpToRoot drains a connection into the root until EOF, broadcasting
// watermark progress to WaitRoot sleepers.
func (c *Cluster) pumpToRoot(conn message.Conn) {
	c.wg.Add(1)
	c.rootMu.Lock()
	c.rootPumps++
	c.rootMu.Unlock()
	go func() {
		defer c.wg.Done()
		defer func() {
			c.rootMu.Lock()
			c.rootPumps--
			c.wmCond.Broadcast()
			c.rootMu.Unlock()
		}()
		for {
			m, err := conn.Recv()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			c.rootMu.Lock()
			before := c.root.Watermark()
			_ = c.root.Handle(m)
			if c.root.Watermark() > before {
				c.wmCond.Broadcast()
			}
			c.rootMu.Unlock()
		}
	}()
}

// pumpToIntermediate drains a connection into intermediate idx until EOF;
// the node's own mutex serialises concurrent children.
func (c *Cluster) pumpToIntermediate(idx int, conn message.Conn) {
	n := c.inters[idx]
	c.wg.Add(1)
	c.interPumps[idx].Add(1)
	go func() {
		defer c.wg.Done()
		defer c.interPumps[idx].Done()
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			_ = n.HandleLocked(m)
		}
	}()
}

// Local returns the i-th local node, the injection point for generator data.
func (c *Cluster) Local(i int) *Local { return c.locals[i] }

// NumLocals reports the local-node count.
func (c *Cluster) NumLocals() int { return len(c.locals) }

// Push feeds events to local node i.
func (c *Cluster) Push(i int, evs []event.Event) error {
	return c.locals[i].Process(evs)
}

// Advance advances event time on local node i to t. Safe for concurrent use
// across distinct locals (each local is single-threaded).
func (c *Cluster) Advance(i int, t int64) error {
	return c.locals[i].AdvanceTo(t)
}

// AdvanceAll advances event time on every local node to t, propagating
// watermarks up the topology.
func (c *Cluster) AdvanceAll(t int64) error {
	for _, l := range c.locals {
		if err := l.AdvanceTo(t); err != nil {
			return err
		}
	}
	c.stateMu.Lock()
	if t > c.advanced {
		c.advanced = t
	}
	c.stateMu.Unlock()
	return nil
}

// lastAdvanced reads the highest AdvanceAll target under the state lock.
func (c *Cluster) lastAdvanced() int64 {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.advanced
}

// WaitRoot blocks until the root's watermark reaches t — i.e. everything up
// to t has been merged and assembled — or until no pump can advance it
// further. It sleeps on a condition variable signalled by the root pumps
// instead of busy-spinning.
func (c *Cluster) WaitRoot(t int64) {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	for c.root.Watermark() < t && c.rootPumps > 0 {
		c.wmCond.Wait()
	}
}

// AddQuery registers a query on every node of the topology (§3.2): one plan
// delta is minted against the root's authoritative plan, applied there, and
// the same delta is applied to every local — the in-process analogue of the
// TCP tree's KindPlanDelta broadcast, which guarantees identical epochs and
// derived placement everywhere. It first waits for the root to catch up with
// the latest AdvanceAll, so the new query's registration time is well
// defined across nodes.
func (c *Cluster) AddQuery(q query.Query) error {
	c.WaitRoot(c.lastAdvanced())
	c.rootMu.Lock()
	d := c.root.History().Plan().AddDelta(q)
	err := c.root.Apply(d)
	c.rootMu.Unlock()
	if err != nil {
		return err
	}
	return c.applyToLocals(d)
}

// RemoveQuery removes a running query everywhere, through the same
// one-minted-delta path as AddQuery.
func (c *Cluster) RemoveQuery(id uint64) error {
	c.WaitRoot(c.lastAdvanced())
	c.rootMu.Lock()
	d := c.root.History().Plan().RemoveDelta(id)
	err := c.root.Apply(d)
	c.rootMu.Unlock()
	if err != nil {
		return err
	}
	return c.applyToLocals(d)
}

func (c *Cluster) applyToLocals(d plan.Delta) error {
	for _, l := range c.locals {
		if err := l.Apply(d); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the topology down bottom-up and waits for in-flight messages
// to drain.
func (c *Cluster) Close() error {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil
	}
	c.closed = true
	c.stateMu.Unlock()
	var firstErr error
	for _, l := range c.locals {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Each intermediate closes its uplink only after all of its child
	// pumps drained to EOF, so no partials are lost on the way up.
	for i, it := range c.inters {
		c.interPumps[i].Wait()
		if err := it.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.wg.Wait()
	return firstErr
}

// Results returns the window results accumulated so far (when no OnResult
// callback was configured) and clears the buffer.
func (c *Cluster) Results() []core.Result {
	c.resMu.Lock()
	defer c.resMu.Unlock()
	r := c.results
	c.results = nil
	return r
}

// NetworkBytes reports the bytes sent by all local nodes and by all
// intermediate nodes — the per-layer accounting of Figure 11.
func (c *Cluster) NetworkBytes() (localBytes, intermediateBytes uint64) {
	for _, conn := range c.localConns {
		localBytes += conn.BytesSent()
	}
	for _, conn := range c.interConns {
		intermediateBytes += conn.BytesSent()
	}
	return localBytes, intermediateBytes
}

// RootTime reports how far the root has advanced (Deployment interface).
func (c *Cluster) RootTime() int64 { return c.RootWatermark() }

// RootWatermark reports how far the root has advanced.
func (c *Cluster) RootWatermark() int64 {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	return c.root.Watermark()
}

// Root exposes the root node (callers must not mutate it concurrently with
// a running topology; use the Cluster methods instead).
func (c *Cluster) Root() *Root { return c.root }
