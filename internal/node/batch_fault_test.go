package node

import (
	"sync"
	"testing"
	"time"

	"desis/internal/core"
	"desis/internal/message"
	"desis/internal/query"
	"desis/internal/telemetry"
)

// TestFaultSeverMidBatchReplay kills a batching uplink twice and checks that
// the replay ring plus the root's merge dedup keep partials exactly-once.
//
// The choreography makes real multi-frame KindBatch frames deterministically:
// the link is severed (and reconnects refused) before the child emits a burst
// of windows, so the batcher's pump blocks inside the supervised send while
// the burst accumulates behind it; healing the proxy lets the reconnect
// replay the ring (redelivering phase-1 frames the root already merged) and
// then drain the backlog as MaxFrames-capped batches, which are themselves
// recorded in the ring. The second outage forces a second replay — this time
// redelivering those KindBatch frames whose partials the root has also
// already merged. A lost frame leaves a window short, a double-merged replay
// inflates it; exact per-window sums catch both.
func TestFaultSeverMidBatchReplay(t *testing.T) {
	const hb = 50 * time.Millisecond
	queries := []query.Query{query.MustParse("tumbling(100ms) sum key=0")}
	queries[0].ID = 1
	var mu sync.Mutex
	var results []core.Result
	root, err := ServeRoot("127.0.0.1:0", queries, 1, 5*time.Second, nil, func(r core.Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	proxy, err := message.NewFaultProxy(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// NoCutThrough sends every partial through the pump, so an outage blocks
	// the pump (not the session) and the backlog coalesces; MaxFrames 4 makes
	// one 11-frame burst span several batches.
	reg := telemetry.NewRegistry()
	opts := DialOptions{
		Heartbeat:    hb,
		Retry:        RetryPolicy{MaxRetries: 200, BaseDelay: 5 * time.Millisecond, MaxDelay: 25 * time.Millisecond},
		Batch:        true,
		BatchOptions: message.BatcherOptions{MaxFrames: 4, NoCutThrough: true},
		Telemetry:    reg,
	}
	phase2 := make(chan struct{})
	phase2sent := make(chan struct{})
	phase3 := make(chan struct{})
	phase3sent := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- RunLocalTCPOptions(proxy.Addr(), 1, 64, opts, func(l *LocalSession) error {
			if err := l.Process(stepEvents(0, 1000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(1000); err != nil {
				return err
			}
			<-phase2 // link is down: this burst queues behind the blocked pump
			if err := l.Process(stepEvents(1000, 2000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(2000); err != nil {
				return err
			}
			close(phase2sent)
			<-phase3 // link is down again: same, with batches now in the ring
			if err := l.Process(stepEvents(2000, 3000, 10)); err != nil {
				return err
			}
			if err := l.AdvanceTo(3000); err != nil {
				return err
			}
			close(phase3sent)
			return nil
		})
	}()

	// Phase 1 over a healthy link.
	waitUntil(t, 10*time.Second, "root watermark 1000", func() bool { return root.Watermark() >= 1000 })

	// Outage 1: cut the link and refuse reconnects, then let the child emit
	// phase 2 into the dead uplink. The sleep only biases the backlog to
	// accumulate before healing; correctness never depends on it.
	proxy.RejectNew(true)
	proxy.SeverAll()
	close(phase2)
	<-phase2sent
	time.Sleep(50 * time.Millisecond)
	proxy.RejectNew(false)
	waitUntil(t, 10*time.Second, "root watermark 2000 after first sever", func() bool { return root.Watermark() >= 2000 })

	// Outage 2: the replay ring now holds KindBatch frames from the backlog
	// drain; the next reconnect redelivers them to a root that has already
	// merged their partials.
	proxy.RejectNew(true)
	proxy.SeverAll()
	close(phase3)
	<-phase3sent
	time.Sleep(50 * time.Millisecond)
	proxy.RejectNew(false)
	waitUntil(t, 10*time.Second, "root watermark 3000 after second sever", func() bool { return root.Watermark() >= 3000 })

	if err := <-errCh; err != nil {
		t.Fatalf("local: %v", err)
	}
	if err := root.Wait(); err != nil {
		t.Fatalf("root.Wait: %v, want nil after successful reconnects", err)
	}
	if ev := root.Evicted(); len(ev) != 0 {
		t.Fatalf("evicted %v, want none", ev)
	}
	if n := len(proxy.Links()); n < 3 {
		t.Fatalf("proxy links: %d, want >= 3 (two reconnects)", n)
	}

	// The scenario is only meaningful if coalescing actually happened: more
	// frames than flushes means some flush carried a multi-frame batch.
	snap := reg.Snapshot()
	frames, flushes := snap.Counters["batch.frames"], snap.Counters["batch.flushes"]
	if frames <= flushes {
		t.Fatalf("batch.frames=%d batch.flushes=%d: no multi-frame batch was ever sent", frames, flushes)
	}
	if rc := snap.Counters["uplink.reconnects"]; rc < 2 {
		t.Fatalf("uplink.reconnects=%d, want >= 2", rc)
	}

	mu.Lock()
	defer mu.Unlock()
	sums := sumByWindow(results)
	if len(sums) != 30 {
		t.Fatalf("windows: %d, want 30 (results %v)", len(sums), sums)
	}
	for start, sum := range sums {
		if sum != 10 {
			t.Errorf("window %d: sum %g, want 10 (duplicate or lost partial across a sever)", start, sum)
		}
	}
}
