package baseline

import (
	"testing"

	"desis/internal/event"
	"desis/internal/node"
	"desis/internal/query"
)

// desisClusterBytes runs a Desis node.Cluster over the stream and reports
// the local layer's bytes sent, for cross-system network comparisons.
func desisClusterBytes(t *testing.T, groups []*query.Group, evs []event.Event) uint64 {
	t.Helper()
	c := node.NewCluster(groups, node.ClusterConfig{Locals: 2, Intermediates: 1})
	streams := splitStream(evs, 2)
	for i, s := range streams {
		if err := c.Push(i, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AdvanceAll(evs[len(evs)-1].Time + 10000); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	local, _ := c.NetworkBytes()
	return local
}
