package baseline

import (
	"fmt"
	"sort"
	"strings"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/query"
)

// partitioned shares partial results only within partitions of queries that
// have identical keys, selection predicates, aggregation functions, and
// (optionally) window measures. One slicing engine runs per partition, so an
// event is processed once per partition instead of once overall — the
// behaviour of Scotty and DeSW that Desis' operator sharing removes (§6.3).
type partitioned struct {
	name    string
	engines []*core.Engine
	byKey   map[uint32][]*core.Engine
	results []core.Result
}

// NewDeSW builds the Desis-Sharing-Windows baseline: sharing requires the
// same aggregation functions and the same window measure (§6.1.1).
func NewDeSW(queries []query.Query) (System, error) {
	return newPartitioned("DeSW", queries, true)
}

// NewScotty builds the Scotty baseline: general window slicing with sharing
// between windows that have the same aggregation functions (§6.1.1); it is a
// centralized system.
func NewScotty(queries []query.Query) (System, error) {
	return newPartitioned("Scotty", queries, false)
}

// partitionKey buckets queries into the groups a function-sharing slicer can
// serve with one slice stream.
func partitionKey(q query.Query, splitMeasure bool) string {
	specs := make([]string, len(q.Funcs))
	for i, f := range q.Funcs {
		specs[i] = f.String()
	}
	sort.Strings(specs)
	k := fmt.Sprintf("k%d|p%g:%g|f%s", q.Key, q.Pred.Min, q.Pred.Max, strings.Join(specs, ","))
	if splitMeasure {
		k += "|m" + q.Measure.String()
	}
	return k
}

func newPartitioned(name string, queries []query.Query, splitMeasure bool) (*partitioned, error) {
	parts := make(map[string][]query.Query)
	var order []string
	for _, q := range queries {
		k := partitionKey(q, splitMeasure)
		if _, ok := parts[k]; !ok {
			order = append(order, k)
		}
		parts[k] = append(parts[k], q)
	}
	s := &partitioned{name: name, byKey: make(map[uint32][]*core.Engine)}
	for _, k := range order {
		qs := parts[k]
		groups, err := query.Analyze(qs, query.Options{})
		if err != nil {
			return nil, err
		}
		e := core.New(groups, core.Config{OnResult: func(r core.Result) {
			s.results = append(s.results, r)
		}})
		s.engines = append(s.engines, e)
		s.byKey[qs[0].Key] = append(s.byKey[qs[0].Key], e)
	}
	return s, nil
}

// Name implements System.
func (s *partitioned) Name() string { return s.name }

// Process implements System. Every partition of the event's key runs its own
// slicing — the per-event cost grows with the number of distinct function
// sets, which is the effect Figure 9 measures.
func (s *partitioned) Process(ev event.Event) {
	for _, e := range s.byKey[ev.Key] {
		e.Process(ev)
	}
}

// AdvanceTo implements System.
func (s *partitioned) AdvanceTo(t int64) {
	for _, e := range s.engines {
		e.AdvanceTo(t)
	}
}

// Results implements System.
func (s *partitioned) Results() []core.Result {
	r := s.results
	s.results = nil
	return r
}

// Calculations implements System.
func (s *partitioned) Calculations() uint64 {
	var n uint64
	for _, e := range s.engines {
		n += e.Stats().Calculations
	}
	return n
}

// Slices implements System.
func (s *partitioned) Slices() uint64 {
	var n uint64
	for _, e := range s.engines {
		n += e.Stats().Slices
	}
	return n
}

// NumPartitions reports the number of independent query-groups the system
// maintains — DeSW's "number of individual query-groups" (§6.3).
func (s *partitioned) NumPartitions() int { return len(s.engines) }
