package baseline

import (
	"io"
	"sort"
	"sync"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
)

func sortEventsByTime(evs []event.Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
}

// CentralConfig shapes a CentralCluster or DiscoCluster topology.
type CentralConfig struct {
	// Locals is the number of stream-ingesting nodes.
	Locals int
	// Intermediates relay (CentralCluster) or merge (DiscoCluster); zero
	// connects locals directly to the root.
	Intermediates int
	// Codec defaults to message.Binary{}; Disco defaults to message.Text{}.
	Codec message.Codec
	// Bandwidth throttles each link in bytes/second; zero is unlimited.
	Bandwidth float64
	// Buffer is the per-link queue depth (default 256).
	Buffer int
	// BatchSize coalesces forwarded events (default 256).
	BatchSize int
}

func (c *CentralConfig) defaults(codec message.Codec) {
	if c.Locals <= 0 {
		c.Locals = 1
	}
	if c.Codec == nil {
		c.Codec = codec
	}
	if c.Buffer <= 0 {
		c.Buffer = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
}

// CentralCluster deploys a centralized System (Scotty or CeBuffer) on a
// decentralized topology: every node below the root only forwards raw
// events upward (§6.1.1: "only the root node processes events; other nodes
// collect events ... and send data to parent nodes directly").
type CentralCluster struct {
	cfg    CentralConfig
	sys    System
	sysMu  sync.Mutex
	feeder *eventFeeder

	locals     []*fwdLocal
	localConns []message.Conn
	interConns []message.Conn
	wg         sync.WaitGroup
	interPumps []*sync.WaitGroup
	closed     bool
}

// fwdLocal batches and forwards its stream.
type fwdLocal struct {
	id   uint32
	conn message.Conn
	buf  []event.Event
	max  int
	wm   int64
	err  error
}

func (l *fwdLocal) push(evs []event.Event) error {
	for _, ev := range evs {
		l.buf = append(l.buf, ev)
		if ev.Time > l.wm {
			l.wm = ev.Time
		}
		if len(l.buf) >= l.max {
			l.flush()
		}
	}
	return l.err
}

func (l *fwdLocal) flush() {
	if len(l.buf) == 0 || l.err != nil {
		return
	}
	l.err = l.conn.Send(&message.Message{Kind: message.KindEventBatch, From: l.id, Events: l.buf})
	l.buf = nil
}

func (l *fwdLocal) advance(t int64) error {
	if t > l.wm {
		l.wm = t
	}
	l.flush()
	if l.err != nil {
		return l.err
	}
	l.err = l.conn.Send(&message.Message{Kind: message.KindWatermark, From: l.id, Watermark: l.wm})
	return l.err
}

// NewCentralCluster deploys sys at the root of the topology.
func NewCentralCluster(sys System, cfg CentralConfig) *CentralCluster {
	cfg.defaults(message.Binary{})
	c := &CentralCluster{cfg: cfg, sys: sys}

	// The feeder keys both event streams and watermarks by ORIGIN local id
	// — relays forward messages verbatim, preserving it.
	var feederChildren []uint32
	for i := 0; i < cfg.Locals; i++ {
		feederChildren = append(feederChildren, uint32(1+i))
	}
	c.feeder = newEventFeeder(feederChildren,
		func(evs []event.Event) {
			for _, ev := range evs {
				c.sys.Process(ev)
			}
		},
		func(w int64) { c.sys.AdvanceTo(w) },
	)

	newPipe := func() (*message.Pipe, *message.Pipe) {
		if cfg.Bandwidth > 0 {
			return message.NewThrottledPipe(cfg.Codec, cfg.Buffer, cfg.Bandwidth)
		}
		return message.NewPipe(cfg.Codec, cfg.Buffer)
	}

	// relay pumps child->parent verbatim; byte accounting via the uplink.
	type relay struct {
		up    message.Conn
		pumps *sync.WaitGroup
	}
	var relays []*relay
	for i := 0; i < cfg.Intermediates; i++ {
		up, rootSide := newPipe()
		c.interConns = append(c.interConns, up)
		r := &relay{up: up, pumps: &sync.WaitGroup{}}
		relays = append(relays, r)
		c.interPumps = append(c.interPumps, r.pumps)
		c.pumpToRoot(rootSide)
	}

	for i := 0; i < cfg.Locals; i++ {
		up, parentSide := newPipe()
		c.localConns = append(c.localConns, up)
		c.locals = append(c.locals, &fwdLocal{id: uint32(1 + i), conn: up, max: cfg.BatchSize})
		if cfg.Intermediates > 0 {
			r := relays[i%cfg.Intermediates]
			c.wg.Add(1)
			r.pumps.Add(1)
			go func(conn message.Conn, up message.Conn) {
				defer c.wg.Done()
				defer r.pumps.Done()
				for {
					m, err := conn.Recv()
					if err != nil {
						return
					}
					if err := up.Send(m); err != nil {
						return
					}
				}
			}(parentSide, r.up)
		} else {
			c.pumpToRoot(parentSide)
		}
	}
	// Close relays' uplinks once their children drained.
	for i := range relays {
		r := relays[i]
		go func() {
			r.pumps.Wait()
			r.up.Close()
		}()
	}
	return c
}

func (c *CentralCluster) pumpToRoot(conn message.Conn) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			m, err := conn.Recv()
			if err == io.EOF || err != nil {
				return
			}
			c.sysMu.Lock()
			switch m.Kind {
			case message.KindEventBatch:
				c.feeder.events(m.From, m.Events)
			case message.KindWatermark:
				// Watermarks arriving via a relay still carry the origin
				// local's id.
				c.feeder.watermark(m.From, m.Watermark)
			}
			c.sysMu.Unlock()
		}
	}()
}

// Push implements Deployment.
func (c *CentralCluster) Push(i int, evs []event.Event) error {
	return c.locals[i].push(evs)
}

// Advance implements Deployment.
func (c *CentralCluster) Advance(i int, t int64) error { return c.locals[i].advance(t) }

// AdvanceAll implements Deployment.
func (c *CentralCluster) AdvanceAll(t int64) error {
	for _, l := range c.locals {
		if err := l.advance(t); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Deployment.
func (c *CentralCluster) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	for _, l := range c.locals {
		l.flush()
		l.conn.Close()
	}
	c.wg.Wait()
	return nil
}

// Results implements Deployment.
func (c *CentralCluster) Results() []core.Result {
	c.sysMu.Lock()
	defer c.sysMu.Unlock()
	return c.sys.Results()
}

// NetworkBytes implements Deployment.
func (c *CentralCluster) NetworkBytes() (localBytes, intermediateBytes uint64) {
	for _, conn := range c.localConns {
		localBytes += conn.BytesSent()
	}
	for _, conn := range c.interConns {
		intermediateBytes += conn.BytesSent()
	}
	return localBytes, intermediateBytes
}

// NumLocals implements Deployment.
func (c *CentralCluster) NumLocals() int { return len(c.locals) }

// RootTime implements Deployment.
func (c *CentralCluster) RootTime() int64 {
	c.sysMu.Lock()
	defer c.sysMu.Unlock()
	return c.feeder.wm
}
