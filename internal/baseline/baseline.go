// Package baseline implements the five comparison systems of the paper's
// evaluation (§6.1.1):
//
//   - CeBuffer  — central buffers per window, no incremental aggregation;
//   - Scotty    — central slicing that shares partial results only between
//     windows with the same aggregation functions;
//   - Disco     — decentralized Scotty: slicing on local nodes only,
//     per-window partial results on the wire, string message encoding;
//   - DeBucket  — Desis' architecture with one incremental bucket per
//     window and no sharing at all;
//   - DeSW      — Desis' architecture sharing only between windows with the
//     same aggregation functions and window measures.
//
// All central systems implement System so the benchmark harness can drive
// them interchangeably; the decentralized comparisons are provided by
// CentralCluster (Scotty/CeBuffer behind event forwarding) and DiscoCluster.
package baseline

import (
	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/query"
)

// System is a single-node stream processor under test.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Process ingests one event (time-ordered).
	Process(ev event.Event)
	// AdvanceTo moves event time to t, firing pending windows.
	AdvanceTo(t int64)
	// Results returns and clears the window results produced so far.
	Results() []core.Result
	// Calculations reports aggregation-operator executions, the metric of
	// Figures 9b/9d/9f.
	Calculations() uint64
	// Slices reports produced slices (buckets count as one slice per
	// window), the metric of Figures 8b/8d.
	Slices() uint64
}

// Desis wraps the core aggregation engine as a System — the full
// cross-query, cross-function sharing under test.
type Desis struct {
	e *core.Engine
}

// NewDesis builds the Desis system for the queries.
func NewDesis(queries []query.Query) (*Desis, error) {
	groups, err := query.Analyze(queries, query.Options{})
	if err != nil {
		return nil, err
	}
	return &Desis{e: core.New(groups, core.Config{})}, nil
}

// Name implements System.
func (d *Desis) Name() string { return "Desis" }

// Process implements System.
func (d *Desis) Process(ev event.Event) { d.e.Process(ev) }

// AdvanceTo implements System.
func (d *Desis) AdvanceTo(t int64) { d.e.AdvanceTo(t) }

// Results implements System.
func (d *Desis) Results() []core.Result { return d.e.Results() }

// Calculations implements System.
func (d *Desis) Calculations() uint64 { return d.e.Stats().Calculations }

// Slices implements System.
func (d *Desis) Slices() uint64 { return d.e.Stats().Slices }

// Engine exposes the wrapped engine for harness instrumentation.
func (d *Desis) Engine() *core.Engine { return d.e }
