package baseline

import (
	"desis/internal/core"
	"desis/internal/event"
)

// Deployment is a running decentralized topology under test; node.Cluster
// (Desis), CentralCluster (Scotty/CeBuffer behind forwarding), and
// DiscoCluster all satisfy it, so the network and scalability experiments
// (§6.2.2, §6.4, §6.5.2) drive every system identically.
type Deployment interface {
	// Push feeds in-order events to local node i.
	Push(i int, evs []event.Event) error
	// Advance advances event time on local node i to t; feeders call it
	// periodically so watermarks flow while data is still streaming. It is
	// safe to call concurrently for different i.
	Advance(i int, t int64) error
	// AdvanceAll advances event time on every local node to t.
	AdvanceAll(t int64) error
	// Close drains and shuts the topology down.
	Close() error
	// Results returns and clears final window results.
	Results() []core.Result
	// NetworkBytes reports bytes sent by the local layer and by the
	// intermediate layer.
	NetworkBytes() (localBytes, intermediateBytes uint64)
	// NumLocals reports the number of local nodes.
	NumLocals() int
	// RootTime reports how far the root's processing has advanced in event
	// time — the signal latency measurements wait on.
	RootTime() int64
}

// eventFeeder merges per-child raw event streams in watermark order and
// feeds them to a consumer — the root-side intake of centralized systems.
type eventFeeder struct {
	children map[uint32]int64 // watermark per child
	bufs     map[uint32][]event.Event
	feed     func([]event.Event)
	advance  func(int64)
	wm       int64
}

func newEventFeeder(children []uint32, feed func([]event.Event), advance func(int64)) *eventFeeder {
	f := &eventFeeder{
		children: make(map[uint32]int64),
		bufs:     make(map[uint32][]event.Event),
		feed:     feed,
		advance:  advance,
	}
	for _, id := range children {
		f.children[id] = -1
	}
	return f
}

func (f *eventFeeder) events(from uint32, evs []event.Event) {
	f.bufs[from] = append(f.bufs[from], evs...)
}

func (f *eventFeeder) watermark(from uint32, w int64) {
	if old, ok := f.children[from]; !ok || w <= old {
		if !ok {
			return
		}
		if w <= old {
			return
		}
	}
	f.children[from] = w
	min := int64(-1)
	first := true
	for _, cw := range f.children {
		if first || cw < min {
			min, first = cw, false
		}
	}
	if first || min <= f.wm {
		return
	}
	f.wm = min
	var merged []event.Event
	for id, buf := range f.bufs {
		n := 0
		for n < len(buf) && buf[n].Time <= min {
			n++
		}
		if n > 0 {
			merged = append(merged, buf[:n]...)
			f.bufs[id] = buf[n:]
		}
	}
	sortEventsByTime(merged)
	if len(merged) > 0 {
		f.feed(merged)
	}
	f.advance(min)
}
