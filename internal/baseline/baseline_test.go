package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/query"
)

// runSystem drives a System over a stream and drains it.
func runSystem(t *testing.T, sys System, evs []event.Event, advTo int64) []core.Result {
	t.Helper()
	for _, ev := range evs {
		sys.Process(ev)
	}
	sys.AdvanceTo(advTo)
	return sys.Results()
}

func resultKey(r core.Result) string {
	return fmt.Sprintf("q%d[%d,%d)", r.QueryID, r.Start, r.End)
}

func compareToDesis(t *testing.T, sys System, queries []query.Query, evs []event.Event, advTo int64) {
	t.Helper()
	d, err := NewDesis(queries)
	if err != nil {
		t.Fatal(err)
	}
	want := runSystem(t, d, evs, advTo)
	got := runSystem(t, sys, evs, advTo)
	wm := map[string]core.Result{}
	for _, r := range want {
		wm[resultKey(r)] = r
	}
	gm := map[string]core.Result{}
	for _, r := range got {
		gm[resultKey(r)] = r
	}
	for k, w := range wm {
		g, ok := gm[k]
		if !ok {
			t.Errorf("%s: missing %s (count %d)", sys.Name(), k, w.Count)
			continue
		}
		if g.Count != w.Count {
			t.Errorf("%s %s: count %d, want %d", sys.Name(), k, g.Count, w.Count)
		}
		for i := range w.Values {
			if g.Values[i].OK != w.Values[i].OK {
				t.Errorf("%s %s %v: ok %v, want %v", sys.Name(), k, w.Values[i].Spec, g.Values[i].OK, w.Values[i].OK)
				continue
			}
			if w.Values[i].OK && math.Abs(g.Values[i].Value-w.Values[i].Value) > 1e-9*(1+math.Abs(w.Values[i].Value)) {
				t.Errorf("%s %s %v: %g, want %g", sys.Name(), k, w.Values[i].Spec, g.Values[i].Value, w.Values[i].Value)
			}
		}
	}
	for k := range gm {
		if _, ok := wm[k]; !ok {
			t.Errorf("%s: extra result %s (count %d)", sys.Name(), k, gm[k].Count)
		}
	}
}

func testQueries(t *testing.T) []query.Query {
	t.Helper()
	specs := []string{
		"tumbling(100ms) average key=0",
		"sliding(150ms,50ms) sum key=0",
		"tumbling(200ms) median key=0",
		"session(60ms) count,max key=0",
		"userdefined max,count key=0",
		"tumbling(16ev) sum key=0",
		"sliding(10ev,5ev) min key=0",
		"tumbling(500ms) quantile(0.9) key=0",
		"tumbling(100ms) sum key=1 value>=50",
	}
	var qs []query.Query
	for i, s := range specs {
		q := query.MustParse(s)
		q.ID = uint64(i + 1)
		qs = append(qs, q)
	}
	return qs
}

func testStream(seed int64, n int) ([]event.Event, int64) {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]event.Event, 0, n)
	tm := int64(2)
	for i := 0; i < n; i++ {
		tm += 1 + int64(rng.Intn(11))
		ev := event.Event{Time: tm, Key: uint32(rng.Intn(2)), Value: rng.Float64() * 100}
		if rng.Intn(37) == 0 {
			ev.Marker = event.MarkerBoundary
			ev.Value = 0
		}
		evs = append(evs, ev)
	}
	return evs, tm + 5000
}

func TestCeBufferMatchesDesis(t *testing.T) {
	qs := testQueries(t)
	evs, adv := testStream(1, 700)
	sys, err := NewCeBuffer(qs)
	if err != nil {
		t.Fatal(err)
	}
	compareToDesis(t, sys, qs, evs, adv)
}

func TestDeBucketMatchesDesis(t *testing.T) {
	qs := testQueries(t)
	evs, adv := testStream(2, 700)
	sys, err := NewDeBucket(qs)
	if err != nil {
		t.Fatal(err)
	}
	compareToDesis(t, sys, qs, evs, adv)
}

func TestDeSWMatchesDesis(t *testing.T) {
	qs := testQueries(t)
	evs, adv := testStream(3, 700)
	sys, err := NewDeSW(qs)
	if err != nil {
		t.Fatal(err)
	}
	compareToDesis(t, sys, qs, evs, adv)
}

func TestScottyMatchesDesis(t *testing.T) {
	qs := testQueries(t)
	evs, adv := testStream(4, 700)
	sys, err := NewScotty(qs)
	if err != nil {
		t.Fatal(err)
	}
	compareToDesis(t, sys, qs, evs, adv)
}

func TestPartitionCounts(t *testing.T) {
	// 100 quantile queries with distinct arguments: DeSW keeps 100 groups,
	// Desis one (§6.3.2 / Figure 9c-d).
	var qs []query.Query
	for i := 0; i < 100; i++ {
		q := query.MustParse(fmt.Sprintf("tumbling(100ms) quantile(0.%03d)", i+100))
		q.ID = uint64(i + 1)
		qs = append(qs, q)
	}
	sys, err := NewDeSW(qs)
	if err != nil {
		t.Fatal(err)
	}
	if n := sys.(*partitioned).NumPartitions(); n != 100 {
		t.Errorf("DeSW partitions = %d, want 100", n)
	}
	d, err := NewDesis(qs)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Engine().NumGroups(); n != 1 {
		t.Errorf("Desis groups = %d, want 1", n)
	}
	// Same functions, different measures: DeSW splits, Scotty shares.
	timeQ := query.MustParse("tumbling(100ms) sum")
	timeQ.ID = 1
	countQ := query.MustParse("tumbling(100ev) sum")
	countQ.ID = 2
	sw, _ := NewDeSW([]query.Query{timeQ, countQ})
	if n := sw.(*partitioned).NumPartitions(); n != 2 {
		t.Errorf("DeSW measure partitions = %d, want 2", n)
	}
	sc, _ := NewScotty([]query.Query{timeQ, countQ})
	if n := sc.(*partitioned).NumPartitions(); n != 1 {
		t.Errorf("Scotty measure partitions = %d, want 1", n)
	}
}

func TestCalculationCounts(t *testing.T) {
	// avg + sum: Desis executes 2 operators per event, DeSW 3 (Figure 9b);
	// CeBuffer recomputes at window end but still pays per event overall.
	avg := query.MustParse("tumbling(100ms) average")
	avg.ID = 1
	sum := query.MustParse("tumbling(100ms) sum")
	sum.ID = 2
	qs := []query.Query{avg, sum}
	evs := make([]event.Event, 1000)
	for i := range evs {
		evs[i] = event.Event{Time: int64(i), Value: 1}
	}
	d, _ := NewDesis(qs)
	runSystem(t, d, evs, 1000)
	if got := d.Calculations(); got != 2000 {
		t.Errorf("Desis calculations = %d, want 2000", got)
	}
	sw, _ := NewDeSW(qs)
	runSystem(t, sw, evs, 1000)
	if got := sw.Calculations(); got != 3000 {
		t.Errorf("DeSW calculations = %d, want 3000", got)
	}
	db, _ := NewDeBucket(qs)
	runSystem(t, db, evs, 1000)
	if got := db.Calculations(); got != 3000 {
		t.Errorf("DeBucket calculations = %d, want 3000", got)
	}
}

func TestSliceCounts(t *testing.T) {
	// Tumbling windows 10..50ms over 600ms: Desis covers them with one
	// slice stream; DeBucket produces one slice per window (Figure 8b).
	var qs []query.Query
	for i := 1; i <= 5; i++ {
		q := query.MustParse(fmt.Sprintf("tumbling(%dms) sum", i*10))
		q.ID = uint64(i)
		qs = append(qs, q)
	}
	evs := make([]event.Event, 601)
	for i := range evs {
		evs[i] = event.Event{Time: int64(i), Value: 1}
	}
	d, _ := NewDesis(qs)
	runSystem(t, d, evs, 600)
	db, _ := NewDeBucket(qs)
	runSystem(t, db, evs, 600)
	// Desis: distinct boundaries (multiples of 10 in (0,600]) = 60.
	if got := d.Slices(); got != 60 {
		t.Errorf("Desis slices = %d, want 60", got)
	}
	// DeBucket: one bucket per window = 60+30+20+15+12 = 137.
	if got := db.Slices(); got != 137 {
		t.Errorf("DeBucket slices = %d, want 137", got)
	}
}

// --- Decentralized deployments ---

func splitStream(evs []event.Event, n int) [][]event.Event {
	out := make([][]event.Event, n)
	i := 0
	for _, ev := range evs {
		if ev.Marker != event.MarkerNone {
			for j := range out {
				out[j] = append(out[j], ev)
			}
			continue
		}
		out[i%n] = append(out[i%n], ev)
		i++
	}
	return out
}

func runDeployment(t *testing.T, d Deployment, evs []event.Event, advTo int64) []core.Result {
	t.Helper()
	streams := splitStream(evs, d.NumLocals())
	const chunk = 50
	for off := 0; ; off += chunk {
		busy := false
		var maxT int64
		for i, s := range streams {
			if off >= len(s) {
				continue
			}
			hi := off + chunk
			if hi > len(s) {
				hi = len(s)
			}
			if err := d.Push(i, s[off:hi]); err != nil {
				t.Fatal(err)
			}
			if tm := s[hi-1].Time; tm > maxT {
				maxT = tm
			}
			busy = true
		}
		if !busy {
			break
		}
		if err := d.AdvanceAll(maxT); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AdvanceAll(advTo); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return d.Results()
}

func TestCentralClusterMatchesDesis(t *testing.T) {
	qs := testQueries(t)
	evs, adv := testStream(5, 500)
	// The central root sees the union of the local streams, in which every
	// generator emitted its own copy of each marker — rebuild that exact
	// merged stream for the reference run.
	streams := splitStream(evs, 3)
	var merged []event.Event
	for _, s := range streams {
		merged = append(merged, s...)
	}
	sortEventsByTime(merged)
	want := func() []core.Result {
		d, err := NewDesis(qs)
		if err != nil {
			t.Fatal(err)
		}
		return runSystem(t, d, merged, adv)
	}()
	sys, err := NewScotty(qs)
	if err != nil {
		t.Fatal(err)
	}
	cc := NewCentralCluster(sys, CentralConfig{Locals: 3, Intermediates: 1})
	got := runDeployment(t, cc, evs, adv)
	if len(got) != len(want) {
		t.Fatalf("central cluster: %d results, want %d", len(got), len(want))
	}
	local, inter := cc.NetworkBytes()
	if local == 0 || inter == 0 {
		t.Errorf("network bytes: local=%d inter=%d", local, inter)
	}
	// Centralized systems forward everything: local and intermediate
	// layers carry (almost) the same volume (§6.4.1).
	ratio := float64(inter) / float64(local)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("central forwarding ratio = %.2f, want ~1", ratio)
	}
}

func TestDiscoClusterCorrectAndPerWindow(t *testing.T) {
	tq := query.MustParse("tumbling(100ms) average")
	tq.ID = 1
	sq := query.MustParse("sliding(200ms,50ms) average")
	sq.ID = 2
	qs := []query.Query{tq, sq}
	evs := make([]event.Event, 1000)
	for i := range evs {
		evs[i] = event.Event{Time: int64(i), Value: float64(i % 7)}
	}
	dc, err := NewDiscoCluster(qs, CentralConfig{Locals: 2, Intermediates: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := runDeployment(t, dc, evs, 2000)

	d, err := NewDesis(qs)
	if err != nil {
		t.Fatal(err)
	}
	want := runSystem(t, d, evs, 2000)
	gm := map[string]core.Result{}
	for _, r := range got {
		gm[resultKey(r)] = r
	}
	for _, w := range want {
		g, ok := gm[resultKey(w)]
		if !ok {
			t.Errorf("disco missing %s", resultKey(w))
			continue
		}
		if g.Count != w.Count || math.Abs(g.Values[0].Value-w.Values[0].Value) > 1e-9 {
			t.Errorf("disco %s: count %d value %g, want %d %g",
				resultKey(w), g.Count, g.Values[0].Value, w.Count, w.Values[0].Value)
		}
	}
}

func TestDiscoRejectsDynamicWindows(t *testing.T) {
	q := query.MustParse("session(10s) sum")
	q.ID = 1
	if _, err := NewDiscoCluster([]query.Query{q}, CentralConfig{Locals: 1}); err == nil {
		t.Error("disco accepted a session window")
	}
}

func TestDiscoSendsMoreThanDesisPerSlice(t *testing.T) {
	// Ten concurrent sliding windows that share every slice boundary:
	// Disco ships one partial per window per query while Desis ships one
	// partial per shared slice (§5, Figure 11d).
	var qs []query.Query
	for i := 1; i <= 10; i++ {
		q := query.MustParse(fmt.Sprintf("sliding(%dms,100ms) average", i*100))
		q.ID = uint64(i)
		qs = append(qs, q)
	}
	evs := make([]event.Event, 5000)
	for i := range evs {
		evs[i] = event.Event{Time: int64(i), Value: float64(i) * 1.37}
	}
	dc, err := NewDiscoCluster(qs, CentralConfig{Locals: 2, Intermediates: 1})
	if err != nil {
		t.Fatal(err)
	}
	runDeployment(t, dc, evs, 10000)
	discoLocal, _ := dc.NetworkBytes()

	groups, err := query.Analyze(qs, query.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	desisBytes := desisClusterBytes(t, groups, evs)
	if discoLocal < 3*desisBytes {
		t.Errorf("disco local bytes %d not well above desis %d", discoLocal, desisBytes)
	}
}
