package baseline

import (
	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/query"
	"desis/internal/window"
)

// bucketSystem is the shared machinery of CeBuffer and DeBucket: one state
// per query, one bucket per concurrent window, no sharing of any kind. With
// buffered=true every window keeps its raw events and aggregates by
// iterating the buffer at window end (CeBuffer); otherwise each window holds
// an incrementally-updated aggregate (DeBucket).
type bucketSystem struct {
	name     string
	buffered bool
	queries  []*perQuery
	byKey    map[uint32][]*perQuery
	results  []core.Result
	calcs    uint64
	slices   uint64
}

// NewCeBuffer builds the central-buffer baseline: per-window event buffers,
// no incremental aggregation (§6.1.1).
func NewCeBuffer(queries []query.Query) (System, error) {
	return newBucketSystem("CeBuffer", true, queries)
}

// NewDeBucket builds the Desis-bucket baseline: per-window incremental
// aggregates, no sharing between windows (§6.1.1).
func NewDeBucket(queries []query.Query) (System, error) {
	return newBucketSystem("DeBucket", false, queries)
}

func newBucketSystem(name string, buffered bool, queries []query.Query) (*bucketSystem, error) {
	s := &bucketSystem{name: name, buffered: buffered, byKey: make(map[uint32][]*perQuery)}
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		pq := &perQuery{sys: s, q: q, ops: q.Operators() | operator.OpCount}
		s.queries = append(s.queries, pq)
		s.byKey[q.Key] = append(s.byKey[q.Key], pq)
	}
	return s, nil
}

// Name implements System.
func (s *bucketSystem) Name() string { return s.name }

// Process implements System.
func (s *bucketSystem) Process(ev event.Event) {
	for _, pq := range s.byKey[ev.Key] {
		pq.process(ev)
	}
}

// AdvanceTo implements System.
func (s *bucketSystem) AdvanceTo(t int64) {
	for _, pq := range s.queries {
		pq.advance(t)
	}
}

// Results implements System.
func (s *bucketSystem) Results() []core.Result {
	r := s.results
	s.results = nil
	return r
}

// Calculations implements System.
func (s *bucketSystem) Calculations() uint64 { return s.calcs }

// Slices implements System. Every bucket is one slice: these systems cover
// each window with exactly one slice (Figure 8b).
func (s *bucketSystem) Slices() uint64 { return s.slices }

// bucket is one concurrent window's private state.
type bucket struct {
	start, end int64 // event-time extent; end known upfront for fixed
	cstart     int64 // count-axis start (count windows)
	agg        operator.Agg
	buf        []float64
}

// perQuery drives the window lifecycle of a single query.
type perQuery struct {
	sys  *bucketSystem
	q    query.Query
	ops  operator.Op
	open []*bucket

	started   bool
	nextStart int64 // next fixed window start boundary
	count     int64
	sessions  window.Sessions
}

func (p *perQuery) process(ev event.Event) {
	t := ev.Time
	if !p.started {
		p.start(t)
	}
	p.advance(t)
	if ev.Marker != event.MarkerNone {
		if p.q.Type == query.UserDefined {
			p.marker(t)
		}
		return
	}
	switch {
	case p.q.Type == query.Session:
		p.sessions.Observe(t)
		if len(p.open) == 0 {
			p.open = append(p.open, p.newBucket(t, 0))
		}
	case p.q.Type == query.UserDefined:
		if len(p.open) == 0 {
			p.open = append(p.open, p.newBucket(t, 0))
		}
	case p.q.Measure == query.Count:
		step := p.q.Length
		if p.q.Type == query.Sliding {
			step = p.q.Slide
		}
		if p.count%step == 0 {
			p.open = append(p.open, p.newBucket(t, p.count))
		}
	}
	if p.q.Pred.Matches(ev.Value) {
		for _, b := range p.open {
			p.add(b, ev.Value)
		}
	}
	p.count++
	if p.q.Measure == query.Count {
		kept := p.open[:0]
		for _, b := range p.open {
			if b.cstart+p.q.Length == p.count {
				p.close(b, b.cstart, p.count)
			} else {
				kept = append(kept, b)
			}
		}
		// Zero the dead tail so closed buckets do not stay reachable past
		// len for the stream's lifetime.
		clear(p.open[len(kept):])
		p.open = kept
	}
}

func (p *perQuery) start(t int64) {
	p.started = true
	switch {
	case p.q.Type == query.Session:
		p.sessions.Add(0, p.q.Gap)
	case p.q.Type == query.UserDefined:
		// Marker-driven; no calendar state.
	case p.q.Measure == query.Time:
		// Open every fixed window that overlaps the first event.
		length, slide := p.q.Length, p.q.Length
		if p.q.Type == query.Sliding {
			slide = p.q.Slide
		}
		k := int64(0)
		if t >= length {
			k = (t-length)/slide + 1
		}
		for ; k*slide <= t; k++ {
			p.open = append(p.open, p.newBucket(k*slide, 0))
		}
		p.nextStart = k * slide
	}
}

// advance fires fixed boundaries and session expiries at or before t.
func (p *perQuery) advance(t int64) {
	if !p.started {
		return
	}
	switch {
	case p.q.Type == query.Session:
		p.sessions.ExpireBefore(t, func(_ int, start, end int64) {
			if len(p.open) == 1 {
				b := p.open[0]
				p.open = p.open[:0]
				p.close(b, b.start, end)
			}
		})
	case p.q.Measure == query.Time && p.q.Type != query.UserDefined:
		slide := p.q.Length
		if p.q.Type == query.Sliding {
			slide = p.q.Slide
		}
		for {
			minEnd := int64(window.NoBoundary)
			if len(p.open) > 0 {
				minEnd = p.open[0].end
			}
			b := p.nextStart
			if minEnd < b {
				b = minEnd
			}
			if b > t {
				return
			}
			if b == p.nextStart {
				p.open = append(p.open, p.newBucket(b, 0))
				p.nextStart += slide
			}
			if b == minEnd {
				w := p.open[0]
				p.open = p.open[1:]
				p.close(w, w.start, w.end)
			}
		}
	}
}

func (p *perQuery) marker(t int64) {
	if len(p.open) == 1 {
		b := p.open[0]
		p.open = p.open[:0]
		p.close(b, b.start, t)
	}
	// The next user-defined window opens at the marker.
	p.open = append(p.open, p.newBucket(t, 0))
}

func (p *perQuery) newBucket(start, cstart int64) *bucket {
	b := &bucket{start: start, cstart: cstart}
	if p.q.Measure == query.Time && p.q.Type != query.Session && p.q.Type != query.UserDefined {
		b.end = start + p.q.Length
	}
	if !p.sys.buffered {
		b.agg.Reset(p.ops)
	}
	return b
}

// add folds one event into a window. DeBucket pays the operator cost here;
// CeBuffer only appends and pays at window end.
func (p *perQuery) add(b *bucket, v float64) {
	if p.sys.buffered {
		b.buf = append(b.buf, v)
		return
	}
	b.agg.Add(v)
	p.sys.calcs += uint64(p.q.Operators().NumOps())
}

// close finishes a window and emits its result.
func (p *perQuery) close(b *bucket, start, end int64) {
	p.sys.slices++
	if p.sys.buffered {
		// CeBuffer iterates the whole buffer now.
		b.agg.Reset(p.ops)
		for _, v := range b.buf {
			b.agg.Add(v)
		}
		p.sys.calcs += uint64(len(b.buf)) * uint64(p.q.Operators().NumOps())
	}
	b.agg.Finish()
	values := make([]core.FuncValue, len(p.q.Funcs))
	for i, spec := range p.q.Funcs {
		v, ok := b.agg.Eval(spec)
		values[i] = core.FuncValue{Spec: spec, Value: v, OK: ok}
	}
	p.sys.results = append(p.sys.results, core.Result{
		QueryID: p.q.ID,
		Start:   start,
		End:     end,
		Count:   b.agg.CountV,
		Values:  values,
	})
}
