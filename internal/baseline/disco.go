package baseline

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/message"
	"desis/internal/operator"
	"desis/internal/query"
)

// DiscoCluster deploys the Disco baseline (§6.1.1): a decentralized system
// that runs Scotty-style slicing on the local nodes only, ships one partial
// result PER WINDOW (not per slice) upward, merges windows individually on
// intermediate and root nodes without any cross-window sharing, and encodes
// its messages as strings. Fixed time-based windows only — the paper notes
// Disco "cannot efficiently share results between unfixed-size and
// fixed-size windows", and its decentralized experiments use tumbling
// windows.
type DiscoCluster struct {
	cfg     CentralConfig
	queries map[uint64]query.Query

	locals     []*discoLocal
	localConns []message.Conn
	interConns []message.Conn

	rootMu  sync.Mutex
	rootMrg *windowMerger
	results []core.Result

	wg         sync.WaitGroup
	interPumps []*sync.WaitGroup
	closed     bool
}

// NewDiscoCluster builds the topology. Every query must be a fixed
// time-based window.
func NewDiscoCluster(queries []query.Query, cfg CentralConfig) (*DiscoCluster, error) {
	cfg.defaults(message.Text{})
	for _, q := range queries {
		if q.Measure != query.Time || (q.Type != query.Tumbling && q.Type != query.Sliding) {
			return nil, fmt.Errorf("baseline: disco supports fixed time-based windows, got %v", q)
		}
	}
	c := &DiscoCluster{cfg: cfg, queries: make(map[uint64]query.Query)}
	for _, q := range queries {
		c.queries[q.ID] = q
	}

	newPipe := func() (*message.Pipe, *message.Pipe) {
		if cfg.Bandwidth > 0 {
			return message.NewThrottledPipe(cfg.Codec, cfg.Buffer, cfg.Bandwidth)
		}
		return message.NewPipe(cfg.Codec, cfg.Buffer)
	}

	// Root merges per-window partials from its direct children and
	// finalises them.
	var rootChildren []uint32
	if cfg.Intermediates > 0 {
		for i := 0; i < cfg.Intermediates; i++ {
			rootChildren = append(rootChildren, uint32(1001+i))
		}
	} else {
		for i := 0; i < cfg.Locals; i++ {
			rootChildren = append(rootChildren, uint32(1+i))
		}
	}
	c.rootMrg = newWindowMerger(rootChildren, func(p *core.SlicePartial) {
		c.finalize(p)
	}, nil)

	// Intermediates merge per-window partials from their children —
	// "overlapping windows are processed individually on intermediate and
	// center nodes without sharing results" (§1).
	type interNode struct {
		mu    sync.Mutex
		mrg   *windowMerger
		up    message.Conn
		pumps *sync.WaitGroup
	}
	var inters []*interNode
	for i := 0; i < cfg.Intermediates; i++ {
		up, rootSide := newPipe()
		c.interConns = append(c.interConns, up)
		in := &interNode{up: up, pumps: &sync.WaitGroup{}}
		id := uint32(1001 + i)
		var children []uint32
		for j := 0; j < cfg.Locals; j++ {
			if j%cfg.Intermediates == i {
				children = append(children, uint32(1+j))
			}
		}
		in.mrg = newWindowMerger(children, func(p *core.SlicePartial) {
			_ = up.Send(&message.Message{Kind: message.KindPartial, From: id, Partial: p})
		}, func(w int64) {
			_ = up.Send(&message.Message{Kind: message.KindWatermark, From: id, Watermark: w})
		})
		inters = append(inters, in)
		c.interPumps = append(c.interPumps, in.pumps)
		c.pumpToRoot(rootSide)
	}

	for i := 0; i < cfg.Locals; i++ {
		up, parentSide := newPipe()
		c.localConns = append(c.localConns, up)
		l, err := newDiscoLocal(uint32(1+i), queries, up)
		if err != nil {
			return nil, err
		}
		c.locals = append(c.locals, l)
		if cfg.Intermediates > 0 {
			in := inters[i%cfg.Intermediates]
			c.wg.Add(1)
			in.pumps.Add(1)
			go func(conn message.Conn, in *interNode) {
				defer c.wg.Done()
				defer in.pumps.Done()
				for {
					m, err := conn.Recv()
					if err != nil {
						return
					}
					in.mu.Lock()
					switch m.Kind {
					case message.KindPartial:
						in.mrg.handlePartial(m.From, m.Partial)
					case message.KindWatermark:
						in.mrg.handleWatermark(m.From, m.Watermark)
					}
					in.mu.Unlock()
				}
			}(parentSide, in)
		} else {
			c.pumpToRoot(parentSide)
		}
	}
	for i := range inters {
		in := inters[i]
		go func() {
			in.pumps.Wait()
			in.up.Close()
		}()
	}
	return c, nil
}

func (c *DiscoCluster) pumpToRoot(conn message.Conn) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			m, err := conn.Recv()
			if err == io.EOF || err != nil {
				return
			}
			c.rootMu.Lock()
			switch m.Kind {
			case message.KindPartial:
				c.rootMrg.handlePartial(m.From, m.Partial)
			case message.KindWatermark:
				c.rootMrg.handleWatermark(m.From, m.Watermark)
			}
			c.rootMu.Unlock()
		}
	}()
}

// finalize evaluates a fully merged window partial into a query result.
func (c *DiscoCluster) finalize(p *core.SlicePartial) {
	q, ok := c.queries[p.ID]
	if !ok {
		return
	}
	agg := &p.Aggs[0]
	agg.Finish()
	values := make([]core.FuncValue, len(q.Funcs))
	for i, spec := range q.Funcs {
		v, ok := agg.Eval(spec)
		values[i] = core.FuncValue{Spec: spec, Value: v, OK: ok}
	}
	c.results = append(c.results, core.Result{
		QueryID: q.ID, Start: p.Start, End: p.End, Count: agg.CountV, Values: values,
	})
}

// Push implements Deployment.
func (c *DiscoCluster) Push(i int, evs []event.Event) error { return c.locals[i].push(evs) }

// Advance implements Deployment.
func (c *DiscoCluster) Advance(i int, t int64) error { return c.locals[i].advance(t) }

// AdvanceAll implements Deployment.
func (c *DiscoCluster) AdvanceAll(t int64) error {
	for _, l := range c.locals {
		if err := l.advance(t); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Deployment.
func (c *DiscoCluster) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	for _, l := range c.locals {
		l.conn.Close()
	}
	c.wg.Wait()
	return nil
}

// Results implements Deployment.
func (c *DiscoCluster) Results() []core.Result {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	r := c.results
	c.results = nil
	return r
}

// NetworkBytes implements Deployment.
func (c *DiscoCluster) NetworkBytes() (localBytes, intermediateBytes uint64) {
	for _, conn := range c.localConns {
		localBytes += conn.BytesSent()
	}
	for _, conn := range c.interConns {
		intermediateBytes += conn.BytesSent()
	}
	return localBytes, intermediateBytes
}

// NumLocals implements Deployment.
func (c *DiscoCluster) NumLocals() int { return len(c.locals) }

// RootTime implements Deployment.
func (c *DiscoCluster) RootTime() int64 {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	return c.rootMrg.wm
}

// discoLocal runs per-function-partition slicing engines whose window
// results ship as per-window partial aggregates.
type discoLocal struct {
	id      uint32
	conn    message.Conn
	engines []*core.Engine
	byKey   map[uint32][]*core.Engine
	wm      int64
	err     error
}

func newDiscoLocal(id uint32, queries []query.Query, parent message.Conn) (*discoLocal, error) {
	l := &discoLocal{id: id, conn: parent, byKey: make(map[uint32][]*core.Engine)}
	parts := make(map[string][]query.Query)
	var order []string
	for _, q := range queries {
		k := partitionKey(q, false)
		if _, ok := parts[k]; !ok {
			order = append(order, k)
		}
		parts[k] = append(parts[k], q)
	}
	for _, k := range order {
		qs := parts[k]
		groups, err := query.Analyze(qs, query.Options{})
		if err != nil {
			return nil, err
		}
		e := core.New(groups, core.Config{OnWindowAgg: l.sendWindow})
		l.engines = append(l.engines, e)
		l.byKey[qs[0].Key] = append(l.byKey[qs[0].Key], e)
	}
	return l, nil
}

func (l *discoLocal) sendWindow(queryID uint64, start, end int64, agg *operator.Agg) {
	if l.err != nil {
		return
	}
	cp := *agg
	cp.Values = append([]float64(nil), agg.Values...)
	p := &core.SlicePartial{
		ID: queryID, Start: start, End: end, LastEvent: l.wm,
		Ingested: cp.CountV, Aggs: []operator.Agg{cp},
	}
	l.err = l.conn.Send(&message.Message{Kind: message.KindPartial, From: l.id, Partial: p})
}

func (l *discoLocal) push(evs []event.Event) error {
	for _, ev := range evs {
		if ev.Time > l.wm {
			l.wm = ev.Time
		}
		for _, e := range l.byKey[ev.Key] {
			e.Process(ev)
		}
	}
	return l.err
}

func (l *discoLocal) advance(t int64) error {
	if t > l.wm {
		l.wm = t
	}
	for _, e := range l.engines {
		e.AdvanceTo(l.wm)
	}
	if l.err != nil {
		return l.err
	}
	l.err = l.conn.Send(&message.Message{Kind: message.KindWatermark, From: l.id, Watermark: l.wm})
	return l.err
}

// windowMerger merges per-window partials by (query, start, end) — Disco's
// per-window granularity, as opposed to Desis' per-slice Merger.
type windowMerger struct {
	children map[uint32]int64
	pending  map[winKey]*winEntry
	out      func(*core.SlicePartial)
	outWM    func(int64)
	wm       int64
}

type winKey struct {
	query      uint64
	start, end int64
}

type winEntry struct {
	p    *core.SlicePartial
	seen int
}

func newWindowMerger(children []uint32, out func(*core.SlicePartial), outWM func(int64)) *windowMerger {
	m := &windowMerger{
		children: make(map[uint32]int64),
		pending:  make(map[winKey]*winEntry),
		out:      out,
		outWM:    outWM,
	}
	for _, id := range children {
		m.children[id] = -1
	}
	return m
}

func (m *windowMerger) handlePartial(from uint32, p *core.SlicePartial) {
	k := winKey{p.ID, p.Start, p.End}
	e, ok := m.pending[k]
	if !ok {
		e = &winEntry{p: p}
		m.pending[k] = e
	} else {
		e.p.Aggs[0].Merge(&p.Aggs[0])
		e.p.Ingested += p.Ingested
	}
	e.seen++
	if e.seen >= len(m.children) {
		delete(m.pending, k)
		m.out(e.p)
	}
}

func (m *windowMerger) handleWatermark(from uint32, w int64) {
	if old, ok := m.children[from]; !ok || w <= old {
		return
	}
	m.children[from] = w
	min := int64(-1)
	first := true
	for _, cw := range m.children {
		if first || cw < min {
			min, first = cw, false
		}
	}
	if first || min <= m.wm {
		return
	}
	m.wm = min
	var flush []*winEntry
	for k, e := range m.pending {
		if k.end <= min {
			flush = append(flush, e)
			delete(m.pending, k)
		}
	}
	sort.Slice(flush, func(i, j int) bool {
		if flush[i].p.End != flush[j].p.End {
			return flush[i].p.End < flush[j].p.End
		}
		return flush[i].p.Start < flush[j].p.Start
	})
	for _, e := range flush {
		m.out(e.p)
	}
	if m.outWM != nil {
		m.outWM(min)
	}
}
