package plan

// DefaultRetention is how many applied deltas a History keeps for epoch-diff
// resync before falling back to full-plan resends.
const DefaultRetention = 256

// History owns the authoritative copy of a plan together with a bounded log
// of the deltas that produced its recent epochs. The root node holds one:
// each runtime catalog change applies here first and the resulting delta is
// broadcast; a reconnecting child reports its epoch and receives either the
// missing delta suffix (Since) or, when the log no longer reaches back far
// enough, the full plan.
type History struct {
	plan *Plan
	log  []Delta
	max  int
}

// NewHistory wraps a plan, taking ownership of it. The plan's catalog index
// is warmed here: a history exists to absorb runtime deltas.
func NewHistory(p *Plan) *History {
	p.Warm()
	return &History{plan: p, max: DefaultRetention}
}

// SetRetention bounds the delta log (minimum 1).
func (h *History) SetRetention(n int) {
	if n < 1 {
		n = 1
	}
	h.max = n
	h.trim()
}

// Plan returns the live plan. Callers must not mutate it; Clone before
// shipping it anywhere asynchronous.
func (h *History) Plan() *Plan { return h.plan }

// Epoch returns the current plan epoch.
func (h *History) Epoch() uint64 { return h.plan.Epoch }

// Apply applies one delta to the plan and records it in the log.
func (h *History) Apply(d Delta) error {
	if err := h.plan.Apply(d); err != nil {
		return err
	}
	h.log = append(h.log, d)
	h.trim()
	return nil
}

// trim compacts the log once it reaches twice the retention bound, keeping
// the newest max entries. Running to 2×max before copying makes Apply's cost
// amortized O(1) instead of an O(max) copy on every Apply at the bound;
// between compactions the log simply reaches a little further back (Since
// serves whatever suffix is present).
func (h *History) trim() {
	if len(h.log) < 2*h.max {
		return
	}
	h.log = append(h.log[:0:0], h.log[len(h.log)-h.max:]...)
}

// Since returns the deltas that advance a plan holder from epoch to the
// current epoch, oldest first. ok is false when the holder is too stale (or
// claims an epoch from a different lineage, e.g. after a root restart) and
// needs the full plan instead. The returned slice aliases the log; callers
// must not mutate it.
func (h *History) Since(epoch uint64) (deltas []Delta, ok bool) {
	cur := h.plan.Epoch
	if epoch == cur {
		return nil, true
	}
	if epoch > cur {
		return nil, false
	}
	need := cur - epoch
	if uint64(len(h.log)) < need {
		return nil, false
	}
	return h.log[uint64(len(h.log))-need:], true
}
