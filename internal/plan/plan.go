// Package plan defines the canonical execution plan of a Desis deployment:
// the epoch-versioned catalog of running queries, their analyzed
// query-groups (shared slices, operator unions, placement), group-by
// templates with their per-key instances, and the key→shard routing map.
//
// The plan is the single source of truth for every tier — the central
// engine, the shards of a ParallelEngine, and every node of a decentralized
// topology hold (views of) the same plan and mutate it exclusively by
// applying plan deltas (add query, remove query, instantiate template) in
// epoch order. Because delta application is deterministic, all holders that
// apply the same delta sequence derive identical group ids, context indices,
// and member indices — the invariant the wire protocol relies on (partials
// carry group ids, EPs carry member indices). The node tier serializes
// deltas onto the wire: the root broadcasts each applied delta to its
// subtree, and a reconnecting child resyncs by epoch diff (History.Since)
// instead of a full query-set resend.
package plan

import (
	"fmt"
	"strings"

	"desis/internal/operator"
	"desis/internal/query"
)

// Options configures a plan.
type Options struct {
	// Decentralized applies the decentralized placement rules: count-based
	// windows form RootOnly groups (§5.2).
	Decentralized bool
	// Dedup enables the deduplication operator on all formed groups.
	Dedup bool
	// Optimize enables the factor-window optimizer: the admission fold may
	// place eligible queries into fed groups that assemble from another
	// group's super-slices (see optimize.go). The flag rides the plan (and
	// its wire form), so every holder replaying the same deltas derives the
	// same rewrites.
	Optimize bool
	// Shards is the shard count of the key→shard routing map; 0 or 1 means
	// unsharded.
	Shards int
}

// Instance records one materialised template instance: template TemplateID
// was instantiated for key Key. The pair is recorded so a key instantiates
// each template exactly once across the deployment.
type Instance struct {
	TemplateID uint64
	Key        uint32
}

// Plan is the execution plan: the analyzed catalog at one epoch. All
// mutation goes through Apply; everything else must treat a Plan as
// read-only (desis-lint's sliceinvariant analyzer enforces the writer set).
type Plan struct {
	// Epoch is the mutation counter: 0 after initial analysis, incremented
	// by every applied delta. Two plan holders at the same epoch that
	// started from the same initial catalog are byte-identical.
	Epoch uint64
	// Decentralized, Dedup, Optimize, Shards mirror Options.
	Decentralized bool
	Dedup         bool
	Optimize      bool
	Shards        int
	// Shard is the shard this plan is restricted to (see Restrict), or -1
	// for the full (master) plan.
	Shard int
	// Groups is the analyzed catalog. Removed queries stay as tombstoned
	// members (GroupQuery.Removed) so group ids and member indices remain
	// stable across the topology and across full-plan resends.
	Groups []*query.Group
	// Templates are the registered group-by (AnyKey) queries.
	Templates []query.Query
	// Instances lists the (template, key) pairs instantiated so far, in
	// admission order.
	Instances []Instance

	// idx is the lazily built catalog index (see catalogIndex). It is pure
	// derived state: never serialized, dropped by Clone, and rebuilt from the
	// exported fields on first use, so a plan decoded off the wire or built
	// by hand behaves identically to one that kept its index warm.
	idx *catalogIndex
	// touched lists the groups the most recent successful Apply mutated; see
	// Touched.
	touched []*query.Group
	// maskScratch is placeIndexed's reusable buffer for detecting feeder
	// mask widening; derived state like idx, never serialized or cloned.
	maskScratch []operator.Op
}

// bucketKey identifies one placement bucket: queries can only share a group
// when they agree on key and placement.
type bucketKey struct {
	key       uint32
	placement query.Placement
}

// catalogIndex accelerates the catalog operations that would otherwise scan
// every group on every delta (admission buckets, id lookups, duplicate
// checks), making delta application cost independent of catalog size. All
// entries are derivable from the plan's exported fields; the delta appliers
// keep a built index coherent instead of rebuilding it.
type catalogIndex struct {
	// buckets holds, per (key, placement) and in catalog order, the groups a
	// new query of that bucket may join — the exact candidate set Place
	// would gather by scanning.
	buckets map[bucketKey][]*query.Group
	// nextGroup is one past the largest group id in the catalog.
	nextGroup uint32
	// byID maps group id to group.
	byID map[uint32]*query.Group
	// hosts maps a query id to the groups holding a live (non-tombstoned)
	// member with that id — one group for a concrete query, one per
	// instantiated key for a template.
	hosts map[uint64][]*query.Group
	// templates holds the ids of registered templates.
	templates map[uint64]bool
	// maxQuery is the largest query or template id in the catalog, tombstones
	// included (retired ids stay reserved).
	maxQuery uint64
	// instances marks the (template, key) pairs already materialised.
	instances map[Instance]bool
}

// index returns the plan's catalog index, building it when the plan was just
// constructed, cloned, or decoded.
func (p *Plan) index() *catalogIndex {
	if p.idx != nil {
		return p.idx
	}
	ix := &catalogIndex{
		buckets:   make(map[bucketKey][]*query.Group),
		byID:      make(map[uint32]*query.Group),
		hosts:     make(map[uint64][]*query.Group),
		templates: make(map[uint64]bool),
		instances: make(map[Instance]bool),
	}
	for _, g := range p.Groups {
		if g.ID >= ix.nextGroup {
			ix.nextGroup = g.ID + 1
		}
		bk := bucketKey{key: g.Key, placement: g.Placement}
		ix.buckets[bk] = append(ix.buckets[bk], g)
		ix.byID[g.ID] = g
		for _, gq := range g.Queries {
			if gq.ID > ix.maxQuery {
				ix.maxQuery = gq.ID
			}
			if !gq.Removed {
				ix.hosts[gq.ID] = appendHost(ix.hosts[gq.ID], g)
			}
		}
	}
	for _, t := range p.Templates {
		ix.templates[t.ID] = true
		if t.ID > ix.maxQuery {
			ix.maxQuery = t.ID
		}
	}
	for _, in := range p.Instances {
		ix.instances[in] = true
	}
	p.idx = ix
	return ix
}

// appendHost records g as a host of some query id, keeping the list
// duplicate-free (a group holds at most one live member per id, so the list
// stays as long as the id's live placements).
func appendHost(hosts []*query.Group, g *query.Group) []*query.Group {
	for _, h := range hosts {
		if h == g {
			return hosts
		}
	}
	return append(hosts, g)
}

// Warm builds the catalog index eagerly. Plan holders that will serve
// runtime deltas or lookups (engines installing a plan, a root's history)
// call it at installation time, so the first delta after a clone or a wire
// decode doesn't pay the O(catalog) lazy build inside its latency budget.
func (p *Plan) Warm() { p.index() }

// Touched returns the groups the most recent successful Apply mutated: the
// joined (or created) group of an add or instantiate, every group that had a
// member tombstoned by a remove, and nothing for a template registration.
// Plan holders that mirror the catalog into runtime state (core.Engine) use
// it to reconcile only what a delta changed. The slice is owned by the plan
// and only valid until the next Apply; callers must not mutate or retain it.
func (p *Plan) Touched() []*query.Group { return p.touched }

// New analyzes queries into a fresh plan at epoch 0. AnyKey queries register
// as templates; concrete queries are placed into groups by folding the same
// placement rule Apply uses, so a catalog built up-front is identical to one
// built by adding the same queries one at a time.
func New(queries []query.Query, opts Options) (*Plan, error) {
	p := &Plan{
		Decentralized: opts.Decentralized,
		Dedup:         opts.Dedup,
		Optimize:      opts.Optimize,
		Shards:        opts.Shards,
		Shard:         -1,
	}
	for _, q := range queries {
		if err := p.applyAdd(q); err != nil {
			return nil, err
		}
	}
	p.Epoch = 0
	return p, nil
}

// FromGroups wraps an existing analyzed group set (e.g. from query.Analyze)
// into a plan at epoch 0, taking ownership of the group pointers.
func FromGroups(groups []*query.Group, opts Options) *Plan {
	return &Plan{
		Decentralized: opts.Decentralized,
		Dedup:         opts.Dedup,
		Optimize:      opts.Optimize,
		Shards:        opts.Shards,
		Shard:         -1,
		Groups:        groups,
	}
}

// queryOpts maps the plan's options onto the analyzer's.
func (p *Plan) queryOpts() query.Options {
	return query.Options{Decentralized: p.Decentralized, Dedup: p.Dedup, Optimize: p.Optimize}
}

// ShardOf is the plan's key→shard routing map. Unsharded plans route
// everything to shard 0.
func (p *Plan) ShardOf(key uint32) int {
	if p.Shards <= 1 {
		return 0
	}
	return int(key % uint32(p.Shards))
}

// Owns reports whether this plan's shard owns the key. The master plan
// (Shard < 0) owns every key.
func (p *Plan) Owns(key uint32) bool {
	return p.Shard < 0 || p.ShardOf(key) == p.Shard
}

// DeltaKind enumerates the plan mutations.
type DeltaKind uint8

// The delta kinds.
const (
	// DeltaAddQuery admits a query (or, when Query.AnyKey is set, registers
	// a template).
	DeltaAddQuery DeltaKind = iota + 1
	// DeltaRemoveQuery retires the query (or template and all its
	// instances) with QueryID; group members are tombstoned in place.
	DeltaRemoveQuery
	// DeltaInstantiate materialises template QueryID for key Key.
	DeltaInstantiate
)

// String names the delta kind.
func (k DeltaKind) String() string {
	switch k {
	case DeltaAddQuery:
		return "add"
	case DeltaRemoveQuery:
		return "remove"
	case DeltaInstantiate:
		return "instantiate"
	}
	return fmt.Sprintf("DeltaKind(%d)", uint8(k))
}

// Delta is one plan mutation. Epoch is the epoch the plan has after the
// delta applies; a delta only applies to a plan at exactly Epoch-1.
type Delta struct {
	Epoch uint64
	Kind  DeltaKind
	// Query is the admitted query (DeltaAddQuery).
	Query query.Query
	// QueryID is the removed query (DeltaRemoveQuery) or the instantiated
	// template (DeltaInstantiate).
	QueryID uint64
	// Key is the instantiated key (DeltaInstantiate).
	Key uint32
}

// String summarises the delta for logs.
func (d Delta) String() string {
	switch d.Kind {
	case DeltaAddQuery:
		return fmt.Sprintf("delta(%d add q%d)", d.Epoch, d.Query.ID)
	case DeltaRemoveQuery:
		return fmt.Sprintf("delta(%d remove q%d)", d.Epoch, d.QueryID)
	case DeltaInstantiate:
		return fmt.Sprintf("delta(%d instantiate q%d key=%d)", d.Epoch, d.QueryID, d.Key)
	}
	return fmt.Sprintf("delta(%d kind=%d)", d.Epoch, uint8(d.Kind))
}

// AddDelta mints the delta that admits q at the plan's next epoch.
func (p *Plan) AddDelta(q query.Query) Delta {
	return Delta{Epoch: p.Epoch + 1, Kind: DeltaAddQuery, Query: q}
}

// RemoveDelta mints the delta that retires query id at the next epoch.
func (p *Plan) RemoveDelta(id uint64) Delta {
	return Delta{Epoch: p.Epoch + 1, Kind: DeltaRemoveQuery, QueryID: id}
}

// InstantiateDelta mints the delta that materialises template tid for key.
func (p *Plan) InstantiateDelta(tid uint64, key uint32) Delta {
	return Delta{Epoch: p.Epoch + 1, Kind: DeltaInstantiate, QueryID: tid, Key: key}
}

// Apply mutates the plan by one delta. It is the only legal mutation of a
// plan after construction. A failed Apply leaves the plan unchanged; on
// success the plan's epoch equals d.Epoch.
func (p *Plan) Apply(d Delta) error {
	if d.Epoch != p.Epoch+1 {
		return fmt.Errorf("plan: delta epoch %d does not follow plan epoch %d", d.Epoch, p.Epoch)
	}
	var err error
	switch d.Kind {
	case DeltaAddQuery:
		err = p.applyAdd(d.Query)
	case DeltaRemoveQuery:
		err = p.applyRemove(d.QueryID)
	case DeltaInstantiate:
		err = p.applyInstantiate(d.QueryID, d.Key)
	default:
		err = fmt.Errorf("plan: unknown delta kind %d", uint8(d.Kind))
	}
	if err != nil {
		return err
	}
	p.Epoch = d.Epoch
	return nil
}

func (p *Plan) applyAdd(q query.Query) error {
	if q.ID == 0 {
		return fmt.Errorf("plan: query needs an explicit non-zero id")
	}
	if p.knowsID(q.ID) {
		return fmt.Errorf("plan: query id %d already in the catalog", q.ID)
	}
	ix := p.index()
	p.touched = p.touched[:0]
	if q.AnyKey {
		probe := q
		probe.AnyKey = false
		if err := probe.Validate(); err != nil {
			return err
		}
		p.Templates = append(p.Templates, q)
		ix.templates[q.ID] = true
		if q.ID > ix.maxQuery {
			ix.maxQuery = q.ID
		}
		return nil
	}
	g, err := p.placeIndexed(q)
	if err != nil {
		return err
	}
	ix.hosts[q.ID] = appendHost(ix.hosts[q.ID], g)
	if q.ID > ix.maxQuery {
		ix.maxQuery = q.ID
	}
	p.touched = append(p.touched, g)
	return nil
}

// placeIndexed admits q into the catalog through the index's candidate
// bucket instead of a full scan, appending a created group to the catalog
// and the index. It produces exactly the groups query.Place would.
func (p *Plan) placeIndexed(q query.Query) (*query.Group, error) {
	ix := p.index()
	bk := bucketKey{key: q.Key, placement: query.PlacementOf(q, p.queryOpts())}
	bucket := ix.buckets[bk]
	// Admission can widen *other* groups of the bucket: a fed placement
	// folds the new member's operators up its feeder chain (RefreshOps).
	// Snapshot the masks so every widened group lands in the touched slate —
	// the engine admin-cuts it exactly like a directly joined group.
	p.maskScratch = p.maskScratch[:0]
	for _, bg := range bucket {
		p.maskScratch = append(p.maskScratch, bg.Ops)
	}
	g, _, created, err := query.PlaceIn(bucket, ix.nextGroup, q, p.queryOpts())
	if err != nil {
		return nil, err
	}
	for i, bg := range bucket {
		if bg != g && bg.Ops != p.maskScratch[i] {
			p.touched = append(p.touched, bg)
		}
	}
	if created {
		p.Groups = append(p.Groups, g)
		ix.buckets[bk] = append(ix.buckets[bk], g)
		ix.byID[g.ID] = g
		ix.nextGroup = g.ID + 1
	}
	return g, nil
}

func (p *Plan) applyRemove(id uint64) error {
	ix := p.index()
	removed := false
	for ti := len(p.Templates) - 1; ti >= 0; ti-- {
		if p.Templates[ti].ID == id {
			n := len(p.Templates)
			p.Templates = append(p.Templates[:ti], p.Templates[ti+1:]...)
			// Zero the dead tail: the spliced-over entry keeps its Funcs
			// and predicate slices alive past len otherwise.
			clear(p.Templates[len(p.Templates):n])
			removed = true
		}
	}
	if removed {
		// Forget the template's instantiation records; its per-key instance
		// members (same query id) are tombstoned below.
		delete(ix.templates, id)
		all := p.Instances
		kept := all[:0]
		for _, in := range all {
			if in.TemplateID != id {
				kept = append(kept, in)
			} else {
				delete(ix.instances, in)
			}
		}
		// Zero the filtered-out tail so dropped records do not linger past
		// len (the retention shape the noretain analyzer pins).
		clear(all[len(kept):])
		p.Instances = kept
		// A never-instantiated template leaves no tombstone behind, so its id
		// is genuinely forgotten; re-derive the reservation ceiling.
		ix.maxQuery = maxCatalogID(p)
	}
	p.touched = p.touched[:0]
	for _, g := range ix.hosts[id] {
		for i := range g.Queries {
			if g.Queries[i].ID == id && !g.Queries[i].Removed {
				g.Queries[i].Removed = true
				removed = true
			}
		}
		p.touched = append(p.touched, g)
	}
	delete(ix.hosts, id)
	if !removed {
		return fmt.Errorf("plan: no running query with id %d", id)
	}
	return nil
}

// maxCatalogID scans the whole catalog for the largest query or template id,
// tombstones included; only template removal needs it (member removal leaves
// a tombstone that keeps the id reserved).
func maxCatalogID(p *Plan) uint64 {
	var max uint64
	for _, g := range p.Groups {
		for _, gq := range g.Queries {
			if gq.ID > max {
				max = gq.ID
			}
		}
	}
	for _, t := range p.Templates {
		if t.ID > max {
			max = t.ID
		}
	}
	return max
}

func (p *Plan) applyInstantiate(tid uint64, key uint32) error {
	var tmpl *query.Query
	for i := range p.Templates {
		if p.Templates[i].ID == tid {
			tmpl = &p.Templates[i]
			break
		}
	}
	if tmpl == nil {
		return fmt.Errorf("plan: no template with id %d", tid)
	}
	if !p.Owns(key) {
		return fmt.Errorf("plan: shard %d does not own key %d (shard %d does)", p.Shard, key, p.ShardOf(key))
	}
	ix := p.index()
	if ix.instances[Instance{TemplateID: tid, Key: key}] {
		return fmt.Errorf("plan: template %d already instantiated for key %d", tid, key)
	}
	inst := *tmpl
	inst.AnyKey = false
	inst.Key = key
	p.touched = p.touched[:0]
	g, err := p.placeIndexed(inst)
	if err != nil {
		return err
	}
	ix.hosts[tid] = appendHost(ix.hosts[tid], g)
	p.Instances = append(p.Instances, Instance{TemplateID: tid, Key: key})
	ix.instances[Instance{TemplateID: tid, Key: key}] = true
	p.touched = append(p.touched, g)
	return nil
}

// Instantiated reports whether template tid already materialised for key.
func (p *Plan) Instantiated(tid uint64, key uint32) bool {
	return p.index().instances[Instance{TemplateID: tid, Key: key}]
}

// knowsID reports whether id names a live query or template in the catalog.
// Template instances answer under the template's id and tombstones keep
// their id, but neither blocks re-admission checks — only live distinct
// queries do.
func (p *Plan) knowsID(id uint64) bool {
	ix := p.index()
	return ix.templates[id] || len(ix.hosts[id]) > 0
}

// Lookup finds the live query with id and the group hosting it. When a
// template id lives in several groups (one per instantiated key), the group
// earliest in the catalog answers, like a catalog scan would.
func (p *Plan) Lookup(id uint64) (*query.Group, int, bool) {
	var g *query.Group
	for _, h := range p.index().hosts[id] {
		if g == nil || h.ID < g.ID {
			g = h
		}
	}
	if g == nil {
		return nil, 0, false
	}
	for i, gq := range g.Queries {
		if gq.ID == id && !gq.Removed {
			return g, i, true
		}
	}
	return nil, 0, false
}

// NextQueryID returns an id one larger than any query or template in the
// catalog (tombstones included — retired ids are never reused).
func (p *Plan) NextQueryID() uint64 {
	return p.index().maxQuery + 1
}

// Clone returns a deep copy sharing no mutable memory with p. The catalog
// index is not carried over (it holds pointers into p's groups); the clone
// rebuilds its own on first use.
func (p *Plan) Clone() *Plan {
	c := *p
	c.Groups = make([]*query.Group, len(p.Groups))
	for i, g := range p.Groups {
		c.Groups[i] = cloneGroup(g)
	}
	c.Templates = append([]query.Query(nil), p.Templates...)
	c.Instances = append([]Instance(nil), p.Instances...)
	c.idx = nil
	c.touched = nil
	// Not sharing the scratch buffer matters as much as dropping the index:
	// a shard view applying deltas concurrently with its master would
	// otherwise write into the same backing array.
	c.maskScratch = nil
	return &c
}

func cloneGroup(g *query.Group) *query.Group {
	ng := *g
	ng.Contexts = append([]query.Predicate(nil), g.Contexts...)
	ng.Queries = append([]query.GroupQuery(nil), g.Queries...)
	return &ng
}

// Restrict returns this plan's view for one shard: the groups whose keys the
// shard owns, every template (instantiation is gated by key ownership), and
// the shard's instances. Group ids are preserved, so results and partials
// remain comparable across shards.
func (p *Plan) Restrict(shard int) *Plan {
	c := p.Clone()
	c.Shard = shard
	allG := c.Groups
	kept := allG[:0]
	for _, g := range allG {
		if p.ShardOf(g.Key) == shard {
			kept = append(kept, g)
		}
	}
	// Zero the filtered-out tails: without it every shard view pins the
	// other shards' cloned groups (and instance records) past len for the
	// engine's lifetime.
	clear(allG[len(kept):])
	c.Groups = kept
	allI := c.Instances
	inst := allI[:0]
	for _, in := range allI {
		if p.ShardOf(in.Key) == shard {
			inst = append(inst, in)
		}
	}
	clear(allI[len(inst):])
	c.Instances = inst
	return c
}

// GroupByID finds a group in the catalog.
func (p *Plan) GroupByID(id uint32) *query.Group {
	return p.index().byID[id]
}

// LiveQueries counts catalog members that are not tombstoned (template
// instances included).
func (p *Plan) LiveQueries() int {
	n := 0
	for _, g := range p.Groups {
		for _, gq := range g.Queries {
			if !gq.Removed {
				n++
			}
		}
	}
	return n
}

// Describe renders the catalog for humans (desis-ctl plan).
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan epoch=%d decentralized=%v dedup=%v optimize=%v shards=%d",
		p.Epoch, p.Decentralized, p.Dedup, p.Optimize, p.Shards)
	if p.Shard >= 0 {
		fmt.Fprintf(&b, " shard=%d", p.Shard)
	}
	fmt.Fprintf(&b, " groups=%d live-queries=%d\n", len(p.Groups), p.LiveQueries())
	for _, g := range p.Groups {
		fmt.Fprintf(&b, "group %d key=%d placement=%s contexts=%d ops=%v",
			g.ID, g.Key, g.Placement, len(g.Contexts), g.LogicalOps)
		if g.Fed() {
			fmt.Fprintf(&b, " fed-from=%d ctx=%d period=%dms", g.FeedFrom, g.FeedCtx, g.FeedPeriod)
		}
		if p.Shards > 1 {
			fmt.Fprintf(&b, " shard=%d", p.ShardOf(g.Key))
		}
		b.WriteByte('\n')
		for i, gq := range g.Queries {
			fmt.Fprintf(&b, "  [%d] q%d ctx=%d %s", i, gq.ID, gq.Ctx, gq.Query.String())
			if gq.Removed {
				b.WriteString(" (removed)")
			}
			b.WriteByte('\n')
		}
	}
	for _, t := range p.Templates {
		fmt.Fprintf(&b, "template q%d %s\n", t.ID, t.String())
	}
	for _, in := range p.Instances {
		fmt.Fprintf(&b, "instance template=%d key=%d\n", in.TemplateID, in.Key)
	}
	return b.String()
}

// opsOf recomputes the operator union of a group's live members; kept here
// so wire decoding can cross-check a received catalog.
func opsOf(g *query.Group) (logical, ops operator.Op) {
	for _, gq := range g.Queries {
		if !gq.Removed {
			logical = operator.UnionFuncs(logical, gq.Funcs)
		}
	}
	return logical, logical | operator.OpCount
}
