package plan

import (
	"encoding/binary"
	"fmt"
	"math"

	"desis/internal/operator"
	"desis/internal/query"
)

// Wire serialization of plans and deltas: little-endian fixed-width fields,
// matching the layout discipline of the binary message codec. The message
// package embeds these payloads in KindPlanState and KindPlanDelta frames;
// the catalog carries tombstoned members and explicit operator masks so a
// decoding node reproduces the sender's group ids, member indices, and slice
// masks exactly — including state (like a post-removal widened mask) that is
// not derivable from the live query set alone.

// AppendQuery appends the wire form of one query to buf.
func AppendQuery(buf []byte, q query.Query) []byte {
	buf = wu64(buf, q.ID)
	buf = wu32(buf, q.Key)
	buf = wbool(buf, q.AnyKey)
	buf = wf64(buf, q.Pred.Min)
	buf = wf64(buf, q.Pred.Max)
	buf = append(buf, byte(q.Type), byte(q.Measure))
	buf = wu64(buf, uint64(q.Length))
	buf = wu64(buf, uint64(q.Slide))
	buf = wu64(buf, uint64(q.Gap))
	buf = wu32(buf, uint32(len(q.Funcs)))
	for _, f := range q.Funcs {
		buf = append(buf, byte(f.Func))
		buf = wf64(buf, f.Arg)
	}
	return buf
}

// DecodeQuery reads one query, returning the remaining buffer.
func DecodeQuery(buf []byte) (query.Query, []byte, error) {
	r := &wireReader{buf: buf}
	q := r.query()
	return q, r.buf, r.err
}

// AppendDelta appends the wire form of one delta to buf.
func AppendDelta(buf []byte, d Delta) []byte {
	buf = append(buf, byte(d.Kind))
	buf = wu64(buf, d.Epoch)
	switch d.Kind {
	case DeltaAddQuery:
		buf = AppendQuery(buf, d.Query)
	case DeltaRemoveQuery:
		buf = wu64(buf, d.QueryID)
	case DeltaInstantiate:
		buf = wu64(buf, d.QueryID)
		buf = wu32(buf, d.Key)
	}
	return buf
}

// DecodeDelta reads one delta, returning the remaining buffer.
func DecodeDelta(buf []byte) (Delta, []byte, error) {
	r := &wireReader{buf: buf}
	d := Delta{Kind: DeltaKind(r.u8()), Epoch: r.u64()}
	switch d.Kind {
	case DeltaAddQuery:
		d.Query = r.query()
	case DeltaRemoveQuery:
		d.QueryID = r.u64()
	case DeltaInstantiate:
		d.QueryID = r.u64()
		d.Key = r.u32()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("plan: unknown delta kind %d on the wire", uint8(d.Kind))
		}
	}
	return d, r.buf, r.err
}

// AppendPlan appends the full wire form of the plan to buf.
func AppendPlan(buf []byte, p *Plan) []byte {
	buf = wu64(buf, p.Epoch)
	buf = wbool(buf, p.Decentralized)
	buf = wbool(buf, p.Dedup)
	buf = wbool(buf, p.Optimize)
	buf = wu32(buf, uint32(p.Shards))
	buf = wu32(buf, uint32(int32(p.Shard)))
	buf = wu32(buf, uint32(len(p.Groups)))
	for _, g := range p.Groups {
		buf = wu32(buf, g.ID)
		buf = wu32(buf, g.Key)
		buf = append(buf, byte(g.Placement))
		buf = wbool(buf, g.Dedup)
		buf = wu64(buf, uint64(g.Ops))
		buf = wu64(buf, uint64(g.LogicalOps))
		buf = wu32(buf, g.FeedFrom)
		buf = wu32(buf, uint32(g.FeedCtx))
		buf = wu64(buf, uint64(g.FeedPeriod))
		buf = wu32(buf, uint32(len(g.Contexts)))
		for _, c := range g.Contexts {
			buf = wf64(buf, c.Min)
			buf = wf64(buf, c.Max)
		}
		buf = wu32(buf, uint32(len(g.Queries)))
		for _, gq := range g.Queries {
			buf = AppendQuery(buf, gq.Query)
			buf = wu32(buf, uint32(gq.Ctx))
			buf = wbool(buf, gq.Removed)
		}
	}
	buf = wu32(buf, uint32(len(p.Templates)))
	for _, t := range p.Templates {
		buf = AppendQuery(buf, t)
	}
	buf = wu32(buf, uint32(len(p.Instances)))
	for _, in := range p.Instances {
		buf = wu64(buf, in.TemplateID)
		buf = wu32(buf, in.Key)
	}
	return buf
}

// DecodePlan reads a full plan, returning the remaining buffer. Decoded
// groups are cross-checked: the live members' operator union must be covered
// by the group's wire mask.
func DecodePlan(buf []byte) (*Plan, []byte, error) {
	r := &wireReader{buf: buf}
	p := &Plan{
		Epoch:         r.u64(),
		Decentralized: r.bool(),
		Dedup:         r.bool(),
		Optimize:      r.bool(),
		Shards:        int(r.u32()),
		Shard:         int(int32(r.u32())),
	}
	ng := int(r.u32())
	for i := 0; i < ng && r.err == nil; i++ {
		g := &query.Group{
			ID:         r.u32(),
			Key:        r.u32(),
			Placement:  query.Placement(r.u8()),
			Dedup:      r.bool(),
			Ops:        operator.Op(r.u64()),
			LogicalOps: operator.Op(r.u64()),
		}
		g.FeedFrom = r.u32()
		g.FeedCtx = int(r.u32())
		g.FeedPeriod = int64(r.u64())
		nc := int(r.u32())
		for j := 0; j < nc && r.err == nil; j++ {
			g.Contexts = append(g.Contexts, query.Predicate{Min: r.f64(), Max: r.f64()})
		}
		nq := int(r.u32())
		for j := 0; j < nq && r.err == nil; j++ {
			gq := query.GroupQuery{Query: r.query()}
			gq.Ctx = int(r.u32())
			gq.Removed = r.bool()
			if r.err == nil && gq.Ctx >= len(g.Contexts) {
				r.err = fmt.Errorf("plan: group %d member q%d references context %d of %d", g.ID, gq.ID, gq.Ctx, len(g.Contexts))
			}
			g.Queries = append(g.Queries, gq)
		}
		if r.err == nil {
			if logical, _ := opsOf(g); logical&^g.LogicalOps != 0 {
				r.err = fmt.Errorf("plan: group %d wire mask %v does not cover live members (%v)", g.ID, g.LogicalOps, logical)
			}
		}
		p.Groups = append(p.Groups, g)
	}
	nt := int(r.u32())
	for i := 0; i < nt && r.err == nil; i++ {
		p.Templates = append(p.Templates, r.query())
	}
	ni := int(r.u32())
	for i := 0; i < ni && r.err == nil; i++ {
		p.Instances = append(p.Instances, Instance{TemplateID: r.u64(), Key: r.u32()})
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	if err := validateFeeds(p); err != nil {
		return nil, nil, err
	}
	return p, r.buf, nil
}

// --- little-endian helpers ---

func wu32(buf []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(buf, t[:]...)
}

func wu64(buf []byte, v uint64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	return append(buf, t[:]...)
}

func wf64(buf []byte, v float64) []byte { return wu64(buf, math.Float64bits(v)) }

func wbool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

type wireReader struct {
	buf []byte
	err error
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("plan: truncated wire payload: need %d bytes, have %d", n, len(r.buf))
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *wireReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *wireReader) bool() bool {
	b := r.take(1)
	return b != nil && b[0] == 1
}

func (r *wireReader) query() query.Query {
	q := query.Query{
		ID:     r.u64(),
		Key:    r.u32(),
		AnyKey: r.bool(),
	}
	q.Pred.Min = r.f64()
	q.Pred.Max = r.f64()
	q.Type = query.WindowType(r.u8())
	q.Measure = query.Measure(r.u8())
	q.Length = int64(r.u64())
	q.Slide = int64(r.u64())
	q.Gap = int64(r.u64())
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		f := operator.Func(r.u8())
		arg := r.f64()
		q.Funcs = append(q.Funcs, operator.FuncSpec{Func: f, Arg: arg})
	}
	return q
}
