package plan

import (
	"fmt"

	"desis/internal/operator"
	"desis/internal/query"
)

// Plan-level half of the factor-window optimizer (ROADMAP item 3). The
// decision itself — eligibility, cost model, fed-group placement — lives in
// internal/query's placement fold (query/factor.go), because a catalog built
// up-front by Analyze and one built by replaying deltas must agree on every
// feed edge; this file holds what only the plan layer can do: validating
// feed annotations arriving off the wire and answering feed-edge lookups for
// plan holders.
//
// How the rewrite stays safe to roll out live: a fed group is ordinary plan
// state. It is created (or joined) by the same deterministic admission fold
// as every other group, so it rides the existing delta/epoch machinery — the
// root mints one add delta, every tier replays it, and all of them derive
// the identical feed edge. The engine turns the annotation into runtime
// behavior (tapping the feeder, appending super-slices); flipping
// Options.Optimize only changes how *future* queries place, never the
// meaning of groups already in the catalog.

// Feeder resolves the group feeding g, or nil when g is not fed (or the
// catalog lacks the feeder, which validateFeeds rejects for decoded plans).
func (p *Plan) Feeder(g *query.Group) *query.Group {
	if !g.Fed() {
		return nil
	}
	return p.GroupByID(g.FeedFrom)
}

// FedGroups returns the fed groups of the catalog, in catalog order.
func (p *Plan) FedGroups() []*query.Group {
	var fed []*query.Group
	for _, g := range p.Groups {
		if g.Fed() {
			fed = append(fed, g)
		}
	}
	return fed
}

// validateFeeds cross-checks the feed annotations of a received catalog, the
// same spirit as DecodePlan's operator-mask check: a malformed feed edge
// would make the engine assemble windows from the wrong partials, so reject
// it at the trust boundary. Feeders precede their fed groups in catalog
// order (they exist before the rewrite that targets them), every fed group
// holds exactly one context, and the feeder's wire mask must cover the fed
// group's: its slices are what the super-slices are merged from.
func validateFeeds(p *Plan) error {
	seen := make(map[uint32]*query.Group, len(p.Groups))
	for _, g := range p.Groups {
		if prev := seen[g.ID]; prev != nil {
			return fmt.Errorf("plan: duplicate group id %d on the wire", g.ID)
		}
		seen[g.ID] = g
		if !g.Fed() {
			if g.FeedPeriod < 0 || g.FeedFrom != 0 || g.FeedCtx != 0 {
				return fmt.Errorf("plan: group %d carries feed annotations without a feed period", g.ID)
			}
			continue
		}
		f := seen[g.FeedFrom]
		if f == nil {
			return fmt.Errorf("plan: fed group %d references feeder %d, which does not precede it", g.ID, g.FeedFrom)
		}
		if f.Key != g.Key || f.Placement != g.Placement {
			return fmt.Errorf("plan: fed group %d and feeder %d disagree on key or placement", g.ID, g.FeedFrom)
		}
		if len(g.Contexts) != 1 {
			return fmt.Errorf("plan: fed group %d holds %d contexts, want exactly 1", g.ID, len(g.Contexts))
		}
		if g.FeedCtx < 0 || g.FeedCtx >= len(f.Contexts) {
			return fmt.Errorf("plan: fed group %d references context %d of feeder %d's %d", g.ID, g.FeedCtx, f.ID, len(f.Contexts))
		}
		if !f.Contexts[g.FeedCtx].Equal(g.Contexts[0]) {
			return fmt.Errorf("plan: fed group %d's context differs from feeder %d context %d", g.ID, f.ID, g.FeedCtx)
		}
		if g.Dedup || f.Dedup {
			return fmt.Errorf("plan: fed group %d involves deduplication, which factor feeding excludes", g.ID)
		}
		if g.Ops&operator.OpNDSort != 0 {
			return fmt.Errorf("plan: fed group %d carries the non-decomposable sort", g.ID)
		}
		if missing := g.Ops &^ (f.Ops &^ operator.OpNDSort); missing != 0 {
			return fmt.Errorf("plan: feeder %d mask %v does not cover fed group %d's %v", f.ID, f.Ops, g.ID, g.Ops)
		}
		if f.Fed() && g.FeedPeriod%f.FeedPeriod != 0 {
			return fmt.Errorf("plan: fed group %d period %d is not a multiple of feeder %d's %d", g.ID, g.FeedPeriod, f.ID, f.FeedPeriod)
		}
	}
	return nil
}
