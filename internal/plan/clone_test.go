package plan

import (
	"bytes"
	"testing"

	"desis/internal/query"
)

// factorPlan builds an optimized plan with a depth-3 feed chain plus raw
// bystanders — the richest shape Clone/Restrict/DecodePlan must preserve.
func factorPlan(t *testing.T) *Plan {
	t.Helper()
	qs := []query.Query{
		q(t, 1, "tumbling(1s) sum key=0"),
		q(t, 2, "sliding(60s,10s) sum,average key=0"),
		q(t, 3, "sliding(600s,60s) min key=0"),
		q(t, 4, "sliding(4s,2s) median key=0"),
		q(t, 5, "tumbling(2s) count key=1"),
	}
	p, err := New(qs, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.FedGroups()) == 0 {
		t.Fatalf("optimizer placed no fed groups:\n%s", p.Describe())
	}
	return p
}

// TestCloneThenMutateDifferential pins Clone against every field added since
// the wire format learned to carry plans: mutating the original through
// deltas (which exercises the touched slate, the catalog index, mask
// widening, and optimizer placement) must leave the clone's encoded bytes
// byte-for-byte unchanged, and vice versa.
func TestCloneThenMutateDifferential(t *testing.T) {
	p := factorPlan(t)
	p.Warm() // populate the lazy catalog index before cloning
	c := p.Clone()
	before := AppendPlan(nil, c)

	// Mutate the original: an eligible add (optimizer placement, feeder mask
	// widening) and a remove (touched slate, tombstones).
	if err := p.Apply(p.AddDelta(q(t, 6, "sliding(120s,10s) max key=0"))); err != nil {
		t.Fatalf("add on original: %v", err)
	}
	if err := p.Apply(p.RemoveDelta(1)); err != nil {
		t.Fatalf("remove on original: %v", err)
	}
	if after := AppendPlan(nil, c); !bytes.Equal(before, after) {
		t.Fatal("mutating the original changed the clone's encoding: Clone shares state")
	}

	// And the reverse: mutate the clone, original's encoding must hold.
	orig := AppendPlan(nil, p)
	if err := c.Apply(c.AddDelta(q(t, 7, "tumbling(1s) min key=2"))); err != nil {
		t.Fatalf("add on clone: %v", err)
	}
	if got := AppendPlan(nil, p); !bytes.Equal(orig, got) {
		t.Fatal("mutating the clone changed the original's encoding")
	}

	// The clone must stay delta-capable and reach the same catalog a fresh
	// plan reaches: determinism across replicas is what Clone exists for.
	fresh, _, err := DecodePlan(before)
	if err != nil {
		t.Fatalf("DecodePlan: %v", err)
	}
	if err := fresh.Apply(fresh.AddDelta(q(t, 7, "tumbling(1s) min key=2"))); err != nil {
		t.Fatalf("add on decoded plan: %v", err)
	}
	if got, want := fresh.Describe(), c.Describe(); got != want {
		t.Errorf("decoded plan diverged from clone after identical delta:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestWireRoundTripCarriesOptimizerState: AppendPlan → DecodePlan must
// preserve the Optimize flag and the per-group feed topology — a tier that
// dropped either would place future deltas differently and diverge.
func TestWireRoundTripCarriesOptimizerState(t *testing.T) {
	p := factorPlan(t)
	buf := AppendPlan(nil, p)
	d, rest, err := DecodePlan(buf)
	if err != nil {
		t.Fatalf("DecodePlan: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decode", len(rest))
	}
	if got, want := d.Describe(), p.Describe(); got != want {
		t.Errorf("round-trip changed the catalog:\n got:\n%s\nwant:\n%s", got, want)
	}
	if !d.Optimize {
		t.Error("round-trip dropped Options.Optimize")
	}
	if got, want := len(d.FedGroups()), len(p.FedGroups()); got != want {
		t.Errorf("round-trip kept %d fed groups, want %d", got, want)
	}
	// Re-encoding the decoded plan is a fixed point.
	if again := AppendPlan(nil, d); !bytes.Equal(buf, again) {
		t.Error("re-encoding the decoded plan produced different bytes")
	}
}

// TestRestrictKeepsFeedChainsTogether: sharding by key must never split a
// feeder from its fed groups — they share a key by construction, and the
// restricted view must keep the chain intact for the owning shard and drop
// it whole elsewhere.
func TestRestrictKeepsFeedChainsTogether(t *testing.T) {
	qs := []query.Query{
		q(t, 1, "tumbling(1s) sum key=0"),
		q(t, 2, "sliding(60s,10s) sum key=0"),
		q(t, 3, "tumbling(1s) sum key=1"),
		q(t, 4, "sliding(60s,10s) sum key=1"),
	}
	p, err := New(qs, Options{Optimize: true, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.FedGroups()) == 0 {
		t.Skip("no fed groups under this key layout")
	}
	for shard := 0; shard < 2; shard++ {
		r := p.Restrict(shard)
		for _, g := range r.FedGroups() {
			f := r.Feeder(g)
			if f == nil {
				t.Fatalf("shard %d: fed group %d lost its feeder %d", shard, g.ID, g.FeedFrom)
			}
			if f.Key != g.Key {
				t.Fatalf("shard %d: feeder %d key %d != fed %d key %d", shard, f.ID, f.Key, g.ID, g.Key)
			}
		}
	}
}
