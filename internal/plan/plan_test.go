package plan

import (
	"strings"
	"testing"

	"desis/internal/query"
)

func q(t *testing.T, id uint64, text string) query.Query {
	t.Helper()
	qq, err := query.ParseAny(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	qq.ID = id
	return qq
}

// TestUpfrontEqualsIncremental is the determinism cornerstone: a plan
// analyzed from N queries up-front must be identical (same group ids, member
// indices, operator unions) to a plan that starts empty and admits the same
// N queries one delta at a time.
func TestUpfrontEqualsIncremental(t *testing.T) {
	texts := []string{
		"tumbling(1s) average key=3 value>=80",
		"sliding(10s,2s) sum,quantile(0.9) key=1",
		"tumbling(1s) sum key=3",
		"session(5s) median key=0",
		"tumbling(1s) min key=3 value>=80",
		"tumbling(100ev) count key=2",
	}
	for _, opts := range []Options{{}, {Decentralized: true}, {Shards: 4}} {
		var qs []query.Query
		for i, s := range texts {
			qs = append(qs, q(t, uint64(i+1), s))
		}
		upfront, err := New(qs, opts)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := New(nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, qq := range qs {
			if err := inc.Apply(inc.AddDelta(qq)); err != nil {
				t.Fatalf("incremental add q%d: %v", qq.ID, err)
			}
		}
		if inc.Epoch != uint64(len(qs)) {
			t.Fatalf("incremental epoch %d, want %d", inc.Epoch, len(qs))
		}
		// Compare everything but the epoch counter (deltas count, analysis
		// does not).
		inc.Epoch = upfront.Epoch
		if got, want := inc.Describe(), upfront.Describe(); got != want {
			t.Errorf("opts %+v: incremental catalog diverged:\n got:\n%s\nwant:\n%s", opts, got, want)
		}
	}
}

// TestApplyEpochDiscipline: deltas apply only at exactly Epoch-1, and a
// failed apply leaves the plan (and its epoch) untouched.
func TestApplyEpochDiscipline(t *testing.T) {
	p, err := New([]query.Query{q(t, 1, "tumbling(1s) sum key=0")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch != 0 {
		t.Fatalf("fresh plan epoch %d, want 0", p.Epoch)
	}
	d := p.AddDelta(q(t, 2, "tumbling(2s) max key=0"))
	if d.Epoch != 1 {
		t.Fatalf("minted delta epoch %d, want 1", d.Epoch)
	}
	stale := d
	stale.Epoch = 3
	if err := p.Apply(stale); err == nil {
		t.Error("gap delta (epoch 3 onto plan at 0) accepted")
	}
	if err := p.Apply(d); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(d); err == nil {
		t.Error("replayed delta accepted")
	}
	if p.Epoch != 1 {
		t.Fatalf("epoch %d after one delta, want 1", p.Epoch)
	}
	// A semantically invalid delta at the right epoch must not burn the epoch.
	bad := p.RemoveDelta(999)
	if err := p.Apply(bad); err == nil {
		t.Error("removal of unknown id accepted")
	}
	if p.Epoch != 1 {
		t.Errorf("failed apply advanced epoch to %d", p.Epoch)
	}
	if err := p.Apply(p.AddDelta(q(t, 1, "tumbling(3s) sum key=1"))); err == nil {
		t.Error("duplicate live id accepted")
	}
	if err := p.Apply(p.AddDelta(query.Query{})); err == nil {
		t.Error("zero id accepted")
	}
}

// TestRemoveTombstonesAndIDRetirement: removal keeps the member slot (stable
// ids and indices) and retired ids stay reserved by NextQueryID but may be
// re-admitted explicitly.
func TestRemoveTombstonesAndIDRetirement(t *testing.T) {
	p, err := New([]query.Query{
		q(t, 1, "tumbling(1s) sum key=0"),
		q(t, 2, "tumbling(1s) max key=0"),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 1 || len(p.Groups[0].Queries) != 2 {
		t.Fatalf("unexpected catalog shape: %s", p.Describe())
	}
	if err := p.Apply(p.RemoveDelta(1)); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Groups[0].Queries); got != 2 {
		t.Fatalf("member slots after removal = %d, want 2 (tombstone keeps the slot)", got)
	}
	if !p.Groups[0].Queries[0].Removed {
		t.Error("member 0 not tombstoned")
	}
	if p.LiveQueries() != 1 {
		t.Errorf("LiveQueries = %d, want 1", p.LiveQueries())
	}
	if got := p.NextQueryID(); got != 3 {
		t.Errorf("NextQueryID = %d, want 3 (tombstoned ids stay reserved)", got)
	}
	if _, _, ok := p.Lookup(1); ok {
		t.Error("Lookup found a tombstoned query")
	}
	if err := p.Apply(p.RemoveDelta(1)); err == nil {
		t.Error("double removal accepted")
	}
}

// TestTemplateLifecycle: AnyKey queries register as templates, instantiate
// per key exactly once, and removal retires the template, its instantiation
// records, and all instance members.
func TestTemplateLifecycle(t *testing.T) {
	p, err := New([]query.Query{q(t, 7, "tumbling(1s) sum key=*")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Templates) != 1 || len(p.Groups) != 0 {
		t.Fatalf("template registration: %s", p.Describe())
	}
	if err := p.Apply(p.InstantiateDelta(7, 3)); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(p.InstantiateDelta(7, 5)); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(p.InstantiateDelta(7, 3)); err == nil {
		t.Error("double instantiation for key 3 accepted")
	}
	if !p.Instantiated(7, 3) || p.Instantiated(7, 4) {
		t.Error("Instantiated bookkeeping wrong")
	}
	if err := p.Apply(p.InstantiateDelta(99, 1)); err == nil {
		t.Error("instantiation of unknown template accepted")
	}
	if len(p.Groups) != 2 || p.LiveQueries() != 2 {
		t.Fatalf("instances not placed: %s", p.Describe())
	}
	if err := p.Apply(p.RemoveDelta(7)); err != nil {
		t.Fatal(err)
	}
	if len(p.Templates) != 0 || len(p.Instances) != 0 || p.LiveQueries() != 0 {
		t.Errorf("template removal left residue: %s", p.Describe())
	}
}

// TestShardOwnership: Restrict keeps only the shard's groups and instances
// with ids intact, and a restricted plan refuses to instantiate keys it does
// not own — the property that stops a sharded deployment from materialising
// a template twice for one key.
func TestShardOwnership(t *testing.T) {
	p, err := New([]query.Query{
		q(t, 1, "tumbling(1s) sum key=0"),
		q(t, 2, "tumbling(1s) sum key=1"),
		q(t, 3, "tumbling(1s) sum key=2"),
		q(t, 7, "tumbling(1s) max key=*"),
	}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(p.InstantiateDelta(7, 4)); err != nil {
		t.Fatal(err)
	}
	s0, s1 := p.Restrict(0), p.Restrict(1)
	if len(s0.Groups) != 3 || len(s1.Groups) != 1 {
		t.Fatalf("restricted group counts %d/%d, want 3/1", len(s0.Groups), len(s1.Groups))
	}
	for _, g := range s1.Groups {
		if mg := p.GroupByID(g.ID); mg == nil || mg.Key != g.Key {
			t.Errorf("restricted group %d lost its master identity", g.ID)
		}
	}
	if len(s0.Instances) != 1 || len(s1.Instances) != 0 {
		t.Errorf("instances split %d/%d, want 1/0", len(s0.Instances), len(s1.Instances))
	}
	if len(s0.Templates) != 1 || len(s1.Templates) != 1 {
		t.Error("templates must be visible on every shard")
	}
	// Shard 1 owns odd keys only.
	if err := s1.Apply(s1.InstantiateDelta(7, 6)); err == nil {
		t.Error("shard 1 instantiated key 6, which shard 0 owns")
	}
	if err := s1.Apply(s1.InstantiateDelta(7, 9)); err != nil {
		t.Errorf("shard 1 rejected its own key 9: %v", err)
	}
	if !p.Owns(6) || !p.Owns(9) {
		t.Error("master plan must own every key")
	}
}

// TestCloneIsolation: a clone shares no mutable state with its source.
func TestCloneIsolation(t *testing.T) {
	p, err := New([]query.Query{q(t, 1, "tumbling(1s) sum key=0")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if err := c.Apply(c.AddDelta(q(t, 2, "tumbling(1s) max key=0"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Apply(c.RemoveDelta(1)); err != nil {
		t.Fatal(err)
	}
	if p.Epoch != 0 || p.LiveQueries() != 1 || len(p.Groups[0].Queries) != 1 {
		t.Errorf("mutating the clone leaked into the source: %s", p.Describe())
	}
}

// TestHistorySince covers the resync decision table: equal epoch → empty
// diff, behind within retention → the delta suffix, ahead or out of
// retention → full resend.
func TestHistorySince(t *testing.T) {
	p, err := New([]query.Query{q(t, 1, "tumbling(1s) sum key=0")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHistory(p)
	for i := uint64(2); i <= 6; i++ {
		d := h.Plan().AddDelta(q(t, i, "tumbling(1s) max key=0"))
		if err := h.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	if h.Epoch() != 5 {
		t.Fatalf("history epoch %d, want 5", h.Epoch())
	}
	if ds, ok := h.Since(5); !ok || len(ds) != 0 {
		t.Errorf("Since(equal) = %d deltas, ok=%v; want empty diff, true", len(ds), ok)
	}
	ds, ok := h.Since(2)
	if !ok || len(ds) != 3 {
		t.Fatalf("Since(2) = %d deltas, ok=%v; want 3, true", len(ds), ok)
	}
	for i, d := range ds {
		if d.Epoch != uint64(3+i) {
			t.Errorf("diff[%d].Epoch = %d, want %d", i, d.Epoch, 3+i)
		}
	}
	if _, ok := h.Since(9); ok {
		t.Error("Since(future epoch) claimed a diff")
	}
	// NoEpoch-style sentinel: far in the future, must force a full resend.
	if _, ok := h.Since(^uint64(0)); ok {
		t.Error("Since(sentinel) claimed a diff")
	}
	h.SetRetention(2)
	if _, ok := h.Since(2); ok {
		t.Error("Since beyond retention claimed a diff")
	}
	if ds, ok := h.Since(4); !ok || len(ds) != 1 {
		t.Errorf("Since(4) after trim = %d deltas, ok=%v; want 1, true", len(ds), ok)
	}
}

// TestWireRoundTrip: plans and deltas survive the wire byte-identically in
// catalog terms — including tombstones and widened operator masks that are
// not derivable from the live members.
func TestWireRoundTrip(t *testing.T) {
	p, err := New([]query.Query{
		q(t, 1, "tumbling(1s) average key=3 value>=80"),
		q(t, 2, "sliding(10s,2s) sum,quantile(0.9) key=1"),
		q(t, 3, "tumbling(1s) sum key=3"),
		q(t, 7, "tumbling(1s) max key=*"),
	}, Options{Decentralized: true, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(p.InstantiateDelta(7, 5)); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(p.RemoveDelta(3)); err != nil {
		t.Fatal(err)
	}
	buf := AppendPlan(nil, p)
	got, rest, err := DecodePlan(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("%d bytes left over after decode", len(rest))
	}
	if got.Describe() != p.Describe() {
		t.Errorf("wire round trip diverged:\n got:\n%s\nwant:\n%s", got.Describe(), p.Describe())
	}
	if got.Epoch != p.Epoch {
		t.Errorf("epoch %d, want %d", got.Epoch, p.Epoch)
	}
	// Truncations must error, never panic.
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodePlan(buf[:i]); err == nil {
			t.Fatalf("truncated plan of %d/%d bytes decoded", i, len(buf))
		}
	}
	deltas := []Delta{
		p.AddDelta(q(t, 9, "session(5s) median key=0")),
		{Epoch: 4, Kind: DeltaRemoveQuery, QueryID: 2},
		{Epoch: 5, Kind: DeltaInstantiate, QueryID: 7, Key: 11},
	}
	for _, d := range deltas {
		db := AppendDelta(nil, d)
		gd, rest, err := DecodeDelta(db)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if len(rest) != 0 {
			t.Errorf("%v: %d bytes left over", d, len(rest))
		}
		if gd.String() != d.String() || gd.Query.String() != d.Query.String() || gd.Query.ID != d.Query.ID {
			t.Errorf("delta round trip: got %v, want %v", gd, d)
		}
		for i := 0; i < len(db); i++ {
			if _, _, err := DecodeDelta(db[:i]); err == nil {
				t.Fatalf("truncated delta of %d/%d bytes decoded", i, len(db))
			}
		}
	}
}

// TestWireRejectsBadCatalog: a decoded catalog is cross-checked, not trusted.
func TestWireRejectsBadCatalog(t *testing.T) {
	p, err := New([]query.Query{q(t, 1, "tumbling(1s) sum key=0")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := AppendPlan(nil, p)
	// Zero the group's operator masks: the live member's union is no longer
	// covered, which the decoder must refuse.
	bad := append([]byte(nil), good...)
	// Layout: epoch(8) flags(2) shards(4) shard(4) ngroups(4) id(4) key(4)
	// placement(1) dedup(1) ops(8) logical(8).
	maskOff := 8 + 2 + 4 + 4 + 4 + 4 + 4 + 1 + 1
	for i := 0; i < 16; i++ {
		bad[maskOff+i] = 0
	}
	if _, _, err := DecodePlan(bad); err == nil {
		t.Error("catalog with uncovered operator mask accepted")
	}
	// A member pointing at a context out of bounds must be refused too.
	if !strings.Contains(p.Describe(), "ctx=0") {
		t.Fatalf("expected a ctx=0 member: %s", p.Describe())
	}
}

// TestDescribeShape sanity-checks the human rendering desis-ctl prints.
func TestDescribeShape(t *testing.T) {
	p, err := New([]query.Query{
		q(t, 1, "tumbling(1s) sum key=0"),
		q(t, 7, "tumbling(1s) max key=*"),
	}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(p.RemoveDelta(1)); err != nil {
		t.Fatal(err)
	}
	out := p.Describe()
	for _, want := range []string{"plan epoch=1", "shards=2", "(removed)", "template q7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}
