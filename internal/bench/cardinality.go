package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/plan"
	"desis/internal/query"
)

// The cardinality experiment measures the key-space tier (core/keyspace.go)
// at group-by scale: one group instance per observed key, most keys idle.
// Each point runs the same hot/cold workload twice — instance TTL on and
// off — and reports the resident bytes an idle key costs in each mode, the
// ingest-latency tail the amortised sweep and inline revivals add, and an
// order-independent result hash proving eviction changed nothing.

// cardinalityTTL is the idle horizon of the evicting run: far below the
// hot-phase span so idle keys park early.
const cardinalityTTL = 500

// cardinalitySweepEvery spaces sweep steps tightly so a run covers the whole
// key space a few times over.
const cardinalitySweepEvery = 256

// CardinalityPoint is one key-count measurement.
type CardinalityPoint struct {
	// Keys is the distinct-key count; HotKeys of them stay active through
	// the hot phase, the rest idle after one initial touch.
	Keys    int `json:"keys"`
	HotKeys int `json:"hot_keys"`
	// HotEvents is the hot-phase event count.
	HotEvents int `json:"hot_events"`
	// RetainedBytesPerIdleKey is the heap an idle key holds with the TTL
	// off (resident instances); EvictedBytesPerIdleKey with the TTL on
	// (parked snapshots). Reduction is their ratio.
	RetainedBytesPerIdleKey float64 `json:"retained_bytes_per_idle_key"`
	EvictedBytesPerIdleKey  float64 `json:"evicted_bytes_per_idle_key"`
	Reduction               float64 `json:"reduction"`
	// ParkedInstances and LiveInstances are the evicting engine's instance
	// census at measurement time; RevivedInstances counts revivals (cold
	// keys are deliberately re-touched during the hot phase).
	ParkedInstances  int    `json:"parked_instances"`
	LiveInstances    int    `json:"live_instances"`
	RevivedInstances uint64 `json:"revived_instances"`
	// P99IngestUsec is the tail per-event ingest latency of the hot phase,
	// sampled every 8th event — the evicting run pays for sweep steps and
	// inline revivals inside these samples.
	P99IngestUsecEvicting float64 `json:"p99_ingest_usec_evicting"`
	P99IngestUsecResident float64 `json:"p99_ingest_usec_resident"`
	// GCPauseMs is the total stop-the-world pause accumulated over the run.
	GCPauseMsEvicting float64 `json:"gc_pause_ms_evicting"`
	GCPauseMsResident float64 `json:"gc_pause_ms_resident"`
	// ResultsMatch is true when both runs emitted the same window multiset.
	ResultsMatch bool `json:"results_match"`
}

// CardinalityReport is the JSON document desis-bench -exp cardinality -out
// writes (BENCH_cardinality.json in the repo root).
type CardinalityReport struct {
	InstanceTTLMs int                `json:"instance_ttl_ms"`
	SweepEvery    int                `json:"sweep_every"`
	Points        []CardinalityPoint `json:"points"`
}

// cardinalityKeyCounts selects the key sweep: the 10k→1M ladder capped at
// cfg.Keys when the caller raised it, a miniature ladder at the test-default
// scale.
func cardinalityKeyCounts(keys int) []int {
	if keys <= 64 {
		return []int{1_000, 4_000}
	}
	var out []int
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		if n <= keys {
			out = append(out, n)
		}
	}
	if len(out) == 0 || out[len(out)-1] != keys {
		out = append(out, keys)
	}
	return out
}

// cardRun is the outcome of one engine run over the hot/cold workload.
type cardRun struct {
	heapBytes  int64
	p99Usec    float64
	gcPauseMs  float64
	stats      core.InstanceStats
	resultHash uint64
	windows    int
}

// cardinalityResultHash folds one result into an order-independent digest:
// per-result FNV, combined by wrapping addition so emission order (which the
// tier keeps deterministic anyway) cannot mask a divergence.
func cardinalityResultHash(r core.Result) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(r.QueryID)
	put(uint64(r.Key))
	put(uint64(r.Start))
	put(uint64(r.End))
	put(uint64(r.Count))
	for _, v := range r.Values {
		put(math.Float64bits(v.Value))
		if v.OK {
			put(1)
		} else {
			put(0)
		}
	}
	return h.Sum64()
}

// cardinalityPlan builds the per-point plan: two group-by templates (their
// per-key instances share one group with two members) pre-instantiated for
// every key, so the run itself mutates no catalog state and the heap
// measurement isolates engine-owned bytes.
func cardinalityPlan(keys int) (*plan.Plan, error) {
	t1 := query.MustParse("tumbling(1s) sum key=0")
	t1.AnyKey = true
	t1.ID = 1
	t2 := query.MustParse("tumbling(1s) count,average key=0")
	t2.AnyKey = true
	t2.ID = 2
	p, err := plan.New([]query.Query{t1, t2}, plan.Options{})
	if err != nil {
		return nil, err
	}
	for k := 0; k < keys; k++ {
		for _, id := range []uint64{1, 2} {
			if err := p.Apply(p.InstantiateDelta(id, uint32(k))); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// cardinalityRun executes the workload once. Phase 1 touches every key at
// t=0; phase 2 hammers the hot keys across span event-time ms, re-touching
// a rotating cold key occasionally so revivals happen under measurement.
// The heap delta is taken against a baseline read after the plan and sample
// buffers exist, so it covers engine state only.
func cardinalityRun(keys, hot, events int, evicting bool) (cardRun, error) {
	p, err := cardinalityPlan(keys)
	if err != nil {
		return cardRun{}, err
	}
	lat := make([]int64, 0, events/8+1)
	var run cardRun
	onResult := func(r core.Result) {
		run.resultHash += cardinalityResultHash(r)
		run.windows++
	}
	cfg := core.Config{OnResult: onResult}
	if evicting {
		cfg.InstanceTTL = cardinalityTTL
		cfg.InstanceSweepEvery = cardinalitySweepEvery
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	eng := core.NewFromPlan(p, cfg)
	for k := 0; k < keys; k++ {
		eng.Process(event.Event{Time: 0, Key: uint32(k), Value: float64(k % 97)})
	}

	const span = 5_000 // event-time ms the hot phase covers
	idle := keys - hot
	reviveEvery := events / 64
	if reviveEvery == 0 {
		reviveEvery = 1
	}
	touches := 0
	for i := 0; i < events; i++ {
		tm := 1_000 + int64(i)*span/int64(events)
		ev := event.Event{Time: tm, Key: uint32(i % hot), Value: float64(i % 113)}
		if i%reviveEvery == reviveEvery-1 {
			// Re-touch a parked key: the revival cost lands inside the
			// latency samples and the revived windows inside the hash.
			ev.Key = uint32(hot + (touches*37)%idle)
			touches++
		}
		if i%8 == 0 {
			t0 := time.Now()
			eng.Process(ev)
			lat = append(lat, time.Since(t0).Nanoseconds())
		} else {
			eng.Process(ev)
		}
	}

	run.stats = eng.InstanceStats()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	run.heapBytes = int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	if run.heapBytes < 0 {
		run.heapBytes = 0
	}
	run.gcPauseMs = float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e6
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	run.p99Usec = float64(lat[len(lat)*99/100]) / 1e3
	runtime.KeepAlive(eng)
	return run, nil
}

// cardinalityPoint measures one key count with the TTL on and off.
func cardinalityPoint(keys, events int) (CardinalityPoint, error) {
	hot := 64
	if hot > keys/8 {
		hot = keys / 8
	}
	if events < 2*keys {
		events = 2 * keys // enough sweep steps to cover the key space
	}
	evict, err := cardinalityRun(keys, hot, events, true)
	if err != nil {
		return CardinalityPoint{}, err
	}
	resident, err := cardinalityRun(keys, hot, events, false)
	if err != nil {
		return CardinalityPoint{}, err
	}
	if evict.stats.Evicted == 0 || evict.stats.Revived == 0 {
		return CardinalityPoint{}, fmt.Errorf("cardinality: evicting run parked %d and revived %d instances; the comparison is vacuous",
			evict.stats.Evicted, evict.stats.Revived)
	}
	idle := float64(keys - hot)
	pt := CardinalityPoint{
		Keys:                    keys,
		HotKeys:                 hot,
		HotEvents:               events,
		RetainedBytesPerIdleKey: float64(resident.heapBytes) / idle,
		EvictedBytesPerIdleKey:  float64(evict.heapBytes) / idle,
		ParkedInstances:         evict.stats.Evicted,
		LiveInstances:           evict.stats.Live,
		RevivedInstances:        evict.stats.Revived,
		P99IngestUsecEvicting:   evict.p99Usec,
		P99IngestUsecResident:   resident.p99Usec,
		GCPauseMsEvicting:       evict.gcPauseMs,
		GCPauseMsResident:       resident.gcPauseMs,
		ResultsMatch:            evict.resultHash == resident.resultHash && evict.windows == resident.windows,
	}
	if pt.EvictedBytesPerIdleKey > 0 {
		pt.Reduction = pt.RetainedBytesPerIdleKey / pt.EvictedBytesPerIdleKey
	}
	return pt, nil
}

// RunCardinalityReport executes the key-count sweep and returns the
// structured report.
func RunCardinalityReport(cfg Config) (*CardinalityReport, error) {
	cfg = cfg.withDefaults()
	rep := &CardinalityReport{InstanceTTLMs: cardinalityTTL, SweepEvery: cardinalitySweepEvery}
	for _, n := range cardinalityKeyCounts(cfg.Keys) {
		pt, err := cardinalityPoint(n, cfg.Events)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// Cardinality renders the cardinality experiment as a table.
func Cardinality(cfg Config) (*Table, error) {
	rep, err := RunCardinalityReport(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "cardinality", Title: "Idle-key cost with and without instance eviction", XLabel: "distinct keys", YLabel: "bytes/idle key | µs | ratio"}
	for _, p := range rep.Points {
		t.Add("resident-B/key", float64(p.Keys), p.RetainedBytesPerIdleKey)
		t.Add("evicted-B/key", float64(p.Keys), p.EvictedBytesPerIdleKey)
		t.Add("reduction", float64(p.Keys), p.Reduction)
		t.Add("p99-us-evicting", float64(p.Keys), p.P99IngestUsecEvicting)
		t.Add("p99-us-resident", float64(p.Keys), p.P99IngestUsecResident)
		match := 0.0
		if p.ResultsMatch {
			match = 1
		}
		t.Add("results-match", float64(p.Keys), match)
	}
	return t, nil
}
