package bench

import (
	"fmt"
	"sync"
	"time"

	"desis/internal/baseline"
	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/gen"
	"desis/internal/node"
	"desis/internal/query"
)

// DeployFactory builds one of the comparable decentralized deployments.
type DeployFactory struct {
	Name string
	// Build creates a topology with the given locals/intermediates and
	// optional per-link bandwidth (bytes/second, 0 = unlimited).
	Build func(qs []query.Query, locals, inters int, bandwidth float64) (baseline.Deployment, error)
}

// DesisDeploy builds the Desis node.Cluster.
func DesisDeploy(qs []query.Query, locals, inters int, bandwidth float64) (baseline.Deployment, error) {
	groups, err := query.Analyze(qs, query.Options{Decentralized: true})
	if err != nil {
		return nil, err
	}
	return node.NewCluster(groups, node.ClusterConfig{
		Locals: locals, Intermediates: inters, Bandwidth: bandwidth,
		OnResult: func(core.Result) {}, // discard; throughput runs don't inspect results
	}), nil
}

// DiscoDeploy builds the Disco baseline topology (string codec).
func DiscoDeploy(qs []query.Query, locals, inters int, bandwidth float64) (baseline.Deployment, error) {
	return baseline.NewDiscoCluster(qs, baseline.CentralConfig{
		Locals: locals, Intermediates: inters, Bandwidth: bandwidth,
	})
}

// ScottyDeploy and CeBufferDeploy forward raw events to a central system at
// the root.
func ScottyDeploy(qs []query.Query, locals, inters int, bandwidth float64) (baseline.Deployment, error) {
	sys, err := baseline.NewScotty(qs)
	if err != nil {
		return nil, err
	}
	return baseline.NewCentralCluster(sys, baseline.CentralConfig{
		Locals: locals, Intermediates: inters, Bandwidth: bandwidth,
	}), nil
}

// CeBufferDeploy deploys CeBuffer centrally behind forwarding nodes.
func CeBufferDeploy(qs []query.Query, locals, inters int, bandwidth float64) (baseline.Deployment, error) {
	sys, err := baseline.NewCeBuffer(qs)
	if err != nil {
		return nil, err
	}
	return baseline.NewCentralCluster(sys, baseline.CentralConfig{
		Locals: locals, Intermediates: inters, Bandwidth: bandwidth,
	}), nil
}

// Deployments is the decentralized comparison set of §6.4/§6.5.2.
var Deployments = []DeployFactory{
	{"Desis", DesisDeploy},
	{"Disco", DiscoDeploy},
	{"Scotty", ScottyDeploy},
	{"CeBuffer", CeBufferDeploy},
}

// deployRun feeds each local node from its own goroutine (its own stream
// seed) and reports aggregate events/second plus per-layer bytes.
type deployRun struct {
	Throughput float64
	LocalBytes uint64
	InterBytes uint64
}

func runDeployment(d baseline.Deployment, streamCfg gen.StreamConfig, eventsPerLocal int) (deployRun, error) {
	nLocals := d.NumLocals()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, nLocals)
	advMu := sync.Mutex{}
	var advanced int64
	for i := 0; i < nLocals; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := streamCfg
			cfg.Seed = streamCfg.Seed + int64(i)*7919
			s := gen.NewStream(cfg)
			var batch []event.Event
			batches := 0
			for sent := 0; sent < eventsPerLocal; sent += len(batch) {
				n := 512
				if left := eventsPerLocal - sent; left < n {
					n = left
				}
				batch = s.NextBatch(batch[:0], n)
				if err := d.Push(i, batch); err != nil {
					errs[i] = err
					return
				}
				if batches++; batches%8 == 0 {
					if err := d.Advance(i, s.Now()); err != nil {
						errs[i] = err
						return
					}
				}
			}
			advMu.Lock()
			if s.Now() > advanced {
				advanced = s.Now()
			}
			advMu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return deployRun{}, err
		}
	}
	if err := d.AdvanceAll(advanced + 120_000); err != nil {
		return deployRun{}, err
	}
	if err := d.Close(); err != nil {
		return deployRun{}, err
	}
	el := time.Since(start).Seconds()
	local, inter := d.NetworkBytes()
	return deployRun{
		Throughput: float64(eventsPerLocal*nLocals) / el,
		LocalBytes: local,
		InterBytes: inter,
	}, nil
}

// buildAndRun is the common deploy-measure step.
func buildAndRun(f DeployFactory, qs []query.Query, locals, inters int, bandwidth float64, streamCfg gen.StreamConfig, eventsPerLocal int) (deployRun, error) {
	d, err := f.Build(qs, locals, inters, bandwidth)
	if err != nil {
		return deployRun{}, err
	}
	r, err := runDeployment(d, streamCfg, eventsPerLocal)
	if err != nil {
		return deployRun{}, fmt.Errorf("%s: %w", f.Name, err)
	}
	return r, nil
}
