package bench

import (
	"time"

	"desis/internal/core"
	"desis/internal/gen"
	"desis/internal/node"
	"desis/internal/operator"
	"desis/internal/query"
)

// localSliceRate measures a local node's engine in slice-emitting mode:
// events per second of slicing + incremental aggregation.
func localSliceRate(qs []query.Query, sc gen.StreamConfig, events int) (float64, error) {
	groups, err := query.Analyze(qs, query.Options{Decentralized: true})
	if err != nil {
		return 0, err
	}
	e := core.New(groups, core.Config{OnSlice: func(*core.SlicePartial) {}})
	s := gen.NewStream(sc)
	evs := s.Events(events)
	start := time.Now()
	e.ProcessBatch(evs)
	e.AdvanceTo(s.Now() + 60_000)
	return float64(events) / time.Since(start).Seconds(), nil
}

// mergeRate measures an intermediate/root merge stage: it replays nSlices
// aligned slices from children child nodes, each slice summarising
// eventsPerSlice events with ctxs selection contexts, and reports the
// equivalent events/second the stage sustains.
func mergeRate(children, nSlices, eventsPerSlice, ctxs int, ops operator.Op) float64 {
	ids := make([]uint32, children)
	for i := range ids {
		ids[i] = uint32(i + 1)
	}
	m := node.NewMerger(ids)
	merged := 0
	m.Out = func(*core.SlicePartial) { merged++ }
	// Pre-build one partial template per child to keep generation cost out
	// of the measurement.
	mk := func(sliceID int) []*core.SlicePartial {
		out := make([]*core.SlicePartial, children)
		for c := range out {
			aggs := make([]operator.Agg, ctxs)
			for i := range aggs {
				aggs[i] = operator.NewAgg(ops)
				per := eventsPerSlice / ctxs / children
				for v := 0; v < per; v++ {
					aggs[i].Add(float64(v%97) * 1.3)
				}
				aggs[i].Finish()
			}
			out[c] = &core.SlicePartial{
				Group: 0, ID: uint64(sliceID),
				Start: int64(sliceID * 100), End: int64((sliceID + 1) * 100),
				LastEvent: int64(sliceID*100 + 90),
				Ingested:  int64(eventsPerSlice / children),
				Aggs:      aggs,
			}
		}
		return out
	}
	batches := make([][]*core.SlicePartial, nSlices)
	for i := range batches {
		batches[i] = mk(i)
	}
	start := time.Now()
	for _, b := range batches {
		for c, p := range b {
			m.HandlePartial(ids[c], p)
		}
	}
	el := time.Since(start).Seconds()
	return float64(nSlices*eventsPerSlice) / el
}

// assembleRate measures the root assembly stage over the same synthetic
// slice stream: partials in, windows out.
func assembleRate(qs []query.Query, nSlices, eventsPerSlice int) (float64, error) {
	groups, err := query.Analyze(qs, query.Options{Decentralized: true})
	if err != nil {
		return 0, err
	}
	results := 0
	asm := node.NewAssembler(groups, func(core.Result) { results++ })
	g := groups[0]
	partials := make([]*core.SlicePartial, nSlices)
	for i := range partials {
		aggs := make([]operator.Agg, len(g.Contexts))
		for j := range aggs {
			aggs[j] = operator.NewAgg(g.Ops)
			for v := 0; v < eventsPerSlice/len(g.Contexts); v++ {
				aggs[j].Add(float64(v%89) * 1.7)
			}
			aggs[j].Finish()
		}
		partials[i] = &core.SlicePartial{
			Group: g.ID, ID: uint64(i),
			Start: int64(i * 1000), End: int64((i + 1) * 1000),
			LastEvent: int64(i*1000 + 900), Ingested: int64(eventsPerSlice),
			Aggs: aggs,
		}
	}
	start := time.Now()
	for i, p := range partials {
		asm.AddPartial(p)
		if i%16 == 15 {
			asm.AdvanceTo(p.End)
		}
	}
	asm.AdvanceTo(int64(nSlices+1) * 1000)
	el := time.Since(start).Seconds()
	return float64(nSlices*eventsPerSlice) / el, nil
}

// Fig7c reproduces Figure 7c: per-node throughput for a decomposable
// (average) workload as the number of partial results per slice (child
// nodes) grows.
func Fig7c(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig7c", Title: "Per-node throughput, average", XLabel: "partials per slice (children)", YLabel: "events/s"}
	qs := gen.TumblingSweep(10, 1000, 10000, operator.Average)
	sc := gen.StreamConfig{Seed: 3, Keys: 10, IntervalMS: 1}
	local, err := localSliceRate(qs, sc, cfg.Events)
	if err != nil {
		return nil, err
	}
	nSlices := cfg.Events / 1000
	if nSlices < 50 {
		nSlices = 50
	}
	for _, children := range []int{2, 8, 32, 128} {
		t.Add("local", float64(children), local)
		t.Add("intermediate", float64(children), mergeRate(children, nSlices, 10_000, 1, operator.OpSum|operator.OpCount))
		t.Add("root", float64(children), mergeRate(children, nSlices, 10_000, 1, operator.OpSum|operator.OpCount))
	}
	return t, nil
}

// Fig7d reproduces Figure 7d: the root's throughput for a non-decomposable
// (median) workload — every value travels to and is merged at the root.
func Fig7d(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig7d", Title: "Root throughput, median", XLabel: "partials per slice (children)", YLabel: "events/s"}
	nSlices := cfg.Events / 5000
	if nSlices < 20 {
		nSlices = 20
	}
	for _, children := range []int{2, 8, 32, 128} {
		t.Add("root", float64(children), mergeRate(children, nSlices, 5_000, 1, operator.OpNDSort|operator.OpCount))
	}
	return t, nil
}

// Fig7e reproduces Figure 7e: per-node throughput of a single query as the
// number of distinct selection operators (keys) grows — the local node pays
// per-event selection, the upper layers only merge.
func Fig7e(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig7e", Title: "Per-node throughput vs selection operators", XLabel: "selection contexts", YLabel: "events/s"}
	sc := gen.StreamConfig{Seed: 3, Keys: 1, IntervalMS: 1}
	for _, keys := range []int{1, 4, 16, 64} {
		// keys disjoint selection predicates over one stream: one
		// query-group with that many selection contexts (§4.2.3).
		var qs []query.Query
		for k := 0; k < keys; k++ {
			lo := float64(k) * (130.0 / float64(keys))
			hi := lo + 130.0/float64(keys)
			qs = append(qs, query.Query{
				ID: uint64(k + 1), Pred: query.Range(lo, hi),
				Type: query.Tumbling, Length: 1000,
				Funcs: []operator.FuncSpec{{Func: operator.Average}},
			})
		}
		local, err := localSliceRate(qs, sc, cfg.Events)
		if err != nil {
			return nil, err
		}
		t.Add("local", float64(keys), local)
		nSlices := cfg.Events / 1000
		if nSlices < 50 {
			nSlices = 50
		}
		t.Add("root", float64(keys), mergeRate(2, nSlices, 10_000, keys, operator.OpSum|operator.OpCount))
	}
	return t, nil
}

// Fig7f reproduces Figure 7f: per-node throughput with growing concurrent
// windows over the same key — flat everywhere, because the group shares one
// slice stream.
func Fig7f(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig7f", Title: "Per-node throughput vs concurrent windows (same key)", XLabel: "windows", YLabel: "events/s"}
	sc := gen.StreamConfig{Seed: 3, Keys: 1, IntervalMS: 1}
	for _, w := range cfg.WindowCounts {
		qs := gen.TumblingSweep(w, 1000, 10000, operator.Average)
		local, err := localSliceRate(qs, sc, scaleEvents(cfg.Events, 1))
		if err != nil {
			return nil, err
		}
		t.Add("local", float64(w), local)
		root, err := assembleRate(qs, 200, 10_000)
		if err != nil {
			return nil, err
		}
		t.Add("root", float64(w), root)
	}
	return t, nil
}

// Fig12 reproduces Figures 12a/12b: the latency contributed by each node
// type of the topology, for a 1-second tumbling window with a decomposable
// (average) or non-decomposable (median) function. X encodes the node type:
// 0 = local, 1 = intermediate, 2 = root. Centralized systems only have a
// root-stage latency.
func Fig12(cfg Config, median bool, id string) (*Table, error) {
	cfg = cfg.withDefaults()
	f := operator.Average
	if median {
		f = operator.Median
	}
	t := &Table{ID: id, Title: "Latency by node type (" + f.String() + ")", XLabel: "node (0=local,1=inter,2=root)", YLabel: "mean latency (us)"}
	qs := []query.Query{{
		ID: 1, Pred: query.All(), Type: query.Tumbling, Length: 1000,
		Funcs: []operator.FuncSpec{{Func: f}},
	}}
	sc := gen.StreamConfig{Seed: 8, Keys: 1, IntervalMS: 1}
	events := cfg.Events / 2

	// Desis stages.
	groups, err := query.Analyze(qs, query.Options{Decentralized: true})
	if err != nil {
		return nil, err
	}
	// Local: duration of Process calls that close a slice.
	var localLat latencySamples
	var emitted []*core.SlicePartial
	e := core.New(groups, core.Config{OnSlice: func(p *core.SlicePartial) {
		cp := *p
		cp.Aggs = append([]operator.Agg(nil), p.Aggs...)
		emitted = append(emitted, &cp)
	}})
	s := gen.NewStream(sc)
	evs := s.Events(events)
	for i := range evs {
		n := len(emitted)
		t0 := time.Now()
		e.Process(evs[i])
		if len(emitted) > n {
			localLat.record(time.Since(t0), len(emitted)-n)
		}
	}
	e.AdvanceTo(s.Now() + 60_000)
	t.Add("Desis", 0, float64(localLat.mean().Nanoseconds())/1000)

	// Intermediate: merge completion latency over the emitted partials
	// replayed from two children.
	m := node.NewMerger([]uint32{1, 2})
	m.Out = func(*core.SlicePartial) {}
	var interLat latencySamples
	for _, p := range emitted {
		m.HandlePartial(1, p)
		q := *p
		q.Aggs = append([]operator.Agg(nil), p.Aggs...)
		t0 := time.Now()
		m.HandlePartial(2, &q)
		interLat.record(time.Since(t0), 1)
	}
	t.Add("Desis", 1, float64(interLat.mean().Nanoseconds())/1000)

	// Root: assembly latency per window.
	asm := node.NewAssembler(groups, func(core.Result) {})
	var rootLat latencySamples
	for _, p := range emitted {
		asm.AddPartial(p)
		t0 := time.Now()
		asm.AdvanceTo(p.End)
		rootLat.record(time.Since(t0), 1)
	}
	t.Add("Desis", 2, float64(rootLat.mean().Nanoseconds())/1000)

	// Centralized systems: their root latency is the system latency.
	for _, fac := range CentralSystems {
		if fac.Name == "Desis" || fac.Name == "DeSW" || fac.Name == "DeBucket" {
			continue
		}
		evs2, drain := stream(sc, events)
		mean, _, err := runLatency(fac, qs, evs2, drain)
		if err != nil {
			return nil, err
		}
		t.Add(fac.Name, 2, float64(mean.Nanoseconds())/1000)
	}
	return t, nil
}
