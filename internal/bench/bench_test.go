package bench

import (
	"io"
	"strings"
	"testing"
)

// tiny is a fast configuration for CI-style smoke runs.
var tiny = Config{Events: 8000, WindowCounts: []int{1, 10, 50}, Locals: 2, Keys: 16}

// TestAllExperimentsRun smoke-tests every figure driver end to end at small
// scale — each must produce a non-empty table without error.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(tiny)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			for _, tb := range tables {
				if len(tb.Points) == 0 {
					t.Errorf("%s: table %s empty", e.ID, tb.ID)
				}
			}
		})
	}
}

// TestShapes asserts the paper's qualitative findings at small scale.
func TestShapes(t *testing.T) {
	t.Run("fig6b-desis-beats-cebuffer-at-many-windows", func(t *testing.T) {
		tb, err := Fig6b(tiny)
		if err != nil {
			t.Fatal(err)
		}
		desis, _ := tb.Value("Desis", 50)
		ceb, _ := tb.Value("CeBuffer", 50)
		if desis <= ceb {
			t.Errorf("Desis %.0f <= CeBuffer %.0f at 50 windows", desis, ceb)
		}
		// Desis roughly flat in window count.
		d1, _ := tb.Value("Desis", 1)
		if desis < d1/6 {
			t.Errorf("Desis throughput collapsed with windows: %.0f -> %.0f", d1, desis)
		}
	})

	t.Run("fig8b-desis-slices-flat", func(t *testing.T) {
		_, ts, err := Fig8ab(tiny)
		if err != nil {
			t.Fatal(err)
		}
		d1, _ := ts.Value("Desis", 1)
		d50, _ := ts.Value("Desis", 50)
		if d50 > d1*3 {
			t.Errorf("Desis slices/min grew with windows: %.0f -> %.0f", d1, d50)
		}
		b1, _ := ts.Value("DeBucket", 1)
		b50, _ := ts.Value("DeBucket", 50)
		if b50 < b1*5 {
			t.Errorf("DeBucket slices/min did not grow: %.0f -> %.0f", b1, b50)
		}
	})

	t.Run("fig9b-desis-fewer-calculations", func(t *testing.T) {
		_, tc, err := Fig9(tiny, "avgsum", "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		desis, _ := tc.Value("Desis", 50)
		desw, _ := tc.Value("DeSW", 50)
		// avg+sum: 2 ops/event vs 3 ops/event.
		if !(desis < desw) {
			t.Errorf("Desis calcs %.0f not below DeSW %.0f", desis, desw)
		}
	})

	t.Run("fig9d-quantiles-one-operator", func(t *testing.T) {
		_, tc, err := Fig9(tiny, "quantiles", "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		desis, _ := tc.Value("Desis", 50)
		desw, _ := tc.Value("DeSW", 50)
		if desis*10 > desw {
			t.Errorf("Desis quantile calcs %.0f not ~50x below DeSW %.0f", desis, desw)
		}
	})

	t.Run("fig11a-decentralized-saves-network", func(t *testing.T) {
		tb, err := Fig11ab(tiny, false, "fig11a")
		if err != nil {
			t.Fatal(err)
		}
		desis, _ := tb.Value("Desis", 0)
		scotty, _ := tb.Value("Scotty", 0)
		// The paper reports ~99% savings for decomposable functions.
		if desis > scotty/20 {
			t.Errorf("Desis local bytes %.0f not <<5%% of Scotty %.0f", desis, scotty)
		}
	})

	t.Run("fig11d-desis-constant-disco-grows", func(t *testing.T) {
		tb, err := Fig11d(tiny)
		if err != nil {
			t.Fatal(err)
		}
		d1, _ := tb.Value("Desis", 1)
		d50, _ := tb.Value("Desis", 50)
		if d50 > d1*3 {
			t.Errorf("Desis bytes grew with windows: %.0f -> %.0f", d1, d50)
		}
		o1, _ := tb.Value("Disco", 1)
		o50, _ := tb.Value("Disco", 50)
		if o50 < o1*5 {
			t.Errorf("Disco bytes did not grow with windows: %.0f -> %.0f", o1, o50)
		}
	})

	t.Run("ablation-opsharing", func(t *testing.T) {
		tb, err := AblationOperatorSharing(tiny)
		if err != nil {
			t.Fatal(err)
		}
		shared, _ := tb.Value("shared-operators", 50)
		per, _ := tb.Value("per-function", 50)
		if shared <= per {
			t.Errorf("shared operators %.0f not faster than per-function %.0f", shared, per)
		}
	})
}

func TestRunAndRunAllPrint(t *testing.T) {
	var sb strings.Builder
	if err := Run("fig6a", tiny, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig6a") {
		t.Errorf("output missing table header: %q", sb.String())
	}
	if err := Run("nope", tiny, io.Discard); err == nil {
		t.Error("unknown figure accepted")
	}
}
