// Package bench implements the paper's evaluation (§6): one driver per
// figure that regenerates the figure's series on the in-process substrate.
// Every driver returns a Table; bench_test.go and cmd/desis-bench print the
// same rows the paper plots. Absolute numbers depend on the host — the
// shapes (who wins, by what factor, where crossovers fall) are what the
// reproduction checks.
package bench

import (
	"fmt"
	"io"
	"sort"
)

// Config scales the experiments. Zero values choose test-friendly defaults;
// cmd/desis-bench raises them toward paper scale.
type Config struct {
	// Events is the number of events per measurement (default 200_000).
	Events int
	// WindowCounts is the concurrent-window sweep (default 1,10,100,1000).
	WindowCounts []int
	// Locals is the maximum local-node count for scalability sweeps
	// (default 4).
	Locals int
	// Keys is the distinct-key sweep maximum (default 64).
	Keys int
}

func (c Config) withDefaults() Config {
	if c.Events <= 0 {
		c.Events = 200_000
	}
	if len(c.WindowCounts) == 0 {
		c.WindowCounts = []int{1, 10, 100, 1000}
	}
	if c.Locals <= 0 {
		c.Locals = 4
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	return c
}

// Point is one measurement: series (system name), x (swept parameter), y
// (measured value).
type Point struct {
	Series string
	X      float64
	Y      float64
}

// Table is a reproduced figure: the same series the paper plots.
type Table struct {
	ID     string // e.g. "fig6b"
	Title  string
	XLabel string
	YLabel string
	Points []Point
}

// Add appends one measurement.
func (t *Table) Add(series string, x, y float64) {
	t.Points = append(t.Points, Point{Series: series, X: x, Y: y})
}

// Fprint renders the table: one row per x value, one column per series.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   x = %s, y = %s\n", t.XLabel, t.YLabel)
	var series []string
	seen := map[string]bool{}
	xs := map[float64]bool{}
	for _, p := range t.Points {
		if !seen[p.Series] {
			seen[p.Series] = true
			series = append(series, p.Series)
		}
		xs[p.X] = true
	}
	var xvals []float64
	for x := range xs {
		xvals = append(xvals, x)
	}
	sort.Float64s(xvals)
	fmt.Fprintf(w, "%12s", "x")
	for _, s := range series {
		fmt.Fprintf(w, " %14s", s)
	}
	fmt.Fprintln(w)
	for _, x := range xvals {
		fmt.Fprintf(w, "%12g", x)
		for _, s := range series {
			y, ok := lookup(t.Points, s, x)
			if ok {
				fmt.Fprintf(w, " %14.4g", y)
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func lookup(points []Point, series string, x float64) (float64, bool) {
	for _, p := range points {
		if p.Series == series && p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Value returns the measurement of a series at x, for shape assertions.
func (t *Table) Value(series string, x float64) (float64, bool) {
	return lookup(t.Points, series, x)
}
