package bench

import (
	"testing"
	"time"

	"desis/internal/core"
	"desis/internal/gen"
	"desis/internal/operator"
	"desis/internal/query"
)

// TestMultiqueryWorkloadSmoke runs the examples/multiquery workload shape
// (1000 mixed queries incl. 250 distinct quantiles and 250 sessions) as a
// performance-regression canary: it must complete quickly; the assembly
// optimisations (k-way run merge, per-member operator masks, min/max from
// run endpoints) keep it that way.
func TestMultiqueryWorkloadSmoke(t *testing.T) {
	var qs []query.Query
	for i := 0; i < 1000; i++ {
		q := query.Query{ID: uint64(i + 1), Pred: query.All()}
		switch i % 4 {
		case 0:
			q.Type = query.Tumbling
			q.Length = int64(1000 + (i%10)*1000)
			q.Funcs = []operator.FuncSpec{{Func: operator.Average}}
		case 1:
			q.Type = query.Sliding
			q.Length = 10_000
			q.Slide = int64(500 + (i%8)*500)
			q.Funcs = []operator.FuncSpec{{Func: operator.Sum}}
		case 2:
			q.Type = query.Tumbling
			q.Length = 5000
			q.Funcs = []operator.FuncSpec{{Func: operator.Quantile, Arg: float64(1+i%99) / 100}}
		case 3:
			q.Type = query.Session
			q.Gap = int64(200 + (i%5)*100)
			q.Funcs = []operator.FuncSpec{{Func: operator.Max}}
		}
		qs = append(qs, q)
	}
	groups, err := query.Analyze(qs, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(groups, core.Config{OnResult: func(core.Result) {}})
	s := gen.NewStream(gen.StreamConfig{Seed: 7, Keys: 1, IntervalMS: 1, GapEvery: 50_000, GapMS: 2000})
	start := time.Now()
	const n = 150_000
	for i := 0; i < n; i++ {
		e.Process(s.Next())
	}
	t.Logf("throughput %.0f ev/s, windows %d", n/time.Since(start).Seconds(), e.Stats().Windows)
}
