package bench

import (
	"sort"
	"sync"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/gen"
	"desis/internal/message"
	"desis/internal/operator"
	"desis/internal/query"
)

// AblationCalendar measures the advance punctuation calendar against
// per-event boundary re-derivation (§6.2.1: Desis "is able to calculate
// window ends in advance instead of checking each arriving event").
func AblationCalendar(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ablation-calendar", Title: "Advance punctuation calendar", XLabel: "windows", YLabel: "events/s"}
	sc := gen.StreamConfig{Seed: 9, Keys: 1, IntervalMS: 1}
	for _, w := range cfg.WindowCounts {
		qs := gen.TumblingSweep(w, 1000, 10000, operator.Average)
		groups, err := query.Analyze(qs, query.Options{})
		if err != nil {
			return nil, err
		}
		events := scaleEvents(cfg.Events, 1)
		for _, mode := range []struct {
			name    string
			perSlow bool
		}{{"calendar", false}, {"per-event-check", true}} {
			e := core.New(groups, core.Config{PerEventBoundaryCheck: mode.perSlow})
			s := gen.NewStream(sc)
			evs := s.Events(events)
			start := time.Now()
			e.ProcessBatch(evs)
			e.AdvanceTo(s.Now() + 60_000)
			e.Results()
			t.Add(mode.name, float64(w), float64(events)/time.Since(start).Seconds())
		}
	}
	return t, nil
}

// AblationOperatorSharing isolates the Table-1 operator union: Desis' one
// shared non-decomposable sort versus one sort per distinct quantile
// function (the DeSW/Scotty strategy).
func AblationOperatorSharing(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ablation-opsharing", Title: "Operator sharing across functions", XLabel: "distinct quantile functions", YLabel: "events/s"}
	sc := gen.StreamConfig{Seed: 9, Keys: 1, IntervalMS: 1}
	for _, w := range cfg.WindowCounts {
		qs := fig9Queries(w, "quantiles")
		events := scaleEvents(cfg.Events, w)
		evs, drain := stream(sc, events)
		for _, f := range []SystemFactory{OptimizationSystems[0], OptimizationSystems[1]} { // Desis, DeSW
			r, err := runCentral(f, qs, evs, drain)
			if err != nil {
				return nil, err
			}
			name := "shared-operators"
			if f.Name != "Desis" {
				name = "per-function"
			}
			t.Add(name, float64(w), r.Throughput)
		}
	}
	return t, nil
}

// AblationPartialGranularity compares per-slice partials (Desis) with
// per-window partials (Disco) on the wire as window overlap grows.
func AblationPartialGranularity(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ablation-granularity", Title: "Per-slice vs per-window partials", XLabel: "overlapping windows", YLabel: "local bytes"}
	sc := gen.StreamConfig{Seed: 9, Keys: 1, IntervalMS: 1}
	for _, w := range []int{1, 4, 16} {
		var qs []query.Query
		for i := 1; i <= w; i++ {
			qs = append(qs, query.Query{
				ID: uint64(i), Pred: query.All(), Type: query.Sliding,
				Length: int64(i) * 1000, Slide: 1000,
				Funcs: []operator.FuncSpec{{Func: operator.Average}},
			})
		}
		for _, d := range Deployments[:2] { // Desis, Disco
			r, err := buildAndRun(d, qs, 2, 1, 0, sc, cfg.Events/4)
			if err != nil {
				return nil, err
			}
			name := "per-slice"
			if d.Name == "Disco" {
				name = "per-window"
			}
			t.Add(name, float64(w), float64(r.LocalBytes))
		}
	}
	return t, nil
}

// AblationCodecs compares the three wire codecs on both traffic classes:
// raw event batches (what centralized systems and RootOnly groups ship) and
// slice partials (Desis' decomposable traffic).
func AblationCodecs(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ablation-codecs", Title: "Wire codecs: bytes per message class", XLabel: "class (0=event batch, 1=partial)", YLabel: "bytes"}
	s := gen.NewStream(gen.StreamConfig{Seed: 12, Keys: 10, IntervalMS: 1})
	evs := s.Events(512)
	batch := &message.Message{Kind: message.KindEventBatch, From: 1, Events: evs}

	agg := operator.NewAgg(operator.OpSum | operator.OpCount)
	for i := 0; i < 1000; i++ {
		agg.Add(float64(i) * 1.37)
	}
	agg.Finish()
	partial := &message.Message{Kind: message.KindPartial, From: 1, Partial: &core.SlicePartial{
		Group: 3, ID: 12345, Start: 1_000_000, End: 1_001_000, LastEvent: 1_000_990,
		Ingested: 1000, Aggs: []operator.Agg{agg},
	}}
	codecs := []message.Codec{message.Binary{}, message.Compact{}, message.Text{}}
	for _, c := range codecs {
		b, err := c.Append(nil, batch)
		if err != nil {
			return nil, err
		}
		t.Add(c.Name(), 0, float64(len(b)))
		p, err := c.Append(nil, partial)
		if err != nil {
			return nil, err
		}
		t.Add(c.Name(), 1, float64(len(p)))
	}
	return t, nil
}

// AblationShardedRoot quantifies the paper's proposed mitigation for the
// >10k-query result-materialisation bottleneck (§6.5.1): the same workload
// on 1 vs N key-sharded engines.
func AblationShardedRoot(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ablation-shardedroot", Title: "Single vs sharded root engines", XLabel: "queries", YLabel: "events/s"}
	for _, w := range cfg.WindowCounts {
		var qs []query.Query
		for i := 0; i < w; i++ {
			qs = append(qs, query.Query{
				ID: uint64(i + 1), Key: uint32(i % 16), Pred: query.All(),
				Type: query.Tumbling, Length: int64(1000 * (1 + i%10)),
				Funcs: []operator.FuncSpec{{Func: operator.Average}},
			})
		}
		events := scaleEvents(cfg.Events, w)
		sc := gen.StreamConfig{Seed: 13, Keys: 16, IntervalMS: 1}
		evs, drain := stream(sc, events)
		// Single engine.
		groups, err := query.Analyze(qs, query.Options{})
		if err != nil {
			return nil, err
		}
		e := core.New(groups, core.Config{OnResult: func(core.Result) {}})
		start := time.Now()
		e.ProcessBatch(evs)
		e.AdvanceTo(drain) // both variants include the drain
		single := float64(events) / time.Since(start).Seconds()
		t.Add("single-root", float64(w), single)
		// Sharded engines, fed round-robin by key from this thread; the
		// shards run in parallel goroutines via channels.
		sharded, err := shardedRate(qs, evs, drain, 4)
		if err != nil {
			return nil, err
		}
		t.Add("4-sharded-roots", float64(w), sharded)
	}
	return t, nil
}

// shardedRate mirrors desis.ParallelEngine inside the harness (the facade
// depends on internal packages, not vice versa).
func shardedRate(qs []query.Query, evs []event.Event, drain int64, n int) (float64, error) {
	type shard struct {
		e  *core.Engine
		ch chan []event.Event
	}
	shards := make([]*shard, n)
	var wg sync.WaitGroup
	for i := range shards {
		var part []query.Query
		for _, q := range qs {
			if int(q.Key)%n == i {
				part = append(part, q)
			}
		}
		groups, err := query.Analyze(part, query.Options{})
		if err != nil {
			return 0, err
		}
		sh := &shard{
			e:  core.New(groups, core.Config{OnResult: func(core.Result) {}}),
			ch: make(chan []event.Event, 32),
		}
		shards[i] = sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range sh.ch {
				sh.e.ProcessBatch(b)
			}
			sh.e.AdvanceTo(drain)
		}()
	}
	start := time.Now()
	bufs := make([][]event.Event, n)
	for _, ev := range evs {
		s := int(ev.Key) % n
		bufs[s] = append(bufs[s], ev)
		if len(bufs[s]) >= 512 {
			shards[s].ch <- bufs[s]
			bufs[s] = nil
		}
	}
	for i, b := range bufs {
		if len(b) > 0 {
			shards[i].ch <- b
		}
		close(shards[i].ch)
	}
	wg.Wait()
	return float64(len(evs)) / time.Since(start).Seconds(), nil
}

// AblationSortedBatches compares the root's cost of merging pre-sorted
// per-slice value runs (what local nodes ship for non-decomposable
// functions, §5.2) against re-sorting raw batches at the root.
func AblationSortedBatches(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "ablation-sortedbatches", Title: "Sorted-run merge vs root-side sort", XLabel: "values per slice", YLabel: "values/s"}
	for _, per := range []int{1000, 10_000, 100_000} {
		slices := cfg.Events / per
		if slices < 8 {
			slices = 8
		}
		// Build the same value runs once.
		runs := make([][]float64, slices)
		x := 1.0
		for i := range runs {
			r := make([]float64, per)
			for j := range r {
				x = x*1103515245 + 12345
				if x > 1e18 {
					x /= 1e12
				}
				r[j] = x
			}
			runs[i] = r
		}
		total := float64(slices * per)

		// Sorted-run merge: each slice sorted at the local node, the root
		// only merges.
		sorted := make([][]float64, slices)
		for i, r := range runs {
			cp := append([]float64(nil), r...)
			sort.Float64s(cp)
			sorted[i] = cp
		}
		start := time.Now()
		agg := operator.NewAgg(operator.OpNDSort | operator.OpCount)
		agg.Finish()
		for _, r := range sorted {
			var b operator.Agg
			b.Reset(operator.OpNDSort | operator.OpCount)
			b.Values = r
			b.CountV = int64(len(r))
			b.Sorted = true
			agg.Merge(&b)
		}
		t.Add("merge-sorted-runs", float64(per), total/time.Since(start).Seconds())

		// Root-side sort: raw batches concatenated and sorted at the end.
		start = time.Now()
		var all []float64
		for _, r := range runs {
			all = append(all, r...)
		}
		sort.Float64s(all)
		t.Add("root-side-sort", float64(per), total/time.Since(start).Seconds())
	}
	return t, nil
}
