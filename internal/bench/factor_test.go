package bench

import "testing"

// TestFactorRewriteWins pins the factor-window optimizer's win at a depth-3
// divisibility chain: the rewrite must at least halve the exact merge count
// on the naive-assembly leg (the deterministic measure — throughput is
// host-dependent), and every leg must emit the identical window multiset.
func TestFactorRewriteWins(t *testing.T) {
	rep, err := RunFactorReport(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllHashesEqual {
		t.Error("optimized and unoptimized plans emitted different window multisets")
	}
	for _, p := range rep.Points {
		if !p.ResultsMatch {
			t.Errorf("%s: results diverged between optimizer off and on", p.Assembly)
		}
		if p.Windows == 0 {
			t.Errorf("%s: no windows emitted", p.Assembly)
		}
		if p.Assembly == "naive" && p.MergeReduction < 2 {
			t.Errorf("naive leg merge reduction %.2fx < 2x (merges %d -> %d)",
				p.MergeReduction, p.OffMerges, p.OnMerges)
		}
	}
}
