package bench

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"desis/internal/core"
	"desis/internal/gen"
	"desis/internal/metrics"
	"desis/internal/query"
	"desis/internal/telemetry"
)

// The latency experiment measures window-assembly latency tails across the
// pluggable assembly strategies (core.Config.Assembly). Two-stacks answers
// with O(1) amortized merges but pays a periodic O(ring) rebuild that lands
// entirely on one emission; DABA-Lite spreads the rebuild over slice closes
// for worst-case O(1) merges per emission; naive re-folds every covering
// slice. The interesting signal is not the median — all three are fast
// there — but p99.9: two-stacks' flip bursts and naive's per-window re-fold
// both surface in the tail, and DABA-Lite flattens it.

// LatencyStrategy is one strategy's measurement at one window count.
type LatencyStrategy struct {
	// Assembly is the strategy name (two-stacks, daba, naive).
	Assembly string `json:"assembly"`
	// EventsPerSec is end-to-end ingest throughput (assembly runs inline).
	EventsPerSec float64 `json:"events_per_sec"`
	// P50Usec/P99Usec/P999Usec/MaxUsec are quantiles of the per-assembly
	// engine.assembly_latency histogram, in microseconds (~4% resolution).
	P50Usec  float64 `json:"p50_usec"`
	P99Usec  float64 `json:"p99_usec"`
	P999Usec float64 `json:"p999_usec"`
	MaxUsec  float64 `json:"max_usec"`
	// Samples is the histogram population (one sample per window assembly).
	Samples uint64 `json:"samples"`
}

// LatencyPoint is one window count's sweep across the strategies.
type LatencyPoint struct {
	// Windows is the number of overlapping sliding queries in the group.
	Windows int `json:"windows"`
	// Strategies holds two-stacks, daba, and naive, in that order.
	Strategies []LatencyStrategy `json:"strategies"`
	// ResultsMatch is true when all strategies emitted the same windows
	// with values equal to 1e-9 relative tolerance (the indexes fold
	// slices in different association orders).
	ResultsMatch bool `json:"results_match"`
	// P999Improvement is the two-stacks p99.9 divided by the DABA p99.9:
	// how much the worst-case-O(1) index flattens the tail.
	P999Improvement float64 `json:"p999_improvement"`
}

// LatencyReport is the JSON document desis-bench -exp latency -out writes
// (BENCH_latency.json in the repo root).
type LatencyReport struct {
	// Events is the per-measurement stream length.
	Events int `json:"events_per_measurement"`
	// SlideMS is the common slide of the swept queries.
	SlideMS int64 `json:"slide_ms"`
	// Points holds one entry per overlapping-window count.
	Points []LatencyPoint `json:"points"`
}

// latencyRun measures one strategy: ingest throughput, the assembly-latency
// histogram, and the emitted results for the cross-strategy match check.
func latencyRun(qs []query.Query, events int, asm core.AssemblyKind) (LatencyStrategy, []core.Result, error) {
	groups, err := query.Analyze(qs, query.Options{})
	if err != nil {
		return LatencyStrategy{}, nil, err
	}
	reg := telemetry.NewRegistry()
	e := core.New(groups, core.Config{Assembly: asm, Telemetry: reg})
	s := gen.NewStream(gen.StreamConfig{Seed: 21, Keys: 1, IntervalMS: 1})
	evs := s.Events(events)
	// The signal is tens-of-microseconds rebuild bursts at p99.9 of a few
	// thousand boundary samples; a single GC pause inside the measured
	// region is larger than every burst and lands exactly in that tail, so
	// collection is paused for the measurement (the run's live set is small
	// and bounded).
	prevGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prevGC)
	runtime.GC()
	start := time.Now()
	e.ProcessBatch(evs)
	e.AdvanceTo(s.Now() + 60_000)
	elapsed := time.Since(start)
	h := metrics.Import(reg.Histogram("engine.assembly_latency").Export())
	usec := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return LatencyStrategy{
		Assembly:     asm.String(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		P50Usec:      usec(h.Quantile(0.5)),
		P99Usec:      usec(h.Quantile(0.99)),
		P999Usec:     usec(h.Quantile(0.999)),
		MaxUsec:      usec(h.Max()),
		Samples:      h.Count(),
	}, e.Results(), nil
}

// latencyResultsClose compares two strategies' emissions window by window
// with 1e-9 relative tolerance on the values.
func latencyResultsClose(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(rs []core.Result) {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].QueryID != rs[j].QueryID {
				return rs[i].QueryID < rs[j].QueryID
			}
			if rs[i].Start != rs[j].Start {
				return rs[i].Start < rs[j].Start
			}
			return rs[i].End < rs[j].End
		})
	}
	key(a)
	key(b)
	for i := range a {
		x, y := a[i], b[i]
		if x.QueryID != y.QueryID || x.Start != y.Start || x.End != y.End || x.Count != y.Count || len(x.Values) != len(y.Values) {
			return false
		}
		for j := range x.Values {
			if x.Values[j].OK != y.Values[j].OK {
				return false
			}
			if x.Values[j].OK && math.Abs(x.Values[j].Value-y.Values[j].Value) > 1e-9*(1+math.Abs(y.Values[j].Value)) {
				return false
			}
		}
	}
	return true
}

// RunLatencyReport executes the latency sweep and returns the structured
// report.
func RunLatencyReport(cfg Config) (*LatencyReport, error) {
	cfg = cfg.withDefaults()
	events := scaleEvents(cfg.Events, 1)
	rep := &LatencyReport{Events: events, SlideMS: 100}
	for _, n := range []int{32, 64} {
		qs := assemblyQueries(n)
		point := LatencyPoint{Windows: n, ResultsMatch: true}
		var results [][]core.Result
		for _, asm := range []core.AssemblyKind{core.AssemblyTwoStacks, core.AssemblyDABA, core.AssemblyNaive} {
			st, res, err := latencyRun(qs, events, asm)
			if err != nil {
				return nil, err
			}
			point.Strategies = append(point.Strategies, st)
			results = append(results, res)
		}
		for _, res := range results[1:] {
			if !latencyResultsClose(results[0], res) {
				point.ResultsMatch = false
			}
		}
		if daba := point.Strategies[1].P999Usec; daba > 0 {
			point.P999Improvement = point.Strategies[0].P999Usec / daba
		}
		rep.Points = append(rep.Points, point)
	}
	return rep, nil
}

// Latency renders the latency sweep as a table experiment.
func Latency(cfg Config) (*Table, error) {
	rep, err := RunLatencyReport(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "latency", Title: "Assembly-latency tails by strategy", XLabel: "overlapping sliding windows", YLabel: "p99.9 usec"}
	for _, p := range rep.Points {
		for _, s := range p.Strategies {
			t.Add(s.Assembly, float64(p.Windows), s.P999Usec)
		}
		t.Add("p999-improvement", float64(p.Windows), p.P999Improvement)
		if !p.ResultsMatch {
			return nil, fmt.Errorf("latency: strategies diverged at %d windows", p.Windows)
		}
	}
	return t, nil
}
