package bench

import (
	"fmt"
	"runtime"
	"time"

	"desis/internal/baseline"
	"desis/internal/event"
	"desis/internal/gen"
	"desis/internal/operator"
	"desis/internal/query"
)

// workloadStream is the standard 10-key sensor stream of §6.2.
func workloadStream(cfg Config, markers bool) (gen.StreamConfig, int) {
	sc := gen.StreamConfig{Seed: 1, Keys: 10, IntervalMS: 1}
	if markers {
		sc.MarkerEvery = 1000 // ~1 user-defined event per second (§6.3.1)
	}
	return sc, cfg.Events
}

// replicate builds n concurrent windows by cycling a base query set and
// re-assigning ids.
func replicate(base []query.Query, n int) []query.Query {
	out := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		q := base[i%len(base)]
		q.ID = uint64(i + 1)
		out = append(out, q)
	}
	return out
}

// scaleEvents shrinks per-run events as the query count grows so the slow
// baselines finish; throughput is a rate and stays comparable.
func scaleEvents(events, windows int) int {
	e := events / windows * 10
	if e > events {
		e = events
	}
	if floor := events / 10; e < floor {
		e = floor
	}
	if e < 2000 {
		e = 2000
	}
	return e
}

// Fig6a reproduces Figure 6a: latency of a single tumbling window with an
// average aggregation over 10 distinct keys, per system. X is 0 (single
// configuration); Y is mean window-emission latency in microseconds.
func Fig6a(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig6a", Title: "Latency of a single window", XLabel: "-", YLabel: "mean latency (us)"}
	var qs []query.Query
	for k := 0; k < 10; k++ {
		qs = append(qs, query.Query{
			ID: uint64(k + 1), Key: uint32(k), Pred: query.All(),
			Type: query.Tumbling, Length: 1000,
			Funcs: []operator.FuncSpec{{Func: operator.Average}},
		})
	}
	sc, n := workloadStream(cfg, false)
	evs, drain := stream(sc, n)
	for _, f := range CentralSystems {
		// Warm the code paths once, then measure.
		if _, _, err := runLatency(f, qs, evs, drain); err != nil {
			return nil, err
		}
		mean, _, err := runLatency(f, qs, evs, drain)
		if err != nil {
			return nil, err
		}
		t.Add(f.Name, 0, float64(mean.Nanoseconds())/1000)
	}
	return t, nil
}

// Fig6b reproduces Figure 6b: throughput of 1..1000 concurrent tumbling
// windows with lengths equally distributed over 1–10 s.
func Fig6b(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig6b", Title: "Throughput of concurrent windows", XLabel: "windows", YLabel: "events/s"}
	sc, n := workloadStream(cfg, false)
	for _, w := range cfg.WindowCounts {
		qs := gen.TumblingSweep(w, 1000, 10000, operator.Average)
		evs, drain := stream(sc, scaleEvents(n, w))
		for _, f := range CentralSystems {
			r, err := runCentral(f, qs, evs, drain)
			if err != nil {
				return nil, err
			}
			t.Add(f.Name, float64(w), r.Throughput)
		}
	}
	return t, nil
}

// fig8 runs the §6.3.1 optimization workload: concurrent windows of mixed
// lengths, optionally half user-defined, reporting throughput and slices per
// event-time minute.
func fig8(cfg Config, userDefined bool, idT, idS string) (*Table, *Table, error) {
	cfg = cfg.withDefaults()
	tt := &Table{ID: idT, Title: "Throughput of concurrent windows", XLabel: "windows", YLabel: "events/s"}
	ts := &Table{ID: idS, Title: "Slices per minute", XLabel: "windows", YLabel: "slices/min"}
	sc, n := workloadStream(cfg, userDefined)
	sc.Keys = 1 // same keys: one shared stream of windows (§6.3)
	for _, w := range cfg.WindowCounts {
		qs := gen.TumblingSweep(w, 1000, 10000, operator.Average)
		if userDefined {
			for i := range qs {
				if i%2 == 1 {
					qs[i] = query.Query{
						ID: qs[i].ID, Pred: query.All(), Type: query.UserDefined,
						Funcs: []operator.FuncSpec{{Func: operator.Average}},
					}
				}
			}
		}
		events := scaleEvents(n, w)
		evs, drain := stream(sc, events)
		minutes := float64(evs[len(evs)-1].Time-evs[0].Time) / 60000
		for _, f := range OptimizationSystems {
			r, err := runCentral(f, qs, evs, drain)
			if err != nil {
				return nil, nil, err
			}
			tt.Add(f.Name, float64(w), r.Throughput)
			ts.Add(f.Name, float64(w), float64(r.Slices)/minutes)
		}
	}
	return tt, ts, nil
}

// Fig8a and Fig8b reproduce Figures 8a/8b (concurrent tumbling windows).
func Fig8ab(cfg Config) (*Table, *Table, error) { return fig8(cfg, false, "fig8a", "fig8b") }

// Fig8cd reproduces Figures 8c/8d (half the windows user-defined).
func Fig8cd(cfg Config) (*Table, *Table, error) { return fig8(cfg, true, "fig8c", "fig8d") }

// fig9Workload builds the §6.3.2 mixes.
func fig9Queries(w int, kind string) []query.Query {
	var base []query.Query
	mk := func(funcs ...operator.FuncSpec) query.Query {
		return query.Query{Pred: query.All(), Type: query.Tumbling, Length: 1000, Funcs: funcs}
	}
	switch kind {
	case "avgsum":
		base = []query.Query{
			mk(operator.FuncSpec{Func: operator.Average}),
			mk(operator.FuncSpec{Func: operator.Sum}),
		}
	case "quantiles":
		base = nil
		for i := 0; i < w; i++ {
			arg := float64(1+i%999+1) / 1001
			base = append(base, mk(operator.FuncSpec{Func: operator.Quantile, Arg: arg}))
		}
	case "twofuncs":
		base = []query.Query{
			mk(operator.FuncSpec{Func: operator.Average}, operator.FuncSpec{Func: operator.Max}),
			mk(operator.FuncSpec{Func: operator.Sum}, operator.FuncSpec{Func: operator.Min}),
		}
	case "quantmax":
		base = nil
		for i := 0; i < w; i++ {
			arg := float64(1+i%999+1) / 1001
			base = append(base, mk(
				operator.FuncSpec{Func: operator.Quantile, Arg: arg},
				operator.FuncSpec{Func: operator.Max},
			))
		}
	case "measures":
		timeQ := mk(operator.FuncSpec{Func: operator.Average})
		countQ := query.Query{
			Pred: query.All(), Type: query.Tumbling, Measure: query.Count, Length: 10000,
			Funcs: []operator.FuncSpec{{Func: operator.Average}},
		}
		base = []query.Query{timeQ, countQ}
	}
	return replicate(base, w)
}

// Fig9 reproduces one panel of Figure 9. kind selects the workload:
// avgsum (9a/9b), quantiles (9c/9d), twofuncs (9e/9f), quantmax (9g),
// measures (9h). It returns the throughput table and the
// calculations-per-run table.
func Fig9(cfg Config, kind, idT, idC string) (*Table, *Table, error) {
	cfg = cfg.withDefaults()
	tt := &Table{ID: idT, Title: "Throughput, workload " + kind, XLabel: "windows", YLabel: "events/s"}
	tc := &Table{ID: idC, Title: "Executed calculations, workload " + kind, XLabel: "windows", YLabel: "calculations"}
	sc, n := workloadStream(cfg, false)
	sc.Keys = 1
	for _, w := range cfg.WindowCounts {
		qs := fig9Queries(w, kind)
		events := scaleEvents(n, w)
		evs, drain := stream(sc, events)
		for _, f := range OptimizationSystems {
			r, err := runCentral(f, qs, evs, drain)
			if err != nil {
				return nil, nil, err
			}
			tt.Add(f.Name, float64(w), r.Throughput)
			// Normalise calculations to per-10k-events so rows compare
			// across the event scaling.
			tc.Add(f.Name, float64(w), float64(r.Calculations)/float64(events)*10000)
		}
	}
	return tt, tc, nil
}

// Fig10 reproduces Figures 10a–10d: count-based windows where either the
// number of slices per window (sweepSlices=true) or the slice size varies.
// It returns throughput and latency tables.
func Fig10(cfg Config, sweepSlices bool, idT, idL string) (*Table, *Table, error) {
	cfg = cfg.withDefaults()
	xlabel := "slices/window"
	if !sweepSlices {
		xlabel = "events/slice"
	}
	tt := &Table{ID: idT, Title: "Throughput vs " + xlabel, XLabel: xlabel, YLabel: "events/s"}
	tl := &Table{ID: idL, Title: "Latency vs " + xlabel, XLabel: xlabel, YLabel: "mean latency (us)"}
	sc, n := workloadStream(cfg, false)
	sc.Keys = 1
	sweep := []int{1, 10, 100, 1000}
	for _, x := range sweep {
		sliceSize, slices := 1000, x
		if !sweepSlices {
			sliceSize, slices = x, 100
		}
		// Two count-based queries: the small one sets the slice grain, the
		// large one spans slices*sliceSize events.
		small := query.Query{
			ID: 1, Pred: query.All(), Type: query.Tumbling,
			Measure: query.Count, Length: int64(sliceSize),
			Funcs: []operator.FuncSpec{{Func: operator.Sum}},
		}
		big := small
		big.ID = 2
		big.Length = int64(sliceSize * slices)
		qs := []query.Query{small, big}
		events := n
		if minEvents := sliceSize * slices * 3; events < minEvents {
			events = minEvents
		}
		evs, drain := stream(sc, events)
		for _, f := range OptimizationSystems {
			r, err := runCentral(f, qs, evs, drain)
			if err != nil {
				return nil, nil, err
			}
			tt.Add(f.Name, float64(x), r.Throughput)
		}
		latEvents := events / 4
		if latEvents < sliceSize*slices*2 {
			latEvents = sliceSize * slices * 2
		}
		levs, ldrain := stream(sc, latEvents)
		for _, f := range OptimizationSystems {
			mean, _, err := runLatency(f, qs, levs, ldrain)
			if err != nil {
				return nil, nil, err
			}
			tl.Add(f.Name, float64(x), float64(mean.Nanoseconds())/1000)
		}
	}
	return tt, tl, nil
}

// Fig13a reproduces Figure 13a: throughput over the real-world-style random
// query mix as the number of queries grows.
func Fig13a(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig13a", Title: "Real-world query mix", XLabel: "queries", YLabel: "events/s"}
	sc := gen.StreamConfig{Seed: 5, Keys: 10, IntervalMS: 1, MarkerEvery: 2000, GapEvery: 5000, GapMS: 3000}
	for _, w := range cfg.WindowCounts {
		qs := gen.Queries(w, gen.QueryConfig{
			Seed: int64(w), Keys: 10, AllowCount: true,
			Types: []query.WindowType{query.Tumbling, query.Sliding, query.Session, query.UserDefined},
		})
		events := scaleEvents(cfg.Events, w)
		evs, drain := stream(sc, events)
		for _, f := range OptimizationSystems {
			r, err := runCentral(f, qs, evs, drain)
			if err != nil {
				return nil, err
			}
			t.Add(f.Name, float64(w), r.Throughput)
		}
	}
	return t, nil
}

// Fig7ab reproduces Figures 7a/7b: end-to-end throughput while adding local
// nodes, for a decomposable (average) and a non-decomposable (median)
// function. All locals connect through one intermediate, as in the paper.
func Fig7ab(cfg Config, median bool, id string) (*Table, error) {
	cfg = cfg.withDefaults()
	f := operator.Average
	if median {
		f = operator.Median
	}
	t := &Table{ID: id, Title: "Scalability with local nodes (" + f.String() + ")", XLabel: "local nodes", YLabel: "events/s"}
	qs := gen.TumblingSweep(10, 1000, 10000, f)
	sc := gen.StreamConfig{Seed: 3, Keys: 10, IntervalMS: 1}
	perLocal := cfg.Events / 2
	for locals := 1; locals <= cfg.Locals; locals++ {
		for _, d := range Deployments {
			r, err := buildAndRun(d, qs, locals, 1, 0, sc, perLocal)
			if err != nil {
				return nil, err
			}
			t.Add(d.Name, float64(locals), r.Throughput)
		}
	}
	return t, nil
}

// Fig11ab reproduces Figures 11a/11b: per-layer network overhead of one
// query in a local→intermediate→root chain, for average and median.
func Fig11ab(cfg Config, median bool, id string) (*Table, error) {
	cfg = cfg.withDefaults()
	f := operator.Average
	if median {
		f = operator.Median
	}
	t := &Table{ID: id, Title: "Network overhead by layer (" + f.String() + ")", XLabel: "layer (0=local,1=intermediate)", YLabel: "bytes"}
	qs := []query.Query{{
		ID: 1, Pred: query.All(), Type: query.Tumbling, Length: 1000,
		Funcs: []operator.FuncSpec{{Func: f}},
	}}
	sc := gen.StreamConfig{Seed: 4, Keys: 1, IntervalMS: 1}
	for _, d := range Deployments {
		if d.Name == "Disco" && median {
			// Disco ships per-window value batches for median too; it
			// participates (the string encoding shows up here).
			_ = d
		}
		r, err := buildAndRun(d, qs, 1, 1, 0, sc, cfg.Events)
		if err != nil {
			return nil, err
		}
		t.Add(d.Name, 0, float64(r.LocalBytes))
		t.Add(d.Name, 1, float64(r.InterBytes))
	}
	return t, nil
}

// Fig11c reproduces Figure 11c: network overhead of one query as the number
// of distinct keys grows (Desis and Disco).
func Fig11c(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig11c", Title: "Network overhead vs distinct keys", XLabel: "keys", YLabel: "bytes"}
	sc := gen.StreamConfig{Seed: 4, IntervalMS: 1}
	for keys := 1; keys <= cfg.Keys; keys *= 4 {
		var qs []query.Query
		for k := 0; k < keys; k++ {
			qs = append(qs, query.Query{
				ID: uint64(k + 1), Key: uint32(k), Pred: query.All(),
				Type: query.Tumbling, Length: 1000,
				Funcs: []operator.FuncSpec{{Func: operator.Average}},
			})
		}
		sc.Keys = keys
		for _, d := range Deployments[:2] { // Desis, Disco
			r, err := buildAndRun(d, qs, 1, 1, 0, sc, cfg.Events)
			if err != nil {
				return nil, err
			}
			t.Add(d.Name, float64(keys), float64(r.LocalBytes))
		}
	}
	return t, nil
}

// Fig11d reproduces Figure 11d: network overhead with growing concurrent
// windows over a single key — constant for Desis (slices shared), growing
// for Disco (per-window partials).
func Fig11d(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig11d", Title: "Network overhead vs concurrent windows", XLabel: "windows", YLabel: "bytes"}
	sc := gen.StreamConfig{Seed: 4, Keys: 1, IntervalMS: 1}
	for _, w := range cfg.WindowCounts {
		qs := gen.TumblingSweep(w, 1000, 10000, operator.Average)
		for _, d := range Deployments[:2] { // Desis, Disco
			r, err := buildAndRun(d, qs, 1, 1, 0, sc, cfg.Events/2)
			if err != nil {
				return nil, err
			}
			t.Add(d.Name, float64(w), float64(r.LocalBytes))
		}
	}
	return t, nil
}

// Fig13bc reproduces Figures 13b/13c: the Raspberry-Pi cluster, modelled as
// bandwidth-throttled links — throughput vs nodes (13b) and per-second
// network volume (13c). Fig13d covers the latency panel.
func Fig13bc(cfg Config, bandwidth float64) (*Table, *Table, error) {
	cfg = cfg.withDefaults()
	tb := &Table{ID: "fig13b", Title: "Throughput on bandwidth-limited cluster", XLabel: "local nodes", YLabel: "events/s"}
	tc := &Table{ID: "fig13c", Title: "Network volume per second", XLabel: "local nodes", YLabel: "bytes/s"}
	if bandwidth <= 0 {
		bandwidth = 4 << 20 // a deliberately small "1 GbE" stand-in so the plateau shows quickly
	}
	qs := gen.TumblingSweep(10, 1000, 10000, operator.Average)
	sc := gen.StreamConfig{Seed: 6, Keys: 10, IntervalMS: 1}
	perLocal := cfg.Events / 4
	for locals := 1; locals <= cfg.Locals; locals++ {
		for _, d := range Deployments {
			r, err := buildAndRun(d, qs, locals, 1, bandwidth, sc, perLocal)
			if err != nil {
				return nil, nil, err
			}
			tb.Add(d.Name, float64(locals), r.Throughput)
			bytesPerSec := float64(r.LocalBytes+r.InterBytes) * r.Throughput / float64(perLocal*locals)
			tc.Add(d.Name, float64(locals), bytesPerSec)
		}
	}
	return tb, tc, nil
}

// Fig13d reproduces Figure 13d (latency on the constrained cluster):
// end-to-end pipeline latency measured as the wall time between advancing
// every local node's watermark and the root catching up — the full
// local→intermediate→root round trip including throttled links.
func Fig13d(cfg Config, bandwidth float64) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{ID: "fig13d", Title: "Pipeline latency on bandwidth-limited cluster", XLabel: "-", YLabel: "mean latency (us)"}
	if bandwidth <= 0 {
		bandwidth = 4 << 20
	}
	qs := gen.TumblingSweep(10, 1000, 10000, operator.Average)
	for _, d := range Deployments {
		dep, err := d.Build(qs, 2, 1, bandwidth)
		if err != nil {
			return nil, err
		}
		sc := gen.StreamConfig{Seed: 7, Keys: 10, IntervalMS: 1}
		lat, err := pipelineLatency(dep, sc, cfg.Events/8)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		t.Add(d.Name, 0, float64(lat.Nanoseconds())/1000)
	}
	return t, nil
}

// pipelineLatency feeds rounds of events and measures how long the root
// takes to catch up with each watermark.
func pipelineLatency(d baseline.Deployment, sc gen.StreamConfig, events int) (time.Duration, error) {
	n := d.NumLocals()
	streams := make([]*gen.Stream, n)
	for i := range streams {
		c := sc
		c.Seed = sc.Seed + int64(i)*131
		streams[i] = gen.NewStream(c)
	}
	const rounds = 24
	perRound := events / rounds / n
	if perRound < 64 {
		perRound = 64
	}
	var total time.Duration
	measured := 0
	var batch []event.Event
	for r := 0; r < rounds; r++ {
		var maxT int64
		for i, s := range streams {
			batch = s.NextBatch(batch[:0], perRound)
			if err := d.Push(i, batch); err != nil {
				return 0, err
			}
			if s.Now() > maxT {
				maxT = s.Now()
			}
		}
		start := time.Now()
		if err := d.AdvanceAll(maxT); err != nil {
			return 0, err
		}
		for d.RootTime() < maxT {
			runtime.Gosched()
		}
		// Skip warm-up rounds.
		if r >= 4 {
			total += time.Since(start)
			measured++
		}
	}
	if err := d.Close(); err != nil {
		return 0, err
	}
	if measured == 0 {
		return 0, nil
	}
	return total / time.Duration(measured), nil
}

var errNoSuchFigure = fmt.Errorf("bench: unknown figure")
