package bench

import (
	"fmt"
	"sort"
	"time"

	"desis/internal/core"
	"desis/internal/gen"
	"desis/internal/message"
	"desis/internal/node"
	"desis/internal/operator"
	"desis/internal/query"
)

// The wire experiment measures the adaptive uplink batcher: how many events
// one Mbps of (throttled) uplink carries with and without columnar batching,
// and what the batcher costs in per-partial latency when the link is fast and
// it stays in cut-through mode.

// WirePoint is one throttled-link measurement: the same workload pushed
// through identical clusters, unbatched and batched.
type WirePoint struct {
	// BandwidthMbps is the per-link throttle (megabits per second).
	BandwidthMbps float64 `json:"bandwidth_mbps"`
	// UnbatchedEventsPerSec / BatchedEventsPerSec are end-to-end ingest rates.
	UnbatchedEventsPerSec float64 `json:"unbatched_events_per_sec"`
	BatchedEventsPerSec   float64 `json:"batched_events_per_sec"`
	// UnbatchedPerMbps / BatchedPerMbps normalise by link capacity: events
	// per second per Mbps, the paper-style network-efficiency figure.
	UnbatchedPerMbps float64 `json:"unbatched_events_per_sec_per_mbps"`
	BatchedPerMbps   float64 `json:"batched_events_per_sec_per_mbps"`
	// Gain is BatchedPerMbps / UnbatchedPerMbps.
	Gain float64 `json:"gain"`
	// UnbatchedLocalBytes / BatchedLocalBytes are the local layer's wire
	// bytes, the direct measure of the columnar encoding.
	UnbatchedLocalBytes uint64 `json:"unbatched_local_bytes"`
	BatchedLocalBytes   uint64 `json:"batched_local_bytes"`
}

// WireLatency is the unthrottled-link leg: per-partial delivery latency
// through a raw pipe versus the same pipe behind the batcher (which must stay
// in cut-through mode on a fast link).
type WireLatency struct {
	Samples          int     `json:"samples"`
	UnbatchedP50Usec float64 `json:"unbatched_p50_usec"`
	UnbatchedP99Usec float64 `json:"unbatched_p99_usec"`
	BatchedP50Usec   float64 `json:"batched_p50_usec"`
	BatchedP99Usec   float64 `json:"batched_p99_usec"`
	// P99Overhead is BatchedP99/UnbatchedP99 - 1 (0.1 = 10% slower).
	P99Overhead float64 `json:"p99_overhead"`
}

// WireReport is the JSON document desis-bench -exp wire -out writes
// (BENCH_wire.json in the repo root).
type WireReport struct {
	EventsPerLocal int         `json:"events_per_local"`
	Queries        int         `json:"queries"`
	Points         []WirePoint `json:"points"`
	Latency        WireLatency `json:"latency_unthrottled"`
}

// wireQueries builds the partial-heavy mix: continuous sliding windows over
// distinct keys, so the uplink carries a steady stream of slice partials.
func wireQueries(n, keys int) []query.Query {
	qs := make([]query.Query, n)
	for i := range qs {
		q := query.MustParse(fmt.Sprintf("sliding(1000ms,100ms) sum key=%d", i%keys))
		q.ID = uint64(i + 1)
		qs[i] = q
	}
	return qs
}

// runWireLeg pushes the workload through one cluster configuration and
// reports the ingest rate and local-layer wire bytes.
func runWireLeg(qs []query.Query, batch bool, bandwidth float64, events int) (deployRun, error) {
	groups, err := query.Analyze(qs, query.Options{Decentralized: true})
	if err != nil {
		return deployRun{}, err
	}
	c := node.NewCluster(groups, node.ClusterConfig{
		Locals:       1,
		Bandwidth:    bandwidth,
		Batch:        batch,
		BatchOptions: message.BatcherOptions{Compress: message.CompressAuto},
		OnResult:     func(core.Result) {},
	})
	return runDeployment(c, gen.StreamConfig{Seed: 11, IntervalMS: 1}, events)
}

// latencyPartial builds the minimal realistic partial the latency leg sends.
func latencyPartial(id uint64) *core.SlicePartial {
	a := operator.NewAgg(operator.OpCount | operator.OpSum)
	a.Add(float64(id))
	a.Finish()
	return &core.SlicePartial{
		Group: 0, ID: id,
		Start: int64(id) * 100, End: int64(id+1) * 100,
		LastEvent: int64(id)*100 + 50, Ingested: 1,
		Aggs: []operator.Agg{a},
	}
}

// wireLatencyLeg measures per-partial delivery latency over an unthrottled
// pipe, optionally behind the batcher. The producer is paced well below link
// capacity, so the batcher's adaptive mode must stay cut-through and the
// measured latency is the per-frame cost, not queueing under overload.
func wireLatencyLeg(batch bool, samples int) (p50, p99 float64, err error) {
	a, b := message.NewPipe(message.Binary{}, 256)
	var sendConn message.Conn = a
	if batch {
		sendConn = message.NewBatchingConn(a, 1, message.BatcherOptions{})
	}
	sendAt := make([]int64, samples)
	recvAt := make([]int64, samples)
	done := make(chan error, 1)
	go func() {
		got := 0
		for got < samples {
			m, rerr := b.Recv()
			if rerr != nil {
				done <- rerr
				return
			}
			frames := []*message.Message{m}
			if m.Kind == message.KindBatch {
				frames = m.Batch.Frames
			}
			now := time.Now().UnixNano()
			for _, f := range frames {
				if f.Kind != message.KindPartial {
					continue
				}
				recvAt[f.Partial.ID] = now
				got++
			}
		}
		done <- nil
	}()
	for i := 0; i < samples; i++ {
		m := &message.Message{Kind: message.KindPartial, From: 1, Partial: latencyPartial(uint64(i))}
		sendAt[i] = time.Now().UnixNano()
		if serr := sendConn.Send(m); serr != nil {
			return 0, 0, serr
		}
		time.Sleep(20 * time.Microsecond) // pace below capacity
	}
	if err = <-done; err != nil {
		return 0, 0, err
	}
	_ = sendConn.Close()
	lat := make([]float64, samples)
	for i := range lat {
		lat[i] = float64(recvAt[i]-sendAt[i]) / 1e3 // µs
	}
	sort.Float64s(lat)
	return lat[samples/2], lat[samples*99/100], nil
}

// median returns the middle value of xs (xs is sorted in place).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// RunWireReport executes the wire experiment and returns the structured
// report.
func RunWireReport(cfg Config) (*WireReport, error) {
	cfg = cfg.withDefaults()
	const nQueries = 16
	qs := wireQueries(nQueries, cfg.Keys)
	events := scaleEvents(cfg.Events, 4)
	rep := &WireReport{EventsPerLocal: events, Queries: nQueries}

	for _, mbps := range []float64{1, 4} {
		bandwidth := mbps * 125_000 // Mbps -> bytes/second
		un, err := runWireLeg(qs, false, bandwidth, events)
		if err != nil {
			return nil, fmt.Errorf("wire unbatched %.3gMbps: %w", mbps, err)
		}
		ba, err := runWireLeg(qs, true, bandwidth, events)
		if err != nil {
			return nil, fmt.Errorf("wire batched %.3gMbps: %w", mbps, err)
		}
		pt := WirePoint{
			BandwidthMbps:         mbps,
			UnbatchedEventsPerSec: un.Throughput,
			BatchedEventsPerSec:   ba.Throughput,
			UnbatchedPerMbps:      un.Throughput / mbps,
			BatchedPerMbps:        ba.Throughput / mbps,
			UnbatchedLocalBytes:   un.LocalBytes,
			BatchedLocalBytes:     ba.LocalBytes,
		}
		if pt.UnbatchedPerMbps > 0 {
			pt.Gain = pt.BatchedPerMbps / pt.UnbatchedPerMbps
		}
		rep.Points = append(rep.Points, pt)
	}

	samples := events / 8
	if samples > 20_000 {
		samples = 20_000
	}
	if samples < 2_000 {
		samples = 2_000
	}
	rep.Latency.Samples = samples
	// Median of five interleaved trials per leg: p99 at these scales is
	// scheduler jitter, and interleaving cancels slow drift (GC, thermal).
	var unP50, unP99, baP50, baP99 []float64
	for trial := 0; trial < 5; trial++ {
		p50, p99, err := wireLatencyLeg(false, samples)
		if err != nil {
			return nil, fmt.Errorf("wire latency unbatched: %w", err)
		}
		unP50, unP99 = append(unP50, p50), append(unP99, p99)
		if p50, p99, err = wireLatencyLeg(true, samples); err != nil {
			return nil, fmt.Errorf("wire latency batched: %w", err)
		}
		baP50, baP99 = append(baP50, p50), append(baP99, p99)
	}
	rep.Latency.UnbatchedP50Usec, rep.Latency.UnbatchedP99Usec = median(unP50), median(unP99)
	rep.Latency.BatchedP50Usec, rep.Latency.BatchedP99Usec = median(baP50), median(baP99)
	if rep.Latency.UnbatchedP99Usec > 0 {
		rep.Latency.P99Overhead = rep.Latency.BatchedP99Usec/rep.Latency.UnbatchedP99Usec - 1
	}
	return rep, nil
}

// Wire renders the wire experiment as a table.
func Wire(cfg Config) (*Table, error) {
	rep, err := RunWireReport(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "wire", Title: "Adaptive uplink batching on a throttled link", XLabel: "link Mbps (0 = latency leg)", YLabel: "events/s/Mbps | µs"}
	for _, p := range rep.Points {
		t.Add("unbatched", p.BandwidthMbps, p.UnbatchedPerMbps)
		t.Add("batched", p.BandwidthMbps, p.BatchedPerMbps)
		t.Add("gain", p.BandwidthMbps, p.Gain)
	}
	t.Add("p99-unbatched-us", 0, rep.Latency.UnbatchedP99Usec)
	t.Add("p99-batched-us", 0, rep.Latency.BatchedP99Usec)
	return t, nil
}
