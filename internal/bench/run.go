package bench

import (
	"fmt"
	"io"
)

// Experiment is a runnable reproduction of one or two related figures.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Config) ([]*Table, error)
}

func one(f func(Config) (*Table, error)) func(Config) ([]*Table, error) {
	return func(c Config) ([]*Table, error) {
		t, err := f(c)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

func two(f func(Config) (*Table, *Table, error)) func(Config) ([]*Table, error) {
	return func(c Config) ([]*Table, error) {
		a, b, err := f(c)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	}
}

// Experiments lists every reproduced figure and ablation, in paper order.
var Experiments = []Experiment{
	{"fig6a", "latency of a single window per system", one(Fig6a)},
	{"fig6b", "throughput of concurrent windows", one(Fig6b)},
	{"fig7a", "scalability with local nodes (average)", one(func(c Config) (*Table, error) { return Fig7ab(c, false, "fig7a") })},
	{"fig7b", "scalability with local nodes (median)", one(func(c Config) (*Table, error) { return Fig7ab(c, true, "fig7b") })},
	{"fig7c", "per-node throughput, average", one(Fig7c)},
	{"fig7d", "root throughput, median", one(Fig7d)},
	{"fig7e", "per-node throughput vs selection operators", one(Fig7e)},
	{"fig7f", "per-node throughput vs windows, same key", one(Fig7f)},
	{"fig8ab", "concurrent tumbling windows: throughput and slices", two(Fig8ab)},
	{"fig8cd", "half user-defined windows: throughput and slices", two(Fig8cd)},
	{"fig9ab", "average+sum mix: throughput and calculations", two(func(c Config) (*Table, *Table, error) { return Fig9(c, "avgsum", "fig9a", "fig9b") })},
	{"fig9cd", "distinct quantiles: throughput and calculations", two(func(c Config) (*Table, *Table, error) { return Fig9(c, "quantiles", "fig9c", "fig9d") })},
	{"fig9ef", "two functions per window: throughput and calculations", two(func(c Config) (*Table, *Table, error) { return Fig9(c, "twofuncs", "fig9e", "fig9f") })},
	{"fig9g", "quantile+max combination", two(func(c Config) (*Table, *Table, error) { return Fig9(c, "quantmax", "fig9g", "fig9g-calcs") })},
	{"fig9h", "mixed time/count measures", two(func(c Config) (*Table, *Table, error) { return Fig9(c, "measures", "fig9h", "fig9h-calcs") })},
	{"fig10ab", "slices per window sweep: throughput and latency", two(func(c Config) (*Table, *Table, error) { return Fig10(c, true, "fig10a", "fig10b") })},
	{"fig10cd", "slice size sweep: throughput and latency", two(func(c Config) (*Table, *Table, error) { return Fig10(c, false, "fig10c", "fig10d") })},
	{"fig11a", "network overhead by layer (average)", one(func(c Config) (*Table, error) { return Fig11ab(c, false, "fig11a") })},
	{"fig11b", "network overhead by layer (median)", one(func(c Config) (*Table, error) { return Fig11ab(c, true, "fig11b") })},
	{"fig11c", "network overhead vs distinct keys", one(Fig11c)},
	{"fig11d", "network overhead vs concurrent windows", one(Fig11d)},
	{"fig12a", "latency by node type (average)", one(func(c Config) (*Table, error) { return Fig12(c, false, "fig12a") })},
	{"fig12b", "latency by node type (median)", one(func(c Config) (*Table, error) { return Fig12(c, true, "fig12b") })},
	{"fig13a", "real-world random query mix", one(Fig13a)},
	{"fig13bc", "bandwidth-limited (Raspberry-Pi-style) cluster", two(func(c Config) (*Table, *Table, error) { return Fig13bc(c, 0) })},
	{"fig13d", "pipeline latency on the bandwidth-limited cluster", one(func(c Config) (*Table, error) { return Fig13d(c, 0) })},
	{"ablation-calendar", "advance punctuation calendar vs per-event check", one(AblationCalendar)},
	{"ablation-opsharing", "operator sharing vs per-function execution", one(AblationOperatorSharing)},
	{"ablation-granularity", "per-slice vs per-window partials", one(AblationPartialGranularity)},
	{"ablation-sortedbatches", "sorted-run merge vs root-side sort", one(AblationSortedBatches)},
	{"ablation-codecs", "binary vs compact vs text wire codecs", one(AblationCodecs)},
	{"ablation-shardedroot", "single vs key-sharded root engines", one(AblationShardedRoot)},
	{"ablation-assembly", "amortized window assembly vs per-window slice re-fold", one(AblationAssembly)},
	{"latency", "assembly-latency tails: two-stacks vs DABA-Lite vs naive", one(Latency)},
	{"plan-churn", "plan-delta add/remove throughput and reconnect resync bytes", one(PlanChurn)},
	{"wire", "adaptive uplink batching: throttled-link efficiency and fast-link latency", one(Wire)},
	{"cardinality", "idle-key bytes and ingest tail with instance eviction on/off", one(Cardinality)},
	{"factor", "factor-window plan rewrite: depth-3 chain, optimizer off vs on", one(Factor)},
}

// Run executes the experiment with the given id and prints its tables.
func Run(id string, cfg Config, w io.Writer) error {
	for _, e := range Experiments {
		if e.ID == id {
			tables, err := e.Run(cfg)
			if err != nil {
				return fmt.Errorf("bench %s: %w", id, err)
			}
			for _, t := range tables {
				t.Fprint(w)
			}
			return nil
		}
	}
	return fmt.Errorf("%w: %s", errNoSuchFigure, id)
}

// RunAll executes every experiment.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range Experiments {
		fmt.Fprintf(w, "=== %s: %s\n", e.ID, e.Desc)
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("bench %s: %w", e.ID, err)
		}
		for _, t := range tables {
			t.Fprint(w)
		}
	}
	return nil
}
