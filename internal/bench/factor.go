package bench

import (
	"fmt"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/query"
)

// The factor experiment measures the factor-window plan optimizer
// (internal/plan/optimize.go, internal/query/factor.go) on a depth-3
// divisibility chain: a 1s tumbling base, sliding windows on its 10s grid,
// and a long sliding window on the 60s grid of those. Unoptimized, every
// query shares one group cut at the 1s gcd and assembles from fine slices;
// optimized, each tier consumes the previous tier's merged supers. The
// experiment runs both plans over the same stream under all three assembly
// strategies and reports events/s, window-emission throughput, the exact
// partial-merge count (operator.CountMerges), and an order-independent
// result hash proving the rewrite changed nothing.

// factorSpanMS is the event-time span of one run: long enough for dozens of
// 600s windows so the depth-3 tier does real work.
const factorSpanMS = 3_600_000

// FactorPoint is one assembly strategy measured with the optimizer off and
// on over the identical stream.
type FactorPoint struct {
	Assembly string `json:"assembly"`
	// OffEventsPerSec / OnEventsPerSec are end-to-end ingest throughputs.
	OffEventsPerSec float64 `json:"off_events_per_sec"`
	OnEventsPerSec  float64 `json:"on_events_per_sec"`
	// OffWindowsPerSec / OnWindowsPerSec are window-emission throughputs.
	OffWindowsPerSec float64 `json:"off_windows_per_sec"`
	OnWindowsPerSec  float64 `json:"on_windows_per_sec"`
	// WindowsSpeedup is OnWindowsPerSec / OffWindowsPerSec.
	WindowsSpeedup float64 `json:"windows_speedup"`
	// OffMerges / OnMerges are exact partial-merge counts for the run;
	// MergeReduction is their ratio (the deterministic win).
	OffMerges      uint64  `json:"off_merges"`
	OnMerges       uint64  `json:"on_merges"`
	MergeReduction float64 `json:"merge_reduction"`
	// Windows is the emitted-window count (identical across legs).
	Windows uint64 `json:"windows"`
	// ResultsMatch is true when both runs emitted the same window multiset.
	ResultsMatch bool `json:"results_match"`
}

// FactorReport is the JSON document desis-bench -exp factor -out writes
// (BENCH_factor.json in the repo root).
type FactorReport struct {
	Events     int           `json:"events_per_measurement"`
	SpanMS     int64         `json:"span_ms"`
	ChainDepth int           `json:"chain_depth"`
	Queries    []string      `json:"queries"`
	Points     []FactorPoint `json:"points"`
	// AllHashesEqual is true when every leg (3 assemblies x on/off) emitted
	// the same window multiset.
	AllHashesEqual bool `json:"all_hashes_equal"`
}

// factorQueries is the depth-3 chain plus a second query on the middle
// period (it joins the existing fed group instead of founding one).
func factorQueries() []query.Query {
	mk := func(id uint64, typ query.WindowType, length, slide int64, funcs ...operator.Func) query.Query {
		fs := make([]operator.FuncSpec, len(funcs))
		for i, f := range funcs {
			fs[i] = operator.FuncSpec{Func: f}
		}
		return query.Query{ID: id, Pred: query.All(), Type: typ, Measure: query.Time,
			Length: length, Slide: slide, Funcs: fs}
	}
	return []query.Query{
		mk(1, query.Tumbling, 1000, 0, operator.Sum),
		mk(2, query.Sliding, 60_000, 10_000, operator.Sum, operator.Average),
		mk(3, query.Sliding, 600_000, 60_000, operator.Min),
		mk(4, query.Sliding, 120_000, 10_000, operator.Max),
	}
}

// factorRun measures one leg. Values are small integers so every aggregate
// is exact in float64 and the result hash is independent of merge order.
func factorRun(events int, asm core.AssemblyKind, optimize bool) (evPerSec, winPerSec float64, merges, windows, hash uint64, err error) {
	qs := factorQueries()
	groups, err := query.Analyze(qs, query.Options{Optimize: optimize})
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	var h uint64
	var wins uint64
	e := core.New(groups, core.Config{
		Assembly: asm,
		Optimize: optimize,
		OnResult: func(r core.Result) {
			h += cardinalityResultHash(r)
			wins++
		},
	})
	evs := make([]event.Event, events)
	for i := range evs {
		evs[i] = event.Event{
			Time:  1 + int64(i)*factorSpanMS/int64(events),
			Value: float64(i % 100),
		}
	}
	operator.CountMerges(true)
	start := time.Now()
	e.ProcessBatch(evs)
	e.AdvanceTo(factorSpanMS + 1_200_000)
	elapsed := time.Since(start)
	merges = operator.MergeCalls()
	operator.CountMerges(false)
	return float64(events) / elapsed.Seconds(),
		float64(wins) / elapsed.Seconds(),
		merges, wins, h, nil
}

// RunFactorReport executes the factor-window sweep and returns the
// structured report.
func RunFactorReport(cfg Config) (*FactorReport, error) {
	cfg = cfg.withDefaults()
	events := scaleEvents(cfg.Events, 1)
	rep := &FactorReport{
		Events:         events,
		SpanMS:         factorSpanMS,
		ChainDepth:     3,
		AllHashesEqual: true,
	}
	for _, q := range factorQueries() {
		rep.Queries = append(rep.Queries, q.String())
	}
	var refHash uint64
	var haveRef bool
	for _, asm := range []struct {
		name string
		kind core.AssemblyKind
	}{
		{"two-stacks", core.AssemblyTwoStacks},
		{"daba", core.AssemblyDABA},
		{"naive", core.AssemblyNaive},
	} {
		offEv, offWin, offMerges, offWins, offHash, err := factorRun(events, asm.kind, false)
		if err != nil {
			return nil, err
		}
		onEv, onWin, onMerges, onWins, onHash, err := factorRun(events, asm.kind, true)
		if err != nil {
			return nil, err
		}
		if offWins == 0 {
			return nil, fmt.Errorf("factor: %s leg emitted no windows; the comparison is vacuous", asm.name)
		}
		if !haveRef {
			refHash, haveRef = offHash, true
		}
		if offHash != refHash || onHash != refHash || offWins != onWins {
			rep.AllHashesEqual = false
		}
		p := FactorPoint{
			Assembly:         asm.name,
			OffEventsPerSec:  offEv,
			OnEventsPerSec:   onEv,
			OffWindowsPerSec: offWin,
			OnWindowsPerSec:  onWin,
			OffMerges:        offMerges,
			OnMerges:         onMerges,
			Windows:          offWins,
			ResultsMatch:     offHash == onHash && offWins == onWins,
		}
		if offWin > 0 {
			p.WindowsSpeedup = onWin / offWin
		}
		if onMerges > 0 {
			p.MergeReduction = float64(offMerges) / float64(onMerges)
		}
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}

// Factor renders the factor-window experiment as a table.
func Factor(cfg Config) (*Table, error) {
	rep, err := RunFactorReport(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "factor", Title: "Factor-window rewrite: depth-3 chain, optimizer off vs on", XLabel: "assembly (0=two-stacks 1=daba 2=naive)", YLabel: "windows/s | merge ratio"}
	for i, p := range rep.Points {
		x := float64(i)
		t.Add("off-win/s", x, p.OffWindowsPerSec)
		t.Add("on-win/s", x, p.OnWindowsPerSec)
		t.Add("speedup", x, p.WindowsSpeedup)
		t.Add("merge-reduction", x, p.MergeReduction)
		match := 0.0
		if p.ResultsMatch {
			match = 1
		}
		t.Add("results-match", x, match)
	}
	return t, nil
}
