package bench

import (
	"runtime"
	"time"

	"desis/internal/core"
	"desis/internal/gen"
	"desis/internal/operator"
	"desis/internal/query"
)

// The assembly ablation isolates the amortized window-assembly index
// (internal/core/swag.go): n overlapping sliding windows share one
// query-group, so every slide punctuation assembles n windows from the same
// closed-slice ring. The naive strategy re-folds every covering slice per
// window — O(n * window/slide) merges per punctuation — while the index
// answers each window with O(1) amortized merges.

// AssemblyPoint is one measured sweep point of the assembly ablation.
type AssemblyPoint struct {
	// Windows is the number of overlapping sliding queries in the group.
	Windows int `json:"windows"`
	// NaiveEventsPerSec / IndexedEventsPerSec are end-to-end ingest
	// throughputs (window assembly runs inline with ingestion).
	NaiveEventsPerSec   float64 `json:"naive_events_per_sec"`
	IndexedEventsPerSec float64 `json:"indexed_events_per_sec"`
	// NaiveWindowsPerSec / IndexedWindowsPerSec are window-emission
	// throughputs: windows emitted divided by total run time.
	NaiveWindowsPerSec   float64 `json:"naive_windows_per_sec"`
	IndexedWindowsPerSec float64 `json:"indexed_windows_per_sec"`
	// WindowsSpeedup is IndexedWindowsPerSec / NaiveWindowsPerSec.
	WindowsSpeedup float64 `json:"windows_speedup"`
	// NaiveAllocsPerEvent / IndexedAllocsPerEvent are heap allocations per
	// ingested event over the whole run (runtime.MemStats.Mallocs delta).
	NaiveAllocsPerEvent   float64 `json:"naive_allocs_per_event"`
	IndexedAllocsPerEvent float64 `json:"indexed_allocs_per_event"`
}

// AssemblyReport is the JSON document desis-bench -exp ablation-assembly
// -out writes (BENCH_assembly.json in the repo root).
type AssemblyReport struct {
	// Events is the per-measurement stream length.
	Events int `json:"events_per_measurement"`
	// SlideMS is the common slide of the swept queries.
	SlideMS int64 `json:"slide_ms"`
	// Points holds one entry per overlapping-window count.
	Points []AssemblyPoint `json:"points"`
}

// assemblyQueries builds n sliding time windows over one key that all land
// in one query-group: same slide, growing lengths, decomposable functions.
func assemblyQueries(n int) []query.Query {
	qs := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		qs = append(qs, query.Query{
			ID: uint64(i + 1), Pred: query.All(), Type: query.Sliding,
			Measure: query.Time,
			Length:  2000 + int64(i)*500, Slide: 100,
			Funcs: []operator.FuncSpec{{Func: operator.Average}},
		})
	}
	return qs
}

// assemblyRun measures one engine configuration: events/s, windows/s, and
// allocations per event.
func assemblyRun(qs []query.Query, events int, naive bool) (evPerSec, winPerSec, allocsPerEv float64, err error) {
	groups, err := query.Analyze(qs, query.Options{})
	if err != nil {
		return 0, 0, 0, err
	}
	asm := core.AssemblyTwoStacks
	if naive {
		asm = core.AssemblyNaive
	}
	e := core.New(groups, core.Config{OnResult: func(core.Result) {}, Assembly: asm})
	s := gen.NewStream(gen.StreamConfig{Seed: 21, Keys: 1, IntervalMS: 1})
	evs := s.Events(events)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	e.ProcessBatch(evs)
	e.AdvanceTo(s.Now() + 60_000)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	st := e.Stats()
	return float64(events) / elapsed.Seconds(),
		float64(st.Windows) / elapsed.Seconds(),
		float64(after.Mallocs-before.Mallocs) / float64(events),
		nil
}

// RunAssemblyReport executes the assembly ablation sweep and returns the
// structured report.
func RunAssemblyReport(cfg Config) (*AssemblyReport, error) {
	cfg = cfg.withDefaults()
	events := scaleEvents(cfg.Events, 1)
	rep := &AssemblyReport{Events: events, SlideMS: 100}
	for _, n := range []int{4, 16, 32, 64} {
		qs := assemblyQueries(n)
		nEv, nWin, nAllocs, err := assemblyRun(qs, events, true)
		if err != nil {
			return nil, err
		}
		iEv, iWin, iAllocs, err := assemblyRun(qs, events, false)
		if err != nil {
			return nil, err
		}
		p := AssemblyPoint{
			Windows:               n,
			NaiveEventsPerSec:     nEv,
			IndexedEventsPerSec:   iEv,
			NaiveWindowsPerSec:    nWin,
			IndexedWindowsPerSec:  iWin,
			NaiveAllocsPerEvent:   nAllocs,
			IndexedAllocsPerEvent: iAllocs,
		}
		if nWin > 0 {
			p.WindowsSpeedup = iWin / nWin
		}
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}

// AblationAssembly renders the assembly ablation as a table experiment.
func AblationAssembly(cfg Config) (*Table, error) {
	rep, err := RunAssemblyReport(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "ablation-assembly", Title: "Amortized window assembly vs per-window re-fold", XLabel: "overlapping sliding windows", YLabel: "windows/s"}
	for _, p := range rep.Points {
		t.Add("indexed", float64(p.Windows), p.IndexedWindowsPerSec)
		t.Add("naive", float64(p.Windows), p.NaiveWindowsPerSec)
		t.Add("speedup", float64(p.Windows), p.WindowsSpeedup)
	}
	return t, nil
}
