package bench

import (
	"fmt"
	"time"

	"desis/internal/core"
	"desis/internal/gen"
	"desis/internal/plan"
	"desis/internal/query"
)

// The plan-churn experiment measures the control plane introduced with the
// epoch-versioned execution plan: how fast a live engine absorbs add/remove
// deltas while resident catalogs grow, and how many bytes a reconnecting
// child's resync costs when the parent can answer with an epoch diff instead
// of a full plan resend.

// PlanChurnPoint is one measured sweep point of the plan-churn experiment.
type PlanChurnPoint struct {
	// CatalogQueries is the number of resident queries when churn starts.
	CatalogQueries int `json:"catalog_queries"`
	// AddsPerSec / RemovesPerSec are plan-delta application rates on a live
	// engine (groups started, slices open) at that catalog size.
	AddsPerSec    float64 `json:"adds_per_sec"`
	RemovesPerSec float64 `json:"removes_per_sec"`
	// MissedDeltas is the staleness of the simulated reconnecting child.
	MissedDeltas int `json:"missed_deltas"`
	// DeltaResyncBytes is the encoded size of the epoch-diff resync (the
	// missed delta suffix); FullPlanBytes is the encoded size of the full
	// plan the child would receive without the history (or when too stale).
	DeltaResyncBytes int `json:"delta_resync_bytes"`
	FullPlanBytes    int `json:"full_plan_bytes"`
	// ResendRatio is FullPlanBytes / DeltaResyncBytes: how much cheaper the
	// epoch diff makes a reconnect at this catalog size.
	ResendRatio float64 `json:"resend_ratio"`
}

// PlanChurnReport is the JSON document desis-bench -exp plan-churn -out
// writes (BENCH_plan.json in the repo root).
type PlanChurnReport struct {
	// WarmupEvents is how many events each engine ingests before churn, so
	// deltas hit live groups (open slices, administrative punctuations).
	WarmupEvents int `json:"warmup_events"`
	// ChurnDeltas is how many add (and then remove) deltas each point times.
	ChurnDeltas int `json:"churn_deltas"`
	// Points holds one entry per resident-catalog size.
	Points []PlanChurnPoint `json:"points"`
}

// churnQuery builds the i-th synthetic query of the churn mix: window
// lengths, functions, and keys all cycle so consecutive queries land in
// different query-groups.
func churnQuery(i, keys int) query.Query {
	funcs := []string{"sum", "average", "max", "min"}
	kinds := []string{
		"tumbling(%dms) %s key=%d",
		"sliding(%dms,250ms) %s key=%d",
	}
	length := 500 + 250*(i%8)
	q := query.MustParse(fmt.Sprintf(kinds[i%len(kinds)], length, funcs[i%len(funcs)], i%keys))
	q.ID = uint64(i + 1)
	return q
}

// churnPoint measures one catalog size: delta throughput on a live engine
// and resync sizes for a child that missed the churn.
func churnPoint(catalog, churn, warmup, keys int) (PlanChurnPoint, error) {
	resident := make([]query.Query, catalog)
	for i := range resident {
		resident[i] = churnQuery(i, keys)
	}
	p, err := plan.New(resident, plan.Options{})
	if err != nil {
		return PlanChurnPoint{}, err
	}
	hist := plan.NewHistory(p)
	eng := core.NewFromPlan(hist.Plan().Clone(), core.Config{OnResult: func(core.Result) {}})
	evs := gen.NewStream(gen.StreamConfig{Seed: 31, Keys: keys, IntervalMS: 1}).Events(warmup)
	eng.ProcessBatch(evs)

	pt := PlanChurnPoint{CatalogQueries: catalog, MissedDeltas: churn}

	// Each trial adds a churn burst of fresh queries and then retires it, so
	// the live catalog returns to its resident size between trials (the
	// tombstones stay, as they would in production). A churn window is only
	// ~1ms of work, well inside scheduler-noise territory; the reported rates
	// are the median of five trials.
	const trials = 5
	var addRates, removeRates []float64
	for trial := 0; trial < trials; trial++ {
		base := catalog + trial*churn

		// Adds: each delta is minted from the authoritative history (the way
		// a root serves a control command), applied there, and applied to the
		// live engine. The first trial's encoded delta sizes accumulate into
		// the resync cost a child that missed the burst would pay.
		start := time.Now()
		for i := 0; i < churn; i++ {
			d := hist.Plan().AddDelta(churnQuery(base+i, keys))
			if err := hist.Apply(d); err != nil {
				return PlanChurnPoint{}, err
			}
			if err := eng.Apply(d); err != nil {
				return PlanChurnPoint{}, err
			}
			if trial == 0 {
				pt.DeltaResyncBytes += len(plan.AppendDelta(nil, d))
			}
		}
		addRates = append(addRates, float64(churn)/time.Since(start).Seconds())

		if trial == 0 {
			// The full-plan resend the same stale child would receive without
			// the delta log (message framing excluded on both sides).
			pt.FullPlanBytes = len(plan.AppendPlan(nil, hist.Plan()))
			if pt.DeltaResyncBytes > 0 {
				pt.ResendRatio = float64(pt.FullPlanBytes) / float64(pt.DeltaResyncBytes)
			}
		}

		// Removes: retire the queries just added.
		start = time.Now()
		for i := 0; i < churn; i++ {
			d := hist.Plan().RemoveDelta(uint64(base + i + 1))
			if err := hist.Apply(d); err != nil {
				return PlanChurnPoint{}, err
			}
			if err := eng.Apply(d); err != nil {
				return PlanChurnPoint{}, err
			}
		}
		removeRates = append(removeRates, float64(churn)/time.Since(start).Seconds())
	}
	pt.AddsPerSec = median(addRates)
	pt.RemovesPerSec = median(removeRates)
	return pt, nil
}

// RunPlanChurnReport executes the plan-churn sweep and returns the
// structured report.
func RunPlanChurnReport(cfg Config) (*PlanChurnReport, error) {
	cfg = cfg.withDefaults()
	warmup := scaleEvents(cfg.Events, 100)
	const churn = 128
	rep := &PlanChurnReport{WarmupEvents: warmup, ChurnDeltas: churn}
	for _, n := range []int{16, 64, 256, 1024} {
		pt, err := churnPoint(n, churn, warmup, cfg.Keys)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// PlanChurn renders the plan-churn experiment as a table.
func PlanChurn(cfg Config) (*Table, error) {
	rep, err := RunPlanChurnReport(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "plan-churn", Title: "Plan-delta churn and reconnect resync cost", XLabel: "resident queries", YLabel: "deltas/s | bytes"}
	for _, p := range rep.Points {
		t.Add("adds/s", float64(p.CatalogQueries), p.AddsPerSec)
		t.Add("removes/s", float64(p.CatalogQueries), p.RemovesPerSec)
		t.Add("diff-bytes", float64(p.CatalogQueries), float64(p.DeltaResyncBytes))
		t.Add("full-bytes", float64(p.CatalogQueries), float64(p.FullPlanBytes))
		t.Add("resend-ratio", float64(p.CatalogQueries), p.ResendRatio)
	}
	return t, nil
}
