package bench

import (
	"time"

	"desis/internal/baseline"
	"desis/internal/event"
	"desis/internal/gen"
	"desis/internal/query"
)

// SystemFactory builds one of the comparable central systems.
type SystemFactory struct {
	Name  string
	Build func([]query.Query) (baseline.System, error)
}

// CentralSystems is the single-node comparison set of §6.2/§6.3.
var CentralSystems = []SystemFactory{
	{"Desis", func(qs []query.Query) (baseline.System, error) { return baseline.NewDesis(qs) }},
	{"DeSW", baseline.NewDeSW},
	{"Scotty", baseline.NewScotty},
	{"DeBucket", baseline.NewDeBucket},
	{"CeBuffer", baseline.NewCeBuffer},
}

// OptimizationSystems is the §6.3 subset (Desis and its in-architecture
// ablated variants plus CeBuffer).
var OptimizationSystems = []SystemFactory{
	{"Desis", func(qs []query.Query) (baseline.System, error) { return baseline.NewDesis(qs) }},
	{"DeSW", baseline.NewDeSW},
	{"DeBucket", baseline.NewDeBucket},
	{"CeBuffer", baseline.NewCeBuffer},
}

// centralRun builds, feeds and measures one system over one workload.
type centralRun struct {
	Throughput   float64
	Calculations uint64
	Slices       uint64
	DurationSec  float64
	Results      int
}

func runCentral(f SystemFactory, qs []query.Query, evs []event.Event, drainTo int64) (centralRun, error) {
	sys, err := f.Build(qs)
	if err != nil {
		return centralRun{}, err
	}
	start := time.Now()
	for i := range evs {
		sys.Process(evs[i])
	}
	// Sustained ingest rate: the post-stream drain (closing windows past
	// the last event) is excluded, as in sustainable-throughput reporting.
	el := time.Since(start).Seconds()
	sys.AdvanceTo(drainTo)
	n := len(sys.Results())
	return centralRun{
		Throughput:   float64(len(evs)) / el,
		Calculations: sys.Calculations(),
		Slices:       sys.Slices(),
		DurationSec:  el,
		Results:      n,
	}, nil
}

// runLatency measures per-window emission latency: the duration of the
// Process (or AdvanceTo) call that completed the window — the cost of
// assembling the result once its end punctuation arrives. CeBuffer pays its
// whole buffer iteration here, incremental systems only the merge/eval.
func runLatency(f SystemFactory, qs []query.Query, evs []event.Event, drainTo int64) (mean, p99 time.Duration, err error) {
	sys, err := f.Build(qs)
	if err != nil {
		return 0, 0, err
	}
	var lat latencySamples
	for i := range evs {
		t0 := time.Now()
		sys.Process(evs[i])
		d := time.Since(t0)
		if n := len(sys.Results()); n > 0 {
			lat.record(d, n)
		}
	}
	t0 := time.Now()
	sys.AdvanceTo(drainTo)
	if n := len(sys.Results()); n > 0 {
		lat.record(time.Since(t0), n)
	}
	return lat.mean(), lat.quantile(0.99), nil
}

type latencySamples struct {
	v []time.Duration
}

func (l *latencySamples) record(d time.Duration, n int) {
	for i := 0; i < n; i++ {
		l.v = append(l.v, d)
	}
}

func (l *latencySamples) mean() time.Duration {
	if len(l.v) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.v {
		sum += d
	}
	return sum / time.Duration(len(l.v))
}

func (l *latencySamples) quantile(q float64) time.Duration {
	if len(l.v) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.v...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// stream materialises a standard workload stream. The drain point is just
// far enough past the last event to close every 10-second window.
func stream(cfg gen.StreamConfig, n int) ([]event.Event, int64) {
	s := gen.NewStream(cfg)
	evs := s.Events(n)
	return evs, s.Now() + 11_000
}
