package query

import (
	"strings"
	"testing"

	"desis/internal/operator"
)

func tumbling(id uint64, key uint32, lenMS int64, funcs ...operator.Func) Query {
	q := Query{ID: id, Key: key, Pred: All(), Type: Tumbling, Length: lenMS}
	for _, f := range funcs {
		q.Funcs = append(q.Funcs, operator.FuncSpec{Func: f})
	}
	return q
}

func TestValidate(t *testing.T) {
	good := []Query{
		tumbling(1, 0, 1000, operator.Sum),
		{ID: 2, Pred: All(), Type: Sliding, Length: 10, Slide: 5, Funcs: []operator.FuncSpec{{Func: operator.Average}}},
		{ID: 3, Pred: All(), Type: Session, Gap: 100, Funcs: []operator.FuncSpec{{Func: operator.Median}}},
		{ID: 4, Pred: All(), Type: UserDefined, Funcs: []operator.FuncSpec{{Func: operator.Max}}},
		{ID: 5, Pred: All(), Type: Tumbling, Measure: Count, Length: 100, Funcs: []operator.FuncSpec{{Func: operator.Sum}}},
	}
	for _, q := range good {
		if err := q.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", q, err)
		}
	}
	bad := []Query{
		{Pred: All(), Type: Tumbling, Length: 1000},                                                            // no funcs
		{Pred: All(), Type: Tumbling, Length: 0, Funcs: []operator.FuncSpec{{Func: operator.Sum}}},             // zero length
		{Pred: All(), Type: Sliding, Length: 5, Slide: 10, Funcs: []operator.FuncSpec{{Func: operator.Sum}}},   // slide > length
		{Pred: All(), Type: Session, Gap: 0, Funcs: []operator.FuncSpec{{Func: operator.Sum}}},                 // zero gap
		{Pred: All(), Type: Session, Gap: 5, Measure: Count, Funcs: []operator.FuncSpec{{Func: operator.Sum}}}, // count session
		{Pred: Predicate{Min: 5, Max: 5}, Type: Tumbling, Length: 10, Funcs: []operator.FuncSpec{{Func: operator.Sum}}},
		{Pred: All(), Type: Tumbling, Length: 10, Funcs: []operator.FuncSpec{{Func: operator.Quantile, Arg: 2}}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted: %v", i, q)
		}
	}
}

func TestPredicate(t *testing.T) {
	all := All()
	if !all.Matches(1e300) || !all.Matches(-1e300) || !all.IsAll() {
		t.Error("All() predicate broken")
	}
	p := Range(10, 20)
	if !p.Matches(10) || p.Matches(20) || p.Matches(9.999) || !p.Matches(19.999) {
		t.Error("Range half-open semantics broken")
	}
	if !Above(5).Matches(5) || Above(5).Matches(4.9) {
		t.Error("Above broken")
	}
	if Below(5).Matches(5) || !Below(5).Matches(4.9) {
		t.Error("Below broken")
	}
}

func TestPredicateOverlap(t *testing.T) {
	cases := []struct {
		a, b Predicate
		want bool
	}{
		{Range(0, 10), Range(10, 20), false},
		{Range(0, 10), Range(5, 20), true},
		{Range(0, 10), Range(0, 10), true},
		{Above(80), Below(25), false},
		{All(), Range(1, 2), true},
	}
	for _, tc := range cases {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestAnalyzeSharesAcrossFunctionsAndTypes(t *testing.T) {
	// Five queries with different window types and functions but one key:
	// all land in one query-group (Fig 3 of the paper).
	queries := []Query{
		tumbling(1, 0, 1000, operator.Max),
		{ID: 2, Pred: All(), Type: Sliding, Length: 2000, Slide: 500, Funcs: []operator.FuncSpec{{Func: operator.Median}}},
		{ID: 3, Pred: All(), Type: Session, Gap: 300, Funcs: []operator.FuncSpec{{Func: operator.Sum}}},
		{ID: 4, Pred: All(), Type: UserDefined, Funcs: []operator.FuncSpec{{Func: operator.Count}}},
		{ID: 5, Pred: All(), Type: Tumbling, Measure: Count, Length: 100, Funcs: []operator.FuncSpec{{Func: operator.Average}}},
	}
	groups, err := Analyze(queries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	g := groups[0]
	if len(g.Queries) != 5 || len(g.Contexts) != 1 {
		t.Fatalf("group = %v", g)
	}
	// max+median share ndsort; sum, count from avg; forced count.
	want := operator.OpNDSort | operator.OpSum | operator.OpCount
	if g.Ops != want {
		t.Errorf("group ops = %v, want %v", g.Ops, want)
	}
}

func TestAnalyzeSplitsKeys(t *testing.T) {
	queries := []Query{
		tumbling(1, 0, 1000, operator.Sum),
		tumbling(2, 1, 1000, operator.Sum),
	}
	groups, err := Analyze(queries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2 (distinct keys)", len(groups))
	}
}

func TestAnalyzePredicates(t *testing.T) {
	speedFast := tumbling(1, 0, 1000, operator.Sum)
	speedFast.Pred = Above(80)
	speedSlow := tumbling(2, 0, 1000, operator.Sum)
	speedSlow.Pred = Below(25)
	speedFast2 := tumbling(3, 0, 1000, operator.Average)
	speedFast2.Pred = Above(80)
	overlapping := tumbling(4, 0, 1000, operator.Sum)
	overlapping.Pred = Above(50)

	groups, err := Analyze([]Query{speedFast, speedSlow, speedFast2, overlapping}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Non-overlapping predicates share a group with two contexts (§4.2.3);
	// equal predicates share a context; the partially overlapping one is
	// exiled to its own group.
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	g := groups[0]
	if len(g.Contexts) != 2 || len(g.Queries) != 3 {
		t.Fatalf("first group: %v", g)
	}
	if g.Queries[0].Ctx != g.Queries[2].Ctx {
		t.Error("equal predicates did not share a context")
	}
	if g.Queries[0].Ctx == g.Queries[1].Ctx {
		t.Error("disjoint predicates share a context")
	}
	if len(groups[1].Queries) != 1 || groups[1].Queries[0].ID != 4 {
		t.Fatalf("second group: %v", groups[1])
	}
}

func TestAnalyzeDecentralizedCountPlacement(t *testing.T) {
	timeQ := tumbling(1, 0, 1000, operator.Sum)
	countQ := Query{ID: 2, Pred: All(), Type: Tumbling, Measure: Count, Length: 100, Funcs: []operator.FuncSpec{{Func: operator.Sum}}}
	groups, err := Analyze([]Query{timeQ, countQ}, Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2 (count-based separated)", len(groups))
	}
	var sawRoot, sawDist bool
	for _, g := range groups {
		switch g.Placement {
		case RootOnly:
			sawRoot = true
			if g.Queries[0].ID != 2 {
				t.Error("wrong query routed to root")
			}
		case Distributed:
			sawDist = true
		}
	}
	if !sawRoot || !sawDist {
		t.Errorf("placements: root=%v dist=%v", sawRoot, sawDist)
	}
	// Centralized mode shares across measures.
	groups, err = Analyze([]Query{timeQ, countQ}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Errorf("central mode: got %d groups, want 1", len(groups))
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	if _, err := Analyze([]Query{{Pred: All(), Type: Tumbling}}, Options{}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestLookupAndNextID(t *testing.T) {
	groups, err := Analyze([]Query{
		tumbling(7, 0, 1000, operator.Sum),
		tumbling(9, 1, 1000, operator.Sum),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, i, ok := Lookup(groups, 9)
	if !ok || g.Queries[i].ID != 9 {
		t.Fatalf("Lookup(9) = %v, %d, %v", g, i, ok)
	}
	if _, _, ok := Lookup(groups, 42); ok {
		t.Error("Lookup(42) found a ghost")
	}
	if id := NextID(groups); id != 10 {
		t.Errorf("NextID = %d, want 10", id)
	}
}

func TestParse(t *testing.T) {
	q, err := Parse("tumbling(1s) average key=3 value>=80")
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != Tumbling || q.Length != 1000 || q.Key != 3 || q.Measure != Time {
		t.Errorf("parsed %+v", q)
	}
	if !q.Pred.Matches(80) || q.Pred.Matches(79.9) {
		t.Errorf("predicate %v", q.Pred)
	}
	if len(q.Funcs) != 1 || q.Funcs[0].Func != operator.Average {
		t.Errorf("funcs %v", q.Funcs)
	}

	q = MustParse("sliding(10s,2s) sum,count key=1")
	if q.Type != Sliding || q.Length != 10000 || q.Slide != 2000 || len(q.Funcs) != 2 {
		t.Errorf("parsed %+v", q)
	}

	q = MustParse("session(30s) median key=2 value<25")
	if q.Type != Session || q.Gap != 30000 || q.Pred.Matches(25) || !q.Pred.Matches(24.9) {
		t.Errorf("parsed %+v", q)
	}

	q = MustParse("tumbling(1000ev) quantile(0.95)")
	if q.Measure != Count || q.Length != 1000 || q.Funcs[0].Arg != 0.95 {
		t.Errorf("parsed %+v", q)
	}

	q = MustParse("userdefined max key=0")
	if q.Type != UserDefined {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"average key=1",                       // no window
		"tumbling(1s)",                        // no funcs
		"tumbling(1s) bogus",                  // unknown func
		"tumbling(1s,2s) sum",                 // extent count
		"tumbling(xs) sum",                    // bad extent
		"session(100ev) median",               // count session
		"tumbling(1s) sum key=abc",            // bad key
		"tumbling(1s) sum value>>5",           // bad predicate
		"tumbling(1s) quantile(2) sum",        // bad quantile
		"sliding(1s,1000ev) sum",              // mixed measures
		"tumbling(1s) sum value>=x",           // bad predicate number
		"tumbling(1s) quantile(x)",            // bad quantile arg
		"sliding(1s,2s) sum",                  // slide > length
		"tumbling(1s) sum key=99999999999999", // key overflow
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	cases := []string{
		"tumbling(1000ms) average key=3 value>=80",
		"sliding(10000ms,2000ms) sum,count key=1",
		"session(30000ms) median key=2 value<25",
		"tumbling(1000ev) quantile(0.95) key=0",
		"userdefined max key=0",
	}
	for _, s := range cases {
		q := MustParse(s)
		again := MustParse(q.String())
		if q.String() != again.String() {
			t.Errorf("round trip changed %q -> %q", q.String(), again.String())
		}
	}
}

func TestGroupString(t *testing.T) {
	groups, _ := Analyze([]Query{tumbling(1, 0, 1000, operator.Sum)}, Options{})
	if !strings.Contains(groups[0].String(), "key=0") {
		t.Errorf("String() = %q", groups[0].String())
	}
}
