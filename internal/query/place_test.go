package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"desis/internal/operator"
)

// randomPlaceQuery draws a valid query for placement fuzzing.
func randomPlaceQuery(rng *rand.Rand, id uint64) Query {
	q := Query{ID: id, Key: uint32(rng.Intn(4)), Pred: All()}
	switch rng.Intn(3) {
	case 0:
		q.Pred = Above(float64(rng.Intn(100)))
	case 1:
		q.Pred = Below(float64(rng.Intn(100)))
	}
	q.Funcs = []operator.FuncSpec{{Func: operator.Func(rng.Intn(int(operator.Quantile)))}}
	if q.Funcs[0].Func == operator.Quantile {
		q.Funcs[0].Arg = 0.5
	}
	switch rng.Intn(3) {
	case 0:
		q.Type, q.Length = Tumbling, int64(10+rng.Intn(100))
	case 1:
		q.Type = Sliding
		q.Length = int64(20 + rng.Intn(100))
		q.Slide = 1 + rng.Int63n(q.Length)
	case 2:
		q.Type, q.Gap = Session, int64(10+rng.Intn(50))
	}
	if rng.Intn(4) == 0 {
		q.Measure = Count
		q.Type = Tumbling
		q.Length = int64(5 + rng.Intn(50))
		q.Gap = 0
	}
	return q
}

// TestPlaceMatchesAnalyzeQuick: building a group set incrementally with
// Place must produce exactly the same groups, contexts, and member order as
// analyzing the whole set at once — the invariant the wire protocol's group
// and member indices depend on.
func TestPlaceMatchesAnalyzeQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%20
		queries := make([]Query, n)
		for i := range queries {
			queries[i] = randomPlaceQuery(rng, uint64(i+1))
		}
		opts := Options{Decentralized: true}
		want, err := Analyze(queries, opts)
		if err != nil {
			return false
		}
		var got []*Group
		for _, q := range queries {
			g, _, created, err := Place(got, q, opts)
			if err != nil {
				return false
			}
			if created {
				got = append(got, g)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			a, b := got[i], want[i]
			if a.ID != b.ID || a.Key != b.Key || a.Placement != b.Placement ||
				a.Ops != b.Ops || a.LogicalOps != b.LogicalOps {
				return false
			}
			if len(a.Queries) != len(b.Queries) || len(a.Contexts) != len(b.Contexts) {
				return false
			}
			for j := range b.Queries {
				if a.Queries[j].ID != b.Queries[j].ID || a.Queries[j].Ctx != b.Queries[j].Ctx {
					return false
				}
			}
			for j := range b.Contexts {
				if !a.Contexts[j].Equal(b.Contexts[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAnalyzeInvariantsQuick checks structural invariants of any analysis:
// every query appears exactly once; contexts within a group are pairwise
// equal-or-disjoint (never partially overlapping); each member's context
// matches its predicate; group ids are dense.
func TestAnalyzeInvariantsQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%30
		queries := make([]Query, n)
		for i := range queries {
			queries[i] = randomPlaceQuery(rng, uint64(i+1))
		}
		groups, err := Analyze(queries, Options{Decentralized: rng.Intn(2) == 0})
		if err != nil {
			return false
		}
		seen := map[uint64]int{}
		for gi, g := range groups {
			if g.ID != uint32(gi) {
				return false
			}
			for i, a := range g.Contexts {
				for j, b := range g.Contexts {
					if i != j && a.Overlaps(b) && !a.Equal(b) {
						return false
					}
				}
			}
			for _, gq := range g.Queries {
				seen[gq.ID]++
				if gq.Key != g.Key {
					return false
				}
				if !g.Contexts[gq.Ctx].Equal(gq.Pred) {
					return false
				}
			}
		}
		for _, q := range queries {
			if seen[q.ID] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
