package query

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParsersNeverPanicQuick throws random garbage and mutated valid inputs
// at both parsers: they must return errors, never panic, and anything they
// accept must Validate (templates modulo key).
func TestParsersNeverPanicQuick(t *testing.T) {
	valid := []string{
		"tumbling(1s) average key=3 value>=80",
		"sliding(10s,2s) sum,count key=1",
		"session(30s) median key=2 value<25",
		"tumbling(1000ev) quantile(0.95) key=7",
		"userdefined max key=*",
		"SELECT avg(value), max(value) FROM stream WHERE key = 3 AND value >= 80 WINDOW TUMBLING 1s",
		"SELECT quantile(value, 0.95) FROM s WINDOW SLIDING 10s SLIDE 2s",
		"SELECT median(value) FROM s WHERE key = * WINDOW SESSION GAP 30s",
	}
	alphabet := " ()*,<>=!0123456789abcdefghijklmnopqrstuvwxyzSELECTFROMWHEREWINDOW.\t"
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var s string
		switch rng.Intn(3) {
		case 0: // pure noise
			n := rng.Intn(80)
			b := make([]byte, n)
			for i := range b {
				b[i] = alphabet[rng.Intn(len(alphabet))]
			}
			s = string(b)
		case 1: // truncated valid input
			v := valid[rng.Intn(len(valid))]
			s = v[:rng.Intn(len(v)+1)]
		case 2: // valid input with random byte edits
			b := []byte(valid[rng.Intn(len(valid))])
			for k := 0; k < 1+rng.Intn(4); k++ {
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			}
			s = string(b)
		}
		q, err := ParseAny(s)
		if err != nil {
			return true
		}
		probe := q
		probe.AnyKey = false
		return probe.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestStringParseFixpoint: String() of anything parsed re-parses to the
// same query, for both syntaxes' outputs.
func TestStringParseFixpoint(t *testing.T) {
	inputs := []string{
		"tumbling(1s) average key=3 value>=80",
		"sliding(10s,2s) sum,count key=1",
		"session(30s) median key=2 value<25",
		"tumbling(1000ev) quantile(0.95) key=7",
		"userdefined max key=*",
		"SELECT geomean(value), product(value) FROM s WINDOW TUMBLING 5s",
		"SELECT min(value) FROM s WHERE value >= 1 AND value < 2 WINDOW SLIDING 100 EVENTS SLIDE 25 EVENTS",
	}
	for _, in := range inputs {
		q, err := ParseAny(in)
		if err != nil {
			t.Fatalf("ParseAny(%q): %v", in, err)
		}
		again, err := ParseAny(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", q.String(), in, err)
		}
		if q.String() != again.String() {
			t.Errorf("not a fixpoint: %q -> %q", q.String(), again.String())
		}
	}
}

// TestSQLKeywordCaseInsensitive.
func TestSQLKeywordCaseInsensitive(t *testing.T) {
	variants := []string{
		"select AVG(value) from s window tumbling 1s",
		"SeLeCt AvG(value) FrOm s WiNdOw TuMbLiNg 1s",
	}
	want := MustParseSQL("SELECT avg(value) FROM s WINDOW TUMBLING 1s").String()
	for _, v := range variants {
		q, err := ParseSQL(v)
		if err != nil {
			t.Errorf("ParseSQL(%q): %v", v, err)
			continue
		}
		if q.String() != want {
			t.Errorf("ParseSQL(%q) = %s, want %s", v, q.String(), want)
		}
	}
	if !strings.EqualFold("TUMBLING", "tumbling") {
		t.Fatal("sanity")
	}
}
