package query

import (
	"testing"

	"desis/internal/operator"
)

func TestParseSQLBasic(t *testing.T) {
	q, err := ParseSQL("SELECT avg(value), max(value) FROM stream WHERE key = 3 AND value >= 80 WINDOW TUMBLING 1s")
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != Tumbling || q.Length != 1000 || q.Measure != Time {
		t.Errorf("window: %+v", q)
	}
	if q.Key != 3 || q.AnyKey {
		t.Errorf("key: %d anykey=%v", q.Key, q.AnyKey)
	}
	if !q.Pred.Matches(80) || q.Pred.Matches(79.999) {
		t.Errorf("pred: %v", q.Pred)
	}
	if len(q.Funcs) != 2 || q.Funcs[0].Func != operator.Average || q.Funcs[1].Func != operator.Max {
		t.Errorf("funcs: %v", q.Funcs)
	}
}

func TestParseSQLVariants(t *testing.T) {
	cases := []struct {
		sql   string
		check func(Query) bool
	}{
		{
			"SELECT quantile(value, 0.95) FROM stream WINDOW SLIDING 10s SLIDE 2s",
			func(q Query) bool {
				return q.Type == Sliding && q.Length == 10000 && q.Slide == 2000 &&
					q.Funcs[0].Func == operator.Quantile && q.Funcs[0].Arg == 0.95
			},
		},
		{
			"select median(value) from s where key = * window session gap 30s",
			func(q Query) bool { return q.Type == Session && q.Gap == 30000 && q.AnyKey },
		},
		{
			"SELECT sum(value) FROM stream WINDOW TUMBLING 1000 EVENTS",
			func(q Query) bool { return q.Measure == Count && q.Length == 1000 },
		},
		{
			"SELECT max(value) FROM trips WINDOW USERDEFINED",
			func(q Query) bool { return q.Type == UserDefined },
		},
		{
			"SELECT count(value) FROM s WHERE value >= 10 AND value < 20 WINDOW TUMBLING 500ms",
			func(q Query) bool {
				return q.Pred.Matches(10) && q.Pred.Matches(19.9) && !q.Pred.Matches(20) && !q.Pred.Matches(9.9)
			},
		},
		{
			"SELECT geomean(value) FROM s WINDOW SLIDING 100 EVENTS SLIDE 10 EVENTS",
			func(q Query) bool {
				return q.Measure == Count && q.Type == Sliding && q.Length == 100 && q.Slide == 10 &&
					q.Funcs[0].Func == operator.GeoMean
			},
		},
		{
			"SELECT sum(value) FROM s WINDOW TUMBLING 250", // bare ms
			func(q Query) bool { return q.Measure == Time && q.Length == 250 },
		},
	}
	for _, tc := range cases {
		q, err := ParseSQL(tc.sql)
		if err != nil {
			t.Errorf("ParseSQL(%q): %v", tc.sql, err)
			continue
		}
		if !tc.check(q) {
			t.Errorf("ParseSQL(%q) = %+v", tc.sql, q)
		}
	}
}

func TestParseSQLErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM s WINDOW TUMBLING 1s",
		"SELECT bogus(value) FROM s WINDOW TUMBLING 1s",
		"SELECT avg(value) WINDOW TUMBLING 1s",                         // no FROM
		"SELECT avg(value) FROM s",                                     // no WINDOW
		"SELECT avg(value) FROM s WINDOW SPINNING 1s",                  // bad type
		"SELECT avg(value) FROM s WINDOW TUMBLING",                     // no extent
		"SELECT avg(value) FROM s WINDOW SLIDING 10s",                  // no SLIDE
		"SELECT avg(value) FROM s WINDOW SLIDING 10s SLIDE 100 EVENTS", // mixed measures
		"SELECT avg(value) FROM s WINDOW SESSION 10s",                  // missing GAP
		"SELECT avg(value) FROM s WHERE key > 3 WINDOW TUMBLING 1s",    // key only =
		"SELECT avg(value) FROM s WHERE speed > 3 WINDOW TUMBLING 1s",  // unknown field
		"SELECT quantile(value) FROM s WINDOW TUMBLING 1s",             // missing arg
		"SELECT quantile(value, 2) FROM s WINDOW TUMBLING 1s",          // bad arg
		"SELECT avg(value) FROM s WINDOW TUMBLING 1s EXTRA",            // trailing
		"SELECT avg(x) FROM s WINDOW TUMBLING 1s",                      // not value
		"SELECT avg(value FROM s WINDOW TUMBLING 1s",                   // missing )
		"SELECT avg(value) FROM s WINDOW SESSION GAP 100 EVENTS",       // count session
	}
	for _, s := range bad {
		if _, err := ParseSQL(s); err == nil {
			t.Errorf("ParseSQL(%q) succeeded", s)
		}
	}
}

// TestSQLAndMiniLanguageAgree: both surface syntaxes produce the same query.
func TestSQLAndMiniLanguageAgree(t *testing.T) {
	pairs := [][2]string{
		{"SELECT avg(value) FROM s WHERE key = 3 AND value >= 80 WINDOW TUMBLING 1s",
			"tumbling(1s) average key=3 value>=80"},
		{"SELECT sum(value), count(value) FROM s WINDOW SLIDING 10s SLIDE 2s",
			"sliding(10s,2s) sum,count key=0"},
		{"SELECT median(value) FROM s WHERE key = 2 AND value < 25 WINDOW SESSION GAP 30s",
			"session(30s) median key=2 value<25"},
		{"SELECT quantile(value, 0.95) FROM s WINDOW TUMBLING 1000 EVENTS",
			"tumbling(1000ev) quantile(0.95)"},
	}
	for _, pr := range pairs {
		a := MustParseSQL(pr[0])
		b := MustParse(pr[1])
		if a.String() != b.String() {
			t.Errorf("syntaxes disagree:\n sql:  %s -> %s\n mini: %s -> %s", pr[0], a, pr[1], b)
		}
	}
}
