package query

import "math"

// nextAfter returns the smallest float64 strictly greater than v, used to
// turn strict/inclusive comparison operators into the canonical half-open
// predicate interval.
func nextAfter(v float64) float64 {
	return math.Nextafter(v, math.Inf(1))
}
