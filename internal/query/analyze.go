package query

import (
	"fmt"

	"desis/internal/operator"
)

// Placement says where a query-group's windows are evaluated in a
// decentralized topology (§5.2).
type Placement uint8

// Placements.
const (
	// Distributed groups are sliced on local nodes; only per-slice partial
	// results travel upward.
	Distributed Placement = iota
	// RootOnly groups are evaluated on the root node, which is the only
	// node that can terminate count-based windows: local nodes forward the
	// group's raw events.
	RootOnly
)

// String returns "distributed" or "rootonly".
func (p Placement) String() string {
	if p == Distributed {
		return "distributed"
	}
	return "rootonly"
}

// GroupQuery is a query placed in a group together with the index of the
// selection context whose partial results answer it.
type GroupQuery struct {
	Query
	// Ctx indexes Group.Contexts.
	Ctx int
	// Removed tombstones a retired query: the member slot stays so group
	// ids and member indices remain stable across every node of a topology
	// (EPs carry member indices), but the query no longer contributes to
	// the group's operator union and answers no windows.
	Removed bool
}

// Group is a query-group (§4.1): a set of queries between which partial
// results are shared and in which every event is processed exactly once.
type Group struct {
	// ID is assigned by the analyzer, dense from zero.
	ID uint32
	// Key is the event key all queries of the group select.
	Key uint32
	// Contexts holds the distinct selection predicates of the group; each
	// slice keeps one aggregate per context.
	Contexts []Predicate
	// Queries are the member queries with their context assignment.
	Queries []GroupQuery
	// Ops is the operator mask every slice of the group executes: the
	// Table-1 union of all member functions plus OpCount, which the engine
	// always carries so empty windows are detectable.
	Ops operator.Op
	// LogicalOps is the Table-1 union without the forced OpCount; it is
	// what the calculation accounting of Figures 9b/9d/9f reports.
	LogicalOps operator.Op
	// Placement is where the group's windows are evaluated when deployed
	// decentralized.
	Placement Placement
	// Dedup enables the deduplication non-aggregate operator for the
	// group's slices.
	Dedup bool
	// FeedFrom, FeedCtx, and FeedPeriod describe a factor-fed group (see
	// factor.go): when FeedPeriod > 0 the group ingests no raw events —
	// instead the engine taps group FeedFrom at every FeedPeriod boundary
	// and appends the merged partial of context FeedCtx as one coarse
	// super-slice. Fed groups hold exactly one context and place() never
	// extends them; only placeFactor adds members.
	FeedFrom   uint32
	FeedCtx    int
	FeedPeriod int64
}

// Options configures the analyzer.
type Options struct {
	// Decentralized routes count-based windows into RootOnly groups,
	// because only the root observes the global event order that
	// terminates them (§5.2). Central deployments leave it false and share
	// across measures freely.
	Decentralized bool
	// Dedup enables the deduplication operator on all produced groups.
	Dedup bool
	// Optimize enables the factor-window optimizer (factor.go): eligible
	// queries are placed in fed groups that assemble from another group's
	// super-slices instead of from raw slices. Both settings produce the
	// same results; the flag must agree across every node of a topology so
	// delta replay derives identical catalogs.
	Optimize bool
}

// Analyze validates the queries and forms query-groups: queries share a
// group when they have the same key and their selection predicates are
// pairwise equal or non-overlapping, and (in decentralized mode) when they
// agree on placement. Within a group, equal predicates share one selection
// context.
//
// Analyze is a fold over Place: a catalog built up-front is identical —
// group ids, context indices, member indices, operator masks — to one built
// by admitting the same queries one at a time, which is the invariant the
// execution plan's delta protocol relies on.
func Analyze(queries []Query, opts Options) ([]*Group, error) {
	var groups []*Group
	for i := range queries {
		q := queries[i]
		if q.AnyKey {
			return nil, fmt.Errorf("query %d: group-by templates (key=*) are instantiated at runtime; register them with the engine's AddTemplate (use Split to separate them)", q.ID)
		}
		g, _, created, err := Place(groups, q, opts)
		if err != nil {
			return nil, err
		}
		if created {
			groups = append(groups, g)
		}
	}
	return groups, nil
}

// place finds a group of the bucket that can accept predicate p and returns
// it with the context index; it extends the group's contexts when p is new
// but compatible. A nil group means no group can take p.
func place(bucket []*Group, p Predicate) (*Group, int) {
	for _, g := range bucket {
		if g.Fed() {
			continue // fed groups take members only through placeFactor
		}
		compatible := true
		ctx := -1
		for i, c := range g.Contexts {
			if c.Equal(p) {
				ctx = i
				break
			}
			if c.Overlaps(p) {
				compatible = false
				break
			}
		}
		if ctx >= 0 {
			return g, ctx
		}
		if compatible {
			g.Contexts = append(g.Contexts, p)
			return g, len(g.Contexts) - 1
		}
	}
	return nil, 0
}

// Split separates group-by templates (AnyKey) from concrete queries:
// Analyze takes the concrete ones, the engine's AddTemplate the rest.
func Split(queries []Query) (concrete, templates []Query) {
	for _, q := range queries {
		if q.AnyKey {
			templates = append(templates, q)
		} else {
			concrete = append(concrete, q)
		}
	}
	return concrete, templates
}

// PlacementOf returns where q's windows run under opts (§5.2): count-based
// windows land on the root of a decentralized topology, everything else is
// distributed. It is the bucket key Place groups candidates by, exposed so
// indexed callers (plan.Plan) can select the bucket without a catalog scan.
func PlacementOf(q Query, opts Options) Placement {
	if opts.Decentralized && q.Measure == Count {
		return RootOnly
	}
	return Distributed
}

// Place adds a query to an existing group set at runtime, following the same
// rules as Analyze. It mutates the set deterministically — every node of a
// topology applying the same Place calls in the same order derives identical
// group ids, context indices, and member indices, which the wire protocol
// relies on. It returns the (possibly new) group, the member index within
// it, and whether a new group was created. The new group, if any, must be
// appended to the caller's set.
func Place(groups []*Group, q Query, opts Options) (g *Group, member int, created bool, err error) {
	placement := PlacementOf(q, opts)
	var bucket []*Group
	var nextID uint32
	for _, cand := range groups {
		if cand.ID >= nextID {
			nextID = cand.ID + 1
		}
		if cand.Key == q.Key && cand.Placement == placement {
			bucket = append(bucket, cand)
		}
	}
	return PlaceIn(bucket, nextID, q, opts)
}

// PlaceIn is Place with the candidate scan hoisted out: bucket must hold, in
// catalog order, exactly the groups matching (q.Key, PlacementOf(q, opts)),
// and nextGroupID must be one past the largest group id in the whole set.
// Callers that maintain an index over their catalog (plan.Plan) use it to
// make admission cost independent of catalog size; the produced groups are
// identical to Place's.
func PlaceIn(bucket []*Group, nextGroupID uint32, q Query, opts Options) (g *Group, member int, created bool, err error) {
	if err := q.Validate(); err != nil {
		return nil, 0, false, err
	}
	if opts.Optimize {
		if fg, fmember, fcreated, ok := placeFactor(bucket, nextGroupID, q, opts); ok {
			return fg, fmember, fcreated, nil
		}
	}
	g, ctx := place(bucket, q.Pred)
	if g == nil {
		g = &Group{
			ID:        nextGroupID,
			Key:       q.Key,
			Placement: PlacementOf(q, opts),
			Contexts:  []Predicate{q.Pred},
			Dedup:     opts.Dedup,
		}
		ctx = 0
		created = true
	}
	g.Queries = append(g.Queries, GroupQuery{Query: q, Ctx: ctx})
	RefreshOps(bucket, g)
	return g, len(g.Queries) - 1, created, nil
}

// Lookup finds a live (non-tombstoned) query by ID inside a set of groups;
// used by runtime query removal. It returns the group, the index within it,
// and whether it exists.
func Lookup(groups []*Group, id uint64) (*Group, int, bool) {
	for _, g := range groups {
		for i, gq := range g.Queries {
			if gq.ID == id && !gq.Removed {
				return g, i, true
			}
		}
	}
	return nil, 0, false
}

// NextID returns an ID one larger than any query in groups, for assigning
// IDs to queries added at runtime.
func NextID(groups []*Group) uint64 {
	var max uint64
	for _, g := range groups {
		for _, gq := range g.Queries {
			if gq.ID > max {
				max = gq.ID
			}
		}
	}
	return max + 1
}

// String summarises the group for logs.
func (g *Group) String() string {
	return fmt.Sprintf("group(%d key=%d queries=%d contexts=%d ops=%v placement=%v)",
		g.ID, g.Key, len(g.Queries), len(g.Contexts), g.Ops, g.Placement)
}
