package query

import "desis/internal/operator"

// Factor-window placement (the plan optimizer's analysis half, ROADMAP item
// 3): a time-measure fixed window whose length and slide are integer
// multiples of another group's cut grid can be evaluated over that group's
// partial results instead of over raw slices. The query is then placed in a
// *fed* group — a group that ingests no raw events; the engine taps the
// feeder at every FeedPeriod boundary and appends the merged partial as one
// coarse "super-slice" to the fed group, so a 1h/1m window assembles from 60
// super-slices instead of thousands of raw slices ("Factor Windows", Wu et
// al.).
//
// Everything here is part of the deterministic placement fold: a catalog
// built up-front and one built by replaying the same deltas must agree on
// every feed edge, which is why the decision lives next to PlaceIn rather
// than in the plan layer.

// Fed reports whether the group is a factor-fed group: it ingests no raw
// events and receives super-slices from group FeedFrom instead.
func (g *Group) Fed() bool { return g.FeedPeriod > 0 }

// factorPeriod returns the super-slice period for q — its window slide —
// when q has a shape that can be factor-fed at all: a time-measure fixed
// window whose length is a whole number of slides, computing only
// decomposable functions (super-slices are merged partials, so every
// function must decompose; the non-decomposable sort additionally breaks
// the feeder's §4.2.2 sharing rule).
func factorPeriod(q Query) (int64, bool) {
	if q.Measure != Time {
		return 0, false
	}
	var p int64
	switch q.Type {
	case Sliding:
		p = q.Slide
	case Tumbling:
		p = q.Length
	default:
		return 0, false
	}
	if p <= 0 || q.Length%p != 0 || !q.Decomposable() {
		return 0, false
	}
	return p, true
}

// cutPeriod returns the finest cut grid group g is guaranteed to slice on:
// its feed period when g is itself fed, otherwise the smallest slide of a
// live fixed-time member (window starts fall on every multiple of a member's
// slide, so the group's boundary set contains that whole grid). ok is false
// when g offers no fixed time grid.
func cutPeriod(g *Group) (int64, bool) {
	if g.Fed() {
		return g.FeedPeriod, true
	}
	var w int64
	for _, gq := range g.Queries {
		if gq.Removed || gq.Measure != Time {
			continue
		}
		var s int64
		switch gq.Type {
		case Sliding:
			s = gq.Slide
		case Tumbling:
			s = gq.Length
		default:
			continue
		}
		if s > 0 && (w == 0 || s < w) {
			w = s
		}
	}
	return w, w > 0
}

// feedEligible reports whether group f can feed super-slices of period p for
// predicate pred: f must already maintain an exactly-equal selection context
// (super-slices are per-context merges, so overlap is not enough), and its
// guaranteed cut grid must divide p so tapping it adds no boundaries beyond
// splits it would cut anyway. Fed groups hold exactly one context, which is
// what keeps their slices answerable as super-slices further up a chain.
func feedEligible(f *Group, pred Predicate, p int64) (ctx int, ok bool) {
	if f.Dedup {
		return 0, false
	}
	w, ok := cutPeriod(f)
	if !ok || p%w != 0 {
		return 0, false
	}
	for i, c := range f.Contexts {
		if c.Equal(pred) {
			return i, true
		}
	}
	return 0, false
}

// groupByID finds a group by id within a bucket.
func groupByID(bucket []*Group, id uint32) *Group {
	for _, g := range bucket {
		if g.ID == id {
			return g
		}
	}
	return nil
}

// Factor-window cost model, in expected merge operations per event-time
// millisecond. Joining the place() target PT merges one window of L/w(PT)
// slices every S ms; feeding from F merges L/p super-slices per window plus
// one super-slice production (a merge over F's slices, amortised O(1) with
// the pre-aggregation index) every p ms, and pays the extra factor-window
// state. The rewrite must win by at least 2x so marginal plans keep the
// simpler unrewritten shape.
const factorWinFactor = 2

func joinCost(q Query, p int64, w int64) float64 {
	return (float64(q.Length) / float64(w)) / float64(p)
}

func feedCost(q Query, p int64, feederCut int64) float64 {
	return (float64(q.Length)/float64(p))/float64(p) + 1/float64(feederCut)
}

// placeFactor tries to place q as a factor-fed query: first by joining an
// existing fed group with the same period and context (sharing its
// super-slices is free), then by founding a new fed group when the cost
// model says feeding beats joining the group place() would pick. It returns
// ok=false when q keeps the ordinary placement path. The scan order and
// tie-breaks are deterministic (catalog order, lowest feeder id), which the
// delta replay protocol relies on.
func placeFactor(bucket []*Group, nextGroupID uint32, q Query, opts Options) (g *Group, member int, created bool, ok bool) {
	if opts.Dedup {
		return nil, 0, false, false
	}
	p, ok := factorPeriod(q)
	if !ok {
		return nil, 0, false, false
	}

	// Join an existing fed group when one matches exactly: its super-slices
	// already answer q's grid, so this beats any other placement.
	for _, d := range bucket {
		if !d.Fed() || d.FeedPeriod != p || !d.Contexts[0].Equal(q.Pred) {
			continue
		}
		d.Queries = append(d.Queries, GroupQuery{Query: q, Ctx: 0})
		RefreshOps(bucket, d)
		return d, len(d.Queries) - 1, false, true
	}

	// Founding a new fed group has to beat joining the group place() would
	// put q in. Without such a target q would found an ordinary group slicing
	// on its own grid, which a factor rewrite cannot improve on. peekPlace
	// mirrors place() without extending the target's contexts: when the
	// rewrite fires, the target must stay exactly as it was.
	pt := peekPlace(bucket, q.Pred)
	if pt == nil {
		return nil, 0, false, false
	}
	ptCut, ok := cutPeriod(pt)
	if !ok {
		return nil, 0, false, false
	}
	var feeder *Group
	var feedCtx int
	var best float64
	for _, f := range bucket {
		ctx, ok := feedEligible(f, q.Pred, p)
		if !ok {
			continue
		}
		cut, _ := cutPeriod(f)
		if c := feedCost(q, p, cut); feeder == nil || c < best {
			feeder, feedCtx, best = f, ctx, c
		}
	}
	if feeder == nil || factorWinFactor*best > joinCost(q, p, ptCut) {
		return nil, 0, false, false
	}
	d := &Group{
		ID:         nextGroupID,
		Key:        q.Key,
		Placement:  PlacementOf(q, opts),
		Contexts:   []Predicate{q.Pred},
		Queries:    []GroupQuery{{Query: q, Ctx: 0}},
		FeedFrom:   feeder.ID,
		FeedCtx:    feedCtx,
		FeedPeriod: p,
	}
	// d has no dependents yet, so refreshing against the old bucket only
	// computes d's own masks and widens its feeder chain.
	RefreshOps(bucket, d)
	return d, 0, true, true
}

// peekPlace returns the group place() would put predicate p in, without
// mutating any group: the first bucket group holding an equal context or
// compatible (pairwise non-overlapping) with all of its contexts.
func peekPlace(bucket []*Group, p Predicate) *Group {
	for _, g := range bucket {
		if g.Fed() {
			continue
		}
		compatible := true
		for _, c := range g.Contexts {
			if c.Equal(p) {
				return g
			}
			if c.Overlaps(p) {
				compatible = false
				break
			}
		}
		if compatible {
			return g
		}
	}
	return nil
}

// RefreshOps recomputes g's operator masks from its live members and then
// restores the feed-chain invariant inside the bucket: a feeder's Ops must
// cover every dependent's (its slices are what the dependents' super-slices
// are merged from). Membership mutations — placement, removal — call this
// instead of folding member funcs directly, so masks converge to the same
// value in every construction order. Dependent masks are OR-ed raw (they are
// NDSort-free by eligibility), which may legitimately carry OpDSort next to
// a feeder's OpNDSort: the feeder's own min/max members keep reading the
// sorted values, while super-slices are produced from the decomposable
// lanes.
func RefreshOps(bucket []*Group, g *Group) {
	var ops operator.Op
	for _, gq := range g.Queries {
		if gq.Removed {
			continue
		}
		ops = operator.UnionFuncs(ops, gq.Funcs)
	}
	g.LogicalOps = ops
	g.Ops = ops | operator.OpCount
	for _, d := range bucket {
		if d != g && d.Fed() && d.FeedFrom == g.ID {
			g.Ops |= d.Ops &^ operator.OpNDSort
		}
	}
	for cur := g; cur.Fed(); {
		f := groupByID(bucket, cur.FeedFrom)
		if f == nil {
			break
		}
		f.Ops |= cur.Ops &^ operator.OpNDSort
		cur = f
	}
}
