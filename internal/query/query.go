// Package query defines windowed aggregation queries and the query analyzer
// (QA component of §3.1) that derives window attributes and forms
// query-groups — the sets of queries whose windows can share slices and
// partial results.
package query

import (
	"fmt"
	"strings"

	"desis/internal/operator"
)

// WindowType describes how windows start and end (§2.1).
type WindowType uint8

// The window types of the Dataflow model plus user-defined windows.
const (
	// Tumbling windows have a fixed length and abut each other.
	Tumbling WindowType = iota
	// Sliding windows have a fixed length and a step (slide) smaller than
	// or equal to the length, producing overlaps.
	Sliding
	// Session windows close after a gap with no events.
	Session
	// UserDefined windows are delimited by marker events in the stream.
	UserDefined
)

var windowTypeNames = [...]string{"tumbling", "sliding", "session", "userdefined"}

// String returns the query-language name of the window type.
func (t WindowType) String() string {
	if int(t) < len(windowTypeNames) {
		return windowTypeNames[t]
	}
	return fmt.Sprintf("WindowType(%d)", uint8(t))
}

// Measure is the unit in which window extents are expressed (§2.1).
type Measure uint8

// Window measures.
const (
	// Time measures lengths in event-time milliseconds.
	Time Measure = iota
	// Count measures lengths in number of events.
	Count
)

// String returns "time" or "count".
func (m Measure) String() string {
	if m == Time {
		return "time"
	}
	return "count"
}

// Query is one continuous windowed aggregation over the stream.
type Query struct {
	// ID is unique per running query; results carry it.
	ID uint64
	// Key selects the sub-stream the query aggregates.
	Key uint32
	// AnyKey makes the query a group-by template ("key=*"): the engine
	// instantiates one window stream per key observed in the input, and
	// results carry the concrete key. Supported by the central Engine and
	// ParallelEngine; decentralized clusters reject templates because key
	// discovery order differs per node.
	AnyKey bool
	// Pred filters events by value (the selection operator, §4.2.3).
	Pred Predicate
	// Type is the window type.
	Type WindowType
	// Measure is Time for time-based and Count for count-based windows.
	Measure Measure
	// Length is the window length: milliseconds (Time) or events (Count).
	// Unused for session and user-defined windows.
	Length int64
	// Slide is the step of sliding windows; ignored otherwise.
	Slide int64
	// Gap is the inactivity gap of session windows in milliseconds.
	Gap int64
	// Funcs are the aggregation functions to evaluate per window. A query
	// may request several (Figures 9e–9g evaluate such combinations).
	Funcs []operator.FuncSpec
}

// Operators returns the Table-1 operator union for the query's functions.
func (q Query) Operators() operator.Op { return operator.Union(q.Funcs) }

// Decomposable reports whether every function of the query is decomposable.
func (q Query) Decomposable() bool {
	for _, f := range q.Funcs {
		if !f.Func.Decomposable() {
			return false
		}
	}
	return true
}

// Validate checks internal consistency.
func (q Query) Validate() error {
	if len(q.Funcs) == 0 {
		return fmt.Errorf("query %d: no aggregation functions", q.ID)
	}
	for _, f := range q.Funcs {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("query %d: %w", q.ID, err)
		}
	}
	switch q.Type {
	case Tumbling:
		if q.Length <= 0 {
			return fmt.Errorf("query %d: tumbling window needs positive length", q.ID)
		}
	case Sliding:
		if q.Length <= 0 || q.Slide <= 0 {
			return fmt.Errorf("query %d: sliding window needs positive length and slide", q.ID)
		}
		if q.Slide > q.Length {
			return fmt.Errorf("query %d: slide %d exceeds length %d", q.ID, q.Slide, q.Length)
		}
	case Session:
		if q.Gap <= 0 {
			return fmt.Errorf("query %d: session window needs positive gap", q.ID)
		}
		if q.Measure == Count {
			return fmt.Errorf("query %d: session windows are time-based", q.ID)
		}
	case UserDefined:
		if q.Measure == Count {
			return fmt.Errorf("query %d: user-defined windows are delimited by markers, not counts", q.ID)
		}
	default:
		return fmt.Errorf("query %d: unknown window type %d", q.ID, q.Type)
	}
	if q.Measure == Count && q.Type != Tumbling && q.Type != Sliding {
		return fmt.Errorf("query %d: count measure only applies to tumbling and sliding windows", q.ID)
	}
	if err := q.Pred.Validate(); err != nil {
		return fmt.Errorf("query %d: %w", q.ID, err)
	}
	return nil
}

// String renders the query in the textual query language accepted by Parse.
func (q Query) String() string {
	var sb strings.Builder
	switch q.Type {
	case Tumbling:
		fmt.Fprintf(&sb, "tumbling(%s)", extent(q.Length, q.Measure))
	case Sliding:
		fmt.Fprintf(&sb, "sliding(%s,%s)", extent(q.Length, q.Measure), extent(q.Slide, q.Measure))
	case Session:
		fmt.Fprintf(&sb, "session(%dms)", q.Gap)
	case UserDefined:
		sb.WriteString("userdefined")
	}
	sb.WriteByte(' ')
	for i, f := range q.Funcs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(f.String())
	}
	if q.AnyKey {
		sb.WriteString(" key=*")
	} else {
		fmt.Fprintf(&sb, " key=%d", q.Key)
	}
	if p := q.Pred.String(); p != "" {
		sb.WriteByte(' ')
		sb.WriteString(p)
	}
	return sb.String()
}

func extent(v int64, m Measure) string {
	if m == Count {
		return fmt.Sprintf("%dev", v)
	}
	return fmt.Sprintf("%dms", v)
}
