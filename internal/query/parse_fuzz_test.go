package query

import "testing"

// FuzzParseQuery feeds arbitrary strings to both query syntaxes via
// ParseAny: parsers must return errors, never panic, and anything they
// accept must Validate and survive a String/Parse fixpoint.
func FuzzParseQuery(f *testing.F) {
	for _, s := range []string{
		"tumbling(1s) average key=3 value>=80",
		"sliding(10s,2s) sum,count key=1",
		"session(30s) median key=2 value<25",
		"tumbling(1000ev) quantile(0.95) key=7",
		"userdefined max key=*",
		"SELECT avg(value), max(value) FROM stream WHERE key = 3 AND value >= 80 WINDOW TUMBLING 1s",
		"SELECT quantile(value, 0.95) FROM s WINDOW SLIDING 10s SLIDE 2s",
		"SELECT median(value) FROM s WHERE key = * WINDOW SESSION GAP 30s",
		"",
		"tumbling(",
		"SELECT FROM WHERE",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := ParseAny(s)
		if err != nil {
			return
		}
		probe := q
		probe.AnyKey = false
		if verr := probe.Validate(); verr != nil {
			t.Fatalf("accepted %q but it fails Validate: %v", s, verr)
		}
		str := q.String()
		again, err := ParseAny(str)
		if err != nil {
			t.Fatalf("String() output %q (from %q) does not re-parse: %v", str, s, err)
		}
		if again.String() != str {
			t.Fatalf("String/Parse not a fixpoint: %q -> %q", str, again.String())
		}
	})
}
