package query

import (
	"testing"

	"desis/internal/operator"
)

// Unit tests for the factor-window placement analysis: shape gating
// (factorPeriod), the cost model's rewrite threshold, chain formation, and
// the feed-chain mask invariant. These pin the *decisions*; the engine-level
// differential proves the rewritten plans produce identical results.

func fSliding(id uint64, length, slide int64, funcs ...operator.Func) Query {
	fs := make([]operator.FuncSpec, len(funcs))
	for i, f := range funcs {
		fs[i] = operator.FuncSpec{Func: f}
	}
	return Query{ID: id, Pred: All(), Type: Sliding, Measure: Time, Length: length, Slide: slide, Funcs: fs}
}

func fTumbling(id uint64, length int64, funcs ...operator.Func) Query {
	fs := make([]operator.FuncSpec, len(funcs))
	for i, f := range funcs {
		fs[i] = operator.FuncSpec{Func: f}
	}
	return Query{ID: id, Pred: All(), Type: Tumbling, Measure: Time, Length: length, Funcs: fs}
}

func TestFactorPeriodShapes(t *testing.T) {
	cases := []struct {
		name string
		q    Query
		p    int64
		ok   bool
	}{
		{"sliding-divisible", fSliding(1, 60_000, 10_000, operator.Sum), 10_000, true},
		{"tumbling", fTumbling(2, 1000, operator.Sum), 1000, true},
		{"length-not-multiple", fSliding(3, 25_000, 10_000, operator.Sum), 0, false},
		{"count-measure", Query{ID: 4, Pred: All(), Type: Sliding, Measure: Count, Length: 100, Slide: 10,
			Funcs: []operator.FuncSpec{{Func: operator.Sum}}}, 0, false},
		{"session", Query{ID: 5, Pred: All(), Type: Session, Measure: Time, Gap: 1000,
			Funcs: []operator.FuncSpec{{Func: operator.Sum}}}, 0, false},
		{"non-decomposable", fSliding(6, 60_000, 10_000, operator.Median), 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, ok := factorPeriod(tc.q)
			if ok != tc.ok || (ok && p != tc.p) {
				t.Fatalf("factorPeriod = (%d, %v), want (%d, %v)", p, ok, tc.p, tc.ok)
			}
		})
	}
}

// TestPlaceFactorChain: placing base → medium → long builds a depth-3 feed
// chain, and another query with the medium period joins the existing fed
// group instead of founding a fourth.
func TestPlaceFactorChain(t *testing.T) {
	opts := Options{Optimize: true}
	var bucket []*Group

	place := func(q Query) *Group {
		t.Helper()
		g, _, created, err := PlaceIn(bucket, uint32(len(bucket)), q, opts)
		if err != nil {
			t.Fatalf("PlaceIn(%d): %v", q.ID, err)
		}
		if created {
			bucket = append(bucket, g)
		}
		return g
	}

	base := place(fTumbling(1, 1000, operator.Sum))
	if base.Fed() {
		t.Fatal("base group has no feeder candidates and must stay raw")
	}
	med := place(fSliding(2, 60_000, 10_000, operator.Sum))
	if !med.Fed() || med.FeedFrom != base.ID || med.FeedPeriod != 10_000 {
		t.Fatalf("medium window not fed from base: %+v", med)
	}
	long := place(fSliding(3, 600_000, 60_000, operator.Min))
	if !long.Fed() || long.FeedFrom != med.ID {
		t.Fatalf("long window must chain off the medium fed group (coarser supers), got feed-from=%d", long.FeedFrom)
	}
	n := len(bucket)
	joined := place(fSliding(4, 120_000, 10_000, operator.Max))
	if joined != med || len(bucket) != n {
		t.Fatalf("same-period query must join the existing fed group, got group %d", joined.ID)
	}
}

// TestPlaceFactorThreshold pins the 2x rewrite margin: a 15-slice window
// (L=3p, p=5w) stays unrewritten — 2*(j+k) = 16 > jk = 15 — while one more
// slide of length tips it over.
func TestPlaceFactorThreshold(t *testing.T) {
	opts := Options{Optimize: true}
	mk := func(q Query) []*Group {
		base := fTumbling(1, 1000, operator.Sum)
		g, _, _, err := PlaceIn(nil, 0, base, opts)
		if err != nil {
			t.Fatal(err)
		}
		bucket := []*Group{g}
		g2, _, created, err := PlaceIn(bucket, 1, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if created {
			bucket = append(bucket, g2)
		}
		return bucket
	}

	// j=3 slides of k=5 grid cells: join cost 15 merges per 5s, feed cost
	// (3+5) per 5s — short of the 2x margin, keep the simple plan.
	marginal := mk(fSliding(2, 15_000, 5000, operator.Sum))
	for _, g := range marginal {
		if g.Fed() {
			t.Fatalf("marginal window was rewritten: %+v", g)
		}
	}
	// j=4: 2*(4+5) = 18 <= 20 — rewrite.
	winning := mk(fSliding(2, 20_000, 5000, operator.Sum))
	found := false
	for _, g := range winning {
		found = found || g.Fed()
	}
	if !found {
		t.Fatal("clearly-winning window was not rewritten")
	}
}

// TestPlaceFactorIneligibility: dedup mode, foreign predicates, and missing
// feeders all keep the ordinary placement path.
func TestPlaceFactorIneligibility(t *testing.T) {
	base := fTumbling(1, 1000, operator.Sum)
	eligible := fSliding(2, 60_000, 10_000, operator.Sum)

	// Dedup strips the rewrite wholesale: late dedup state cannot be
	// reconstructed from merged supers.
	g, _, _, err := PlaceIn(nil, 0, base, Options{Optimize: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	g2, _, created, err := PlaceIn([]*Group{g}, 1, eligible, Options{Optimize: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fed() {
		t.Fatal("dedup bucket produced a fed group")
	}
	_ = created

	// A predicate no feeder context equals: no feed edge.
	g, _, _, err = PlaceIn(nil, 0, base, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	other := fSliding(3, 60_000, 10_000, operator.Sum)
	other.Pred = Above(50)
	g3, _, _, err := PlaceIn([]*Group{g}, 1, other, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if g3.Fed() {
		t.Fatal("predicate mismatch produced a fed group")
	}

	// Optimize off: identical queries, no rewrite.
	g, _, _, err = PlaceIn(nil, 0, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g4, _, _, err := PlaceIn([]*Group{g}, 1, eligible, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g4.Fed() {
		t.Fatal("optimizer disabled but a fed group appeared")
	}
}

// TestRefreshOpsFeedChain: the feeder of a chain must carry every
// dependent's decomposable operators (its slices are what supers merge
// from), while OpNDSort never propagates down.
func TestRefreshOpsFeedChain(t *testing.T) {
	opts := Options{Optimize: true}
	var bucket []*Group
	place := func(q Query) *Group {
		t.Helper()
		g, _, created, err := PlaceIn(bucket, uint32(len(bucket)), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if created {
			bucket = append(bucket, g)
		}
		return g
	}
	base := place(fTumbling(1, 1000, operator.Count))
	med := place(fSliding(2, 60_000, 10_000, operator.Sum))
	long := place(fSliding(3, 600_000, 60_000, operator.Min))

	if miss := long.Ops &^ operator.OpNDSort &^ med.Ops; miss != 0 {
		t.Fatalf("medium feeder missing dependent ops %v", miss)
	}
	if miss := med.Ops &^ operator.OpNDSort &^ base.Ops; miss != 0 {
		t.Fatalf("base feeder missing dependent ops %v", miss)
	}
	if base.Ops&operator.OpSum == 0 {
		t.Fatal("base group did not widen to cover the chain's sum")
	}
}
