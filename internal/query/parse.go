package query

import (
	"fmt"
	"strconv"
	"strings"

	"desis/internal/operator"
)

// Parse reads a query from the small textual query language used by the
// command-line tools and examples. Tokens are whitespace-separated and may
// appear in any order:
//
//	tumbling(1s) average key=3 value>=80
//	sliding(10s,2s) sum,count key=1
//	session(30s) median key=2 value<25
//	tumbling(1000ev) quantile(0.95) key=7
//	userdefined max key=0
//
// Window extents accept ms, s, m suffixes (milliseconds by default) or an
// "ev" suffix for count-based windows. The predicate defaults to all values;
// "value>=X" and "value<Y" tokens may be combined into a range.
func Parse(s string) (Query, error) {
	q := Query{Pred: All()}
	haveWindow := false
	for _, tok := range strings.Fields(s) {
		switch {
		case strings.HasPrefix(tok, "tumbling("):
			ext, m, err := parseExtents(tok, "tumbling", 1)
			if err != nil {
				return Query{}, err
			}
			q.Type, q.Measure, q.Length = Tumbling, m, ext[0]
			haveWindow = true
		case strings.HasPrefix(tok, "sliding("):
			ext, m, err := parseExtents(tok, "sliding", 2)
			if err != nil {
				return Query{}, err
			}
			q.Type, q.Measure, q.Length, q.Slide = Sliding, m, ext[0], ext[1]
			haveWindow = true
		case strings.HasPrefix(tok, "session("):
			ext, m, err := parseExtents(tok, "session", 1)
			if err != nil {
				return Query{}, err
			}
			if m != Time {
				return Query{}, fmt.Errorf("query: session gap must be time-based in %q", tok)
			}
			q.Type, q.Measure, q.Gap = Session, Time, ext[0]
			haveWindow = true
		case tok == "userdefined":
			q.Type, q.Measure = UserDefined, Time
			haveWindow = true
		case tok == "key=*":
			q.AnyKey = true
		case strings.HasPrefix(tok, "key="):
			k, err := strconv.ParseUint(tok[len("key="):], 10, 32)
			if err != nil {
				return Query{}, fmt.Errorf("query: bad key in %q: %v", tok, err)
			}
			q.Key = uint32(k)
		case strings.HasPrefix(tok, "value"):
			if err := applyPredicate(&q.Pred, tok); err != nil {
				return Query{}, err
			}
		default:
			funcs, err := parseFuncs(tok)
			if err != nil {
				return Query{}, fmt.Errorf("query: unrecognised token %q: %v", tok, err)
			}
			q.Funcs = append(q.Funcs, funcs...)
		}
	}
	if !haveWindow {
		return Query{}, fmt.Errorf("query: missing window specification in %q", s)
	}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(s string) Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

func parseExtents(tok, name string, want int) ([]int64, Measure, error) {
	inner := strings.TrimSuffix(strings.TrimPrefix(tok, name+"("), ")")
	if len(inner) == len(tok) || !strings.HasSuffix(tok, ")") {
		return nil, Time, fmt.Errorf("query: malformed window %q", tok)
	}
	parts := strings.Split(inner, ",")
	if len(parts) != want {
		return nil, Time, fmt.Errorf("query: %s wants %d extents, got %d in %q", name, want, len(parts), tok)
	}
	var out []int64
	measure := Time
	for i, p := range parts {
		v, m, err := parseExtent(p)
		if err != nil {
			return nil, Time, fmt.Errorf("query: bad extent in %q: %v", tok, err)
		}
		if i == 0 {
			measure = m
		} else if m != measure {
			return nil, Time, fmt.Errorf("query: mixed measures in %q", tok)
		}
		out = append(out, v)
	}
	return out, measure, nil
}

// parseExtent reads "1s", "500ms", "2m", "1000ev", or a bare millisecond
// count.
func parseExtent(s string) (int64, Measure, error) {
	mult := int64(1)
	measure := Time
	switch {
	case strings.HasSuffix(s, "ev"):
		s, measure = s[:len(s)-2], Count
	case strings.HasSuffix(s, "ms"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		s, mult = s[:len(s)-1], 1000
	case strings.HasSuffix(s, "m"):
		s, mult = s[:len(s)-1], 60_000
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, Time, err
	}
	return v * mult, measure, nil
}

func applyPredicate(p *Predicate, tok string) error {
	rest := tok[len("value"):]
	for _, op := range []string{">=", "<=", ">", "<", "="} {
		if strings.HasPrefix(rest, op) {
			v, err := strconv.ParseFloat(rest[len(op):], 64)
			if err != nil {
				return fmt.Errorf("query: bad predicate %q: %v", tok, err)
			}
			switch op {
			case ">=":
				p.Min = v
			case ">":
				// Values are float64; use the next representable value up
				// so "value>v" excludes v itself.
				p.Min = nextAfter(v)
			case "<":
				p.Max = v
			case "<=":
				p.Max = nextAfter(v)
			case "=":
				p.Min, p.Max = v, nextAfter(v)
			}
			return nil
		}
	}
	return fmt.Errorf("query: bad predicate %q", tok)
}

func parseFuncs(tok string) ([]operator.FuncSpec, error) {
	var out []operator.FuncSpec
	for _, part := range strings.Split(tok, ",") {
		if strings.HasPrefix(part, "quantile(") && strings.HasSuffix(part, ")") {
			arg, err := strconv.ParseFloat(part[len("quantile("):len(part)-1], 64)
			if err != nil {
				return nil, err
			}
			out = append(out, operator.FuncSpec{Func: operator.Quantile, Arg: arg})
			continue
		}
		f, err := operator.ParseFunc(part)
		if err != nil {
			return nil, err
		}
		out = append(out, operator.FuncSpec{Func: f})
	}
	return out, nil
}
