package query

import (
	"fmt"
	"math"
)

// Predicate is a selection on the event value: the half-open interval
// [Min, Max). The zero Predicate is NOT "match all"; use All. Selection
// predicates decide query-group membership (§4.2.3): queries whose
// predicates are equal share one selection context; queries whose
// predicates do not overlap can live in the same group with separate
// contexts; partially overlapping predicates force separate groups.
type Predicate struct {
	Min float64 // inclusive lower bound
	Max float64 // exclusive upper bound
}

// All returns the predicate matching every value.
func All() Predicate {
	return Predicate{Min: math.Inf(-1), Max: math.Inf(1)}
}

// Above returns the predicate "value >= min".
func Above(min float64) Predicate {
	return Predicate{Min: min, Max: math.Inf(1)}
}

// Below returns the predicate "value < max".
func Below(max float64) Predicate {
	return Predicate{Min: math.Inf(-1), Max: max}
}

// Range returns the predicate "min <= value < max".
func Range(min, max float64) Predicate {
	return Predicate{Min: min, Max: max}
}

// Matches reports whether v satisfies the predicate.
func (p Predicate) Matches(v float64) bool {
	return v >= p.Min && v < p.Max
}

// IsAll reports whether the predicate matches every value.
func (p Predicate) IsAll() bool {
	return math.IsInf(p.Min, -1) && math.IsInf(p.Max, 1)
}

// Equal reports whether two predicates select exactly the same values.
func (p Predicate) Equal(o Predicate) bool {
	return p.Min == o.Min && p.Max == o.Max
}

// Overlaps reports whether the two predicates can both match some value.
func (p Predicate) Overlaps(o Predicate) bool {
	return p.Min < o.Max && o.Min < p.Max
}

// Validate rejects empty intervals, which would silently drop every event.
func (p Predicate) Validate() error {
	if !(p.Min < p.Max) {
		return fmt.Errorf("query: empty predicate [%g, %g)", p.Min, p.Max)
	}
	return nil
}

// String renders the predicate in query-language form (re-parseable); the
// all-matching predicate renders as the empty string.
func (p Predicate) String() string {
	switch {
	case p.IsAll():
		return ""
	case math.IsInf(p.Min, -1):
		return fmt.Sprintf("value<%g", p.Max)
	case math.IsInf(p.Max, 1):
		return fmt.Sprintf("value>=%g", p.Min)
	default:
		return fmt.Sprintf("value>=%g value<%g", p.Min, p.Max)
	}
}
