package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"desis/internal/operator"
)

// ParseSQL reads a query in the SQL-style surface syntax:
//
//	SELECT avg(value), max(value) FROM stream
//	    WHERE key = 3 AND value >= 80
//	    WINDOW TUMBLING 1s
//
//	SELECT quantile(value, 0.95) FROM stream WINDOW SLIDING 10s SLIDE 2s
//	SELECT median(value) FROM stream WHERE key = * WINDOW SESSION GAP 30s
//	SELECT sum(value)   FROM stream WINDOW TUMBLING 1000 EVENTS
//	SELECT max(value)   FROM stream WINDOW USERDEFINED
//
// Keywords are case-insensitive; "avg" and "average" are synonyms, as are
// "geomean"/"geometric_mean". `key = *` declares a group-by template.
func ParseSQL(s string) (Query, error) {
	p := &sqlParser{toks: sqlTokenize(s)}
	q, err := p.parse()
	if err != nil {
		return Query{}, fmt.Errorf("query: %w (in %q)", err, s)
	}
	if err := validateParsed(q); err != nil {
		return Query{}, err
	}
	return q, nil
}

// validateParsed validates, treating templates as key-agnostic.
func validateParsed(q Query) error {
	probe := q
	probe.AnyKey = false
	return probe.Validate()
}

// MustParseSQL is ParseSQL that panics on error.
func MustParseSQL(s string) Query {
	q, err := ParseSQL(s)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseAny auto-detects the syntax: inputs starting with SELECT use the
// SQL-style grammar, everything else the compact mini-language.
func ParseAny(s string) (Query, error) {
	t := strings.TrimSpace(s)
	if len(t) >= 7 && strings.EqualFold(t[:7], "SELECT ") {
		return ParseSQL(s)
	}
	return Parse(s)
}

// sqlTokenize splits into words, numbers, punctuation, and operators.
func sqlTokenize(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == ',' || c == '*':
			toks = append(toks, string(c))
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			j := i
			for j < len(s) {
				r := rune(s[j])
				if unicode.IsSpace(r) || strings.ContainsRune("(),*<>=!", r) {
					break
				}
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

type sqlParser struct {
	toks []string
	pos  int
}

func (p *sqlParser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *sqlParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

// expectKw consumes a case-insensitive keyword.
func (p *sqlParser) expectKw(kw string) error {
	if !strings.EqualFold(p.peek(), kw) {
		return fmt.Errorf("expected %s, got %q", kw, p.peek())
	}
	p.next()
	return nil
}

func (p *sqlParser) isKw(kw string) bool { return strings.EqualFold(p.peek(), kw) }

func (p *sqlParser) parse() (Query, error) {
	q := Query{Pred: All()}
	if err := p.expectKw("SELECT"); err != nil {
		return q, err
	}
	for {
		spec, err := p.parseFunc()
		if err != nil {
			return q, err
		}
		q.Funcs = append(q.Funcs, spec)
		if p.peek() != "," {
			break
		}
		p.next()
	}
	if err := p.expectKw("FROM"); err != nil {
		return q, err
	}
	if p.next() == "" {
		return q, fmt.Errorf("missing stream name after FROM")
	}
	if p.isKw("WHERE") {
		p.next()
		if err := p.parseWhere(&q); err != nil {
			return q, err
		}
	}
	if err := p.expectKw("WINDOW"); err != nil {
		return q, err
	}
	if err := p.parseWindow(&q); err != nil {
		return q, err
	}
	if p.peek() != "" {
		return q, fmt.Errorf("trailing input starting at %q", p.peek())
	}
	return q, nil
}

var sqlFuncs = map[string]operator.Func{
	"sum": operator.Sum, "count": operator.Count,
	"avg": operator.Average, "average": operator.Average,
	"product": operator.Product,
	"geomean": operator.GeoMean, "geometric_mean": operator.GeoMean,
	"min": operator.Min, "max": operator.Max,
	"median": operator.Median, "quantile": operator.Quantile,
}

func (p *sqlParser) parseFunc() (operator.FuncSpec, error) {
	name := strings.ToLower(p.next())
	f, ok := sqlFuncs[name]
	if !ok {
		return operator.FuncSpec{}, fmt.Errorf("unknown aggregation function %q", name)
	}
	spec := operator.FuncSpec{Func: f}
	if p.peek() != "(" {
		return spec, fmt.Errorf("%s needs (value)", name)
	}
	p.next()
	if err := p.expectKw("value"); err != nil {
		return spec, err
	}
	if f == operator.Quantile {
		if p.peek() != "," {
			return spec, fmt.Errorf("quantile needs (value, q)")
		}
		p.next()
		arg, err := strconv.ParseFloat(p.next(), 64)
		if err != nil {
			return spec, fmt.Errorf("bad quantile argument: %v", err)
		}
		spec.Arg = arg
	}
	if p.peek() != ")" {
		return spec, fmt.Errorf("missing ) after %s", name)
	}
	p.next()
	return spec, nil
}

func (p *sqlParser) parseWhere(q *Query) error {
	for {
		switch {
		case p.isKw("key"):
			p.next()
			if p.next() != "=" {
				return fmt.Errorf("key supports only =")
			}
			if p.peek() == "*" {
				p.next()
				q.AnyKey = true
				break
			}
			k, err := strconv.ParseUint(p.next(), 10, 32)
			if err != nil {
				return fmt.Errorf("bad key: %v", err)
			}
			q.Key = uint32(k)
		case p.isKw("value"):
			p.next()
			op := p.next()
			v, err := strconv.ParseFloat(p.next(), 64)
			if err != nil {
				return fmt.Errorf("bad value literal: %v", err)
			}
			switch op {
			case ">=":
				q.Pred.Min = v
			case ">":
				q.Pred.Min = nextAfter(v)
			case "<":
				q.Pred.Max = v
			case "<=":
				q.Pred.Max = nextAfter(v)
			case "=":
				q.Pred.Min, q.Pred.Max = v, nextAfter(v)
			default:
				return fmt.Errorf("unsupported value comparison %q", op)
			}
		default:
			return fmt.Errorf("unexpected WHERE term %q", p.peek())
		}
		if !p.isKw("AND") {
			return nil
		}
		p.next()
	}
}

func (p *sqlParser) parseWindow(q *Query) error {
	switch {
	case p.isKw("TUMBLING"):
		p.next()
		ext, m, err := p.parseExtentSQL()
		if err != nil {
			return err
		}
		q.Type, q.Measure, q.Length = Tumbling, m, ext
	case p.isKw("SLIDING"):
		p.next()
		length, m, err := p.parseExtentSQL()
		if err != nil {
			return err
		}
		if err := p.expectKw("SLIDE"); err != nil {
			return err
		}
		slide, m2, err := p.parseExtentSQL()
		if err != nil {
			return err
		}
		if m2 != m {
			return fmt.Errorf("SLIDE measure differs from window measure")
		}
		q.Type, q.Measure, q.Length, q.Slide = Sliding, m, length, slide
	case p.isKw("SESSION"):
		p.next()
		if err := p.expectKw("GAP"); err != nil {
			return err
		}
		gap, m, err := p.parseExtentSQL()
		if err != nil {
			return err
		}
		if m != Time {
			return fmt.Errorf("session gaps are time-based")
		}
		q.Type, q.Measure, q.Gap = Session, Time, gap
	case p.isKw("USERDEFINED"):
		p.next()
		q.Type, q.Measure = UserDefined, Time
	default:
		return fmt.Errorf("unknown window type %q", p.peek())
	}
	return nil
}

// parseExtentSQL reads "1s" / "500ms" / "2m" / "1000 EVENTS".
func (p *sqlParser) parseExtentSQL() (int64, Measure, error) {
	tok := p.next()
	if tok == "" {
		return 0, Time, fmt.Errorf("missing window extent")
	}
	// Bare number followed by EVENTS is a count extent.
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		if p.isKw("EVENTS") || p.isKw("EVENT") {
			p.next()
			return n, Count, nil
		}
		// A bare number is milliseconds.
		return n, Time, nil
	}
	v, m, err := parseExtent(tok)
	if err != nil {
		return 0, Time, fmt.Errorf("bad window extent %q: %v", tok, err)
	}
	return v, m, nil
}
