// Package metrics provides the measurement instruments of §6.1: throughput
// meters and coordinated-omission-free latency histograms.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Throughput measures events per second of wall time.
//
// Contract: the measurement interval opens at Start, or implicitly at the
// first Add on a zero-value meter. Start always restarts — it zeroes the
// event count, discarding anything recorded before it. EventsPerSecond on
// a meter that has never started (no Start, no Add) reports 0 rather than
// dividing by the decades since the zero time.Time.
type Throughput struct {
	start  time.Time
	events uint64
}

// Start begins (or restarts) the measurement, discarding prior counts.
func (t *Throughput) Start() { t.start = time.Now(); t.events = 0 }

// Add records n processed events, opening the interval if Start was never
// called so the events are not attributed to the zero time.
func (t *Throughput) Add(n int) {
	if t.start.IsZero() {
		t.start = time.Now()
	}
	t.events += uint64(n)
}

// EventsPerSecond reports the rate so far, or 0 before the measurement
// has started.
func (t *Throughput) EventsPerSecond() float64 {
	if t.start.IsZero() {
		return 0
	}
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.events) / el
}

// Events reports the processed-event count.
func (t *Throughput) Events() uint64 { return t.events }

// NumBuckets is the number of logarithmic buckets in a Histogram.
// Exported so sibling packages (internal/telemetry) can keep atomic
// shadow arrays bucket-compatible with Histogram and merge into it.
const NumBuckets = 512

// Histogram records durations in logarithmic buckets (HDR-style, ~4%
// resolution) so recording is allocation-free on the hot path.
type Histogram struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

// BucketIndex maps a duration to its logarithmic bucket index: 16
// sub-buckets per octave of nanoseconds, clamped to [0, NumBuckets).
func BucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	l := math.Log2(float64(d))
	i := int(l * 16)
	if i < 0 {
		i = 0
	}
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketValue returns the representative duration of a bucket.
func BucketValue(i int) time.Duration {
	return time.Duration(math.Exp2(float64(i) / 16))
}

// bucketOf and valueOf are the historical private names, kept so the
// recording path reads the same as before the index was exported.
func bucketOf(d time.Duration) int { return BucketIndex(d) }
func valueOf(i int) time.Duration  { return BucketValue(i) }

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the average sample.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max reports the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile reports the q-quantile with ~4% resolution. q must lie in
// (0, 1] — q=0 has no defined rank and q>1 (or NaN) is not a quantile;
// both used to be silently clamped, hiding caller bugs, and now panic.
// An empty histogram reports 0 for every valid q.
func (h *Histogram) Quantile(q float64) time.Duration {
	if !(q > 0 && q <= 1) { // negated to catch NaN too
		panic(fmt.Sprintf("metrics: Quantile(%v) outside (0, 1]", q))
	}
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return valueOf(i)
		}
	}
	return h.max
}

// String summarises the histogram. An empty histogram reads
// "n=0 mean=0s p50=0s p99=0s max=0s".
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// BucketCount is one non-empty bucket in a HistogramData export.
type BucketCount struct {
	Index int    `json:"i"`
	N     uint64 `json:"n"`
}

// HistogramData is the portable form of a Histogram: only the non-empty
// buckets, in ascending index order. Telemetry snapshots carry it across
// the cluster wire and merge it back through Histogram.Merge.
type HistogramData struct {
	Count   uint64        `json:"count"`
	Sum     time.Duration `json:"sum"`
	Max     time.Duration `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Export copies the histogram into its portable form.
func (h *Histogram) Export() HistogramData {
	d := HistogramData{Count: h.count, Sum: h.sum, Max: h.max}
	for i, c := range h.buckets {
		if c != 0 {
			d.Buckets = append(d.Buckets, BucketCount{Index: i, N: c})
		}
	}
	return d
}

// Import rebuilds a Histogram from its portable form. Buckets with
// out-of-range indices are dropped rather than corrupting neighbours.
func Import(d HistogramData) *Histogram {
	h := &Histogram{count: d.Count, sum: d.Sum, max: d.Max}
	for _, b := range d.Buckets {
		if b.Index >= 0 && b.Index < NumBuckets {
			h.buckets[b.Index] += b.N
		}
	}
	return h
}

// Merge folds o into d, delegating the bucket arithmetic to
// Histogram.Merge so the wire path and the in-process path cannot drift.
func (d HistogramData) Merge(o HistogramData) HistogramData {
	h := Import(d)
	h.Merge(Import(o))
	return h.Export()
}

// Summary renders the portable form like Histogram.String.
func (d HistogramData) Summary() string { return Import(d).String() }

// Samples is a simple exact-quantile recorder for low-volume measurements
// (e.g. per-window latencies in short runs).
type Samples struct {
	v []time.Duration
}

// Record adds one sample.
func (s *Samples) Record(d time.Duration) { s.v = append(s.v, d) }

// Quantile reports the exact q-quantile.
func (s *Samples) Quantile(q float64) time.Duration {
	if len(s.v) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.v...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Mean reports the average sample.
func (s *Samples) Mean() time.Duration {
	if len(s.v) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.v {
		sum += d
	}
	return sum / time.Duration(len(s.v))
}

// Count reports the number of samples.
func (s *Samples) Count() int { return len(s.v) }
