// Package metrics provides the measurement instruments of §6.1: throughput
// meters and coordinated-omission-free latency histograms.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Throughput measures events per second of wall time.
type Throughput struct {
	start  time.Time
	events uint64
}

// Start begins (or restarts) the measurement.
func (t *Throughput) Start() { t.start = time.Now(); t.events = 0 }

// Add records n processed events.
func (t *Throughput) Add(n int) { t.events += uint64(n) }

// EventsPerSecond reports the rate so far.
func (t *Throughput) EventsPerSecond() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.events) / el
}

// Events reports the processed-event count.
func (t *Throughput) Events() uint64 { return t.events }

// Histogram records durations in logarithmic buckets (HDR-style, ~4%
// resolution) so recording is allocation-free on the hot path.
type Histogram struct {
	buckets [512]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

// bucketOf maps a duration to a logarithmic bucket index.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	// 16 sub-buckets per octave of nanoseconds.
	l := math.Log2(float64(d))
	i := int(l * 16)
	if i < 0 {
		i = 0
	}
	if i >= len((&Histogram{}).buckets) {
		i = len((&Histogram{}).buckets) - 1
	}
	return i
}

// valueOf returns the representative duration of a bucket.
func valueOf(i int) time.Duration {
	return time.Duration(math.Exp2(float64(i) / 16))
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the average sample.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max reports the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile reports the q-quantile (0 < q <= 1) with ~4% resolution.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return valueOf(i)
		}
	}
	return h.max
}

// String summarises the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Samples is a simple exact-quantile recorder for low-volume measurements
// (e.g. per-window latencies in short runs).
type Samples struct {
	v []time.Duration
}

// Record adds one sample.
func (s *Samples) Record(d time.Duration) { s.v = append(s.v, d) }

// Quantile reports the exact q-quantile.
func (s *Samples) Quantile(q float64) time.Duration {
	if len(s.v) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.v...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Mean reports the average sample.
func (s *Samples) Mean() time.Duration {
	if len(s.v) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.v {
		sum += d
	}
	return sum / time.Duration(len(s.v))
}

// Count reports the number of samples.
func (s *Samples) Count() int { return len(s.v) }
