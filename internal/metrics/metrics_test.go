package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestThroughput(t *testing.T) {
	var tp Throughput
	tp.Start()
	tp.Add(500)
	tp.Add(500)
	if tp.Events() != 1000 {
		t.Fatalf("events = %d", tp.Events())
	}
	time.Sleep(10 * time.Millisecond)
	eps := tp.EventsPerSecond()
	if eps <= 0 || eps > 1000/0.01 {
		t.Errorf("events/s = %g out of plausible range", eps)
	}
}

// Regression: EventsPerSecond on a never-started meter used to divide by
// the decades elapsed since time.Time{} and silently report ≈0; Add before
// Start used to be wiped by Start's reset without the caller noticing.
func TestThroughputZeroValue(t *testing.T) {
	var tp Throughput
	if eps := tp.EventsPerSecond(); eps != 0 {
		t.Errorf("never-started meter: events/s = %g, want 0", eps)
	}

	// Add on a zero-value meter opens the interval implicitly.
	var implicit Throughput
	implicit.Add(100)
	time.Sleep(5 * time.Millisecond)
	if eps := implicit.EventsPerSecond(); eps <= 0 || eps > 100/0.005 {
		t.Errorf("implicitly-started meter: events/s = %g out of plausible range", eps)
	}
	if implicit.Events() != 100 {
		t.Errorf("events = %d", implicit.Events())
	}

	// Start after Add still restarts — that is its documented contract —
	// but the count reflects only post-Start events.
	implicit.Start()
	implicit.Add(7)
	if implicit.Events() != 7 {
		t.Errorf("after restart: events = %d, want 7", implicit.Events())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Log buckets have ~4% resolution; check within 10%.
	within := func(got, want time.Duration) bool {
		lo := want - want/10
		hi := want + want/10
		return got >= lo && got <= hi
	}
	if got := h.Quantile(0.5); !within(got, 500*time.Microsecond) {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Quantile(0.99); !within(got, 990*time.Microsecond) {
		t.Errorf("p99 = %v", got)
	}
	if h.Max() != time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	if m := h.Mean(); !within(m, 500500*time.Nanosecond) {
		t.Errorf("mean = %v", m)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 3*time.Millisecond {
		t.Errorf("merged: %v", a.String())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
	if s := h.String(); s != "n=0 mean=0s p50=0s p99=0s max=0s" {
		t.Errorf("empty String() = %q", s)
	}
}

// Regression: Quantile used to clamp q=0 to rank 1 and let q>1 walk off
// the buckets returning max, silently accepting caller bugs.
func TestHistogramQuantileDomain(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	for _, q := range []float64{0, -0.5, 1.0001, 2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			h.Quantile(q)
		}()
	}
	// The boundary q=1 is valid and reports the top sample's bucket.
	if got := h.Quantile(1); got == 0 {
		t.Error("Quantile(1) = 0 on non-empty histogram")
	}
}

func TestHistogramExportImport(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	d := h.Export()
	if d.Count != 100 || d.Max != 100*time.Microsecond || len(d.Buckets) == 0 {
		t.Fatalf("export: %+v", d)
	}
	for i := 1; i < len(d.Buckets); i++ {
		if d.Buckets[i].Index <= d.Buckets[i-1].Index {
			t.Fatal("export buckets not in ascending index order")
		}
	}
	back := Import(d)
	if back.Count() != h.Count() || back.Max() != h.Max() || back.Mean() != h.Mean() {
		t.Errorf("round trip: got %v, want %v", back, &h)
	}
	if back.Quantile(0.5) != h.Quantile(0.5) || back.Quantile(0.99) != h.Quantile(0.99) {
		t.Error("round trip changed quantiles")
	}

	// HistogramData.Merge must agree with Histogram.Merge.
	var other Histogram
	other.Record(5 * time.Second)
	merged := d.Merge(other.Export())
	h.Merge(&other)
	if merged.Count != h.Count() || merged.Max != h.Max() || merged.Summary() != h.String() {
		t.Errorf("data merge %q disagrees with histogram merge %q", merged.Summary(), h.String())
	}

	// Corrupt indices are dropped, not wrapped into valid buckets.
	hostile := HistogramData{Count: 1, Buckets: []BucketCount{{Index: -1, N: 9}, {Index: NumBuckets, N: 9}}}
	if got := Import(hostile); got.buckets[0] != 0 || got.buckets[NumBuckets-1] != 0 {
		t.Error("out-of-range bucket indices were not dropped")
	}
}

func TestBucketHelpers(t *testing.T) {
	if BucketIndex(-time.Second) != 0 || BucketIndex(0) != 0 {
		t.Error("non-positive durations must land in bucket 0")
	}
	if BucketIndex(time.Duration(math.MaxInt64)) != NumBuckets-1 {
		t.Error("huge duration must clamp to the top bucket")
	}
	for _, d := range []time.Duration{time.Nanosecond, time.Microsecond, time.Millisecond, time.Second} {
		i := BucketIndex(d)
		v := BucketValue(i)
		// The representative value must be within one sub-bucket (~4%).
		if v < d-d/10 || v > d+d/10 {
			t.Errorf("BucketValue(BucketIndex(%v)) = %v, not within 10%%", d, v)
		}
	}
	if !strings.Contains((&Histogram{}).String(), "n=0") {
		t.Error("String must render on zero value")
	}
}

func TestSamples(t *testing.T) {
	var s Samples
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		s.Record(d * time.Millisecond)
	}
	if s.Count() != 5 {
		t.Fatal("count")
	}
	if got := s.Quantile(0.5); got != 3*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Quantile(1); got != 5*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Mean(); got != 3*time.Millisecond {
		t.Errorf("mean = %v", got)
	}
}
