package metrics

import (
	"testing"
	"time"
)

func TestThroughput(t *testing.T) {
	var tp Throughput
	tp.Start()
	tp.Add(500)
	tp.Add(500)
	if tp.Events() != 1000 {
		t.Fatalf("events = %d", tp.Events())
	}
	time.Sleep(10 * time.Millisecond)
	eps := tp.EventsPerSecond()
	if eps <= 0 || eps > 1000/0.01 {
		t.Errorf("events/s = %g out of plausible range", eps)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Log buckets have ~4% resolution; check within 10%.
	within := func(got, want time.Duration) bool {
		lo := want - want/10
		hi := want + want/10
		return got >= lo && got <= hi
	}
	if got := h.Quantile(0.5); !within(got, 500*time.Microsecond) {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Quantile(0.99); !within(got, 990*time.Microsecond) {
		t.Errorf("p99 = %v", got)
	}
	if h.Max() != time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	if m := h.Mean(); !within(m, 500500*time.Nanosecond) {
		t.Errorf("mean = %v", m)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 3*time.Millisecond {
		t.Errorf("merged: %v", a.String())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
}

func TestSamples(t *testing.T) {
	var s Samples
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		s.Record(d * time.Millisecond)
	}
	if s.Count() != 5 {
		t.Fatal("count")
	}
	if got := s.Quantile(0.5); got != 3*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Quantile(1); got != 5*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Mean(); got != 3*time.Millisecond {
		t.Errorf("mean = %v", got)
	}
}
