// Package event defines the stream event model shared by every Desis
// component: the engine, the generators, the baselines, and the wire codec.
//
// An event mirrors the four-field record of the paper's data generator
// (§6.1.2): a timestamp, a key, a value, and a user-defined-window marker.
package event

import (
	"encoding/binary"
	"fmt"
)

// Marker values for the Marker field of an Event. A non-zero marker delimits
// user-defined windows: every marker event ends the currently open
// user-defined window and starts the next one (e.g. the end of a car trip in
// the paper's running example).
const (
	// MarkerNone tags an ordinary data event.
	MarkerNone uint8 = 0
	// MarkerBoundary tags a user-defined window boundary event.
	MarkerBoundary uint8 = 1
)

// Event is a single stream record. Times are in milliseconds of event time;
// the engine never inspects wall-clock time on the data path, which keeps
// replayed workloads deterministic.
type Event struct {
	// Time is the event timestamp in milliseconds.
	Time int64
	// Key identifies the logical sub-stream (sensor id, attribute, ...).
	// Queries select events by key; windows with different keys never share
	// a query-group.
	Key uint32
	// Marker is MarkerNone for data events and MarkerBoundary for
	// user-defined window boundaries.
	Marker uint8
	// Value is the measurement the aggregation functions consume.
	Value float64
}

// EncodedSize is the number of bytes Append writes per event.
const EncodedSize = 8 + 4 + 1 + 8

// Append appends the binary encoding of e to buf and returns the extended
// slice. The layout is little-endian: time int64, key uint32, marker uint8,
// value float64.
func (e Event) Append(buf []byte) []byte {
	var tmp [EncodedSize]byte
	binary.LittleEndian.PutUint64(tmp[0:8], uint64(e.Time))
	binary.LittleEndian.PutUint32(tmp[8:12], e.Key)
	tmp[12] = e.Marker
	binary.LittleEndian.PutUint64(tmp[13:21], mathFloat64bits(e.Value))
	return append(buf, tmp[:]...)
}

// Decode reads one event from buf, which must hold at least EncodedSize
// bytes. It returns the event and the remaining bytes.
func Decode(buf []byte) (Event, []byte, error) {
	if len(buf) < EncodedSize {
		return Event{}, buf, fmt.Errorf("event: short buffer: %d bytes, need %d", len(buf), EncodedSize)
	}
	e := Event{
		Time:   int64(binary.LittleEndian.Uint64(buf[0:8])),
		Key:    binary.LittleEndian.Uint32(buf[8:12]),
		Marker: buf[12],
		Value:  mathFloat64frombits(binary.LittleEndian.Uint64(buf[13:21])),
	}
	return e, buf[EncodedSize:], nil
}

// AppendBatch appends a length-prefixed batch of events to buf.
func AppendBatch(buf []byte, events []Event) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(events)))
	buf = append(buf, tmp[:]...)
	for _, e := range events {
		buf = e.Append(buf)
	}
	return buf
}

// DecodeBatch decodes a batch written by AppendBatch, appending events to dst
// (which may be nil) to let callers reuse buffers.
func DecodeBatch(buf []byte, dst []Event) ([]Event, []byte, error) {
	if len(buf) < 4 {
		return dst, buf, fmt.Errorf("event: short batch header: %d bytes", len(buf))
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	buf = buf[4:]
	if uint64(len(buf)) < uint64(n)*EncodedSize {
		return dst, buf, fmt.Errorf("event: short batch body: %d events declared, %d bytes left", n, len(buf))
	}
	for i := uint32(0); i < n; i++ {
		var e Event
		var err error
		e, buf, err = Decode(buf)
		if err != nil {
			return dst, buf, err
		}
		dst = append(dst, e)
	}
	return dst, buf, nil
}

// String renders the event for logs and test failures.
func (e Event) String() string {
	if e.Marker != MarkerNone {
		return fmt.Sprintf("event(t=%d key=%d marker=%d v=%g)", e.Time, e.Key, e.Marker, e.Value)
	}
	return fmt.Sprintf("event(t=%d key=%d v=%g)", e.Time, e.Key, e.Value)
}
