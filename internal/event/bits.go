package event

import "math"

// Thin wrappers so the codec reads as one vocabulary; they also give the
// tests a single seam to cross-check float round-tripping.

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
