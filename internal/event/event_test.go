package event

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Event{
		{},
		{Time: 1, Key: 2, Marker: MarkerNone, Value: 3.5},
		{Time: -1, Key: math.MaxUint32, Marker: MarkerBoundary, Value: -0.0},
		{Time: math.MaxInt64, Key: 0, Marker: 200, Value: math.Inf(1)},
		{Time: math.MinInt64, Key: 7, Marker: 1, Value: math.SmallestNonzeroFloat64},
	}
	for _, want := range cases {
		buf := want.Append(nil)
		if len(buf) != EncodedSize {
			t.Fatalf("Append wrote %d bytes, want %d", len(buf), EncodedSize)
		}
		got, rest, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", want, err)
		}
		if len(rest) != 0 {
			t.Fatalf("Decode left %d bytes", len(rest))
		}
		if got != want {
			t.Errorf("round trip: got %v, want %v", got, want)
		}
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	e := Event{Time: 10, Key: 1, Value: 2}
	buf := e.Append(nil)
	for i := 0; i < EncodedSize; i++ {
		if _, _, err := Decode(buf[:i]); err == nil {
			t.Errorf("Decode of %d bytes succeeded, want error", i)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	events := []Event{
		{Time: 1, Key: 1, Value: 1},
		{Time: 2, Key: 2, Value: 2, Marker: MarkerBoundary},
		{Time: 3, Key: 3, Value: -3},
	}
	buf := AppendBatch(nil, events)
	got, rest, err := DecodeBatch(buf, nil)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("DecodeBatch left %d bytes", len(rest))
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %v, want %v", i, got[i], events[i])
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	buf := AppendBatch(nil, nil)
	got, rest, err := DecodeBatch(buf, nil)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != 0 || len(rest) != 0 {
		t.Fatalf("empty batch: got %d events, %d rest bytes", len(got), len(rest))
	}
}

func TestBatchAppendsToDst(t *testing.T) {
	pre := []Event{{Time: 99}}
	buf := AppendBatch(nil, []Event{{Time: 1}})
	got, _, err := DecodeBatch(buf, pre)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != 2 || got[0].Time != 99 || got[1].Time != 1 {
		t.Fatalf("DecodeBatch did not append to dst: %v", got)
	}
}

func TestBatchShortBody(t *testing.T) {
	buf := AppendBatch(nil, []Event{{Time: 1}, {Time: 2}})
	if _, _, err := DecodeBatch(buf[:len(buf)-1], nil); err == nil {
		t.Error("DecodeBatch of truncated body succeeded, want error")
	}
	if _, _, err := DecodeBatch(buf[:3], nil); err == nil {
		t.Error("DecodeBatch of truncated header succeeded, want error")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(tm int64, key uint32, marker uint8, value float64) bool {
		want := Event{Time: tm, Key: key, Marker: marker, Value: value}
		got, rest, err := Decode(want.Append(nil))
		if err != nil || len(rest) != 0 {
			return false
		}
		// NaN never compares equal; compare bit patterns instead.
		if math.IsNaN(value) {
			return got.Time == want.Time && got.Key == want.Key && got.Marker == want.Marker &&
				math.Float64bits(got.Value) == math.Float64bits(want.Value)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if s := (Event{Time: 1, Key: 2, Value: 3}).String(); s != "event(t=1 key=2 v=3)" {
		t.Errorf("String() = %q", s)
	}
	if s := (Event{Time: 1, Key: 2, Value: 3, Marker: 1}).String(); s != "event(t=1 key=2 marker=1 v=3)" {
		t.Errorf("marker String() = %q", s)
	}
}
