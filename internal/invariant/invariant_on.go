//go:build desis_invariants

package invariant

import (
	"fmt"
	"sync"
)

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// Assertf panics when cond is false, with a formatted description of the
// violated contract.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("desis invariant violated: " + fmt.Sprintf(format, args...))
	}
}

// The poison registry tracks recycled pooled objects by identity. A poisoned
// object is recycled storage: recycling it again or using it before the pool
// re-issues it is an ownership bug.
var (
	mu       sync.Mutex
	poisoned = map[any]uint64{}
)

// PoisonPartial marks p as recycled under slice id, panicking on a double
// recycle.
func PoisonPartial(p any, id uint64) {
	mu.Lock()
	prev, dup := poisoned[p]
	if !dup {
		poisoned[p] = id
	}
	mu.Unlock()
	if dup {
		panic(fmt.Sprintf("desis invariant violated: double recycle of SlicePartial (slice id %d; first recycled as slice id %d)", id, prev))
	}
}

// UnpoisonPartial clears the recycled mark when the pool re-issues p.
func UnpoisonPartial(p any) {
	mu.Lock()
	delete(poisoned, p)
	mu.Unlock()
}

// AssertPartialLive panics when p was recycled and not re-issued since —
// the caller is reading pool-owned storage.
func AssertPartialLive(p any) {
	mu.Lock()
	id, dead := poisoned[p]
	mu.Unlock()
	if dead {
		panic(fmt.Sprintf("desis invariant violated: use of recycled SlicePartial (slice id %d)", id))
	}
}
