//go:build !desis_invariants

package invariant

import "testing"

// Without the desis_invariants tag every entry point is a free no-op: the
// guards compile to nothing and the poison registry does not exist.
func TestDisabledStubs(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the desis_invariants build tag")
	}
	Assertf(false, "must not panic when disabled")
	p := new(int)
	PoisonPartial(p, 1)
	PoisonPartial(p, 2) // double recycle: ignored when disabled
	AssertPartialLive(p)
	UnpoisonPartial(p)
}
