// Package invariant provides runtime assertions over the engine's internal
// contracts — slice-ring monotonicity, flip-point/prefix consistency of the
// assembly index, and pool lifecycle (poisoning recycled partials so double
// recycles and use-after-recycle panic with the offending slice id).
//
// The checks compile in only under the `desis_invariants` build tag:
//
//	go test -race -tags desis_invariants ./...
//	go build -tags desis_invariants ./...
//
// In the default build every function in this package is an empty stub and
// Enabled is a false constant, so call sites guarded with
//
//	if invariant.Enabled {
//		invariant.Assertf(...)
//	}
//
// are dead code the compiler removes entirely: the release hot path pays
// nothing.
//
// The poison registry is a debug aid, not a production facility: it holds a
// reference to every recycled object it tracks (unbounded over a process
// lifetime), which is acceptable in tests and diagnosis runs only.
package invariant
