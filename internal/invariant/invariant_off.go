//go:build !desis_invariants

package invariant

// Enabled reports whether invariant checking is compiled in.
const Enabled = false

// Assertf is a no-op in release builds; guard argument evaluation with
// `if invariant.Enabled` at the call site.
func Assertf(bool, string, ...any) {}

// PoisonPartial is a no-op in release builds.
func PoisonPartial(any, uint64) {}

// UnpoisonPartial is a no-op in release builds.
func UnpoisonPartial(any) {}

// AssertPartialLive is a no-op in release builds.
func AssertPartialLive(any) {}
