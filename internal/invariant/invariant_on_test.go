//go:build desis_invariants

package invariant

import (
	"fmt"
	"strings"
	"testing"
)

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one containing %q)", substr)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	f()
}

func TestAssertf(t *testing.T) {
	Assertf(true, "should not fire")
	mustPanic(t, "desis invariant violated: ring broken at 7", func() {
		Assertf(false, "ring broken at %d", 7)
	})
}

func TestPoisonLifecycle(t *testing.T) {
	p := new(int)
	PoisonPartial(p, 41)
	mustPanic(t, "use of recycled SlicePartial (slice id 41)", func() {
		AssertPartialLive(p)
	})
	mustPanic(t, "double recycle of SlicePartial (slice id 42; first recycled as slice id 41)", func() {
		PoisonPartial(p, 42)
	})
	UnpoisonPartial(p)
	AssertPartialLive(p) // re-issued: live again
	PoisonPartial(p, 43) // and recyclable again
	UnpoisonPartial(p)
}
