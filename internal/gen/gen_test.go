package gen

import (
	"testing"

	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/query"
)

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(StreamConfig{Seed: 7, Keys: 4}).Events(500)
	b := NewStream(StreamConfig{Seed: 7, Keys: 4}).Events(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := NewStream(StreamConfig{Seed: 8, Keys: 4}).Events(500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamOrderedAndBounded(t *testing.T) {
	s := NewStream(StreamConfig{Seed: 1, Keys: 10, IntervalMS: 3})
	prev := int64(-1)
	for i := 0; i < 2000; i++ {
		ev := s.Next()
		if ev.Time < prev {
			t.Fatalf("event %d out of order: %d < %d", i, ev.Time, prev)
		}
		prev = ev.Time
		if ev.Key >= 10 {
			t.Fatalf("key %d out of range", ev.Key)
		}
		if ev.Marker == event.MarkerNone && (ev.Value < 0 || ev.Value >= 121) {
			t.Fatalf("value %g out of sensor range", ev.Value)
		}
	}
	if s.Now() != prev {
		t.Errorf("Now() = %d, want %d", s.Now(), prev)
	}
}

func TestStreamMarkersAndGaps(t *testing.T) {
	s := NewStream(StreamConfig{Seed: 2, MarkerEvery: 50, GapEvery: 100, GapMS: 5000, IntervalMS: 1})
	markers := 0
	var maxJump int64
	prev := int64(0)
	for i := 0; i < 1000; i++ {
		ev := s.Next()
		if ev.Marker != event.MarkerNone {
			markers++
		}
		if ev.Time-prev > maxJump {
			maxJump = ev.Time - prev
		}
		prev = ev.Time
	}
	if markers != 20 {
		t.Errorf("markers = %d, want 20", markers)
	}
	if maxJump < 5000 {
		t.Errorf("max gap %d, want >= 5000", maxJump)
	}
}

func TestQueriesValidAndDeterministic(t *testing.T) {
	cfg := QueryConfig{
		Seed: 5, Keys: 8, AllowCount: true,
		Types: []query.WindowType{query.Tumbling, query.Sliding, query.Session, query.UserDefined},
		Funcs: []operator.Func{operator.Sum, operator.Average, operator.Median, operator.Quantile},
	}
	a := Queries(200, cfg)
	b := Queries(200, cfg)
	for i := range a {
		if err := a[i].Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if a[i].String() != b[i].String() {
			t.Fatalf("query %d not deterministic", i)
		}
	}
	if _, err := query.Analyze(a, query.Options{Decentralized: true}); err != nil {
		t.Fatalf("generated mix does not analyze: %v", err)
	}
}

func TestTumblingSweep(t *testing.T) {
	qs := TumblingSweep(10, 1000, 10000, operator.Average)
	if len(qs) != 10 {
		t.Fatal("wrong count")
	}
	if qs[0].Length != 1000 || qs[9].Length != 10000 {
		t.Errorf("length range [%d, %d]", qs[0].Length, qs[9].Length)
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	one := TumblingSweep(1, 1000, 10000, operator.Sum)
	if one[0].Length != 1000 {
		t.Errorf("single sweep length %d", one[0].Length)
	}
}
