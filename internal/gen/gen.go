// Package gen provides the workload generators of §6.1.2: a deterministic
// synthetic replica of the DEBS 2013 grand-challenge sensor stream (player
// position/velocity sensors) and a query generator that draws arbitrary
// query mixes from configurable distributions. Both are seeded and
// reproducible; replaying from different seeds/offsets simulates the
// distinct data streams of a decentralized network.
package gen

import (
	"math/rand"

	"desis/internal/event"
)

// StreamConfig shapes a synthetic stream.
type StreamConfig struct {
	// Seed makes the stream deterministic; streams with different seeds
	// simulate different decentralized sources reading from different
	// positions of the dataset.
	Seed int64
	// Keys is the number of distinct event keys (sensor ids); keys are
	// uniform. Default 1.
	Keys int
	// StartTime is the first event's timestamp in milliseconds.
	StartTime int64
	// IntervalMS is the mean spacing between consecutive events in
	// milliseconds; 0 means 1ms. Spacing jitters ±50%.
	IntervalMS int64
	// MarkerEvery inserts a user-defined window boundary roughly every
	// this many events (0 disables markers) — "the frequency of
	// user-defined events" knob of the paper's generator.
	MarkerEvery int
	// GapEvery inserts a silent gap (for session windows) roughly every
	// this many events (0 disables); GapMS is its length.
	GapEvery int
	GapMS    int64
}

// Stream generates an unbounded, time-ordered synthetic event stream whose
// values follow the DEBS 2013 sensor profile: velocities in a skewed
// positive range with bursts, which gives min/max/quantiles realistic
// spread.
type Stream struct {
	cfg StreamConfig
	rng *rand.Rand
	now int64
	n   int
	v   float64 // current velocity (random walk)
}

// NewStream builds a generator.
func NewStream(cfg StreamConfig) *Stream {
	if cfg.Keys <= 0 {
		cfg.Keys = 1
	}
	if cfg.IntervalMS <= 0 {
		cfg.IntervalMS = 1
	}
	return &Stream{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		now: cfg.StartTime,
		v:   40,
	}
}

// Next returns the next event.
func (s *Stream) Next() event.Event {
	s.n++
	// Velocity random walk within [0, 120) km/h with occasional sprints,
	// mimicking the DEBS player sensors.
	s.v += s.rng.NormFloat64() * 3
	if s.rng.Intn(500) == 0 {
		s.v += 30
	}
	if s.v < 0 {
		s.v = -s.v
	}
	if s.v >= 120 {
		s.v = 240 - s.v
	}
	// Spacing in [1, 2*interval]: mean ≈ interval, and never zero so
	// timestamps are strictly increasing.
	s.now += 1 + s.rng.Int63n(2*s.cfg.IntervalMS)
	if s.cfg.GapEvery > 0 && s.n%s.cfg.GapEvery == 0 {
		s.now += s.cfg.GapMS
	}
	ev := event.Event{
		Time:  s.now,
		Key:   uint32(s.rng.Intn(s.cfg.Keys)),
		Value: s.v,
	}
	if s.cfg.MarkerEvery > 0 && s.n%s.cfg.MarkerEvery == 0 {
		ev.Marker = event.MarkerBoundary
		ev.Value = 0
	}
	return ev
}

// NextBatch appends n events to dst and returns it.
func (s *Stream) NextBatch(dst []event.Event, n int) []event.Event {
	for i := 0; i < n; i++ {
		dst = append(dst, s.Next())
	}
	return dst
}

// Events materialises n events.
func (s *Stream) Events(n int) []event.Event {
	return s.NextBatch(make([]event.Event, 0, n), n)
}

// Now reports the timestamp of the last generated event.
func (s *Stream) Now() int64 { return s.now }
