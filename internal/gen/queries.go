package gen

import (
	"math/rand"

	"desis/internal/operator"
	"desis/internal/query"
)

// QueryConfig shapes the random query mix of §6.5.1 ("query generators
// randomly produce queries with different keys, window types, window
// measures, decomposable functions, and window lengths").
type QueryConfig struct {
	// Seed makes the mix deterministic.
	Seed int64
	// Keys draws each query's key uniformly from [0, Keys). Default 1.
	Keys int
	// Types is the window-type palette to draw from; empty means tumbling
	// and sliding.
	Types []query.WindowType
	// Funcs is the aggregation-function palette; empty means the
	// decomposable set (sum, count, average, min, max).
	Funcs []operator.Func
	// AllowCount permits count-based measures (drawn 25% of the time).
	AllowCount bool
	// MinLenMS and MaxLenMS bound time window lengths (defaults 1000 and
	// 10000 — the paper's 1–10 s).
	MinLenMS, MaxLenMS int64
	// SessionGapMS is the session gap when Session is drawn (default
	// 500ms).
	SessionGapMS int64
	// CountLen is the count-window length when a count measure is drawn
	// (default 1000 events).
	CountLen int64
}

// Queries draws n random valid queries with ids 1..n.
func Queries(n int, cfg QueryConfig) []query.Query {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Keys <= 0 {
		cfg.Keys = 1
	}
	if len(cfg.Types) == 0 {
		cfg.Types = []query.WindowType{query.Tumbling, query.Sliding}
	}
	if len(cfg.Funcs) == 0 {
		cfg.Funcs = []operator.Func{
			operator.Sum, operator.Count, operator.Average, operator.Min, operator.Max,
		}
	}
	if cfg.MinLenMS <= 0 {
		cfg.MinLenMS = 1000
	}
	if cfg.MaxLenMS < cfg.MinLenMS {
		cfg.MaxLenMS = cfg.MinLenMS * 10
	}
	if cfg.SessionGapMS <= 0 {
		cfg.SessionGapMS = 500
	}
	if cfg.CountLen <= 0 {
		cfg.CountLen = 1000
	}
	out := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		q := query.Query{
			ID:   uint64(i + 1),
			Key:  uint32(rng.Intn(cfg.Keys)),
			Pred: query.All(),
		}
		f := cfg.Funcs[rng.Intn(len(cfg.Funcs))]
		spec := operator.FuncSpec{Func: f}
		if f == operator.Quantile {
			spec.Arg = float64(1+rng.Intn(999)) / 1000
		}
		q.Funcs = []operator.FuncSpec{spec}
		q.Type = cfg.Types[rng.Intn(len(cfg.Types))]
		span := cfg.MaxLenMS - cfg.MinLenMS + 1
		switch q.Type {
		case query.Tumbling:
			q.Length = cfg.MinLenMS + rng.Int63n(span)
			if cfg.AllowCount && rng.Intn(4) == 0 {
				q.Measure = query.Count
				q.Length = cfg.CountLen
			}
		case query.Sliding:
			q.Length = cfg.MinLenMS + rng.Int63n(span)
			q.Slide = 1 + rng.Int63n(q.Length)
			if cfg.AllowCount && rng.Intn(4) == 0 {
				q.Measure = query.Count
				q.Length = cfg.CountLen
				q.Slide = 1 + rng.Int63n(q.Length)
			}
		case query.Session:
			q.Gap = cfg.SessionGapMS
		case query.UserDefined:
		}
		out = append(out, q)
	}
	return out
}

// TumblingSweep builds n tumbling queries with lengths equally distributed
// between minMS and maxMS on a minMS grid — the concurrent-window workload
// of §6.2.1 and §6.3.1 ("equally distributed lengths from 1 to 10 seconds").
// The grid keeps window boundaries aligned, which is why the slice count
// stays constant no matter how many concurrent windows run (Figure 8b).
func TumblingSweep(n int, minMS, maxMS int64, f operator.Func) []query.Query {
	steps := maxMS / minMS
	if steps < 1 {
		steps = 1
	}
	out := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		length := minMS * (1 + int64(i)%steps)
		out = append(out, query.Query{
			ID:     uint64(i + 1),
			Pred:   query.All(),
			Type:   query.Tumbling,
			Length: length,
			Funcs:  []operator.FuncSpec{{Func: f}},
		})
	}
	return out
}
