package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
)

// This file implements cmd/go's vet-tool protocol, so desis-lint can run as
// `go vet -vettool=$(which desis-lint) ./...`. The protocol (mirrored from
// golang.org/x/tools/go/analysis/unitchecker, reimplemented on the standard
// library):
//
//   - `tool -V=full` prints an identity line cmd/go hashes into its build
//     cache key;
//   - `tool -flags` prints a JSON description of the tool's flags (none);
//   - `tool <file>.cfg` analyzes one package: the config names the source
//     files and maps every import to its compiled export data, the tool
//     type-checks, runs its analyzers, writes the (empty — desis-lint
//     exchanges no facts) .vetx output, and prints findings to stderr,
//     exiting 2 when there are any.
//
// Dependency packages are analyzed with VetxOnly set; they produce facts
// only, so no diagnostics are printed for them.

// vetConfig is the package description cmd/go writes for the vet tool.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// UnitcheckerMain handles one vet-tool invocation (os.Args already
// identified as the protocol: -V=full, -flags, or a .cfg file) and exits.
func UnitcheckerMain(arg string, analyzers []*Analyzer) {
	switch arg {
	case "-V=full":
		printVersion()
		os.Exit(0)
	case "-flags":
		fmt.Println("[]")
		os.Exit(0)
	}
	if err := unitcheck(arg, analyzers); err != nil {
		fmt.Fprintf(os.Stderr, "desis-lint: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// printVersion replicates the minimal subset of cmd/go's "-V=full" protocol:
// the tool's path, the word "version", and a build ID derived from the
// binary's contents, so cmd/go can cache vet results keyed on the tool.
func printVersion() {
	progname := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

func unitcheck(cfgFile string, analyzers []*Analyzer) error {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	// Facts output first: cmd/go requires the file to exist even when the
	// analysis finds nothing (desis-lint's analyzers exchange no facts).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return err
		}
	}
	fset := token.NewFileSet()
	x := &ExportIndex{exports: cfg.PackageFile, importMap: cfg.ImportMap}
	pkg, err := CheckPackage(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, x)
	if err != nil {
		if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
			// Dependency-only runs must not fail the build on packages the
			// toolchain compiles through other pipelines (cgo, assembly
			// references); the named packages are checked strictly.
			return nil
		}
		return err
	}
	diags, err := RunAnalyzers(fset, []*Package{pkg}, analyzers)
	if err != nil {
		return err
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return nil
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	os.Exit(2)
	return nil
}
