package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Comment directives understood by the framework and its analyzers:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//	    Suppresses the named analyzers' diagnostics on the marker's own
//	    line and on the line directly below it (so the marker can trail
//	    the offending expression or sit on its own line above it). The
//	    reason is mandatory: a suppression without a written-down
//	    justification is itself reported.
//
//	//desis:hotpath
//	    Marks a function as part of the zero-allocation contract checked
//	    by the hotalloc analyzer.
//
//	//desis:wirekind
//	    Marks a function as a Kind classifier that must handle every
//	    constant of the switched enum type (wirekind analyzer); the
//	    shipping codec entry points are additionally pinned by wirekind's
//	    built-in rules table.

// suppression records one //lint:ignore marker.
type suppression struct {
	analyzers []string
	line      int
}

// SuppressionIndex maps filenames to their //lint:ignore markers.
type SuppressionIndex map[string][]suppression

// CollectSuppressions scans the comments of files for //lint:ignore
// markers, merging them into idx (pass nil to start one). Malformed
// markers (missing analyzer list or missing reason) go to report, when
// non-nil, so they cannot silently suppress nothing.
func CollectSuppressions(fset *token.FileSet, files []*ast.File, idx SuppressionIndex, report func(Diagnostic)) SuppressionIndex {
	if idx == nil {
		idx = SuppressionIndex{}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					if report != nil {
						report(Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "lint",
							Message:  "malformed //lint:ignore: need an analyzer list and a reason",
						})
					}
					continue
				}
				idx[pos.Filename] = append(idx[pos.Filename], suppression{
					analyzers: strings.Split(fields[0], ","),
					line:      pos.Line,
				})
			}
		}
	}
	return idx
}

// Covers reports whether an //lint:ignore marker for analyzer sits on
// pos's line or the line above.
func (idx SuppressionIndex) Covers(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, s := range idx[p.Filename] {
		if p.Line != s.line && p.Line != s.line+1 {
			continue
		}
		for _, a := range s.analyzers {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}

// HasDirective reports whether doc contains the comment directive name (for
// example "//desis:hotpath") on a line of its own.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == name || strings.HasPrefix(text, name+" ") {
			return true
		}
	}
	return false
}
