package noretain_test

import (
	"testing"

	"desis/internal/lint/linttest"
	"desis/internal/lint/noretain"
)

func TestNoRetain(t *testing.T) {
	linttest.Run(t, noretain.Analyzer, "a")
}
