// Package noretain enforces the engine's pooling and wire contracts:
//
//  1. Caller side — a value released to a pool must not be used again.
//     Releasing calls are Engine.RecyclePartial, the groupState pool
//     helpers, and sync.Pool.Put: after the call, the argument (and any
//     local alias of it) is recycled storage, so every later read, store,
//     or re-release in the function is flagged. Reassigning the variable
//     kills the tracking; a release followed by return/break/continue does
//     not taint statements after the enclosing block; uses in sibling
//     branches of the same if/switch are not "after" the release.
//
//  2. Truncation side — the in-place filter idiom
//     (`kept := s[:0]; … kept = append(kept, v) …; owner = kept`) publishes
//     a shortened slice whose backing array still holds every dropped
//     element between len and the old length. When the elements carry
//     references (pointers, slices, strings, …) that dead tail pins them
//     for as long as the shortened slice lives, so the function must
//     clear() the tail before publishing. Handing the slice to another
//     function instead of publishing it (a scratch stash that clears on
//     behalf of the caller) is out of scope.
//
//  3. Implementation side — message.Conn.Send implementations must not
//     retain the message or anything it references after returning (the
//     documented Conn contract: callers recycle the payload buffers as soon
//     as Send returns). Inside any `Send(*message.Message) error` method the
//     analyzer flags message-rooted references escaping to fields, globals,
//     indexed locations, channels, or goroutines.
//
// The analysis is intentionally conservative in what it tracks (single
// function, syntactic aliasing) and precise in what it reports: every
// diagnostic is a contract violation under the engine's ownership rules.
package noretain

import (
	"go/ast"
	"go/token"
	"go/types"

	"desis/internal/lint"
)

// Analyzer is the noretain pass.
var Analyzer = &lint.Analyzer{
	Name: "noretain",
	Doc:  "flag uses of pooled values after release, uncleared in-place filter tails, and retention inside Conn.Send implementations",
	Run:  run,
}

// releaseFuncs maps the full name of each releasing function to a short
// label used in diagnostics. The argument at index 0 is the released value.
var releaseFuncs = map[string]string{
	"(*desis/internal/core.Engine).RecyclePartial":     "Engine.RecyclePartial",
	"(*desis/internal/core.groupState).recyclePartial": "recyclePartial",
	"(*desis/internal/core.groupState).recycleAggs":    "recycleAggs",
	"(*sync.Pool).Put": "sync.Pool.Put",
}

// messageType is the parameter type identifying a Conn.Send implementation.
const messageType = "desis/internal/message.Message"

func run(pass *lint.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkReleases(pass, fd)
			checkFilterTruncations(pass, fd)
			if isConnSend(pass.TypesInfo, fd) {
				checkSendImpl(pass, fd)
			}
		}
	}
	return nil, nil
}

// --- caller side: use after release ---------------------------------------

func checkReleases(pass *lint.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		label, ok := releaseFuncs[lint.CalleeFullName(pass.TypesInfo, call)]
		if !ok {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[arg]
		if obj == nil {
			return true
		}
		reportUsesAfter(pass, fd, call, obj, label)
		return true
	})
}

// reportUsesAfter flags reads of obj (or aliases of it) that execute after
// the releasing call.
func reportUsesAfter(pass *lint.Pass, fd *ast.FuncDecl, call *ast.CallExpr, obj types.Object, label string) {
	objs := map[types.Object]bool{obj: true}
	// One level of local aliasing: `q := p` anywhere in the function makes q
	// recycled storage too once p is released.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			rid, ok := ast.Unparen(rhs).(*ast.Ident)
			if !ok || !objs[pass.TypesInfo.Uses[rid]] {
				continue
			}
			if lid, ok := as.Lhs[i].(*ast.Ident); ok {
				if o := pass.TypesInfo.Defs[lid]; o != nil {
					objs[o] = true
				} else if o := pass.TypesInfo.Uses[lid]; o != nil {
					objs[o] = true
				}
			}
		}
		return true
	})
	// killedAt[o] is the position of the first reassignment of o after the
	// release; uses beyond it refer to a fresh value.
	killedAt := map[types.Object]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			o := pass.TypesInfo.Uses[lid]
			if o == nil {
				o = pass.TypesInfo.Defs[lid]
			}
			if o != nil && objs[o] && as.Pos() > call.End() {
				if k, ok := killedAt[o]; !ok || as.Pos() < k {
					killedAt[o] = as.Pos()
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o := pass.TypesInfo.Uses[id]
		if o == nil || !objs[o] || id.Pos() <= call.End() {
			return true
		}
		if k, ok := killedAt[o]; ok && id.Pos() >= k {
			return true
		}
		if isAssignLHS(fd.Body, id) {
			return true
		}
		if !sequentialAfter(fd.Body, call, id) {
			return true
		}
		pass.Reportf(id.Pos(), "%s is read after being released by %s; released values return to the engine's pools and must not be retained or re-read", id.Name, label)
		return true
	})
}

// isAssignLHS reports whether id appears as a plain assignment target
// (which overwrites rather than reads the variable).
func isAssignLHS(root ast.Node, id *ast.Ident) bool {
	path := pathTo(root, id.Pos(), id.End())
	for i := len(path) - 1; i >= 0; i-- {
		if as, ok := path[i].(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if lhs == id {
					return true
				}
			}
			return false
		}
	}
	return false
}

// sequentialAfter reports whether use can execute after call in sequential
// control flow: it must be positioned later, not sit in a sibling branch of
// the same if/switch/select, and not be cut off by a terminating statement
// (return/break/continue/goto) closing the call's innermost block.
func sequentialAfter(root ast.Node, call *ast.CallExpr, use ast.Node) bool {
	if use.Pos() <= call.End() {
		return false
	}
	pathC := pathTo(root, call.Pos(), call.End())
	pathU := pathTo(root, use.Pos(), use.End())
	// Deepest common ancestor.
	var lca ast.Node
	for i := 0; i < len(pathC) && i < len(pathU) && pathC[i] == pathU[i]; i++ {
		lca = pathC[i]
	}
	switch lca.(type) {
	case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return false // sibling branches are alternatives, not successors
	}
	// If the call's innermost block exits (return/branch) after the call,
	// statements outside that block never see the released value.
	var stmts []ast.Stmt
	var inner ast.Node
	for i := len(pathC) - 1; i >= 0; i-- {
		switch b := pathC[i].(type) {
		case *ast.BlockStmt:
			stmts, inner = b.List, b
		case *ast.CaseClause:
			stmts, inner = b.Body, b
		case *ast.CommClause:
			stmts, inner = b.Body, b
		}
		if inner != nil {
			break
		}
	}
	if inner == nil {
		return true
	}
	useInside := use.Pos() >= inner.Pos() && use.End() <= inner.End()
	for _, s := range stmts {
		if s.Pos() <= call.End() {
			continue
		}
		if useInside && s.Pos() >= use.End() {
			break
		}
		switch s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			if !useInside {
				return false
			}
		}
	}
	return true
}

// pathTo returns the chain of nodes from root down to the innermost node
// covering [pos, end).
func pathTo(root ast.Node, pos, end token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && end <= n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}

// --- truncation side: in-place filter dead tails ---------------------------

// checkFilterTruncations flags the completed filter idiom — define
// `kept := base[:0]`, grow with `kept = append(kept, …)`, publish with
// `owner = kept` — when base's element type carries references and no
// clear() rooted at base (or kept) appears in the function. The dropped
// elements between len(kept) and the old length stay reachable through the
// published slice's backing array until they are overwritten, which for a
// shrinking collection is never.
func checkFilterTruncations(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	type trunc struct {
		pos     token.Pos
		obj     types.Object // the kept variable
		name    string
		base    string // types.ExprString of the truncated slice
		grown   bool   // kept = append(kept, …) seen
		postCap bool   // slicing also reset cap ([:0:0]): old tail unreachable
	}
	var truncs []*trunc
	cleared := map[string]bool{} // ExprString of every clear()ed slice root
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if sl, ok := ast.Unparen(n.Rhs[0]).(*ast.SliceExpr); ok && sl.Low == nil && isZeroLit(sl.High) {
					id, ok := n.Lhs[0].(*ast.Ident)
					if !ok {
						return true
					}
					obj := info.Defs[id]
					st, ok := types.Unalias(info.Types[sl.X].Type).Underlying().(*types.Slice)
					if obj == nil || !ok || !holdsRefs(st.Elem()) {
						return true
					}
					truncs = append(truncs, &trunc{
						pos:     n.Pos(),
						obj:     obj,
						name:    id.Name,
						base:    types.ExprString(sl.X),
						postCap: sl.Max != nil,
					})
					return true
				}
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					continue
				}
				if b, ok := info.Uses[fid].(*types.Builtin); !ok || b.Name() != "append" {
					continue
				}
				dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					continue
				}
				for _, t := range truncs {
					if info.Uses[dst] == t.obj {
						t.grown = true
					}
				}
			}
		case *ast.CallExpr:
			fid, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || len(n.Args) != 1 {
				return true
			}
			if b, ok := info.Uses[fid].(*types.Builtin); !ok || b.Name() != "clear" {
				return true
			}
			arg := ast.Unparen(n.Args[0])
			if sl, ok := arg.(*ast.SliceExpr); ok {
				arg = ast.Unparen(sl.X)
			}
			cleared[types.ExprString(arg)] = true
		}
		return true
	})
	for _, t := range truncs {
		if !t.grown || t.postCap || cleared[t.base] || cleared[t.name] {
			continue
		}
		if !publishes(info, fd, t.obj) {
			continue // handed off (e.g. a stash that clears for the caller)
		}
		pass.Reportf(t.pos, "in-place filter of %s publishes a shortened slice without clearing the dead tail; the dropped elements stay reachable past len — clear(%s[len(%s):]) before the final assignment", t.base, t.base, t.name)
	}
}

// publishes reports whether kept is assigned to anything other than itself
// after the truncation — the step that makes the shortened slice (and its
// dead tail) outlive the filter loop.
func publishes(info *types.Info, fd *ast.FuncDecl, kept types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			rid, ok := ast.Unparen(rhs).(*ast.Ident)
			if !ok || info.Uses[rid] != kept {
				continue
			}
			if lid, ok := as.Lhs[i].(*ast.Ident); ok && info.Uses[lid] == kept {
				continue // kept = kept — not a publication
			}
			found = true
		}
		return !found
	})
	return found
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// holdsRefs reports whether values of type t keep other heap objects alive:
// pointers, slices, maps, channels, funcs, interfaces, strings, or any
// aggregate containing one.
func holdsRefs(t types.Type) bool {
	return holdsRefsDepth(t, 0)
}

func holdsRefsDepth(t types.Type, depth int) bool {
	if depth > 8 {
		return true // deep aggregate: assume the worst
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsRefsDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return holdsRefsDepth(u.Elem(), depth+1)
	}
	return false
}

// --- implementation side: Conn.Send retention ------------------------------

// isConnSend reports whether fd is a concrete `Send(*message.Message) error`
// method — the shape of a message.Conn implementation.
func isConnSend(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Send" {
		return false
	}
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 {
		return false
	}
	pt, ok := types.Unalias(sig.Params().At(0).Type()).(*types.Pointer)
	return ok && lint.TypeFullName(pt.Elem()) == messageType
}

func checkSendImpl(pass *lint.Pass, fd *ast.FuncDecl) {
	sig := pass.TypesInfo.Defs[fd.Name].(*types.Func).Type().(*types.Signature)
	rooted := map[types.Object]bool{sig.Params().At(0): true}
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "Conn.Send implementation %s; Send must not retain the message or anything it references after returning (callers recycle the payload buffers)", what)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				break // multi-value calls are opaque, nothing rooted flows out
			}
			for i, rhs := range n.Rhs {
				if !rootedRef(pass.TypesInfo, rooted, rhs) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.Ident:
					o := pass.TypesInfo.Defs[lhs]
					if o == nil {
						o = pass.TypesInfo.Uses[lhs]
					}
					if o == nil {
						continue
					}
					if isLocal(o, fd) {
						rooted[o] = true // local alias: keep tracking
					} else {
						report(n.Pos(), "stores message contents in package-level variable "+lhs.Name)
					}
				default:
					report(n.Pos(), "stores message contents outside its own call frame")
				}
			}
		case *ast.SendStmt:
			if rootedRef(pass.TypesInfo, rooted, n.Value) {
				report(n.Pos(), "sends message contents on a channel")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if rootedRef(pass.TypesInfo, rooted, arg) {
					report(n.Pos(), "passes message contents to a goroutine")
				}
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && capturesAny(pass.TypesInfo, rooted, lit) {
				report(n.Pos(), "captures message contents in a goroutine")
			}
		}
		return true
	})
}

// isLocal reports whether o is declared inside fd (a local variable).
func isLocal(o types.Object, fd *ast.FuncDecl) bool {
	return o.Pos() >= fd.Pos() && o.Pos() <= fd.End()
}

// rootedRef reports whether e is a reference-typed expression whose value
// aliases one of the rooted objects: the object itself, a selector/index/
// slice path from it, a pointer conversion of it, or an append involving it.
func rootedRef(info *types.Info, rooted map[types.Object]bool, e ast.Expr) bool {
	if !isRefType(info.Types[e].Type) {
		return false
	}
	return rootedExpr(info, rooted, e)
}

func rootedExpr(info *types.Info, rooted map[types.Object]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return rooted[info.Uses[e]]
	case *ast.SelectorExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.IndexExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.SliceExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.StarExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && rootedExpr(info, rooted, e.X)
	case *ast.ParenExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if rootedRef(info, rooted, el) {
				return true
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && info.Uses[id] != nil {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				// The append result aliases the destination's array; the
				// appended elements are copied, so `append(dst, m.Raw...)`
				// only retains message memory when the elements themselves
				// are references.
				if len(e.Args) > 0 && rootedRef(info, rooted, e.Args[0]) {
					return true
				}
				for i, arg := range e.Args[1:] {
					if !rootedRef(info, rooted, arg) {
						continue
					}
					if e.Ellipsis.IsValid() && i == len(e.Args)-2 {
						if sl, ok := types.Unalias(info.Types[arg].Type).Underlying().(*types.Slice); ok && !isRefType(sl.Elem()) {
							continue // copying value elements (e.g. bytes) is fine
						}
					}
					return true
				}
				return false
			}
		}
		// Conversions preserve aliasing; other calls are opaque.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return rootedRef(info, rooted, e.Args[0])
		}
	}
	return false
}

// isRefType reports whether t can alias memory: pointers, slices, maps,
// channels, functions, and interfaces.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// capturesAny reports whether the function literal references any rooted
// object.
func capturesAny(info *types.Info, rooted map[types.Object]bool, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && rooted[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}
