// Package a seeds noretain violations: uses of pooled values after release
// and retention inside Conn.Send implementations.
package a

import (
	"sync"

	"desis/internal/core"
	"desis/internal/message"
	"desis/internal/query"
)

// --- caller side: use after release ---------------------------------------

func useAfterRecycle(e *core.Engine, p *core.SlicePartial) uint64 {
	e.RecyclePartial(p)
	return p.ID // want `p is read after being released by Engine.RecyclePartial`
}

func aliasAfterRecycle(e *core.Engine, p *core.SlicePartial) {
	q := p
	e.RecyclePartial(p)
	q.Aggs = nil // want `q is read after being released by Engine.RecyclePartial`
}

func doubleRecycle(e *core.Engine, p *core.SlicePartial) {
	e.RecyclePartial(p)
	e.RecyclePartial(p) // want `p is read after being released by Engine.RecyclePartial`
}

func poolPut(pool *sync.Pool, buf *[64]byte) {
	pool.Put(buf)
	_ = buf[0] // want `buf is read after being released by sync.Pool.Put`
}

func reassignedOK(e *core.Engine, p *core.SlicePartial, fresh *core.SlicePartial) uint64 {
	e.RecyclePartial(p)
	p = fresh
	return p.ID // ok: p was rebound to a fresh value
}

func siblingBranchOK(e *core.Engine, p *core.SlicePartial, done bool) uint64 {
	if done {
		e.RecyclePartial(p)
	} else {
		return p.ID // ok: alternative branch, not after the release
	}
	return 0
}

func earlyReturnOK(e *core.Engine, p *core.SlicePartial, done bool) uint64 {
	if done {
		e.RecyclePartial(p)
		return 0
	}
	return p.ID // ok: unreachable once the release branch returns
}

// --- truncation side: in-place filter dead tails ---------------------------

type box struct{ p *int }

type keeper struct {
	boxes []*box
	vals  []int
}

func (k *keeper) dropBad() {
	kept := k.boxes[:0] // want `in-place filter of k\.boxes publishes a shortened slice without clearing the dead tail`
	for _, b := range k.boxes {
		if b.p != nil {
			kept = append(kept, b)
		}
	}
	k.boxes = kept
}

func (k *keeper) dropFixed() {
	kept := k.boxes[:0]
	for _, b := range k.boxes {
		if b.p != nil {
			kept = append(kept, b)
		}
	}
	clear(k.boxes[len(kept):]) // ok: dead tail zeroed before publishing
	k.boxes = kept
}

func (k *keeper) dropFixedViaAlias() {
	all := k.boxes
	kept := all[:0]
	for _, b := range all {
		if b.p != nil {
			kept = append(kept, b)
		}
	}
	clear(all[len(kept):]) // ok: cleared through the loop's own base
	k.boxes = kept
}

func (k *keeper) dropValues() {
	kept := k.vals[:0] // ok: int elements hold no references
	for _, v := range k.vals {
		if v != 0 {
			kept = append(kept, v)
		}
	}
	k.vals = kept
}

func (k *keeper) stash(save func([]*box)) {
	kept := k.boxes[:0] // ok: handed off, never published by this function
	for _, b := range k.boxes {
		if b.p != nil {
			kept = append(kept, b)
		}
	}
	save(kept)
}

// --- implementation side: Conn.Send retention ------------------------------

type fieldConn struct {
	last *message.Message
}

func (c *fieldConn) Send(m *message.Message) error {
	c.last = m // want `stores message contents outside its own call frame`
	return nil
}

var lastMsg *message.Message

type globalConn struct{}

func (globalConn) Send(m *message.Message) error {
	lastMsg = m // want `stores message contents in package-level variable lastMsg`
	return nil
}

type chanConn struct {
	ch chan *core.SlicePartial
}

func (c *chanConn) Send(m *message.Message) error {
	c.ch <- m.Partial // want `sends message contents on a channel`
	return nil
}

type goConn struct{}

func (goConn) Send(m *message.Message) error {
	go func() { // want `captures message contents in a goroutine`
		_ = m.Partial
	}()
	return nil
}

type aliasConn struct {
	stash []query.Query
}

func (c *aliasConn) Send(m *message.Message) error {
	qs := m.Queries // ok so far: local alias
	c.stash = qs    // want `stores message contents outside its own call frame`
	return nil
}

type copyConn struct {
	buf []byte
}

func encode(m *message.Message, dst []byte) []byte { return dst }

func (c *copyConn) Send(m *message.Message) error {
	// ok: encoding copies the message into the connection's own buffer.
	c.buf = encode(m, c.buf[:0])
	return nil
}
