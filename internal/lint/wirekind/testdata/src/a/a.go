// Package a exercises the wirekind exhaustiveness contract over its own
// three-constant enum: tabled classifiers, //desis:wirekind-annotated
// classifiers, and the table existence check.
package a // want `wirekind rules table names a\.gone, which no longer exists in a`

// Kind mimics message.Kind: a small enum the wire branches on.
type Kind uint8

const (
	KHello Kind = iota + 1
	KData
	KClose
)

// kDebug is unexported and therefore outside the wire contract.
const kDebug Kind = 99

// Mode has a single exported constant, so it is not an enum and the
// contract does not attach to functions mentioning it.
type Mode uint8

const ModeDefault Mode = 0

// Encode handles every kind; tabled by the test, reports nothing.
func Encode(k Kind) byte {
	switch k {
	case KHello:
		return 1
	case KData:
		return 2
	case KClose:
		return 3
	}
	return 0
}

// Missing is tabled but lacks a KClose arm.
func Missing(k Kind) byte { // want `Missing does not handle a\.Kind constant KClose`
	switch k {
	case KHello, KData:
		return 1
	default:
		return 0
	}
}

// classify is annotated but only compares one of three kinds.
//
//desis:wirekind
func classify(k Kind) bool { // want `classify does not handle a\.Kind constants KClose, KHello`
	return k == KData
}

// classifyAll mentions every exported Kind (an explicit not-handled arm
// counts as handling) plus a lone-constant type and an unexported kind,
// neither of which widens the required set.
//
//desis:wirekind
func classifyAll(k Kind, m Mode) bool {
	if m == ModeDefault && k == kDebug {
		return false
	}
	switch k {
	case KHello, KData:
		return true
	case KClose: // deliberately unbatched
		return false
	}
	return false
}

// opaque is annotated but branches without naming any constant, so the
// contract cannot attach.
//
//desis:wirekind
func opaque(k Kind) bool { // want `opaque is a wire-kind classifier but mentions no enum constants`
	return k > 5
}

// free is neither tabled nor annotated: no exhaustiveness demanded.
func free(k Kind) bool { return k == KData }
