// Package wirekind asserts that every wire-message kind is handled at every
// place the protocol branches on one. PR 6's KindBatch had to be threaded by
// hand through both codecs' encode and decode switches, the uplink's
// replay-ring classifier, and the Batcher's control-vs-batchable split; a
// missed site compiles fine and fails only when that kind first crosses the
// wire (a batchable kind missing from the replay ring silently loses
// partials across a reconnect — exactly the §3.2 failure Desis exists to
// rule out).
//
// The contract is mention-based exhaustiveness: in each function named by
// the rules table (and in any function annotated //desis:wirekind), every
// exported constant of the switched enum type must be mentioned. A `case
// KindX:` arm, an `== KindX` comparison, or an explicit
// `case KindX: // not replayed` arm all count; deleting any single arm
// removes the mention and fails the build. The enum type is discovered from
// the constants the function does mention and the required set is read from
// the type's declaring package, so the analyzer needs no update when a new
// Kind constant is added — every classifier goes red until the new kind is
// handled (or deliberately listed as unhandled) everywhere.
//
// The table names functions by their types.Func full name. When the
// analyzer visits a table entry's own package it also checks the entry still
// resolves to a declared function, so a rename cannot silently drop a
// classifier from coverage.
package wirekind

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"desis/internal/lint"
)

const messagePkg = "desis/internal/message"

// DefaultRules lists every function that classifies a message.Kind, by
// types.Func full name, mapped to the package that declares it (where the
// existence check runs).
var DefaultRules = map[string]string{
	"(desis/internal/message.Binary).Append":  messagePkg,
	"(desis/internal/message.Binary).Decode":  messagePkg,
	"(desis/internal/message.Compact).Append": messagePkg,
	"(desis/internal/message.Compact).Decode": messagePkg,
	"desis/internal/message.Batchable":        messagePkg,
	"(*desis/internal/node.uplink).record":    "desis/internal/node",
}

// Analyzer checks the shipping rules table.
var Analyzer = NewAnalyzer(DefaultRules)

// NewAnalyzer builds a wirekind analyzer over a table of function full
// names; tests install tables targeting fixture functions.
func NewAnalyzer(rules map[string]string) *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "wirekind",
		Doc:  "every message.Kind constant is handled in every codec, replay, and batching classifier",
	}
	a.Run = func(pass *lint.Pass) (any, error) {
		run(pass, rules)
		return nil, nil
	}
	return a
}

func run(pass *lint.Pass, rules map[string]string) {
	seen := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			full := declFullName(pass, fd)
			_, tabled := rules[full]
			if tabled {
				seen[full] = true
			}
			if tabled || lint.HasDirective(fd.Doc, "//desis:wirekind") {
				checkClassifier(pass, fd, tabled)
			}
		}
	}
	// A table entry whose package we are looking at must resolve, or the
	// contract has silently lost a classifier to a rename.
	for full, owner := range rules {
		if owner == pass.Pkg.Path() && !seen[full] {
			pass.Reportf(pass.Files[0].Package,
				"wirekind rules table names %s, which no longer exists in %s", full, owner)
		}
	}
}

// declFullName renders fd as its types.Func full name.
func declFullName(pass *lint.Pass, fd *ast.FuncDecl) string {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}

// checkClassifier requires fd to mention every exported constant of each
// enum type it branches on.
func checkClassifier(pass *lint.Pass, fd *ast.FuncDecl, tabled bool) {
	if fd.Body == nil {
		return
	}
	// mentioned groups the constants fd uses by their defined type.
	mentioned := map[*types.Named]map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		c, ok := pass.TypesInfo.Uses[id].(*types.Const)
		if !ok {
			return true
		}
		named := lint.NamedOf(c.Type())
		if named == nil || named.Obj().Pkg() == nil {
			return true
		}
		if mentioned[named] == nil {
			mentioned[named] = map[string]bool{}
		}
		mentioned[named][c.Name()] = true
		return true
	})
	if len(mentioned) == 0 {
		pass.Reportf(fd.Name.Pos(),
			"%s is a wire-kind classifier but mentions no enum constants; the exhaustiveness contract cannot attach", fd.Name.Name)
		return
	}
	for named, have := range mentioned {
		// Only types that form an enum (two or more exported constants in
		// their declaring package) carry the contract; lone constants of
		// other types (buffer sizes, defaults) are not kind sets.
		required := enumConstants(named)
		if len(required) < 2 {
			continue
		}
		var missing []string
		for _, name := range required {
			if !have[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		pass.Reportf(fd.Name.Pos(), "%s does not handle %s constant%s %s",
			fd.Name.Name, typeName(named), plural(missing), strings.Join(missing, ", "))
	}
}

// enumConstants returns the exported constants of type named declared in
// its own package. Export data carries every exported constant, so the set
// is complete whether the package was loaded from source or from the build
// cache.
func enumConstants(named *types.Named) []string {
	scope := named.Obj().Pkg().Scope()
	var out []string
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		if lint.NamedOf(c.Type()) == named {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func typeName(named *types.Named) string {
	obj := named.Obj()
	return fmt.Sprintf("%s.%s", obj.Pkg().Name(), obj.Name())
}

func plural(s []string) string {
	if len(s) == 1 {
		return ""
	}
	return "s"
}
