package wirekind_test

import (
	"testing"

	"desis/internal/lint/linttest"
	"desis/internal/lint/wirekind"
)

// The shipping table pins codec entry points by full name; the fixture
// installs a table over its own functions (plus one stale entry) to
// exercise the mention-based exhaustiveness check, the //desis:wirekind
// directive, and the existence check.
func TestWireKind(t *testing.T) {
	rules := map[string]string{
		"a.Encode":  "a",
		"a.Missing": "a",
		"a.gone":    "a",
	}
	linttest.Run(t, wirekind.NewAnalyzer(rules), "a")
}
