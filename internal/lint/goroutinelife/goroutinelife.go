// Package goroutinelife demands a provable lifetime for every goroutine:
// each `go` statement's body must carry a join or stop edge, so nothing in
// the tree can outlive its owner silently. The uplink pump, heartbeat, and
// stats-pull goroutines (PRs 3-6) are all supervised through exactly these
// edges; a goroutine without one leaks on reconfiguration and keeps stale
// state alive across plan epochs.
//
// Accepted edges, anywhere in the spawned body (including defers and
// nested literals), or in a same-package callee up to two calls deep:
//
//   - a (*sync.WaitGroup).Done call — the owner joins via Wait — or a
//     (*sync.WaitGroup).Wait call — the goroutine's own life is bounded
//     by the group draining (the closer-goroutine pattern);
//   - close(ch) or a channel send — completion is signalled;
//   - a channel receive (<-ch, select receive, for-range over a channel) —
//     the goroutine subscribes to a stop/work channel, which covers
//     context cancellation (<-ctx.Done()) too;
//   - an endpoint-bounded loop: a call to a method named Recv, RecvTimeout,
//     Accept, or AcceptTCP, or to io.Copy — the owner stops the goroutine
//     by closing the endpoint, which makes the blocking call fail.
//
// Goroutines whose target cannot be resolved statically (func-typed
// variables, cross-package functions) are reported: if the lifetime is
// managed somewhere the analyzer cannot see, say so with a justified
// //lint:ignore marker at the spawn site.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"

	"desis/internal/lint"
)

// Analyzer is the goroutine-lifetime pass.
var Analyzer = &lint.Analyzer{
	Name: "goroutinelife",
	Doc:  "every go statement has a provable join/stop edge (WaitGroup, channel close/send/receive, endpoint-bounded loop)",
	Run:  run,
}

// callDepth limits the same-package call chain searched for an edge.
const callDepth = 2

func run(pass *lint.Pass) (any, error) {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	c := &checker{pass: pass, decls: decls}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				c.checkGo(g)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass  *lint.Pass
	decls map[*types.Func]*ast.FuncDecl
}

func (c *checker) checkGo(g *ast.GoStmt) {
	var body *ast.BlockStmt
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := lint.Callee(c.pass.TypesInfo, g.Call); fn != nil {
		fd, ok := c.decls[fn]
		if !ok {
			c.pass.Reportf(g.Pos(),
				"goroutine runs %s from another package; its join/stop edge cannot be checked here (move the spawn next to the lifecycle owner, or justify with //lint:ignore)", fn.Name())
			return
		}
		body = fd.Body
	} else {
		c.pass.Reportf(g.Pos(),
			"goroutine target is dynamic; no join/stop edge is provable (spawn a named function, or justify with //lint:ignore)")
		return
	}
	if body == nil || !c.hasStopEdge(body, callDepth, map[*ast.BlockStmt]bool{}) {
		c.pass.Reportf(g.Pos(),
			"goroutine has no provable join or stop edge (WaitGroup.Done, channel close/send/receive, or an endpoint-bounded Recv/Accept loop)")
	}
}

// boundedCalls are method names whose blocking failure is the documented
// stop edge: the owner closes the endpoint and the loop's next call errors
// out.
var boundedCalls = map[string]bool{
	"Recv": true, "RecvTimeout": true, "Accept": true, "AcceptTCP": true,
}

// edgeFuncs are fully-named calls accepted as join/stop edges.
var edgeFuncs = map[string]bool{
	"(*sync.WaitGroup).Done": true,
	"(*sync.WaitGroup).Wait": true,
	"io.Copy":                true,
}

// hasStopEdge walks body for any accepted edge, following same-package
// callees up to depth.
func (c *checker) hasStopEdge(body *ast.BlockStmt, depth int, seen map[*ast.BlockStmt]bool) bool {
	if seen[body] {
		return false
	}
	seen[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := c.pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if c.callIsEdge(n, depth, seen) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (c *checker) callIsEdge(call *ast.CallExpr, depth int, seen map[*ast.BlockStmt]bool) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return id.Name == "close"
		}
	}
	fn := lint.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if edgeFuncs[fn.FullName()] {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && boundedCalls[fn.Name()] {
		return true
	}
	if fd, ok := c.decls[fn]; ok && depth > 0 && fd.Body != nil {
		return c.hasStopEdge(fd.Body, depth-1, seen)
	}
	return false
}
