package goroutinelife_test

import (
	"testing"

	"desis/internal/lint/goroutinelife"
	"desis/internal/lint/linttest"
)

func TestGoroutineLife(t *testing.T) {
	linttest.Run(t, goroutinelife.Analyzer, "a")
}
