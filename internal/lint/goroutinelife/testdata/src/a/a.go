// Package a exercises the goroutine-lifetime contract: every accepted
// join/stop edge, edge discovery through same-package callees, and the
// leak shapes that must be reported.
package a

import "sync"

type conn struct{}

func (conn) Recv() (int, error)        { return 0, nil }
func (conn) RecvTimeout() (int, error) { return 0, nil }

func spawns(c conn, f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // joined via WaitGroup
		defer wg.Done()
	}()

	done := make(chan struct{})
	go func() { // completion signalled by close
		defer close(done)
		work()
	}()

	res := make(chan int)
	go func() { res <- 1 }() // completion signalled by send

	stop := make(chan struct{})
	go func() { // subscribed to a stop channel
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()

	go func() { // drains a work channel until it closes
		for range res {
		}
	}()

	go func() { // endpoint-bounded: owner closes c, Recv fails, loop exits
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()

	var pumps sync.WaitGroup
	closer := conn{}
	go func() { // closer pattern: life bounded by the group draining
		pumps.Wait()
		_, _ = closer.Recv()
	}()

	go pump(c) // edge (RecvTimeout) found in the named callee

	go supervised(stop) // edge found two calls deep

	go spin() // want `goroutine has no provable join or stop edge`

	go func() { // want `goroutine has no provable join or stop edge`
		for {
			work()
		}
	}()

	go f() // want `goroutine target is dynamic; no join/stop edge is provable`

	//lint:ignore goroutinelife fixture: lifetime owned by the test harness
	go spin() // justified suppression: no diagnostic

	wg.Wait()
	<-done
}

func work() {}

func spin() {
	for {
		work()
	}
}

func pump(c conn) {
	for {
		if _, err := c.RecvTimeout(); err != nil {
			return
		}
	}
}

func supervised(stop chan struct{}) {
	for {
		if stopped(stop) {
			return
		}
	}
}

func stopped(stop chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}
