// Package linttest runs lint analyzers over fixture packages and checks
// their diagnostics against expectations embedded in the fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under the calling test's testdata/src/<name>/
// directory. A line expecting diagnostics carries a trailing comment
//
//	x.f = 1 // want `regexp` `another regexp`
//
// where each quoted (or backquoted) regexp must match the message of a
// distinct diagnostic reported on that line. Diagnostics without a matching
// expectation, and expectations without a matching diagnostic, fail the
// test.
//
// Fixtures are type-checked against the enclosing module's build cache
// (export data via `go list -export`), so they may import real desis
// packages.
package linttest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"desis/internal/lint"
)

// want is one expected-diagnostic pattern at a file:line.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// Run analyzes the fixture packages named by pkgs (directories under
// testdata/src relative to the test's working directory) with a and reports
// any mismatch between expected and actual diagnostics as test errors.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	moduleRoot := findModuleRoot(t)
	// The module's own packages and their dependencies provide the export
	// data the fixtures' imports resolve against. The index is cached
	// process-wide, so the many analyzer tests in one binary share a single
	// `go list` run.
	x, err := lint.CachedExportIndex(moduleRoot, "./...")
	if err != nil {
		t.Fatalf("loading export index: %v", err)
	}

	fset := token.NewFileSet()
	var loaded []*lint.Package
	// Fixtures loaded earlier in pkgs are importable by later ones (by their
	// bare fixture name), so a fixture can exercise cross-package analysis.
	deps := map[string]*types.Package{}
	for _, name := range pkgs {
		dir := filepath.Join("testdata", "src", name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading fixture dir: %v", err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			t.Fatalf("no Go files in fixture %s", dir)
		}
		pkg, err := lint.CheckPackageDeps(fset, name, dir, files, x, deps)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", name, err)
		}
		deps[name] = pkg.Types
		loaded = append(loaded, pkg)
	}

	wants := collectWants(t, fset, loaded)
	diags, err := lint.RunAnalyzers(fset, loaded, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if !match(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

// match consumes the first unmatched want whose pattern matches msg.
func match(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants scans every fixture file for `// want` comments and returns
// the expectations keyed by "filename:line".
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*lint.Package) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, pat := range splitPatterns(t, key, m[1]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
						}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

// splitPatterns parses the payload of a want comment: a sequence of
// double-quoted or backquoted strings.
func splitPatterns(t *testing.T, key, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", key, s)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			pat, rest, err := unquotePrefix(s)
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", key, s, err)
			}
			pats = append(pats, pat)
			s = strings.TrimSpace(rest)
		default:
			t.Fatalf("%s: want patterns must be quoted or backquoted: %s", key, s)
		}
	}
	return pats
}

// unquotePrefix unquotes the leading double-quoted string of s and returns
// it with the remainder.
func unquotePrefix(s string) (string, string, error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			pat, err := strconv.Unquote(s[:i+1])
			return pat, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated string")
}

// findModuleRoot locates the enclosing go.mod's directory.
func findModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
