// Package enginestats reproduces the PR 5 Engine.Stats data race shape as
// a regression fixture: per-event counters bumped through sync/atomic on
// the ingest path, then read plainly (and copied wholesale) by the stats
// snapshot. atomiccoherence must catch both sites.
package enginestats

import "sync/atomic"

type engineStats struct {
	events       uint64
	calculations uint64
	windows      uint64
}

type Engine struct {
	stats engineStats
}

type Stats struct {
	Events       uint64
	Calculations uint64
	Windows      uint64
}

// Process is the hot path: counters move only through sync/atomic.
func (e *Engine) Process(nCalc, nWin int) {
	atomic.AddUint64(&e.stats.events, 1)
	atomic.AddUint64(&e.stats.calculations, uint64(nCalc))
	atomic.AddUint64(&e.stats.windows, uint64(nWin))
}

// Stats is the pre-PR-5 snapshot: plain loads racing with Process.
func (e *Engine) Stats() Stats {
	return Stats{
		Events:       e.stats.events,       // want `engineStats\.events is accessed with sync/atomic elsewhere`
		Calculations: e.stats.calculations, // want `engineStats\.calculations is accessed with sync/atomic elsewhere`
		Windows:      e.stats.windows,      // want `engineStats\.windows is accessed with sync/atomic elsewhere`
	}
}

// snapshot copies the whole stats struct: rule 1 would miss it (no field
// selection of an atomic field), rule 2 catches the forked counters.
func (e *Engine) snapshot() engineStats {
	return e.stats // want `return copies a value containing atomically accessed field events`
}

// StatsFixed is the PR 5 shape after the fix: atomic loads only.
func (e *Engine) StatsFixed() Stats {
	return Stats{
		Events:       atomic.LoadUint64(&e.stats.events),
		Calculations: atomic.LoadUint64(&e.stats.calculations),
		Windows:      atomic.LoadUint64(&e.stats.windows),
	}
}
