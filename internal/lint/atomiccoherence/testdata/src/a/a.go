// Package a exercises both atomiccoherence rules: mixed atomic/plain
// access to a field, and by-value copies of lock- or atomic-bearing
// values.
package a

import (
	"sync"
	"sync/atomic"
)

// counters has one field under sync/atomic and one plain field.
type counters struct {
	hits uint64 // accessed via atomic.AddUint64: atomic everywhere
	cold uint64 // never touched atomically: plain access is fine
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
	c.cold++
}

func (c *counters) read() (uint64, uint64) {
	h := atomic.LoadUint64(&c.hits)
	return h, c.cold
}

// snapshotRace is the race shape: a plain read of an atomically written
// field, hidden on a path that "only runs at shutdown".
func (c *counters) snapshotRace() uint64 {
	return c.hits // want `counters\.hits is accessed with sync/atomic elsewhere`
}

func (c *counters) resetRace() {
	c.hits = 0 // want `counters\.hits is accessed with sync/atomic elsewhere`
	c.cold = 0
}

// addrEscape takes the address without accessing; permitted (it is how
// atomic call sites name the field).
func (c *counters) addrEscape() *uint64 { return &c.hits }

// guarded mixes a mutex with data; copying it forks the lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

// typedStats carries a typed atomic; copying it forks the counter.
type typedStats struct {
	events atomic.Uint64
}

func (t *typedStats) inc() { t.events.Add(1) }

func copies(g *guarded, ts *typedStats) {
	snap := *g // want `assignment copies a value containing sync\.Mutex`
	_ = snap
	dup := *ts // want `assignment copies a value containing sync/atomic\.Uint64`
	_ = dup
}

func byArg(g guarded) int { // want `parameter copies a value containing sync\.Mutex`
	return g.n
}

func (t typedStats) byRecv() {} // want `value receiver copies a value containing sync/atomic\.Uint64`

func byReturn(g *guarded) guarded {
	return *g // want `return copies a value containing sync\.Mutex`
}

func byRange(all []guarded) int {
	n := 0
	for _, g := range all { // want `range copies a value containing sync\.Mutex`
		n += g.n
	}
	for i := range all { // iterate by index: fine
		n += all[i].n
	}
	return n
}

// construction and pointer flow are not copies.
func fine() *guarded {
	g := &guarded{n: 1}
	p := g
	_ = p
	var ts typedStats
	ts.inc()
	use(&ts)
	return g
}

func use(*typedStats) {}
