// Package atomiccoherence enforces coherent access to shared atomic state,
// the contract whose violation caused the PR 5 Engine.Stats data race: a
// counter bumped through sync/atomic on the hot path but read with a plain
// load in the stats snapshot. The race detector only catches that shape
// when a test happens to overlap the two sites; this analyzer catches it
// structurally.
//
// Two rules:
//
//  1. Mixed access. A struct field that is passed to any sync/atomic
//     function (atomic.AddUint64(&s.n, 1), ...) anywhere in the package is
//     atomic state everywhere: every other selection of that field must
//     take its address (feeding another atomic call), never read or write
//     it plainly — including "init-only" or "single-writer" paths, which
//     is exactly where the Engine.Stats race hid. Composite-literal
//     initialization before the value is shared is permitted.
//
//  2. No copies. A value whose type transitively contains a sync lock
//     (Mutex, RWMutex, WaitGroup, Once, Cond, Map, Pool), a typed atomic
//     (atomic.Uint64 family, atomic.Value, atomic.Pointer), or a field
//     found atomic by rule 1 must not be copied: not by assignment, not as
//     a call argument, not by value receiver or parameter, not by range,
//     not by return. A copy forks the synchronization state itself, so
//     both halves race from then on.
//
// Analysis is per package, matching where such fields live (they are
// unexported); both drivers behave identically.
package atomiccoherence

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"desis/internal/lint"
)

// Analyzer is the package-level atomiccoherence pass.
var Analyzer = &lint.Analyzer{
	Name: "atomiccoherence",
	Doc:  "atomic struct fields are accessed atomically at every site, and lock/atomic-bearing values are never copied",
	Run:  run,
}

func run(pass *lint.Pass) (any, error) {
	c := &checker{
		pass:         pass,
		atomicFields: map[*types.Var]bool{},
		addrTaken:    map[*ast.SelectorExpr]bool{},
		nocopyCache:  map[types.Type]string{},
	}
	// Pass 1: find the fields used with sync/atomic functions, and every
	// selector already in address-of position.
	for _, f := range pass.Files {
		ast.Inspect(f, c.collect)
	}
	// Pass 2: report plain accesses and copies.
	for _, f := range pass.Files {
		c.checkAccess(f)
		ast.Inspect(f, c.checkCopies)
	}
	return nil, nil
}

type checker struct {
	pass *lint.Pass
	// atomicFields are struct fields passed by address to a sync/atomic
	// function somewhere in this package.
	atomicFields map[*types.Var]bool
	// addrTaken marks selectors appearing as &x.f; taking the address is
	// not an access, and it is how atomic call sites name the field.
	addrTaken map[*ast.SelectorExpr]bool
	// nocopyCache memoizes containsNoCopy, "" for copyable types.
	nocopyCache map[types.Type]string
}

// collect records atomic-function operands and address-of selectors.
func (c *checker) collect(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.UnaryExpr:
		if n.Op.String() == "&" {
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				c.addrTaken[sel] = true
			}
		}
	case *ast.CallExpr:
		full := lint.CalleeFullName(c.pass.TypesInfo, n)
		if !strings.HasPrefix(full, "sync/atomic.") {
			return true
		}
		for _, arg := range n.Args {
			u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || u.Op.String() != "&" {
				continue
			}
			sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if fld := c.fieldOf(sel); fld != nil {
				c.atomicFields[fld] = true
			}
		}
	}
	return true
}

// fieldOf resolves sel to the struct field it selects, or nil.
func (c *checker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// checkAccess reports every plain (non-address-of) selection of an atomic
// field.
func (c *checker) checkAccess(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fld := c.fieldOf(sel)
		if fld == nil || !c.atomicFields[fld] || c.addrTaken[sel] {
			return true
		}
		owner := lint.TypeFullName(c.pass.TypesInfo.Types[sel.X].Type)
		if owner == "" {
			owner = "struct"
		}
		c.pass.Reportf(sel.Sel.Pos(),
			"%s.%s is accessed with sync/atomic elsewhere in this package; this plain access races with it (use the atomic API here too)",
			owner, fld.Name())
		return true
	})
}

// checkCopies reports by-value copies of lock/atomic-bearing values.
func (c *checker) checkCopies(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			// Discarding into the blank identifier copies nothing.
			if len(n.Lhs) == len(n.Rhs) {
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue
				}
			}
			c.checkCopiedExpr(rhs, "assignment")
		}
	case *ast.CallExpr:
		if isConversion(c.pass.TypesInfo, n) {
			return true
		}
		for _, arg := range n.Args {
			c.checkCopiedExpr(arg, "call argument")
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.checkCopiedExpr(r, "return")
		}
	case *ast.RangeStmt:
		if t := c.rangeValueType(n.Value); t != nil {
			if carrier := c.containsNoCopy(t); carrier != "" {
				c.pass.Reportf(n.Value.Pos(),
					"range copies a value containing %s; iterate by index or store pointers", carrier)
			}
		}
	case *ast.FuncDecl:
		if n.Recv != nil {
			for _, fld := range n.Recv.List {
				c.checkFieldDecl(fld, "value receiver")
			}
		}
		if n.Type.Params != nil {
			for _, fld := range n.Type.Params.List {
				c.checkFieldDecl(fld, "parameter")
			}
		}
	}
	return true
}

// rangeValueType resolves the type of a range statement's value variable
// (a definition in `:=` mode, a use in `=` mode), nil when absent or blank.
func (c *checker) rangeValueType(value ast.Expr) types.Type {
	if value == nil {
		return nil
	}
	if id, ok := value.(*ast.Ident); ok {
		if id.Name == "_" {
			return nil
		}
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	if t := c.pass.TypesInfo.Types[value]; t.Type != nil {
		return t.Type
	}
	return nil
}

// checkCopiedExpr flags expr when evaluating it copies a lock/atomic-
// bearing value out of existing storage: dereferences and variable or
// field reads, not composite literals (construction) or call results
// (the copy is inside the callee).
func (c *checker) checkCopiedExpr(expr ast.Expr, what string) {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := c.pass.TypesInfo.Types[expr].Type
	if t == nil {
		return
	}
	if carrier := c.containsNoCopy(t); carrier != "" {
		c.pass.Reportf(expr.Pos(),
			"%s copies a value containing %s; both copies race from here on (pass a pointer)", what, carrier)
	}
}

// checkFieldDecl flags receivers/parameters declared by value with a
// nocopy type.
func (c *checker) checkFieldDecl(fld *ast.Field, what string) {
	t := c.pass.TypesInfo.Types[fld.Type].Type
	if t == nil {
		return
	}
	if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
		return
	}
	if carrier := c.containsNoCopy(t); carrier != "" {
		c.pass.Reportf(fld.Type.Pos(),
			"%s copies a value containing %s; both copies race from here on (use a pointer)", what, carrier)
	}
}

// nocopyCarriers are the sync and sync/atomic types whose values must not
// be copied after first use.
var nocopyCarriers = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.WaitGroup": true,
	"sync.Once": true, "sync.Cond": true, "sync.Map": true, "sync.Pool": true,
	"sync/atomic.Value": true, "sync/atomic.Bool": true,
	"sync/atomic.Int32": true, "sync/atomic.Int64": true,
	"sync/atomic.Uint32": true, "sync/atomic.Uint64": true,
	"sync/atomic.Uintptr": true, "sync/atomic.Pointer": true,
}

// containsNoCopy reports the name of the lock/atomic carrier t transitively
// contains by value, or "".
func (c *checker) containsNoCopy(t types.Type) string {
	if carrier, ok := c.nocopyCache[t]; ok {
		return carrier
	}
	c.nocopyCache[t] = "" // breaks recursive types; refined below
	carrier := c.findCarrier(t)
	c.nocopyCache[t] = carrier
	return carrier
}

func (c *checker) findCarrier(t types.Type) string {
	t = types.Unalias(t)
	if named := lint.NamedOf(t); named != nil {
		if _, isPtr := t.(*types.Pointer); isPtr {
			return "" // pointing at a carrier is the correct usage
		}
		full := lint.TypeFullName(named)
		// atomic.Pointer[T] renders with type arguments; match the base.
		if base, _, ok := strings.Cut(full, "["); ok {
			full = base
		}
		if nocopyCarriers[full] {
			return full
		}
		return c.containsNoCopy(named.Underlying())
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			fld := t.Field(i)
			if c.atomicFields[fld] {
				return fmt.Sprintf("atomically accessed field %s", fld.Name())
			}
			if carrier := c.containsNoCopy(fld.Type()); carrier != "" {
				return carrier
			}
		}
	case *types.Array:
		return c.containsNoCopy(t.Elem())
	}
	return ""
}

// isConversion reports whether call is a type conversion, not a function
// call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
