package atomiccoherence_test

import (
	"testing"

	"desis/internal/lint/atomiccoherence"
	"desis/internal/lint/linttest"
)

func TestAtomicCoherence(t *testing.T) {
	linttest.Run(t, atomiccoherence.Analyzer, "a")
}

// TestEngineStatsRegression pins the PR 5 Engine.Stats race shape: atomic
// writes on the ingest path, plain reads and a struct copy in the
// snapshot. The analyzer must flag every racing site.
func TestEngineStatsRegression(t *testing.T) {
	linttest.Run(t, atomiccoherence.Analyzer, "enginestats")
}
