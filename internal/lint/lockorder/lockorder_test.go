package lockorder_test

import (
	"testing"

	"desis/internal/lint/linttest"
	"desis/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "a")
}
