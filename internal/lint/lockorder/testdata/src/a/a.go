// Package a seeds lockorder violations: an AB/BA lock-order cycle,
// re-entrant locking (direct and through a call chain), and blocking
// operations under a mutex.
package a

import (
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	nu sync.Mutex
}

func (s *S) lockAB() {
	s.mu.Lock()
	s.nu.Lock() // want `lock order cycle: a\.S\.mu -> a\.S\.nu -> a\.S\.mu`
	s.nu.Unlock()
	s.mu.Unlock()
}

func (s *S) lockBA() {
	s.nu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	s.nu.Unlock()
}

func (s *S) relock() {
	s.mu.Lock()
	s.mu.Lock() // want `a\.S\.mu acquired while already held \(self-deadlock\)`
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *S) lockAndCall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.helper() // want `a\.S\.mu may be acquired again through call to \(\*a\.S\)\.helper while already held \(self-deadlock\)`
}

func (s *S) helper() {
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *S) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time.Sleep while holding a\.S\.mu`
	s.mu.Unlock()
}

func (s *S) sendUnderLock(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1 // want `channel send while holding a\.S\.mu`
}

func (s *S) recvUnderLock(ch chan int) {
	s.mu.Lock()
	<-ch // want `channel receive while holding a\.S\.mu`
	s.mu.Unlock()
}

func (s *S) selectUnderLock(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while holding a\.S\.mu`
	case <-ch:
	}
}

func (s *S) okAfterUnlock(ch chan int) {
	s.mu.Lock()
	s.mu.Unlock()
	ch <- 1 // ok: nothing held any more
}

func (s *S) okNonBlockingSelect(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-ch:
	default: // ok: select with default cannot block
	}
}

func (s *S) okGoroutine(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		ch <- 1 // ok: runs on its own stack, lock not held there
	}()
}

// W exercises the condition-variable and scheduled-closure refinements on
// its own mutex pair (so it adds no edges to S's seeded AB/BA cycle).
type W struct {
	wu    sync.Mutex
	xu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

func (w *W) okCondWait() {
	w.wu.Lock()
	defer w.wu.Unlock()
	for !w.ready {
		w.cond.Wait() // ok: Wait releases its locker while parked
	}
}

func (w *W) condWaitExtraLock() {
	w.wu.Lock()
	w.xu.Lock()
	w.cond.Wait() // want `call to sync.Cond.Wait while holding 2 mutexes \(a\.W\.wu, a\.W\.xu\); Wait releases only the Cond's own locker`
	w.xu.Unlock()
	w.wu.Unlock()
}

func (w *W) okScheduledClosure() {
	w.wu.Lock()
	defer w.wu.Unlock()
	w.scheduleRecheck() // ok: the closure runs on its own stack later
}

// scheduleRecheck locks w.wu only inside a deferred-execution closure; its
// callers may hold w.wu without deadlocking.
func (w *W) scheduleRecheck() {
	time.AfterFunc(time.Millisecond, func() {
		w.wu.Lock()
		w.ready = true
		w.wu.Unlock()
	})
}

func (w *W) okGoroutineRelock() {
	w.wu.Lock()
	defer w.wu.Unlock()
	go func() {
		w.wu.Lock() // ok: its own stack; the creator's hold is not visible here
		w.wu.Unlock()
	}()
}
