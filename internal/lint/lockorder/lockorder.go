// Package lockorder builds the mutex-acquisition graph of the analyzed
// packages and reports:
//
//   - lock-order cycles: two mutexes acquired in opposite orders on
//     different code paths (the classic AB/BA deadlock), including orders
//     established through static call chains (f locks A then calls g, which
//     locks B);
//   - re-acquisition of a mutex already held, directly or via a call chain
//     (self-deadlock with sync.Mutex);
//   - blocking operations while a mutex is held: channel sends/receives,
//     selects without a default, time.Sleep, sync.WaitGroup.Wait, and
//     message.Conn.Recv.
//
// Mutexes are identified structurally — "pkgpath.Type.field" for a mutex
// field reached from a receiver or variable, "pkgpath.var" for a
// package-level mutex — so the same lock is recognized across functions and
// packages. Function literals and goroutine bodies are analyzed with an
// empty held-set and as synthetic functions of their own: a closure handed
// to `go`, time.AfterFunc, or a callback registry runs on its own stack, so
// the locks it takes are neither held at the creation site nor attributed
// to the function that merely creates it. Indirect calls through function
// values are invisible to the graph, which keeps the analysis
// under-approximate: every reported cycle is a real ordering in the code.
//
// sync.Cond.Wait is special-cased: Wait requires its locker held and
// atomically releases it while parked, so waiting with exactly one mutex
// held is the required usage. Waiting with two or more held is reported —
// every mutex other than the Cond's locker stays locked for the whole wait.
//
// Per-package findings (blocking-under-lock, direct self-deadlock) are
// reported from Run; the cross-package graph is assembled in Finish, which
// under the standalone driver sees every package of the pattern set.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"desis/internal/lint"
)

// Analyzer is the lockorder pass.
var Analyzer = &lint.Analyzer{
	Name:   "lockorder",
	Doc:    "detect lock-order cycles, re-entrant locking, and blocking calls under a mutex",
	Run:    run,
	Finish: finish,
}

// acquire/release method sets on sync primitives.
var (
	lockFuncs = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	unlockFuncs = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
	rlockFuncs = map[string]bool{"(*sync.RWMutex).RLock": true}

	// blockingFuncs may block indefinitely; calling them with a mutex held
	// stalls every other critical section on that mutex. sync.Cond.Wait is
	// handled separately (see condWait): it releases its own locker while
	// parked, so it only blocks critical sections on *additional* mutexes.
	blockingFuncs = map[string]string{
		"time.Sleep":                             "time.Sleep",
		"(*sync.WaitGroup).Wait":                 "sync.WaitGroup.Wait",
		"(sync.WaitGroup).Wait":                  "sync.WaitGroup.Wait",
		"(desis/internal/message.Conn).Recv":     "message.Conn.Recv",
		"(*desis/internal/message.TCPConn).Recv": "message.TCPConn.Recv",
		"(*desis/internal/message.Pipe).Recv":    "message.Pipe.Recv",
	}

	// condWait is sync.Cond's wait method, which must be called with the
	// Cond's locker held and releases it for the duration of the park.
	condWait = "(*sync.Cond).Wait"
)

// facts is the per-package summary handed to Finish.
type facts struct {
	funcs map[string]*funcFact
}

type funcFact struct {
	acquires []lockSite // direct acquisitions anywhere in the body
	calls    []callSite // static calls with the held-set at the call
}

type lockSite struct {
	lock string
	pos  token.Pos
}

type callSite struct {
	callee string
	held   []string
	pos    token.Pos
}

type heldLock struct {
	id     string
	reader bool // RLock
}

func run(pass *lint.Pass) (any, error) {
	fs := &facts{funcs: map[string]*funcFact{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnObj := pass.TypesInfo.Defs[fd.Name]
			if fnObj == nil {
				continue
			}
			name := fnObj.(interface{ FullName() string }).FullName()
			ff := &funcFact{}
			fs.funcs[name] = ff
			var lits int
			w := &walker{pass: pass, fn: name, fact: ff, fs: fs, lits: &lits}
			w.stmts(fd.Body.List, nil)
		}
	}
	return fs, nil
}

// walker tracks the held-lock stack through one function body.
type walker struct {
	pass *lint.Pass
	fn   string
	fact *funcFact
	fs   *facts
	lits *int // counter naming the function literals under fn
}

// litBody analyzes a function literal's body as a synthetic function of its
// own. The literal typically escapes the creation site (goroutine bodies,
// time.AfterFunc, callback registries) and runs on a fresh stack, so its
// acquisitions must not leak into the enclosing function's effective lock
// set — otherwise a helper that *schedules* a lock-taking closure looks like
// it takes the lock itself, a false self-deadlock at every locked call site.
func (w *walker) litBody(body *ast.BlockStmt) {
	*w.lits++
	name := fmt.Sprintf("%s$lit%d", w.fn, *w.lits)
	ff := &funcFact{}
	w.fs.funcs[name] = ff
	lw := &walker{pass: w.pass, fn: name, fact: ff, fs: w.fs, lits: w.lits}
	lw.stmts(body.List, nil)
}

// stmts walks a statement list sequentially, threading the held set through
// it, and returns the set as left at the end of the list.
func (w *walker) stmts(list []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *walker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.expr(e, held)
		}
		for _, e := range s.Lhs {
			held = w.expr(e, held)
		}
		return held
	case *ast.DeclStmt, *ast.EmptyStmt, *ast.ReturnStmt, *ast.BranchStmt, *ast.IncDecStmt, *ast.LabeledStmt:
		if r, ok := s.(*ast.ReturnStmt); ok {
			for _, e := range r.Results {
				held = w.expr(e, held)
			}
		}
		if l, ok := s.(*ast.LabeledStmt); ok {
			return w.stmt(l.Stmt, held)
		}
		return held
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to the end of the
		// function, which is exactly how the held set already models it.
		// Other deferred calls run at return; treat their bodies as
		// lock-free.
		if !unlockFuncs[lint.CalleeFullName(w.pass.TypesInfo, s.Call)] {
			w.expr(s.Call.Fun, nil)
		}
		return held
	case *ast.GoStmt:
		// The goroutine runs on its own stack with nothing held.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.litBody(lit.Body)
		}
		return held
	case *ast.SendStmt:
		held = w.expr(s.Chan, held)
		held = w.expr(s.Value, held)
		if len(held) > 0 {
			w.pass.Reportf(s.Pos(), "channel send while holding %s; a full channel blocks every critical section on that mutex", heldNames(held))
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		held = w.expr(s.Cond, held)
		w.stmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, cloneHeld(held))
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.expr(s.Cond, held)
		}
		w.stmts(s.Body.List, cloneHeld(held))
		return held
	case *ast.RangeStmt:
		held = w.expr(s.X, held)
		w.stmts(s.Body.List, cloneHeld(held))
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
		return held
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm == nil {
					hasDefault = true
				}
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
		if !hasDefault && len(held) > 0 {
			w.pass.Reportf(s.Pos(), "blocking select while holding %s", heldNames(held))
		}
		return held
	case *ast.BlockStmt:
		return w.stmts(s.List, cloneHeld(held))
	default:
		return held
	}
}

// expr walks an expression, processing calls and channel receives.
func (w *walker) expr(e ast.Expr, held []heldLock) []heldLock {
	switch e := e.(type) {
	case nil:
		return held
	case *ast.CallExpr:
		for _, arg := range e.Args {
			held = w.expr(arg, held)
		}
		held = w.expr(e.Fun, held)
		return w.call(e, held)
	case *ast.UnaryExpr:
		held = w.expr(e.X, held)
		if e.Op == token.ARROW && len(held) > 0 {
			w.pass.Reportf(e.Pos(), "channel receive while holding %s", heldNames(held))
		}
		return held
	case *ast.BinaryExpr:
		held = w.expr(e.X, held)
		return w.expr(e.Y, held)
	case *ast.ParenExpr:
		return w.expr(e.X, held)
	case *ast.SelectorExpr:
		return w.expr(e.X, held)
	case *ast.IndexExpr:
		held = w.expr(e.X, held)
		return w.expr(e.Index, held)
	case *ast.SliceExpr:
		held = w.expr(e.X, held)
		held = w.expr(e.Low, held)
		held = w.expr(e.High, held)
		return w.expr(e.Max, held)
	case *ast.StarExpr:
		return w.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = w.expr(el, held)
		}
		return held
	case *ast.KeyValueExpr:
		held = w.expr(e.Key, held)
		return w.expr(e.Value, held)
	case *ast.FuncLit:
		// Analyzed as an independent synthetic function: closures generally
		// run outside the caller's critical section (callbacks, goroutines).
		w.litBody(e.Body)
		return held
	case *ast.TypeAssertExpr:
		return w.expr(e.X, held)
	default:
		return held
	}
}

// call classifies one call: lock, unlock, blocking, or ordinary (recorded
// for the cross-function graph).
func (w *walker) call(call *ast.CallExpr, held []heldLock) []heldLock {
	name := lint.CalleeFullName(w.pass.TypesInfo, call)
	if name == "" {
		return held
	}
	switch {
	case lockFuncs[name]:
		id := w.lockID(call)
		reader := rlockFuncs[name]
		for _, h := range held {
			if h.id != id {
				continue
			}
			if !reader || !h.reader {
				w.pass.Reportf(call.Pos(), "%s acquired while already held (self-deadlock)", id)
			}
		}
		w.fact.acquires = append(w.fact.acquires, lockSite{lock: id, pos: call.Pos()})
		w.fact.calls = append(w.fact.calls, callSite{callee: "lock:" + id, held: lockIDs(held), pos: call.Pos()})
		return append(held, heldLock{id: id, reader: reader})
	case unlockFuncs[name]:
		id := w.lockID(call)
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].id == id {
				return append(held[:i:i], held[i+1:]...)
			}
		}
		return held
	default:
		if name == condWait {
			// Wait atomically releases the Cond's locker while parked, so
			// calling it with exactly one mutex held is the required usage,
			// not a hazard. Any additional mutex stays locked for the whole
			// wait and stalls its critical sections.
			if len(held) > 1 {
				w.pass.Reportf(call.Pos(), "call to sync.Cond.Wait while holding %d mutexes (%s); Wait releases only the Cond's own locker, the rest stay held while parked", len(held), heldNames(held))
			}
			w.fact.calls = append(w.fact.calls, callSite{callee: name, held: lockIDs(held), pos: call.Pos()})
			return held
		}
		if len(held) > 0 {
			if label, ok := blockingFuncs[name]; ok {
				w.pass.Reportf(call.Pos(), "call to %s while holding %s", label, heldNames(held))
			}
		}
		w.fact.calls = append(w.fact.calls, callSite{callee: name, held: lockIDs(held), pos: call.Pos()})
		return held
	}
}

// lockID canonicalizes the mutex a Lock/Unlock call operates on:
// "pkg.Type.field[.field…]" for mutexes reached from a typed value,
// "pkg.var" for package-level mutexes, "fn$name" for locals.
func (w *walker) lockID(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return w.fn + "$anonymous"
	}
	return w.exprLockID(sel.X)
}

func (w *walker) exprLockID(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[e]
		if obj == nil {
			return w.fn + "$" + e.Name
		}
		if obj.Parent() == w.pass.Pkg.Scope() { // package-level mutex
			return w.pass.Pkg.Path() + "." + e.Name
		}
		// Local or parameter: name it after its type when it has one, so
		// `m := &s.mu`-style handles still unify by declared type.
		if tn := lint.TypeFullName(obj.Type()); tn != "" && !strings.HasPrefix(tn, "sync.") {
			return tn
		}
		return w.fn + "$" + e.Name
	case *ast.SelectorExpr:
		base := w.exprLockID(e.X)
		// Prefer the defined type owning the field over the full chain base.
		if tn := lint.TypeFullName(w.pass.TypesInfo.Types[e.X].Type); tn != "" {
			base = tn
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return w.exprLockID(e.X)
	case *ast.IndexExpr:
		return w.exprLockID(e.X) + "[]"
	default:
		return w.fn + "$expr"
	}
}

func cloneHeld(h []heldLock) []heldLock { return append([]heldLock(nil), h...) }

func lockIDs(h []heldLock) []string {
	ids := make([]string, len(h))
	for i, l := range h {
		ids[i] = l.id
	}
	return ids
}

func heldNames(h []heldLock) string { return strings.Join(lockIDs(h), ", ") }

// --- whole-program graph ---------------------------------------------------

type edge struct {
	from, to string
	pos      token.Pos
	via      string
}

func finish(fset *token.FileSet, results []any, report func(lint.Diagnostic)) {
	all := map[string]*funcFact{}
	for _, r := range results {
		for name, ff := range r.(*facts).funcs {
			all[name] = ff
		}
	}
	// Effective acquisitions: fixpoint of direct locks plus callees' locks.
	eff := map[string]map[string]token.Pos{}
	for name, ff := range all {
		m := map[string]token.Pos{}
		for _, a := range ff.acquires {
			m[a.lock] = a.pos
		}
		eff[name] = m
	}
	for changed := true; changed; {
		changed = false
		for name, ff := range all {
			for _, c := range ff.calls {
				for l, p := range eff[c.callee] {
					if _, ok := eff[name][l]; !ok {
						eff[name][l] = p
						changed = true
					}
				}
			}
		}
	}
	// Edges: held → acquired, directly and through static call chains.
	edges := map[string][]edge{}
	addEdge := func(from, to string, pos token.Pos, via string) {
		if from == to {
			return
		}
		edges[from] = append(edges[from], edge{from: from, to: to, pos: pos, via: via})
	}
	var reentrant []edge
	for name, ff := range all {
		for _, c := range ff.calls {
			if len(c.held) == 0 {
				continue
			}
			if lock, ok := strings.CutPrefix(c.callee, "lock:"); ok {
				for _, h := range c.held {
					addEdge(h, lock, c.pos, "")
				}
				continue
			}
			for l := range eff[c.callee] {
				for _, h := range c.held {
					if h == l {
						reentrant = append(reentrant, edge{from: h, to: l, pos: c.pos, via: c.callee})
						continue
					}
					addEdge(h, l, c.pos, c.callee)
				}
			}
			_ = name
		}
	}
	for _, e := range reentrant {
		report(lint.Diagnostic{Pos: e.pos, Message: fmt.Sprintf("%s may be acquired again through call to %s while already held (self-deadlock)", e.from, shortFunc(e.via))})
	}
	reportCycles(edges, report)
}

// reportCycles finds and reports each lock-order cycle once.
func reportCycles(edges map[string][]edge, report func(lint.Diagnostic)) {
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	seen := map[string]bool{}
	for _, start := range nodes {
		// DFS bounded to simple cycles through start.
		var path []edge
		var dfs func(cur string, visited map[string]bool) bool
		dfs = func(cur string, visited map[string]bool) bool {
			for _, e := range edges[cur] {
				if e.to == start {
					path = append(path, e)
					return true
				}
				if visited[e.to] {
					continue
				}
				visited[e.to] = true
				path = append(path, e)
				if dfs(e.to, visited) {
					return true
				}
				path = path[:len(path)-1]
			}
			return false
		}
		if dfs(start, map[string]bool{start: true}) {
			var names []string
			for _, e := range path {
				names = append(names, e.from)
			}
			names = append(names, start)
			key := canonicalCycle(names)
			if !seen[key] {
				seen[key] = true
				var via string
				if path[0].via != "" {
					via = fmt.Sprintf(" (via %s)", shortFunc(path[0].via))
				}
				report(lint.Diagnostic{
					Pos:     path[0].pos,
					Message: fmt.Sprintf("lock order cycle: %s%s; acquiring these mutexes in inconsistent order can deadlock", strings.Join(names, " -> "), via),
				})
			}
		}
	}
}

// canonicalCycle keys a cycle independent of its starting node.
func canonicalCycle(names []string) string {
	ring := names[:len(names)-1]
	best := ""
	for i := range ring {
		var rot []string
		rot = append(rot, ring[i:]...)
		rot = append(rot, ring[:i]...)
		k := strings.Join(rot, "->")
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func shortFunc(full string) string {
	if i := strings.LastIndex(full, "/"); i >= 0 {
		return full[i+1:]
	}
	return full
}
