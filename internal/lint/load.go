package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// ExportIndex maps import paths to compiled export-data files, the oracle a
// gc importer needs to type-check source against already-built dependencies.
type ExportIndex struct {
	exports map[string]string
	// importMap holds per-package import rewrites (vendoring); flattened,
	// since a module build has at most one mapping per path.
	importMap map[string]string
}

// Lookup returns a reader for the export data of path, for use with
// importer.ForCompiler.
func (x *ExportIndex) Lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := x.importMap[path]; ok {
		path = mapped
	}
	e, ok := x.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(e)
}

// goList runs `go list -export -deps -json` in dir over patterns and returns
// the decoded packages.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,ImportMap,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadExportIndex builds the export index for patterns (and all their
// dependencies), resolved relative to dir.
func LoadExportIndex(dir string, patterns ...string) (*ExportIndex, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	x := &ExportIndex{exports: map[string]string{}, importMap: map[string]string{}}
	for _, p := range pkgs {
		if p.Export != "" {
			x.exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			x.importMap[from] = to
		}
	}
	return x, nil
}

var (
	indexMu    sync.Mutex
	indexCache = map[string]*ExportIndex{}
)

// CachedExportIndex is LoadExportIndex behind a process-wide cache keyed on
// dir and patterns, so every analyzer test in one binary shares a single `go
// list -export -deps` invocation instead of re-listing the module per
// analyzer. The index only names build-cache files, which outlive the call.
func CachedExportIndex(dir string, patterns ...string) (*ExportIndex, error) {
	key := dir + "\x00" + strings.Join(patterns, "\x00")
	indexMu.Lock()
	defer indexMu.Unlock()
	if x, ok := indexCache[key]; ok {
		return x, nil
	}
	x, err := LoadExportIndex(dir, patterns...)
	if err != nil {
		return nil, err
	}
	indexCache[key] = x
	return x, nil
}

// Load lists patterns relative to dir, type-checks every non-dependency
// match from source against the build cache's export data, and returns the
// loaded packages in load order. All packages share fset.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	x := &ExportIndex{exports: map[string]string{}, importMap: map[string]string{}}
	var targets []*listedPkg
	for _, p := range listed {
		if p.Export != "" {
			x.exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			x.importMap[from] = to
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	var out []*Package
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := CheckPackage(fset, t.ImportPath, t.Dir, files, x)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// CheckPackage parses and type-checks one package from the given source
// files, resolving imports through the export index.
func CheckPackage(fset *token.FileSet, path, dir string, filenames []string, x *ExportIndex) (*Package, error) {
	return CheckPackageDeps(fset, path, dir, filenames, x, nil)
}

// CheckPackageDeps is CheckPackage with an extra set of already-checked
// source packages that imports may resolve against before the export index.
// linttest uses it to let one fixture package import another (hotalloc's
// cross-package fact propagation), which the build cache knows nothing
// about.
func CheckPackageDeps(fset *token.FileSet, path, dir string, filenames []string, x *ExportIndex, deps map[string]*types.Package) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	imp := types.Importer(importer.ForCompiler(fset, "gc", x.Lookup))
	if len(deps) > 0 {
		imp = &chainImporter{first: deps, rest: imp}
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// chainImporter resolves imports from an in-memory package map first, then
// falls back to the export-data importer.
type chainImporter struct {
	first map[string]*types.Package
	rest  types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.first[path]; ok {
		return p, nil
	}
	return c.rest.Import(path)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.first[path]; ok {
		return p, nil
	}
	if from, ok := c.rest.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return c.rest.Import(path)
}
