package hotalloc_test

import (
	"testing"

	"desis/internal/lint/hotalloc"
	"desis/internal/lint/linttest"
)

// dep is loaded first so hot can import it: the facts computed for dep's
// helpers must surface at hot's annotated call sites (cross-package
// propagation, which the standalone driver and linttest both provide).
func TestHotAlloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "dep", "hot")
}
