// Package hot exercises the //desis:hotpath zero-allocation contract:
// every flagged construct, the allowed ones, and call-site reporting for
// allocating callees both in-package and across packages.
package hot

import "dep"

type sample struct {
	key uint32
	val float64
}

func sink(v any) {}

func note(s string) {}

// Record is the canonical hot path: appends, arithmetic, calls to clean
// helpers, and index writes into preallocated state are all fine.
//
//desis:hotpath
func Record(buf []byte, counts map[uint32]int, s sample) []byte {
	buf = append(buf, byte(s.key))
	buf = dep.Clean(buf, byte(s.key>>8))
	counts[s.key]++
	return buf
}

// Offenders trips every direct rule.
//
//desis:hotpath
func Offenders(k uint32, name string, ps *[]sample) {
	ids := []uint32{k}          // want `slice literal on //desis:hotpath function hot\.Offenders`
	idx := map[uint32]int{}     // want `map literal on //desis:hotpath function hot\.Offenders`
	scratch := make([]byte, 16) // want `make on //desis:hotpath function hot\.Offenders`
	one := new(sample)          // want `new on //desis:hotpath function hot\.Offenders`
	two := &sample{key: k}      // want `heap-allocated composite literal on //desis:hotpath function hot\.Offenders`
	cb := func() { sink(nil) }  // want `function literal \(closure capture\) on //desis:hotpath function hot\.Offenders`
	go helper()                 // want `go statement \(new goroutine\) on //desis:hotpath function hot\.Offenders`
	tag := "k=" + name          // want `string concatenation on //desis:hotpath function hot\.Offenders`
	raw := []byte(name)         // want `string conversion \(copies the bytes\) on //desis:hotpath function hot\.Offenders`
	sink(k)                     // want `interface boxing of a non-pointer value on //desis:hotpath function hot\.Offenders`
	note(string(rune(k)) + tag) // want `string concatenation on //desis:hotpath function hot\.Offenders`
	_, _, _, _, _, _, _ = ids, idx, scratch, one, two, cb, raw
}

// helper is clean (append only), so calling it is fine.
func helper() {}

// allocHelper allocates; unannotated, so it is only reported through its
// hotpath callers.
func allocHelper() map[int]int {
	return map[int]int{}
}

// Callers shows call-site attribution: in-package, cross-package, and a
// two-deep chain, each naming the root cause; clean and excused callees
// pass.
//
//desis:hotpath
func Callers(buf []byte) []byte {
	_ = allocHelper()       // want `call on //desis:hotpath function hot\.Callers allocates: map literal in hot\.allocHelper at .*hot\.go`
	_ = dep.Alloc()         // want `call on //desis:hotpath function hot\.Callers allocates: slice literal in dep\.Alloc at .*dep\.go`
	_ = dep.Deep()          // want `call on //desis:hotpath function hot\.Callers allocates: slice literal in dep\.Alloc at .*dep\.go`
	_ = dep.Excused(4)      // excused at the source: no finding here
	_ = dep.ExcusedCall()   // excused one call deep: the marker is transitive
	buf = dep.Clean(buf, 1) // clean callee
	return Record(buf, nil, sample{})
}

// cold allocates freely: no annotation, no findings.
func cold() *sample {
	all := make([]sample, 0, 8)
	_ = all
	return &sample{}
}
