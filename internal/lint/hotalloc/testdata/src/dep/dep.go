// Package dep provides helpers for the cross-package fact-propagation
// fixture: none are annotated, so nothing is reported here, but their
// allocation facts flow to the hot package's call sites.
package dep

// Alloc allocates; hotpath callers are reported at their call site with
// this function named as the root cause.
func Alloc() []int {
	return []int{1, 2, 3}
}

// Deep allocates only through Alloc: the chain is followed.
func Deep() []int {
	return Alloc()
}

// Clean only appends into the caller's buffer.
func Clean(buf []byte, b byte) []byte {
	return append(buf, b)
}

// Excused grows a pool on miss; the justified marker keeps the allocation
// out of propagation so hotpath callers stay clean.
func Excused(n int) []int {
	//lint:ignore hotalloc fixture: pool-miss growth path, amortized to zero in steady state
	return make([]int, n)
}

// ExcusedCall excuses a call rather than an allocation site: the marker
// vouches for everything behind Deep, so the Alloc chain propagates neither
// here nor to hotpath callers of ExcusedCall.
func ExcusedCall() []int {
	//lint:ignore hotalloc fixture: debug-only verification, compiled out of release builds
	return Deep()
}
