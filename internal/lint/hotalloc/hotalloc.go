// Package hotalloc enforces the zero-allocation contract on functions
// annotated //desis:hotpath: the per-event ingest path, the telemetry
// record methods, and the batch encoder. Desis's throughput story (§6.2)
// rests on these paths running allocation-free in steady state — one
// fmt.Sprintf or escaping closure on the event path turns into GC pressure
// at millions of events per second, and nothing but a benchmark regression
// would say so.
//
// On an annotated function the analyzer flags heap-allocating constructs:
//
//   - slice, map, and &composite literals, make, and new;
//   - function literals (closure capture) and go statements;
//   - calls into fmt, log, and errors (formatting always allocates);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - interface boxing: passing a non-pointer-shaped concrete value
//     (struct, string, slice, number) where a parameter is an interface;
//   - calls to any function the analyzer has determined allocates, with
//     the root cause named — facts propagate through callees, so a
//     hotpath function calling an allocating helper is reported at the
//     call site, not silently excused.
//
// Deliberately allowed: append (growth is amortized into a caller-owned
// buffer the pools recycle), defer (open-coded since Go 1.13), map reads
// and writes to preallocated tables, and calls that cannot be resolved
// statically (interface methods, func values) — the contract covers the
// static call graph.
//
// A construct excused with `//lint:ignore hotalloc <reason>` (a pool-miss
// growth path, a cold branch) is also excluded from propagation, so one
// justified allocation does not poison every caller.
//
// Facts cross package boundaries in the standalone driver and in linttest,
// which load whole dependency sets; under `go vet -vettool` each package
// is a separate process, so propagation there is intra-package (the
// standalone CI run is the strict one).
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"desis/internal/lint"
)

// Analyzer is the hot-path allocation pass.
var Analyzer = &lint.Analyzer{
	Name:   "hotalloc",
	Doc:    "functions annotated //desis:hotpath must not allocate, directly or through any statically-resolved callee",
	Run:    run,
	Finish: finish,
}

// allocSite is one allocating construct.
type allocSite struct {
	pos  token.Pos
	what string
}

// callSite is one statically resolved call.
type callSite struct {
	pos  token.Pos
	full string
}

// funcInfo is the per-function fact: what it allocates and whom it calls.
type funcInfo struct {
	full    string
	pos     token.Pos
	hotpath bool
	allocs  []allocSite
	calls   []callSite
}

// result carries one package's facts to Finish.
type result struct {
	funcs []*funcInfo
}

// allocPkgs always allocate: formatting and error construction.
var allocPkgs = map[string]bool{"fmt": true, "log": true, "errors": true}

func run(pass *lint.Pass) (any, error) {
	ignores := lint.CollectSuppressions(pass.Fset, pass.Files, nil, nil)
	res := &result{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &funcInfo{
				full:    fn.FullName(),
				pos:     fd.Name.Pos(),
				hotpath: lint.HasDirective(fd.Doc, "//desis:hotpath"),
			}
			s := &scanner{pass: pass, ignores: ignores, info: info}
			s.scan(fd.Body)
			res.funcs = append(res.funcs, info)
		}
	}
	return res, nil
}

// scanner walks one function body recording allocation sites and calls.
type scanner struct {
	pass    *lint.Pass
	ignores lint.SuppressionIndex
	info    *funcInfo
}

// add records an allocating construct unless an //lint:ignore hotalloc
// marker excuses it (which also keeps it out of fact propagation).
func (s *scanner) add(pos token.Pos, what string) {
	if s.ignores.Covers(s.pass.Fset, "hotalloc", pos) {
		return
	}
	s.info.allocs = append(s.info.allocs, allocSite{pos: pos, what: what})
}

func (s *scanner) scan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The literal itself is the allocation; its body belongs to
			// the closure, not to this function's contract.
			s.add(n.Pos(), "function literal (closure capture)")
			return false
		case *ast.GoStmt:
			s.add(n.Pos(), "go statement (new goroutine)")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					s.add(n.Pos(), "heap-allocated composite literal")
					return false
				}
			}
		case *ast.CompositeLit:
			switch s.typeOf(n).(type) {
			case *types.Slice:
				s.add(n.Pos(), "slice literal")
			case *types.Map:
				s.add(n.Pos(), "map literal")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if b, ok := s.typeOf(n).(*types.Basic); ok && b.Info()&types.IsString != 0 {
					s.add(n.Pos(), "string concatenation")
				}
			}
		case *ast.CallExpr:
			s.scanCall(n)
		}
		return true
	})
}

func (s *scanner) typeOf(e ast.Expr) types.Type {
	t := s.pass.TypesInfo.Types[e].Type
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func (s *scanner) scanCall(call *ast.CallExpr) {
	info := s.pass.TypesInfo
	// Conversions: only string<->[]byte/[]rune copies allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && stringBytesConversion(tv.Type, info.Types[call.Args[0]].Type) {
			s.add(call.Pos(), "string conversion (copies the bytes)")
		}
		return
	}
	// Builtins: make and new allocate; append is allowed (amortized into a
	// caller-owned, pool-recycled buffer).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				s.add(call.Pos(), "make")
			case "new":
				s.add(call.Pos(), "new")
			}
			return
		}
	}
	if fn := lint.Callee(info, call); fn != nil {
		if pkg := fn.Pkg(); pkg != nil && allocPkgs[pkg.Path()] {
			s.add(call.Pos(), fmt.Sprintf("call to %s.%s", pkg.Name(), fn.Name()))
		} else if !s.ignores.Covers(s.pass.Fset, "hotalloc", call.Pos()) {
			// An excused call is excused transitively: the marker vouches
			// for everything behind the call, so it neither reports here
			// nor propagates into callers of this function.
			s.info.calls = append(s.info.calls, callSite{pos: call.Pos(), full: fn.FullName()})
		}
	}
	// Interface boxing of non-pointer-shaped arguments.
	sig, ok := s.typeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || boxesWithoutAlloc(at) {
			continue
		}
		s.add(arg.Pos(), "interface boxing of a non-pointer value")
	}
}

// paramType resolves the declared type of argument i, unrolling variadics;
// nil when the call spreads a slice with `...` (no per-element boxing).
func paramType(sig *types.Signature, i int, spread bool) types.Type {
	params := sig.Params()
	last := params.Len() - 1
	if sig.Variadic() && i >= last {
		if spread {
			return nil
		}
		sl, ok := params.At(last).Type().Underlying().(*types.Slice)
		if !ok {
			return nil
		}
		return sl.Elem()
	}
	if i > last {
		return nil
	}
	return params.At(i).Type()
}

// stringBytesConversion reports whether converting src to dst copies the
// backing bytes: string<->[]byte and string<->[]rune both do.
func stringBytesConversion(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	if isString(dst) {
		sl, ok := src.Underlying().(*types.Slice)
		return ok && isByteOrRune(sl.Elem())
	}
	if sl, ok := dst.Underlying().(*types.Slice); ok && isByteOrRune(sl.Elem()) {
		return isString(src)
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxesWithoutAlloc reports whether a value of type t fits an interface's
// data word without a heap copy: pointers and pointer-shaped reference
// types do, interfaces re-wrap, untyped nil is free.
func boxesWithoutAlloc(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UntypedNil
	}
	return false
}

// finish joins every package's facts and reports, for each //desis:hotpath
// function, its direct allocations and every call whose callee chain
// allocates, naming the root cause.
func finish(fset *token.FileSet, results []any, report func(lint.Diagnostic)) {
	byName := map[string]*funcInfo{}
	var all []*funcInfo
	for _, r := range results {
		for _, fi := range r.(*result).funcs {
			byName[fi.full] = fi
			all = append(all, fi)
		}
	}
	g := &graph{byName: byName, causes: map[string]*cause{}}
	for _, fi := range all {
		if !fi.hotpath {
			continue
		}
		for _, a := range fi.allocs {
			report(lint.Diagnostic{Pos: a.pos, Message: fmt.Sprintf(
				"%s on //desis:hotpath function %s", a.what, short(fi.full))})
		}
		for _, c := range fi.calls {
			callee, ok := byName[c.full]
			if !ok {
				continue // outside the loaded set: assumed clean
			}
			if root := g.allocCause(callee, map[string]bool{fi.full: true}); root != nil {
				report(lint.Diagnostic{Pos: c.pos, Message: fmt.Sprintf(
					"call on //desis:hotpath function %s allocates: %s in %s at %s",
					short(fi.full), root.what, short(root.in), fset.Position(root.pos))})
			}
		}
	}
}

// cause is the root allocation explaining why a function is not
// allocation-free.
type cause struct {
	in   string
	what string
	pos  token.Pos
}

type graph struct {
	byName map[string]*funcInfo
	causes map[string]*cause
}

// allocCause returns the first allocation reachable from fi through the
// static call graph, memoized; nil means allocation-free.
func (g *graph) allocCause(fi *funcInfo, visiting map[string]bool) *cause {
	if c, done := g.causes[fi.full]; done {
		return c
	}
	if visiting[fi.full] {
		return nil // cycle: resolved by whichever frame finishes first
	}
	visiting[fi.full] = true
	defer delete(visiting, fi.full)
	var found *cause
	if len(fi.allocs) > 0 {
		a := fi.allocs[0]
		found = &cause{in: fi.full, what: a.what, pos: a.pos}
	} else {
		// Deterministic search order regardless of package load order.
		calls := append([]callSite(nil), fi.calls...)
		sort.Slice(calls, func(i, j int) bool { return calls[i].full < calls[j].full })
		for _, c := range calls {
			callee, ok := g.byName[c.full]
			if !ok {
				continue
			}
			if root := g.allocCause(callee, visiting); root != nil {
				found = root
				break
			}
		}
	}
	g.causes[fi.full] = found
	return found
}

// short reduces a full function name's package path to its base for
// diagnostics: "(*desis/internal/core.groupState).process" ->
// "(*core.groupState).process".
func short(full string) string {
	prefix, rest := "", full
	for strings.HasPrefix(rest, "(") || strings.HasPrefix(rest, "*") {
		prefix, rest = prefix+rest[:1], rest[1:]
	}
	if i := strings.LastIndexByte(rest, '/'); i >= 0 {
		rest = rest[i+1:]
	}
	return prefix + rest
}
