// Package lint is a self-contained static-analysis framework for the Desis
// tree, shaped after golang.org/x/tools/go/analysis so the project-specific
// analyzers (noretain, lockorder, sliceinvariant) could migrate to the real
// framework unchanged if the dependency ever becomes available. It is built
// entirely on the standard library: packages are loaded through `go list
// -export` and type-checked against the build cache's export data, which
// works offline and needs nothing outside the Go toolchain.
//
// Two drivers share the framework: the standalone multichecker
// (cmd/desis-lint, over `./...`-style patterns) and a `go vet -vettool`
// unit checker speaking cmd/go's vet protocol (unitchecker.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the analyzer to one package. It may report diagnostics
	// through the pass and may return a package-level result for Finish.
	Run func(*Pass) (any, error)
	// Finish, when non-nil, runs after every package was analyzed, with the
	// non-nil results of all Run calls (in load order). Whole-program
	// analyses (the lock-order graph) report their cross-package
	// diagnostics here. Under `go vet -vettool` each package is a separate
	// process, so Finish sees a single package's result there; the
	// standalone driver gives it the whole pattern set.
	Finish func(fset *token.FileSet, results []any, report func(Diagnostic))
}

// Pass holds the inputs and outputs of one analyzer applied to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// report receives diagnostics; drivers install it.
	report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RunAnalyzers applies every analyzer to every package (then the Finish
// hooks) and returns the diagnostics, minus any covered by a justified
// //lint:ignore marker, sorted by file position. Analyzer errors abort the
// run.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := SuppressionIndex{}
	for _, pkg := range pkgs {
		ignores = CollectSuppressions(fset, pkg.Files, ignores, func(d Diagnostic) { diags = append(diags, d) })
	}
	for _, a := range analyzers {
		var results []any
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			if res != nil {
				results = append(results, res)
			}
		}
		if a.Finish != nil {
			a.Finish(fset, results, func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			})
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ignores.Covers(fset, d.Analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	// Zero the dead tail so suppressed diagnostics (and their message
	// strings) do not linger past len.
	clear(diags[len(kept):])
	diags = kept
	// Sort by resolved position, not raw token.Pos: token offsets depend on
	// file-registration order in the FileSet, which varies between drivers,
	// while filename/line/column is stable for CI diffing.
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// CalleeFullName resolves the called function of a call expression to its
// types.Func full name — e.g. "(*sync.Pool).Put",
// "(desis/internal/message.Conn).Send", "time.Sleep" — or "" when the callee
// is not a statically known function or method (indirect calls, builtins,
// conversions).
func CalleeFullName(info *types.Info, call *ast.CallExpr) string {
	fn := Callee(info, call)
	if fn == nil {
		return ""
	}
	return fn.FullName()
}

// Callee returns the *types.Func a call statically resolves to, or nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// NamedOf unwraps pointers and aliases to the defined (named) type of t, or
// nil when t has none (basic types, unnamed composites).
func NamedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// TypeFullName renders the defined type of t as "pkgpath.Name" ("" when t
// has no defined type).
func TypeFullName(t types.Type) string {
	n := NamedOf(t)
	if n == nil {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// EnclosingFuncName names the function declaration enclosing pos within
// file, as "Func" or "Type.Method" (receiver pointer stripped); "" at file
// scope.
func EnclosingFuncName(file *ast.File, pos token.Pos) string {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			return fd.Name.Name
		}
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = ix.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
		return fd.Name.Name
	}
	return ""
}
