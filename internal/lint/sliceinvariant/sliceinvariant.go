// Package sliceinvariant enforces the engine's slicing contracts: the
// structural invariants the assembly indexes (two-stacks in
// internal/core/swag.go, DABA-Lite in internal/core/daba.go) and the
// closed-slice ring rest on are only maintained if mutation stays
// confined to the documented mutation points. The analyzer guards the state
// fields of core.groupState, core.sliceRec, core.sliceIndex, core.dabaIndex,
// the identity
// fields of core.SlicePartial, the shared query.Group descriptor, and the
// epoch-versioned plan.Plan catalog, and the key-space tier's sharded
// instance maps and free lists (internal/core/keyspace.go): every
// assignment, compound assignment, increment/decrement, or address-taking of
// a guarded field outside its allow-listed writer functions is reported.
// Writes *through* a guarded map or slice field — `x.m[k] = v`,
// `delete(x.m, k)`, `x.s[i]++` — count as writes to the field; taking the
// address of an element (`&x.s[i]`) does not, so read-side shard-pointer
// access stays out of scope.
//
// Slice ids must be monotone: counters marked as such may be incremented
// anywhere in the owning package, but may never be decremented and may only
// be assigned wholesale by their allow-listed writers (snapshot restore).
//
// The guard table is data (Rules); tests install a table targeting their
// own fixture types to exercise the machinery, and the default table runs
// clean on the tree — any new mutation point must either be added here
// deliberately (a reviewed API change) or refactored through the existing
// ones.
package sliceinvariant

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"desis/internal/lint"
)

// Rule guards the fields of one type.
type Rule struct {
	// Type is the guarded defined type, "pkgpath.Name".
	Type string
	// Fields lists the guarded field names; empty guards every field.
	Fields []string
	// AllowPkgs are package paths whose functions may write freely.
	AllowPkgs []string
	// AllowFuncs are "pkgpath:Func" or "pkgpath:Type.Method" writer names.
	AllowFuncs []string
	// AllowRecvType permits every method whose receiver is this defined
	// type ("pkgpath.Name") — e.g. sliceIndex state is writable only by
	// sliceIndex methods.
	AllowRecvType string
	// MonotoneCounter permits `field++` anywhere in the type's own package
	// (ids grow monotonically); all other writes still need an allowance.
	MonotoneCounter bool
	// Message explains the contract in diagnostics.
	Message string
}

const (
	corePkg = "desis/internal/core"
	planPkg = "desis/internal/plan"
)

// DefaultRules is the guard table for the Desis tree.
var DefaultRules = []Rule{
	{
		Type:          corePkg + ".sliceIndex",
		AllowRecvType: corePkg + ".sliceIndex",
		Message:       "the prefix/suffix assembly index is derived state owned by its own methods (swag.go); mutate the ring and let the index rebuild",
	},
	{
		Type:          corePkg + ".dabaIndex",
		AllowRecvType: corePkg + ".dabaIndex",
		Message:       "the DABA-Lite sweeps are derived state owned by their own methods (daba.go); mutate the ring and let appendSlice/commitLate keep the sweeps in step",
	},
	{
		Type:   corePkg + ".groupState",
		Fields: []string{"closed"},
		AllowFuncs: []string{
			corePkg + ":groupState.closeSlice",
			corePkg + ":groupState.prune",
			corePkg + ":groupState.restore",
			corePkg + ":groupState.restoreBody",
			// Out-of-order commit splices a late slice into ring order and
			// immediately notifies the assembly index (commitLate).
			corePkg + ":groupState.insertLateSlice",
			// The factor-window optimizer appends a feeder's merged
			// super-slices to the fed ring through the same append
			// discipline closeSlice uses (acceptSuper).
			corePkg + ":groupState.acceptSuper",
			// Eviction drops the ring after snapshotting it; the revive
			// rebuilds it through restoreBody.
			corePkg + ":Engine.reclaim",
		},
		Message: "the closed-slice ring is appended by closeSlice, truncated by prune, spliced by insertLateSlice, and rebuilt by restore; writes elsewhere desynchronize the assembly index",
	},
	{
		Type:   corePkg + ".groupState",
		Fields: []string{"cur"},
		AllowFuncs: []string{
			corePkg + ":groupState.start",
			corePkg + ":groupState.closeSlice",
			corePkg + ":groupState.snapshot",
			corePkg + ":groupState.restore",
			corePkg + ":groupState.restoreBody",
		},
		Message: "the open slice is owned by the slicing path (start/closeSlice) and the snapshot code",
	},
	{
		Type:            corePkg + ".groupState",
		Fields:          []string{"nextSliceID"},
		MonotoneCounter: true,
		AllowFuncs: []string{
			corePkg + ":groupState.restore",
			corePkg + ":groupState.restoreBody",
		},
		Message: "slice ids are monotone: nextSliceID only grows (it may be incremented, or restored from a snapshot)",
	},
	{
		Type: corePkg + ".sliceRec",
		AllowFuncs: []string{
			corePkg + ":groupState.process",
			corePkg + ":groupState.closeSlice",
			corePkg + ":groupState.prune",
			corePkg + ":readSlice",
			// Plan reconciliation re-provisions the *open* slice's aggregate
			// row after widening the operator mask (administrative punctuation
			// closes the old slice first).
			corePkg + ":Engine.syncGroup",
			// Eviction detaches the aggregate rows into the engine free
			// lists before the records themselves are dropped.
			corePkg + ":Engine.reclaim",
		},
		Message: "closed-slice records are immutable outside the slicing path; the assembly index and window gathering assume their extents and aggregates never change",
	},
	{
		Type:   corePkg + ".SlicePartial",
		Fields: []string{"ID", "Group"},
		// The wire decoders materialize received partials, so the message
		// package writes identities by construction.
		AllowPkgs: []string{"desis/internal/message"},
		AllowFuncs: []string{
			corePkg + ":groupState.stagePartial",
			corePkg + ":groupState.emptyPartial",
			corePkg + ":groupState.getPartial",
			// The engine free list re-stamps a recycled partial's group
			// before handing it to an install.
			corePkg + ":Engine.takePartial",
		},
		Message: "a partial's identity (group, slice id) is assigned once when it is staged or decoded; ids are monotone per (node, group)",
	},
	{
		Type: "desis/internal/query.Group",
		// Group descriptors are forged by query.Analyze/Place and evolved
		// only by the plan package's delta application (including the wire
		// decoder materialising a received plan), so every node derives the
		// same groups from the same delta sequence.
		AllowPkgs: []string{"desis/internal/query", planPkg},
		Message:   "shared query-group descriptors are mutated only by query analysis and plan-delta application (so every node derives the same groups)",
	},
	{
		Type:       corePkg + ".Engine",
		Fields:     []string{"shards"},
		AllowFuncs: []string{corePkg + ":NewFromPlan"},
		Message:    "the instance-shard table is sized once at construction; keys route by instShardOf, so replacing or resizing it at runtime would strand resident and parked keys",
	},
	{
		Type:   corePkg + ".Engine",
		Fields: []string{"byID", "byIDPeak"},
		AllowFuncs: []string{
			corePkg + ":NewFromPlan",
			corePkg + ":Engine.install",
			corePkg + ":Engine.evictKey",
			corePkg + ":Engine.shrinkIndexes",
		},
		Message: "the group-id index is maintained by the instance lifecycle (install adds, evictKey deletes, shrinkIndexes reallocates); writes elsewhere desynchronize it from the shard maps and the lifecycle counters",
	},
	{
		Type:   corePkg + ".Engine",
		Fields: []string{"ordered", "orderedStale"},
		AllowFuncs: []string{
			corePkg + ":Engine.orderedGroups",
			corePkg + ":Engine.install",
			corePkg + ":Engine.evictKey",
		},
		Message: "the ordered-iteration cache is derived from byID: lifecycle changes mark it stale, orderedGroups rebuilds it; writing it elsewhere breaks the deterministic AdvanceTo/Snapshot order revives depend on",
	},
	{
		Type:   corePkg + ".Engine",
		Fields: []string{"aggFree", "partialFree"},
		AllowFuncs: []string{
			corePkg + ":Engine.freeAggs",
			corePkg + ":Engine.reclaim",
			corePkg + ":Engine.takeAggRow",
			corePkg + ":Engine.takePartial",
		},
		Message: "the engine free lists recycle evicted keys' pooled memory; only the reclaim/take pairs may touch them, or a row could be handed out twice",
	},
	{
		Type:   corePkg + ".Engine",
		Fields: []string{"tmplKeys"},
		AllowFuncs: []string{
			corePkg + ":Engine.Apply",
			corePkg + ":Engine.syncPlan",
			corePkg + ":Engine.instantiateTemplates",
		},
		Message: "the seen-key set grows when templates instantiate and is dropped when the last template leaves the catalog; writes elsewhere reintroduce the unbounded-growth leak",
	},
	{
		Type: corePkg + ".instShard",
		AllowFuncs: []string{
			corePkg + ":NewFromPlan",
			corePkg + ":Engine.install",
			corePkg + ":Engine.evictKey",
			corePkg + ":Engine.reviveKey",
			corePkg + ":Engine.shrinkIndexes",
		},
		Message: "a shard's resident and parked maps are mutated only by the key lifecycle (install/evict/revive/shrink); a key must never be live and parked at once",
	},
	{
		Type:       corePkg + ".keyEntry",
		Fields:     []string{"groups"},
		AllowFuncs: []string{corePkg + ":Engine.install"},
		Message:    "a key's group list is append-only through install, in ascending group-id order; eviction snapshots and revives replay that order",
	},
	{
		Type: planPkg + ".Plan",
		// The execution plan is the single source of truth for every tier;
		// the only mutation mechanism is minting a delta and funneling it
		// through Plan.Apply (or decoding a full plan off the wire), both of
		// which live in the plan package. Writes anywhere else would let one
		// tier's catalog drift from the delta sequence the others replay.
		AllowPkgs: []string{planPkg},
		Message:   "the execution plan is immutable outside the plan package: mint a delta and funnel it through Plan.Apply so every tier derives identical state",
	},
}

// Analyzer is the sliceinvariant pass over the default guard table.
var Analyzer = NewAnalyzer(DefaultRules)

// NewAnalyzer builds a sliceinvariant pass over a custom guard table
// (used by the analyzer's own tests).
func NewAnalyzer(rules []Rule) *lint.Analyzer {
	return &lint.Analyzer{
		Name: "sliceinvariant",
		Doc:  "flag writes to slice/window state outside the documented mutation points and non-monotone slice-id updates",
		Run: func(pass *lint.Pass) (any, error) {
			run(pass, rules)
			return nil, nil
		},
	}
}

func run(pass *lint.Pass, rules []Rule) {
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue // tests may poke internals to build fixtures
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(pass, rules, file, lhs, n.Pos(), "assigned", true)
				}
			case *ast.IncDecStmt:
				verb := "incremented"
				if n.Tok == token.DEC {
					verb = "decremented"
				}
				checkWrite(pass, rules, file, n.X, n.Pos(), verb, true)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					// Taking the address of a guarded field hands out a
					// mutable alias; only allow-listed writers may do it.
					// Elements are not peeled here: &x.s[i] aliases one
					// entry, the read-side access pattern for shards.
					checkWrite(pass, rules, file, n.X, n.Pos(), "aliased (&)", false)
				}
			case *ast.CallExpr:
				// delete(x.m, k) mutates the guarded map exactly like an
				// element assignment does.
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 2 {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
						checkWrite(pass, rules, file, n.Args[0], n.Pos(), "shrunk by delete", true)
					}
				}
			}
			return true
		})
	}
}

// checkWrite resolves lhs as a guarded-field access and reports it when the
// enclosing function is not an allowed writer. With peelIndex set, writes
// through index expressions (`x.m[k] = v`, `x.s[i]++`) resolve to the
// indexed field: mutating a guarded map's or slice's contents is mutating
// the field.
func checkWrite(pass *lint.Pass, rules []Rule, file *ast.File, lhs ast.Expr, pos token.Pos, verb string, peelIndex bool) {
	expr := ast.Unparen(lhs)
	for peelIndex {
		idx, ok := expr.(*ast.IndexExpr)
		if !ok {
			break
		}
		expr = ast.Unparen(idx.X)
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	ownerType := lint.TypeFullName(selection.Recv())
	field := sel.Sel.Name
	for i := range rules {
		r := &rules[i]
		if r.Type != ownerType || !r.guards(field) {
			continue
		}
		if allowed(pass, r, file, pos, verb) {
			continue
		}
		pass.Reportf(pos, "%s.%s %s outside its documented mutation points: %s", shortType(ownerType), field, verb, r.Message)
	}
}

func (r *Rule) guards(field string) bool {
	if len(r.Fields) == 0 {
		return true
	}
	for _, f := range r.Fields {
		if f == field {
			return true
		}
	}
	return false
}

func allowed(pass *lint.Pass, r *Rule, file *ast.File, pos token.Pos, verb string) bool {
	pkgPath := pass.Pkg.Path()
	for _, p := range r.AllowPkgs {
		if p == pkgPath {
			return true
		}
	}
	if r.MonotoneCounter && verb == "incremented" && pkgPath == ownerPkg(r.Type) {
		return true
	}
	fn := lint.EnclosingFuncName(file, pos)
	if fn == "" {
		return false
	}
	qualified := pkgPath + ":" + fn
	for _, f := range r.AllowFuncs {
		if f == qualified {
			return true
		}
	}
	if r.AllowRecvType != "" {
		if i := strings.Index(fn, "."); i > 0 && pkgPath+"."+fn[:i] == r.AllowRecvType {
			return true
		}
	}
	return false
}

func ownerPkg(typeName string) string {
	if i := strings.LastIndex(typeName, "."); i > 0 {
		return typeName[:i]
	}
	return typeName
}

func shortType(full string) string {
	if i := strings.LastIndex(full, "/"); i >= 0 {
		return full[i+1:]
	}
	return full
}
