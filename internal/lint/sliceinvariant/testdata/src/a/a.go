// Package a seeds sliceinvariant violations against fixture types guarded
// by the rules table the test installs (the real guarded types live
// unexported in internal/core).
package a

type ring struct {
	closed []int
	cur    int
	nextID uint64
}

func (r *ring) closeSlice() {
	r.closed = append(r.closed, r.cur) // ok: allow-listed writer
	r.cur = 0                          // ok: allow-listed writer
	r.nextID++                         // ok: monotone counter in its own package
}

func (r *ring) restore(ids []int, next uint64) {
	r.closed = ids   // ok: allow-listed writer
	r.nextID = next  // ok: allow-listed writer
	r.cur = len(ids) // want `a\.ring\.cur assigned outside its documented mutation points`
}

func rogue(r *ring) *[]int {
	r.closed = nil   // want `a\.ring\.closed assigned outside its documented mutation points`
	r.cur = 5        // want `a\.ring\.cur assigned outside its documented mutation points`
	r.nextID--       // want `a\.ring\.nextID decremented outside its documented mutation points`
	r.nextID = 0     // want `a\.ring\.nextID assigned outside its documented mutation points`
	return &r.closed // want `a\.ring\.closed aliased \(&\) outside its documented mutation points`
}

type index struct {
	s0 int
	f1 int
}

func (ix *index) flip() { // ok: methods of the guarded type may write
	ix.s0, ix.f1 = ix.f1, ix.s0
}

func poke(ix *index) {
	ix.s0 = 2 // want `a\.index\.s0 assigned outside its documented mutation points`
}

// table exercises writes *through* guarded map and slice fields: element
// assignment, delete, and element increment all resolve to the field.
type table struct {
	byKey map[int]int
	rows  []int
}

func (t *table) put(k, v int) {
	t.byKey[k] = v     // ok: allow-listed writer
	delete(t.byKey, k) // ok: allow-listed writer
	t.rows[0] = v      // ok: allow-listed writer
}

func smash(t *table, i int) {
	t.byKey[1] = 2           // want `a\.table\.byKey assigned outside its documented mutation points`
	delete(t.byKey, 1)       // want `a\.table\.byKey shrunk by delete outside its documented mutation points`
	t.rows[i]++              // want `a\.table\.rows incremented outside its documented mutation points`
	(t.rows[i]) = 3          // want `a\.table\.rows assigned outside its documented mutation points`
	_ = &t.rows[i]           // ok: element aliasing is read-side access, not peeled
	m := t.byKey             // ok: reading the header
	m[3] = 4                 // ok: writes through a local copy are out of scope
	tmp := map[int]int{1: 1} // ok
	delete(tmp, 1)           // ok: not a guarded field
}
