// Package a seeds sliceinvariant violations against fixture types guarded
// by the rules table the test installs (the real guarded types live
// unexported in internal/core).
package a

type ring struct {
	closed []int
	cur    int
	nextID uint64
}

func (r *ring) closeSlice() {
	r.closed = append(r.closed, r.cur) // ok: allow-listed writer
	r.cur = 0                          // ok: allow-listed writer
	r.nextID++                         // ok: monotone counter in its own package
}

func (r *ring) restore(ids []int, next uint64) {
	r.closed = ids   // ok: allow-listed writer
	r.nextID = next  // ok: allow-listed writer
	r.cur = len(ids) // want `a\.ring\.cur assigned outside its documented mutation points`
}

func rogue(r *ring) *[]int {
	r.closed = nil   // want `a\.ring\.closed assigned outside its documented mutation points`
	r.cur = 5        // want `a\.ring\.cur assigned outside its documented mutation points`
	r.nextID--       // want `a\.ring\.nextID decremented outside its documented mutation points`
	r.nextID = 0     // want `a\.ring\.nextID assigned outside its documented mutation points`
	return &r.closed // want `a\.ring\.closed aliased \(&\) outside its documented mutation points`
}

type index struct {
	s0 int
	f1 int
}

func (ix *index) flip() { // ok: methods of the guarded type may write
	ix.s0, ix.f1 = ix.f1, ix.s0
}

func poke(ix *index) {
	ix.s0 = 2 // want `a\.index\.s0 assigned outside its documented mutation points`
}
