package sliceinvariant_test

import (
	"testing"

	"desis/internal/lint/linttest"
	"desis/internal/lint/sliceinvariant"
)

// The real guard table targets unexported types in internal/core, so the
// fixture installs an equivalent table over its own types to exercise every
// rule mechanism: field allow-lists, writer allow-lists, receiver-type
// allowances, and monotone counters.
func TestSliceInvariant(t *testing.T) {
	rules := []sliceinvariant.Rule{
		{
			Type:       "a.ring",
			Fields:     []string{"closed"},
			AllowFuncs: []string{"a:ring.closeSlice", "a:ring.restore"},
			Message:    "ring is append-only outside restore",
		},
		{
			Type:       "a.ring",
			Fields:     []string{"cur"},
			AllowFuncs: []string{"a:ring.closeSlice"},
			Message:    "cur belongs to the slicing path",
		},
		{
			Type:            "a.ring",
			Fields:          []string{"nextID"},
			MonotoneCounter: true,
			AllowFuncs:      []string{"a:ring.restore"},
			Message:         "ids are monotone",
		},
		{
			Type:          "a.index",
			AllowRecvType: "a.index",
			Message:       "index state is owned by index methods",
		},
		{
			Type:       "a.table",
			AllowFuncs: []string{"a:table.put"},
			Message:    "table contents are owned by put",
		},
	}
	linttest.Run(t, sliceinvariant.NewAnalyzer(rules), "a")
}

// TestDefaultRulesShape guards against the guard table silently rotting:
// every rule must name a desis type and carry a rationale.
func TestDefaultRulesShape(t *testing.T) {
	if len(sliceinvariant.DefaultRules) == 0 {
		t.Fatal("DefaultRules is empty")
	}
	for _, r := range sliceinvariant.DefaultRules {
		if r.Message == "" {
			t.Errorf("rule for %s has no message", r.Type)
		}
		if r.Type == "" {
			t.Error("rule with empty type")
		}
	}
}
