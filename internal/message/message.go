// Package message is Desis' message manager (§3.1): the wire protocol and
// transports that connect the nodes of a decentralized topology. It offers a
// binary codec, a Disco-style textual codec (Disco "uses strings to send
// events and messages between nodes", §6.4.1 — the reason for its higher
// network overhead in Figure 11b), an in-process pipe transport with exact
// byte accounting, a bandwidth-throttled pipe that emulates constrained
// links such as the Raspberry-Pi cluster's 1 GbE (§6.5.2), and a TCP
// transport for real deployments.
package message

import (
	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/plan"
	"desis/internal/query"
	"desis/internal/telemetry"
)

// Kind discriminates the message payload.
type Kind uint8

// Message kinds.
const (
	// KindHello introduces a child node to its parent, carrying the child's
	// plan epoch (NoEpoch for a fresh child with no plan yet) so the parent
	// can reply with an epoch diff instead of the full catalog.
	KindHello Kind = iota + 1
	// KindPlanState carries the full execution plan from the root downward:
	// the handshake reply for fresh or too-stale children.
	KindPlanState
	// KindEventBatch carries raw events: local-node input, forwarding in
	// centralized systems, and RootOnly groups in Desis.
	KindEventBatch
	// KindPartial carries one per-slice partial result upward.
	KindPartial
	// KindWatermark advances the receiver's view of the sender's event
	// time; it closes user-defined and session windows timely (§5.1.2).
	KindWatermark
	// KindResult carries a window result from the root to a client.
	KindResult
	// KindAddQuery asks the root to register a query at runtime (§3.2); sent
	// by control clients (cmd/desis-ctl). The root converts it into a plan
	// delta and broadcasts the delta.
	KindAddQuery
	// KindRemoveQuery asks the root to remove a running query by id (§3.2).
	KindRemoveQuery
	// KindHeartbeat keeps the node-liveness timeout of §3.2 from firing.
	KindHeartbeat
	// KindGoodbye announces a deliberate departure: the child is done and
	// will not reconnect, so the parent can finish without waiting out a
	// reconnect grace period. A disconnect without a goodbye is treated as
	// a failure the child may recover from (§3.2 fault tolerance).
	KindGoodbye
	// KindPlanDelta carries one or more serialized plan deltas from the root
	// downward: runtime catalog changes and epoch-diff resyncs for
	// reconnecting children. Each delta names the epoch it produces, so
	// receivers apply them idempotently and in order.
	KindPlanDelta
	// KindPlanDump asks the root for its live execution plan; the reply is a
	// KindPlanState (cmd/desis-ctl plan).
	KindPlanDump
	// KindStatsDump asks a node for its telemetry snapshot. Sent root-down:
	// the root snapshots itself, forwards the request to its children, and
	// merges the replies, so one request against the root yields
	// cluster-wide counters (cmd/desis-ctl -stats). A request carries no
	// snapshot; the reply carries the responder's (merged) snapshot in
	// Stats.
	KindStatsDump
	// KindBatch coalesces several KindPartial/KindWatermark frames from one
	// sender into a single wire frame with a columnar body (see batch.go):
	// per-frame codec/framing overhead is paid once per batch, which is what
	// makes a constrained uplink (§6.5.2) carry events instead of headers.
	// Receivers unbatch and handle the frames in order, so the semantics are
	// exactly those of the individual messages.
	KindBatch
)

// NoEpoch is the plan epoch a fresh child reports in its hello: it is newer
// than any real epoch, so the parent's epoch diff fails closed and the child
// receives the full plan.
const NoEpoch = ^uint64(0)

// Message is the unit of communication between nodes. Exactly the fields
// implied by Kind are meaningful.
type Message struct {
	Kind Kind
	// From identifies the sending node.
	From uint32
	// Epoch is the sender's plan epoch in KindHello (NoEpoch when the child
	// holds no plan yet).
	Epoch uint64
	// Events is the payload of KindEventBatch.
	Events []event.Event
	// Partial is the payload of KindPartial.
	Partial *core.SlicePartial
	// Watermark is the payload of KindWatermark, and the optional drain
	// deadline of KindRemoveQuery.
	Watermark int64
	// Queries is the payload of KindAddQuery.
	Queries []query.Query
	// QueryID is the payload of KindRemoveQuery.
	QueryID uint64
	// Result is the payload of KindResult.
	Result *core.Result
	// Deltas is the payload of KindPlanDelta, in epoch order.
	Deltas []plan.Delta
	// Plan is the payload of KindPlanState.
	Plan *plan.Plan
	// Stats is the payload of a KindStatsDump reply; nil in the request.
	Stats *telemetry.Snapshot
	// Load is an optional compact load digest piggybacked on KindHeartbeat,
	// letting the parent track per-child lag between stats pulls.
	Load *telemetry.LoadDigest
	// Batch is the payload of KindBatch: an ordered run of partial/watermark
	// frames from the same sender.
	Batch *Batch
}

// Codec serialises messages. Implementations must be inverses:
// Decode(Append(nil, m)) == m.
type Codec interface {
	// Append appends the encoding of m to buf.
	Append(buf []byte, m *Message) ([]byte, error)
	// Decode parses one message from buf, which holds exactly one message.
	Decode(buf []byte) (*Message, error)
	// Name identifies the codec in logs.
	Name() string
}

// Conn is a bidirectional, message-oriented connection between two nodes.
type Conn interface {
	// Send transmits one message; it may block for backpressure or
	// bandwidth throttling. Send must not retain m or anything it
	// references after returning (implementations encode synchronously),
	// so callers may recycle the message's payload buffers.
	Send(m *Message) error
	// Recv blocks for the next message; it returns io.EOF after the peer
	// closed the connection.
	Recv() (*Message, error)
	// Close shuts down this side; the peer's Recv drains then returns EOF.
	Close() error
	// BytesSent reports the total encoded bytes sent on this side — the
	// network-overhead accounting of §6.4.1.
	BytesSent() uint64
}
