// Package message is Desis' message manager (§3.1): the wire protocol and
// transports that connect the nodes of a decentralized topology. It offers a
// binary codec, a Disco-style textual codec (Disco "uses strings to send
// events and messages between nodes", §6.4.1 — the reason for its higher
// network overhead in Figure 11b), an in-process pipe transport with exact
// byte accounting, a bandwidth-throttled pipe that emulates constrained
// links such as the Raspberry-Pi cluster's 1 GbE (§6.5.2), and a TCP
// transport for real deployments.
package message

import (
	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/query"
)

// Kind discriminates the message payload.
type Kind uint8

// Message kinds.
const (
	// KindHello introduces a child node to its parent.
	KindHello Kind = iota + 1
	// KindQuerySet distributes the full query set from the root downward.
	KindQuerySet
	// KindEventBatch carries raw events: local-node input, forwarding in
	// centralized systems, and RootOnly groups in Desis.
	KindEventBatch
	// KindPartial carries one per-slice partial result upward.
	KindPartial
	// KindWatermark advances the receiver's view of the sender's event
	// time; it closes user-defined and session windows timely (§5.1.2).
	KindWatermark
	// KindResult carries a window result from the root to a client.
	KindResult
	// KindAddQuery registers a query at runtime (§3.2).
	KindAddQuery
	// KindRemoveQuery removes a running query by id (§3.2).
	KindRemoveQuery
	// KindHeartbeat keeps the node-liveness timeout of §3.2 from firing.
	KindHeartbeat
	// KindGoodbye announces a deliberate departure: the child is done and
	// will not reconnect, so the parent can finish without waiting out a
	// reconnect grace period. A disconnect without a goodbye is treated as
	// a failure the child may recover from (§3.2 fault tolerance).
	KindGoodbye
)

// Message is the unit of communication between nodes. Exactly the fields
// implied by Kind are meaningful.
type Message struct {
	Kind Kind
	// From identifies the sending node.
	From uint32
	// Events is the payload of KindEventBatch.
	Events []event.Event
	// Partial is the payload of KindPartial.
	Partial *core.SlicePartial
	// Watermark is the payload of KindWatermark, and the optional drain
	// deadline of KindRemoveQuery.
	Watermark int64
	// Queries is the payload of KindQuerySet and KindAddQuery.
	Queries []query.Query
	// QueryID is the payload of KindRemoveQuery.
	QueryID uint64
	// Result is the payload of KindResult.
	Result *core.Result
}

// Codec serialises messages. Implementations must be inverses:
// Decode(Append(nil, m)) == m.
type Codec interface {
	// Append appends the encoding of m to buf.
	Append(buf []byte, m *Message) ([]byte, error)
	// Decode parses one message from buf, which holds exactly one message.
	Decode(buf []byte) (*Message, error)
	// Name identifies the codec in logs.
	Name() string
}

// Conn is a bidirectional, message-oriented connection between two nodes.
type Conn interface {
	// Send transmits one message; it may block for backpressure or
	// bandwidth throttling. Send must not retain m or anything it
	// references after returning (implementations encode synchronously),
	// so callers may recycle the message's payload buffers.
	Send(m *Message) error
	// Recv blocks for the next message; it returns io.EOF after the peer
	// closed the connection.
	Recv() (*Message, error)
	// Close shuts down this side; the peer's Recv drains then returns EOF.
	Close() error
	// BytesSent reports the total encoded bytes sent on this side — the
	// network-overhead accounting of §6.4.1.
	BytesSent() uint64
}
