package message

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Pipe is one side of an in-process connection. Messages are fully encoded
// and decoded so byte accounting and codec coverage match a real network,
// and the bounded queue provides the backpressure that sustainable
// throughput measurements rely on (§6.1).
type Pipe struct {
	codec    Codec
	out      chan<- []byte
	in       <-chan []byte
	sent     atomic.Uint64
	throttle *Throttle
	closed   sync.Once
}

// NewPipe returns the two connected endpoints of an in-process link using
// the given codec, with a queue of buffer messages in each direction.
func NewPipe(codec Codec, buffer int) (*Pipe, *Pipe) {
	ab := make(chan []byte, buffer)
	ba := make(chan []byte, buffer)
	a := &Pipe{codec: codec, out: ab, in: ba}
	b := &Pipe{codec: codec, out: ba, in: ab}
	return a, b
}

// NewThrottledPipe is NewPipe with a bandwidth limit, in bytes per second,
// applied to each direction independently — the model of the Raspberry-Pi
// cluster's 1 GbE links (§6.5.2).
func NewThrottledPipe(codec Codec, buffer int, bytesPerSecond float64) (*Pipe, *Pipe) {
	a, b := NewPipe(codec, buffer)
	a.throttle = NewThrottle(bytesPerSecond)
	b.throttle = NewThrottle(bytesPerSecond)
	return a, b
}

// Send implements Conn.
func (p *Pipe) Send(m *Message) (err error) {
	buf, err := p.codec.Append(nil, m)
	if err != nil {
		return err
	}
	if p.throttle != nil {
		p.throttle.Take(len(buf))
	}
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("message: send on closed pipe")
		}
	}()
	p.out <- buf
	p.sent.Add(uint64(len(buf)))
	return nil
}

// Recv implements Conn.
func (p *Pipe) Recv() (*Message, error) {
	buf, ok := <-p.in
	if !ok {
		return nil, io.EOF
	}
	return p.codec.Decode(buf)
}

// Close implements Conn. The peer's Recv drains buffered messages, then
// returns io.EOF.
func (p *Pipe) Close() error {
	p.closed.Do(func() { close(p.out) })
	return nil
}

// BytesSent implements Conn.
func (p *Pipe) BytesSent() uint64 { return p.sent.Load() }

// Throttle is a token-bucket bandwidth limiter.
type Throttle struct {
	mu    sync.Mutex
	rate  float64 // bytes per second
	avail float64
	last  time.Time
	burst float64
}

// throttleMaxFrame is the burst floor: one maximum-size data frame (the
// batcher's MaxBytes default) must always be instantly admittable, so the
// bucket never models a link slower than its largest frame.
const throttleMaxFrame = 256 << 10

// NewThrottle returns a limiter admitting bytesPerSecond on average with a
// burst of ~100ms of the rate (floored at one maximum frame). A fixed burst
// independent of the rate would let a slow link admit many seconds of
// traffic instantly and skew every bandwidth measurement against it.
func NewThrottle(bytesPerSecond float64) *Throttle {
	burst := bytesPerSecond / 10
	if burst < throttleMaxFrame {
		burst = throttleMaxFrame
	}
	return &Throttle{rate: bytesPerSecond, last: time.Now(), burst: burst}
}

// Take blocks until n bytes of bandwidth are available. A non-positive rate
// means unlimited.
func (t *Throttle) Take(n int) {
	t.mu.Lock()
	if t.rate <= 0 {
		t.mu.Unlock()
		return
	}
	now := time.Now()
	t.avail += now.Sub(t.last).Seconds() * t.rate
	t.last = now
	if t.avail > t.burst {
		t.avail = t.burst
	}
	t.avail -= float64(n)
	var wait time.Duration
	if t.avail < 0 {
		wait = time.Duration(-t.avail / t.rate * float64(time.Second))
	}
	t.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}
