//go:build desis_invariants

package message

import (
	"fmt"
	"strings"
	"testing"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/query"
)

// recycledPartial produces a real pooled partial from a slice-emitting engine
// and recycles it, so any later use reads pool-owned storage.
func recycledPartial(t *testing.T) *core.SlicePartial {
	t.Helper()
	q := query.MustParse("tumbling(100ms) sum key=0")
	q.ID = 1
	groups, err := query.Analyze([]query.Query{q}, query.Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	var ps []*core.SlicePartial
	e := core.New(groups, core.Config{OnSlice: func(p *core.SlicePartial) { ps = append(ps, p) }})
	e.ProcessBatch([]event.Event{{Time: 0, Value: 1}, {Time: 150, Value: 2}})
	e.AdvanceTo(400)
	if len(ps) == 0 {
		t.Fatal("no partials emitted")
	}
	p := ps[0]
	e.RecyclePartial(p)
	return p
}

// TestEncodeRecycledPartialPanics: encoding a partial its producer already
// recycled must panic in every codec, naming the offending slice id —
// serializing pool-owned storage would ship torn data.
func TestEncodeRecycledPartialPanics(t *testing.T) {
	p := recycledPartial(t)
	id := p.ID
	for _, c := range []Codec{Binary{}, Compact{}, Text{}} {
		t.Run(c.Name(), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s.Append encoded a recycled partial without panicking", c.Name())
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "use of recycled SlicePartial") ||
					!strings.Contains(msg, fmt.Sprintf("slice id %d", id)) {
					t.Fatalf("panic %q does not name use of recycled slice id %d", msg, id)
				}
			}()
			c.Append(nil, &Message{Kind: KindPartial, Partial: p})
		})
	}
}
