package message

import (
	"errors"
	"testing"
	"time"
)

// echoServer accepts TCPConns on l and echoes every message back until the
// connection dies.
func echoServer(t *testing.T, l *Listener) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(m); err != nil {
						return
					}
				}
			}()
		}
	}()
}

// proxiedEcho starts an echo server behind a FaultProxy and dials through it.
func proxiedEcho(t *testing.T) (*FaultProxy, *TCPConn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", Binary{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	echoServer(t, l)
	p, err := NewFaultProxy(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	c, err := Dial(p.Addr(), Binary{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return p, c
}

func roundTrip(t *testing.T, c *TCPConn, wm int64, timeout time.Duration) error {
	t.Helper()
	if err := c.Send(&Message{Kind: KindWatermark, Watermark: wm}); err != nil {
		return err
	}
	m, err := c.RecvTimeout(timeout)
	if err != nil {
		return err
	}
	if m.Watermark != wm {
		t.Fatalf("echoed watermark %d, want %d", m.Watermark, wm)
	}
	return nil
}

// TestFaultProxyStallResumeSever walks one link through the full fault
// repertoire: healthy round trip, stall (live socket, nothing moves, receives
// time out), resume (buffered frame finally delivered), sever (both ends see
// the link die), and rejection of new connections.
func TestFaultProxyStallResumeSever(t *testing.T) {
	p, c := proxiedEcho(t)
	if err := roundTrip(t, c, 1, time.Second); err != nil {
		t.Fatalf("healthy round trip: %v", err)
	}
	if len(p.Links()) != 1 {
		t.Fatalf("links: %d, want 1", len(p.Links()))
	}

	// Stall: the socket stays open but no bytes are proxied, so the echo
	// never comes back — exactly the failure the liveness timeout exists for.
	p.StallAll()
	if err := roundTrip(t, c, 2, 150*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("stalled round trip: %v, want ErrTimeout", err)
	}

	// Resume: the frame buffered during the stall is delivered.
	p.ResumeAll()
	if m, err := c.RecvTimeout(2 * time.Second); err != nil || m.Watermark != 2 {
		t.Fatalf("recv after resume: %v, %v", m, err)
	}

	// Sever: every later operation on the link fails.
	p.SeverAll()
	failed := false
	for i := 0; i < 10 && !failed; i++ {
		failed = roundTrip(t, c, 3, 200*time.Millisecond) != nil
	}
	if !failed {
		t.Fatal("round trip survived a severed link")
	}

	// RejectNew: a fresh dial may connect (the proxy accepts and drops it)
	// but never reaches the echo server.
	p.RejectNew(true)
	c2, err := Dial(p.Addr(), Binary{})
	if err != nil {
		return // refused outright is also a pass
	}
	defer c2.Close()
	if err := roundTrip(t, c2, 4, 300*time.Millisecond); err == nil {
		t.Fatal("round trip through a rejecting proxy succeeded")
	}
}

// TestFaultConnDelay checks SetDelay imposes per-operation latency.
func TestFaultConnDelay(t *testing.T) {
	p, c := proxiedEcho(t)
	if err := roundTrip(t, c, 1, time.Second); err != nil {
		t.Fatal(err)
	}
	for _, ln := range p.Links() {
		ln.SetDelay(60 * time.Millisecond)
	}
	start := time.Now()
	if err := roundTrip(t, c, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("delayed round trip took %v, want >= 60ms", el)
	}
}

// TestFaultListener exercises the listener-side wrapper: accepted conns are
// registered FaultConns, rejection drops new connections, and Sever fails
// both the wrapped conn and its peer.
func TestFaultListener(t *testing.T) {
	inner, err := Listen("127.0.0.1:0", Binary{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	fl := NewFaultListener(inner.l)
	acc := make(chan *TCPConn, 4)
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			acc <- NewTCPConn(c, Binary{})
		}
	}()

	client, err := Dial(inner.Addr(), Binary{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-acc
	defer server.Close()
	if n := len(fl.Conns()); n != 1 {
		t.Fatalf("registered conns: %d, want 1", n)
	}
	if err := client.Send(&Message{Kind: KindWatermark, Watermark: 9}); err != nil {
		t.Fatal(err)
	}
	if m, err := server.RecvTimeout(time.Second); err != nil || m.Watermark != 9 {
		t.Fatalf("recv through fault listener: %v, %v", m, err)
	}

	// Sever the accepted conn: raw reads fail with ErrSevered, framed
	// receives fail with a closed-link error, the client observes the close.
	fl.Conns()[0].Sever()
	if _, err := fl.Conns()[0].Read(make([]byte, 1)); !errors.Is(err, ErrSevered) {
		t.Fatalf("read on severed conn: %v, want ErrSevered", err)
	}
	if _, err := server.RecvTimeout(time.Second); err == nil || errors.Is(err, ErrTimeout) {
		t.Fatalf("recv on severed conn: %v, want a closed-link error", err)
	}
	if _, err := client.RecvTimeout(time.Second); err == nil || errors.Is(err, ErrTimeout) {
		t.Fatalf("peer of severed conn: %v, want a closed-link error", err)
	}

	// Rejection: the dial may succeed at the TCP level, but the connection
	// is closed immediately and never surfaced.
	fl.RejectNew(true)
	c2, err := Dial(inner.Addr(), Binary{})
	if err == nil {
		defer c2.Close()
		if _, err := c2.RecvTimeout(500 * time.Millisecond); err == nil || errors.Is(err, ErrTimeout) {
			t.Fatalf("rejected conn recv: %v, want EOF/closed", err)
		}
	}
	select {
	case <-acc:
		t.Fatal("rejected connection was surfaced by Accept")
	case <-time.After(100 * time.Millisecond):
	}
}
