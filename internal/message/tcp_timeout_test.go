package message

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"desis/internal/event"
)

// tcpPair returns two ends of a loopback TCP connection wrapped as TCPConns.
func tcpPair(t *testing.T) (client, server *TCPConn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", Binary{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type accepted struct {
		c   *TCPConn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		ch <- accepted{c, err}
	}()
	client, err = Dial(l.Addr(), Binary{})
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { client.Close(); a.c.Close() })
	return client, a.c
}

// rawServerConn returns a raw client socket plus the server-side TCPConn, so
// tests can write malformed frames the framing layer must reject.
func rawServerConn(t *testing.T) (raw net.Conn, server *TCPConn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(ch)
			return
		}
		ch <- c
	}()
	raw, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, ok := <-ch
	if !ok {
		t.Fatal("accept failed")
	}
	server = NewTCPConn(c, Binary{})
	t.Cleanup(func() { raw.Close(); server.Close() })
	return raw, server
}

// TestRecvTimeoutSemantics pins the error taxonomy of RecvTimeout: an idle
// link times out with ErrTimeout (and recovers once traffic resumes), a clean
// close is io.EOF, a trickled partial frame still times out, a death mid-frame
// is io.ErrUnexpectedEOF, and an oversized length prefix is ErrFrameTooLarge.
func TestRecvTimeoutSemantics(t *testing.T) {
	t.Run("idle times out then recovers", func(t *testing.T) {
		client, server := tcpPair(t)
		start := time.Now()
		_, err := server.RecvTimeout(80 * time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("idle recv: got %v, want ErrTimeout", err)
		}
		if el := time.Since(start); el < 60*time.Millisecond || el > 2*time.Second {
			t.Fatalf("timeout fired after %v, want ~80ms", el)
		}
		// The deadline must not poison the connection: the next frame is
		// received normally, both with and without a timeout.
		if err := client.Send(&Message{Kind: KindHello, From: 7}); err != nil {
			t.Fatal(err)
		}
		m, err := server.RecvTimeout(time.Second)
		if err != nil || m.Kind != KindHello || m.From != 7 {
			t.Fatalf("recv after timeout: %v, %v", m, err)
		}
		if err := client.Send(&Message{Kind: KindWatermark, Watermark: 42}); err != nil {
			t.Fatal(err)
		}
		m, err = server.Recv() // untimed Recv must clear the old deadline
		if err != nil || m.Watermark != 42 {
			t.Fatalf("untimed recv after timeout: %v, %v", m, err)
		}
	})

	t.Run("clean close is EOF", func(t *testing.T) {
		client, server := tcpPair(t)
		client.Close()
		if _, err := server.RecvTimeout(time.Second); !errors.Is(err, io.EOF) {
			t.Fatalf("got %v, want io.EOF", err)
		}
	})

	t.Run("trickled partial frame times out", func(t *testing.T) {
		raw, server := rawServerConn(t)
		// Header promising 100 bytes, then only 3 bytes and silence: the
		// deadline covers the whole frame.
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 100)
		raw.Write(hdr[:])
		raw.Write([]byte{1, 2, 3})
		if _, err := server.RecvTimeout(80 * time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("got %v, want ErrTimeout", err)
		}
	})

	t.Run("death mid-frame is unexpected EOF", func(t *testing.T) {
		raw, server := rawServerConn(t)
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 100)
		raw.Write(hdr[:])
		raw.Write([]byte{1, 2, 3})
		raw.Close()
		if _, err := server.RecvTimeout(time.Second); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
		}
	})

	t.Run("oversized frame is rejected", func(t *testing.T) {
		raw, server := rawServerConn(t)
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
		raw.Write(hdr[:])
		if _, err := server.RecvTimeout(time.Second); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("got %v, want ErrFrameTooLarge", err)
		}
	})
}

// TestRecvTimeoutNoGoroutinePerMessage asserts the deadline mechanism is O(1)
// per connection: receiving thousands of timed frames must not grow the
// goroutine count (the old implementation leaked a watchdog goroutine and a
// timer per Recv).
func TestRecvTimeoutNoGoroutinePerMessage(t *testing.T) {
	client, server := tcpPair(t)
	const n = 2000
	//lint:ignore goroutinelife the sender runs a fixed-count loop and exits on its own; the test measures the receiver's goroutine count
	go func() {
		for i := 0; i < n; i++ {
			if err := client.Send(&Message{Kind: KindWatermark, Watermark: int64(i)}); err != nil {
				return
			}
		}
	}()
	base := runtime.NumGoroutine()
	maxG := base
	for i := 0; i < n; i++ {
		if _, err := server.RecvTimeout(5 * time.Second); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if i%200 == 0 {
			if g := runtime.NumGoroutine(); g > maxG {
				maxG = g
			}
		}
	}
	if maxG > base+4 {
		t.Fatalf("goroutines grew from %d to %d over %d timed receives", base, maxG, n)
	}
}

// TestSendWriteTimeout verifies a configured write deadline bounds Send when
// the peer stops draining, instead of blocking the sender forever.
func TestSendWriteTimeout(t *testing.T) {
	client, _ := tcpPair(t) // server never reads
	client.SetWriteTimeout(100 * time.Millisecond)
	big := &Message{Kind: KindEventBatch, Events: make([]event.Event, 1<<15)}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		if err := client.Send(big); err != nil {
			if !errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("send error: %v, want deadline exceeded", err)
			}
			return
		}
	}
	t.Fatal("Send never failed against a stalled peer")
}
