package message

import (
	"encoding/binary"
	"fmt"
	"math"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/invariant"
	"desis/internal/operator"
	"desis/internal/telemetry"
)

// Compact is a varint/delta codec for constrained links: event batches are
// delta-encoded in time (timestamps in a batch are near-monotone, so deltas
// are tiny), and all ids/counters use unsigned varints. Values stay as raw
// IEEE 754 — sensor values do not compress losslessly. On the synthetic
// sensor stream, event batches shrink to roughly half the Binary size,
// which directly moves the bandwidth ceiling of Figure 13b.
//
// Compact handles the data-plane kinds (events, partials, watermarks,
// hello/heartbeat); control messages fall back to Binary framing inside a
// tagged envelope.
type Compact struct{}

// Name implements Codec.
func (Compact) Name() string { return "compact" }

// compactFallback tags an embedded Binary-encoded control message.
const compactFallback = 0xff

// Append implements Codec.
func (Compact) Append(buf []byte, m *Message) ([]byte, error) {
	switch m.Kind {
	case KindPlanState, KindPlanDelta, KindPlanDump, KindAddQuery, KindRemoveQuery, KindResult, KindStatsDump:
		// Control plane: envelope the Binary encoding. Every kind is named
		// in exactly one arm of this function (wirekind), so dropping an arm
		// is a lint failure; a new kind must decide explicitly whether it
		// earns a compact layout.
		buf = append(buf, compactFallback)
		return Binary{}.Append(buf, m)
	}
	buf = append(buf, byte(m.Kind))
	buf = binary.AppendUvarint(buf, uint64(m.From))
	switch m.Kind {
	case KindHello:
		buf = binary.AppendUvarint(buf, m.Epoch)
	case KindGoodbye:
		// Header only.
	case KindHeartbeat:
		if m.Load != nil {
			buf = append(buf, 1)
			buf = telemetry.AppendLoadDigest(buf, m.Load)
		} else {
			buf = append(buf, 0)
		}
	case KindWatermark:
		buf = binary.AppendVarint(buf, m.Watermark)
	case KindEventBatch:
		buf = binary.AppendUvarint(buf, uint64(len(m.Events)))
		prev := int64(0)
		for _, e := range m.Events {
			buf = binary.AppendVarint(buf, e.Time-prev)
			prev = e.Time
			buf = binary.AppendUvarint(buf, uint64(e.Key))
			buf = append(buf, e.Marker)
			buf = appendF64(buf, e.Value)
		}
	case KindPartial:
		p := m.Partial
		invariant.AssertPartialLive(p)
		buf = binary.AppendUvarint(buf, uint64(p.Group))
		buf = binary.AppendUvarint(buf, p.ID)
		buf = binary.AppendVarint(buf, p.Start)
		buf = binary.AppendVarint(buf, p.End-p.Start)
		buf = binary.AppendVarint(buf, p.LastEvent-p.Start)
		buf = binary.AppendVarint(buf, p.Ingested)
		buf = binary.AppendUvarint(buf, uint64(len(p.Aggs)))
		for i := range p.Aggs {
			buf = appendCompactAgg(buf, &p.Aggs[i])
		}
		buf = binary.AppendUvarint(buf, uint64(len(p.EPs)))
		for _, ep := range p.EPs {
			buf = binary.AppendUvarint(buf, uint64(ep.QueryIdx))
			buf = binary.AppendVarint(buf, ep.Start)
			buf = binary.AppendVarint(buf, ep.End-ep.Start)
			buf = binary.AppendVarint(buf, ep.GapStart)
		}
	case KindBatch:
		// The columnar batch body is already varint/delta-coded; Binary and
		// Compact share it verbatim.
		var err error
		if buf, err = appendBatchBody(buf, m.Batch); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("message: compact: unknown kind %d", m.Kind)
	}
	return buf, nil
}

func appendCompactAgg(buf []byte, a *operator.Agg) []byte {
	buf = append(buf, byte(a.Ops))
	if a.Ops&operator.OpCount != 0 {
		buf = binary.AppendVarint(buf, a.CountV)
	}
	if a.Ops&operator.OpSum != 0 {
		buf = appendF64(buf, a.SumV)
	}
	if a.Ops&operator.OpMult != 0 {
		buf = appendF64(buf, a.ProdV)
	}
	if a.Ops&operator.OpDSort != 0 {
		buf = appendF64(buf, a.MinV)
		buf = appendF64(buf, a.MaxV)
	}
	if a.Ops&operator.OpNDSort != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(a.Values)))
		for _, v := range a.Values {
			buf = appendF64(buf, v)
		}
	}
	return buf
}

// Decode implements Codec.
func (Compact) Decode(buf []byte) (*Message, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("message: empty compact message")
	}
	if buf[0] == compactFallback {
		return Binary{}.Decode(buf[1:])
	}
	r := varReader{buf: buf}
	m := &Message{}
	m.Kind = Kind(r.u8())
	m.From = uint32(r.uvarint())
	switch m.Kind {
	case KindHello:
		m.Epoch = r.uvarint()
	case KindGoodbye:
	case KindHeartbeat:
		if r.u8() == 1 && r.err == nil {
			d, rest, err := telemetry.DecodeLoadDigest(r.buf)
			if err != nil {
				return nil, err
			}
			m.Load, r.buf = d, rest
		}
	case KindWatermark:
		m.Watermark = r.varint()
	case KindEventBatch:
		n := int(r.uvarint())
		prev := int64(0)
		for i := 0; i < n && r.err == nil; i++ {
			var e event.Event
			prev += r.varint()
			e.Time = prev
			e.Key = uint32(r.uvarint())
			e.Marker = r.u8()
			e.Value = r.f64()
			m.Events = append(m.Events, e)
		}
	case KindPartial:
		p := &core.SlicePartial{}
		p.Group = uint32(r.uvarint())
		p.ID = r.uvarint()
		p.Start = r.varint()
		p.End = p.Start + r.varint()
		p.LastEvent = p.Start + r.varint()
		p.Ingested = r.varint()
		nAggs := int(r.uvarint())
		for i := 0; i < nAggs && r.err == nil; i++ {
			p.Aggs = append(p.Aggs, r.agg())
		}
		nEPs := int(r.uvarint())
		for i := 0; i < nEPs && r.err == nil; i++ {
			var ep core.EP
			ep.QueryIdx = int32(r.uvarint())
			ep.Start = r.varint()
			ep.End = ep.Start + r.varint()
			ep.GapStart = r.varint()
			p.EPs = append(p.EPs, ep)
		}
		m.Partial = p
	case KindBatch:
		if r.err == nil {
			b, err := decodeBatchBody(r.buf, m.From)
			if err != nil {
				return nil, err
			}
			m.Batch, r.buf = b, nil
		}
	case KindPlanState, KindPlanDelta, KindPlanDump, KindAddQuery, KindRemoveQuery, KindResult, KindStatsDump:
		// Control kinds travel only inside the compactFallback envelope
		// handled above; a bare tag is a corrupt frame.
		return nil, fmt.Errorf("message: compact codec cannot decode bare control kind %d", m.Kind)
	default:
		return nil, fmt.Errorf("message: compact codec cannot decode kind %d", m.Kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// varReader is a cursor over varint-encoded bytes with sticky errors.
type varReader struct {
	buf []byte
	err error
}

func (r *varReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.err = fmt.Errorf("message: truncated compact message")
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *varReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("message: bad uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *varReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("message: bad varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *varReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = fmt.Errorf("message: truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v
}

func (r *varReader) agg() operator.Agg {
	var a operator.Agg
	a.Reset(operator.Op(r.u8()))
	if a.Ops&operator.OpCount != 0 {
		a.CountV = r.varint()
	}
	if a.Ops&operator.OpSum != 0 {
		a.SumV = r.f64()
	}
	if a.Ops&operator.OpMult != 0 {
		a.ProdV = r.f64()
	}
	if a.Ops&operator.OpDSort != 0 {
		a.MinV = r.f64()
		a.MaxV = r.f64()
	}
	if a.Ops&operator.OpNDSort != 0 {
		n := int(r.uvarint())
		for i := 0; i < n && r.err == nil; i++ {
			a.Values = append(a.Values, r.f64())
		}
		a.Sorted = true
	}
	return a
}
